// Tests for ordered trees and the §2.3 codecs: t_nw is a bijection between
// OT(Σ) and the tree words TW(Σ), with nw_t its inverse.
#include "trees/ordered_tree.h"

#include <gtest/gtest.h>

#include "nw/generate.h"
#include "nw/text.h"
#include "support/rng.h"

namespace nw {
namespace {

TEST(OrderedTree, EmptyTree) {
  OrderedTree t;
  EXPECT_TRUE(t.IsEmpty());
  EXPECT_EQ(t.NodeCount(), 0u);
  EXPECT_EQ(t.Height(), 0u);
  EXPECT_TRUE(TreeToNestedWord(t).empty());
}

TEST(OrderedTree, Fig1BinaryTree) {
  // Figure 1's tree a(a(),b()) encodes to the tree word n3.
  Alphabet sigma;
  auto t = ParseTree("a(a(),b())", &sigma);
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->NodeCount(), 3u);
  EXPECT_EQ(t->Height(), 2u);
  NestedWord n3 = ParseNestedWord("<a <a a> <b b> a>", &sigma).Take();
  EXPECT_EQ(TreeToNestedWord(*t), n3);
}

TEST(OrderedTree, DecodeInverse) {
  Alphabet sigma;
  auto t = ParseTree("a(b(c(),d()),e())", &sigma);
  ASSERT_TRUE(t.ok());
  auto back = NestedWordToTree(TreeToNestedWord(*t));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, *t);
}

TEST(OrderedTree, DecodeRejectsNonTreeWords) {
  Alphabet sigma;
  // Internals are not allowed in tree words.
  auto n1 = ParseNestedWord("<a b a>", &sigma).Take();
  EXPECT_FALSE(NestedWordToTree(n1).ok());
  // Mismatched labels are not allowed.
  auto n2 = ParseNestedWord("<a b>", &sigma).Take();
  EXPECT_FALSE(NestedWordToTree(n2).ok());
  // Forests (two roots) are not rooted.
  auto n3 = ParseNestedWord("<a a> <b b>", &sigma).Take();
  EXPECT_FALSE(NestedWordToTree(n3).ok());
  // Pending edges are not allowed.
  auto n4 = ParseNestedWord("<a", &sigma).Take();
  EXPECT_FALSE(NestedWordToTree(n4).ok());
}

TEST(OrderedTree, RandomRoundTrip) {
  // Random tree words decode and re-encode to themselves: t_nw ∘ nw_t = id.
  Rng rng(5);
  for (int iter = 0; iter < 100; ++iter) {
    NestedWord n = RandomTreeWord(&rng, 3, 1 + iter % 40);
    auto t = NestedWordToTree(n);
    ASSERT_TRUE(t.ok());
    EXPECT_EQ(TreeToNestedWord(*t), n);
    EXPECT_EQ(t->NodeCount(), n.size() / 2);
    EXPECT_EQ(t->Height(), n.Depth());
  }
}

TEST(OrderedTree, ParseLeafSugar) {
  Alphabet sigma;
  auto t1 = ParseTree("a(b,c)", &sigma);
  auto t2 = ParseTree("a(b(),c())", &sigma);
  ASSERT_TRUE(t1.ok());
  ASSERT_TRUE(t2.ok());
  EXPECT_EQ(*t1, *t2);
}

TEST(OrderedTree, ParseEmptyIsEpsilon) {
  Alphabet sigma;
  auto t = ParseTree("  ", &sigma);
  ASSERT_TRUE(t.ok());
  EXPECT_TRUE(t->IsEmpty());
}

TEST(OrderedTree, ParseErrors) {
  Alphabet sigma;
  EXPECT_FALSE(ParseTree("a(b", &sigma).ok());
  EXPECT_FALSE(ParseTree("a)b", &sigma).ok());
  EXPECT_FALSE(ParseTree("(a)", &sigma).ok());
}

TEST(OrderedTree, FormatRoundTrip) {
  Alphabet sigma;
  auto t = ParseTree("root(x(y),z(p,q(r)))", &sigma);
  ASSERT_TRUE(t.ok());
  std::string s = FormatTree(*t, sigma);
  auto back = ParseTree(s, &sigma);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, *t);
}

TEST(OrderedTree, UnrankedWideNode) {
  // "It does not really matter whether the tree is binary, ranked, or
  // unranked" (§2.3): a 20-ary node round-trips like any other.
  Alphabet sigma;
  std::string wide = "r(";
  for (int i = 0; i < 20; ++i) {
    if (i) wide += ',';
    wide += "c" + std::to_string(i);
  }
  wide += ")";
  auto t = ParseTree(wide, &sigma);
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->NodeCount(), 21u);
  auto back = NestedWordToTree(TreeToNestedWord(*t));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, *t);
}

}  // namespace
}  // namespace nw
