// Tests for the parallel serving layer (src/serve): frozen snapshots of a
// pre-explored shared bank must answer exactly like the live bank, the
// mutex-guarded overflow path must make correctness independent of
// training coverage, and sharded evaluation at any thread count must
// produce results identical to the single-stream engine — acceptance,
// first-match positions, and per-document position counts — over
// well-formed AND malformed documents.
#include "serve/sharded.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "obs/stats.h"
#include "opt/pipeline.h"
#include "query/engine.h"
#include "query/nwquery.h"
#include "serve/frozen_bank.h"
#include "support/rng.h"
#include "xml/xml.h"

namespace nw {
namespace {

// A bank mixing every atom kind plus `not`-heavy members (the ones whose
// product states churn the most under streaming). Too rich a product to
// close exhaustively — exactly the case the corpus-trained freeze plus
// overflow fallback exists for.
std::vector<std::string> RichQueryTexts() {
  return {
      "/a",
      "//b",
      "/a/b or /a/c or //d",
      "a then c",
      "depth >= 3",
      "not //e",
      "not (/a and not //b)",
      "//a/*/b",
  };
}

// A small bank whose full product closes in milliseconds — the regime
// where exhaustive ExploreAll guarantees a miss-free snapshot.
std::vector<std::string> SmallQueryTexts() {
  return {"/a", "//b", "a then c", "depth >= 3"};
}

struct Workload {
  Alphabet alphabet;
  std::vector<Query> queries;
  Symbol other = Alphabet::kNoSymbol;
  size_t num_symbols = 0;
  OptimizedBank bank;  ///< rewrite+min automata plus the shared product

  explicit Workload(const std::vector<std::string>& texts) {
    for (const std::string& text : texts) {
      queries.push_back(ParseQuery(text, &alphabet).Take());
    }
    alphabet.Intern("#text");
    other = alphabet.Intern("%other");
    num_symbols = alphabet.size();
    bank = OptimizeBank(queries, num_symbols, OptOptions::All());
  }
};

/// Randomly corrupts a well-formed document: drops close tags and injects
/// stray ones, producing pending calls and pending returns.
std::string Corrupt(Rng* rng, const std::string& doc) {
  std::string out;
  size_t i = 0;
  while (i < doc.size()) {
    if (doc[i] == '<' && i + 1 < doc.size() && doc[i + 1] == '/' &&
        rng->Chance(1, 5)) {
      while (i < doc.size() && doc[i] != '>') ++i;
      if (i < doc.size()) ++i;
      continue;
    }
    if (doc[i] == '<' && rng->Chance(1, 12)) out += "</stray>";
    out += doc[i++];
  }
  return out;
}

/// `n` random documents of varying size and depth; every third one is
/// corrupted (malformed-document shards are part of the contract).
std::vector<std::string> MakeCorpus(size_t n, uint64_t seed) {
  Alphabet gen;
  for (const char* name : {"a", "b", "c", "d", "e", "unlisted"}) {
    gen.Intern(name);
  }
  Rng rng(seed);
  std::vector<std::string> corpus;
  for (size_t i = 0; i < n; ++i) {
    std::string doc =
        RandomXmlDocument(&rng, gen, 150 + (i % 5) * 120, 3 + i % 9);
    if (i % 3 == 2) doc = Corrupt(&rng, doc);
    corpus.push_back(std::move(doc));
  }
  return corpus;
}

/// Single-stream reference: the SoA engine (independent of the shared
/// bank, so freezing/exploring the product cannot contaminate it).
std::vector<DocResult> ReferenceResults(const Workload& w,
                                        const std::vector<std::string>& docs) {
  QueryEngine engine(w.num_symbols);
  engine.set_other_symbol(w.other);
  engine.set_track_matches(true);
  for (const OptimizedQuery& q : w.bank.queries) engine.Add(&q.nwa);
  Alphabet local = w.alphabet;
  std::vector<DocResult> out(docs.size());
  for (size_t i = 0; i < docs.size(); ++i) {
    size_t before = engine.positions();
    out[i].accept = engine.RunAll(docs[i], &local);
    out[i].positions = engine.positions() - before;
    out[i].first_match.resize(engine.num_queries());
    for (size_t q = 0; q < engine.num_queries(); ++q) {
      out[i].first_match[q] = engine.first_match(q);
    }
  }
  return out;
}

void ExpectSameResults(const std::vector<DocResult>& want,
                       const std::vector<DocResult>& got) {
  ASSERT_EQ(want.size(), got.size());
  for (size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(want[i].accept, got[i].accept) << "doc " << i;
    EXPECT_EQ(want[i].first_match, got[i].first_match) << "doc " << i;
    EXPECT_EQ(want[i].positions, got[i].positions) << "doc " << i;
  }
}

TEST(FrozenBank, SnapshotAnswersLikeTheLiveBank) {
  Workload w(SmallQueryTexts());
  SharedBank* shared = w.bank.shared.get();
  ASSERT_TRUE(shared->ExploreAll(1u << 20));
  FrozenBank frozen = FrozenBank::Freeze(*shared);
  ASSERT_EQ(frozen.num_states(), shared->num_states());
  EXPECT_EQ(frozen.initial(), shared->initial());
  for (StateId q = 0; q < frozen.num_states(); ++q) {
    EXPECT_EQ(frozen.live(q), shared->live(q));
    for (size_t id = 0; id < frozen.num_queries(); ++id) {
      EXPECT_EQ(frozen.accepting(q, id), shared->accepting(q, id));
      EXPECT_EQ(frozen.component(q, id), shared->component(q, id));
    }
    for (Symbol a = 0; a < frozen.num_symbols(); ++a) {
      EXPECT_EQ(frozen.Internal(q, a), shared->PeekInternal(q, a));
      EXPECT_EQ(frozen.CallLinear(q, a), shared->PeekCallLinear(q, a));
      EXPECT_EQ(frozen.CallHier(q, a), shared->PeekCallHier(q, a));
    }
    EXPECT_EQ(frozen.FindTuple(frozen.tuple(q)), q);
  }
  for (const SharedBank::MemoReturn& r : shared->MemoizedReturns()) {
    EXPECT_EQ(frozen.Return(r.from, r.hier, r.symbol), r.target);
  }
}

TEST(FrozenBank, ExhaustiveExplorationNeverMisses) {
  Workload w(SmallQueryTexts());
  ASSERT_TRUE(w.bank.shared->ExploreAll(1u << 20));
  FrozenBank frozen = FrozenBank::Freeze(*w.bank.shared);
  ShardedEvaluator evaluator(&frozen, w.num_symbols, w.other, 2);
  std::vector<std::string> corpus = MakeCorpus(24, 99);
  evaluator.EvaluateCorpus(corpus, w.alphabet, true);
  EXPECT_EQ(evaluator.stats().frozen_misses, 0u);
  EXPECT_EQ(evaluator.stats().hit_rate(), 1.0);
  EXPECT_GT(evaluator.stats().frozen_hits, 0u);
}

TEST(FrozenBank, OverflowMapsBackIntoFrozenSpace) {
  Workload w(SmallQueryTexts());
  ASSERT_TRUE(w.bank.shared->ExploreAll(1u << 20));
  FrozenBank frozen = FrozenBank::Freeze(*w.bank.shared);
  // The snapshot is total, so every overflow step's target tuple exists
  // in frozen space and must come back as an untagged frozen id equal to
  // the snapshot's own answer.
  OverflowBank overflow(&frozen);
  StateId q = frozen.initial();
  for (Symbol a = 0; a < frozen.num_symbols(); ++a) {
    StateId via_overflow = overflow.StepInternal(q, a);
    EXPECT_FALSE(OverflowBank::IsOverflowId(via_overflow));
    EXPECT_EQ(via_overflow, frozen.Internal(q, a));
    StateId h1, h2;
    StateId lin = overflow.StepCall(q, a, &h1);
    EXPECT_EQ(lin, frozen.CallLinear(q, a));
    h2 = frozen.CallHier(q, a);
    EXPECT_EQ(h1, h2);
    EXPECT_EQ(overflow.StepReturn(q, h2, a), frozen.Return(q, h2, a));
  }
  EXPECT_GT(overflow.steps(), 0u);
}

// The tentpole differential: sharded evaluation at N ∈ {1, 2, 8} threads
// must equal the single-stream engine bit for bit.
TEST(ShardedEvaluator, MatchesSingleStreamAtEveryThreadCount) {
  Workload w(SmallQueryTexts());
  std::vector<std::string> corpus = MakeCorpus(64, 7);
  std::vector<DocResult> want = ReferenceResults(w, corpus);
  ASSERT_TRUE(w.bank.shared->ExploreAll(1u << 20));
  FrozenBank frozen = FrozenBank::Freeze(*w.bank.shared);
  for (size_t threads : {1u, 2u, 8u}) {
    ShardedEvaluator evaluator(&frozen, w.num_symbols, w.other, threads);
    std::vector<DocResult> got =
        evaluator.EvaluateCorpus(corpus, w.alphabet, true);
    SCOPED_TRACE("threads=" + std::to_string(threads));
    ExpectSameResults(want, got);
  }
}

// Freeze on a training corpus that misses most of what evaluation sees:
// the overflow fallback must keep results identical while the stats
// report real misses.
TEST(ShardedEvaluator, OverflowFallbackKeepsResultsIdentical) {
  Workload w(RichQueryTexts());
  std::vector<std::string> corpus = MakeCorpus(48, 21);
  std::vector<DocResult> want = ReferenceResults(w, corpus);
  // Train on two tiny shallow documents only.
  QueryEngine trainer(w.num_symbols);
  trainer.set_other_symbol(w.other);
  trainer.AddBank(w.bank.shared.get());
  Alphabet train_alpha = w.alphabet;
  for (const std::string& doc : {std::string("<a><b>x</b></a>"),
                                 std::string("<c/>")}) {
    trainer.RunAll(doc, &train_alpha);
  }
  FrozenBank frozen = FrozenBank::Freeze(*w.bank.shared);
  for (size_t threads : {1u, 2u, 8u}) {
    ShardedEvaluator evaluator(&frozen, w.num_symbols, w.other, threads);
    std::vector<DocResult> got =
        evaluator.EvaluateCorpus(corpus, w.alphabet, true);
    SCOPED_TRACE("threads=" + std::to_string(threads));
    ExpectSameResults(want, got);
    EXPECT_GT(evaluator.stats().frozen_misses, 0u);
    EXPECT_LT(evaluator.stats().hit_rate(), 1.0);
  }
}

// The extreme coverage gap: freeze a bank nothing was ever streamed
// through — only the initial state is frozen, every step overflows.
TEST(ShardedEvaluator, UntrainedFreezeStillCorrect) {
  Workload w(RichQueryTexts());
  std::vector<std::string> corpus = MakeCorpus(16, 5);
  std::vector<DocResult> want = ReferenceResults(w, corpus);
  FrozenBank frozen = FrozenBank::Freeze(*w.bank.shared);
  ASSERT_EQ(frozen.num_states(), 1u);
  ShardedEvaluator evaluator(&frozen, w.num_symbols, w.other, 4);
  std::vector<DocResult> got =
      evaluator.EvaluateCorpus(corpus, w.alphabet, true);
  ExpectSameResults(want, got);
  EXPECT_EQ(evaluator.stats().frozen_hits, 0u);
}

TEST(ShardedEvaluator, EmptyCorpus) {
  Workload w(SmallQueryTexts());
  FrozenBank frozen = FrozenBank::Freeze(*w.bank.shared);
  ShardedEvaluator evaluator(&frozen, w.num_symbols, w.other, 4);
  std::vector<DocResult> got =
      evaluator.EvaluateCorpus({}, w.alphabet, true);
  EXPECT_TRUE(got.empty());
  EXPECT_EQ(evaluator.stats().documents, 0u);
  EXPECT_EQ(evaluator.stats().hit_rate(), 1.0);
}

TEST(SplitTopLevel, ChunksConcatenateToTheInput) {
  const std::string doc =
      "<!-- preamble --><a><b>x</b></a>stray text<c/><d><e/>"
      "<!-- <f> inside comment --></d></weird><g><unclosed>";
  std::vector<std::string> chunks = SplitTopLevel(doc);
  std::string joined;
  for (const std::string& c : chunks) joined += c;
  EXPECT_EQ(joined, doc);
  // <a>…</a> (with the preamble comment), <c/> (with the stray text),
  // <d>…</d>, the stray </weird>, and the trailing unclosed spill.
  ASSERT_EQ(chunks.size(), 5u);
  EXPECT_EQ(chunks[0], "<!-- preamble --><a><b>x</b></a>");
  EXPECT_EQ(chunks[1], "stray text<c/>");
  EXPECT_EQ(chunks[2], "<d><e/><!-- <f> inside comment --></d>");
  EXPECT_EQ(chunks[3], "</weird>");
  EXPECT_EQ(chunks[4], "<g><unclosed>");
}

TEST(SplitTopLevel, RecordStreamShardsLikeACorpus) {
  // One huge record-stream document splits into records; evaluating the
  // records as a sharded corpus equals evaluating each alone.
  std::string doc;
  for (int i = 0; i < 12; ++i) {
    doc += i % 2 == 0 ? "<a><b>x</b></a>" : "<c><d/></c>";
  }
  std::vector<std::string> records = SplitTopLevel(doc);
  ASSERT_EQ(records.size(), 12u);
  Workload w(SmallQueryTexts());
  std::vector<DocResult> want = ReferenceResults(w, records);
  ASSERT_TRUE(w.bank.shared->ExploreAll(1u << 20));
  FrozenBank frozen = FrozenBank::Freeze(*w.bank.shared);
  ShardedEvaluator evaluator(&frozen, w.num_symbols, w.other, 8);
  ExpectSameResults(want,
                    evaluator.EvaluateCorpus(records, w.alphabet, true));
}

TEST(SplitTopLevel, UnstructuredInputIsOneChunk) {
  EXPECT_EQ(SplitTopLevel("just text, no tags"),
            std::vector<std::string>{"just text, no tags"});
  EXPECT_EQ(SplitTopLevel(""), std::vector<std::string>{""});
}

TEST(ShardedEvaluator, AttachedRegistryAccountsForTheWholeCorpus) {
  Workload w(RichQueryTexts());
  std::vector<std::string> corpus = MakeCorpus(24, 99);
  std::vector<DocResult> want = ReferenceResults(w, corpus);
  FrozenBank frozen = FrozenBank::Freeze(*w.bank.shared);
  ShardedEvaluator evaluator(&frozen, w.num_symbols, w.other, 4);
  StatsRegistry registry;
  evaluator.AttachStats(&registry);
  std::vector<DocResult> got =
      evaluator.EvaluateCorpus(corpus, w.alphabet, true);
  ExpectSameResults(want, got);  // instrumentation never changes results
  // Per-shard tallies must account for every document and byte exactly.
  StatsSink agg;
  registry.Aggregate(&agg);
  size_t total_bytes = 0;
  for (const std::string& doc : corpus) total_bytes += doc.size();
  EXPECT_EQ(agg.shard_docs.value(), corpus.size());
  EXPECT_EQ(agg.shard_bytes.value(), total_bytes);
  EXPECT_GT(agg.shard_positions.value(), 0u);
  // The registry's frozen counters agree with the legacy ServeStats.
  ServeStats stats = evaluator.stats();
  EXPECT_EQ(agg.frozen_hits.value(), stats.frozen_hits);
  EXPECT_EQ(agg.frozen_misses.value(), stats.frozen_misses);
  // Utilization of every shard renders as a number in [0, 1].
  std::string json = registry.RenderJson();
  EXPECT_NE(json.find("\"label\":\"shard/0\""), std::string::npos);
  EXPECT_NE(json.find("\"label\":\"shard/3\""), std::string::npos);
  // A second corpus pass keeps accumulating into the same sinks.
  evaluator.EvaluateCorpus(corpus, w.alphabet, true);
  StatsSink agg2;
  registry.Aggregate(&agg2);
  EXPECT_EQ(agg2.shard_docs.value(), 2 * corpus.size());
  EXPECT_EQ(agg2.frozen_hits.value() + agg2.frozen_misses.value(),
            2 * (stats.frozen_hits + stats.frozen_misses));
}

}  // namespace
}  // namespace nw
