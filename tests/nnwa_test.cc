// Tests for nondeterministic NWAs (§3.2): the summary-pair runner, the
// P0 (hierarchical initial) semantics, and determinization, cross-validated
// exhaustively on short words and randomly on longer ones.
#include "nwa/nnwa.h"

#include <gtest/gtest.h>

#include "nw/generate.h"
#include "nwa/determinize.h"
#include "nwa/families.h"
#include "nwa/nwa.h"
#include "support/rng.h"

namespace nw {
namespace {

// Nondeterministic NWA over {a,b} accepting words that contain some call
// position whose matching return carries a *different* symbol (a "parse
// defect" detector). Guesses the defective call.
Nnwa DefectDetector() {
  Nnwa n(2);
  StateId scan = n.AddState(false);    // scanning, nothing guessed
  StateId inside = n.AddState(false);  // inside the guessed call
  StateId hit = n.AddState(true);      // defect confirmed
  // One guess marker per call symbol — the mark must remember which symbol
  // the guessed call carried.
  StateId hmark[2] = {n.AddState(false), n.AddState(false)};
  StateId hplain = n.AddState(false);  // unmarked hierarchical edge
  n.AddInitial(scan);
  n.AddHierInitial(hplain);
  for (Symbol c : {0u, 1u}) {
    n.AddInternal(scan, c, scan);
    n.AddCall(scan, c, scan, hplain);
    n.AddReturn(scan, hplain, c, scan);
    // Guess: this call's return will mismatch.
    n.AddCall(scan, c, inside, hmark[c]);
    n.AddInternal(inside, c, inside);
    n.AddCall(inside, c, inside, hplain);
    n.AddReturn(inside, hplain, c, inside);
    // The marked return: mismatching symbol only.
    n.AddReturn(inside, hmark[c], 1 - c, hit);
    // After the hit: free run.
    n.AddInternal(hit, c, hit);
    n.AddCall(hit, c, hit, hplain);
    n.AddReturn(hit, hplain, c, hit);
  }
  return n;
}

// Oracle: some matched pair (i, j) has symbol(i) != symbol(j).
bool HasDefect(const NestedWord& n) {
  Matching m(n);
  for (size_t i = 0; i < n.size(); ++i) {
    if (n.kind(i) == Kind::kCall && m.partner(i) >= 0 &&
        n.symbol(i) != n.symbol(static_cast<size_t>(m.partner(i)))) {
      return true;
    }
  }
  return false;
}

TEST(Nnwa, DefectDetectorExhaustiveShortWords) {
  Nnwa n = DefectDetector();
  for (size_t len = 0; len <= 4; ++len) {
    for (const NestedWord& w : EnumerateNestedWords(2, len)) {
      EXPECT_EQ(n.Accepts(w), HasDefect(w));
    }
  }
}

TEST(Nnwa, DefectDetectorRandomLongWords) {
  Nnwa n = DefectDetector();
  Rng rng(2);
  for (int iter = 0; iter < 300; ++iter) {
    NestedWord w = RandomNestedWord(&rng, 2, 5 + rng.Below(30));
    EXPECT_EQ(n.Accepts(w), HasDefect(w)) << iter;
  }
}

TEST(Nnwa, FromNwaPreservesLanguage) {
  for (int s : {1, 2, 3}) {
    Nwa det = Thm3PathNwa(s);
    Nnwa lifted = Nnwa::FromNwa(det);
    Rng rng(11 + s);
    for (int iter = 0; iter < 200; ++iter) {
      NestedWord w = RandomNestedWord(&rng, 2, rng.Below(2 * s + 4));
      EXPECT_EQ(det.Accepts(w), lifted.Accepts(w));
    }
    for (uint64_t bits = 0; bits < (1ull << s); ++bits) {
      std::vector<Symbol> word(s);
      for (int i = 0; i < s; ++i) word[i] = (bits >> i) & 1;
      EXPECT_TRUE(lifted.Accepts(NestedWord::Path(word)));
    }
  }
}

TEST(Nnwa, PendingReturnUsesP0) {
  // Two hierarchical initials: pending returns may read either.
  Nnwa n(1);
  StateId q0 = n.AddState(false);
  StateId acc = n.AddState(true);
  StateId p1 = n.AddState(false);
  StateId p2 = n.AddState(false);
  n.AddInitial(q0);
  n.AddHierInitial(p1);
  n.AddHierInitial(p2);
  n.AddReturn(q0, p2, 0, acc);  // reachable only via P0 ∋ p2
  EXPECT_TRUE(n.Accepts(NestedWord({Return(0)})));
  // Without p2 in P0 the word is rejected.
  Nnwa n2(1);
  q0 = n2.AddState(false);
  acc = n2.AddState(true);
  p1 = n2.AddState(false);
  p2 = n2.AddState(false);
  n2.AddInitial(q0);
  n2.AddHierInitial(p1);
  n2.AddReturn(q0, p2, 0, acc);
  EXPECT_FALSE(n2.Accepts(NestedWord({Return(0)})));
}

TEST(Nnwa, RunnerFrontierBounded) {
  Nnwa n = DefectDetector();
  NnwaRunner r(n);
  Rng rng(4);
  NestedWord w = RandomWellMatched(&rng, 2, 400);
  r.Reset();
  size_t max_frontier = 0;
  for (const TaggedSymbol& t : w.tagged()) {
    r.Feed(t);
    max_frontier = std::max(max_frontier, r.FrontierSize());
  }
  // Frontier is a set of pairs over 5 states: ≤ 25.
  EXPECT_LE(max_frontier, n.num_states() * n.num_states());
}

TEST(Determinize, DefectDetectorEquivalent) {
  Nnwa n = DefectDetector();
  DeterminizeResult det = Determinize(n);
  // Exhaustive agreement on short words.
  for (size_t len = 0; len <= 4; ++len) {
    for (const NestedWord& w : EnumerateNestedWords(2, len)) {
      EXPECT_EQ(det.nwa.Accepts(w), n.Accepts(w));
    }
  }
  // Random agreement on longer words.
  Rng rng(5);
  for (int iter = 0; iter < 300; ++iter) {
    NestedWord w = RandomNestedWord(&rng, 2, 5 + rng.Below(40));
    EXPECT_EQ(det.nwa.Accepts(w), n.Accepts(w)) << iter;
  }
}

TEST(Determinize, DeterministicInputStaysSmall) {
  // Determinizing an already-deterministic automaton must not blow up:
  // every reachable pair set is then a singleton-per-anchor set.
  Nwa det = Thm3PathNwa(3);
  Nnwa lifted = Nnwa::FromNwa(det);
  DeterminizeResult res = Determinize(lifted);
  EXPECT_LE(res.nwa.num_states(), 4 * det.num_states() + 2);
  Rng rng(6);
  for (int iter = 0; iter < 200; ++iter) {
    NestedWord w = RandomNestedWord(&rng, 2, rng.Below(10));
    EXPECT_EQ(res.nwa.Accepts(w), det.Accepts(w));
  }
}

TEST(Determinize, RandomNnwaDifferential) {
  // Random small nondeterministic automata: determinization agrees with
  // the summary runner on exhaustive short words.
  Rng rng(7);
  for (int trial = 0; trial < 20; ++trial) {
    const size_t states = 3;
    const size_t syms = 2;
    Nnwa n(syms);
    for (size_t i = 0; i < states; ++i) n.AddState(rng.Chance(1, 3));
    n.AddInitial(static_cast<StateId>(rng.Below(states)));
    n.AddHierInitial(static_cast<StateId>(rng.Below(states)));
    size_t internals = 2 + rng.Below(4);
    for (size_t i = 0; i < internals; ++i) {
      n.AddInternal(static_cast<StateId>(rng.Below(states)),
                    static_cast<Symbol>(rng.Below(syms)),
                    static_cast<StateId>(rng.Below(states)));
    }
    size_t calls = 2 + rng.Below(4);
    for (size_t i = 0; i < calls; ++i) {
      n.AddCall(static_cast<StateId>(rng.Below(states)),
                static_cast<Symbol>(rng.Below(syms)),
                static_cast<StateId>(rng.Below(states)),
                static_cast<StateId>(rng.Below(states)));
    }
    size_t rets = 2 + rng.Below(5);
    for (size_t i = 0; i < rets; ++i) {
      n.AddReturn(static_cast<StateId>(rng.Below(states)),
                  static_cast<StateId>(rng.Below(states)),
                  static_cast<Symbol>(rng.Below(syms)),
                  static_cast<StateId>(rng.Below(states)));
    }
    DeterminizeResult det = Determinize(n);
    for (size_t len = 0; len <= 3; ++len) {
      for (const NestedWord& w : EnumerateNestedWords(syms, len)) {
        ASSERT_EQ(det.nwa.Accepts(w), n.Accepts(w))
            << "trial " << trial << " len " << len;
      }
    }
    Rng rng2(trial);
    for (int iter = 0; iter < 100; ++iter) {
      NestedWord w = RandomNestedWord(&rng2, syms, 4 + rng2.Below(12));
      ASSERT_EQ(det.nwa.Accepts(w), n.Accepts(w)) << "trial " << trial;
    }
  }
}

}  // namespace
}  // namespace nw
