// Tests for the word/tree operations of §2.4, including the algebraic
// identities the paper states (prefix·suffix reconstitution, reversal
// involution, concatenation re-matching pending edges, tree insertion).
#include "nw/ops.h"

#include <gtest/gtest.h>

#include "nw/generate.h"
#include "nw/text.h"
#include "support/rng.h"

namespace nw {
namespace {

NestedWord P(const std::string& s, Alphabet* sigma) {
  auto r = ParseNestedWord(s, sigma);
  EXPECT_TRUE(r.ok()) << r.status().message();
  return r.Take();
}

TEST(Ops, ConcatLengths) {
  Alphabet sigma;
  NestedWord a = P("<a b", &sigma);
  NestedWord b = P("c a>", &sigma);
  NestedWord c = Concat(a, b);
  EXPECT_EQ(c.size(), a.size() + b.size());
}

TEST(Ops, ConcatMatchesPendingCallWithPendingReturn) {
  // §2.4: "the matching relation of the concatenation can connect
  // unmatched calls of the first with the unmatched returns of the latter."
  Alphabet sigma;
  NestedWord a = P("<a b", &sigma);    // pending call at 0
  NestedWord b = P("c a>", &sigma);    // pending return at 1
  NestedWord c = Concat(a, b);
  Matching m(c);
  EXPECT_EQ(m.partner(0), 3);
  EXPECT_EQ(m.partner(3), 0);
  EXPECT_TRUE(c.IsWellMatched());
}

TEST(Ops, SubwordTurnsCrossingEdgesPending) {
  // §2.4: if i⇝j, a subword containing only i has i⇝+∞, and a subword
  // containing only j has −∞⇝j.
  Alphabet sigma;
  NestedWord n = P("<a b a>", &sigma);
  NestedWord left = Subword(n, 0, 2);  // <a b
  NestedWord right = Subword(n, 1, 3);  // b a>
  Matching ml(left), mr(right);
  EXPECT_EQ(ml.partner(0), Matching::kPendingInf);
  EXPECT_EQ(mr.partner(1), Matching::kPendingNegInf);
}

TEST(Ops, EmptyAndOutOfRangeSubwords) {
  Alphabet sigma;
  NestedWord n = P("<a b a>", &sigma);
  EXPECT_TRUE(Subword(n, 2, 2).empty());
  EXPECT_TRUE(Subword(n, 5, 9).empty());
  EXPECT_TRUE(Subword(n, 2, 1).empty());
  EXPECT_EQ(Subword(n, 1, 99).size(), 2u);  // clamped to the end
}

TEST(Ops, PrefixPlusSuffixIsIdentity) {
  // §2.4: concatenating n[1,i] and n[i+1,ℓ] gives back n — for every split
  // point, including ones that cut hierarchical edges.
  Rng rng(42);
  for (int iter = 0; iter < 50; ++iter) {
    NestedWord n = RandomNestedWord(&rng, 3, 20);
    for (size_t k = 0; k <= n.size(); ++k) {
      EXPECT_EQ(Concat(Prefix(n, k), Suffix(n, k)), n);
    }
  }
}

TEST(Ops, ReverseIsInvolution) {
  Rng rng(43);
  for (int iter = 0; iter < 100; ++iter) {
    NestedWord n = RandomNestedWord(&rng, 3, 30);
    EXPECT_EQ(Reverse(Reverse(n)), n);
  }
}

TEST(Ops, ReverseFlipsHierarchicalEdges) {
  Alphabet sigma;
  NestedWord n = P("<a b a>", &sigma);
  NestedWord r = Reverse(n);
  // Reverse of <a b a>  is  <a b a> again (call/return swap + flip).
  EXPECT_EQ(r.kind(0), Kind::kCall);
  EXPECT_EQ(r.kind(1), Kind::kInternal);
  EXPECT_EQ(r.kind(2), Kind::kReturn);
  // Depth is preserved by reversal.
  Rng rng(44);
  for (int iter = 0; iter < 50; ++iter) {
    NestedWord w = RandomWellMatched(&rng, 2, 24);
    EXPECT_EQ(Reverse(w).Depth(), w.Depth());
    EXPECT_TRUE(Reverse(w).IsWellMatched());
  }
}

TEST(Ops, ReverseSwapsPendingDirections) {
  Alphabet sigma;
  NestedWord n = P("<a <b", &sigma);  // two pending calls
  NestedWord r = Reverse(n);
  Matching m(r);
  EXPECT_EQ(m.pending_returns(), 2u);
  EXPECT_EQ(m.pending_calls(), 0u);
}

TEST(Ops, InsertAfterEveryLabeledPosition) {
  Alphabet sigma;
  NestedWord n = P("a b a", &sigma);
  NestedWord ins = P("<c c>", &sigma);
  NestedWord out = Insert(n, sigma.Find("a"), ins);
  EXPECT_EQ(out, P("a <c c> b a <c c>", &sigma));
}

TEST(Ops, InsertNoOccurrencesIsIdentity) {
  Alphabet sigma;
  NestedWord n = P("a b", &sigma);
  Symbol d = sigma.Intern("d");
  EXPECT_EQ(Insert(n, d, P("<c c>", &sigma)), n);
}

TEST(Ops, InsertIntoTreeWordIsTreeInsertion) {
  // §2.4: insertion of a tree word into another tree word is tree
  // insertion — the result is again a tree word.
  Alphabet sigma;
  NestedWord host = P("<r <a a> r>", &sigma);
  NestedWord sub = P("<b b>", &sigma);
  // Insert after every "a" position: both the call and the return of the
  // a-node are a-labeled, so the subtree lands inside and after the node.
  NestedWord out = Insert(host, sigma.Find("a"), sub);
  EXPECT_TRUE(out.IsWellMatched());
  EXPECT_EQ(out, P("<r <a <b b> a> <b b> r>", &sigma));
  EXPECT_TRUE(out.IsTreeWord());
}

TEST(Ops, InsertPreservesWellMatchedness) {
  Rng rng(45);
  for (int iter = 0; iter < 50; ++iter) {
    NestedWord host = RandomWellMatched(&rng, 2, 16);
    NestedWord sub = RandomWellMatched(&rng, 2, 6);
    NestedWord out = Insert(host, 0, sub);
    EXPECT_TRUE(out.IsWellMatched());
  }
}

TEST(Ops, SubwordDepthNeverExceedsOriginal) {
  Rng rng(46);
  for (int iter = 0; iter < 50; ++iter) {
    NestedWord n = RandomWellMatched(&rng, 2, 30);
    size_t d = n.Depth();
    for (size_t k = 0; k + 1 < n.size(); k += 3) {
      EXPECT_LE(Subword(n, k, k + 7).Depth(), d);
    }
  }
}

}  // namespace
}  // namespace nw
