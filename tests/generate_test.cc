// Tests for the synthetic workload generators: shape guarantees that the
// property tests and benchmarks rely on.
#include "nw/generate.h"

#include <gtest/gtest.h>

namespace nw {
namespace {

TEST(Generate, RandomNestedWordLengthAndSymbols) {
  Rng rng(1);
  for (size_t len : {0u, 1u, 17u, 256u}) {
    NestedWord n = RandomNestedWord(&rng, 3, len);
    EXPECT_EQ(n.size(), len);
    for (size_t i = 0; i < n.size(); ++i) EXPECT_LT(n.symbol(i), 3u);
  }
}

TEST(Generate, WellMatchedIsWellMatchedAndExactLength) {
  Rng rng(2);
  for (size_t len : {0u, 1u, 2u, 9u, 100u, 1001u}) {
    NestedWord n = RandomWellMatched(&rng, 2, len);
    EXPECT_EQ(n.size(), len);
    EXPECT_TRUE(n.IsWellMatched());
  }
}

TEST(Generate, TreeWordIsTreeWord) {
  Rng rng(3);
  for (size_t nodes : {1u, 2u, 10u, 64u}) {
    NestedWord n = RandomTreeWord(&rng, 2, nodes);
    EXPECT_EQ(n.size(), 2 * nodes);
    EXPECT_TRUE(n.IsTreeWord());
  }
}

TEST(Generate, DepthBoundIsRespected) {
  Rng rng(4);
  for (size_t depth : {1u, 3u, 8u}) {
    NestedWord n = RandomWithDepth(&rng, 2, 400, depth);
    EXPECT_EQ(n.size(), 400u);
    EXPECT_TRUE(n.IsWellMatched());
    EXPECT_LE(n.Depth(), depth);
  }
}

TEST(Generate, Determinism) {
  Rng a(7), b(7);
  EXPECT_EQ(RandomNestedWord(&a, 3, 50), RandomNestedWord(&b, 3, 50));
  EXPECT_EQ(RandomWellMatched(&a, 3, 50), RandomWellMatched(&b, 3, 50));
}

TEST(Generate, VariedShapes) {
  // Not all generated well-matched words of the same length are equal
  // (sanity check on generator entropy).
  Rng rng(8);
  NestedWord n1 = RandomWellMatched(&rng, 2, 40);
  NestedWord n2 = RandomWellMatched(&rng, 2, 40);
  EXPECT_FALSE(n1 == n2);
}

}  // namespace
}  // namespace nw
