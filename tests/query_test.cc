// Tests for the NWQuery subsystem: parser round-trips, compiled-automaton
// semantics against a naive tree-walk oracle (on well-formed AND malformed
// documents), and the batched engine's one-traversal guarantee.
#include "query/nwquery.h"

#include <gtest/gtest.h>

#include <functional>

#include "query/compile.h"
#include "query/engine.h"
#include "support/rng.h"
#include "xml/xml.h"

namespace nw {
namespace {

// ---------------------------------------------------------------------------
// Naive oracle: one pass over the tagged stream, maintaining the chain of
// open element names. A close tag closes the innermost open element
// regardless of its name; a stray close at top level leaves the context at
// the root. Matching a path pattern against the chain is brute-force
// recursion — deliberately nothing like the automaton construction.
// ---------------------------------------------------------------------------

bool PathChainMatches(const std::vector<PathStep>& steps,
                      const std::vector<Symbol>& chain) {
  // match(i, j): steps[i..] consumes exactly chain[j..].
  std::function<bool(size_t, size_t)> match = [&](size_t i, size_t j) {
    if (i == steps.size()) return j == chain.size();
    if (j == chain.size()) return false;
    const PathStep& s = steps[i];
    auto name_ok = [&](size_t jj) {
      return s.name == Alphabet::kNoSymbol || chain[jj] == s.name;
    };
    if (s.axis == Axis::kChild) {
      return name_ok(j) && match(i + 1, j + 1);
    }
    for (size_t jj = j; jj < chain.size(); ++jj) {
      if (name_ok(jj) && match(i + 1, jj + 1)) return true;
    }
    return false;
  };
  return match(0, 0);
}

bool OracleEval(const Query& q, const NestedWord& doc) {
  switch (q.op()) {
    case Query::Op::kAnd:
      return OracleEval(q.left(), doc) && OracleEval(q.right(), doc);
    case Query::Op::kOr:
      return OracleEval(q.left(), doc) || OracleEval(q.right(), doc);
    case Query::Op::kNot:
      return !OracleEval(q.left(), doc);
    default:
      break;
  }
  std::vector<Symbol> chain;
  bool path_hit = false;
  size_t order_progress = 0;
  size_t max_depth = 0;
  for (const TaggedSymbol& t : doc.tagged()) {
    switch (t.kind) {
      case Kind::kCall:
        chain.push_back(t.symbol);
        max_depth = std::max(max_depth, chain.size());
        if (q.op() == Query::Op::kPath && !path_hit) {
          path_hit = PathChainMatches(q.steps(), chain);
        }
        if (q.op() == Query::Op::kOrder &&
            order_progress < q.names().size() &&
            t.symbol == q.names()[order_progress]) {
          ++order_progress;
        }
        break;
      case Kind::kReturn:
        if (!chain.empty()) chain.pop_back();
        break;
      case Kind::kInternal:
        break;
    }
  }
  switch (q.op()) {
    case Query::Op::kPath:
      return path_hit;
    case Query::Op::kOrder:
      return order_progress == q.names().size();
    case Query::Op::kMinDepth:
      return max_depth >= q.min_depth();
    default:
      return false;  // unreachable
  }
}

/// Randomly corrupts a well-formed document: drops close tags and injects
/// stray ones, producing pending calls and pending returns.
std::string Corrupt(Rng* rng, const std::string& doc) {
  std::string out;
  size_t i = 0;
  while (i < doc.size()) {
    if (doc[i] == '<' && i + 1 < doc.size() && doc[i + 1] == '/' &&
        rng->Chance(1, 5)) {
      // Drop this close tag.
      while (i < doc.size() && doc[i] != '>') ++i;
      if (i < doc.size()) ++i;
      continue;
    }
    if (doc[i] == '<' && rng->Chance(1, 12)) {
      out += "</zz>";  // stray close with a name unknown to the queries
    }
    out += doc[i++];
  }
  return out;
}

// The ≥8 distinct query shapes the acceptance bar asks for, exercising
// every production of the grammar.
const char* kQueryShapes[] = {
    "/a",
    "//b",
    "/a/b",
    "/a//b",
    "//a/*/b",
    "/*",
    "a then b",
    "a then b then c",
    "depth >= 3",
    "/a and //b",
    "//a or //c",
    "not //b",
    "(/a or /c) and not depth >= 4",
    "not (a then b) and //b",
};

Alphabet QueryAlphabet() {
  Alphabet a;
  a.Intern("a");
  a.Intern("b");
  a.Intern("c");
  a.Intern("#text");
  a.Intern("zz");  // appears only via Corrupt()'s stray closes
  return a;
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

TEST(QueryParser, FormatIsANormalForm) {
  Alphabet sigma;
  for (const char* text : kQueryShapes) {
    Result<Query> q = ParseQuery(text, &sigma);
    ASSERT_TRUE(q.ok()) << text << ": " << q.status().message();
    std::string printed = FormatQuery(*q, sigma);
    Result<Query> again = ParseQuery(printed, &sigma);
    ASSERT_TRUE(again.ok()) << printed;
    EXPECT_TRUE(*q == *again) << text << " vs " << printed;
    EXPECT_EQ(printed, FormatQuery(*again, sigma)) << text;
  }
}

TEST(QueryParser, PrecedenceAndAssociativity) {
  Alphabet sigma;
  // `not` binds tighter than `and`, `and` tighter than `or`.
  Query q = ParseQuery("not /a and /b or /c", &sigma).Take();
  EXPECT_EQ(q.op(), Query::Op::kOr);
  EXPECT_EQ(q.left().op(), Query::Op::kAnd);
  EXPECT_EQ(q.left().left().op(), Query::Op::kNot);
  // Parens override.
  Query p = ParseQuery("not (/a and (/b or /c))", &sigma).Take();
  EXPECT_EQ(p.op(), Query::Op::kNot);
  EXPECT_EQ(p.left().op(), Query::Op::kAnd);
  // Binary operators left-associate.
  Query l = ParseQuery("/a or /b or /c", &sigma).Take();
  EXPECT_EQ(l.left().op(), Query::Op::kOr);
  EXPECT_EQ(l.right().op(), Query::Op::kPath);
}

TEST(QueryParser, PathStructure) {
  Alphabet sigma;
  Query q = ParseQuery("/a//b/*", &sigma).Take();
  ASSERT_EQ(q.op(), Query::Op::kPath);
  ASSERT_EQ(q.steps().size(), 3u);
  EXPECT_EQ(q.steps()[0].axis, Axis::kChild);
  EXPECT_EQ(q.steps()[0].name, sigma.Find("a"));
  EXPECT_EQ(q.steps()[1].axis, Axis::kDescendant);
  EXPECT_EQ(q.steps()[1].name, sigma.Find("b"));
  EXPECT_EQ(q.steps()[2].axis, Axis::kChild);
  EXPECT_EQ(q.steps()[2].name, Alphabet::kNoSymbol);
}

TEST(QueryParser, RejectsMalformedInput) {
  Alphabet sigma;
  for (const char* bad : {
           "",                // empty
           "/",               // path without a step
           "//",              // likewise
           "/a and",          // dangling operator
           "a",               // bare name without 'then'
           "a then",          // dangling then
           "depth >= x",      // non-integer bound
           "depth >= 16777216",              // bound exceeds the state cap
           "depth >= 99999999999999999999",  // bound overflows
           "depth 3",         // missing >=
           "(/a or /b",       // unbalanced paren
           "/a trailing",     // trailing input (name w/o then → atom error)
           "/a ! /b",         // unknown token
           "not",             // operand missing
           "a then depth",    // keyword as name
       }) {
    Result<Query> q = ParseQuery(bad, &sigma);
    EXPECT_FALSE(q.ok()) << "'" << bad << "' unexpectedly parsed";
  }
}

TEST(QueryParser, DeepNestingIsAnErrorNotAStackOverflow) {
  Alphabet sigma;
  std::string deep;
  for (int i = 0; i < 100000; ++i) deep += "not ";
  deep += "/a";
  Result<Query> q = ParseQuery(deep, &sigma);
  ASSERT_FALSE(q.ok());
  EXPECT_NE(q.status().message().find("nested too deeply"),
            std::string::npos);
  // A reasonable nesting depth still parses.
  std::string ok(64, ' ');
  ok.clear();
  for (int i = 0; i < 64; ++i) ok += "not ";
  ok += "/a";
  EXPECT_TRUE(ParseQuery(ok, &sigma).ok());
}

TEST(QueryParser, ErrorsCarryOffsets) {
  Alphabet sigma;
  Result<Query> q = ParseQuery("/a and depth 3", &sigma);
  ASSERT_FALSE(q.ok());
  EXPECT_NE(q.status().message().find("offset 13"), std::string::npos)
      << q.status().message();
}

// ---------------------------------------------------------------------------
// Compiled semantics vs. the oracle
// ---------------------------------------------------------------------------

TEST(QueryCompile, HandPickedDocuments) {
  Alphabet sigma = QueryAlphabet();
  struct Case {
    const char* query;
    const char* doc;
    bool expect;
  };
  const Case cases[] = {
      {"/a", "<a></a>", true},
      {"/a", "<b><a></a></b>", false},  // a not at the root
      {"//b", "<a><c><b/></c></a>", true},
      {"//b", "<a><c></c></a>", false},
      {"/a/b", "<a><b/></a>", true},
      {"/a/b", "<a><c><b/></c></a>", false},  // b is a grandchild
      {"/a//b", "<a><c><b/></c></a>", true},
      {"/*", "<c></c>", true},
      {"//a/*/b", "<a><c><b/></c></a>", true},
      {"//a/*/b", "<a><b/></a>", false},  // no intermediate element
      {"a then b", "<a/><b/>", true},
      {"a then b", "<b/><a/>", false},
      {"depth >= 3", "<a><b><c/></b></a>", true},
      {"depth >= 3", "<a><b/></a>", false},
      {"/a and //b", "<a><b/></a>", true},
      {"/a and //b", "<a></a>", false},
      {"not //b", "<a><c/></a>", true},
      {"not //b", "<a><b/></a>", false},
      // Malformed documents: close tags close the innermost open element.
      {"/a/b", "<a><b>", true},         // pending calls still form the chain
      {"//b", "</c><b/>", true},        // stray close then a root b
      {"/a/b", "<a></c><b/>", false},   // </c> closes <a>; b is a root
      {"depth >= 2", "<a></a></a><a><b>", true},
  };
  for (const Case& c : cases) {
    Result<Query> q = ParseQuery(c.query, &sigma);
    ASSERT_TRUE(q.ok()) << c.query;
    Nwa a = CompileQuery(*q, sigma.size());
    Alphabet local = sigma;
    NestedWord doc = XmlToNestedWord(c.doc, &local);
    ASSERT_LE(local.size(), sigma.size()) << c.doc;
    EXPECT_EQ(a.Accepts(doc), c.expect) << c.query << " over " << c.doc;
    EXPECT_EQ(OracleEval(*q, doc), c.expect)
        << "oracle disagrees: " << c.query << " over " << c.doc;
  }
}

TEST(QueryCompile, MatchesOracleOnRandomDocuments) {
  Alphabet sigma = QueryAlphabet();
  std::vector<Query> queries;
  for (const char* text : kQueryShapes) {
    queries.push_back(ParseQuery(text, &sigma).Take());
  }
  std::vector<Nwa> compiled;
  for (const Query& q : queries) {
    compiled.push_back(CompileQuery(q, sigma.size()));
  }
  Rng rng(1234);
  Alphabet gen;  // element names only — no #text pseudo-symbol noise
  gen.Intern("a");
  gen.Intern("b");
  gen.Intern("c");
  for (int iter = 0; iter < 60; ++iter) {
    std::string doc =
        RandomXmlDocument(&rng, gen, 10 + rng.Below(80), 1 + rng.Below(7));
    if (rng.Chance(1, 2)) doc = Corrupt(&rng, doc);
    Alphabet local = sigma;
    NestedWord n = XmlToNestedWord(doc, &local);
    ASSERT_LE(local.size(), sigma.size()) << doc;
    for (size_t i = 0; i < queries.size(); ++i) {
      EXPECT_EQ(compiled[i].Accepts(n), OracleEval(queries[i], n))
          << kQueryShapes[i] << " over " << doc;
    }
  }
}

// ---------------------------------------------------------------------------
// Batched engine
// ---------------------------------------------------------------------------

TEST(QueryEngine, BatchedEqualsIndividualInOneTraversal) {
  Alphabet sigma = QueryAlphabet();
  std::vector<Query> queries;
  for (const char* text : kQueryShapes) {
    queries.push_back(ParseQuery(text, &sigma).Take());
  }
  // Pad the bank to K = 16 with extra shapes.
  queries.push_back(ParseQuery("//c//b", &sigma).Take());
  queries.push_back(ParseQuery("depth >= 1 and not /c", &sigma).Take());
  ASSERT_EQ(queries.size(), 16u);

  std::vector<Nwa> compiled;
  for (const Query& q : queries) {
    compiled.push_back(CompileQuery(q, sigma.size()));
  }
  QueryEngine engine(sigma.size());
  for (const Nwa& a : compiled) engine.Add(&a);
  ASSERT_EQ(engine.num_queries(), 16u);

  Rng rng(77);
  Alphabet gen;
  gen.Intern("a");
  gen.Intern("b");
  gen.Intern("c");
  size_t expected_traversals = 0;
  for (int iter = 0; iter < 25; ++iter) {
    std::string doc =
        RandomXmlDocument(&rng, gen, 20 + rng.Below(60), 1 + rng.Below(6));
    if (rng.Chance(1, 3)) doc = Corrupt(&rng, doc);
    Alphabet local = sigma;
    NestedWord n = XmlToNestedWord(doc, &local);
    std::vector<bool> batched = engine.RunAll(n);
    ++expected_traversals;
    // K = 16 queries, ONE stream traversal.
    EXPECT_EQ(engine.traversals(), expected_traversals);
    for (size_t i = 0; i < compiled.size(); ++i) {
      EXPECT_EQ(batched[i], compiled[i].Accepts(n)) << i << " over " << doc;
    }
  }
}

TEST(QueryEngine, ResidentStateIsDepthBoundedNotLengthBounded) {
  Alphabet sigma = QueryAlphabet();
  std::vector<Nwa> compiled;
  for (const char* text : {"/a//b", "//c", "depth >= 4", "not //b"}) {
    compiled.push_back(
        CompileQuery(ParseQuery(text, &sigma).Take(), sigma.size()));
  }
  Alphabet gen;
  gen.Intern("a");
  gen.Intern("b");
  gen.Intern("c");
  Rng rng(5);
  // Documents 16× longer leave the PEAK resident state bounded by the
  // (fixed) depth: ResidentStates() reports the stream's high-water
  // footprint, which must track depth, not length.
  for (size_t positions : {500u, 8000u}) {
    std::string doc = RandomXmlDocument(&rng, gen, positions, 6);
    QueryEngine engine(sigma.size());
    for (const Nwa& a : compiled) engine.Add(&a);
    Alphabet local = sigma;
    engine.RunAll(doc, &local);
    EXPECT_GE(engine.MaxStackDepth(), 2u);  // the bound is not vacuous
    EXPECT_LE(engine.MaxStackDepth(), 6u);
    EXPECT_LE(engine.ResidentStates(),
              compiled.size() * (6 + 1));  // K·(depth+1), length-free
  }
}

TEST(QueryEngine, RemapsUnknownSymbolsToCatchAll) {
  // Queries compiled over a closed alphabet still stream documents whose
  // element names were first seen after compilation.
  Alphabet sigma;
  sigma.Intern("a");
  Symbol other = sigma.Intern("%other");
  Query q = ParseQuery("/a", &sigma).Take();
  Query wild = ParseQuery("/*/*", &sigma).Take();
  Nwa qa = CompileQuery(q, sigma.size());
  Nwa qw = CompileQuery(wild, sigma.size());
  QueryEngine engine(sigma.size());
  engine.set_other_symbol(other);
  engine.Add(&qa);
  engine.Add(&qw);
  Alphabet local = sigma;
  NestedWord n = XmlToNestedWord("<mystery><deep/></mystery>", &local);
  ASSERT_GT(local.size(), sigma.size());  // new names really were interned
  std::vector<bool> r = engine.RunAll(n);
  EXPECT_FALSE(r[0]);  // the unknown root is not named 'a'
  EXPECT_TRUE(r[1]);   // but it does have structural depth 2
}

TEST(QueryEngine, EmptyBankAndLateRegistrationAreSafe) {
  Alphabet sigma = QueryAlphabet();
  QueryEngine engine(sigma.size());
  Alphabet local = sigma;
  // Feeding an empty bank (including calls) must not crash.
  NestedWord pending = XmlToNestedWord("<a><b>", &local);
  EXPECT_TRUE(engine.RunAll(pending).empty());
  // A stream with unclosed opens leaves frames behind; registering a
  // query afterwards discards them and realigns the shared stack.
  Nwa q1 = CompileQuery(ParseQuery("//b", &sigma).Take(), sigma.size());
  engine.Add(&q1);
  engine.RunAll(pending);
  EXPECT_EQ(engine.StackDepth(), 2u);  // <a> and <b> still open
  Nwa q2 = CompileQuery(ParseQuery("/a", &sigma).Take(), sigma.size());
  engine.Add(&q2);  // must not abort; frames are discarded
  std::vector<bool> r = engine.RunAll(pending);
  EXPECT_TRUE(r[0]);
  EXPECT_TRUE(r[1]);
}

TEST(QueryEngine, DeadRunsStayDeadAndReportLiveCount) {
  // An automaton with no transitions dies immediately; live counts drop.
  Alphabet sigma;
  sigma.Intern("a");
  Nwa dead(sigma.size());
  dead.set_initial(dead.AddState(true));
  Nwa alive = CompileQuery(ParseQuery("//a", &sigma).Take(), sigma.size());
  QueryEngine engine(sigma.size());
  engine.Add(&dead);
  engine.Add(&alive);
  engine.BeginStream();
  EXPECT_EQ(engine.Feed(Call(0)), 1u);  // the empty automaton died
  EXPECT_TRUE(engine.dead(0));
  EXPECT_FALSE(engine.dead(1));
  EXPECT_TRUE(engine.Accepting(1));
  EXPECT_FALSE(engine.Accepting(0));
}

}  // namespace
}  // namespace nw
