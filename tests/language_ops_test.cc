// Tests for the §3.2 closure constructions. Each operation is validated
// against the set-theoretic definition using exhaustive short words and
// random longer ones, with membership decided by the operand automata.
#include "nwa/language_ops.h"

#include <gtest/gtest.h>

#include "nw/generate.h"
#include "nw/ops.h"
#include "nwa/families.h"
#include "support/rng.h"

namespace nw {
namespace {

// L1: words with at least one b-labeled position (any kind).
Nnwa HasB() {
  Nnwa n(2);
  StateId no = n.AddState(false);
  StateId yes = n.AddState(true);
  StateId h = n.AddState(false);
  n.AddInitial(no);
  n.AddHierInitial(h);
  for (StateId q : {no, yes}) {
    for (Symbol c : {0u, 1u}) {
      StateId t = (q == yes || c == 1) ? yes : no;
      n.AddInternal(q, c, t);
      n.AddCall(q, c, t, h);
      n.AddReturn(q, h, c, t);
    }
  }
  return n;
}

bool HasBOracle(const NestedWord& w) {
  for (size_t i = 0; i < w.size(); ++i) {
    if (w.symbol(i) == 1) return true;
  }
  return false;
}

// L2: well-matched words (no pending calls or returns) — needs the
// hierarchical structure to detect pending calls.
Nnwa WellMatched() {
  Nnwa n(2);
  StateId empty = n.AddState(true);   // stack known-empty
  StateId open = n.AddState(false);   // at least one open call
  StateId he = n.AddState(false);     // frame: "stack was empty below"
  StateId ho = n.AddState(false);     // frame: "stack was open below"
  StateId bottom = n.AddState(false);
  n.AddInitial(empty);
  n.AddHierInitial(bottom);
  for (Symbol c : {0u, 1u}) {
    n.AddInternal(empty, c, empty);
    n.AddInternal(open, c, open);
    n.AddCall(empty, c, open, he);
    n.AddCall(open, c, open, ho);
    n.AddReturn(open, he, c, empty);
    n.AddReturn(open, ho, c, open);
    // No rule for the bottom marker: pending returns kill the run.
  }
  return n;
}

void ExpectLanguage(const Nnwa& actual,
                    const std::function<bool(const NestedWord&)>& oracle,
                    size_t syms, int seed, size_t max_len = 14) {
  for (size_t len = 0; len <= 4; ++len) {
    for (const NestedWord& w : EnumerateNestedWords(syms, len)) {
      ASSERT_EQ(actual.Accepts(w), oracle(w)) << "len " << len;
    }
  }
  Rng rng(seed);
  for (int iter = 0; iter < 250; ++iter) {
    NestedWord w = RandomNestedWord(&rng, syms, 5 + rng.Below(max_len));
    ASSERT_EQ(actual.Accepts(w), oracle(w)) << iter;
  }
}

TEST(LanguageOps, OperandSanity) {
  ExpectLanguage(HasB(), HasBOracle, 2, 1);
  ExpectLanguage(
      WellMatched(), [](const NestedWord& w) { return w.IsWellMatched(); }, 2,
      2);
}

TEST(LanguageOps, Union) {
  Nnwa u = Union(HasB(), WellMatched());
  ExpectLanguage(
      u,
      [](const NestedWord& w) { return HasBOracle(w) || w.IsWellMatched(); },
      2, 3);
}

TEST(LanguageOps, Intersect) {
  Nnwa i = Intersect(HasB(), WellMatched());
  ExpectLanguage(
      i,
      [](const NestedWord& w) { return HasBOracle(w) && w.IsWellMatched(); },
      2, 4);
}

TEST(LanguageOps, Complement) {
  Nwa c = Complement(WellMatched());
  Rng rng(5);
  for (size_t len = 0; len <= 4; ++len) {
    for (const NestedWord& w : EnumerateNestedWords(2, len)) {
      ASSERT_EQ(c.Accepts(w), !w.IsWellMatched()) << "len " << len;
    }
  }
  for (int iter = 0; iter < 250; ++iter) {
    NestedWord w = RandomNestedWord(&rng, 2, 5 + rng.Below(14));
    ASSERT_EQ(c.Accepts(w), !w.IsWellMatched()) << iter;
  }
  // De Morgan spot check: ¬(¬L1 ∪ ¬L2) = L1 ∩ L2.
  Nnwa lhs = Nnwa::FromNwa(
      Complement(Union(ComplementN(HasB()), ComplementN(WellMatched()))));
  ExpectLanguage(
      lhs,
      [](const NestedWord& w) { return HasBOracle(w) && w.IsWellMatched(); },
      2, 6, /*max_len=*/8);
}

TEST(LanguageOps, ConcatRematchesAcrossBoundary) {
  // Concat(L1, L2) membership: ∃ split point with prefix ∈ L1, suffix ∈ L2
  // — *as subwords*, i.e. with the cross-boundary edges cut to pending.
  Nnwa l1 = HasB();
  Nnwa l2 = WellMatched();
  Nnwa cat = Concat(l1, l2);
  auto oracle = [&](const NestedWord& w) {
    for (size_t i = 0; i <= w.size(); ++i) {
      if (l1.Accepts(Prefix(w, i)) && l2.Accepts(Suffix(w, i))) return true;
    }
    return false;
  };
  ExpectLanguage(cat, oracle, 2, 7, /*max_len=*/10);
}

TEST(LanguageOps, ConcatEpsilonCases) {
  // ε ∈ L(WellMatched), so Concat(WellMatched, HasB) must accept pure
  // HasB words, and vice versa.
  Nnwa cat = Concat(WellMatched(), HasB());
  EXPECT_TRUE(cat.Accepts(NestedWord({Internal(1)})));
  Nnwa cat2 = Concat(HasB(), WellMatched());
  EXPECT_TRUE(cat2.Accepts(NestedWord({Internal(1)})));
  EXPECT_FALSE(cat2.Accepts(NestedWord()));
}

TEST(LanguageOps, StarOfThm3Family) {
  // path(w) words for |w| = 2, starred: k-fold repetitions.
  Nnwa base = Nnwa::FromNwa(Thm3PathNwa(2));
  Nnwa star = Star(base);
  auto member1 = [](Symbol x, Symbol y) {
    return NestedWord::Path({x, y});
  };
  EXPECT_TRUE(star.Accepts(NestedWord()));
  EXPECT_TRUE(star.Accepts(member1(0, 1)));
  EXPECT_TRUE(star.Accepts(Concat(member1(0, 1), member1(1, 1))));
  EXPECT_TRUE(star.Accepts(
      Concat(member1(0, 0), Concat(member1(1, 0), member1(0, 1)))));
  // Non-members: half words, mixed garbage.
  EXPECT_FALSE(star.Accepts(NestedWord({Call(0), Call(1), Return(1)})));
  EXPECT_FALSE(star.Accepts(NestedWord({Internal(0)})));
  EXPECT_FALSE(
      star.Accepts(Concat(member1(0, 1), NestedWord({Internal(0)}))));
}

TEST(LanguageOps, StarCrossFactorMatching) {
  // Factors with pending edges: L = {<a} ∪ {a>}; L* then contains words
  // like <a <a a> a> (factors: <a, <a, a>, a>) — matching crosses factor
  // boundaries, exercising the floor bit.
  Nnwa n(1);
  StateId q0 = n.AddState(false);
  StateId f = n.AddState(true);
  StateId h = n.AddState(false);
  StateId bottom = n.AddState(false);
  n.AddInitial(q0);
  n.AddHierInitial(bottom);
  n.AddCall(q0, 0, f, h);
  n.AddReturn(q0, bottom, 0, f);  // pending return factor
  Nnwa star = Star(n);
  // Each factor is a single call or single (factor-)pending return, so
  // L* = all nonempty-or-empty words with no internals over {x}.
  auto oracle = [](const NestedWord& w) {
    for (size_t i = 0; i < w.size(); ++i) {
      if (w.kind(i) == Kind::kInternal) return false;
    }
    return true;
  };
  ExpectLanguage(star, oracle, 1, 8, /*max_len=*/12);
}

TEST(LanguageOps, StarIdempotentOnWellMatched) {
  // WellMatched* = WellMatched ∪ {ε} = WellMatched (contains ε already).
  Nnwa star = Star(WellMatched());
  ExpectLanguage(
      star, [](const NestedWord& w) { return w.IsWellMatched(); }, 2, 9,
      /*max_len=*/10);
}

TEST(LanguageOps, ReverseInvolution) {
  // n ∈ L(A) ⟺ reverse(n) ∈ L(reverse(A)).
  for (const Nnwa& a : {HasB(), WellMatched()}) {
    Nnwa rev = ReverseLang(a);
    Rng rng(10);
    for (size_t len = 0; len <= 4; ++len) {
      for (const NestedWord& w : EnumerateNestedWords(2, len)) {
        ASSERT_EQ(rev.Accepts(Reverse(w)), a.Accepts(w)) << "len " << len;
      }
    }
    for (int iter = 0; iter < 250; ++iter) {
      NestedWord w = RandomNestedWord(&rng, 2, 5 + rng.Below(12));
      ASSERT_EQ(rev.Accepts(Reverse(w)), a.Accepts(w)) << iter;
    }
  }
}

TEST(LanguageOps, ReverseDoesNotOverAcceptPendingCalls) {
  // Regression for the pending-call enforcement: an automaton whose only
  // return transition is keyed on a non-initial hierarchical state that
  // is never pushed has the empty language; its reverse must be empty too
  // (the naive reversal accepts "<x").
  Nnwa a(1);
  StateId q0 = a.AddState(false);
  StateId acc = a.AddState(true);
  StateId h = a.AddState(false);
  StateId p0 = a.AddState(false);
  a.AddInitial(q0);
  a.AddHierInitial(p0);
  a.AddReturn(q0, h, 0, acc);  // h is neither pushed nor in P0
  Nnwa rev = ReverseLang(a);
  for (size_t len = 0; len <= 5; ++len) {
    for (const NestedWord& w : EnumerateNestedWords(1, len)) {
      ASSERT_FALSE(rev.Accepts(w)) << "len " << len;
    }
  }
}

TEST(LanguageOps, ReverseOfThm3IsMirrorFamily) {
  // Reversing path(w) gives path(reverse(w))-shaped words; the Thm 3
  // language is closed under this only as a set permutation, so check the
  // membership bijection explicitly.
  Nnwa a = Nnwa::FromNwa(Thm3PathNwa(2));
  Nnwa rev = ReverseLang(a);
  for (Symbol x : {0u, 1u}) {
    for (Symbol y : {0u, 1u}) {
      NestedWord w = NestedWord::Path({x, y});
      EXPECT_TRUE(a.Accepts(w));
      EXPECT_TRUE(rev.Accepts(Reverse(w)));
    }
  }
}

}  // namespace
}  // namespace nw
