// Tests for joinless automata (§3.5): model semantics, the flat and
// top-down special cases, and Theorem 7's completeness construction.
#include "nwa/joinless.h"

#include <gtest/gtest.h>

#include "nw/generate.h"
#include "nw/text.h"
#include "nwa/families.h"
#include "nwa/nwa.h"
#include "support/rng.h"

namespace nw {
namespace {

// Top-down (all hierarchical) joinless automaton over {a,b} accepting the
// tree words of trees whose every node label is `a`. The root's carrier
// differs from nested carriers so that only a single root accepts.
JoinlessNwa AllATreeTopDown() {
  JoinlessNwa j(2);
  StateId start = j.AddState(/*hier=*/true, /*final=*/false);
  StateId q = j.AddState(/*hier=*/true, /*final=*/false);
  StateId done = j.AddState(/*hier=*/true, /*final=*/false);
  StateId root_done = j.AddState(/*hier=*/true, /*final=*/true);
  StateId carrier = j.AddState(/*hier=*/true, false);
  StateId carrier_root = j.AddState(/*hier=*/true, false);
  j.AddInitial(start);
  j.AddCall(start, 0, q, carrier_root);  // the root call
  j.AddCall(q, 0, q, carrier);           // first child of a node
  j.AddCall(done, 0, q, carrier);        // next sibling subtree
  j.AddReturn(carrier, 0, done);
  j.AddReturn(carrier_root, 0, root_done);
  // States that can immediately precede a return: q (leaf) and done (after
  // the last child). Both must discharge for rule (b) to fire.
  j.set_discharge(q);
  j.set_discharge(done);
  return j;
}

bool AllATree(const NestedWord& n) {
  if (!n.IsTreeWord()) return false;
  for (size_t i = 0; i < n.size(); ++i) {
    if (n.symbol(i) != 0) return false;
  }
  return !n.empty();
}

TEST(Joinless, TopDownTreeAutomaton) {
  JoinlessNwa j = AllATreeTopDown();
  EXPECT_TRUE(j.IsTopDown());
  Alphabet sigma = Alphabet::Ab();
  EXPECT_TRUE(j.Accepts(ParseNestedWord("<a a>", &sigma).Take()));
  EXPECT_TRUE(j.Accepts(ParseNestedWord("<a <a a> <a a> a>", &sigma).Take()));
  EXPECT_FALSE(j.Accepts(ParseNestedWord("<a <b b> a>", &sigma).Take()));
  EXPECT_FALSE(j.Accepts(ParseNestedWord("<a a> <a a>", &sigma).Take()));
  Rng rng(1);
  for (int iter = 0; iter < 200; ++iter) {
    NestedWord w = RandomTreeWord(&rng, 2, 1 + rng.Below(6));
    EXPECT_EQ(j.Accepts(w), AllATree(w)) << iter;
  }
}

TEST(Joinless, DeterminismCheck) {
  JoinlessNwa j = AllATreeTopDown();
  EXPECT_TRUE(j.IsDeterministic());
  // Add a second choice: no longer deterministic.
  j.AddInternal(0, 1, 0);
  j.AddInternal(0, 1, 1);
  EXPECT_FALSE(j.IsDeterministic());
}

// Oracle automaton for Theorem 7 round-trips: the defect detector from
// nnwa_test (pairs with mismatched symbols), rebuilt here.
Nnwa Defect() {
  Nnwa n(2);
  StateId scan = n.AddState(false);
  StateId inside = n.AddState(false);
  StateId hit = n.AddState(true);
  StateId hmark[2] = {n.AddState(false), n.AddState(false)};
  StateId hplain = n.AddState(false);
  n.AddInitial(scan);
  n.AddHierInitial(hplain);
  for (Symbol c : {0u, 1u}) {
    n.AddInternal(scan, c, scan);
    n.AddCall(scan, c, scan, hplain);
    n.AddReturn(scan, hplain, c, scan);
    n.AddCall(scan, c, inside, hmark[c]);
    n.AddInternal(inside, c, inside);
    n.AddCall(inside, c, inside, hplain);
    n.AddReturn(inside, hplain, c, inside);
    n.AddReturn(inside, hmark[c], 1 - c, hit);
    n.AddInternal(hit, c, hit);
    n.AddCall(hit, c, hit, hplain);
    n.AddReturn(hit, hplain, c, hit);
  }
  return n;
}

TEST(Joinless, Thm7ConstructionEquivalence) {
  Nnwa a = Defect();
  JoinlessNwa j = JoinlessNwa::FromNnwa(a);
  // O(s²·|Σ|) bound.
  size_t s = a.num_states();
  EXPECT_LE(j.num_states(),
            s + s * s + s * s * a.num_symbols() + s * a.num_symbols() + 2);
  Nnwa je = j.ToNnwa();
  for (size_t len = 0; len <= 4; ++len) {
    for (const NestedWord& w : EnumerateNestedWords(2, len)) {
      ASSERT_EQ(je.Accepts(w), a.Accepts(w)) << "len " << len;
    }
  }
  Rng rng(2);
  for (int iter = 0; iter < 200; ++iter) {
    NestedWord w = RandomNestedWord(&rng, 2, 5 + rng.Below(12));
    ASSERT_EQ(je.Accepts(w), a.Accepts(w)) << iter;
  }
}

TEST(Joinless, Thm7OnDeterministicFamilies) {
  for (int s : {1, 2}) {
    Nnwa a = Nnwa::FromNwa(Thm3PathNwa(s));
    JoinlessNwa j = JoinlessNwa::FromNnwa(a);
    Nnwa je = j.ToNnwa();
    Rng rng(40 + s);
    for (uint64_t bits = 0; bits < (1ull << s); ++bits) {
      std::vector<Symbol> w(s);
      for (int i = 0; i < s; ++i) w[i] = (bits >> i) & 1;
      EXPECT_TRUE(je.Accepts(NestedWord::Path(w)));
    }
    for (int iter = 0; iter < 150; ++iter) {
      NestedWord w = RandomNestedWord(&rng, 2, rng.Below(2 * s + 4));
      ASSERT_EQ(je.Accepts(w), a.Accepts(w)) << iter;
    }
  }
}

TEST(Joinless, Thm7HandlesPendingReturnAfterMatchedPair) {
  // The subtle completeness case: a matched pair followed by a pending
  // return — the construction must return to linear mode after the pair
  // (continuation parked on the hierarchical edge).
  Nnwa a(1);
  StateId q0 = a.AddState(false);
  StateId q1 = a.AddState(false);
  StateId q2 = a.AddState(false);
  StateId acc = a.AddState(true);
  StateId h = a.AddState(false);
  a.AddInitial(q0);
  a.AddHierInitial(q0);
  a.AddCall(q0, 0, q1, h);
  a.AddReturn(q1, h, 0, q2);
  a.AddReturn(q2, q0, 0, acc);  // pending return
  // L(a) = { <x x> x> } (one matched pair, then one pending return).
  NestedWord member({Call(0), Return(0), Return(0)});
  EXPECT_TRUE(a.Accepts(member));
  JoinlessNwa j = JoinlessNwa::FromNnwa(a);
  Nnwa je = j.ToNnwa();
  EXPECT_TRUE(je.Accepts(member));
  for (size_t len = 0; len <= 5; ++len) {
    for (const NestedWord& w : EnumerateNestedWords(1, len)) {
      ASSERT_EQ(je.Accepts(w), a.Accepts(w)) << "len " << len;
    }
  }
}

TEST(Joinless, Thm7SoundOnWordsEndingInsideAPair) {
  // The over-acceptance witness for the conflated discharge/final reading
  // (see joinless.h): with L(a) = {<x x>}, a construction whose inside
  // obligation states are word-end accepting would also accept the bare
  // "<x" (the run parks inside the speculated pair and stops).
  Nnwa a(1);
  StateId q0 = a.AddState(false);
  StateId q1 = a.AddState(false);
  StateId acc = a.AddState(true);
  StateId h = a.AddState(false);
  a.AddInitial(q0);
  a.AddHierInitial(q0);
  a.AddCall(q0, 0, q1, h);
  a.AddReturn(q1, h, 0, acc);
  // L(a) = {<x x>}; the word "<x" must be rejected.
  JoinlessNwa j = JoinlessNwa::FromNnwa(a);
  Nnwa je = j.ToNnwa();
  EXPECT_TRUE(je.Accepts(NestedWord({Call(0), Return(0)})));
  EXPECT_FALSE(je.Accepts(NestedWord({Call(0)})));
  EXPECT_FALSE(je.Accepts(NestedWord({Call(0), Return(0), Return(0)})));
}

TEST(Joinless, FlatAutomataAreJoinlessWithAllLinearStates) {
  // §3.5: "a flat automaton is joinless with Ql = Q". Encode a flat NWA
  // as a joinless automaton and compare languages.
  Nwa flat = Thm5FlatNwa(1);
  JoinlessNwa j(2);
  for (StateId q = 0; q < flat.num_states(); ++q) {
    j.AddState(/*hier=*/false, flat.is_final(q));
  }
  j.AddInitial(flat.initial());
  for (StateId q = 0; q < flat.num_states(); ++q) {
    for (Symbol c = 0; c < 2; ++c) {
      StateId t = flat.NextInternal(q, c);
      if (t != kNoState) j.AddInternal(q, c, t);
      StateId l = flat.NextCallLinear(q, c);
      if (l != kNoState) j.AddCall(q, c, l, flat.initial());
      StateId r = flat.NextReturn(q, flat.hier_initial(), c);
      if (r != kNoState) j.AddReturn(q, c, r);
    }
  }
  Rng rng(3);
  for (int iter = 0; iter < 300; ++iter) {
    NestedWord w = RandomNestedWord(&rng, 2, rng.Below(12));
    ASSERT_EQ(j.Accepts(w), flat.Accepts(w)) << iter;
  }
}

}  // namespace
}  // namespace nw
