// Tests for the JSON front end (src/json): the documented JSON →
// nested-word mapping, byte-identity of query results against the XML
// stack on equivalent documents — across the SoA, shared-bank, and
// frozen engine paths and under the sharded evaluator — plus the
// malformed-input guarantees (truncated or garbage JSON never fails, it
// tokenizes by the same "innermost closes" leniency the XML front end
// documents) under a seeded mutation fuzzer.
#include "json/json.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "obs/stats.h"
#include "opt/pipeline.h"
#include "query/engine.h"
#include "query/nwquery.h"
#include "serve/frozen_bank.h"
#include "serve/sharded.h"
#include "stream/tree_gen.h"
#include "support/rng.h"
#include "trace/trace.h"
#include "xml/xml.h"

namespace nw {
namespace {

/// Kind + element-name view of a nested word, comparable across
/// alphabets (each front end interns into its own).
std::vector<std::pair<Kind, std::string>> Named(const NestedWord& n,
                                                const Alphabet& sigma) {
  std::vector<std::pair<Kind, std::string>> out;
  for (size_t i = 0; i < n.size(); ++i) {
    out.emplace_back(n.kind(i), sigma.Name(n.symbol(i)));
  }
  return out;
}

TEST(Json, KeyedScalarIsALeafElement) {
  // `{"a":1}` streams exactly like `<a>1</a>`: call a, #text, return a.
  Alphabet sigma;
  NestedWord n = JsonToNestedWord("{\"a\":1}", &sigma);
  ASSERT_EQ(n.size(), 3u);
  EXPECT_EQ(n.kind(0), Kind::kCall);
  EXPECT_EQ(n.kind(1), Kind::kInternal);
  EXPECT_EQ(n.kind(2), Kind::kReturn);
  EXPECT_EQ(sigma.Name(n.symbol(0)), "a");
  EXPECT_EQ(sigma.Name(n.symbol(1)), "#text");
  EXPECT_EQ(n.symbol(0), n.symbol(2));
  EXPECT_TRUE(n.IsWellMatched());
  // String/bool/null scalars take the same shape as numbers.
  for (const char* doc :
       {"{\"a\":\"x\"}", "{\"a\":true}", "{\"a\":null}"}) {
    Alphabet s2;
    EXPECT_EQ(JsonToNestedWord(doc, &s2).size(), 3u) << doc;
  }
}

TEST(Json, TopLevelEnvelopeIsSilent) {
  // The anonymous document envelope carries no positions, so `{"a":1}`
  // and a bare `"a":1` tokenize identically.
  Alphabet s1, s2;
  EXPECT_EQ(Named(JsonToNestedWord("{\"a\":1}", &s1), s1),
            Named(JsonToNestedWord("\"a\":1", &s2), s2));
  // ... and the envelope works for a top-level array too.
  Alphabet s3;
  NestedWord n = JsonToNestedWord("[{\"a\":1}]", &s3);
  ASSERT_EQ(n.size(), 5u);  // call #obj, call a, #text, return a, return #obj
  EXPECT_EQ(s3.Name(n.symbol(0)), "#obj");
}

TEST(Json, AnonymousNestedContainersGetPseudoSymbols) {
  // Nested anonymous containers are real structure: #obj / #arr frames.
  Alphabet sigma;
  NestedWord n = JsonToNestedWord("{\"a\":[1,{\"x\":2}]}", &sigma);
  std::vector<std::pair<Kind, std::string>> expect = {
      {Kind::kCall, "a"},        {Kind::kInternal, "#text"},
      {Kind::kCall, "#obj"},     {Kind::kCall, "x"},
      {Kind::kInternal, "#text"}, {Kind::kReturn, "x"},
      {Kind::kReturn, "#obj"},   {Kind::kReturn, "a"},
  };
  EXPECT_EQ(Named(n, sigma), expect);
}

TEST(Json, EmptyContainersAndDanglingKeys) {
  Alphabet sigma;
  // `{"a":{}}` is an empty element: call a, return a.
  NestedWord n = JsonToNestedWord("{\"a\":{}}", &sigma);
  ASSERT_EQ(n.size(), 2u);
  EXPECT_TRUE(n.IsWellMatched());
  // A key with no value has nothing to wrap; it vanishes.
  EXPECT_EQ(JsonToNestedWord("{\"a\":}", &sigma).size(), 0u);
}

TEST(Json, MalformedClosersFollowTheXmlLeniency) {
  Alphabet sigma;
  // A closer closes the innermost container regardless of brace kind.
  NestedWord cross = JsonToNestedWord("{\"a\":[1}", &sigma);
  ASSERT_EQ(cross.size(), 3u);
  EXPECT_EQ(cross.kind(2), Kind::kReturn);
  EXPECT_EQ(sigma.Name(cross.symbol(2)), "a");
  // Stray closers at the top are silent (the envelope's own is).
  EXPECT_EQ(JsonToNestedWord("}}]]", &sigma).size(), 0u);
  // A truncated document leaves pending calls, never an error.
  NestedWord trunc = JsonToNestedWord("{\"a\":{\"b\":[", &sigma);
  EXPECT_EQ(trunc.size(), 2u);
  EXPECT_EQ(trunc.kind(0), Kind::kCall);
  EXPECT_EQ(trunc.kind(1), Kind::kCall);
}

TEST(Json, StringEscapesAndUnterminatedStrings) {
  Alphabet sigma;
  // \" inside a key must not terminate it.
  NestedWord esc = JsonToNestedWord("{\"a\\\"b\":1}", &sigma);
  ASSERT_EQ(esc.size(), 3u);
  EXPECT_TRUE(esc.IsWellMatched());
  // An unterminated string value runs to end of input; the keyed-scalar
  // queue still closes its element.
  NestedWord open = JsonToNestedWord("{\"a\":\"unclosed", &sigma);
  ASSERT_EQ(open.size(), 3u);
  EXPECT_TRUE(open.IsWellMatched());
}

TEST(Json, RenderedForestsTokenizeIdenticallyInAllThreeFormats) {
  // The differential cornerstone: one random tree, three renderings, ONE
  // token stream. Everything downstream of the tokenizer is shared code,
  // so token identity here is what pins cross-format result identity.
  Rng rng(7);
  for (int round = 0; round < 30; ++round) {
    std::vector<TreeNode> forest =
        RandomForest(&rng, {"a", "b", "c", "d"}, 40 + round * 13, 6);
    Alphabet sx, sj, st;
    NestedWord xml = XmlToNestedWord(RenderXml(forest), &sx);
    NestedWord json = JsonToNestedWord(RenderJson(forest), &sj);
    NestedWord trace = TraceToNestedWord(RenderTrace(forest), &st);
    EXPECT_EQ(Named(xml, sx), Named(json, sj)) << "round " << round;
    EXPECT_EQ(Named(xml, sx), Named(trace, st)) << "round " << round;
  }
}

// -- Cross-format engine differential -------------------------------------

std::vector<std::string> QueryTexts() {
  return {
      "/a",
      "//b",
      "/a/b or /a/c or //d",
      "a then c",
      "depth >= 3",
      "not //e",
      "not (/a and not //b)",
      "//a/*/b",
  };
}

struct Workload {
  Alphabet alphabet;
  std::vector<Query> queries;
  Symbol other = Alphabet::kNoSymbol;
  size_t num_symbols = 0;
  OptimizedBank bank;

  explicit Workload(const std::vector<std::string>& texts) {
    for (const std::string& text : texts) {
      queries.push_back(ParseQuery(text, &alphabet).Take());
    }
    alphabet.Intern("#text");
    other = alphabet.Intern("%other");
    num_symbols = alphabet.size();
    bank = OptimizeBank(queries, num_symbols, OptOptions::All());
  }
};

/// The same logical corpus in every format, from one seeded generator.
struct TriCorpus {
  std::vector<std::string> xml, json, trace;
};

TriCorpus MakeTriCorpus(size_t n, uint64_t seed) {
  Rng rng(seed);
  TriCorpus c;
  for (size_t i = 0; i < n; ++i) {
    std::vector<TreeNode> forest = RandomForest(
        &rng, {"a", "b", "c", "d", "e", "unlisted"}, 120 + (i % 5) * 90,
        3 + i % 8);
    c.xml.push_back(RenderXml(forest));
    c.json.push_back(RenderJson(forest));
    c.trace.push_back(RenderTrace(forest));
  }
  return c;
}

enum class Path { kSoa, kBank, kFrozen };

/// Streams `docs` through a fresh engine on the chosen execution path and
/// front end; returns per-document acceptance.
std::vector<std::vector<bool>> Eval(const Workload& w, Path path,
                                    InputFormat format,
                                    const std::vector<std::string>& docs) {
  QueryEngine engine(w.num_symbols);
  engine.set_other_symbol(w.other);
  // Per-path scaffolding must outlive the engine's streaming below.
  std::unique_ptr<SharedBank> bank;
  std::unique_ptr<FrozenBank> frozen;
  std::unique_ptr<OverflowBank> overflow;
  switch (path) {
    case Path::kSoa:
      for (const OptimizedQuery& q : w.bank.queries) engine.Add(&q.nwa);
      break;
    case Path::kBank:
      bank = std::make_unique<SharedBank>(w.bank.shared->autos());
      engine.AddBank(bank.get());
      break;
    case Path::kFrozen:
      // Freeze unexplored: every step misses into the overflow bank, the
      // harshest coverage regime — results must still be identical.
      bank = std::make_unique<SharedBank>(w.bank.shared->autos());
      frozen = std::make_unique<FrozenBank>(FrozenBank::Freeze(*bank));
      overflow = std::make_unique<OverflowBank>(frozen.get());
      engine.AddFrozen(frozen.get(), overflow.get());
      break;
  }
  std::vector<std::vector<bool>> out;
  Alphabet alphabet = w.alphabet;
  for (const std::string& doc : docs) {
    out.push_back(engine.RunAll(doc, &alphabet, format));
  }
  return out;
}

TEST(JsonDifferential, AllEnginePathsMatchXmlByteForByte) {
  Workload w(QueryTexts());
  TriCorpus c = MakeTriCorpus(24, 99);
  for (Path path : {Path::kSoa, Path::kBank, Path::kFrozen}) {
    std::vector<std::vector<bool>> xml = Eval(w, path, InputFormat::kXml,
                                              c.xml);
    EXPECT_EQ(xml, Eval(w, path, InputFormat::kJson, c.json));
    EXPECT_EQ(xml, Eval(w, path, InputFormat::kTrace, c.trace));
  }
}

TEST(JsonDifferential, ShardedEvaluatorMatchesXmlAtEveryThreadCount) {
  Workload w(QueryTexts());
  TriCorpus c = MakeTriCorpus(24, 1234);
  FrozenBank frozen = FrozenBank::Freeze(*w.bank.shared);
  for (size_t threads : {size_t{1}, size_t{8}}) {
    ShardedEvaluator xml_eval(&frozen, w.num_symbols, w.other, threads);
    std::vector<DocResult> xml =
        xml_eval.EvaluateCorpus(c.xml, w.alphabet, true);
    ShardedEvaluator json_eval(&frozen, w.num_symbols, w.other, threads,
                               InputFormat::kJson);
    std::vector<DocResult> json =
        json_eval.EvaluateCorpus(c.json, w.alphabet, true);
    ASSERT_EQ(xml.size(), json.size());
    for (size_t d = 0; d < xml.size(); ++d) {
      EXPECT_EQ(xml[d].accept, json[d].accept) << "doc " << d;
      EXPECT_EQ(xml[d].first_match, json[d].first_match) << "doc " << d;
      EXPECT_EQ(xml[d].positions, json[d].positions) << "doc " << d;
    }
  }
}

TEST(JsonDifferential, SplitTopLevelOnKeyedForestsPreservesResults) {
  // A keyed forest splits into per-root chunks whose concatenation is the
  // input, and each chunk re-tokenizes to exactly its root's tokens.
  Rng rng(5);
  std::vector<TreeNode> forest =
      RandomForest(&rng, {"a", "b", "c"}, 120, 5);
  std::string json = RenderJson(forest);
  std::vector<std::string> chunks = SplitTopLevel(json, InputFormat::kJson);
  std::string cat;
  for (const std::string& ch : chunks) cat += ch;
  EXPECT_EQ(cat, json);
  // The first chunk still carries the envelope opener, later ones are
  // bare `"name":...` members — all silent, so tokens compose.
  Alphabet whole_sigma, chunk_sigma;
  NestedWord whole = JsonToNestedWord(json, &whole_sigma);
  NestedWord glued;
  for (const std::string& ch : chunks) {
    NestedWord part = JsonToNestedWord(ch, &chunk_sigma);
    for (const TaggedSymbol& t : part.tagged()) glued.Push(t);
  }
  EXPECT_EQ(Named(whole, whole_sigma), Named(glued, chunk_sigma));
}

// -- Malformed-input fuzzing ----------------------------------------------

/// Seeded byte-level mutation: flips, deletions, insertions of structural
/// characters — truncations included (the suffix drop).
std::string Mutate(Rng* rng, std::string doc) {
  const char structural[] = {'{', '}', '[', ']', ',', ':', '"', '\\'};
  size_t edits = 1 + rng->Below(6);
  for (size_t e = 0; e < edits && !doc.empty(); ++e) {
    size_t at = rng->Below(doc.size());
    switch (rng->Below(4)) {
      case 0:
        doc[at] = structural[rng->Below(sizeof(structural))];
        break;
      case 1:
        doc.erase(at, 1 + rng->Below(3));
        break;
      case 2:
        doc.insert(at, 1, structural[rng->Below(sizeof(structural))]);
        break;
      case 3:
        doc.resize(at);  // truncation
        break;
    }
  }
  return doc;
}

TEST(JsonFuzz, MutatedDocumentsNeverFailAndAlwaysRecompose) {
  // The malformed-input contract, mirrored from the XML front end: any
  // byte string tokenizes (pending edges, never an error), the byte
  // cursor never stalls, SplitTopLevel chunks always concatenate back to
  // the input, and the full engine accepts the stream without fault.
  Workload w(QueryTexts());
  QueryEngine engine(w.num_symbols);
  engine.set_other_symbol(w.other);
  for (const OptimizedQuery& q : w.bank.queries) engine.Add(&q.nwa);
  Rng rng(2024);
  Alphabet alphabet = w.alphabet;
  for (int round = 0; round < 300; ++round) {
    std::vector<TreeNode> forest =
        RandomForest(&rng, {"a", "b", "c"}, 30 + rng.Below(60), 5);
    std::string doc = Mutate(&rng, RenderJson(forest));
    // Tokenization terminates and covers every byte.
    Alphabet scratch;
    JsonTokenStream stream(doc, &scratch);
    TaggedSymbol t;
    size_t tokens = 0;
    while (stream.Next(&t)) ++tokens;
    EXPECT_EQ(stream.pos(), doc.size());
    EXPECT_LE(tokens, doc.size());
    std::vector<std::string> chunks = SplitTopLevel(doc, InputFormat::kJson);
    std::string cat;
    for (const std::string& ch : chunks) cat += ch;
    EXPECT_EQ(cat, doc);
    engine.RunAll(doc, &alphabet, InputFormat::kJson);
  }
}

TEST(JsonFuzz, PureGarbageTokenizes) {
  Alphabet sigma;
  Rng rng(77);
  for (int round = 0; round < 100; ++round) {
    std::string junk;
    for (size_t i = 0; i < 1 + rng.Below(64); ++i) {
      junk.push_back(static_cast<char>(rng.Below(256)));
    }
    JsonToNestedWord(junk, &sigma);  // must not fail
  }
}

// -- Stats plumbing -------------------------------------------------------

TEST(JsonStats, FlushOnceWithFormatLabel) {
  StatsSink sink;
  std::string doc = "{\"a\":{\"b\":1},\"c\":2}";
  {
    Alphabet sigma;
    JsonTokenStream stream(doc, &sigma);
    stream.set_stats(&sink);
    TaggedSymbol t;
    while (stream.Next(&t)) {
    }
    // End-of-input flushed; the destructor must NOT flush again.
  }
  EXPECT_EQ(sink.stream_docs_json.value(), 1u);
  EXPECT_EQ(sink.stream_docs_xml.value(), 0u);
  EXPECT_EQ(sink.stream_docs_trace.value(), 0u);
  EXPECT_EQ(sink.stream_bytes.value(), doc.size());
  EXPECT_EQ(sink.stream_calls.value(), 3u);   // a, b, c
  EXPECT_EQ(sink.stream_returns.value(), 3u);
  EXPECT_EQ(sink.stream_internals.value(), 2u);
  EXPECT_EQ(sink.stream_tokens.value(), 8u);
  EXPECT_EQ(sink.stream_depth_hwm.value(), 2u);
}

TEST(JsonStats, AbandonedStreamFlushesFromTheDestructor) {
  StatsSink sink;
  {
    Alphabet sigma;
    std::string doc = "{\"a\":1}";
    JsonTokenStream stream(doc, &sigma);
    stream.set_stats(&sink);
    TaggedSymbol t;
    ASSERT_TRUE(stream.Next(&t));  // partial consumption only
  }
  EXPECT_EQ(sink.stream_docs_json.value(), 1u);
}

TEST(JsonStats, FormatCountsRenderInTheRegistry) {
  StatsSink sink;
  sink.stream_docs_json.Inc();
  sink.stream_docs_xml.Add(2);
  StatsRegistry registry;
  registry.Register("main", &sink);
  std::string json = registry.RenderJson();
  EXPECT_NE(json.find("\"format\":{\"xml\":2,\"json\":1,\"trace\":0}"),
            std::string::npos)
      << json;
}

}  // namespace
}  // namespace nw
