// Tests for the regex combinators, including the paper's introduction
// query Σ*p1Σ*...pnΣ* whose DFA is linear in n.
#include "wordauto/regex.h"

#include <gtest/gtest.h>

namespace nw {
namespace {

TEST(Regex, Basics) {
  Nfa n = Regex::Cat(Regex::Sym(0), Regex::Star(Regex::Sym(1))).Compile(2);
  EXPECT_TRUE(n.Accepts({0}));
  EXPECT_TRUE(n.Accepts({0, 1, 1, 1}));
  EXPECT_FALSE(n.Accepts({1}));
  EXPECT_FALSE(n.Accepts({}));
}

TEST(Regex, EmptyAndEps) {
  EXPECT_FALSE(Regex::Empty().Compile(1).Accepts({}));
  EXPECT_TRUE(Regex::Eps().Compile(1).Accepts({}));
  EXPECT_FALSE(Regex::Eps().Compile(1).Accepts({0}));
}

TEST(Regex, AltAndWord) {
  Nfa n = Regex::Alt(Regex::Word({0, 1}), Regex::Word({1, 0})).Compile(2);
  EXPECT_TRUE(n.Accepts({0, 1}));
  EXPECT_TRUE(n.Accepts({1, 0}));
  EXPECT_FALSE(n.Accepts({0, 0}));
  EXPECT_FALSE(n.Accepts({0, 1, 0}));
}

TEST(Regex, AnyMatchesEverySymbol) {
  Nfa n = Regex::Star(Regex::Any(3)).Compile(3);
  EXPECT_TRUE(n.Accepts({}));
  EXPECT_TRUE(n.Accepts({0, 1, 2, 2, 1, 0}));
}

// Builds the introduction's query Σ* p1 Σ* p2 ... Σ* pn Σ*.
Regex PatternOrderQuery(const std::vector<std::vector<Symbol>>& patterns,
                        size_t num_symbols) {
  Regex r = Regex::Star(Regex::Any(num_symbols));
  for (const auto& p : patterns) {
    r = Regex::Cat(std::move(r), Regex::Word(p));
    r = Regex::Cat(std::move(r), Regex::Star(Regex::Any(num_symbols)));
  }
  return r;
}

TEST(Regex, PatternOrderQuerySemantics) {
  Nfa n = PatternOrderQuery({{0, 0}, {1, 1}}, 2).Compile(2);
  EXPECT_TRUE(n.Accepts({0, 0, 1, 1}));
  EXPECT_TRUE(n.Accepts({1, 0, 0, 0, 1, 1, 0}));
  EXPECT_FALSE(n.Accepts({1, 1, 0, 0}));  // wrong order
  EXPECT_FALSE(n.Accepts({0, 1, 0, 1}));  // interleaved, no contiguous 00
}

TEST(Regex, PatternOrderQueryDfaIsLinear) {
  // The intro claims the pattern-order query compiles into a DFA of linear
  // size. Check that the minimal DFA grows linearly with the number of
  // single-symbol patterns (alphabet {a,b}, patterns alternating a,b).
  size_t prev = 0;
  for (size_t k = 1; k <= 6; ++k) {
    std::vector<std::vector<Symbol>> pats;
    for (size_t i = 0; i < k; ++i) pats.push_back({Symbol(i % 2)});
    Dfa d = PatternOrderQuery(pats, 2).Compile(2).Determinize().Minimize();
    if (k > 1) {
      EXPECT_LE(d.num_states(), prev + 2);  // linear growth
    }
    prev = d.num_states();
  }
}

}  // namespace
}  // namespace nw
