// Tests for the SAX/XML bridge and the document queries from the paper's
// introduction.
#include "xml/xml.h"

#include <gtest/gtest.h>

#include "nw/text.h"

namespace nw {
namespace {

TEST(Xml, TokenizerBasics) {
  Alphabet sigma;
  NestedWord n = XmlToNestedWord("<a><b>hi</b><c/></a>", &sigma);
  // call a, call b, text, return b, call c, return c, return a
  ASSERT_EQ(n.size(), 7u);
  EXPECT_EQ(n.kind(0), Kind::kCall);
  EXPECT_EQ(n.kind(2), Kind::kInternal);
  EXPECT_EQ(n.kind(3), Kind::kReturn);
  EXPECT_EQ(n.symbol(1), n.symbol(3));  // b matches b
  EXPECT_TRUE(n.IsWellMatched());
  EXPECT_TRUE(n.IsRooted());
}

TEST(Xml, MalformedDocumentsStillTokenize) {
  // The paper's §1 point: nested words represent data that "may not parse
  // correctly" — no error, just pending edges.
  Alphabet sigma;
  NestedWord unclosed = XmlToNestedWord("<a><b>", &sigma);
  EXPECT_EQ(Matching(unclosed).pending_calls(), 2u);
  NestedWord stray = XmlToNestedWord("</a>text", &sigma);
  EXPECT_EQ(Matching(stray).pending_returns(), 1u);
}

TEST(Xml, AttributesSkippedSelfClosingHandled) {
  Alphabet sigma;
  NestedWord n = XmlToNestedWord("<a href=\"x\"><img src=\"y\"/></a>", &sigma);
  ASSERT_EQ(n.size(), 4u);
  EXPECT_TRUE(n.IsWellMatched());
}

TEST(Xml, WellFormedChecker) {
  Alphabet sigma;
  Nwa check = WellFormedChecker(4);
  auto accepts = [&](const std::string& doc) {
    Alphabet local;
    // Pre-intern to keep symbol ids inside the checker's alphabet.
    local.Intern("#text");
    local.Intern("a");
    local.Intern("b");
    local.Intern("c");
    return check.Accepts(XmlToNestedWord(doc, &local));
  };
  EXPECT_TRUE(accepts("<a><b>x</b></a>"));
  EXPECT_TRUE(accepts("<a/><b/>"));
  EXPECT_TRUE(accepts(""));
  EXPECT_FALSE(accepts("<a><b></a></b>"));  // crossing close order
  EXPECT_FALSE(accepts("<a>"));             // pending open
  EXPECT_FALSE(accepts("</a>"));            // stray close
}

TEST(Xml, PatternOrderQuerySemantics) {
  // Patterns 1, 2 (element names) must open in document order.
  Nwa q = PatternOrderQuery({1, 2}, 4);
  Alphabet sigma;
  sigma.Intern("#text");
  Symbol a = sigma.Intern("a");
  Symbol b = sigma.Intern("b");
  (void)a;
  (void)b;
  EXPECT_TRUE(q.Accepts(XmlToNestedWord("<a><b/></a>", &sigma)));
  EXPECT_TRUE(q.Accepts(XmlToNestedWord("<c><a/><c><b/></c></c>", &sigma)));
  EXPECT_FALSE(q.Accepts(XmlToNestedWord("<b><a/></b>", &sigma)));
  EXPECT_FALSE(q.Accepts(XmlToNestedWord("<a/>", &sigma)));
  // Malformed documents can still be queried (linear order only).
  EXPECT_TRUE(q.Accepts(XmlToNestedWord("<a><b>", &sigma)));
}

TEST(Xml, PatternOrderQueryIsLinearSize) {
  for (size_t n : {1u, 4u, 9u}) {
    std::vector<Symbol> pats(n, 1);
    Nwa q = PatternOrderQuery(pats, 3);
    EXPECT_EQ(q.num_states(), n + 1);
    EXPECT_TRUE(q.IsFlat());
  }
}

TEST(Xml, MinDepthQuery) {
  Nwa q = MinDepthQuery(3, 2);
  Alphabet sigma;
  sigma.Intern("#text");
  sigma.Intern("d");
  EXPECT_FALSE(q.Accepts(XmlToNestedWord("<d><d/></d>", &sigma)));
  EXPECT_TRUE(q.Accepts(XmlToNestedWord("<d><d><d/></d></d>", &sigma)));
  // Depth reached then left: still accepted (latched).
  EXPECT_TRUE(
      q.Accepts(XmlToNestedWord("<d><d><d/></d></d><d/>", &sigma)));
}

TEST(Xml, RandomDocumentsAreWellFormed) {
  Rng rng(9);
  Alphabet sigma;
  sigma.Intern("#text");
  sigma.Intern("a");
  sigma.Intern("b");
  for (int iter = 0; iter < 20; ++iter) {
    std::string doc = RandomXmlDocument(&rng, sigma, 60, 6);
    Alphabet local = sigma;
    NestedWord n = XmlToNestedWord(doc, &local);
    EXPECT_TRUE(n.IsWellMatched()) << doc;
    EXPECT_LE(n.Depth(), 6u);
  }
}

TEST(Xml, RoundTripRendering) {
  Alphabet sigma;
  NestedWord n = XmlToNestedWord("<a><b>x</b></a>", &sigma);
  std::string xml = NestedWordToXml(n, sigma);
  Alphabet sigma2;
  // "." renders text; re-tokenizing gives the same structure.
  NestedWord n2 = XmlToNestedWord(xml, &sigma2);
  ASSERT_EQ(n2.size(), n.size());
  for (size_t i = 0; i < n.size(); ++i) EXPECT_EQ(n2.kind(i), n.kind(i));
}

}  // namespace
}  // namespace nw
