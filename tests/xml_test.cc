// Tests for the SAX/XML bridge and the document queries from the paper's
// introduction.
#include "xml/xml.h"

#include <gtest/gtest.h>

#include "nw/text.h"

namespace nw {
namespace {

TEST(Xml, TokenizerBasics) {
  Alphabet sigma;
  NestedWord n = XmlToNestedWord("<a><b>hi</b><c/></a>", &sigma);
  // call a, call b, text, return b, call c, return c, return a
  ASSERT_EQ(n.size(), 7u);
  EXPECT_EQ(n.kind(0), Kind::kCall);
  EXPECT_EQ(n.kind(2), Kind::kInternal);
  EXPECT_EQ(n.kind(3), Kind::kReturn);
  EXPECT_EQ(n.symbol(1), n.symbol(3));  // b matches b
  EXPECT_TRUE(n.IsWellMatched());
  EXPECT_TRUE(n.IsRooted());
}

TEST(Xml, MalformedDocumentsStillTokenize) {
  // The paper's §1 point: nested words represent data that "may not parse
  // correctly" — no error, just pending edges.
  Alphabet sigma;
  NestedWord unclosed = XmlToNestedWord("<a><b>", &sigma);
  EXPECT_EQ(Matching(unclosed).pending_calls(), 2u);
  NestedWord stray = XmlToNestedWord("</a>text", &sigma);
  EXPECT_EQ(Matching(stray).pending_returns(), 1u);
}

TEST(Xml, AttributesSkippedSelfClosingHandled) {
  Alphabet sigma;
  NestedWord n = XmlToNestedWord("<a href=\"x\"><img src=\"y\"/></a>", &sigma);
  ASSERT_EQ(n.size(), 4u);
  EXPECT_TRUE(n.IsWellMatched());
}

TEST(Xml, TextSymbolInternedLazily) {
  // A document with no text chunks must not burn a symbol on "#text".
  Alphabet sigma;
  XmlToNestedWord("<a><b/></a>", &sigma);
  EXPECT_EQ(sigma.Find("#text"), Alphabet::kNoSymbol);
  EXPECT_EQ(sigma.size(), 2u);
  // Once a text chunk appears, "#text" interns at the point of first use.
  NestedWord n = XmlToNestedWord("<a>hi</a>", &sigma);
  EXPECT_EQ(n.symbol(1), sigma.Find("#text"));
}

TEST(Xml, SlashInsideAttributeIsNotSelfClosing) {
  Alphabet sigma;
  NestedWord n = XmlToNestedWord("<a href=\"x/y\"></a>", &sigma);
  ASSERT_EQ(n.size(), 2u);
  EXPECT_EQ(n.kind(0), Kind::kCall);
  EXPECT_EQ(n.kind(1), Kind::kReturn);
  // Self-closing still requires '/' immediately before '>'.
  NestedWord m = XmlToNestedWord("<a href=\"x/y\"/>", &sigma);
  ASSERT_EQ(m.size(), 2u);
  EXPECT_TRUE(m.IsWellMatched());
}

TEST(Xml, CommentsDoctypeAndPisAreSkipped) {
  Alphabet sigma;
  // Slashes and '>' inside comments/PIs must not fabricate positions.
  NestedWord n = XmlToNestedWord(
      "<?xml version=\"1.0\"?><!DOCTYPE a>"
      "<!-- see https://example.com, a > b --><a><b/></a><!-- tail",
      &sigma);
  ASSERT_EQ(n.size(), 4u);
  EXPECT_TRUE(n.IsWellMatched());
  EXPECT_EQ(sigma.Name(n.symbol(0)), "a");
  EXPECT_EQ(sigma.Name(n.symbol(1)), "b");
  // CDATA content is character data: one #text internal, never markup.
  NestedWord c = XmlToNestedWord("<a><![CDATA[x > <b>]]></a>", &sigma);
  ASSERT_EQ(c.size(), 3u);
  EXPECT_EQ(c.kind(0), Kind::kCall);
  EXPECT_EQ(c.kind(1), Kind::kInternal);
  EXPECT_EQ(c.kind(2), Kind::kReturn);
  EXPECT_EQ(sigma.Name(c.symbol(1)), "#text");
  // Empty CDATA emits nothing.
  NestedWord e = XmlToNestedWord("<a><![CDATA[]]></a>", &sigma);
  EXPECT_EQ(e.size(), 2u);
  // A DOCTYPE internal subset ([...]) ends at the '>' outside the
  // brackets — markup inside it must not leak into the stream.
  NestedWord d = XmlToNestedWord(
      "<!DOCTYPE a [<!ENTITY x \"v\"><b>]><a></a>", &sigma);
  ASSERT_EQ(d.size(), 2u);
  EXPECT_TRUE(d.IsWellMatched());
  EXPECT_EQ(sigma.Name(d.symbol(0)), "a");
}

TEST(Xml, TokenStreamMatchesMaterializedWord) {
  Alphabet sigma1, sigma2;
  const std::string doc = "<a><b>hi</b><c/></a>text</d>";
  NestedWord n = XmlToNestedWord(doc, &sigma1);
  XmlTokenStream stream(doc, &sigma2);
  TaggedSymbol t;
  size_t i = 0;
  while (stream.Next(&t)) {
    ASSERT_LT(i, n.size());
    EXPECT_EQ(t, n[i]) << i;
    ++i;
  }
  EXPECT_EQ(i, n.size());
}

TEST(Xml, WellFormedChecker) {
  Alphabet sigma;
  Nwa check = WellFormedChecker(4);
  auto accepts = [&](const std::string& doc) {
    Alphabet local;
    // Pre-intern to keep symbol ids inside the checker's alphabet.
    local.Intern("#text");
    local.Intern("a");
    local.Intern("b");
    local.Intern("c");
    return check.Accepts(XmlToNestedWord(doc, &local));
  };
  EXPECT_TRUE(accepts("<a><b>x</b></a>"));
  EXPECT_TRUE(accepts("<a/><b/>"));
  EXPECT_TRUE(accepts(""));
  EXPECT_FALSE(accepts("<a><b></a></b>"));  // crossing close order
  EXPECT_FALSE(accepts("<a>"));             // pending open
  EXPECT_FALSE(accepts("</a>"));            // stray close
}

TEST(Xml, PatternOrderQuerySemantics) {
  // Patterns 1, 2 (element names) must open in document order.
  Nwa q = PatternOrderQuery({1, 2}, 4);
  Alphabet sigma;
  sigma.Intern("#text");
  Symbol a = sigma.Intern("a");
  Symbol b = sigma.Intern("b");
  (void)a;
  (void)b;
  EXPECT_TRUE(q.Accepts(XmlToNestedWord("<a><b/></a>", &sigma)));
  EXPECT_TRUE(q.Accepts(XmlToNestedWord("<c><a/><c><b/></c></c>", &sigma)));
  EXPECT_FALSE(q.Accepts(XmlToNestedWord("<b><a/></b>", &sigma)));
  EXPECT_FALSE(q.Accepts(XmlToNestedWord("<a/>", &sigma)));
  // Malformed documents can still be queried (linear order only).
  EXPECT_TRUE(q.Accepts(XmlToNestedWord("<a><b>", &sigma)));
}

TEST(Xml, PatternOrderQueryIsLinearSize) {
  for (size_t n : {1u, 4u, 9u}) {
    std::vector<Symbol> pats(n, 1);
    Nwa q = PatternOrderQuery(pats, 3);
    EXPECT_EQ(q.num_states(), n + 1);
    EXPECT_TRUE(q.IsFlat());
  }
}

TEST(Xml, MinDepthQuery) {
  Nwa q = MinDepthQuery(3, 2);
  Alphabet sigma;
  sigma.Intern("#text");
  sigma.Intern("d");
  EXPECT_FALSE(q.Accepts(XmlToNestedWord("<d><d/></d>", &sigma)));
  EXPECT_TRUE(q.Accepts(XmlToNestedWord("<d><d><d/></d></d>", &sigma)));
  // Depth reached then left: still accepted (latched).
  EXPECT_TRUE(
      q.Accepts(XmlToNestedWord("<d><d><d/></d></d><d/>", &sigma)));
}

TEST(Xml, RandomDocumentsAreWellFormed) {
  Rng rng(9);
  Alphabet sigma;
  sigma.Intern("#text");
  sigma.Intern("a");
  sigma.Intern("b");
  for (int iter = 0; iter < 20; ++iter) {
    std::string doc = RandomXmlDocument(&rng, sigma, 60, 6);
    Alphabet local = sigma;
    NestedWord n = XmlToNestedWord(doc, &local);
    EXPECT_TRUE(n.IsWellMatched()) << doc;
    EXPECT_LE(n.Depth(), 6u);
  }
}

TEST(Xml, RoundTripRendering) {
  Alphabet sigma;
  NestedWord n = XmlToNestedWord("<a><b>x</b></a>", &sigma);
  std::string xml = NestedWordToXml(n, sigma);
  Alphabet sigma2;
  // "." renders text; re-tokenizing gives the same structure.
  NestedWord n2 = XmlToNestedWord(xml, &sigma2);
  ASSERT_EQ(n2.size(), n.size());
  for (size_t i = 0; i < n.size(); ++i) EXPECT_EQ(n2.kind(i), n.kind(i));
}

}  // namespace
}  // namespace nw
