// Round-trip and error-handling tests for the Figure-1 text format.
#include "nw/text.h"

#include <gtest/gtest.h>

#include "nw/generate.h"
#include "support/rng.h"

namespace nw {
namespace {

TEST(Text, ParsesAllThreeKinds) {
  Alphabet sigma;
  auto r = ParseNestedWord("<a b c>", &sigma);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->kind(0), Kind::kCall);
  EXPECT_EQ(r->kind(1), Kind::kInternal);
  EXPECT_EQ(r->kind(2), Kind::kReturn);
  EXPECT_EQ(sigma.size(), 3u);
}

TEST(Text, EmptyInputIsEmptyWord) {
  Alphabet sigma;
  auto r = ParseNestedWord("   ", &sigma);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->empty());
}

TEST(Text, RejectsCallReturnToken) {
  Alphabet sigma;
  EXPECT_FALSE(ParseNestedWord("<a>", &sigma).ok());
}

TEST(Text, RejectsEmptyName) {
  Alphabet sigma;
  EXPECT_FALSE(ParseNestedWord("<", &sigma).ok());
  EXPECT_FALSE(ParseNestedWord(">", &sigma).ok());
}

TEST(Text, RejectsBadCharacters) {
  Alphabet sigma;
  EXPECT_FALSE(ParseNestedWord("a,b", &sigma).ok());
}

TEST(Text, MultiCharacterNames) {
  Alphabet sigma;
  auto r = ParseNestedWord("<open_tag text42 open_tag>", &sigma);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->symbol(0), r->symbol(2));
  EXPECT_NE(r->symbol(0), r->symbol(1));
}

TEST(Text, FormatParseRoundTrip) {
  Rng rng(99);
  Alphabet sigma = Alphabet::Letters(4);
  for (int iter = 0; iter < 100; ++iter) {
    NestedWord n = RandomNestedWord(&rng, sigma.size(), 25);
    std::string s = FormatNestedWord(n, sigma);
    Alphabet sigma2 = sigma;
    auto back = ParseNestedWord(s, &sigma2);
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(*back, n);
  }
}

}  // namespace
}  // namespace nw
