#!/bin/sh
# Enum-valued CLI flags must fail fast with a message naming the valid
# values — never fall through to a generic "unknown option" or, worse,
# silently run with a default (the --report regression this PR fixes:
# bench harnesses forwarded "--report=csv" to benchmark::Initialize and
# produced no report at all, which CI read as success).
#
# Usage: cli_flags_test.sh NWQUERY_BIN NWQUERYD_BIN [BENCH_BIN]
# Registered by CMake with $<TARGET_FILE:...>; the bench binary is
# optional so -DNW_BUILD_BENCHMARKS=OFF configurations still pass.
set -u

NWQUERY="$1"
NWQUERYD="$2"
BENCH="${3:-}"

fails=0
tmpdir="${TMPDIR:-/tmp}/cli_flags_test.$$"
mkdir -p "$tmpdir"
trap 'rm -rf "$tmpdir"' EXIT
printf '//b\n' > "$tmpdir/q.txt"
printf '<a><b/></a>' > "$tmpdir/d.xml"

# expect_reject NAME EXPECTED_SUBSTRING CMD...
# The command must exit non-zero AND mention the expected hint on stderr.
expect_reject() {
  name="$1"; want="$2"; shift 2
  err="$tmpdir/err"
  if "$@" >/dev/null 2>"$err"; then
    echo "FAIL $name: exited 0 for an invalid flag value"
    fails=$((fails + 1))
    return
  fi
  if ! grep -q "$want" "$err"; then
    echo "FAIL $name: stderr lacks '$want':"
    sed 's/^/  | /' "$err"
    fails=$((fails + 1))
    return
  fi
  echo "ok   $name"
}

# expect_accept NAME CMD... — the happy path must still exit 0.
expect_accept() {
  name="$1"; shift
  if "$@" >/dev/null 2>&1; then
    echo "ok   $name"
  else
    echo "FAIL $name: exited non-zero for a valid invocation"
    fails=$((fails + 1))
  fi
}

# nwquery: every enum-valued flag names its valid values on a typo.
expect_reject nwquery_stats_typo "want text, json, or prom" \
  "$NWQUERY" --stats=promm "$tmpdir/q.txt" "$tmpdir/d.xml"
expect_reject nwquery_stats_empty "want text, json, or prom" \
  "$NWQUERY" --stats= "$tmpdir/q.txt" "$tmpdir/d.xml"
expect_reject nwquery_format_typo "want xml, json, or" \
  "$NWQUERY" --format=yaml "$tmpdir/q.txt" "$tmpdir/d.xml"
expect_reject nwquery_opt_typo "want none, rewrite" \
  "$NWQUERY" --opt=fast "$tmpdir/q.txt" "$tmpdir/d.xml"
expect_accept nwquery_stats_ok \
  "$NWQUERY" --stats=json "$tmpdir/q.txt" "$tmpdir/d.xml"
expect_accept nwquery_stats_prom_ok \
  "$NWQUERY" --stats=prom "$tmpdir/q.txt" "$tmpdir/d.xml"

# nwqueryd: same discipline (flag parsing precedes any socket work, so
# no daemon is actually started by the reject cases).
expect_reject nwqueryd_format_typo "want xml, json, or trace" \
  "$NWQUERYD" --socket "$tmpdir/s.sock" --queries "$tmpdir/q.txt" \
  --format=yaml
expect_reject nwqueryd_opt_typo "want none, rewrite" \
  "$NWQUERYD" --socket "$tmpdir/s.sock" --queries "$tmpdir/q.txt" \
  --opt=fast
expect_reject nwqueryd_opt_unservable "cannot serve frozen" \
  "$NWQUERYD" --socket "$tmpdir/s.sock" --queries "$tmpdir/q.txt" \
  --opt=min

# bench harness: unknown --report values must not slip through to
# benchmark::Initialize (the silent-ignore bug).
if [ -n "$BENCH" ]; then
  expect_reject bench_report_typo "want --report=json" \
    "$BENCH" --report=csv
  expect_reject bench_report_bare "want --report=json" \
    "$BENCH" --report
fi

if [ "$fails" -ne 0 ]; then
  echo "cli_flags_test: $fails failure(s)"
  exit 1
fi
echo "cli_flags_test: all checks passed"
