// Tests for the decision procedures (§3.2): emptiness with validated
// witnesses, inclusion, and equivalence.
#include "nwa/decision.h"

#include <gtest/gtest.h>

#include "nw/generate.h"
#include "nwa/families.h"
#include "nwa/language_ops.h"
#include "nwa/transforms.h"
#include "nwa/nwa.h"
#include "support/rng.h"

namespace nw {
namespace {

Nnwa EmptyLang() {
  Nnwa n(2);
  StateId q = n.AddState(false);
  n.AddInitial(q);
  n.AddHierInitial(q);
  return n;
}

TEST(Emptiness, TrivialCases) {
  EXPECT_TRUE(IsEmpty(EmptyLang()));
  Nnwa eps(2);
  StateId q = eps.AddState(true);
  eps.AddInitial(q);
  eps.AddHierInitial(q);
  EmptinessResult r = CheckEmptiness(eps);
  EXPECT_FALSE(r.empty);
  EXPECT_TRUE(r.witness.has_value());
  EXPECT_TRUE(r.witness->empty());  // ε is the witness
}

TEST(Emptiness, WitnessesAreValid) {
  // Every non-empty family automaton yields a witness its runner accepts.
  std::vector<Nnwa> autos;
  autos.push_back(Nnwa::FromNwa(Thm3PathNwa(3)));
  autos.push_back(Nnwa::FromNwa(Thm5FlatNwa(2)));
  autos.push_back(Nnwa::FromNwa(Thm6Nwa()));
  autos.push_back(Nnwa::FromNwa(Thm8PathNwa(2)));
  for (size_t i = 0; i < autos.size(); ++i) {
    EmptinessResult r = CheckEmptiness(autos[i]);
    ASSERT_FALSE(r.empty) << i;
    ASSERT_TRUE(r.witness.has_value()) << i;
    EXPECT_TRUE(autos[i].Accepts(*r.witness)) << "automaton " << i;
  }
}

TEST(Emptiness, PendingEdgeWitnesses) {
  // Language requiring a pending return followed by a pending call.
  Nnwa n(1);
  StateId q0 = n.AddState(false);
  StateId q1 = n.AddState(false);
  StateId q2 = n.AddState(true);
  StateId h = n.AddState(false);
  n.AddInitial(q0);
  n.AddHierInitial(q0);
  n.AddReturn(q0, q0, 0, q1);
  n.AddCall(q1, 0, q2, h);
  EmptinessResult r = CheckEmptiness(n);
  ASSERT_FALSE(r.empty);
  EXPECT_TRUE(n.Accepts(*r.witness));
  EXPECT_EQ(r.witness->size(), 2u);
  EXPECT_EQ(r.witness->kind(0), Kind::kReturn);
  EXPECT_EQ(r.witness->kind(1), Kind::kCall);
}

TEST(Emptiness, DeepWitness) {
  // Thm 3 with s = 4: the shortest member has length 8 and depth 4; the
  // witness must be a member.
  Nnwa n = Nnwa::FromNwa(Thm3PathNwa(4));
  EmptinessResult r = CheckEmptiness(n);
  ASSERT_FALSE(r.empty);
  EXPECT_TRUE(Thm3Member(*r.witness, 4));
}

TEST(Emptiness, IntersectionOfDisjointFamiliesIsEmpty) {
  // Thm3 members all have even length 2s; intersecting s=2 and s=3
  // variants gives ∅.
  Nnwa a = Nnwa::FromNwa(Thm3PathNwa(2));
  Nnwa b = Nnwa::FromNwa(Thm3PathNwa(3));
  EXPECT_TRUE(IsEmpty(Intersect(a, b)));
}

TEST(Emptiness, RandomAutomataWitnessSoundness) {
  Rng rng(77);
  int nonempty = 0;
  for (int trial = 0; trial < 40; ++trial) {
    const size_t states = 4;
    Nnwa n(2);
    for (size_t i = 0; i < states; ++i) n.AddState(rng.Chance(1, 4));
    n.AddInitial(static_cast<StateId>(rng.Below(states)));
    n.AddHierInitial(static_cast<StateId>(rng.Below(states)));
    for (int t = 0; t < 6; ++t) {
      StateId q = static_cast<StateId>(rng.Below(states));
      Symbol c = static_cast<Symbol>(rng.Below(2));
      switch (rng.Below(3)) {
        case 0:
          n.AddInternal(q, c, static_cast<StateId>(rng.Below(states)));
          break;
        case 1:
          n.AddCall(q, c, static_cast<StateId>(rng.Below(states)),
                    static_cast<StateId>(rng.Below(states)));
          break;
        default:
          n.AddReturn(q, static_cast<StateId>(rng.Below(states)), c,
                      static_cast<StateId>(rng.Below(states)));
      }
    }
    EmptinessResult r = CheckEmptiness(n);
    if (!r.empty) {
      ++nonempty;
      ASSERT_TRUE(r.witness.has_value());
      EXPECT_TRUE(n.Accepts(*r.witness)) << "trial " << trial;
    } else {
      // Cross-check emptiness against exhaustive short words.
      for (size_t len = 0; len <= 4; ++len) {
        for (const NestedWord& w : EnumerateNestedWords(2, len)) {
          ASSERT_FALSE(n.Accepts(w)) << "claimed empty, trial " << trial;
        }
      }
    }
  }
  EXPECT_GT(nonempty, 3);  // the sampler produces both outcomes
}

TEST(Inclusion, FamilyRelations) {
  // Thm3(s) ⊆ Thm3(s) and incomparable across distinct s.
  Nnwa a = Nnwa::FromNwa(Thm3PathNwa(2));
  Nnwa b = Nnwa::FromNwa(Thm3PathNwa(3));
  EXPECT_TRUE(CheckInclusion(a, a).included);
  InclusionResult ab = CheckInclusion(a, b);
  EXPECT_FALSE(ab.included);
  ASSERT_TRUE(ab.counterexample.has_value());
  EXPECT_TRUE(a.Accepts(*ab.counterexample));
  EXPECT_FALSE(b.Accepts(*ab.counterexample));
}

TEST(Inclusion, SubsetViaIntersection) {
  // L ∩ L' ⊆ L and ⊆ L'.
  Nnwa a = Nnwa::FromNwa(Thm6Nwa());
  Nnwa b = Nnwa::FromNwa(Thm3PathNwa(2));
  Nnwa both = Intersect(a, b);
  EXPECT_TRUE(CheckInclusion(both, a).included);
  EXPECT_TRUE(CheckInclusion(both, b).included);
}

TEST(Equivalence, TransformsAreEquivalent) {
  // Thm 1 as a *decision-procedure* check rather than sampling: the weak
  // form is language-equivalent to the original.
  Nwa a = Thm3PathNwa(2);
  Nnwa orig = Nnwa::FromNwa(a);
  Nnwa weak = Nnwa::FromNwa(ToWeak(a));
  EquivalenceResult r = CheckEquivalence(orig, weak);
  EXPECT_TRUE(r.equivalent) << (r.separator.has_value() ? "separator found"
                                                        : "");
}

TEST(Equivalence, SeparatorIsValid) {
  Nnwa a = Nnwa::FromNwa(Thm3PathNwa(2));
  Nnwa b = Nnwa::FromNwa(Thm6Nwa());
  EquivalenceResult r = CheckEquivalence(a, b);
  ASSERT_FALSE(r.equivalent);
  ASSERT_TRUE(r.separator.has_value());
  EXPECT_NE(a.Accepts(*r.separator), b.Accepts(*r.separator));
}

}  // namespace
}  // namespace nw
