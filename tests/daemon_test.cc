// Tests for the NWDaemon subsystem (src/daemon): the wire protocol must
// round-trip every escape and reject every malformed request whole; the
// resident core must stay byte-identical to a single-stream oracle at
// any thread count, across online admissions, retirements, and epoch
// refreshes (the RCU swap must never mix epochs within a document); the
// frozen hit rate must climb after a refresh; and SIGTERM must drain
// gracefully — the death-free half of nwqueryd's exit-0 contract.
#include "daemon/daemon.h"

#include <gtest/gtest.h>

#include <csignal>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <sys/socket.h>
#include <sys/un.h>
#include <netinet/in.h>
#include <unistd.h>

#include "daemon/protocol.h"
#include "daemon/server.h"
#include "obs/pulse.h"
#include "opt/pipeline.h"
#include "query/engine.h"
#include "query/nwquery.h"
#include "support/rng.h"
#include "xml/xml.h"

namespace nw {
namespace {

// ---------------------------------------------------------------------------
// Protocol
// ---------------------------------------------------------------------------

TEST(DaemonProtocol, ParsesEveryOp) {
  DaemonRequest r = ParseDaemonRequest(
                        R"({"op":"SUBMIT","doc":"<a/>","format":"trace",)"
                        R"("label":"d1"})")
                        .Take();
  EXPECT_EQ(r.op, DaemonOp::kSubmit);
  EXPECT_EQ(r.doc, "<a/>");
  EXPECT_TRUE(r.has_format);
  EXPECT_EQ(r.format, InputFormat::kTrace);
  EXPECT_EQ(r.label, "d1");

  r = ParseDaemonRequest(R"({"op":"SUBMIT","doc":"x"})").Take();
  EXPECT_FALSE(r.has_format);
  EXPECT_TRUE(r.label.empty());

  r = ParseDaemonRequest(R"({"op":"ADMIT","query":"//b"})").Take();
  EXPECT_EQ(r.op, DaemonOp::kAdmit);
  EXPECT_EQ(r.query, "//b");

  r = ParseDaemonRequest(R"({"op":"RETIRE","qid":42})").Take();
  EXPECT_EQ(r.op, DaemonOp::kRetire);
  EXPECT_TRUE(r.has_qid);
  EXPECT_EQ(r.qid, 42u);

  EXPECT_EQ(ParseDaemonRequest(R"({"op":"STATS"})").Take().op,
            DaemonOp::kStats);
  EXPECT_EQ(ParseDaemonRequest(R"( { "op" : "SHUTDOWN" } )").Take().op,
            DaemonOp::kShutdown);
}

TEST(DaemonProtocol, DecodesStringEscapes) {
  // Python json.dumps ensure_ascii output must round-trip byte-exactly:
  // standard escapes, \uXXXX, and an astral-plane surrogate pair.
  DaemonRequest r =
      ParseDaemonRequest(
          R"({"op":"SUBMIT","doc":"<a>\"\\\/\b\f\n\r\t\u00e9A"})")
          .Take();
  EXPECT_EQ(r.doc, std::string("<a>\"\\/\b\f\n\r\t\xc3\xa9") + "A");
  // Surrogate pair: U+1F600 escaped the way json.dumps emits it.
  r = ParseDaemonRequest(R"({"op":"SUBMIT","doc":"\ud83d\ude00"})").Take();
  EXPECT_EQ(r.doc, "\xf0\x9f\x98\x80");
  // Raw UTF-8 bytes pass through untouched.
  r = ParseDaemonRequest("{\"op\":\"SUBMIT\",\"doc\":\"\xf0\x9f\x98\x80\"}")
          .Take();
  EXPECT_EQ(r.doc, "\xf0\x9f\x98\x80");
}

TEST(DaemonProtocol, RejectsMalformedRequestsWhole) {
  const char* bad[] = {
      "",                                      // empty line
      "SUBMIT doc",                            // not JSON
      R"(["op","STATS"])",                     // not an object
      R"({"op":"FROB"})",                      // unknown op
      R"({"op":"STATS","extra":1})",           // unknown key
      R"({"op":"SUBMIT"})",                    // SUBMIT without doc
      R"({"op":"ADMIT"})",                     // ADMIT without query
      R"({"op":"RETIRE"})",                    // RETIRE without qid
      R"({"op":"RETIRE","qid":-1})",           // negative qid
      R"({"op":"RETIRE","qid":"3"})",          // qid as string
      R"({"op":"SUBMIT","doc":"x","format":"yaml"})",  // bad enum value
      R"({"op":"STATS"} trailing)",            // trailing garbage
      R"({"op":"SUBMIT","doc":"unterminated)",  // unterminated string
      R"({"op":"SUBMIT","doc":"\ud83d"})",     // lone high surrogate
  };
  for (const char* line : bad) {
    Result<DaemonRequest> r = ParseDaemonRequest(line);
    EXPECT_FALSE(r.ok()) << "accepted: " << line;
  }
  // Error messages must be actionable, same contract as the CLI flags.
  Result<DaemonRequest> r =
      ParseDaemonRequest(R"({"op":"SUBMIT","doc":"x","format":"yaml"})");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("xml, json, or trace"),
            std::string::npos)
      << r.status().message();
}

// ---------------------------------------------------------------------------
// Oracle: an independent single-stream compilation of an epoch's query
// texts. Symbol ids differ from the daemon's master alphabet, but accept
// vectors, first-match positions, and position counts are id-independent
// (unknown names map to the %other catch-all on both sides).
// ---------------------------------------------------------------------------

struct Oracle {
  Alphabet alphabet;
  std::vector<Query> queries;
  Symbol other = Alphabet::kNoSymbol;
  size_t num_symbols = 0;
  OptimizedBank bank;
  std::unique_ptr<QueryEngine> engine;

  explicit Oracle(const std::vector<std::string>& texts) {
    for (const std::string& text : texts) {
      queries.push_back(ParseQuery(text, &alphabet).Take());
    }
    alphabet.Intern("#text");
    other = alphabet.Intern("%other");
    num_symbols = alphabet.size();
    bank = OptimizeBank(queries, num_symbols, OptOptions::All());
    engine = std::make_unique<QueryEngine>(num_symbols);
    engine->set_other_symbol(other);
    engine->set_track_matches(true);
    for (const OptimizedQuery& q : bank.queries) engine->Add(&q.nwa);
  }

  DocResult Eval(const std::string& doc, InputFormat format) {
    Alphabet local = alphabet;
    DocResult out;
    size_t before = engine->positions();
    out.accept = engine->RunAll(doc, &local, format);
    out.positions = engine->positions() - before;
    out.first_match.resize(engine->num_queries());
    for (size_t q = 0; q < engine->num_queries(); ++q) {
      out.first_match[q] = engine->first_match(q);
    }
    return out;
  }
};

/// Per-thread oracle cache keyed by epoch id — each epoch's query list
/// is immutable, so one compilation answers for its whole lifetime.
class OracleCache {
 public:
  Oracle* For(const DaemonEpoch& epoch) {
    auto it = cache_.find(epoch.id);
    if (it == cache_.end()) {
      it = cache_.emplace(epoch.id,
                          std::make_unique<Oracle>(epoch.query_texts))
               .first;
    }
    return it->second.get();
  }

 private:
  std::map<uint64_t, std::unique_ptr<Oracle>> cache_;
};

/// One comparison; returns a description of the first mismatch or "".
std::string CompareOutcome(const SubmitOutcome& outcome, Oracle* oracle,
                           const std::string& doc, InputFormat format) {
  DocResult want = oracle->Eval(doc, format);
  const DocResult& got = outcome.result;
  if (want.accept != got.accept) return "accept vector mismatch";
  if (want.first_match != got.first_match) return "first_match mismatch";
  if (want.positions != got.positions) return "position count mismatch";
  if (got.accept.size() != outcome.epoch->query_texts.size()) {
    return "result width != epoch query count";
  }
  return "";
}

std::string Corrupt(Rng* rng, const std::string& doc) {
  std::string out;
  size_t i = 0;
  while (i < doc.size()) {
    if (doc[i] == '<' && i + 1 < doc.size() && doc[i + 1] == '/' &&
        rng->Chance(1, 5)) {
      while (i < doc.size() && doc[i] != '>') ++i;
      if (i < doc.size()) ++i;
      continue;
    }
    if (doc[i] == '<' && rng->Chance(1, 12)) out += "</stray>";
    out += doc[i++];
  }
  return out;
}

struct TaggedDoc {
  std::string text;
  InputFormat format;
};

/// Mixed-format corpus: random (sometimes corrupted) XML plus fixed JSON
/// and Figure-1 trace documents, so every front end crosses the daemon.
std::vector<TaggedDoc> MakeCorpus(size_t n, uint64_t seed) {
  Alphabet gen;
  for (const char* name : {"a", "b", "c", "d", "e", "unlisted"}) {
    gen.Intern(name);
  }
  Rng rng(seed);
  std::vector<TaggedDoc> corpus;
  for (size_t i = 0; i < n; ++i) {
    std::string doc =
        RandomXmlDocument(&rng, gen, 120 + (i % 5) * 90, 3 + i % 8);
    if (i % 3 == 2) doc = Corrupt(&rng, doc);
    corpus.push_back({std::move(doc), InputFormat::kXml});
  }
  corpus.push_back({R"({"a":{"b":[1,2,{"c":"x"}]},"d":null})",
                    InputFormat::kJson});
  corpus.push_back({R"([{"b":true},{"e":{"b":0}}])", InputFormat::kJson});
  corpus.push_back({"<a <b c b> <d> a> <e stray>", InputFormat::kTrace});
  corpus.push_back({"<a <b crash", InputFormat::kTrace});
  return corpus;
}

std::vector<std::string> InitialQueries() {
  return {"//b", "/a/b or /a/c or //d", "not //e", "depth >= 3"};
}

// ---------------------------------------------------------------------------
// Differential: daemon vs oracle, across admission / retirement / refresh
// ---------------------------------------------------------------------------

class DaemonDifferential : public ::testing::TestWithParam<size_t> {};

TEST_P(DaemonDifferential, MatchesOracleAcrossAdmissionAndRefresh) {
  DaemonOptions options;
  options.threads = GetParam();
  // A small exploration cap keeps multi-query product refreshes cheap —
  // the overflow banks cover whatever the snapshot lacks, so correctness
  // (the thing under test) is cap-independent.
  options.refresh_cap = 512;
  DaemonCore core(InitialQueries(), options);
  ASSERT_TRUE(core.ok()) << core.init_error().message();
  core.Start();

  std::vector<TaggedDoc> corpus = MakeCorpus(18, 1234 + GetParam());
  OracleCache oracles;
  auto run_corpus = [&]() {
    for (const TaggedDoc& doc : corpus) {
      Result<SubmitOutcome> r = core.Submit(doc.text, doc.format);
      ASSERT_TRUE(r.ok()) << r.status().message();
      SubmitOutcome outcome = r.Take();
      std::string diff = CompareOutcome(outcome, oracles.For(*outcome.epoch),
                                        doc.text, doc.format);
      ASSERT_EQ(diff, "") << "epoch " << outcome.epoch->id;
    }
  };

  // Warm startup epoch.
  EXPECT_TRUE(core.current_epoch()->refreshed);
  run_corpus();

  // Online admission: served cold immediately, identical results.
  uint64_t qid = core.Admit("//a/*/b").Take();
  run_corpus();

  // After the background re-freeze the same documents still match, and
  // the admitted query answers in the refreshed epoch.
  core.AwaitRefresh();
  EXPECT_TRUE(core.current_epoch()->refreshed);
  run_corpus();

  // Retirement shrinks the bank online; results stay oracle-identical.
  ASSERT_TRUE(core.Retire(qid).ok());
  run_corpus();
  core.AwaitRefresh();
  run_corpus();

  // Admission of a bad query must not disturb serving.
  EXPECT_FALSE(core.Admit("//(").ok());
  run_corpus();

  core.DrainAndStop();
}

INSTANTIATE_TEST_SUITE_P(Threads, DaemonDifferential,
                         ::testing::Values(size_t{1}, size_t{8}));

TEST(DaemonCoreTest, RetireGuards) {
  DaemonOptions options;
  DaemonCore core({"//b"}, options);
  ASSERT_TRUE(core.ok());
  core.Start();
  EXPECT_FALSE(core.Retire(99).ok());   // unknown qid
  EXPECT_FALSE(core.Retire(0).ok());    // last remaining query
  uint64_t qid = core.Admit("//c").Take();
  EXPECT_TRUE(core.Retire(qid).ok());
  EXPECT_FALSE(core.Retire(qid).ok());  // idempotence: already gone
  core.DrainAndStop();
}

TEST(DaemonCoreTest, InitErrorOnBadInitialQuery) {
  DaemonOptions options;
  DaemonCore core({"//b", "//("}, options);
  EXPECT_FALSE(core.ok());
  EXPECT_FALSE(core.init_error().message().empty());
}

// ---------------------------------------------------------------------------
// Hit-rate climb: a cold admission misses, the refresh restores hits
// ---------------------------------------------------------------------------

struct HitRate {
  uint64_t hits = 0;
  uint64_t misses = 0;
  double rate() const {
    uint64_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) / total;
  }
};

HitRate FrozenDelta(const StatsSnapshot& a, const StatsSnapshot& b) {
  SinkSnapshot agg = SnapshotDelta(a, b).Aggregate();
  return {agg.counter("frozen_hits"), agg.counter("frozen_misses")};
}

TEST(DaemonCoreTest, HitRateClimbsAfterRefresh) {
  DaemonOptions options;
  options.threads = 2;
  // Small cap: the refresh's replay training promotes the reservoir's
  // tuples first, so resubmitting the same documents hits regardless.
  options.refresh_cap = 512;
  DaemonCore core(InitialQueries(), options);
  ASSERT_TRUE(core.ok());
  core.Start();

  std::vector<TaggedDoc> corpus = MakeCorpus(10, 77);

  // Cold phase: admit, then race the background refresher for the cold
  // epoch — dispatch latency is microseconds against a refresh's
  // replay+explore milliseconds, so a handful of attempts always wins;
  // the epoch tag on every outcome proves which snapshot served us.
  HitRate cold;
  bool measured_cold = false;
  for (int attempt = 0; attempt < 5 && !measured_cold; ++attempt) {
    uint64_t qid =
        core.Admit("//climb" + std::to_string(attempt)).Take();
    (void)qid;
    StatsSnapshot before = CaptureSnapshot(core.registry());
    bool all_cold = true;
    for (const TaggedDoc& doc : corpus) {
      SubmitOutcome outcome = core.Submit(doc.text, doc.format).Take();
      all_cold = all_cold && !outcome.epoch->refreshed;
    }
    StatsSnapshot after = CaptureSnapshot(core.registry());
    if (all_cold) {
      cold = FrozenDelta(before, after);
      measured_cold = true;
    }
  }
  ASSERT_TRUE(measured_cold)
      << "refresher won the publish race five times in a row";

  // Refreshed phase: every document must land on a refreshed epoch.
  core.AwaitRefresh();
  StatsSnapshot before = CaptureSnapshot(core.registry());
  for (const TaggedDoc& doc : corpus) {
    SubmitOutcome outcome = core.Submit(doc.text, doc.format).Take();
    EXPECT_TRUE(outcome.epoch->refreshed);
  }
  StatsSnapshot after = CaptureSnapshot(core.registry());
  HitRate warm = FrozenDelta(before, after);

  EXPECT_GT(warm.hits + warm.misses, 0u);
  EXPECT_GT(warm.rate(), cold.rate())
      << "cold " << cold.hits << "/" << cold.misses << " vs warm "
      << warm.hits << "/" << warm.misses;
  // The cold snapshot holds one unexplored state — essentially every
  // step misses; the refresh replays recent traffic, so hits dominate.
  EXPECT_LT(cold.rate(), 0.5);
  EXPECT_GT(warm.rate(), 0.9);

  EpochMetrics metrics = core.Metrics();
  EXPECT_TRUE(metrics.refreshed);
  EXPECT_GE(metrics.refreshes, 2u);
  EXPECT_GE(metrics.admissions, 1u);
  core.DrainAndStop();
}

// ---------------------------------------------------------------------------
// Soak: concurrent submitters vs online admission/retirement (run under
// TSan in CI — the epoch RCU handoff is the thing being raced)
// ---------------------------------------------------------------------------

TEST(DaemonSoak, EpochIdenticalUnderConcurrentAdmission) {
  constexpr size_t kSubmitters = 8;
  constexpr size_t kRounds = 6;

  DaemonOptions options;
  options.threads = 4;
  options.refresh_cap = 512;  // see DaemonDifferential: cap-independent
  DaemonCore core(InitialQueries(), options);
  ASSERT_TRUE(core.ok());
  core.Start();

  std::vector<TaggedDoc> corpus = MakeCorpus(12, 4242);
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> verified{0};
  std::atomic<uint64_t> mismatches{0};
  std::mutex first_mu;
  std::string first_error;

  std::vector<std::thread> submitters;
  for (size_t t = 0; t < kSubmitters; ++t) {
    submitters.emplace_back([&, t]() {
      OracleCache oracles;  // per-thread: QueryEngine is stateful
      size_t i = t;
      while (!stop.load(std::memory_order_relaxed)) {
        const TaggedDoc& doc = corpus[i++ % corpus.size()];
        Result<SubmitOutcome> r = core.Submit(doc.text, doc.format);
        if (!r.ok()) break;  // drain started mid-loop
        SubmitOutcome outcome = r.Take();
        std::string diff = CompareOutcome(
            outcome, oracles.For(*outcome.epoch), doc.text, doc.format);
        if (!diff.empty()) {
          mismatches.fetch_add(1);
          std::lock_guard<std::mutex> lock(first_mu);
          if (first_error.empty()) {
            first_error =
                diff + " at epoch " + std::to_string(outcome.epoch->id);
          }
        }
        verified.fetch_add(1);
      }
    });
  }

  // Control plane: admissions and retirements while documents stream.
  std::vector<uint64_t> admitted;
  for (size_t round = 0; round < kRounds; ++round) {
    Result<uint64_t> qid =
        core.Admit("//soak" + std::to_string(round) + "/b");
    ASSERT_TRUE(qid.ok()) << qid.status().message();
    admitted.push_back(qid.Take());
    if (round % 2 == 1) {
      ASSERT_TRUE(core.Retire(admitted[round - 1]).ok());
    }
    if (round == kRounds / 2) core.AwaitRefresh();
  }
  core.AwaitRefresh();

  stop.store(true);
  for (std::thread& t : submitters) t.join();
  core.DrainAndStop();

  EXPECT_EQ(mismatches.load(), 0u) << first_error;
  // Every submitter verified real traffic across the whole soak.
  EXPECT_GE(verified.load(), kSubmitters * corpus.size());
  EXPECT_TRUE(core.current_epoch()->refreshed);
  EpochMetrics metrics = core.Metrics();
  EXPECT_EQ(metrics.admissions, kRounds);
  EXPECT_EQ(metrics.retirements, kRounds / 2);
  EXPECT_GE(metrics.refreshes, 2u);
  EXPECT_EQ(metrics.total_documents, verified.load());
}

// ---------------------------------------------------------------------------
// Server: socket round-trips, SHUTDOWN, /metrics, and SIGTERM drain
// ---------------------------------------------------------------------------

std::string TempSocketPath(const char* tag) {
  const char* base = ::getenv("TMPDIR");
  if (base == nullptr) base = "/tmp";
  return std::string(base) + "/nwd_test_" + tag + "_" +
         std::to_string(::getpid()) + ".sock";
}

int UnixConnect(const std::string& path) {
  int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

/// Sends one request line, reads one newline-terminated response.
std::string RoundTrip(int fd, const std::string& line) {
  std::string out = line + "\n";
  if (::send(fd, out.data(), out.size(), 0) !=
      static_cast<ssize_t>(out.size())) {
    return "";
  }
  std::string response;
  char c;
  while (::recv(fd, &c, 1, 0) == 1) {
    if (c == '\n') break;
    response += c;
  }
  return response;
}

std::string HttpGet(int port, const std::string& path) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return "";
  }
  std::string request = "GET " + path + " HTTP/1.0\r\n\r\n";
  (void)::send(fd, request.data(), request.size(), 0);
  std::string response;
  char buf[4096];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) {
    response.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return response;
}

TEST(DaemonServerTest, ShutdownRequestStopsTheLoop) {
  DaemonOptions options;
  DaemonCore core({"//b"}, options);
  ASSERT_TRUE(core.ok());
  core.Start();

  ServerOptions server_options;
  server_options.socket_path = TempSocketPath("shutdown");
  server_options.http_port = 0;  // ephemeral
  DaemonServer server(&core, server_options);
  ASSERT_TRUE(server.Start().ok());
  ASSERT_GT(server.http_port(), 0);
  std::thread runner([&]() { server.Run(); });

  int fd = UnixConnect(server_options.socket_path);
  ASSERT_GE(fd, 0);

  std::string response =
      RoundTrip(fd, R"({"op":"SUBMIT","doc":"<a><b/></a>","label":"d"})");
  EXPECT_NE(response.find(R"("ok":true)"), std::string::npos) << response;
  EXPECT_NE(response.find(R"("match":true)"), std::string::npos) << response;

  response = RoundTrip(fd, "this is not json");
  EXPECT_NE(response.find(R"("ok":false)"), std::string::npos) << response;

  response = RoundTrip(fd, R"({"op":"STATS"})");
  EXPECT_NE(response.find(R"("epoch")"), std::string::npos) << response;

  // /metrics renders the Prometheus exposition from the core registry.
  std::string metrics = HttpGet(server.http_port(), "/metrics");
  EXPECT_NE(metrics.find("200 OK"), std::string::npos);
  EXPECT_NE(metrics.find("# HELP"), std::string::npos);
  EXPECT_NE(metrics.find("nw_"), std::string::npos);
  EXPECT_NE(HttpGet(server.http_port(), "/healthz").find("ok"),
            std::string::npos);
  EXPECT_NE(HttpGet(server.http_port(), "/nope").find("404"),
            std::string::npos);

  // SHUTDOWN answers first, then the loop winds down.
  response = RoundTrip(fd, R"({"op":"SHUTDOWN"})");
  EXPECT_NE(response.find(R"("ok":true)"), std::string::npos) << response;
  ::close(fd);
  runner.join();
  core.DrainAndStop();

  // The socket file is gone — a restart binds fresh.
  EXPECT_NE(::access(server_options.socket_path.c_str(), F_OK), 0);
}

TEST(DaemonServerTest, SigtermDrainsWithoutDying) {
  DaemonOptions options;
  DaemonCore core({"//b"}, options);
  ASSERT_TRUE(core.ok());
  core.Start();

  ServerOptions server_options;
  server_options.socket_path = TempSocketPath("sigterm");
  DaemonServer server(&core, server_options);
  ASSERT_TRUE(server.Start().ok());
  int wake_fd = InstallSignalWakeFd();
  ASSERT_GE(wake_fd, 0);
  server.set_wake_fd(wake_fd);
  std::thread runner([&]() { server.Run(); });

  // Real traffic first, then the signal. Without the self-pipe handler
  // this raise() would terminate the whole test binary — the test
  // passing IS the death-free assertion.
  int fd = UnixConnect(server_options.socket_path);
  ASSERT_GE(fd, 0);
  std::string response = RoundTrip(fd, R"({"op":"SUBMIT","doc":"<b/>"})");
  EXPECT_NE(response.find(R"("ok":true)"), std::string::npos);
  ::close(fd);

  ASSERT_EQ(::raise(SIGTERM), 0);
  runner.join();  // Run() returns: accept loop saw the wake byte
  core.DrainAndStop();
  EXPECT_GE(core.Metrics().total_documents, 1u);
}

}  // namespace
}  // namespace nw
