// Tests for the NFA substrate: ε-closure, subset construction, reversal.
#include "wordauto/nfa.h"

#include <gtest/gtest.h>

#include "support/rng.h"

namespace nw {
namespace {

// NFA over {0,1}: words whose 3rd symbol from the end is 1.
Nfa ThirdFromEndIsOne() {
  Nfa n(2);
  StateId q0 = n.AddState();
  StateId q1 = n.AddState();
  StateId q2 = n.AddState();
  StateId q3 = n.AddState(true);
  n.AddInitial(q0);
  n.AddTransition(q0, 0, q0);
  n.AddTransition(q0, 1, q0);
  n.AddTransition(q0, 1, q1);
  n.AddTransition(q1, 0, q2);
  n.AddTransition(q1, 1, q2);
  n.AddTransition(q2, 0, q3);
  n.AddTransition(q2, 1, q3);
  return n;
}

TEST(Nfa, AcceptsBySimulation) {
  Nfa n = ThirdFromEndIsOne();
  EXPECT_TRUE(n.Accepts({1, 0, 0}));
  EXPECT_TRUE(n.Accepts({0, 1, 1, 1, 0}));
  EXPECT_FALSE(n.Accepts({0, 0, 0}));
  EXPECT_FALSE(n.Accepts({1, 0}));
}

TEST(Nfa, DeterminizeMatchesSimulation) {
  Nfa n = ThirdFromEndIsOne();
  Dfa d = n.Determinize();
  // The subset automaton for "k-th from end" is the classic 2^k witness.
  EXPECT_EQ(d.Minimize().num_states(), 8u);
  Rng rng(3);
  for (int iter = 0; iter < 200; ++iter) {
    std::vector<Symbol> w;
    size_t len = rng.Below(10);
    for (size_t i = 0; i < len; ++i) w.push_back(rng.Below(2));
    EXPECT_EQ(n.Accepts(w), d.Accepts(w));
  }
}

TEST(Nfa, EpsilonClosureChains) {
  Nfa n(1);
  StateId a = n.AddState();
  StateId b = n.AddState();
  StateId c = n.AddState(true);
  n.AddInitial(a);
  n.AddEpsilon(a, b);
  n.AddEpsilon(b, c);
  EXPECT_TRUE(n.Accepts({}));
  Dfa d = n.Determinize();
  EXPECT_TRUE(d.Accepts({}));
}

TEST(Nfa, EpsilonCycleTerminates) {
  Nfa n(1);
  StateId a = n.AddState();
  StateId b = n.AddState(true);
  n.AddInitial(a);
  n.AddEpsilon(a, b);
  n.AddEpsilon(b, a);
  EXPECT_TRUE(n.Accepts({}));
}

TEST(Nfa, ReversedAcceptsMirror) {
  Nfa n = ThirdFromEndIsOne();
  Nfa r = n.Reversed();
  // Reverse language: 3rd symbol from the *start* is 1.
  EXPECT_TRUE(r.Accepts({0, 0, 1}));
  EXPECT_TRUE(r.Accepts({0, 1, 1, 1, 0}));
  EXPECT_FALSE(r.Accepts({0, 0, 0, 1}));
  Rng rng(5);
  for (int iter = 0; iter < 100; ++iter) {
    std::vector<Symbol> w;
    size_t len = rng.Below(8);
    for (size_t i = 0; i < len; ++i) w.push_back(rng.Below(2));
    std::vector<Symbol> wr(w.rbegin(), w.rend());
    EXPECT_EQ(n.Accepts(w), r.Accepts(wr));
  }
}

TEST(Nfa, MultipleInitialStates) {
  Nfa n(2);
  StateId a = n.AddState(true);
  StateId b = n.AddState();
  StateId c = n.AddState(true);
  n.AddInitial(a);
  n.AddInitial(b);
  n.AddTransition(b, 1, c);
  EXPECT_TRUE(n.Accepts({}));   // via a
  EXPECT_TRUE(n.Accepts({1}));  // via b → c
  EXPECT_FALSE(n.Accepts({0}));
}

}  // namespace
}  // namespace nw
