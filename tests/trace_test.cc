// Tests for the program-trace front end (src/trace): the Figure-1 token
// mapping, the `balanced a b` query atom against the hand-built
// LockDiscipline oracle of examples/program_traces.cpp (including the
// crashed-program and log-suffix cases that motivated nested words),
// end-to-end evaluation through every engine path and the sharded
// evaluator, and the malformed-log fuzz contract.
#include "trace/trace.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "obs/stats.h"
#include "opt/pipeline.h"
#include "query/compile.h"
#include "query/engine.h"
#include "query/nwquery.h"
#include "serve/frozen_bank.h"
#include "serve/sharded.h"
#include "support/rng.h"

namespace nw {
namespace {

TEST(Trace, TokenMapping) {
  Alphabet sigma;
  NestedWord n = TraceToNestedWord("<main acquire work release main>",
                                   &sigma);
  ASSERT_EQ(n.size(), 5u);
  EXPECT_EQ(n.kind(0), Kind::kCall);
  EXPECT_EQ(n.kind(1), Kind::kInternal);
  EXPECT_EQ(n.kind(4), Kind::kReturn);
  EXPECT_EQ(n.symbol(0), n.symbol(4));
  // Internal events carry their OWN symbol — not the #text pseudo-symbol
  // of the XML/JSON front ends. This is what event-level atoms step on.
  EXPECT_EQ(sigma.Name(n.symbol(1)), "acquire");
  EXPECT_TRUE(n.IsWellMatched());
}

TEST(Trace, SelfContainedFrame) {
  // `<f>` is call + immediate return — the XML self-closing analog.
  Alphabet sigma;
  NestedWord n = TraceToNestedWord("<f>", &sigma);
  ASSERT_EQ(n.size(), 2u);
  EXPECT_EQ(n.kind(0), Kind::kCall);
  EXPECT_EQ(n.kind(1), Kind::kReturn);
  EXPECT_EQ(n.symbol(0), n.symbol(1));
}

TEST(Trace, MalformedTokensAreInternals) {
  // Lone angle brackets name no frame: they degrade to #text internals,
  // and pending calls/returns are first-class, never an error.
  Alphabet sigma;
  NestedWord n = TraceToNestedWord("< > <f ev", &sigma);
  ASSERT_EQ(n.size(), 4u);
  EXPECT_EQ(n.kind(0), Kind::kInternal);
  EXPECT_EQ(sigma.Name(n.symbol(0)), "#text");
  EXPECT_EQ(n.kind(1), Kind::kInternal);
  EXPECT_EQ(n.kind(2), Kind::kCall);  // pending call
  NestedWord suffix = TraceToNestedWord("ev f> main>", &sigma);
  EXPECT_EQ(suffix.kind(1), Kind::kReturn);  // pending return
}

TEST(Trace, BalancedAtomParsesFormatsAndRoundTrips) {
  Alphabet sigma;
  Result<Query> q = ParseQuery("balanced acquire release", &sigma);
  ASSERT_TRUE(q.ok());
  Query parsed = q.Take();
  EXPECT_TRUE(parsed.is_atom());
  EXPECT_EQ(parsed.op(), Query::Op::kBalanced);
  std::string printed = FormatQuery(parsed, sigma);
  EXPECT_EQ(printed, "balanced acquire release");
  EXPECT_TRUE(ParseQuery(printed, &sigma).Take() == parsed);
  // The keyword is reserved and the atom needs both names.
  EXPECT_FALSE(ParseQuery("balanced", &sigma).ok());
  EXPECT_FALSE(ParseQuery("balanced acquire", &sigma).ok());
  EXPECT_FALSE(ParseQuery("//balanced", &sigma).ok());
}

/// The five traces of examples/program_traces.cpp with their oracle
/// verdicts: the discipline holds on clean runs, on crashed programs
/// (pending calls), and on log suffixes (pending returns), and is
/// violated by a frame returning while holding and by a release with
/// nothing held.
struct OracleCase {
  const char* trace;
  bool ok;
};

const OracleCase kOracle[] = {
    {"<main <f acquire work release f> <g work g> main>", true},
    {"<main <f acquire work f> release main>", false},
    {"<main release main>", false},
    {"<main <f acquire work release <g work", true},
    {"acquire work f> release main>", true},
};

TEST(Trace, BalancedFrameQueryMatchesTheLockDisciplineOracle) {
  Alphabet sigma;
  Query q = ParseQuery("balanced acquire release", &sigma).Take();
  sigma.Intern("#text");
  Symbol other = sigma.Intern("%other");
  // Intern every event name the traces use BEFORE compiling, so the atom
  // sees them in its symbol space (the CLI's remap path is tested below).
  for (const OracleCase& c : kOracle) TraceToNestedWord(c.trace, &sigma);
  size_t num_symbols = sigma.size();
  Nwa a = CompileQuery(q, num_symbols);
  QueryEngine engine(num_symbols);
  engine.set_other_symbol(other);
  engine.Add(&a);
  for (const OracleCase& c : kOracle) {
    NestedWord n = TraceToNestedWord(c.trace, &sigma);
    EXPECT_EQ(engine.RunAll(n)[0], c.ok) << c.trace;
  }
}

// -- End-to-end: mixed query bank over a trace corpus ---------------------

std::vector<std::string> TraceQueryTexts() {
  // The balanced atom composed with the whole language: under booleans
  // its automaton is the first reachably-partial NWA the optimizer and
  // bank see, so these pin that dead runs survive rewrite → minimize →
  // product → freeze unchanged.
  return {
      "balanced acquire release",
      "not (balanced acquire release)",
      "balanced acquire release and //work",
      "//f",
      "acquire then release",
      "depth >= 2",
  };
}

struct Workload {
  Alphabet alphabet;
  std::vector<Query> queries;
  Symbol other = Alphabet::kNoSymbol;
  size_t num_symbols = 0;
  OptimizedBank bank;

  explicit Workload(const std::vector<std::string>& texts) {
    for (const std::string& text : texts) {
      queries.push_back(ParseQuery(text, &alphabet).Take());
    }
    alphabet.Intern("#text");
    other = alphabet.Intern("%other");
    num_symbols = alphabet.size();
    bank = OptimizeBank(queries, num_symbols, OptOptions::All());
  }
};

/// Random call/return event logs over a small vocabulary, deliberately
/// including unbalanced acquire/release mixes and malformed fragments.
std::vector<std::string> MakeTraceCorpus(size_t n, uint64_t seed) {
  const char* events[] = {"acquire", "release", "work", "log", "unlisted"};
  const char* frames[] = {"main", "f", "g", "handler"};
  Rng rng(seed);
  std::vector<std::string> corpus;
  for (size_t i = 0; i < n; ++i) {
    std::string doc;
    size_t len = 20 + rng.Below(120);
    size_t depth = 0;
    for (size_t p = 0; p < len; ++p) {
      if (!doc.empty()) doc += " ";
      uint64_t pick = rng.Below(10);
      if (pick < 2) {
        doc += "<" + std::string(frames[rng.Below(4)]);
        ++depth;
      } else if (pick < 4 && depth > 0) {
        doc += std::string(frames[rng.Below(4)]) + ">";
        --depth;
      } else if (pick == 4) {
        doc += "<" + std::string(frames[rng.Below(4)]) + ">";
      } else {
        doc += events[rng.Below(5)];
      }
    }
    // Every fourth log is cut off mid-stream (a crashed program).
    if (i % 4 == 3) doc.resize(doc.size() / 2);
    corpus.push_back(std::move(doc));
  }
  return corpus;
}

TEST(TraceEndToEnd, AllEnginePathsAgree) {
  Workload w(TraceQueryTexts());
  std::vector<std::string> corpus = MakeTraceCorpus(20, 17);
  // SoA reference.
  QueryEngine soa(w.num_symbols);
  soa.set_other_symbol(w.other);
  for (const OptimizedQuery& q : w.bank.queries) soa.Add(&q.nwa);
  std::vector<std::vector<bool>> ref;
  Alphabet a1 = w.alphabet;
  for (const std::string& doc : corpus) {
    ref.push_back(soa.RunAll(doc, &a1, InputFormat::kTrace));
  }
  // Shared-bank path.
  QueryEngine banked(w.num_symbols);
  banked.set_other_symbol(w.other);
  banked.AddBank(w.bank.shared.get());
  Alphabet a2 = w.alphabet;
  for (size_t d = 0; d < corpus.size(); ++d) {
    EXPECT_EQ(banked.RunAll(corpus[d], &a2, InputFormat::kTrace), ref[d])
        << "doc " << d;
  }
  // Frozen path under the sharded evaluator, threads ∈ {1, 8}.
  FrozenBank frozen = FrozenBank::Freeze(*w.bank.shared);
  for (size_t threads : {size_t{1}, size_t{8}}) {
    ShardedEvaluator evaluator(&frozen, w.num_symbols, w.other, threads,
                               InputFormat::kTrace);
    std::vector<DocResult> results =
        evaluator.EvaluateCorpus(corpus, w.alphabet, false);
    ASSERT_EQ(results.size(), corpus.size());
    for (size_t d = 0; d < results.size(); ++d) {
      EXPECT_EQ(results[d].accept, ref[d]) << "doc " << d;
    }
  }
}

TEST(TraceEndToEnd, SplitTopLevelCutsAtFrameBoundaries) {
  std::string log = "<main a main> <f b f> boot <g c";
  std::vector<std::string> chunks = SplitTopLevel(log, InputFormat::kTrace);
  ASSERT_EQ(chunks.size(), 3u);
  EXPECT_EQ(chunks[0], "<main a main>");
  EXPECT_EQ(chunks[1], " <f b f>");
  EXPECT_EQ(chunks[2], " boot <g c");  // unclosed frame spills
  std::string cat;
  for (const std::string& ch : chunks) cat += ch;
  EXPECT_EQ(cat, log);
}

TEST(TraceFuzz, MutatedLogsNeverFailAndAlwaysRecompose) {
  Workload w(TraceQueryTexts());
  QueryEngine engine(w.num_symbols);
  engine.set_other_symbol(w.other);
  for (const OptimizedQuery& q : w.bank.queries) engine.Add(&q.nwa);
  Rng rng(31337);
  Alphabet alphabet = w.alphabet;
  std::vector<std::string> seeds = MakeTraceCorpus(8, 5);
  for (int round = 0; round < 300; ++round) {
    std::string doc = seeds[rng.Below(seeds.size())];
    size_t edits = 1 + rng.Below(6);
    for (size_t e = 0; e < edits && !doc.empty(); ++e) {
      size_t at = rng.Below(doc.size());
      switch (rng.Below(4)) {
        case 0:
          doc[at] = "<> "[rng.Below(3)];
          break;
        case 1:
          doc.erase(at, 1 + rng.Below(4));
          break;
        case 2:
          doc.insert(at, 1, "<> "[rng.Below(3)]);
          break;
        case 3:
          doc.resize(at);
          break;
      }
    }
    Alphabet scratch;
    TraceTokenStream stream(doc, &scratch);
    TaggedSymbol t;
    while (stream.Next(&t)) {
    }
    EXPECT_EQ(stream.pos(), doc.size());
    std::vector<std::string> chunks = SplitTopLevel(doc, InputFormat::kTrace);
    std::string cat;
    for (const std::string& ch : chunks) cat += ch;
    EXPECT_EQ(cat, doc);
    engine.RunAll(doc, &alphabet, InputFormat::kTrace);
  }
}

TEST(TraceStats, FlushOnceWithFormatLabel) {
  StatsSink sink;
  std::string log = "<main <f acquire release f> main>";
  {
    Alphabet sigma;
    TraceTokenStream stream(log, &sigma);
    stream.set_stats(&sink);
    TaggedSymbol t;
    while (stream.Next(&t)) {
    }
  }
  EXPECT_EQ(sink.stream_docs_trace.value(), 1u);
  EXPECT_EQ(sink.stream_docs_xml.value(), 0u);
  EXPECT_EQ(sink.stream_bytes.value(), log.size());
  EXPECT_EQ(sink.stream_calls.value(), 2u);
  EXPECT_EQ(sink.stream_returns.value(), 2u);
  EXPECT_EQ(sink.stream_internals.value(), 2u);
  EXPECT_EQ(sink.stream_depth_hwm.value(), 2u);
}

}  // namespace
}  // namespace nw
