// Tests for deterministic NWAs (§3.1): run semantics on all three position
// types, pending-edge handling, subclass predicates, totalization, and the
// streaming runner's space guarantee.
#include "nwa/nwa.h"

#include <gtest/gtest.h>

#include "nw/generate.h"
#include "nw/text.h"
#include "nwa/families.h"
#include "support/rng.h"

namespace nw {
namespace {

// NWA over {a} accepting well-matched words (over the subclass of words
// with no pending edges): passes "level parity"... simplest: accepts words
// whose pending-call and pending-return counts are zero by never defining
// the pending-return row and by tracking nothing else.
//
// Concretely: one state q; all transitions loop on q; returns only defined
// for hier = pushed q. A pending return would read hier_initial = q too —
// so to *detect* pendings we use a dedicated bottom marker as hier_initial.
Nwa WellMatchedChecker() {
  Nwa a(1);
  StateId q = a.AddState(true);
  StateId bottom = a.AddState(false);
  a.set_initial(q);
  a.set_hier_initial(bottom);  // pending returns read `bottom`: no rule
  a.SetInternal(q, 0, q);
  a.SetCall(q, 0, q, q);
  a.SetReturn(q, q, 0, q);
  return a;
}

TEST(Nwa, WellMatchedCheckerSemantics) {
  Nwa a = WellMatchedChecker();
  Rng rng(1);
  for (int iter = 0; iter < 200; ++iter) {
    NestedWord n = RandomNestedWord(&rng, 1, 16);
    bool expect = n.IsWellMatched() || Matching(n).pending_returns() == 0;
    // Pending calls leave final-state acceptance intact (state stays q);
    // pending returns kill the run. So acceptance == "no pending returns".
    EXPECT_EQ(a.Accepts(n), expect) << iter;
  }
}

TEST(Nwa, EmptyWordAcceptanceIsInitialFinality) {
  Nwa a(1);
  StateId q = a.AddState(false);
  a.set_initial(q);
  EXPECT_FALSE(a.Accepts(NestedWord()));
  a.set_final(q);
  EXPECT_TRUE(a.Accepts(NestedWord()));
}

TEST(Nwa, HierarchicalInformationFlow) {
  // The Thm 3 automaton is the canonical "hierarchical edges carry data"
  // example: symbol at call must equal symbol at matching return.
  for (int s : {1, 2, 3, 5}) {
    Nwa a = Thm3PathNwa(s);
    Rng rng(7 + s);
    // All 2^s members accepted.
    for (uint64_t bits = 0; bits < (1ull << s); ++bits) {
      std::vector<Symbol> w(s);
      for (int i = 0; i < s; ++i) w[i] = (bits >> i) & 1;
      EXPECT_TRUE(a.Accepts(NestedWord::Path(w))) << s << " " << bits;
    }
    // Random words agree with the oracle.
    for (int iter = 0; iter < 300; ++iter) {
      NestedWord n = RandomNestedWord(&rng, 2, rng.Below(2 * s + 3));
      EXPECT_EQ(a.Accepts(n), Thm3Member(n, s));
    }
    // Mutating one return symbol of a member must reject.
    std::vector<Symbol> w(s, 0);
    NestedWord good = NestedWord::Path(w);
    NestedWord bad = good;
    (*bad.mutable_tagged())[2 * s - 1].symbol = 1;
    EXPECT_FALSE(a.Accepts(bad));
  }
}

TEST(Nwa, Thm3StateCountIsLinear) {
  for (int s : {1, 4, 9}) {
    EXPECT_EQ(Thm3PathNwa(s).num_states(), static_cast<size_t>(2 * s + 1));
  }
}

TEST(Nwa, PendingReturnReadsHierInitial) {
  // δr(q, q0, a) drives pending returns (paper: q_{−∞j} = q0).
  Nwa a(1);
  StateId q0 = a.AddState(false);
  StateId hit = a.AddState(true);
  a.set_initial(q0);
  a.SetReturn(q0, q0, 0, hit);
  NestedWord pending_return({Return(0)});
  EXPECT_TRUE(a.Accepts(pending_return));
}

TEST(Nwa, MissingTransitionRejects) {
  Nwa a(2);
  StateId q = a.AddState(true);
  a.set_initial(q);
  a.SetInternal(q, 0, q);
  EXPECT_TRUE(a.Accepts(NestedWord({Internal(0)})));
  EXPECT_FALSE(a.Accepts(NestedWord({Internal(1)})));
  EXPECT_FALSE(a.Accepts(NestedWord({Call(0)})));
}

TEST(Nwa, TotalizeKeepsLanguage) {
  Nwa a = Thm3PathNwa(3);
  Nwa t = Thm3PathNwa(3);
  t.Totalize();
  Rng rng(3);
  for (int iter = 0; iter < 300; ++iter) {
    NestedWord n = RandomNestedWord(&rng, 2, rng.Below(10));
    EXPECT_EQ(a.Accepts(n), t.Accepts(n));
  }
  // And the totalized automaton never dies.
  NwaRunner r(t);
  EXPECT_TRUE(r.Feed(Internal(0)));
  EXPECT_TRUE(r.Feed(Return(1)));
  EXPECT_FALSE(r.Accepting());
}

TEST(NwaRunner, SpaceTracksDepthNotLength) {
  // §3.2: membership space is proportional to input *depth*.
  Nwa a = WellMatchedChecker();
  Rng rng(5);
  for (size_t depth : {2u, 5u, 11u}) {
    NestedWord n = RandomWithDepth(&rng, 1, 600, depth);
    NwaRunner r(a);
    r.Run(n);
    EXPECT_LE(r.MaxStackDepth(), depth);
    EXPECT_EQ(r.StackDepth(), 0u);  // well-matched input drains the stack
  }
}

TEST(NwaRunner, FeedInterface) {
  Nwa a = Thm3PathNwa(2);
  NwaRunner r(a);
  EXPECT_TRUE(r.Feed(Call(0)));
  EXPECT_TRUE(r.Feed(Call(1)));
  EXPECT_TRUE(r.Feed(Return(1)));
  EXPECT_FALSE(r.Accepting());  // not yet complete
  EXPECT_TRUE(r.Feed(Return(0)));
  EXPECT_TRUE(r.Accepting());
  // Extra input kills the run (no transitions out of the final state).
  EXPECT_FALSE(r.Feed(Internal(0)));
  EXPECT_TRUE(r.dead());
}

TEST(Nwa, SubclassPredicates) {
  EXPECT_TRUE(Thm5FlatNwa(3).IsFlat());
  EXPECT_FALSE(Thm3PathNwa(3).IsFlat());
  // Flat implies nothing about weak: flat passes q0, weak passes q.
  Nwa weak(1);
  StateId q0 = weak.AddState(true);
  StateId q1 = weak.AddState(false);
  weak.set_initial(q0);
  weak.SetCall(q0, 0, q1, q0);  // hier = source: weak; also = q0: flat
  weak.SetCall(q1, 0, q1, q1);  // hier = source: weak; not q0
  EXPECT_TRUE(weak.IsWeak());
  EXPECT_FALSE(weak.IsFlat());
  // Bottom-up: linear call target independent of source.
  Nwa bu(1);
  StateId b0 = bu.AddState(true);
  StateId b1 = bu.AddState(false);
  bu.set_initial(b0);
  bu.SetCall(b0, 0, b1, b0);
  bu.SetCall(b1, 0, b1, b1);
  EXPECT_TRUE(bu.IsBottomUp());
  EXPECT_FALSE(Thm3PathNwa(2).IsBottomUp());
}

TEST(Nwa, Thm6WitnessLanguage) {
  Nwa a = Thm6Nwa();
  Alphabet sigma = Alphabet::Ab();
  // Members for k = 0, 1, 2 and both symbols.
  for (const char* text : {
           "<b <a a> b> <a a>",
           "<b <b b> b> <b b>",
           "<a <b <a a> b> <a a> a>",
           "<a <a <b <b b> b> <b b> a> a>",
       }) {
    auto n = ParseNestedWord(text, &sigma).Take();
    EXPECT_TRUE(a.Accepts(n)) << text;
    EXPECT_TRUE(Thm6Member(n)) << text;
  }
  // Non-members: symbol mismatch between the two inner blocks; unbalanced
  // prefix/suffix; wrong shapes.
  for (const char* text : {
           "<b <a a> b> <b b>",
           "<a <b <a a> b> <a a>",
           "<b <a a> b> <a a> a>",
           "<a <b <a a> b> <b b> a>",
           "a <b <a a> b> <a a>",
       }) {
    auto n = ParseNestedWord(text, &sigma).Take();
    EXPECT_FALSE(a.Accepts(n)) << text;
    EXPECT_FALSE(Thm6Member(n)) << text;
  }
  // Randomized oracle agreement.
  Rng rng(17);
  for (int iter = 0; iter < 500; ++iter) {
    NestedWord n = RandomNestedWord(&rng, 2, rng.Below(14));
    EXPECT_EQ(a.Accepts(n), Thm6Member(n));
  }
}

TEST(Nwa, Thm5FlatAutomatonMatchesOracle) {
  for (int s : {1, 2, 3, 4}) {
    Nwa a = Thm5FlatNwa(s);
    // All canonical members with m in 0..2s.
    for (int m = 0; m <= 2 * s; ++m) {
      for (const NestedWord& n : Thm5Words(s, m)) {
        EXPECT_TRUE(a.Accepts(n)) << s << " m=" << m;
        EXPECT_TRUE(Thm5Member(n, s));
      }
    }
    Rng rng(23 + s);
    for (int iter = 0; iter < 400; ++iter) {
      NestedWord n = RandomNestedWord(&rng, 2, rng.Below(4 * s + 8));
      EXPECT_EQ(a.Accepts(n), Thm5Member(n, s));
    }
  }
}

TEST(Nwa, Thm8PathAutomatonMatchesOracle) {
  for (int s : {1, 2, 3}) {
    Nwa a = Thm8PathNwa(s);
    // Members: w = x^s a y* a z^s for a few explicit picks.
    for (int mid_len : {0, 1, 3}) {
      for (uint64_t bits = 0; bits < 8; ++bits) {
        std::vector<Symbol> w;
        for (int i = 0; i < s; ++i) w.push_back((bits >> i) & 1);
        w.push_back(0);  // a
        for (int i = 0; i < mid_len; ++i) w.push_back((bits >> (i % 3)) & 1);
        w.push_back(0);  // a
        for (int i = 0; i < s; ++i) w.push_back((bits >> ((i + 1) % 3)) & 1);
        NestedWord n = NestedWord::Path(w);
        EXPECT_TRUE(Thm8Member(n, s));
        EXPECT_TRUE(a.Accepts(n)) << s << " " << mid_len << " " << bits;
      }
    }
    // The two a-positions may not overlap: w = Σ^s a Σ^s is too short.
    std::vector<Symbol> wshort(s, 1);
    wshort.push_back(0);
    for (int i = 0; i < s; ++i) wshort.push_back(1);
    EXPECT_FALSE(a.Accepts(NestedWord::Path(wshort)));
    // Oracle agreement on random words and random paths.
    Rng rng(31 + s);
    for (int iter = 0; iter < 300; ++iter) {
      NestedWord n = RandomNestedWord(&rng, 2, rng.Below(6 * s + 10));
      EXPECT_EQ(a.Accepts(n), Thm8Member(n, s)) << iter;
    }
    for (int iter = 0; iter < 300; ++iter) {
      size_t len = rng.Below(4 * s + 6);
      std::vector<Symbol> w;
      for (size_t i = 0; i < len; ++i) w.push_back(rng.Below(2));
      NestedWord n = NestedWord::Path(w);
      EXPECT_EQ(a.Accepts(n), Thm8Member(n, s)) << iter;
    }
  }
}

TEST(NwaDeathTest, SetReturnRejectsIdsOutsidePackedRange) {
  // ReturnKey packs 24-bit states and a 16-bit symbol; out-of-range ids
  // must abort instead of silently colliding with another key.
  Nwa a(1);
  StateId q = a.AddState(true);
  a.set_initial(q);
  EXPECT_DEATH(a.SetReturn(1u << 24, q, 0, q), "24-bit packing");
  EXPECT_DEATH(a.SetReturn(q, 1u << 24, 0, q), "24-bit packing");
  EXPECT_DEATH(a.SetReturn(q, q, 1u << 16, q), "16-bit packing");
  // In-range insertion still works.
  a.SetReturn(q, q, 0, q);
  EXPECT_EQ(a.NextReturn(q, q, 0), q);
}

TEST(Nwa, StepApiMatchesRunner) {
  // The external-state step API must agree with NwaRunner on every
  // position kind, including death on missing transitions and pending
  // returns reading hier_initial.
  Nwa a = Thm3PathNwa(2);
  Rng rng(41);
  for (int iter = 0; iter < 200; ++iter) {
    NestedWord n = RandomNestedWord(&rng, 2, rng.Below(12));
    NwaRunner r(a);
    StateId q = a.initial();
    std::vector<StateId> stack;
    for (const TaggedSymbol& t : n.tagged()) {
      r.Feed(t);
      switch (t.kind) {
        case Kind::kInternal:
          q = a.StepInternal(q, t.symbol);
          break;
        case Kind::kCall: {
          StateId h;
          q = a.StepCall(q, t.symbol, &h);
          if (q != kNoState) stack.push_back(h);
          break;
        }
        case Kind::kReturn: {
          StateId h = kNoState;
          if (!stack.empty()) {
            h = stack.back();
            stack.pop_back();
          }
          q = a.StepReturn(q, h, t.symbol);
          break;
        }
      }
      EXPECT_EQ(q == kNoState, r.dead());
      if (!r.dead()) EXPECT_EQ(q, r.state());
    }
  }
}

TEST(Nwa, NumTransitionsCountsDefinedOnly) {
  Nwa a(2);
  StateId q = a.AddState(true);
  a.set_initial(q);
  EXPECT_EQ(a.NumTransitions(), 0u);
  a.SetInternal(q, 0, q);
  a.SetCall(q, 1, q, q);
  a.SetReturn(q, q, 1, q);
  EXPECT_EQ(a.NumTransitions(), 3u);
}

}  // namespace
}  // namespace nw
