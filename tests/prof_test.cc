// Tests for the NWProf layer (src/obs/prof.h): per-query attribution must
// match a per-query NwaRunner oracle and be identical across all three
// engine execution paths (SoA, shared bank, frozen), its totals must stay
// pinned to the NWStats engine aggregates, escalations must be charged to
// the queries that caused them, the compile timeline must record ordered
// phases with monotone minimization deltas, and the chrome trace format
// must emit one well-formed event array.
#include "obs/prof.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "obs/stats.h"
#include "obs/trace.h"
#include "opt/bank.h"
#include "opt/pipeline.h"
#include "query/engine.h"
#include "query/nwquery.h"
#include "serve/frozen_bank.h"
#include "serve/sharded.h"
#include "support/rng.h"
#include "xml/xml.h"

namespace nw {
namespace {

// A bank mixing the atom kinds, compiled through the full optimizer so
// the same automata back the SoA, bank, and frozen paths.
std::vector<std::string> QueryTexts() {
  return {"/a", "//b", "/a/b or //c", "a then c", "depth >= 3", "not //e"};
}

struct Workload {
  Alphabet alphabet;
  std::vector<Query> queries;
  Symbol other = Alphabet::kNoSymbol;
  size_t num_symbols = 0;
  OptimizedBank bank;

  Workload() {
    for (const std::string& text : QueryTexts()) {
      queries.push_back(ParseQuery(text, &alphabet).Take());
    }
    alphabet.Intern("#text");
    other = alphabet.Intern("%other");
    num_symbols = alphabet.size();
    bank = OptimizeBank(queries, num_symbols, OptOptions::All());
  }
};

/// Documents over the query names plus one unlisted name, so the
/// catch-all remap path is exercised like the CLI's generator does.
std::vector<std::string> MakeCorpus(size_t n, uint64_t seed) {
  Alphabet gen;
  for (const char* name : {"a", "b", "c", "e", "unlisted"}) gen.Intern(name);
  Rng rng(seed);
  std::vector<std::string> corpus;
  for (size_t i = 0; i < n; ++i) {
    corpus.push_back(
        RandomXmlDocument(&rng, gen, 120 + (i % 4) * 90, 3 + i % 6));
  }
  return corpus;
}

/// Per-query oracle counts, computed one query at a time with NwaRunner —
/// completely independent of the engine's batching and early-stop logic.
struct Oracle {
  std::vector<uint64_t> match_docs;
  std::vector<uint64_t> accept_positions;
  uint64_t positions = 0;
};

Oracle RunOracle(const Workload& w, const std::vector<std::string>& corpus) {
  const size_t k = w.bank.queries.size();
  Oracle o;
  o.match_docs.assign(k, 0);
  o.accept_positions.assign(k, 0);
  Alphabet local = w.alphabet;
  for (const std::string& doc : corpus) {
    NestedWord word = XmlToNestedWord(doc, &local);
    o.positions += word.size();
    for (size_t q = 0; q < k; ++q) {
      NwaRunner r(w.bank.queries[q].nwa);
      // The pre-input check: a query may accept the empty prefix.
      o.accept_positions[q] += r.Accepting();
      for (TaggedSymbol t : word.tagged()) {
        // The engine remaps post-compile symbols to the catch-all.
        if (t.symbol >= w.num_symbols) t.symbol = w.other;
        if (!r.Feed(t)) break;  // dead runs never accept again
        o.accept_positions[q] += r.Accepting();
      }
      o.match_docs[q] += r.Accepting();
    }
  }
  return o;
}

void ExpectMatchesOracle(const QueryAttribution& attr, const Oracle& o,
                         const std::vector<std::string>& corpus,
                         const char* path) {
  ASSERT_EQ(attr.num_queries(), o.match_docs.size());
  EXPECT_EQ(attr.docs.value(), corpus.size()) << path;
  EXPECT_EQ(attr.positions.value(), o.positions) << path;
  for (size_t q = 0; q < attr.num_queries(); ++q) {
    EXPECT_EQ(attr.query(q).match_docs.value(), o.match_docs[q])
        << path << " query " << q;
    EXPECT_EQ(attr.query(q).accept_positions.value(), o.accept_positions[q])
        << path << " query " << q;
  }
}

// ---------------------------------------------------------------------------
// Attribution differential: SoA vs bank vs frozen vs the NwaRunner oracle.
// ---------------------------------------------------------------------------

TEST(QueryAttribution, SoaPathMatchesPerQueryOracle) {
  Workload w;
  std::vector<std::string> corpus = MakeCorpus(10, 101);
  Oracle oracle = RunOracle(w, corpus);
  QueryEngine engine(w.num_symbols);
  engine.set_other_symbol(w.other);
  engine.set_track_matches(true);
  for (const OptimizedQuery& q : w.bank.queries) engine.Add(&q.nwa);
  QueryAttribution attr(engine.num_queries());
  engine.set_attribution(&attr);
  Alphabet local = w.alphabet;
  for (const std::string& doc : corpus) engine.RunAll(doc, &local);
  ExpectMatchesOracle(attr, oracle, corpus, "soa");
}

TEST(QueryAttribution, BankPathMatchesPerQueryOracle) {
  Workload w;
  ASSERT_NE(w.bank.shared, nullptr);
  std::vector<std::string> corpus = MakeCorpus(10, 101);
  Oracle oracle = RunOracle(w, corpus);
  QueryEngine engine(w.num_symbols);
  engine.set_other_symbol(w.other);
  engine.set_track_matches(true);
  engine.AddBank(w.bank.shared.get());
  QueryAttribution attr(engine.num_queries());
  engine.set_attribution(&attr);
  Alphabet local = w.alphabet;
  for (const std::string& doc : corpus) engine.RunAll(doc, &local);
  ExpectMatchesOracle(attr, oracle, corpus, "bank");
}

TEST(QueryAttribution, FrozenPathMatchesPerQueryOracle) {
  Workload w;
  ASSERT_NE(w.bank.shared, nullptr);
  std::vector<std::string> corpus = MakeCorpus(10, 101);
  Oracle oracle = RunOracle(w, corpus);
  // Train on a prefix only, so part of the corpus misses the snapshot
  // and the overflow path is attributed too.
  {
    QueryEngine trainer(w.num_symbols);
    trainer.set_other_symbol(w.other);
    trainer.AddBank(w.bank.shared.get());
    Alphabet local = w.alphabet;
    trainer.RunAll(corpus[0], &local);
  }
  FrozenBank frozen = FrozenBank::Freeze(*w.bank.shared);
  OverflowBank overflow(&frozen);
  QueryEngine engine(w.num_symbols);
  engine.set_other_symbol(w.other);
  engine.set_track_matches(true);
  engine.AddFrozen(&frozen, &overflow);
  QueryAttribution attr(engine.num_queries());
  engine.set_attribution(&attr);
  overflow.set_attribution(&attr);
  Alphabet local = w.alphabet;
  for (const std::string& doc : corpus) engine.RunAll(doc, &local);
  ExpectMatchesOracle(attr, oracle, corpus, "frozen");
}

TEST(QueryAttribution, TotalsArePinnedToTheEngineAggregates) {
  Workload w;
  std::vector<std::string> corpus = MakeCorpus(6, 7);
  QueryEngine engine(w.num_symbols);
  engine.set_other_symbol(w.other);
  engine.set_track_matches(true);
  for (const OptimizedQuery& q : w.bank.queries) engine.Add(&q.nwa);
  StatsSink sink;
  engine.set_stats(&sink);
  QueryAttribution attr(engine.num_queries());
  engine.set_attribution(&attr);
  Alphabet local = w.alphabet;
  for (const std::string& doc : corpus) engine.RunAll(doc, &local);
  EXPECT_EQ(attr.docs.value(), sink.engine_docs.value());
  EXPECT_EQ(attr.positions.value(), sink.engine_positions.value());
  // match_docs is a share of the document count, never more.
  for (size_t q = 0; q < attr.num_queries(); ++q) {
    EXPECT_LE(attr.query(q).match_docs.value(), attr.docs.value());
  }
}

TEST(QueryAttribution, AttributionWithoutStatsDoesNotChangeResults) {
  Workload w;
  std::vector<std::string> corpus = MakeCorpus(6, 23);
  QueryEngine plain(w.num_symbols), attributed(w.num_symbols);
  QueryAttribution attr(w.bank.queries.size());
  for (QueryEngine* e : {&plain, &attributed}) {
    e->set_other_symbol(w.other);
    e->set_track_matches(true);
    for (const OptimizedQuery& q : w.bank.queries) e->Add(&q.nwa);
  }
  attributed.set_attribution(&attr);  // no sink: attribution alone
  Alphabet a_plain = w.alphabet, a_attr = w.alphabet;
  for (const std::string& doc : corpus) {
    EXPECT_EQ(plain.RunAll(doc, &a_plain), attributed.RunAll(doc, &a_attr));
    for (size_t q = 0; q < plain.num_queries(); ++q) {
      EXPECT_EQ(plain.first_match(q), attributed.first_match(q));
    }
  }
  EXPECT_EQ(attr.docs.value(), corpus.size());
}

TEST(QueryAttribution, EscalationsAreChargedToLiveQueries) {
  Workload w;
  ASSERT_NE(w.bank.shared, nullptr);
  // Freeze with zero training: every novel step is a snapshot miss, and
  // whatever stays out of frozen space escalates.
  FrozenBank frozen = FrozenBank::Freeze(*w.bank.shared);
  OverflowBank overflow(&frozen);
  StatsSink sink;
  QueryAttribution attr(frozen.num_queries());
  overflow.set_stats(&sink);
  overflow.set_attribution(&attr);
  QueryEngine engine(w.num_symbols);
  engine.set_other_symbol(w.other);
  engine.AddFrozen(&frozen, &overflow);
  Alphabet local = w.alphabet;
  for (const std::string& doc : MakeCorpus(4, 99)) {
    engine.RunAll(doc, &local);
  }
  ASSERT_GT(sink.overflow_escalations.value(), 0u);
  uint64_t charged = 0, per_query_max = 0;
  for (size_t q = 0; q < attr.num_queries(); ++q) {
    charged += attr.query(q).escalations.value();
    per_query_max =
        std::max(per_query_max, attr.query(q).escalations.value());
  }
  // Every escalation charges each still-live component query: at least
  // one query per escalation (something kept the tuple alive), at most
  // K, and no single query more than the escalation count.
  EXPECT_GE(charged, sink.overflow_escalations.value());
  EXPECT_LE(charged, sink.overflow_escalations.value() * attr.num_queries());
  EXPECT_LE(per_query_max, sink.overflow_escalations.value());
}

TEST(QueryAttribution, MergeSumsCountersAndMaxesGauges) {
  QueryAttribution a(2), b(2);
  a.docs.Add(3);
  a.positions.Add(30);
  a.query(0).match_docs.Add(2);
  a.query(1).states_compiled.Set(7);
  b.docs.Add(4);
  b.positions.Add(40);
  b.query(0).match_docs.Add(5);
  b.query(1).states_compiled.Set(7);  // same bank, same sizes
  a.MergeFrom(b);
  EXPECT_EQ(a.docs.value(), 7u);
  EXPECT_EQ(a.positions.value(), 70u);
  EXPECT_EQ(a.query(0).match_docs.value(), 7u);
  EXPECT_EQ(a.query(1).states_compiled.value(), 7u);
}

// ---------------------------------------------------------------------------
// Sharded serving: per-shard tables merge to the single-stream truth.
// ---------------------------------------------------------------------------

TEST(ShardedEvaluator, ShardAttributionsSumToTheCorpusTruth) {
  Workload w;
  ASSERT_NE(w.bank.shared, nullptr);
  std::vector<std::string> corpus = MakeCorpus(12, 301);
  Oracle oracle = RunOracle(w, corpus);
  ASSERT_TRUE(w.bank.shared->ExploreAll(1u << 16));
  FrozenBank frozen = FrozenBank::Freeze(*w.bank.shared);
  ShardedEvaluator evaluator(&frozen, w.num_symbols, w.other, 3);
  StatsRegistry registry;
  evaluator.AttachStats(&registry);
  evaluator.EvaluateCorpus(corpus, w.alphabet, true);
  ASSERT_EQ(registry.attributions().size(), 3u);
  QueryAttribution merged(frozen.num_queries());
  for (const QueryAttribution* shard : registry.attributions()) {
    merged.MergeFrom(*shard);
  }
  ExpectMatchesOracle(merged, oracle, corpus, "sharded");
}

// ---------------------------------------------------------------------------
// Compile timeline
// ---------------------------------------------------------------------------

TEST(CompileTimeline, PipelineRecordsOrderedMonotonePhases) {
  Alphabet alphabet;
  std::vector<Query> queries;
  for (const std::string& text : QueryTexts()) {
    queries.push_back(ParseQuery(text, &alphabet).Take());
  }
  alphabet.Intern("#text");
  alphabet.Intern("%other");
  CompileTimeline timeline;
  OptOptions opt = OptOptions::All();
  opt.timeline = &timeline;
  OptimizedBank bank = OptimizeBank(queries, alphabet.size(), opt);
  std::vector<std::string> names;
  for (const CompilePhase& p : timeline.phases()) names.push_back(p.name);
  EXPECT_EQ(names, (std::vector<std::string>{"rewrite", "lower", "minimize",
                                             "bank_build"}));
  uint64_t sum = 0;
  for (const CompilePhase& p : timeline.phases()) sum += p.us;
  EXPECT_EQ(timeline.total_us(), sum);
  for (const CompilePhase& p : timeline.phases()) {
    if (p.name == "lower") {
      EXPECT_EQ(p.states_after, bank.states_compiled());
    }
    if (p.name == "minimize") {
      // Minimization never grows the bank.
      EXPECT_EQ(p.states_before, bank.states_compiled());
      EXPECT_EQ(p.states_after, bank.states_final());
      EXPECT_LE(p.states_after, p.states_before);
    }
  }
}

TEST(CompileTimeline, ExploreAndFreezeRecordTheProductSizes) {
  Workload w;
  ASSERT_NE(w.bank.shared, nullptr);
  CompileTimeline timeline;
  ASSERT_TRUE(w.bank.shared->ExploreAll(1u << 16, &timeline));
  FrozenBank frozen = FrozenBank::Freeze(*w.bank.shared, &timeline);
  ASSERT_EQ(timeline.phases().size(), 2u);
  const CompilePhase& explore = timeline.phases()[0];
  const CompilePhase& freeze = timeline.phases()[1];
  EXPECT_EQ(explore.name, "explore");
  EXPECT_GE(explore.states_after, explore.states_before);
  EXPECT_EQ(explore.states_after, w.bank.shared->num_states());
  EXPECT_EQ(freeze.name, "freeze");
  EXPECT_EQ(freeze.states_after, frozen.num_states());
}

TEST(CompileTimeline, UnminimizedPipelineSkipsTheMinimizePhase) {
  Alphabet alphabet;
  std::vector<Query> queries{ParseQuery("//a", &alphabet).Take()};
  alphabet.Intern("#text");
  alphabet.Intern("%other");
  CompileTimeline timeline;
  OptOptions opt = OptOptions::None();
  opt.timeline = &timeline;
  OptimizeBank(queries, alphabet.size(), opt);
  std::vector<std::string> names;
  for (const CompilePhase& p : timeline.phases()) names.push_back(p.name);
  EXPECT_EQ(names, (std::vector<std::string>{"lower"}));
}

// ---------------------------------------------------------------------------
// Chrome trace format
// ---------------------------------------------------------------------------

TEST(Tracer, ChromeFormatEmitsOneWellFormedEventArray) {
  std::string path = testing::TempDir() + "/nw_prof_chrome_trace.json";
  std::remove(path.c_str());
  {
    Tracer tracer(path, TraceFormat::kChrome);
    ASSERT_TRUE(tracer.ok());
    EXPECT_EQ(tracer.format(), TraceFormat::kChrome);
    {
      TraceSpan span(&tracer, "doc", "corpus/0");
      span.Note("shard", 2);
      span.Note("positions", 42);
    }
    StatsSink sink;
    sink.engine_docs.Add(1);
    sink.frozen_hits.Add(42);
    tracer.WriteCounters(2, sink);
  }
  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  std::string content;
  char buf[512];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) content.append(buf, n);
  std::fclose(f);
  std::remove(path.c_str());
  // One array wrapping comma-separated events.
  ASSERT_FALSE(content.empty());
  EXPECT_EQ(content.front(), '[');
  EXPECT_EQ(content.find_last_not_of(" \n"), content.rfind(']'));
  // The span became a complete event on the shard's track...
  EXPECT_NE(content.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(content.find("\"tid\":2"), std::string::npos);
  EXPECT_NE(content.find("\"dur\":"), std::string::npos);
  EXPECT_NE(content.find("\"label\":\"corpus/0\""), std::string::npos);
  EXPECT_NE(content.find("\"positions\":42"), std::string::npos);
  // ...and the counter snapshot became a C event with the series.
  EXPECT_NE(content.find("\"ph\":\"C\""), std::string::npos);
  EXPECT_NE(content.find("\"name\":\"shard/2\""), std::string::npos);
  EXPECT_NE(content.find("\"frozen_hits\":42"), std::string::npos);
  // Exactly two events → exactly one separating comma between '}' and '{'.
  size_t events = 0;
  for (size_t i = 0; (i = content.find("\"ph\":", i)) != std::string::npos;
       ++i) {
    ++events;
  }
  EXPECT_EQ(events, 2u);
}

TEST(Tracer, JsonlCountersLineCarriesTheShardSeries) {
  std::string path = testing::TempDir() + "/nw_prof_jsonl_counters.jsonl";
  std::remove(path.c_str());
  {
    Tracer tracer(path);  // default: jsonl
    ASSERT_TRUE(tracer.ok());
    EXPECT_EQ(tracer.format(), TraceFormat::kJsonl);
    StatsSink sink;
    sink.frozen_misses.Add(7);
    tracer.WriteCounters(1, sink);
  }
  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  char line[512];
  ASSERT_NE(std::fgets(line, sizeof(line), f), nullptr);
  std::string s = line;
  EXPECT_NE(s.find("\"name\":\"counters\""), std::string::npos);
  EXPECT_NE(s.find("\"shard\":1"), std::string::npos);
  EXPECT_NE(s.find("\"frozen_misses\":7"), std::string::npos);
  EXPECT_EQ(std::fgets(line, sizeof(line), f), nullptr);
  std::fclose(f);
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Registry rendering of the NWProf sections
// ---------------------------------------------------------------------------

TEST(StatsRegistry, QueriesAndCompileSectionsRenderWithStableKeys) {
  QueryAttribution attr(2);
  attr.docs.Add(3);
  attr.positions.Add(120);
  attr.query(0).match_docs.Add(2);
  attr.query(0).accept_positions.Add(17);
  attr.query(0).states_compiled.Set(5);
  attr.query(0).states_final.Set(3);
  CompileTimeline timeline;
  timeline.Record("lower", 11, 0, 8);
  timeline.Record("minimize", 22, 8, 5);
  StatsRegistry reg;
  reg.RegisterAttribution(&attr);
  reg.SetQueryLabels({"//a", "//b"});
  reg.SetTimeline(&timeline);
  std::string json = reg.RenderJson();
  for (const char* key :
       {"\"queries\":{\"docs\":3", "\"per_query\":[", "\"id\":0",
        "\"text\":\"//a\"", "\"states_compiled\":5", "\"states_final\":3",
        "\"match_docs\":2", "\"accept_positions\":17", "\"escalations\":0",
        "\"compile\":{\"total_us\":33", "\"phases\":[",
        "\"name\":\"minimize\"", "\"states_before\":8",
        "\"states_after\":5"}) {
    EXPECT_NE(json.find(key), std::string::npos) << "missing " << key;
  }
  std::string text = reg.RenderText();
  EXPECT_NE(text.find("query"), std::string::npos);
  EXPECT_NE(text.find("compile"), std::string::npos);
  EXPECT_NE(text.find("//a"), std::string::npos);
}

TEST(StatsRegistry, ProfSectionsRenderEmptyWhenUnattached) {
  StatsRegistry reg;
  std::string json = reg.RenderJson();
  EXPECT_NE(json.find("\"queries\":{\"docs\":0,\"positions\":0,"
                      "\"per_query\":[]}"),
            std::string::npos);
  EXPECT_NE(json.find("\"compile\":{\"total_us\":0,\"phases\":[]}"),
            std::string::npos);
}

}  // namespace
}  // namespace nw
