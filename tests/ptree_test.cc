// Tests for the pushdown tree automaton baseline (Lemma 5, Theorem 9's
// tree side, Figure 2's family).
#include "ptree/ptree.h"

#include <gtest/gtest.h>

namespace nw {
namespace {

// The Figure 2 family: a stem of `stem` a-labeled unary nodes topped by a
// full binary tree of b-labeled nodes of depth `depth` (leaves are b's).
OrderedTree Fig2Tree(int stem, int depth) {
  std::function<TreeNode(int)> full = [&](int d) {
    TreeNode n;
    n.label = 1;  // b
    if (d > 0) {
      n.children.push_back(full(d - 1));
      n.children.push_back(full(d - 1));
    }
    return n;
  };
  TreeNode cur = full(depth);
  for (int i = 0; i < stem; ++i) {
    TreeNode a;
    a.label = 0;
    a.children.push_back(std::move(cur));
    cur = std::move(a);
  }
  return OrderedTree(std::move(cur));
}

// PTA accepting trees whose stem length equals the binary-tree depth:
// pushes one γ per a-node, pops one per b-level.
PushdownTreeAutomaton StemEqualsDepth() {
  PushdownTreeAutomaton p(2, 2);
  StateId stem = p.AddState();
  StateId pushed = p.AddState();
  StateId tree = p.AddState();
  StateId popped = p.AddState();
  StateId leaf_end = p.AddState();
  p.AddInitial(stem);
  p.AddUnary(stem, 0, pushed);  // a-node...
  p.AddPush(pushed, stem, 1);   // hmm: push *after* descending — see below
  p.AddBranch(tree, 1, popped, popped);
  p.AddPop(popped, 1, tree);
  p.AddLeaf(tree, 1, leaf_end);
  // At a leaf the stack must drain: exactly ⊥ should remain after the
  // pops, i.e. #a == depth.
  p.AddPop(leaf_end, 0, leaf_end);
  // Transition from stem phase to tree phase.
  p.AddBranch(stem, 1, popped, popped);
  p.AddLeaf(stem, 1, leaf_end);
  return p;
}

TEST(Ptree, StemEqualsDepthFamily) {
  PushdownTreeAutomaton p = StemEqualsDepth();
  for (int stem = 0; stem <= 4; ++stem) {
    for (int depth = 0; depth <= 4; ++depth) {
      // The run pushes γ per a-node and pops γ per b-branch level; a leaf
      // at depth d has consumed d pops along its path... every b-branch
      // pops one γ, so acceptance requires stem == depth.
      EXPECT_EQ(p.AcceptsTree(Fig2Tree(stem, depth)), stem == depth)
          << "stem " << stem << " depth " << depth;
    }
  }
}

TEST(Ptree, EmptinessMatchesFamily) {
  PushdownTreeAutomaton p = StemEqualsDepth();
  EXPECT_FALSE(p.IsEmpty());
  // Remove the possibility of finishing: a PTA whose leaves never pop ⊥.
  PushdownTreeAutomaton dead(1, 2);
  StateId q = dead.AddState();
  dead.AddInitial(q);
  dead.AddLeaf(q, 0, q);
  dead.AddBranch(q, 0, q, q);
  EXPECT_TRUE(dead.IsEmpty());
  StateId f = dead.AddState();
  dead.AddPop(q, 0, f);
  EXPECT_FALSE(dead.IsEmpty());
}

TEST(Ptree, StackCopyingToBothBranches) {
  // Theorem 10's remark: "NP-hardness is really due to the ability to
  // propagate the same stack to distinct branches" — both children see
  // the same guessed γ.
  PushdownTreeAutomaton p(2, 3);
  StateId root = p.AddState();
  StateId guess1 = p.AddState();
  StateId guess2 = p.AddState();
  StateId want1 = p.AddState();
  StateId want2 = p.AddState();
  StateId end = p.AddState();
  p.AddInitial(root);
  // Guess γ ∈ {1, 2} then branch; left child demands 1, right demands 2:
  // unsatisfiable together — but if both demand the same, satisfiable.
  p.AddPush(root, guess1, 1);
  p.AddPush(root, guess2, 2);
  // Tree a(b(), b()): branch at a, leaves b.
  // conflicting: left pops 1, right pops 2.
  StateId l1 = p.AddState();
  StateId l2 = p.AddState();
  p.AddBranch(guess1, 0, want1, want1);  // both want 1: consistent
  p.AddBranch(guess2, 0, want1, want2);  // left wants 1, right 2: conflict
  p.AddLeaf(want1, 1, l1);
  p.AddPop(l1, 1, end);
  p.AddLeaf(want2, 1, l2);
  p.AddPop(l2, 2, end);
  p.AddPop(end, 0, end);
  Alphabet sigma = Alphabet::Ab();
  auto t = ParseTree("a(b,b)", &sigma);
  ASSERT_TRUE(t.ok());
  // The guess-1 branch works (both children pop 1); the guess-2 branch
  // self-conflicts (its copy carries 2 but the left leaf needs 1).
  EXPECT_TRUE(p.AcceptsTree(*t));
}

TEST(Ptree, RejectsWrongArity) {
  PushdownTreeAutomaton p = StemEqualsDepth();
  Alphabet sigma = Alphabet::Ab();
  auto t = ParseTree("a(b,b,b)", &sigma);
  ASSERT_TRUE(t.ok());
  EXPECT_FALSE(t->IsEmpty());
  // Arity-3 nodes have no transitions... and are rejected by NW_CHECK
  // policy? No: AcceptsTree checks arity ≤ 2 — so this tree cannot be
  // evaluated; ensure the binary fragment still behaves.
  auto t2 = ParseTree("b(b,b)", &sigma);
  ASSERT_TRUE(t2.ok());
  EXPECT_FALSE(p.AcceptsTree(*t2));  // no stem: needs depth == 0 mismatch
}

}  // namespace
}  // namespace nw
