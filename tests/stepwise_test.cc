// Tests for stepwise bottom-up tree automata (Lemma 1) and classical
// top-down tree automata (Lemma 2 context).
#include "treeauto/stepwise.h"

#include <gtest/gtest.h>

#include "nw/generate.h"
#include "support/rng.h"

namespace nw {
namespace {

// Boolean circuit evaluator over {and=0, or=1, one=2, zero=3}: a subtree's
// state is (connective context, current value) — the classic stepwise
// bottom-up automaton example.
StepwiseTreeAutomaton Circuits4() {
  StepwiseTreeAutomaton s(4);
  StateId and_t = s.AddState(true);   // conjunction, currently true
  StateId and_f = s.AddState(false);  // conjunction, currently false
  StateId or_t = s.AddState(true);
  StateId or_f = s.AddState(false);
  s.SetSymbolState(0, and_t);
  s.SetSymbolState(1, or_f);
  s.SetSymbolState(2, and_t);  // leaf one: final-true shape
  s.SetSymbolState(3, and_f);  // leaf zero
  auto truth = [&](StateId q) { return q == and_t || q == or_t; };
  for (StateId q : {and_t, and_f}) {
    for (StateId c : {and_t, and_f, or_t, or_f}) {
      s.SetCombine(q, c, (truth(q) && truth(c)) ? and_t : and_f);
    }
  }
  for (StateId q : {or_t, or_f}) {
    for (StateId c : {and_t, and_f, or_t, or_f}) {
      s.SetCombine(q, c, (truth(q) || truth(c)) ? or_t : or_f);
    }
  }
  return s;
}

bool EvalCircuit(const TreeNode& n) {
  if (n.label == 2) return true;
  if (n.label == 3) return false;
  bool acc = n.label == 0;  // and: true, or: false
  for (const TreeNode& c : n.children) {
    acc = n.label == 0 ? (acc && EvalCircuit(c)) : (acc || EvalCircuit(c));
  }
  return acc;
}

OrderedTree RandomCircuit(Rng* rng, int depth) {
  TreeNode n;
  if (depth == 0 || rng->Chance(1, 3)) {
    n.label = 2 + rng->Below(2);
    return OrderedTree(std::move(n));
  }
  n.label = rng->Below(2);
  size_t kids = 1 + rng->Below(3);
  for (size_t i = 0; i < kids; ++i) {
    OrderedTree sub = RandomCircuit(rng, depth - 1);
    n.children.push_back(sub.root());
  }
  return OrderedTree(std::move(n));
}

TEST(Stepwise, CircuitEvaluation) {
  StepwiseTreeAutomaton s = Circuits4();
  Rng rng(1);
  for (int iter = 0; iter < 200; ++iter) {
    OrderedTree t = RandomCircuit(&rng, 4);
    EXPECT_EQ(s.AcceptsTree(t), EvalCircuit(t.root())) << iter;
  }
}

TEST(Stepwise, Lemma1SameStateCountAndLanguage) {
  StepwiseTreeAutomaton s = Circuits4();
  Nwa nwa = s.ToBottomUpNwa();
  // Lemma 1: "a bottom-up NWA with s states".
  EXPECT_EQ(nwa.num_states(), s.num_states());
  EXPECT_TRUE(nwa.IsWeak());
  EXPECT_TRUE(nwa.IsBottomUp());
  Rng rng(2);
  for (int iter = 0; iter < 200; ++iter) {
    OrderedTree t = RandomCircuit(&rng, 4);
    EXPECT_EQ(nwa.Accepts(TreeToNestedWord(t)), s.AcceptsTree(t)) << iter;
  }
}

TEST(TopDown, BinaryLabelConstraint) {
  // Top-down automaton over binary trees: every left child of an a-node
  // is b-rooted — states remember the expected constraint.
  TopDownTreeAutomaton td(2);
  StateId any = td.AddState();
  StateId must_b = td.AddState();
  td.set_initial(any);
  td.SetBranch(any, 0, must_b, any);  // a-node: left must be b-rooted
  td.SetBranch(any, 1, any, any);
  td.SetBranch(must_b, 1, any, any);  // ok: it is b-rooted
  td.SetLeafAccept(any, 0);
  td.SetLeafAccept(any, 1);
  td.SetLeafAccept(must_b, 1);

  Alphabet sigma = Alphabet::Ab();
  auto yes = ParseTree("a(b,a(b,b))", &sigma);
  auto no = ParseTree("a(a(b,b),b)", &sigma);
  ASSERT_TRUE(yes.ok() && no.ok());
  EXPECT_TRUE(td.AcceptsTree(*yes));
  EXPECT_FALSE(td.AcceptsTree(*no));
}

TEST(TopDown, LeafAcceptanceMatters) {
  TopDownTreeAutomaton td(1);
  StateId q = td.AddState();
  td.set_initial(q);
  td.SetBranch(q, 0, q, q);
  Alphabet sigma = Alphabet::Ab();
  auto leaf = ParseTree("a", &sigma);
  ASSERT_TRUE(leaf.ok());
  EXPECT_FALSE(td.AcceptsTree(*leaf));
  td.SetLeafAccept(q, 0);
  EXPECT_TRUE(td.AcceptsTree(*leaf));
}

}  // namespace
}  // namespace nw
