// Tests for NWPulse (src/obs/pulse.h): snapshot capture fidelity, the
// delta engine's interval semantics — interval percentiles from
// bucket-subtracted histograms pinned against a sorted-vector oracle —
// the snapshot-under-write threading witness (run under TSan by CI: 8
// shard writers hammer their sinks while a sampler takes deltas, and the
// interval deltas must sum exactly to the final joined totals), the
// JSONL/watch renderers' NaN hygiene, the background sampler lifecycle,
// and the Prometheus exposition's shape.
#include "obs/pulse.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <limits>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "obs/prof.h"
#include "obs/stats.h"
#include "opt/pipeline.h"
#include "query/engine.h"
#include "query/nwquery.h"
#include "serve/frozen_bank.h"
#include "serve/sharded.h"
#include "support/rng.h"
#include "xml/xml.h"

namespace nw {
namespace {

// ---------------------------------------------------------------------------
// Snapshot capture
// ---------------------------------------------------------------------------

TEST(SinkSnapshot, CaptureMirrorsTheLiveSink) {
  StatsSink sink;
  sink.engine_docs.Inc(7);
  sink.engine_positions.Add(1234);
  sink.stream_depth_hwm.SetMax(9);
  sink.doc_latency_us.Record(100);
  sink.doc_latency_us.Record(5000);
  SinkSnapshot snap = SinkSnapshot::Capture(sink);
  EXPECT_EQ(snap.counter("engine_docs"), 7u);
  EXPECT_EQ(snap.counter("engine_positions"), 1234u);
  EXPECT_EQ(snap.counter("frozen_hits"), 0u);
  EXPECT_EQ(snap.gauge("stream_depth_hwm"), 9u);
  const HistogramSnapshot& h = snap.histogram("doc_latency_us");
  EXPECT_EQ(h.count, 2u);
  EXPECT_EQ(h.sum, 5100u);
  EXPECT_EQ(h.max, 5000u);
  EXPECT_EQ(h.Percentile(0.5), sink.doc_latency_us.Percentile(0.5));
  EXPECT_EQ(h.Percentile(0.99), sink.doc_latency_us.Percentile(0.99));
  // The capture is a copy: later writes must not show in it.
  sink.engine_docs.Inc();
  EXPECT_EQ(snap.counter("engine_docs"), 7u);
}

TEST(SinkSnapshot, SchemaCoversEveryField) {
  // The schema tables drive capture, merge, and both wire renderings; a
  // field added to StatsSink without a schema row would silently vanish
  // from all of them. sizeof is the tripwire: it moves when a field is
  // added, and this count must move with it.
  size_t covered = SinkCounterFields().size() * sizeof(Counter) +
                   SinkGaugeFields().size() * sizeof(Gauge) +
                   SinkHistogramFields().size() * sizeof(Histogram);
  EXPECT_EQ(covered, sizeof(StatsSink))
      << "StatsSink has fields the schema tables do not cover";
}

TEST(StatsSnapshot, CaptureSeesAllSinksAndQueries) {
  StatsRegistry registry;
  StatsSink a, b;
  registry.Register("main", &a);
  registry.Register("shard/0", &b);
  QueryAttribution attr(2);
  attr.query(0).match_docs.Inc(3);
  attr.query(1).states_final.Set(11);
  attr.docs.Inc(4);
  registry.RegisterAttribution(&attr);
  a.engine_docs.Inc(4);
  b.shard_docs.Inc(2);
  StatsSnapshot snap = CaptureSnapshot(registry);
  ASSERT_EQ(snap.labels.size(), 2u);
  EXPECT_EQ(snap.labels[0], "main");
  EXPECT_EQ(snap.labels[1], "shard/0");
  EXPECT_EQ(snap.sinks[0].counter("engine_docs"), 4u);
  EXPECT_EQ(snap.sinks[1].counter("shard_docs"), 2u);
  EXPECT_EQ(snap.Aggregate().counter("engine_docs"), 4u);
  ASSERT_EQ(snap.queries.size(), 2u);
  EXPECT_EQ(snap.queries[0].match_docs, 3u);
  EXPECT_EQ(snap.queries[1].states_final, 11u);
  EXPECT_EQ(snap.attr_docs, 4u);
}

// ---------------------------------------------------------------------------
// Delta semantics
// ---------------------------------------------------------------------------

TEST(SnapshotDelta, CountersSubtractGaugesCarry) {
  StatsRegistry registry;
  StatsSink sink;
  registry.Register("main", &sink);
  sink.engine_docs.Inc(10);
  sink.stream_depth_hwm.SetMax(5);
  StatsSnapshot first = CaptureSnapshot(registry);
  sink.engine_docs.Inc(3);
  sink.stream_depth_hwm.SetMax(8);
  StatsSnapshot second = CaptureSnapshot(registry);
  StatsSnapshot delta = SnapshotDelta(first, second);
  EXPECT_EQ(delta.sinks[0].counter("engine_docs"), 3u);
  // Gauges are not interval-decomposable; the delta carries the current.
  EXPECT_EQ(delta.sinks[0].gauge("stream_depth_hwm"), 8u);
  EXPECT_GE(second.t_us, first.t_us);
  EXPECT_EQ(delta.t_us, second.t_us - first.t_us);
}

TEST(SnapshotDelta, SinkRegisteredBetweenCapturesDeltasAgainstZero) {
  StatsRegistry registry;
  StatsSink a;
  registry.Register("main", &a);
  StatsSnapshot first = CaptureSnapshot(registry);
  StatsSink late;
  late.shard_docs.Inc(6);
  registry.Register("shard/0", &late);
  StatsSnapshot second = CaptureSnapshot(registry);
  StatsSnapshot delta = SnapshotDelta(first, second);
  ASSERT_EQ(delta.sinks.size(), 2u);
  EXPECT_EQ(delta.sinks[1].counter("shard_docs"), 6u);
}

// The acceptance pin: interval p50/p99 computed from bucket-subtracted
// histograms must equal the oracle percentile over ONLY the samples
// recorded inside the interval (bucket-lower-bound contract, same as
// Histogram::Percentile — the oracle mapping obs_test pins for the
// lifetime histogram).
TEST(SnapshotDelta, IntervalPercentilesMatchSortedVectorOracle) {
  StatsRegistry registry;
  StatsSink sink;
  registry.Register("main", &sink);
  Rng rng(29);
  // Batch A: samples BEFORE the interval — skewed low so a lifetime
  // percentile would visibly disagree with the interval one.
  for (int i = 0; i < 4000; ++i) {
    sink.doc_latency_us.Record(rng.Below(64));
  }
  StatsSnapshot first = CaptureSnapshot(registry);
  // Batch B: the interval's samples, log-uniform across octaves.
  std::vector<uint64_t> interval_samples;
  for (int i = 0; i < 3000; ++i) {
    uint64_t v = rng.Below(uint64_t{1} << (1 + rng.Below(30)));
    interval_samples.push_back(v);
    sink.doc_latency_us.Record(v);
  }
  StatsSnapshot second = CaptureSnapshot(registry);
  StatsSnapshot delta = SnapshotDelta(first, second);
  const HistogramSnapshot& d = delta.sinks[0].histogram("doc_latency_us");
  ASSERT_EQ(d.count, interval_samples.size());
  std::sort(interval_samples.begin(), interval_samples.end());
  uint64_t sum = 0;
  for (uint64_t v : interval_samples) sum += v;
  EXPECT_EQ(d.sum, sum);
  for (double q : {0.0, 0.01, 0.25, 0.50, 0.90, 0.99, 0.999, 1.0}) {
    size_t rank = static_cast<size_t>(
        q * static_cast<double>(interval_samples.size()));
    if (static_cast<double>(rank) <
        q * static_cast<double>(interval_samples.size())) {
      ++rank;
    }
    if (rank == 0) rank = 1;
    uint64_t oracle = interval_samples[rank - 1];
    EXPECT_EQ(d.Percentile(q),
              Histogram::BucketLowerBound(Histogram::BucketIndex(oracle)))
        << "q=" << q;
  }
  // And the lifetime percentile really is a different number here (the
  // interval view is not a relabeled cumulative view).
  EXPECT_NE(second.sinks[0].histogram("doc_latency_us").Percentile(0.5),
            d.Percentile(0.5));
}

// ---------------------------------------------------------------------------
// Snapshot-under-write witness (TSan) + exact delta accounting
// ---------------------------------------------------------------------------

TEST(SnapshotDelta, ConcurrentWritersDeltasSumToJoinedTotals) {
  constexpr size_t kShards = 8;
  constexpr uint64_t kDocsPerShard = 20000;
  StatsRegistry registry;
  std::vector<std::unique_ptr<StatsSink>> sinks;
  for (size_t s = 0; s < kShards; ++s) {
    sinks.push_back(std::make_unique<StatsSink>());
    registry.Register("shard/" + std::to_string(s), sinks.back().get());
  }
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (size_t s = 0; s < kShards; ++s) {
    writers.emplace_back([&, s] {
      Rng rng(100 + s);
      for (uint64_t i = 0; i < kDocsPerShard; ++i) {
        sinks[s]->shard_docs.Inc();
        sinks[s]->shard_bytes.Add(17 + (i % 31));
        sinks[s]->doc_latency_us.Record(rng.Below(1u << 12));
      }
    });
  }
  // The sampler side: capture → delta → accumulate, concurrently with
  // the writers (this is the TSan witness — relaxed-atomic cells must
  // make the scrape race-free). Each delta must be internally sane.
  StatsSnapshot prev = CaptureSnapshot(registry);
  const StatsSnapshot baseline = prev;
  uint64_t acc_docs = 0, acc_bytes = 0, acc_lat = 0;
  for (int tick = 0; tick < 50; ++tick) {
    StatsSnapshot cur = CaptureSnapshot(registry);
    StatsSnapshot delta = SnapshotDelta(prev, cur);
    SinkSnapshot d = delta.Aggregate();
    acc_docs += d.counter("shard_docs");
    acc_bytes += d.counter("shard_bytes");
    acc_lat += d.histogram("doc_latency_us").count;
    // A mid-run capture may be torn ACROSS fields, never within one:
    // deltas of monotone counters are non-negative by construction, and
    // rendering any tick must stay valid JSON.
    std::string line = RenderPulseRecord(cur, delta, tick, nullptr);
    EXPECT_EQ(line.find("nan"), std::string::npos);
    EXPECT_EQ(line.find("inf"), std::string::npos);
    prev = std::move(cur);
  }
  for (std::thread& t : writers) t.join();
  // Final delta after the join picks up the tail; then the accumulated
  // interval deltas must equal the joined totals EXACTLY.
  StatsSnapshot last = CaptureSnapshot(registry);
  SinkSnapshot d = SnapshotDelta(prev, last).Aggregate();
  acc_docs += d.counter("shard_docs");
  acc_bytes += d.counter("shard_bytes");
  acc_lat += d.histogram("doc_latency_us").count;
  SinkSnapshot base = baseline.Aggregate();
  SinkSnapshot total = last.Aggregate();
  EXPECT_EQ(base.counter("shard_docs") + acc_docs,
            total.counter("shard_docs"));
  EXPECT_EQ(total.counter("shard_docs"), kShards * kDocsPerShard);
  EXPECT_EQ(base.counter("shard_bytes") + acc_bytes,
            total.counter("shard_bytes"));
  EXPECT_EQ(base.histogram("doc_latency_us").count + acc_lat,
            total.histogram("doc_latency_us").count);
}

// ---------------------------------------------------------------------------
// Renderers
// ---------------------------------------------------------------------------

TEST(RenderPulse, AllZeroSinkRendersNullRatesNotNaN) {
  // Satellite regression: every ratio on a zero interval (0/0 → NaN,
  // x/0 → Inf) must render as JSON null, never as a bare nan/inf token.
  StatsRegistry registry;
  StatsSink sink;
  registry.Register("main", &sink);
  StatsSnapshot snap = CaptureSnapshot(registry);
  StatsSnapshot zero_delta = SnapshotDelta(snap, snap);
  ASSERT_EQ(zero_delta.t_us, 0u);
  std::string line = RenderPulseRecord(snap, zero_delta, 0, nullptr);
  EXPECT_EQ(line.find("nan"), std::string::npos) << line;
  EXPECT_EQ(line.find("inf"), std::string::npos) << line;
  EXPECT_NE(line.find("\"docs_per_s\":null"), std::string::npos) << line;
  EXPECT_NE(line.find("\"frozen_hit_rate\":null"), std::string::npos);
  EXPECT_NE(line.find("\"utilization\":null"), std::string::npos);
  EXPECT_NE(line.find("\"type\":\"pulse\""), std::string::npos);
}

TEST(RenderPulse, StartRecordCarriesBaselineTotals) {
  StatsRegistry registry;
  StatsSink sink;
  sink.engine_docs.Inc(5);
  registry.Register("main", &sink);
  std::string head = RenderPulseStart(CaptureSnapshot(registry), 250);
  EXPECT_NE(head.find("\"type\":\"pulse_start\""), std::string::npos);
  EXPECT_NE(head.find("\"version\":1"), std::string::npos);
  EXPECT_NE(head.find("\"interval_ms\":250"), std::string::npos);
  EXPECT_NE(head.find("\"labels\":[\"main\"]"), std::string::npos);
  EXPECT_NE(head.find("\"engine_docs\":5"), std::string::npos);
}

TEST(RenderPulse, WatchFrameShowsProgressAndShards) {
  StatsRegistry registry;
  StatsSink main_sink, shard;
  registry.Register("main", &main_sink);
  registry.Register("shard/0", &shard);
  StatsSnapshot before = CaptureSnapshot(registry);
  shard.shard_docs.Inc(3);
  shard.shard_positions.Add(400);
  StatsSnapshot after = CaptureSnapshot(registry);
  PulseProgress progress;
  progress.Reset(10);
  progress.docs_done.fetch_add(3);
  std::string frame =
      RenderWatchFrame(after, SnapshotDelta(before, after), &progress);
  EXPECT_NE(frame.find("NWPulse"), std::string::npos);
  EXPECT_NE(frame.find("run 3/10"), std::string::npos);
  EXPECT_NE(frame.find("shard/0"), std::string::npos);
  // The attribution-free "main" sink has no shard row.
  EXPECT_EQ(frame.find("main"), std::string::npos) << frame;
}

TEST(AppendJsonDouble, NonFiniteBecomesNull) {
  std::string out;
  AppendJsonDouble(&out, 0.5);
  out.push_back(' ');
  AppendJsonDouble(&out, std::numeric_limits<double>::quiet_NaN());
  out.push_back(' ');
  AppendJsonDouble(&out, std::numeric_limits<double>::infinity());
  out.push_back(' ');
  AppendJsonDouble(&out, -std::numeric_limits<double>::infinity());
  EXPECT_EQ(out, "0.5000 null null null");
}

TEST(ProcessSample, ReportsPlausibleMachineContext) {
  ProcessSample a = SampleProcess();
#if defined(__unix__) || defined(__APPLE__)
  EXPECT_GT(a.rss_peak_kb, 0u);  // a running test binary is resident
#endif
  // Burn a little CPU so the clocks visibly advance between samples.
  volatile uint64_t x = 0;
  for (uint64_t i = 0; i < 20000000; ++i) x += i;
  ProcessSample b = SampleProcess();
  EXPECT_GE(b.wall_us, a.wall_us);
  EXPECT_GE(b.cpu_user_us + b.cpu_sys_us, a.cpu_user_us + a.cpu_sys_us);
  EXPECT_GE(b.rss_peak_kb, a.rss_peak_kb);
  std::string fields = b.ToJsonFields();
  EXPECT_NE(fields.find("\"rss_peak_kb\":"), std::string::npos);
  EXPECT_NE(fields.find("\"wall_us\":"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Sampler lifecycle
// ---------------------------------------------------------------------------

TEST(PulseSampler, WritesHeaderThenTicksAndFinalTickIsExact) {
  StatsRegistry registry;
  StatsSink sink;
  registry.Register("main", &sink);
  std::FILE* f = std::tmpfile();
  ASSERT_NE(f, nullptr);
  PulseSampler::Options opts;
  opts.interval_ms = 5;
  opts.jsonl = f;
  {
    PulseSampler sampler(&registry, opts);
    sampler.Start();
    for (int i = 0; i < 4000; ++i) {
      sink.engine_docs.Inc();
      sink.doc_latency_us.Record(i % 97);
      if (i % 1000 == 0) {
        std::this_thread::sleep_for(std::chrono::milliseconds(4));
      }
    }
    sampler.Stop();
    EXPECT_GE(sampler.ticks(), 1u);
    sampler.Stop();  // idempotent
  }
  std::rewind(f);
  std::string content;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    content.append(buf, n);
  }
  std::fclose(f);
  ASSERT_FALSE(content.empty());
  // One JSON object per line: header first, then pulses; the last tick
  // (taken inside Stop, after the writer is done) must carry the exact
  // end-of-run total.
  std::vector<std::string> lines;
  size_t start = 0;
  while (start < content.size()) {
    size_t nl = content.find('\n', start);
    if (nl == std::string::npos) break;
    lines.push_back(content.substr(start, nl - start));
    start = nl + 1;
  }
  ASSERT_GE(lines.size(), 2u);
  EXPECT_EQ(lines[0].find("{\"type\":\"pulse_start\""), 0u);
  for (size_t i = 1; i < lines.size(); ++i) {
    EXPECT_EQ(lines[i].find("{\"type\":\"pulse\""), 0u) << lines[i];
    EXPECT_EQ(lines[i].back(), '}');
    EXPECT_EQ(lines[i].find("nan"), std::string::npos);
  }
  EXPECT_NE(lines.back().find("\"engine_docs\":4000"), std::string::npos)
      << "final tick must see the joined total: " << lines.back();
}

TEST(PulseSampler, WatchModeRewritesFrames) {
  StatsRegistry registry;
  StatsSink sink;
  registry.Register("main", &sink);
  std::FILE* f = std::tmpfile();
  ASSERT_NE(f, nullptr);
  PulseSampler::Options opts;
  opts.interval_ms = 2;
  opts.watch = true;
  opts.watch_out = f;  // not a tty: frames append, no ANSI rewind
  {
    PulseSampler sampler(&registry, opts);
    sampler.Start();
    sink.engine_docs.Inc(12);
    std::this_thread::sleep_for(std::chrono::milliseconds(8));
    sampler.Stop();
  }
  std::rewind(f);
  char buf[4096];
  size_t n = std::fread(buf, 1, sizeof(buf) - 1, f);
  std::fclose(f);
  std::string content(buf, n);
  EXPECT_NE(content.find("NWPulse"), std::string::npos);
  EXPECT_NE(content.find("docs=12"), std::string::npos);
  EXPECT_EQ(content.find("\x1b["), std::string::npos);  // no ANSI off-tty
}

// ---------------------------------------------------------------------------
// Live progress through the serving layer
// ---------------------------------------------------------------------------

TEST(PulseProgress, ShardedEvaluatorPublishesCompletion) {
  Alphabet alphabet;
  std::vector<Query> queries;
  for (const char* text : {"/a", "//b"}) {
    queries.push_back(ParseQuery(text, &alphabet).Take());
  }
  alphabet.Intern("#text");
  Symbol other = alphabet.Intern("%other");
  OptimizedBank bank =
      OptimizeBank(queries, alphabet.size(), OptOptions::All());
  bank.shared->ExploreAll(1u << 16, nullptr);
  FrozenBank frozen = FrozenBank::Freeze(*bank.shared);
  ShardedEvaluator evaluator(&frozen, alphabet.size(), other, 2);
  std::vector<std::string> corpus;
  size_t total_bytes = 0;
  Alphabet gen;
  gen.Intern("a");
  gen.Intern("b");
  Rng rng(5);
  for (int i = 0; i < 12; ++i) {
    corpus.push_back(RandomXmlDocument(&rng, gen, 200, 6));
    total_bytes += corpus.back().size();
  }
  EXPECT_FALSE(evaluator.progress().active.load());
  evaluator.EvaluateCorpus(corpus, alphabet, false);
  const PulseProgress& p = evaluator.progress();
  EXPECT_FALSE(p.active.load());
  EXPECT_EQ(p.total_docs.load(), corpus.size());
  EXPECT_EQ(p.docs_done.load(), corpus.size());
  EXPECT_EQ(p.bytes_done.load(), total_bytes);
  EXPECT_GE(p.cursor.load(), corpus.size());
}

// ---------------------------------------------------------------------------
// Prometheus exposition
// ---------------------------------------------------------------------------

TEST(RenderProm, ExposesSchemaFamiliesWithSinkLabels) {
  StatsRegistry registry;
  StatsSink main_sink, shard;
  registry.Register("main", &main_sink);
  registry.Register("shard/0", &shard);
  registry.SetMeta("mode", "frozen");
  registry.SetMeta("opt", "all");
  registry.SetMetaNum("threads", 2);
  main_sink.engine_docs.Inc(3);
  shard.shard_docs.Inc(2);
  shard.doc_latency_us.Record(100);
  shard.doc_latency_us.Record(90);
  shard.doc_latency_us.Record(250);
  QueryAttribution attr(1);
  attr.query(0).match_docs.Inc(2);
  attr.query(0).states_final.Set(4);
  registry.RegisterAttribution(&attr);
  std::string prom = registry.RenderProm();
  EXPECT_NE(prom.find("# HELP nw_engine_docs_total "), std::string::npos);
  EXPECT_NE(prom.find("# TYPE nw_engine_docs_total counter"),
            std::string::npos);
  EXPECT_NE(prom.find("nw_engine_docs_total{sink=\"main\"} 3"),
            std::string::npos);
  EXPECT_NE(prom.find("nw_shard_docs_total{sink=\"shard/0\"} 2"),
            std::string::npos);
  EXPECT_NE(prom.find("# TYPE nw_doc_latency_us histogram"),
            std::string::npos);
  // Cumulative buckets: all three samples are <= the +Inf bound, and
  // _count equals the +Inf bucket.
  EXPECT_NE(
      prom.find("nw_doc_latency_us_bucket{sink=\"shard/0\",le=\"+Inf\"} 3"),
      std::string::npos);
  EXPECT_NE(prom.find("nw_doc_latency_us_count{sink=\"shard/0\"} 3"),
            std::string::npos);
  EXPECT_NE(prom.find("nw_doc_latency_us_sum{sink=\"shard/0\"} 440"),
            std::string::npos);
  EXPECT_NE(prom.find("nw_query_match_docs_total{query=\"0\"} 2"),
            std::string::npos);
  EXPECT_NE(prom.find("nw_query_states_final{query=\"0\"} 4"),
            std::string::npos);
  EXPECT_NE(prom.find("nw_info{mode=\"frozen\",opt=\"all\"} 1"),
            std::string::npos);
  EXPECT_NE(prom.find("nw_meta{key=\"threads\"} 2"), std::string::npos);
  EXPECT_NE(prom.find("# TYPE nw_process_peak_rss_bytes gauge"),
            std::string::npos);
  EXPECT_EQ(prom.find("nan"), std::string::npos);
}

TEST(RenderProm, BucketBoundariesAreMonotoneCumulative) {
  StatsRegistry registry;
  StatsSink sink;
  registry.Register("main", &sink);
  Rng rng(41);
  for (int i = 0; i < 2000; ++i) {
    sink.doc_latency_us.Record(rng.Below(uint64_t{1} << (1 + rng.Below(20))));
  }
  std::string prom = registry.RenderProm();
  // Walk the doc_latency_us bucket lines: le strictly increases, counts
  // never decrease, and the +Inf bucket equals _count.
  uint64_t prev_le = 0, prev_cum = 0, inf_cum = 0;
  bool saw_bucket = false;
  size_t pos = 0;
  const std::string needle = "nw_doc_latency_us_bucket{sink=\"main\",le=\"";
  while ((pos = prom.find(needle, pos)) != std::string::npos) {
    size_t vstart = pos + needle.size();
    size_t vend = prom.find('"', vstart);
    std::string le = prom.substr(vstart, vend - vstart);
    uint64_t cum = std::stoull(prom.substr(prom.find('}', vend) + 2));
    if (le == "+Inf") {
      inf_cum = cum;
    } else {
      uint64_t le_v = std::stoull(le);
      if (saw_bucket) {
        EXPECT_GT(le_v, prev_le);
        EXPECT_GE(cum, prev_cum);
      }
      prev_le = le_v;
      prev_cum = cum;
      saw_bucket = true;
    }
    pos = vend;
  }
  ASSERT_TRUE(saw_bucket);
  EXPECT_GE(inf_cum, prev_cum);
  EXPECT_EQ(inf_cum, 2000u);
}

TEST(RenderProm, LabelValuesAreEscaped) {
  StatsRegistry registry;
  StatsSink sink;
  registry.Register("main", &sink);
  registry.SetMeta("mode", "a\"b\\c\nd");
  std::string prom = registry.RenderProm();
  EXPECT_NE(prom.find("nw_info{mode=\"a\\\"b\\\\c\\nd\"} 1"),
            std::string::npos);
}

}  // namespace
}  // namespace nw
