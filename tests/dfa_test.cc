// Tests for the DFA substrate: run semantics, totalization, Hopcroft
// minimization, emptiness, and equivalence.
#include "wordauto/dfa.h"

#include <gtest/gtest.h>

#include "support/rng.h"

namespace nw {
namespace {

// DFA over {0,1} accepting words with an even number of 1s.
Dfa EvenOnes() {
  Dfa d(2);
  StateId even = d.AddState(true);
  StateId odd = d.AddState(false);
  d.set_initial(even);
  d.SetTransition(even, 0, even);
  d.SetTransition(even, 1, odd);
  d.SetTransition(odd, 0, odd);
  d.SetTransition(odd, 1, even);
  return d;
}

TEST(Dfa, RunSemantics) {
  Dfa d = EvenOnes();
  EXPECT_TRUE(d.Accepts({}));
  EXPECT_TRUE(d.Accepts({1, 1}));
  EXPECT_FALSE(d.Accepts({1, 0, 0}));
  EXPECT_TRUE(d.Accepts({0, 1, 0, 1}));
}

TEST(Dfa, PartialRejectsOnMissingTransition) {
  Dfa d(2);
  StateId q0 = d.AddState(false);
  StateId q1 = d.AddState(true);
  d.set_initial(q0);
  d.SetTransition(q0, 0, q1);
  EXPECT_TRUE(d.Accepts({0}));
  EXPECT_FALSE(d.Accepts({1}));
  EXPECT_FALSE(d.Accepts({0, 0}));
}

TEST(Dfa, TotalizeAddsDeadState) {
  Dfa d(2);
  StateId q0 = d.AddState(true);
  d.set_initial(q0);
  d.SetTransition(q0, 0, q0);
  Dfa t = d.Totalize();
  EXPECT_EQ(t.num_states(), 2u);
  for (StateId q = 0; q < t.num_states(); ++q) {
    for (Symbol a = 0; a < 2; ++a) EXPECT_NE(t.Next(q, a), kNoState);
  }
  EXPECT_TRUE(Dfa::Equivalent(d, t));
}

TEST(Dfa, MinimizeCollapsesEquivalentStates) {
  // Build even-ones with redundant duplicated states.
  Dfa d(2);
  StateId e1 = d.AddState(true);
  StateId e2 = d.AddState(true);
  StateId o1 = d.AddState(false);
  StateId o2 = d.AddState(false);
  d.set_initial(e1);
  d.SetTransition(e1, 0, e2);
  d.SetTransition(e1, 1, o1);
  d.SetTransition(e2, 0, e1);
  d.SetTransition(e2, 1, o2);
  d.SetTransition(o1, 0, o2);
  d.SetTransition(o1, 1, e1);
  d.SetTransition(o2, 0, o1);
  d.SetTransition(o2, 1, e2);
  Dfa m = d.Minimize();
  EXPECT_EQ(m.num_states(), 2u);
  EXPECT_TRUE(Dfa::Equivalent(m, EvenOnes()));
}

TEST(Dfa, MinimizeDropsUnreachable) {
  Dfa d = EvenOnes();
  StateId junk = d.AddState(true);
  d.SetTransition(junk, 0, junk);
  d.SetTransition(junk, 1, junk);
  Dfa m = d.Minimize();
  EXPECT_EQ(m.num_states(), 2u);
}

TEST(Dfa, MinimizeEmptyLanguageIsOneState) {
  Dfa d(2);
  StateId q0 = d.AddState(false);
  StateId q1 = d.AddState(false);
  d.set_initial(q0);
  d.SetTransition(q0, 0, q1);
  Dfa m = d.Minimize();
  EXPECT_EQ(m.num_states(), 1u);
  EXPECT_TRUE(m.IsEmpty());
}

TEST(Dfa, MinimalSizeOfLastSymbolLanguage) {
  // The classic 2^s witness: words over {0,1} whose (s+1)-th symbol from
  // the end is 1 need 2^s DFA states. Build the naive (s+1)-window DFA and
  // check Minimize reports exactly 2^{s+1} - ... — here we verify the
  // known minimal count 2^{s+1} for the "remember last s+1 bits" automaton
  // restricted to the language's Myhill–Nerode classes: 2^{s+1}... For the
  // canonical statement we check s = 3: minimal DFA has 2^4 = 16 states.
  const int s = 3;
  const int window = s + 1;
  // States: all bit-windows of length `window` (plus shorter prefixes
  // encoded by padding with 0s — prefix shorter than window cannot accept).
  Dfa d(2);
  const StateId n = 1u << window;
  for (StateId q = 0; q < n; ++q) {
    d.AddState((q >> s) & 1);  // oldest bit in window == 1 → accept
  }
  d.set_initial(0);
  for (StateId q = 0; q < n; ++q) {
    for (Symbol a = 0; a < 2; ++a) {
      d.SetTransition(q, a, ((q << 1) | a) & (n - 1));
    }
  }
  Dfa m = d.Minimize();
  EXPECT_EQ(m.num_states(), n);
}

TEST(Dfa, EquivalenceDistinguishes) {
  Dfa even = EvenOnes();
  Dfa odd = EvenOnes();
  odd.set_final(0, false);
  odd.set_final(1, true);
  EXPECT_FALSE(Dfa::Equivalent(even, odd));
  EXPECT_TRUE(Dfa::Equivalent(even, even.Minimize()));
}

TEST(Dfa, IsEmpty) {
  Dfa d(1);
  StateId q0 = d.AddState(false);
  StateId q1 = d.AddState(true);
  d.set_initial(q0);
  EXPECT_TRUE(d.IsEmpty());
  d.SetTransition(q0, 0, q1);
  EXPECT_FALSE(d.IsEmpty());
}

TEST(Dfa, RandomMinimizePreservesLanguage) {
  Rng rng(11);
  for (int iter = 0; iter < 30; ++iter) {
    Dfa d(2);
    const int n = 8;
    for (int i = 0; i < n; ++i) d.AddState(rng.Chance(1, 3));
    d.set_initial(0);
    for (StateId q = 0; q < n; ++q) {
      for (Symbol a = 0; a < 2; ++a) {
        d.SetTransition(q, a, static_cast<StateId>(rng.Below(n)));
      }
    }
    Dfa m = d.Minimize();
    EXPECT_LE(m.num_states(), d.num_states() + 1);  // +1: dead state
    EXPECT_TRUE(Dfa::Equivalent(d, m));
    // Minimizing twice is idempotent in size.
    EXPECT_EQ(m.Minimize().num_states(), m.num_states());
  }
}

}  // namespace
}  // namespace nw
