// Tests for the pushdown word automaton substrate (Lemma 4 baseline).
#include "pda/pda.h"

#include <gtest/gtest.h>

#include "nw/generate.h"
#include "support/rng.h"

namespace nw {
namespace {

TEST(Pda, ZeroesOnes) {
  // The counter language 0^n 1^n (n ≥ 1).
  Pda p(2, 2);
  StateId push_phase = p.AddState();
  StateId pushed = p.AddState();
  StateId pop_phase = p.AddState();
  StateId popped = p.AddState();
  StateId accept = p.AddState();
  p.AddInitial(push_phase);
  p.AddInput(push_phase, 0, pushed);
  p.AddPush(pushed, push_phase, 1);
  p.AddInput(push_phase, 1, popped);
  p.AddInput(pop_phase, 1, popped);
  p.AddPop(popped, 1, pop_phase);
  p.AddPop(pop_phase, 0, accept);

  auto member = [](const std::vector<Symbol>& w) {
    if (w.empty() || w.size() % 2 != 0) return false;
    size_t n = w.size() / 2;
    for (size_t i = 0; i < n; ++i) {
      if (w[i] != 0 || w[n + i] != 1) return false;
    }
    return true;
  };
  // Exhaustive up to length 8.
  for (size_t len = 0; len <= 8; ++len) {
    for (uint64_t bits = 0; bits < (1ull << len); ++bits) {
      std::vector<Symbol> w(len);
      for (size_t i = 0; i < len; ++i) w[i] = (bits >> i) & 1;
      ASSERT_EQ(p.Accepts(w), member(w)) << "len " << len << " bits " << bits;
    }
  }
  EXPECT_FALSE(p.IsEmpty());
}

TEST(Pda, EmptinessSaturation) {
  Pda dead(1, 2);
  StateId q = dead.AddState();
  dead.AddInitial(q);
  dead.AddInput(q, 0, q);
  EXPECT_TRUE(dead.IsEmpty());  // ⊥ never popped
  Pda live = dead;
  StateId f = live.AddState();
  live.AddPop(q, 0, f);
  EXPECT_FALSE(live.IsEmpty());
}

bool BalancedAB(const NestedWord& n) {
  int64_t diff = 0;
  for (size_t i = 0; i < n.size(); ++i) diff += n.symbol(i) == 0 ? 1 : -1;
  return diff == 0;
}

TEST(Pda, EqualAsAndBsMatchesOracle) {
  Pda p = Pda::EqualAsAndBs();
  Rng rng(1);
  for (size_t len = 0; len <= 4; ++len) {
    for (const NestedWord& w : EnumerateNestedWords(2, len)) {
      ASSERT_EQ(p.AcceptsTagged(w), BalancedAB(w)) << "len " << len;
    }
  }
  for (int iter = 0; iter < 100; ++iter) {
    NestedWord w = RandomNestedWord(&rng, 2, 5 + rng.Below(14));
    ASSERT_EQ(p.AcceptsTagged(w), BalancedAB(w)) << iter;
  }
}

TEST(Pda, EqualAsAndBsIgnoresNesting) {
  // The language depends only on labels, not on the matching relation —
  // the "context-free word language" side of Theorem 9.
  Pda p = Pda::EqualAsAndBs();
  NestedWord flat({Internal(0), Internal(1)});
  NestedWord nested({Call(0), Return(1)});
  NestedWord pending({Call(0), Call(1)});
  EXPECT_TRUE(p.AcceptsTagged(flat));
  EXPECT_TRUE(p.AcceptsTagged(nested));
  EXPECT_TRUE(p.AcceptsTagged(pending));
}

}  // namespace
}  // namespace nw
