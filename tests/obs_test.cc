// Tests for the NWStats observability layer (src/obs): histogram math
// against a sorted-vector oracle, per-shard sink merging, the
// single-writer/concurrent-reader threading contract (run under TSan by
// CI), the registry's stable JSON rendering, and the end-to-end
// differential guarantee — attaching sinks must not change any query
// result while the counters must match independently computed oracles.
#include "obs/stats.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "obs/prof.h"
#include "obs/trace.h"
#include "query/engine.h"
#include "serve/sharded.h"
#include "support/rng.h"
#include "xml/xml.h"

namespace nw {
namespace {

// ---------------------------------------------------------------------------
// Histogram math
// ---------------------------------------------------------------------------

TEST(Histogram, BucketBoundaries) {
  // Values below kSub get exact unit buckets.
  for (uint64_t v = 0; v < Histogram::kSub; ++v) {
    EXPECT_EQ(Histogram::BucketIndex(v), v);
    EXPECT_EQ(Histogram::BucketLowerBound(static_cast<uint32_t>(v)), v);
  }
  // BucketLowerBound is the left inverse of BucketIndex on lower bounds.
  for (uint32_t i = 0; i < Histogram::kBuckets; ++i) {
    uint64_t lb = Histogram::BucketLowerBound(i);
    EXPECT_EQ(Histogram::BucketIndex(lb), i) << "bucket " << i;
  }
  // Powers of two start fresh octaves; one-below stays in the previous.
  EXPECT_EQ(Histogram::BucketIndex(16), Histogram::kSub);
  EXPECT_EQ(Histogram::BucketIndex(15), 15u);
  EXPECT_LT(Histogram::BucketIndex(31), Histogram::BucketIndex(32));
}

TEST(Histogram, BucketIndexIsMonotoneWithBoundedError) {
  Rng rng(3);
  uint64_t prev = 0;
  for (int i = 0; i < 20000; ++i) {
    // Log-uniform samples cover every octave a latency could land in.
    uint64_t v = rng.Below(uint64_t{1} << (1 + rng.Below(50)));
    uint32_t b = Histogram::BucketIndex(v);
    uint64_t lb = Histogram::BucketLowerBound(b);
    EXPECT_LE(lb, v);
    // Fixed relative error: the bucket's lower bound is within 1/kSub.
    EXPECT_LE(v - lb, lb / Histogram::kSub);
    if (v >= prev) {
      EXPECT_GE(b, Histogram::BucketIndex(prev));
    }
    prev = v;
  }
}

TEST(Histogram, PercentileMatchesSortedVectorOracle) {
  Histogram h;
  std::vector<uint64_t> samples;
  Rng rng(17);
  for (int i = 0; i < 5000; ++i) {
    uint64_t v = rng.Below(uint64_t{1} << (1 + rng.Below(30)));
    samples.push_back(v);
    h.Record(v);
  }
  std::sort(samples.begin(), samples.end());
  EXPECT_EQ(h.count(), samples.size());
  EXPECT_EQ(h.max(), samples.back());
  for (double q : {0.0, 0.01, 0.25, 0.50, 0.90, 0.99, 0.999, 1.0}) {
    // The oracle value at rank ceil(q*n); Percentile reports its bucket's
    // lower bound, which is the histogram's stated contract.
    size_t rank = static_cast<size_t>(q * static_cast<double>(samples.size()));
    if (static_cast<double>(rank) < q * static_cast<double>(samples.size())) {
      ++rank;
    }
    if (rank == 0) rank = 1;
    uint64_t oracle = samples[rank - 1];
    EXPECT_EQ(h.Percentile(q),
              Histogram::BucketLowerBound(Histogram::BucketIndex(oracle)))
        << "q=" << q;
  }
}

TEST(Histogram, EmptyHistogramReportsZeros) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.Percentile(0.5), 0u);
}

TEST(Histogram, MergeOfPerShardInstancesEqualsUnion) {
  Histogram shard_a, shard_b, merged, oracle;
  Rng rng(29);
  for (int i = 0; i < 3000; ++i) {
    uint64_t v = rng.Below(100000);
    (i % 2 == 0 ? shard_a : shard_b).Record(v);
    oracle.Record(v);
  }
  merged.MergeFrom(shard_a);
  merged.MergeFrom(shard_b);
  EXPECT_EQ(merged.count(), oracle.count());
  EXPECT_EQ(merged.sum(), oracle.sum());
  EXPECT_EQ(merged.max(), oracle.max());
  for (double q : {0.1, 0.5, 0.9, 0.99}) {
    EXPECT_EQ(merged.Percentile(q), oracle.Percentile(q)) << "q=" << q;
  }
}

TEST(Metrics, CounterAndGaugeMerge) {
  Counter a, b;
  a.Inc();
  a.Add(41);
  b.Add(8);
  a.MergeFrom(b);
  EXPECT_EQ(a.value(), 50u);
  Gauge g, h;
  g.SetMax(7);
  g.SetMax(3);  // lower: must not regress
  h.Set(9);
  EXPECT_EQ(g.value(), 7u);
  g.MergeMaxFrom(h);
  EXPECT_EQ(g.value(), 9u);
}

// ---------------------------------------------------------------------------
// Threading contract: one writer per sink, readers aggregate concurrently.
// This is the TSan witness for the relaxed load+store increment scheme.
// ---------------------------------------------------------------------------

TEST(StatsSink, ConcurrentShardWritersWithConcurrentReader) {
  constexpr size_t kShards = 4;
  constexpr uint64_t kIncrements = 50000;
  std::vector<StatsSink> sinks(kShards);
  std::atomic<bool> stop{false};
  // A reader scraping mid-run (the daemon pattern): values it sees are
  // snapshots, but it must be data-race-free and never see a value above
  // the true total.
  std::thread reader([&] {
    while (!stop.load(std::memory_order_acquire)) {
      StatsSink agg;
      for (const StatsSink& s : sinks) agg.MergeFrom(s);
      EXPECT_LE(agg.frozen_hits.value(), kShards * kIncrements);
      EXPECT_LE(agg.doc_latency_us.count(), kShards * kIncrements);
    }
  });
  std::vector<std::thread> writers;
  for (size_t w = 0; w < kShards; ++w) {
    writers.emplace_back([&, w] {
      for (uint64_t i = 0; i < kIncrements; ++i) {
        sinks[w].frozen_hits.Inc();
        sinks[w].doc_latency_us.Record(i % 1000);
        sinks[w].stream_depth_hwm.SetMax(i % 64);
      }
    });
  }
  for (std::thread& t : writers) t.join();
  stop.store(true, std::memory_order_release);
  reader.join();
  // After the join the merge is exact.
  StatsSink agg;
  for (const StatsSink& s : sinks) agg.MergeFrom(s);
  EXPECT_EQ(agg.frozen_hits.value(), kShards * kIncrements);
  EXPECT_EQ(agg.doc_latency_us.count(), kShards * kIncrements);
  EXPECT_EQ(agg.stream_depth_hwm.value(), 63u);
}

// ---------------------------------------------------------------------------
// Registry rendering
// ---------------------------------------------------------------------------

TEST(StatsRegistry, JsonHasTheDocumentedShape) {
  StatsSink shard0, shard1;
  shard0.engine_docs.Add(3);
  shard0.doc_latency_us.Record(120);
  shard0.shard_docs.Add(3);
  shard1.engine_docs.Add(2);
  shard1.doc_latency_us.Record(80);
  shard1.shard_docs.Add(2);
  StatsRegistry reg;
  reg.SetMeta("mode", "frozen");
  reg.SetMetaNum("queries", 7);
  reg.Register("shard/0", &shard0);
  reg.Register("shard/1", &shard1);
  std::string json = reg.RenderJson();
  for (const char* key :
       {"\"meta\"", "\"mode\":\"frozen\"", "\"queries\":7", "\"stream\"",
        "\"engine\"", "\"documents\":5", "\"doc_latency_us\"", "\"p50\"",
        "\"p99\"", "\"bank\"", "\"frozen\"", "\"hit_rate\"", "\"serve\"",
        "\"shards\"", "\"label\":\"shard/0\"", "\"label\":\"shard/1\"",
        // NWProf sections are always present, empty when unattached.
        "\"per_query\"", "\"compile\"", "\"total_us\"", "\"phases\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << "missing " << key;
  }
  // Aggregation sums across the registered sinks.
  StatsSink agg;
  reg.Aggregate(&agg);
  EXPECT_EQ(agg.engine_docs.value(), 5u);
  EXPECT_EQ(agg.doc_latency_us.count(), 2u);
}

TEST(StatsRegistry, FrozenHitRateIsNullWithoutTraffic) {
  // A sink with zero frozen steps has no defined hit rate: JSON renders
  // null, text renders n/a. (ServeStats::hit_rate() itself stays 1.0 on
  // empty — serve callers treat "no misses" as perfect — but the report
  // must not present a made-up number.)
  StatsSink idle;
  idle.engine_docs.Add(4);  // traffic elsewhere doesn't create a rate
  StatsRegistry reg;
  reg.Register("main", &idle);
  EXPECT_NE(reg.RenderJson().find("\"hit_rate\":null"), std::string::npos);
  EXPECT_NE(reg.RenderText().find("hit_rate=n/a"), std::string::npos);

  StatsSink busy;
  busy.frozen_hits.Add(3);
  busy.frozen_misses.Add(1);
  StatsRegistry reg2;
  reg2.Register("main", &busy);
  EXPECT_NE(reg2.RenderJson().find("\"hit_rate\":0.7500"),
            std::string::npos);
  EXPECT_EQ(reg2.RenderJson().find("\"hit_rate\":null"), std::string::npos);
  EXPECT_EQ(reg2.RenderText().find("n/a"), std::string::npos);
}

TEST(StatsRegistry, AllZeroSinkRendersFiniteJson) {
  // Satellite regression for the double-rendering audit: a registry over
  // a sink that never saw traffic exercises every ratio key's 0/0 path
  // (utilization, hit_rate, rates) — none may leak a bare nan/inf token;
  // the degenerate ones must render as JSON null.
  StatsSink zero;
  StatsRegistry reg;
  reg.Register("main", &zero);
  std::string json = reg.RenderJson();
  EXPECT_EQ(json.find("nan"), std::string::npos) << json;
  EXPECT_EQ(json.find("inf"), std::string::npos) << json;
  EXPECT_NE(json.find("\"hit_rate\":null"), std::string::npos);
}

TEST(StatsRegistry, JsonStringEscaping) {
  std::string out;
  AppendJsonString(&out, "a\"b\\c\nd\te");
  EXPECT_EQ(out, "\"a\\\"b\\\\c\\nd\\te\"");
}

TEST(StatsRegistry, TextRenderingMentionsEveryLayer) {
  StatsSink sink;
  sink.stream_bytes.Add(10);
  StatsRegistry reg;
  reg.Register("main", &sink);
  std::string text = reg.RenderText();
  for (const char* word : {"stream", "engine", "latency", "bank", "frozen",
                           "main"}) {
    EXPECT_NE(text.find(word), std::string::npos) << "missing " << word;
  }
}

// ---------------------------------------------------------------------------
// End-to-end: instrumented layers vs oracle counts, and the differential
// stats-on/off guarantee.
// ---------------------------------------------------------------------------

TEST(XmlTokenStream, TalliesMatchTheMaterializedWord) {
  Alphabet gen;
  for (const char* n : {"a", "b", "c"}) gen.Intern(n);
  Rng rng(5);
  std::string doc = RandomXmlDocument(&rng, gen, 500, 8);
  // Oracle: the materialized nested word of the same document.
  Alphabet oracle_alpha;
  NestedWord oracle = XmlToNestedWord(doc, &oracle_alpha);
  size_t calls = 0, returns = 0, internals = 0;
  for (size_t i = 0; i < oracle.size(); ++i) {
    calls += oracle.kind(i) == Kind::kCall;
    returns += oracle.kind(i) == Kind::kReturn;
    internals += oracle.kind(i) == Kind::kInternal;
  }
  StatsSink sink;
  Alphabet alpha;
  {
    XmlTokenStream stream(doc, &alpha);
    stream.set_stats(&sink);
    TaggedSymbol t;
    while (stream.Next(&t)) {
    }
  }
  EXPECT_EQ(sink.stream_bytes.value(), doc.size());
  EXPECT_EQ(sink.stream_tokens.value(), oracle.size());
  EXPECT_EQ(sink.stream_calls.value(), calls);
  EXPECT_EQ(sink.stream_returns.value(), returns);
  EXPECT_EQ(sink.stream_internals.value(), internals);
  EXPECT_GT(sink.stream_depth_hwm.value(), 0u);
}

TEST(XmlTokenStream, EarlyStopFlushesTheConsumedPrefixOnce) {
  Alphabet alpha;
  StatsSink sink;
  const std::string doc = "<a><b>text</b></a>";
  {
    XmlTokenStream stream(doc, &alpha);
    stream.set_stats(&sink);
    TaggedSymbol t;
    ASSERT_TRUE(stream.Next(&t));  // consumer stops after one token
  }
  // Destructor flushed exactly the consumed prefix, exactly once.
  EXPECT_EQ(sink.stream_tokens.value(), 1u);
  EXPECT_EQ(sink.stream_calls.value(), 1u);
  EXPECT_EQ(sink.stream_bytes.value(), 3u);  // "<a>"
}

TEST(QueryEngine, StatsOnAndOffAreByteIdentical) {
  const size_t kSymbols = 4;
  Alphabet gen;
  for (const char* n : {"a", "b", "c"}) gen.Intern(n);
  Nwa wf = WellFormedChecker(kSymbols);
  Nwa deep = MinDepthQuery(3, kSymbols);
  QueryEngine off(kSymbols), on(kSymbols);
  StatsSink sink;
  on.set_stats(&sink);
  for (QueryEngine* e : {&off, &on}) {
    e->set_other_symbol(0);
    e->set_track_matches(true);
    e->Add(&wf);
    e->Add(&deep);
  }
  // The "on" engine also carries the full NWProf attribution table — the
  // differential guarantee covers attribution, not just the aggregates.
  QueryAttribution attr(on.num_queries());
  on.set_attribution(&attr);
  Rng rng(13);
  size_t oracle_positions = 0;
  for (int d = 0; d < 8; ++d) {
    std::string doc = RandomXmlDocument(&rng, gen, 200 + d * 50, 4 + d);
    Alphabet a_off = gen, a_on = gen;
    std::vector<bool> r_off = off.RunAll(doc, &a_off);
    std::vector<bool> r_on = on.RunAll(doc, &a_on);
    EXPECT_EQ(r_off, r_on) << "doc " << d;
    for (size_t q = 0; q < r_off.size(); ++q) {
      EXPECT_EQ(off.first_match(q), on.first_match(q)) << "doc " << d;
    }
    Alphabet scratch;
    oracle_positions += XmlToNestedWord(doc, &scratch).size();
  }
  // Oracle counts: the sink saw every document and every position, and
  // classified them all onto the SoA path.
  EXPECT_EQ(sink.engine_docs.value(), 8u);
  EXPECT_EQ(sink.engine_docs_soa.value(), 8u);
  EXPECT_EQ(sink.engine_docs_bank.value(), 0u);
  EXPECT_EQ(sink.engine_positions.value(), oracle_positions);
  EXPECT_EQ(sink.engine_positions.value(), on.positions());
  EXPECT_EQ(sink.doc_latency_us.count(), 8u);
  EXPECT_EQ(sink.stream_tokens.value(), oracle_positions);
  // Attribution totals are pinned to the engine aggregates, and the
  // well-formedness query matched every generator document.
  EXPECT_EQ(attr.docs.value(), sink.engine_docs.value());
  EXPECT_EQ(attr.positions.value(), sink.engine_positions.value());
  EXPECT_EQ(attr.query(0).match_docs.value(), 8u);
  EXPECT_GT(attr.query(0).accept_positions.value(), 0u);
}

TEST(SplitTopLevel, StatsOverloadRecordsChunkShape) {
  const std::string doc = "<a><b>x</b></a><c/>text<d></d>";
  StatsSink sink;
  std::vector<std::string> with = SplitTopLevel(doc, &sink);
  EXPECT_EQ(with, SplitTopLevel(doc));  // differential: same chunks
  EXPECT_EQ(sink.split_chunks.value(), with.size());
  EXPECT_EQ(sink.split_chunk_bytes.count(), with.size());
  size_t total = 0, largest = 0;
  for (const std::string& c : with) {
    total += c.size();
    largest = std::max(largest, c.size());
  }
  EXPECT_EQ(sink.split_chunk_bytes.sum(), total);
  EXPECT_EQ(sink.split_max_chunk_bytes.value(), largest);
  EXPECT_EQ(total, doc.size());
}

TEST(Tracer, WritesOneSpanLinePerScope) {
  std::string path = testing::TempDir() + "/nw_trace_test.jsonl";
  std::remove(path.c_str());
  {
    Tracer tracer(path);
    ASSERT_TRUE(tracer.ok());
    {
      TraceSpan span(&tracer, "doc", "corpus/0");
      span.Note("positions", 42);
    }
    TraceSpan dropped(nullptr, "doc", "x");  // null tracer: no-op
    dropped.Note("positions", 1);
  }
  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  char line[512];
  ASSERT_NE(std::fgets(line, sizeof(line), f), nullptr);
  std::string s = line;
  EXPECT_NE(s.find("\"name\":\"doc\""), std::string::npos);
  EXPECT_NE(s.find("\"label\":\"corpus/0\""), std::string::npos);
  EXPECT_NE(s.find("\"positions\":42"), std::string::npos);
  EXPECT_NE(s.find("\"dur_us\":"), std::string::npos);
  EXPECT_EQ(std::fgets(line, sizeof(line), f), nullptr);  // exactly one
  std::fclose(f);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace nw
