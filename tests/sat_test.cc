// Tests for the DPLL oracle used by the Theorem 10 experiments.
#include "sat/sat.h"

#include <gtest/gtest.h>

namespace nw {
namespace {

TEST(Sat, TrivialCases) {
  Cnf empty;
  empty.num_vars = 1;
  EXPECT_TRUE(DpllSolve(empty));  // no clauses: vacuously satisfiable
  Cnf contradiction;
  contradiction.num_vars = 1;
  contradiction.clauses = {{{0, true}}, {{0, false}}};
  EXPECT_FALSE(DpllSolve(contradiction));
}

TEST(Sat, ModelsSatisfy) {
  Rng rng(3);
  int sat = 0;
  for (int trial = 0; trial < 60; ++trial) {
    Cnf cnf = Cnf::Random(&rng, 6, 4 + trial % 24);
    std::vector<bool> model;
    if (DpllSolve(cnf, &model)) {
      ++sat;
      EXPECT_TRUE(cnf.Eval(model)) << trial;
    } else {
      // Exhaustive cross-check for small instances.
      for (uint32_t bits = 0; bits < (1u << 6); ++bits) {
        std::vector<bool> assign(6);
        for (int i = 0; i < 6; ++i) assign[i] = (bits >> i) & 1;
        EXPECT_FALSE(cnf.Eval(assign)) << trial << " " << bits;
      }
    }
  }
  EXPECT_GT(sat, 10);
}

TEST(Sat, UnitPropagationChains) {
  // (x0) ∧ (¬x0 ∨ x1) ∧ (¬x1 ∨ x2): forces x0=x1=x2=1.
  Cnf cnf;
  cnf.num_vars = 3;
  cnf.clauses = {{{0, true}},
                 {{0, false}, {1, true}},
                 {{1, false}, {2, true}}};
  std::vector<bool> model;
  ASSERT_TRUE(DpllSolve(cnf, &model));
  EXPECT_TRUE(model[0] && model[1] && model[2]);
}

TEST(Sat, RandomGeneratorShape) {
  Rng rng(4);
  Cnf cnf = Cnf::Random(&rng, 10, 42, 3);
  EXPECT_EQ(cnf.clauses.size(), 42u);
  for (const auto& clause : cnf.clauses) {
    EXPECT_EQ(clause.size(), 3u);
    EXPECT_NE(clause[0].var, clause[1].var);  // distinct vars per clause
    EXPECT_NE(clause[1].var, clause[2].var);
    EXPECT_NE(clause[0].var, clause[2].var);
  }
}

}  // namespace
}  // namespace nw
