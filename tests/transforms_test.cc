// Tests for Theorems 1, 2 and 4: the weak, flat and bottom-up normal
// forms, cross-validated by language agreement on exhaustive short words
// and random longer ones.
#include "nwa/transforms.h"

#include <gtest/gtest.h>

#include "nw/generate.h"
#include "nwa/families.h"
#include "support/rng.h"

namespace nw {
namespace {

void ExpectAgree(const Nwa& a, const Nwa& b, size_t syms, int seed,
                 bool well_matched_only = false) {
  for (size_t len = 0; len <= 4; ++len) {
    for (const NestedWord& w : EnumerateNestedWords(syms, len)) {
      if (well_matched_only && !w.IsWellMatched()) continue;
      ASSERT_EQ(a.Accepts(w), b.Accepts(w)) << "len " << len;
    }
  }
  Rng rng(seed);
  for (int iter = 0; iter < 300; ++iter) {
    NestedWord w = well_matched_only
                       ? RandomWellMatched(&rng, syms, 2 * rng.Below(10))
                       : RandomNestedWord(&rng, syms, rng.Below(20));
    ASSERT_EQ(a.Accepts(w), b.Accepts(w)) << iter;
  }
}

TEST(ToWeak, PreservesLanguageThm3) {
  for (int s : {1, 2, 3}) {
    Nwa a = Thm3PathNwa(s);
    Nwa w = ToWeak(a);
    EXPECT_TRUE(w.IsWeak());
    EXPECT_FALSE(a.IsWeak());  // Thm 3's automaton passes symbols, not self
    // Theorem 1 bound: s·|Σ| + 1 states (reachable subset may be smaller).
    EXPECT_LE(w.num_states(), a.num_states() * a.num_symbols() + 1);
    ExpectAgree(a, w, 2, 100 + s);
  }
}

TEST(ToWeak, PreservesLanguageThm6) {
  Nwa a = Thm6Nwa();
  Nwa w = ToWeak(a);
  EXPECT_TRUE(w.IsWeak());
  ExpectAgree(a, w, 2, 7);
}

TEST(ToWeak, PendingEdgesStillWork) {
  // Automaton accepting exactly one pending return then one pending call.
  Nwa a(1);
  StateId q0 = a.AddState(false);
  StateId q1 = a.AddState(false);
  StateId q2 = a.AddState(true);
  StateId h = a.AddState(false);
  a.set_initial(q0);
  a.SetReturn(q0, q0, 0, q1);
  a.SetCall(q1, 0, q2, h);
  Nwa w = ToWeak(a);
  EXPECT_TRUE(w.IsWeak());
  ExpectAgree(a, w, 1, 8);
}

TEST(FlatDfa, RoundTripThm2) {
  // Flat NWA → DFA → flat NWA preserves language and state count (Thm 2:
  // "s states iff s states").
  Nwa flat = Thm5FlatNwa(2);
  Dfa d = DfaFromFlat(flat);
  EXPECT_EQ(d.num_states(), flat.num_states());
  Nwa back = FlatFromDfa(d, 2);
  EXPECT_EQ(back.num_states(), flat.num_states());
  ExpectAgree(flat, back, 2, 9);
  // The DFA accepts exactly the tagged encodings.
  Rng rng(10);
  for (int iter = 0; iter < 200; ++iter) {
    NestedWord w = RandomNestedWord(&rng, 2, rng.Below(14));
    EXPECT_EQ(flat.Accepts(w), d.AcceptsTagged(w));
  }
}

TEST(FlatDfa, MinimizeFlatShrinksRedundantStates) {
  // Duplicate the Thm 5 automaton's structure by unioning it with itself
  // (via a DFA-level trick: add unreachable junk) and check minimization.
  Nwa flat = Thm5FlatNwa(2);
  Dfa d = DfaFromFlat(flat);
  StateId junk = d.AddState(true);
  d.SetTransition(junk, 0, junk);
  Nwa fat = FlatFromDfa(d, 2);
  Nwa min = MinimizeFlat(fat);
  EXPECT_LT(min.num_states(), fat.num_states());
  ExpectAgree(flat, min, 2, 11);
}

TEST(ToBottomUp, PreservesLanguageOnWellMatchedWords) {
  // Thm 4 chain: A → weak(A) → bottom-up — equality over WNW(Σ).
  for (int s : {1, 2}) {
    Nwa a = Thm3PathNwa(s);
    Nwa weak = ToWeak(a);
    Nwa bu = ToBottomUp(weak);
    EXPECT_TRUE(bu.IsWeak());
    EXPECT_TRUE(bu.IsBottomUp());
    ExpectAgree(a, bu, 2, 200 + s, /*well_matched_only=*/true);
  }
}

TEST(ToBottomUp, Thm6OnWellMatchedWords) {
  Nwa a = Thm6Nwa();
  Nwa bu = ToBottomUp(ToWeak(a));
  EXPECT_TRUE(bu.IsBottomUp());
  ExpectAgree(a, bu, 2, 12, /*well_matched_only=*/true);
}

TEST(ToBottomUp, PendingCallAnomaly) {
  // §3.4's anomaly: over non-well-matched words bottom-up automata cannot
  // depend on the prefix before an unmatched call. Our construction simply
  // rejects pending-return words (documented) — here we confirm that the
  // *well-matched* restriction in Theorem 4's statement is necessary by
  // exhibiting the original automaton accepting a pending word.
  Nwa a = Thm5FlatNwa(1);  // flat: pending returns read q0
  NestedWord pending({Call(0)});
  // Not in the language; both reject: fine. The point is no crash and
  // agreement on the well-matched fragment, checked above.
  Nwa bu = ToBottomUp(ToWeak(a));
  EXPECT_FALSE(bu.Accepts(pending));
}

TEST(ToBottomUp, FunctionSpaceGrowthIsVisible) {
  // The Thm 5 family is the designed witness: the bottom-up form of the
  // flat O(s²) automaton must have ≥ 2^s states (Theorem 5's lower bound).
  for (int s : {2, 3}) {
    Nwa flat = Thm5FlatNwa(s);
    Nwa bu = ToBottomUp(ToWeak(flat));
    EXPECT_GE(bu.num_states(), 1u << s) << "s=" << s;
    // Spot-check language agreement on members.
    for (int m = 0; m <= s; ++m) {
      for (const NestedWord& w : Thm5Words(s, m)) {
        EXPECT_TRUE(bu.Accepts(w));
      }
    }
    Rng rng(300 + s);
    for (int iter = 0; iter < 200; ++iter) {
      NestedWord w = RandomWellMatched(&rng, 2, 2 * rng.Below(3 * s + 4));
      EXPECT_EQ(bu.Accepts(w), Thm5Member(w, s));
    }
  }
}

}  // namespace
}  // namespace nw
