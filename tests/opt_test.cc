// Tests for the NWOpt optimizer subsystem: algebraic rewrites, congruence
// minimization, and shared-bank compilation must all be language-preserving
// (checked differentially against the unoptimized compilation and a naive
// tree-walk oracle, over randomized queries and randomized well-formed AND
// malformed documents), plus a regression pinning the state-count win on a
// `not`-heavy query family and the engine's match-position tap.
#include "opt/pipeline.h"

#include <gtest/gtest.h>

#include <functional>

#include "opt/bank.h"
#include "opt/minimize.h"
#include "opt/rewrite.h"
#include "query/compile.h"
#include "query/engine.h"
#include "query/nwquery.h"
#include "support/rng.h"
#include "xml/xml.h"

namespace nw {
namespace {

// ---------------------------------------------------------------------------
// Naive oracle (same contract as tests/query_test.cc, extended to the
// optimizer's kPathSet atom): one pass over the tagged stream maintaining
// the chain of open element names; nothing automaton-shaped.
// ---------------------------------------------------------------------------

bool PathChainMatches(const std::vector<PathStep>& steps,
                      const std::vector<Symbol>& chain) {
  std::function<bool(size_t, size_t)> match = [&](size_t i, size_t j) {
    if (i == steps.size()) return j == chain.size();
    if (j == chain.size()) return false;
    const PathStep& s = steps[i];
    auto name_ok = [&](size_t jj) {
      return s.name == Alphabet::kNoSymbol || chain[jj] == s.name;
    };
    if (s.axis == Axis::kChild) {
      return name_ok(j) && match(i + 1, j + 1);
    }
    for (size_t jj = j; jj < chain.size(); ++jj) {
      if (name_ok(jj) && match(i + 1, jj + 1)) return true;
    }
    return false;
  };
  return match(0, 0);
}

bool AnyPathMatches(const Query& q, const std::vector<Symbol>& chain) {
  if (q.op() == Query::Op::kPath) return PathChainMatches(q.steps(), chain);
  for (const auto& steps : q.step_sets()) {
    if (PathChainMatches(steps, chain)) return true;
  }
  return false;
}

bool OracleEval(const Query& q, const NestedWord& doc) {
  switch (q.op()) {
    case Query::Op::kAnd:
      return OracleEval(q.left(), doc) && OracleEval(q.right(), doc);
    case Query::Op::kOr:
      return OracleEval(q.left(), doc) || OracleEval(q.right(), doc);
    case Query::Op::kNot:
      return !OracleEval(q.left(), doc);
    default:
      break;
  }
  std::vector<Symbol> chain;
  bool path_hit = false;
  size_t order_progress = 0;
  size_t max_depth = 0;
  for (const TaggedSymbol& t : doc.tagged()) {
    switch (t.kind) {
      case Kind::kCall:
        chain.push_back(t.symbol);
        max_depth = std::max(max_depth, chain.size());
        if ((q.op() == Query::Op::kPath || q.op() == Query::Op::kPathSet) &&
            !path_hit) {
          path_hit = AnyPathMatches(q, chain);
        }
        if (q.op() == Query::Op::kOrder &&
            order_progress < q.names().size() &&
            t.symbol == q.names()[order_progress]) {
          ++order_progress;
        }
        break;
      case Kind::kReturn:
        if (!chain.empty()) chain.pop_back();
        break;
      case Kind::kInternal:
        break;
    }
  }
  switch (q.op()) {
    case Query::Op::kPath:
    case Query::Op::kPathSet:
      return path_hit;
    case Query::Op::kOrder:
      return order_progress == q.names().size();
    case Query::Op::kMinDepth:
      return max_depth >= q.min_depth();
    default:
      return false;  // unreachable
  }
}

/// Randomly corrupts a well-formed document: drops close tags and injects
/// stray ones, producing pending calls and pending returns.
std::string Corrupt(Rng* rng, const std::string& doc) {
  std::string out;
  size_t i = 0;
  while (i < doc.size()) {
    if (doc[i] == '<' && i + 1 < doc.size() && doc[i + 1] == '/' &&
        rng->Chance(1, 5)) {
      while (i < doc.size() && doc[i] != '>') ++i;
      if (i < doc.size()) ++i;
      continue;
    }
    if (doc[i] == '<' && rng->Chance(1, 12)) {
      out += "</zz>";
    }
    out += doc[i++];
  }
  return out;
}

Alphabet QueryAlphabet() {
  Alphabet a;
  a.Intern("a");
  a.Intern("b");
  a.Intern("c");
  a.Intern("d");
  a.Intern("#text");
  a.Intern("zz");  // appears only via Corrupt()'s stray closes
  return a;
}

/// Query shapes stressing every pass: boolean nests for the rewriter and
/// the minimizer, sibling paths for the fusion pass.
const char* kShapes[] = {
    "/a",
    "//b",
    "/a/b or /a/c",
    "/a//b/* or //c or /a/b",
    "not //b",
    "not (not //b)",
    "not (/a and not //b)",
    "not (/a/b and not (//c and not /a))",
    "not (/a and not //b) or not (//c and not /a/b)",
    "(a then b) and not (/a/b or /a/c)",
    "depth >= 3 or not (a then b then c)",
    "not (//a and //b and //c)",
};

/// Random query tree over the first `names` symbols, ≤ `depth` connectives.
Query RandomQuery(Rng* rng, const std::vector<Symbol>& names, int depth) {
  if (depth == 0 || rng->Chance(2, 5)) {
    switch (rng->Below(3)) {
      case 0: {
        std::vector<PathStep> steps;
        size_t len = 1 + rng->Below(3);
        for (size_t i = 0; i < len; ++i) {
          steps.push_back(
              {rng->Chance(1, 2) ? Axis::kChild : Axis::kDescendant,
               rng->Chance(1, 5) ? Alphabet::kNoSymbol
                                 : names[rng->Below(names.size())]});
        }
        return Query::Path(std::move(steps));
      }
      case 1:
        return Query::Order({names[rng->Below(names.size())],
                             names[rng->Below(names.size())]});
      default:
        return Query::MinDepth(1 + rng->Below(4));
    }
  }
  switch (rng->Below(3)) {
    case 0:
      return Query::And(RandomQuery(rng, names, depth - 1),
                        RandomQuery(rng, names, depth - 1));
    case 1:
      return Query::Or(RandomQuery(rng, names, depth - 1),
                       RandomQuery(rng, names, depth - 1));
    default:
      return Query::Not(RandomQuery(rng, names, depth - 1));
  }
}

/// The kShapes queries compiled UNoptimized, once per test binary — the
/// PR-1 compiler is the slow path under test here (that blow-up is the
/// optimizer's whole reason to exist), so the differential tests share
/// one compilation instead of each paying for it.
const std::vector<Nwa>& CompiledShapes(const Alphabet& sigma) {
  static const std::vector<Nwa>* cache = [&sigma] {
    auto* out = new std::vector<Nwa>();
    Alphabet local = sigma;
    for (const char* text : kShapes) {
      out->push_back(
          CompileQuery(ParseQuery(text, &local).Take(), sigma.size()));
    }
    return out;
  }();
  return *cache;
}

/// A batch of random (possibly corrupted) documents over {a,b,c,d}.
std::vector<NestedWord> RandomDocs(Rng* rng, const Alphabet& sigma,
                                   size_t count) {
  Alphabet gen;
  gen.Intern("a");
  gen.Intern("b");
  gen.Intern("c");
  gen.Intern("d");
  std::vector<NestedWord> docs;
  for (size_t i = 0; i < count; ++i) {
    std::string doc =
        RandomXmlDocument(rng, gen, 10 + rng->Below(80), 1 + rng->Below(7));
    if (rng->Chance(1, 2)) doc = Corrupt(rng, doc);
    Alphabet local = sigma;
    docs.push_back(XmlToNestedWord(doc, &local));
    EXPECT_LE(local.size(), sigma.size()) << doc;
  }
  return docs;
}

// ---------------------------------------------------------------------------
// Rewrite pass
// ---------------------------------------------------------------------------

std::string RewriteToText(const char* text, Alphabet* sigma) {
  Query q = ParseQuery(text, sigma).Take();
  return FormatQuery(RewriteQuery(q), *sigma);
}

TEST(OptRewrite, PushesNotInwardViaDeMorgan) {
  Alphabet sigma = QueryAlphabet();
  EXPECT_EQ(RewriteToText("not (/a and //b)", &sigma), "not /a or not //b");
  EXPECT_EQ(RewriteToText("not (/a or //b)", &sigma), "not /a and not //b");
  EXPECT_EQ(RewriteToText("not (not //b)", &sigma), "//b");
  EXPECT_EQ(RewriteToText("not (not (not //b))", &sigma), "not //b");
  // De Morgan recurses through alternating connectives.
  EXPECT_EQ(RewriteToText("not (/a and (depth >= 2 or not //b))", &sigma),
            "not /a or not depth >= 2 and //b");
}

TEST(OptRewrite, FlattensAndDedups) {
  Alphabet sigma = QueryAlphabet();
  EXPECT_EQ(RewriteToText("/a and /a", &sigma), "/a");
  EXPECT_EQ(RewriteToText("//b or //b or //b", &sigma), "//b");
  EXPECT_EQ(RewriteToText("(/a and //b) and /a", &sigma), "/a and //b");
  EXPECT_EQ(RewriteToText("depth >= 2 or (depth >= 2 or depth >= 2)", &sigma),
            "depth >= 2");
}

TEST(OptRewrite, FusesSiblingPathsUnderOrOnly) {
  Alphabet sigma = QueryAlphabet();
  Query fused = RewriteQuery(ParseQuery("/a/b or /a/c", &sigma).Take());
  ASSERT_EQ(fused.op(), Query::Op::kPathSet);
  EXPECT_EQ(fused.step_sets().size(), 2u);
  // The fused atom formats as the equivalent `or` chain and re-parses.
  std::string printed = FormatQuery(fused, sigma);
  EXPECT_EQ(printed, "/a/b or /a/c");
  EXPECT_TRUE(ParseQuery(printed, &sigma).ok());

  // Mixed children: the path atoms fuse, the rest stay.
  Query mixed = RewriteQuery(
      ParseQuery("/a/b or depth >= 2 or /a/c or //d", &sigma).Take());
  ASSERT_EQ(mixed.op(), Query::Op::kOr);
  EXPECT_EQ(mixed.left().op(), Query::Op::kPathSet);
  EXPECT_EQ(mixed.left().step_sets().size(), 3u);
  EXPECT_EQ(mixed.right().op(), Query::Op::kMinDepth);

  // No fusion under `and`: the matching elements may differ.
  Query conj = RewriteQuery(ParseQuery("/a/b and /a/c", &sigma).Take());
  ASSERT_EQ(conj.op(), Query::Op::kAnd);
  EXPECT_EQ(conj.left().op(), Query::Op::kPath);
  EXPECT_EQ(conj.right().op(), Query::Op::kPath);
}

TEST(OptRewrite, IsIdempotent) {
  Alphabet sigma = QueryAlphabet();
  Rng rng(99);
  std::vector<Query> queries;
  for (const char* text : kShapes) {
    queries.push_back(ParseQuery(text, &sigma).Take());
  }
  std::vector<Symbol> names = {sigma.Find("a"), sigma.Find("b"),
                               sigma.Find("c")};
  for (int i = 0; i < 20; ++i) queries.push_back(RandomQuery(&rng, names, 2));
  for (const Query& q : queries) {
    Query once = RewriteQuery(q);
    EXPECT_TRUE(RewriteQuery(once) == once) << FormatQuery(q, sigma);
  }
}

TEST(OptRewrite, PreservesTheLanguage) {
  // The oracle carries the ORIGINAL query's semantics, so compiling only
  // the rewritten form still proves the rewrite changed nothing (the
  // unrewritten compilation is validated against the same oracle by
  // tests/query_test.cc and by CompiledShapes-based tests below).
  Alphabet sigma = QueryAlphabet();
  Rng rng(4321);
  std::vector<Query> queries;
  for (const char* text : kShapes) {
    queries.push_back(ParseQuery(text, &sigma).Take());
  }
  std::vector<Symbol> names = {sigma.Find("a"), sigma.Find("b"),
                               sigma.Find("c")};
  for (int i = 0; i < 15; ++i) queries.push_back(RandomQuery(&rng, names, 2));
  std::vector<NestedWord> docs = RandomDocs(&rng, sigma, 25);
  for (const Query& q : queries) {
    Query r = RewriteQuery(q);
    Nwa rewritten = CompileQuery(r, sigma.size());
    for (const NestedWord& doc : docs) {
      EXPECT_EQ(rewritten.Accepts(doc), OracleEval(q, doc))
          << FormatQuery(q, sigma) << " rewritten to " << FormatQuery(r, sigma);
    }
  }
}

// ---------------------------------------------------------------------------
// kPathSet compilation
// ---------------------------------------------------------------------------

TEST(OptPathSet, CompilesTheUnionLanguage) {
  Alphabet sigma = QueryAlphabet();
  Symbol a = sigma.Find("a"), b = sigma.Find("b"), c = sigma.Find("c");
  std::vector<std::vector<PathStep>> sets = {
      {{Axis::kChild, a}, {Axis::kChild, b}},
      {{Axis::kChild, a}, {Axis::kDescendant, c}},
      {{Axis::kDescendant, b}, {Axis::kChild, Alphabet::kNoSymbol}},
  };
  Nwa fused = CompilePathSetNwa(sets, sigma.size());
  std::vector<Nwa> parts;
  for (const auto& steps : sets) {
    parts.push_back(CompilePathNwa(steps, sigma.size()));
  }
  Rng rng(7);
  for (const NestedWord& doc : RandomDocs(&rng, sigma, 40)) {
    bool any = false;
    for (const Nwa& p : parts) any = any || p.Accepts(doc);
    EXPECT_EQ(fused.Accepts(doc), any);
  }
}

// ---------------------------------------------------------------------------
// Minimization
// ---------------------------------------------------------------------------

TEST(OptMinimize, PreservesTheLanguageDifferentially) {
  Alphabet sigma = QueryAlphabet();
  Rng rng(2026);
  const std::vector<Nwa>& compiled = CompiledShapes(sigma);
  std::vector<Query> queries;
  Alphabet scratch = sigma;
  for (const char* text : kShapes) {
    queries.push_back(ParseQuery(text, &scratch).Take());
  }
  std::vector<NestedWord> docs = RandomDocs(&rng, sigma, 25);
  for (size_t i = 0; i < queries.size(); ++i) {
    MinimizeResult m = MinimizeNwa(compiled[i]);
    EXPECT_EQ(m.states_before, compiled[i].num_states());
    EXPECT_LE(m.states_after, m.states_before) << kShapes[i];
    for (const NestedWord& doc : docs) {
      EXPECT_EQ(m.nwa.Accepts(doc), OracleEval(queries[i], doc))
          << kShapes[i];
    }
  }
  // Random queries go through the rewriter first (the unrewritten
  // compilation of random `not` nests is the blow-up under optimization,
  // not a test fixture worth minutes of CPU); minimization must preserve
  // whatever automaton it is handed.
  std::vector<Symbol> names = {sigma.Find("a"), sigma.Find("b"),
                               sigma.Find("c")};
  for (int i = 0; i < 15; ++i) {
    Query q = RandomQuery(&rng, names, 2);
    Nwa a = CompileQuery(RewriteQuery(q), sigma.size());
    MinimizeResult m = MinimizeNwa(a);
    EXPECT_LE(m.states_after, a.num_states());
    for (const NestedWord& doc : docs) {
      EXPECT_EQ(m.nwa.Accepts(doc), OracleEval(q, doc))
          << FormatQuery(q, sigma);
    }
  }
}

TEST(OptMinimize, IsIdempotentOnItsOwnOutput) {
  Alphabet sigma = QueryAlphabet();
  for (const Nwa& compiled : CompiledShapes(sigma)) {
    MinimizeResult once = MinimizeNwa(compiled);
    MinimizeResult twice = MinimizeNwa(once.nwa);
    EXPECT_EQ(twice.states_after, once.states_after);
  }
}

TEST(OptMinimize, CollapsesTheEmptyLanguage) {
  // No final state at all: everything is dead-equivalent.
  Nwa empty(2);
  StateId q0 = empty.AddState(false);
  StateId q1 = empty.AddState(false);
  empty.set_initial(q0);
  empty.SetInternal(q0, 0, q1);
  empty.SetInternal(q1, 1, q0);
  MinimizeResult m = MinimizeNwa(empty);
  EXPECT_EQ(m.states_after, 1u);
  EXPECT_FALSE(m.nwa.Accepts(NestedWord{}));
  EXPECT_FALSE(m.nwa.Accepts(NestedWord{Internal(0)}));

  // Final states exist but are unreachable: same collapse.
  Nwa unreachable(2);
  StateId r0 = unreachable.AddState(false);
  unreachable.AddState(true);  // never targeted
  unreachable.set_initial(r0);
  EXPECT_EQ(MinimizeNwa(unreachable).states_after, 1u);
}

TEST(OptMinimize, NotHeavyFamilyShrinksAtLeastFiveFold) {
  // Regression for the optimizer's headline claim (ROADMAP item 1): the
  // compiler's Nnwa-closure round trips blow `not`-heavy queries up to
  // hundreds of states; congruence minimization alone must win back ≥5×
  // on this family. The family is also exercised (with throughput) by
  // bench/bench_query_optimizer.cc.
  const char* family[] = {
      "not //b",
      "not (/a/b or /a/c)",
      "not (//b or (a then b))",
      "not (/a/b and not //c) and not //d",
  };
  Alphabet sigma = QueryAlphabet();
  size_t before = 0, after = 0;
  for (const char* text : family) {
    Nwa compiled =
        CompileQuery(ParseQuery(text, &sigma).Take(), sigma.size());
    MinimizeResult m = MinimizeNwa(compiled);
    before += m.states_before;
    after += m.states_after;
  }
  EXPECT_GE(before, 5 * after)
      << "not-heavy family: " << before << " -> " << after;
  // And the simplest member pins its exact minimal size: `not //b` needs
  // one latch-ish live state plus small bookkeeping, not the compiler's 25.
  Nwa nb = CompileQuery(ParseQuery("not //b", &sigma).Take(), sigma.size());
  EXPECT_EQ(MinimizeNwa(nb).states_after, 5u);
}

// ---------------------------------------------------------------------------
// Shared bank + engine integration
// ---------------------------------------------------------------------------

TEST(OptBank, MatchesTheSoAPathExactly) {
  // The product is built over the EXACT same automata the SoA engine
  // steps, so any divergence is the bank's fault alone.
  Alphabet sigma = QueryAlphabet();
  const std::vector<Nwa>& compiled = CompiledShapes(sigma);
  std::vector<const Nwa*> autos;
  for (const Nwa& a : compiled) autos.push_back(&a);
  SharedBank shared = CompileBank(autos);

  QueryEngine soa(sigma.size());
  QueryEngine bank(sigma.size());
  soa.set_track_matches(true);
  bank.set_track_matches(true);
  for (const Nwa& a : compiled) soa.Add(&a);
  bank.AddBank(&shared);
  ASSERT_EQ(bank.num_queries(), compiled.size());
  const size_t num_queries = compiled.size();

  Rng rng(55);
  for (const NestedWord& doc : RandomDocs(&rng, sigma, 30)) {
    std::vector<bool> a = soa.RunAll(doc);
    std::vector<bool> b = bank.RunAll(doc);
    EXPECT_EQ(a, b);
    for (size_t i = 0; i < num_queries; ++i) {
      EXPECT_EQ(soa.first_match(i), bank.first_match(i))
          << "query " << i << ": " << kShapes[i];
      EXPECT_EQ(soa.dead(i), bank.dead(i)) << i;
    }
    // The bank path's resident state is depth-bounded and K-free: one
    // product state plus one StateId per pending-call frame.
    EXPECT_EQ(bank.ResidentStates(), 1 + bank.MaxStackDepth());
  }
  EXPECT_EQ(soa.traversals(), bank.traversals());
}

TEST(OptBank, FullPipelineMatchesTheOracle) {
  Alphabet sigma = QueryAlphabet();
  Rng rng(777);
  std::vector<Query> queries;
  for (const char* text : kShapes) {
    queries.push_back(ParseQuery(text, &sigma).Take());
  }
  std::vector<Symbol> names = {sigma.Find("a"), sigma.Find("b"),
                               sigma.Find("c")};
  for (int i = 0; i < 4; ++i) queries.push_back(RandomQuery(&rng, names, 2));
  OptimizedBank bank = OptimizeBank(queries, sigma.size(), OptOptions::All());
  ASSERT_NE(bank.shared, nullptr);
  EXPECT_LE(bank.states_final(), bank.states_compiled());
  QueryEngine engine(sigma.size());
  bank.Register(&engine);
  for (const NestedWord& doc : RandomDocs(&rng, sigma, 30)) {
    std::vector<bool> got = engine.RunAll(doc);
    for (size_t i = 0; i < queries.size(); ++i) {
      EXPECT_EQ(got[i], OracleEval(queries[i], doc))
          << FormatQuery(queries[i], sigma);
    }
  }
}

TEST(OptBank, StreamsXmlTextWithCatchAllRemapping) {
  Alphabet sigma;
  sigma.Intern("a");
  Symbol other = sigma.Intern("%other");
  std::vector<Query> queries = {ParseQuery("/a", &sigma).Take(),
                                ParseQuery("/*/*", &sigma).Take()};
  OptimizedBank bank = OptimizeBank(queries, sigma.size(), OptOptions::All());
  QueryEngine engine(sigma.size());
  engine.set_other_symbol(other);
  bank.Register(&engine);
  Alphabet local = sigma;
  std::vector<bool> r = engine.RunAll("<mystery><deep/></mystery>", &local);
  EXPECT_FALSE(r[0]);  // the unknown root is not named 'a'
  EXPECT_TRUE(r[1]);   // but it does have structural depth 2
}

TEST(OptBank, LiveCountDropsAsComponentsDie) {
  Alphabet sigma;
  sigma.Intern("a");
  Nwa dead(sigma.size());
  dead.set_initial(dead.AddState(true));  // no transitions: dies on input
  Nwa alive = CompileQuery(ParseQuery("//a", &sigma).Take(), sigma.size());
  std::vector<const Nwa*> autos = {&dead, &alive};
  SharedBank bank = CompileBank(autos);
  QueryEngine engine(sigma.size());
  engine.AddBank(&bank);
  engine.BeginStream();
  EXPECT_EQ(engine.Feed(Call(0)), 1u);  // the empty automaton died
  EXPECT_TRUE(engine.dead(0));
  EXPECT_FALSE(engine.dead(1));
  EXPECT_TRUE(engine.Accepting(1));
  EXPECT_FALSE(engine.Accepting(0));
}

// ---------------------------------------------------------------------------
// Match positions
// ---------------------------------------------------------------------------

TEST(OptMatchPositions, ReportWhereTheAcceptStateFirstLatched) {
  Alphabet sigma = QueryAlphabet();
  std::vector<Query> queries = {
      ParseQuery("/a", &sigma).Take(),
      ParseQuery("//b", &sigma).Take(),
      ParseQuery("not //b", &sigma).Take(),
      ParseQuery("//c", &sigma).Take(),
  };
  for (bool use_bank : {false, true}) {
    OptimizedBank bank = OptimizeBank(queries, sigma.size(), [&] {
      OptOptions o = OptOptions::All();
      o.bank = use_bank;
      return o;
    }());
    QueryEngine engine(sigma.size());
    engine.set_track_matches(true);
    bank.Register(&engine);
    Alphabet local = sigma;
    // Positions:            1     2    3   4    5     6
    NestedWord doc = XmlToNestedWord("<d/><a><b/></a>", &local);
    std::vector<bool> r = engine.RunAll(doc);
    EXPECT_TRUE(r[0]);
    EXPECT_EQ(engine.first_match(0), 3) << "bank=" << use_bank;  // <a>
    EXPECT_TRUE(r[1]);
    EXPECT_EQ(engine.first_match(1), 4) << "bank=" << use_bank;  // <b>
    // `not //b` accepted the empty prefix, then stopped accepting: the
    // tap keeps the FIRST observation even though the final answer is no.
    EXPECT_FALSE(r[2]);
    EXPECT_EQ(engine.first_match(2), 0) << "bank=" << use_bank;
    EXPECT_FALSE(r[3]);
    EXPECT_EQ(engine.first_match(3), -1) << "bank=" << use_bank;
  }
}

// ---------------------------------------------------------------------------
// Pipeline driver + engine guardrails
// ---------------------------------------------------------------------------

TEST(OptPipeline, ParsesEveryLevel) {
  OptOptions o;
  ASSERT_TRUE(ParseOptLevel("none", &o));
  EXPECT_TRUE(!o.rewrite && !o.minimize && !o.bank);
  ASSERT_TRUE(ParseOptLevel("rewrite", &o));
  EXPECT_TRUE(o.rewrite && !o.minimize && !o.bank);
  ASSERT_TRUE(ParseOptLevel("min", &o));
  EXPECT_TRUE(!o.rewrite && o.minimize && !o.bank);
  ASSERT_TRUE(ParseOptLevel("bank", &o));
  EXPECT_TRUE(!o.rewrite && !o.minimize && o.bank);
  ASSERT_TRUE(ParseOptLevel("all", &o));
  EXPECT_TRUE(o.rewrite && o.minimize && o.bank);
  OptOptions before = o;
  EXPECT_FALSE(ParseOptLevel("max", &o));
  EXPECT_TRUE(o.rewrite == before.rewrite && o.minimize == before.minimize &&
              o.bank == before.bank);
}

TEST(OptEngineDeathTest, RejectsOutOfRangeCatchAllSymbol) {
  QueryEngine engine(3);
  EXPECT_DEATH(engine.set_other_symbol(3), "out of range");
  EXPECT_DEATH(engine.set_other_symbol(Alphabet::kNoSymbol), "out of range");
}

}  // namespace
}  // namespace nw
