// Unit tests for nested words and the matching relation (paper §2.1–2.2),
// including the three sample words of Figure 1.
#include "nw/nested_word.h"

#include <gtest/gtest.h>

#include "nw/generate.h"
#include "nw/text.h"
#include "support/rng.h"

namespace nw {
namespace {

// Figure 1, word n1: <a <b a a> <b a b> a> <a b a a>  (length 12, depth 2).
NestedWord Fig1N1(Alphabet* sigma) {
  auto r = ParseNestedWord("<a <b a a> <b a b> a> <a b a a>", sigma);
  EXPECT_TRUE(r.ok());
  return r.Take();
}

// Figure 1, word n2: a a> <b a a> <a <a  (two unmatched calls, one
// unmatched return).
NestedWord Fig1N2(Alphabet* sigma) {
  auto r = ParseNestedWord("a a> <b a a> <a <a", sigma);
  EXPECT_TRUE(r.ok());
  return r.Take();
}

// Figure 1, word n3: <a <a a> <b b> a>  — the tree word of a(a(),b()).
NestedWord Fig1N3(Alphabet* sigma) {
  auto r = ParseNestedWord("<a <a a> <b b> a>", sigma);
  EXPECT_TRUE(r.ok());
  return r.Take();
}

TEST(NestedWord, EmptyWord) {
  NestedWord n;
  EXPECT_EQ(n.size(), 0u);
  EXPECT_TRUE(n.IsWellMatched());
  EXPECT_FALSE(n.IsRooted());
  EXPECT_EQ(n.Depth(), 0u);
}

TEST(NestedWord, Fig1N1Properties) {
  Alphabet sigma;
  NestedWord n1 = Fig1N1(&sigma);
  EXPECT_EQ(n1.size(), 12u);
  EXPECT_TRUE(n1.IsWellMatched());
  EXPECT_FALSE(n1.IsRooted());  // two top-level components
  EXPECT_FALSE(n1.IsTreeWord());
  EXPECT_EQ(n1.Depth(), 2u);
}

TEST(NestedWord, Fig1N2PendingEdges) {
  Alphabet sigma;
  NestedWord n2 = Fig1N2(&sigma);
  EXPECT_FALSE(n2.IsWellMatched());
  Matching m(n2);
  EXPECT_EQ(m.pending_returns(), 1u);
  EXPECT_EQ(m.pending_calls(), 2u);
  EXPECT_EQ(m.partner(1), Matching::kPendingNegInf);
  EXPECT_EQ(m.partner(5), Matching::kPendingInf);
  EXPECT_EQ(m.partner(6), Matching::kPendingInf);
  // The <b ... a> pair is matched.
  EXPECT_EQ(m.partner(2), 4);
  EXPECT_EQ(m.partner(4), 2);
}

TEST(NestedWord, Fig1N3IsRootedTreeWord) {
  Alphabet sigma;
  NestedWord n3 = Fig1N3(&sigma);
  EXPECT_TRUE(n3.IsRooted());
  EXPECT_TRUE(n3.IsWellMatched());
  EXPECT_TRUE(n3.IsTreeWord());
  EXPECT_EQ(n3.Depth(), 2u);
}

TEST(NestedWord, PathWordShape) {
  // path(w) is rooted with depth |w| (§2.2).
  std::vector<Symbol> w = {0, 1, 1, 0, 1};
  NestedWord p = NestedWord::Path(w);
  EXPECT_EQ(p.size(), 2 * w.size());
  EXPECT_TRUE(p.IsRooted());
  EXPECT_EQ(p.Depth(), w.size());
  EXPECT_TRUE(p.IsTreeWord());
}

TEST(NestedWord, PlainWordHasEmptyMatching) {
  NestedWord n = NestedWord::FromWord({0, 1, 0});
  Matching m(n);
  for (size_t i = 0; i < n.size(); ++i) {
    EXPECT_EQ(m.partner(i), Matching::kNone);
    EXPECT_EQ(m.call_parent(i), Matching::kTopLevel);
  }
  EXPECT_EQ(n.Depth(), 0u);
}

TEST(Matching, CallParentFollowsPaperRecurrence) {
  Alphabet sigma;
  // <a b <b a> c a>   positions: 0:<a 1:b 2:<b 3:a> 4:c 5:a>
  auto n = ParseNestedWord("<a b <b a> c a>", &sigma).Take();
  Matching m(n);
  EXPECT_EQ(m.call_parent(0), Matching::kTopLevel);
  EXPECT_EQ(m.call_parent(1), 0);
  EXPECT_EQ(m.call_parent(2), 0);
  EXPECT_EQ(m.call_parent(3), 2);
  EXPECT_EQ(m.call_parent(4), 0);
  EXPECT_EQ(m.call_parent(5), 0);
}

TEST(Matching, PendingReturnResetsParentToTopLevel) {
  Alphabet sigma;
  auto n = ParseNestedWord("a> b", &sigma).Take();
  Matching m(n);
  EXPECT_EQ(m.partner(0), Matching::kPendingNegInf);
  EXPECT_EQ(m.call_parent(1), Matching::kTopLevel);
}

TEST(Matching, DepthIgnoresPendingEdges) {
  Alphabet sigma;
  // Two pending calls wrap one matched pair: depth counts only the match.
  auto n = ParseNestedWord("<a <a <b b>", &sigma).Take();
  EXPECT_EQ(n.Depth(), 1u);
}

TEST(Matching, NoCrossingByConstruction) {
  // Matching computed from any tagged sequence satisfies §2.1's axioms:
  // partners are mutual, i < j, and edges never cross.
  Rng rng(7);
  for (int iter = 0; iter < 200; ++iter) {
    NestedWord n = RandomNestedWord(&rng, 2, 40);
    Matching m(n);
    for (size_t i = 0; i < n.size(); ++i) {
      int64_t j = m.partner(i);
      if (j < 0) continue;
      if (n.kind(i) == Kind::kCall) {
        EXPECT_LT(static_cast<int64_t>(i), j);
        EXPECT_EQ(m.partner(static_cast<size_t>(j)), static_cast<int64_t>(i));
      }
    }
    // Crossing check: for all matched pairs (i,j), (i',j'):
    // not (i < i' <= j < j').
    for (size_t i = 0; i < n.size(); ++i) {
      if (n.kind(i) != Kind::kCall || m.partner(i) < 0) continue;
      int64_t j = m.partner(i);
      for (size_t i2 = i + 1; i2 < static_cast<size_t>(j); ++i2) {
        if (n.kind(i2) != Kind::kCall || m.partner(i2) < 0) continue;
        EXPECT_LE(m.partner(i2), j) << "crossing edge found";
      }
    }
  }
}

TEST(NestedWord, ThreeToTheEllMatchings) {
  // §2.2: there are exactly 3^ℓ matching relations of length ℓ, in
  // bijection with kind-sequences. Enumerate ℓ ≤ 6 and verify that
  // distinct kind sequences give distinct matchings (over 1 symbol).
  for (size_t len = 0; len <= 6; ++len) {
    size_t count = 1;
    for (size_t i = 0; i < len; ++i) count *= 3;
    std::vector<NestedWord> words;
    for (size_t code = 0; code < count; ++code) {
      size_t c = code;
      std::vector<TaggedSymbol> seq;
      for (size_t i = 0; i < len; ++i) {
        seq.push_back({static_cast<Kind>(c % 3), 0});
        c /= 3;
      }
      words.push_back(NestedWord(std::move(seq)));
    }
    // All distinct as nested words.
    for (size_t i = 0; i < words.size(); ++i) {
      for (size_t j = i + 1; j < words.size(); ++j) {
        EXPECT_FALSE(words[i] == words[j]);
      }
    }
    EXPECT_EQ(words.size(), count);
  }
}

TEST(NestedWord, RootedImpliesWellMatched) {
  Rng rng(13);
  for (int iter = 0; iter < 300; ++iter) {
    NestedWord n = RandomNestedWord(&rng, 2, 24);
    if (n.IsRooted()) EXPECT_TRUE(n.IsWellMatched());
  }
}

}  // namespace
}  // namespace nw
