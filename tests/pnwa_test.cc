// Tests for pushdown nested word automata (§4): run semantics, stack
// copying at calls, leaf conditions, Lemma 4, the Theorem 10 reduction
// against the DPLL oracle, and emptiness against the interpreter.
#include "pnwa/pnwa.h"

#include <gtest/gtest.h>

#include "nw/generate.h"
#include "pnwa/reduction.h"
#include "support/rng.h"

namespace nw {
namespace {

bool BalancedAB(const NestedWord& n) {
  int64_t diff = 0;
  for (size_t i = 0; i < n.size(); ++i) diff += n.symbol(i) == 0 ? 1 : -1;
  return diff == 0;
}

TEST(Pnwa, Lemma4PdaEmbedding) {
  // The equal-a's-and-b's PDA lifted to a PNWA accepts the same nested
  // words — pushdown *word* automata are a special case (§4.2).
  PushdownNwa a = PushdownNwa::FromPda(Pda::EqualAsAndBs(), 2);
  Pda p = Pda::EqualAsAndBs();
  Rng rng(1);
  for (size_t len = 0; len <= 4; ++len) {
    for (const NestedWord& w : EnumerateNestedWords(2, len)) {
      ASSERT_EQ(a.Accepts(w), BalancedAB(w)) << "len " << len;
      ASSERT_EQ(a.Accepts(w), p.AcceptsTagged(w));
    }
  }
  for (int iter = 0; iter < 60; ++iter) {
    NestedWord w = RandomNestedWord(&rng, 2, 5 + rng.Below(10));
    ASSERT_EQ(a.Accepts(w), BalancedAB(w)) << iter;
  }
}

TEST(Pnwa, StackCopyAtHierarchicalCalls) {
  // A hierarchical automaton over {x} that pushes one γ, then at a call
  // copies the stack to both branches: the inside must pop γ and ⊥ (leaf
  // condition), and after the return the stack is intact.
  PushdownNwa a(1, 2);
  StateId start = a.AddState(true);
  StateId ready = a.AddState(true);
  StateId inside = a.AddState(true);
  StateId inside2 = a.AddState(true);
  StateId leaf = a.AddState(true);
  StateId cont = a.AddState(true);
  StateId after = a.AddState(true);
  StateId done = a.AddState(true);
  a.AddInitial(start);
  a.AddPush(start, ready, 1);
  a.AddCall(ready, 0, inside, cont);
  a.AddPop(inside, 1, inside2);   // inside consumes the copy of γ
  a.AddPop(inside2, 0, leaf);     // and the copy of ⊥ (leaf condition)
  a.AddHierReturn(cont, 0, after);
  a.AddPop(after, 1, done);       // the original stack is intact
  a.AddPop(done, 0, done);
  // <x x> : push γ, call copies [⊥ γ] to both; inside drains; return
  // resumes with [⊥ γ]; drain: accept.
  EXPECT_TRUE(a.Accepts(NestedWord({Call(0), Return(0)})));
  // Acceptance is by empty stack with *no* state condition, so the bare
  // pending call also accepts: the linear thread itself drains its copy.
  EXPECT_TRUE(a.Accepts(NestedWord({Call(0)})));
  // Extra internals: no transition.
  EXPECT_FALSE(a.Accepts(NestedWord({Call(0), Internal(0), Return(0)})));
}

TEST(Pnwa, LeafConditionPrunes) {
  // Same automaton but the inside cannot pop ⊥: the leaf configuration is
  // never empty, so nothing is accepted.
  PushdownNwa a(1, 2);
  StateId ready = a.AddState(true);
  StateId inside = a.AddState(true);
  StateId cont = a.AddState(true);
  StateId after = a.AddState(true);
  a.AddInitial(ready);
  a.AddCall(ready, 0, inside, cont);
  a.AddHierReturn(cont, 0, after);
  a.AddPop(after, 0, after);
  // inside keeps its ⊥ copy: rule (b) requires an empty leaf.
  EXPECT_FALSE(a.Accepts(NestedWord({Call(0), Return(0)})));
  EXPECT_TRUE(a.IsEmpty());
}

TEST(Pnwa, Thm10ReductionAgreesWithDpll) {
  Rng rng(7);
  int sat_count = 0;
  for (int trial = 0; trial < 25; ++trial) {
    uint32_t vars = 3 + static_cast<uint32_t>(rng.Below(2));      // 3..4
    uint32_t clauses = 6 + static_cast<uint32_t>(rng.Below(14));  // 6..19
    Cnf cnf = Cnf::Random(&rng, vars, clauses);
    bool sat = DpllSolve(cnf);
    sat_count += sat;
    SatReduction red = ReduceSatToPnwaMembership(cnf);
    ASSERT_EQ(red.pnwa.Accepts(red.word), sat)
        << "trial " << trial << " v=" << vars << " c=" << clauses;
  }
  EXPECT_GT(sat_count, 1);
  EXPECT_LT(sat_count, 24);  // the sampler hits both outcomes
}

TEST(Pnwa, Thm10KnownInstances) {
  // (x ∨ y) ∧ (¬x ∨ ¬y): satisfiable.
  Cnf sat;
  sat.num_vars = 2;
  sat.clauses = {{{0, true}, {1, true}}, {{0, false}, {1, false}}};
  SatReduction r1 = ReduceSatToPnwaMembership(sat);
  EXPECT_TRUE(r1.pnwa.Accepts(r1.word));
  // x ∧ ¬x: unsatisfiable.
  Cnf unsat;
  unsat.num_vars = 1;
  unsat.clauses = {{{0, true}}, {{0, false}}};
  SatReduction r2 = ReduceSatToPnwaMembership(unsat);
  EXPECT_FALSE(r2.pnwa.Accepts(r2.word));
  // The reduction only accepts its designated word shape.
  EXPECT_FALSE(r1.pnwa.Accepts(NestedWord({Internal(0)})));
}

TEST(Pnwa, EmptinessAgreesWithInterpreterOnSmallAutomata) {
  Rng rng(11);
  int nonempty = 0;
  for (int trial = 0; trial < 30; ++trial) {
    PushdownNwa a(1, 2);
    const size_t n = 4;
    for (size_t i = 0; i < n; ++i) {
      a.AddState(/*hierarchical=*/i >= 2);  // two linear, two hier
    }
    a.AddInitial(static_cast<StateId>(rng.Below(n)));
    for (int t = 0; t < 7; ++t) {
      StateId q = static_cast<StateId>(rng.Below(n));
      StateId q2 = static_cast<StateId>(rng.Below(n));
      switch (rng.Below(5)) {
        case 0:
          if (!a.is_hier(q) || a.is_hier(q2)) a.AddInternal(q, 0, q2);
          break;
        case 1: {
          StateId q3 = static_cast<StateId>(rng.Below(n));
          if (!a.is_hier(q) || (a.is_hier(q2) && a.is_hier(q3))) {
            a.AddCall(q, 0, q2, q3);
          }
          break;
        }
        case 2:
          if (!a.is_hier(q)) {
            a.AddLinearReturn(q, 0, q2);
          } else if (a.is_hier(q2)) {
            a.AddHierReturn(q, 0, q2);
          }
          break;
        case 3:
          a.AddPush(q, q2, 1);
          break;
        default:
          a.AddPop(q, rng.Below(2) ? 1 : 0, q2);
      }
    }
    bool empty = a.IsEmpty();
    // Brute-force: any word of length ≤ 4 accepted?
    bool found = false;
    for (size_t len = 0; len <= 4 && !found; ++len) {
      for (const NestedWord& w : EnumerateNestedWords(1, len)) {
        if (a.Accepts(w)) {
          found = true;
          break;
        }
      }
    }
    if (found) {
      ++nonempty;
      ASSERT_FALSE(empty) << "trial " << trial
                          << ": accepts a short word but claimed empty";
    }
    // The converse (empty claimed nonempty) needs longer witnesses than we
    // can enumerate; covered by the structured cases below.
  }
  EXPECT_GT(nonempty, 3);
}

TEST(Pnwa, EmptinessStructuredCases) {
  // Nonempty: the Thm 10 reduction for a satisfiable formula.
  Cnf sat;
  sat.num_vars = 2;
  sat.clauses = {{{0, true}, {1, true}}};
  SatReduction r = ReduceSatToPnwaMembership(sat);
  EXPECT_FALSE(r.pnwa.IsEmpty());
  // Empty: unsatisfiable core x ∧ ¬x — *the reduction automaton* can
  // still accept nothing, since every word it could accept encodes a
  // satisfying assignment.
  Cnf unsat;
  unsat.num_vars = 1;
  unsat.clauses = {{{0, true}}, {{0, false}}};
  SatReduction r2 = ReduceSatToPnwaMembership(unsat);
  EXPECT_TRUE(r2.pnwa.IsEmpty());
  // Lemma 4 lift of the balanced-ab PDA is nonempty (ε is balanced).
  EXPECT_FALSE(PushdownNwa::FromPda(Pda::EqualAsAndBs(), 2).IsEmpty());
}

TEST(Pnwa, PendingEdgesAtTopLevel) {
  // Linear-mode pending returns and calls work through the PNWA too.
  PushdownNwa a(1, 2);
  StateId q0 = a.AddState(false);
  StateId q1 = a.AddState(false);
  StateId q2 = a.AddState(false);
  StateId done = a.AddState(false);
  a.AddInitial(q0);
  a.AddLinearReturn(q0, 0, q1);  // pending return
  a.AddCall(q1, 0, q2, q0);      // pending call
  a.AddPop(q2, 0, done);
  EXPECT_TRUE(a.Accepts(NestedWord({Return(0), Call(0)})));
  EXPECT_FALSE(a.Accepts(NestedWord({Call(0), Return(0)})));
  EXPECT_FALSE(a.IsEmpty());
}

}  // namespace
}  // namespace nw
