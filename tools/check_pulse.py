#!/usr/bin/env python3
"""check_pulse — validator for the two NWPulse wire formats.

Subcommands::

    check_pulse.py prom FILE      # Prometheus/OpenMetrics text exposition
    check_pulse.py series FILE    # --stats-interval JSONL time series
    check_pulse.py --selftest     # fixture-based selftest

``prom`` parses an ``nwquery --stats=prom`` dump: every series line must
match the exposition grammar (metric and label names, escaped label
values), every series must follow its family's ``# HELP``/``# TYPE``
pair, histogram ``le`` bounds must be strictly increasing with
non-decreasing cumulative counts, and ``_count`` must equal the ``+Inf``
bucket.

``series`` parses a ``--stats-interval`` JSONL file: every line is one
valid JSON object, the first is the ``pulse_start`` header (with a
``version`` and the baseline totals), ``seq`` increases by one per tick,
every per-interval delta is a non-negative number, and the baseline plus
the sum of interval deltas reproduces the final tick's cumulative totals
EXACTLY — the snapshot/delta engine's accounting identity.

Exit codes: 0 = valid, 1 = violation, 2 = unusable input.
"""

import argparse
import json
import math
import re
import sys

METRIC_NAME = r"[a-zA-Z_:][a-zA-Z0-9_:]*"
LABEL_NAME = r"[a-zA-Z_][a-zA-Z0-9_]*"
# Label values: escaped backslash/quote/newline, no raw quote.
LABEL_VALUE = r'"(?:[^"\\\n]|\\\\|\\"|\\n)*"'
LABELS = rf"\{{{LABEL_NAME}={LABEL_VALUE}(?:,{LABEL_NAME}={LABEL_VALUE})*\}}"
VALUE = r"[0-9.eE+-]+|\+Inf|-Inf|NaN"
SERIES_RE = re.compile(rf"^({METRIC_NAME})({LABELS})? ({VALUE})$")
HELP_RE = re.compile(rf"^# HELP ({METRIC_NAME}) (.+)$")
TYPE_RE = re.compile(
    rf"^# TYPE ({METRIC_NAME}) (counter|gauge|histogram|summary|untyped)$")
LE_RE = re.compile(r'le="([^"]*)"')
SINK_RE = re.compile(r'sink="((?:[^"\\]|\\.)*)"')

# The keys every pulse tick must carry (the self-describing schema the
# docs pin; a consumer may rely on these being present).
TICK_KEYS = ("type", "seq", "t_us", "interval_us", "totals", "delta",
             "rate", "latency_us", "frozen_hit_rate", "shards", "process")


def family_of(name):
    """Maps a series name to its family: histogram series drop the
    _bucket/_sum/_count suffix, counter series keep _total (the family is
    declared with it)."""
    for suffix in ("_bucket", "_sum", "_count"):
        if name.endswith(suffix):
            return name[: -len(suffix)]
    return name


def check_prom(text):
    """Returns a list of violation messages for an exposition dump."""
    failures = []
    declared = {}  # family -> type
    seen_help = set()
    # (family, sink) -> list of (le, cum) plus sum/count scalars.
    buckets = {}
    counts = {}
    for lineno, line in enumerate(text.splitlines(), 1):
        where = f"line {lineno}"
        if not line:
            continue
        if line.startswith("# HELP "):
            m = HELP_RE.match(line)
            if not m:
                failures.append(f"{where}: malformed HELP: {line!r}")
                continue
            seen_help.add(m.group(1))
            continue
        if line.startswith("# TYPE "):
            m = TYPE_RE.match(line)
            if not m:
                failures.append(f"{where}: malformed TYPE: {line!r}")
                continue
            name = m.group(1)
            if name not in seen_help:
                failures.append(f"{where}: TYPE for {name} precedes HELP")
            if name in declared:
                failures.append(f"{where}: duplicate TYPE for {name}")
            declared[name] = m.group(2)
            continue
        if line.startswith("#"):
            continue  # comments are legal
        m = SERIES_RE.match(line)
        if not m:
            failures.append(f"{where}: malformed series line: {line!r}")
            continue
        name, labels, value = m.group(1), m.group(2) or "", m.group(3)
        fam = family_of(name)
        if fam not in declared:
            failures.append(
                f"{where}: series {name} has no # TYPE declaration")
            continue
        kind = declared[fam]
        if kind == "counter" and not name.endswith("_total") and \
                fam == name:
            failures.append(
                f"{where}: counter series {name} must end in _total")
        if kind == "histogram":
            sink_m = SINK_RE.search(labels)
            sink = sink_m.group(1) if sink_m else ""
            key = (fam, sink)
            if name.endswith("_bucket"):
                le_m = LE_RE.search(labels)
                if not le_m:
                    failures.append(
                        f"{where}: histogram bucket without le: {line!r}")
                    continue
                le = le_m.group(1)
                le_v = math.inf if le == "+Inf" else float(le)
                buckets.setdefault(key, []).append(
                    (lineno, le_v, float(value)))
            elif name.endswith("_count"):
                counts[key] = (lineno, float(value))
    for key, rows in sorted(buckets.items()):
        fam, sink = key
        tag = f'{fam}{{sink="{sink}"}}'
        prev_le, prev_cum = -math.inf, -1.0
        for lineno, le_v, cum in rows:
            if le_v <= prev_le:
                failures.append(
                    f"line {lineno}: {tag}: le {le_v} not increasing")
            if cum < prev_cum:
                failures.append(
                    f"line {lineno}: {tag}: cumulative count decreased")
            prev_le, prev_cum = le_v, cum
        if rows[-1][1] != math.inf:
            failures.append(f"{tag}: missing le=\"+Inf\" bucket")
        if key not in counts:
            failures.append(f"{tag}: buckets without a _count series")
        elif counts[key][1] != rows[-1][2]:
            failures.append(
                f"line {counts[key][0]}: {tag}: _count {counts[key][1]} "
                f"!= +Inf bucket {rows[-1][2]}")
    if not declared:
        failures.append("no metric families declared at all")
    return failures


def check_series(lines):
    """Returns a list of violation messages for a pulse JSONL series."""
    failures = []
    records = []
    for lineno, line in enumerate(lines, 1):
        line = line.strip()
        if not line:
            continue
        try:
            records.append((lineno, json.loads(line)))
        except json.JSONDecodeError as e:
            failures.append(f"line {lineno}: not valid JSON: {e}")
    if failures or not records:
        return failures or ["empty series"]
    lineno, head = records[0]
    if head.get("type") != "pulse_start":
        failures.append(f"line {lineno}: first record must be pulse_start")
        return failures
    if not isinstance(head.get("version"), int):
        failures.append(f"line {lineno}: pulse_start has no int version")
    if "totals" not in head:
        failures.append(f"line {lineno}: pulse_start has no baseline totals")
        return failures
    acc = dict.fromkeys(head["totals"], 0)
    expect_seq = 0
    last = None
    for lineno, rec in records[1:]:
        where = f"line {lineno}"
        if rec.get("type") != "pulse":
            failures.append(f"{where}: unexpected record type "
                            f"{rec.get('type')!r}")
            continue
        for key in TICK_KEYS:
            if key not in rec:
                failures.append(f"{where}: tick missing key {key!r}")
        if rec.get("seq") != expect_seq:
            failures.append(f"{where}: seq {rec.get('seq')} != expected "
                            f"{expect_seq}")
        expect_seq = (rec.get("seq", expect_seq)) + 1
        for key, v in rec.get("delta", {}).items():
            if not isinstance(v, (int, float)) or v < 0:
                failures.append(
                    f"{where}: delta.{key} = {v!r} (negative or non-number)")
            elif key in acc:
                acc[key] += v
        for shard in rec.get("shards", []):
            for k in ("label", "docs", "bytes", "busy_us"):
                if k not in shard:
                    failures.append(f"{where}: shard row missing {k!r}")
        last = (lineno, rec)
    if last is None:
        failures.append("series has a header but no pulse ticks")
        return failures
    lineno, final = last
    for key, baseline in head["totals"].items():
        want = final.get("totals", {}).get(key)
        got = baseline + acc.get(key, 0)
        if want != got:
            failures.append(
                f"line {lineno}: totals.{key}: baseline {baseline} + "
                f"sum-of-deltas {acc.get(key, 0)} != final {want} "
                "(the delta accounting identity is broken)")
    return failures


def selftest():
    checks = 0

    def expect(cond, what):
        nonlocal checks
        checks += 1
        if not cond:
            raise SystemExit(f"check_pulse --selftest: FAILED: {what}")

    good_prom = "\n".join([
        '# HELP nw_docs_total docs',
        '# TYPE nw_docs_total counter',
        'nw_docs_total{sink="main"} 3',
        'nw_docs_total{sink="shard/0"} 2',
        '# HELP nw_lat_us latency',
        '# TYPE nw_lat_us histogram',
        'nw_lat_us_bucket{sink="main",le="100"} 1',
        'nw_lat_us_bucket{sink="main",le="200"} 3',
        'nw_lat_us_bucket{sink="main",le="+Inf"} 3',
        'nw_lat_us_sum{sink="main"} 350',
        'nw_lat_us_count{sink="main"} 3',
        '# HELP nw_info meta',
        '# TYPE nw_info gauge',
        'nw_info{mode="frozen",note="a\\nb"} 1',
    ])
    expect(not check_prom(good_prom), "valid exposition must pass")
    expect(check_prom(good_prom.replace('le="200"', 'le="50"')),
           "non-monotone le must fail")
    expect(check_prom(good_prom.replace('nw_lat_us_count{sink="main"} 3',
                                        'nw_lat_us_count{sink="main"} 4')),
           "_count != +Inf bucket must fail")
    expect(check_prom(good_prom.replace('# TYPE nw_docs_total counter\n',
                                        '')),
           "series without TYPE must fail")
    expect(check_prom('nw_bad{le="} 1'), "malformed line must fail")

    def tick(seq, docs_total, docs_delta):
        return json.dumps({
            "type": "pulse", "seq": seq, "t_us": 100 * (seq + 1),
            "interval_us": 100, "totals": {"engine_docs": docs_total},
            "delta": {"engine_docs": docs_delta},
            "rate": {"docs_per_s": None}, "latency_us": {"count": 0},
            "frozen_hit_rate": None,
            "shards": [{"label": "main", "docs": 0, "bytes": 0,
                        "positions": 0, "busy_us": 0, "utilization": None}],
            "process": {"rss_peak_kb": 1}})

    head = json.dumps({"type": "pulse_start", "version": 1,
                       "interval_ms": 5, "t_us": 0, "labels": ["main"],
                       "totals": {"engine_docs": 10}})
    good = [head, tick(0, 14, 4), tick(1, 17, 3)]
    expect(not check_series(good), "valid series must pass")
    expect(check_series([head, tick(0, 14, 4), tick(1, 18, 3)]),
           "broken accounting identity must fail")
    expect(check_series([head, tick(0, 14, 4), tick(2, 17, 3)]),
           "seq gap must fail")
    expect(check_series([tick(0, 14, 4)]),
           "series without pulse_start must fail")
    expect(check_series([head, '{"type": "pulse", "seq": 0']),
           "truncated JSON line must fail")
    bad_delta = json.loads(tick(1, 17, 3))
    bad_delta["delta"]["engine_docs"] = -3
    expect(check_series([head, tick(0, 14, 4), json.dumps(bad_delta)]),
           "negative delta must fail")

    print(f"check_pulse --selftest: OK ({checks} checks)")
    return 0


def main(argv):
    parser = argparse.ArgumentParser(
        description="Validate NWPulse wire formats (prom / JSONL series).")
    parser.add_argument("mode", nargs="?", choices=["prom", "series"])
    parser.add_argument("file", nargs="?")
    parser.add_argument("--selftest", action="store_true")
    args = parser.parse_args(argv)
    if args.selftest:
        return selftest()
    if not args.mode or not args.file:
        parser.error("expected: prom FILE | series FILE | --selftest")
    try:
        with open(args.file) as f:
            content = f.read()
    except OSError as e:
        print(f"check_pulse: cannot read {args.file}: {e}", file=sys.stderr)
        return 2
    if args.mode == "prom":
        failures = check_prom(content)
    else:
        failures = check_series(content.splitlines())
    for msg in failures:
        print(f"check_pulse: FAIL {msg}")
    if not failures:
        kind = "exposition" if args.mode == "prom" else "series"
        print(f"check_pulse: OK {args.file}: valid {kind}")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
