#!/usr/bin/env python3
"""nwclient — command-line client for the nwqueryd control socket.

Speaks the newline-delimited JSON protocol from ``docs/DAEMON.md`` over
a Unix-domain socket. Subcommands::

    nwclient.py --socket PATH submit [--format F] [--label L] [FILE...]
    nwclient.py --socket PATH admit QUERY
    nwclient.py --socket PATH retire QID
    nwclient.py --socket PATH stats [--raw]
    nwclient.py --socket PATH shutdown

``submit`` sends each FILE (or stdin when no files are given) as one
SUBMIT request and renders the response in nwquery's exact match-line
format::

    <label>\tMATCH@<pos>\tquery[<i>]\t<query text>
    <label>\tno-match\tquery[<i>]\t<query text>

so a daemon transcript diffs byte-for-byte against a one-shot
``nwquery --docs`` run over the same documents — the identity CI's
smoke step checks. The label defaults to the file name (``doc-N`` for
stdin); ``--format`` tags the document (xml | json | trace) and is
otherwise left to the daemon's default.

``stats`` pretty-prints the per-epoch serving metrics (epoch id, hit
rate, latency percentiles); ``--raw`` dumps the STATS JSON payload
verbatim for scripts.

Exit codes: 0 = every request ok, 1 = daemon error response, 2 = usage
or connection failure.
"""

import argparse
import json
import socket
import sys


class ClientError(Exception):
    pass


class Connection:
    """One control-socket connection; one request/response per call."""

    def __init__(self, path):
        try:
            self.sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            self.sock.connect(path)
        except OSError as e:
            raise ClientError(f"cannot connect to {path}: {e}")
        self.file = self.sock.makefile("rw", encoding="utf-8")

    def rpc(self, request):
        self.file.write(json.dumps(request) + "\n")
        self.file.flush()
        line = self.file.readline()
        if not line:
            raise ClientError("daemon closed the connection")
        try:
            response = json.loads(line)
        except json.JSONDecodeError as e:
            raise ClientError(f"unparseable response: {e}: {line!r}")
        if not response.get("ok", False):
            raise ClientError(response.get("error", "unknown daemon error"))
        return response

    def close(self):
        try:
            self.file.close()
            self.sock.close()
        except OSError:
            pass


def render_match_lines(label, response, out):
    """nwquery's per-document report, reconstructed from a SUBMIT response."""
    for i, r in enumerate(response["results"]):
        verdict = f"MATCH@{r['pos']}" if r["match"] else "no-match"
        out.write(f"{label}\t{verdict}\tquery[{i}]\t{r['query']}\n")


def cmd_submit(conn, args):
    docs = []
    if args.files:
        for path in args.files:
            try:
                with open(path, "r", encoding="utf-8") as f:
                    text = f.read()
            except OSError as e:
                raise ClientError(f"cannot read {path}: {e}")
            docs.append((args.label or path, text))
    else:
        docs.append((args.label or "doc-0", sys.stdin.read()))
    for label, text in docs:
        request = {"op": "SUBMIT", "doc": text, "label": label}
        if args.format:
            request["format"] = args.format
        response = conn.rpc(request)
        render_match_lines(label, response, sys.stdout)
    return 0


def cmd_admit(conn, args):
    response = conn.rpc({"op": "ADMIT", "query": args.query})
    print(f"admitted qid={response['qid']} epoch={response['epoch']} "
          f"queries={response['queries']}")
    return 0


def cmd_retire(conn, args):
    response = conn.rpc({"op": "RETIRE", "qid": args.qid})
    print(f"retired qid={args.qid} epoch={response['epoch']} "
          f"queries={response['queries']}")
    return 0


def cmd_stats(conn, args):
    response = conn.rpc({"op": "STATS"})
    stats = response["stats"]
    if args.raw:
        json.dump(stats, sys.stdout)
        sys.stdout.write("\n")
        return 0
    kind = "refreshed" if stats["refreshed"] else "cold"
    print(f"epoch {stats['epoch']} ({kind}): "
          f"{len(stats['queries'])} queries, "
          f"{stats['frozen_states']} frozen states, "
          f"{stats['num_symbols']} symbols")
    for q in stats["queries"]:
        print(f"  qid={q['qid']}  {q['text']}")
    interval = stats["interval"]
    rate = interval["hit_rate"]
    rate_text = "n/a (no traffic)" if rate is None else f"{rate:.4f}"
    print(f"interval: {interval['documents']} docs, "
          f"{interval['positions']} positions, hit rate {rate_text}, "
          f"doc p50 {interval['doc_p50_us']}us "
          f"p99 {interval['doc_p99_us']}us")
    lifetime = stats["lifetime"]
    print(f"lifetime: {lifetime['requests']} requests, "
          f"{lifetime['documents']} docs, "
          f"{lifetime['admissions']} admissions, "
          f"{lifetime['retirements']} retirements, "
          f"{lifetime['refreshes']} refreshes, "
          f"admit p99 {lifetime['admit_p99_us']}us")
    return 0


def cmd_shutdown(conn, args):
    conn.rpc({"op": "SHUTDOWN"})
    print("shutdown acknowledged")
    return 0


def main(argv=None):
    parser = argparse.ArgumentParser(prog="nwclient.py", description=__doc__)
    parser.add_argument("--socket", required=True,
                        help="nwqueryd control-socket path")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("submit", help="evaluate documents")
    p.add_argument("files", nargs="*", metavar="FILE",
                   help="documents (stdin when omitted)")
    p.add_argument("--format", choices=["xml", "json", "trace"],
                   help="input format tag (daemon default when omitted)")
    p.add_argument("--label", help="report label (default: file name)")
    p.set_defaults(func=cmd_submit)

    p = sub.add_parser("admit", help="admit a query online")
    p.add_argument("query", metavar="QUERY")
    p.set_defaults(func=cmd_admit)

    p = sub.add_parser("retire", help="retire a query by admission id")
    p.add_argument("qid", type=int, metavar="QID")
    p.set_defaults(func=cmd_retire)

    p = sub.add_parser("stats", help="per-epoch serving metrics")
    p.add_argument("--raw", action="store_true",
                   help="dump the STATS JSON payload verbatim")
    p.set_defaults(func=cmd_stats)

    p = sub.add_parser("shutdown", help="graceful daemon shutdown")
    p.set_defaults(func=cmd_shutdown)

    args = parser.parse_args(argv)
    try:
        conn = Connection(args.socket)
    except ClientError as e:
        print(f"nwclient: {e}", file=sys.stderr)
        return 2
    try:
        return args.func(conn, args)
    except ClientError as e:
        print(f"nwclient: {e}", file=sys.stderr)
        return 1
    finally:
        conn.close()


if __name__ == "__main__":
    sys.exit(main())
