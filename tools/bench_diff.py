#!/usr/bin/env python3
"""bench_diff — the bench regression watchdog.

Compares a current ``bench_* --report=json`` report against a committed
baseline and classifies every metric delta:

* **structural** metrics (state counts, minimization ratios, hit rates —
  anything deterministic across hosts) hard-fail beyond ``--tolerance``;
  a structural drift means the code changed behavior, not that the
  machine was noisy.
* **timing** metrics (any key containing ``_ms``, ``speedup``, or
  ``overhead``) warn beyond ``--timing-tolerance`` and fail only under
  ``--fail-on-timing`` — wall-clock numbers from shared CI runners are
  advisory, and the host fingerprint decides whether they are even
  comparable (differing compiler/build_type/os skips timing entirely).

Modes::

    bench_diff.py baseline.json current.json     # compare two reports
    bench_diff.py --shape baseline.json current.json
                                                 # key sets only: did the
                                                 # report SHAPE change?
    bench_diff.py --trajectory BENCH_trajectory.json
                                                 # sanity-check the log
    bench_diff.py --selftest                     # fixture-based selftest

``--shape`` is the baseline-regeneration gate: it ignores every value and
fails only when the metric key sets differ — exactly the condition under
which ``tools/baselines/`` must be regenerated (and the only one; value
drift alone never justifies moving a baseline).

Exit codes: 0 = clean (warnings allowed), 1 = regression, 2 = unusable
input (missing file, mismatched bench/quick mode, bad JSON).
"""

import argparse
import json
import sys

TIMING_MARKERS = ("_ms", "speedup", "overhead")

# Keys a report's host object must agree on before timing numbers are
# comparable at all. hardware_threads is deliberately absent: thread
# counts change the *_ms values but the benches sweep fixed thread grids,
# so keys still line up and structural metrics stay comparable.
HOST_CONFIG_KEYS = ("compiler", "build_type", "os")


def is_timing(key):
    return any(marker in key for marker in TIMING_MARKERS)


def load_report(path):
    try:
        with open(path) as f:
            report = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        raise SystemExit(f"bench_diff: cannot read {path}: {e}")
    for key in ("bench", "metrics"):
        if key not in report:
            raise SystemExit(f"bench_diff: {path} has no '{key}' key")
    return report


def rel_delta(base, cur):
    if base == 0:
        return 0.0 if cur == 0 else float("inf")
    return (cur - base) / abs(base)


def compare(baseline, current, tolerance, timing_tolerance, fail_on_timing,
            out=sys.stdout):
    """Returns (failures, warnings) as lists of message strings."""
    failures, warnings = [], []
    if baseline["bench"] != current["bench"]:
        raise SystemExit(
            f"bench_diff: bench mismatch: baseline is "
            f"{baseline['bench']!r}, current is {current['bench']!r}")
    if baseline.get("quick") != current.get("quick"):
        raise SystemExit(
            "bench_diff: quick-mode mismatch: compare quick runs with "
            "quick baselines (and full with full)")

    base_host = baseline.get("host", {})
    cur_host = current.get("host", {})
    host_mismatch = [
        k for k in HOST_CONFIG_KEYS
        if base_host.get(k) != cur_host.get(k)
    ]
    timing_comparable = not host_mismatch
    if host_mismatch:
        warnings.append(
            "host fingerprint differs on {}: timing metrics skipped "
            "(baseline {}, current {})".format(
                ",".join(host_mismatch),
                {k: base_host.get(k) for k in host_mismatch},
                {k: cur_host.get(k) for k in host_mismatch}))

    base_metrics = baseline["metrics"]
    cur_metrics = current["metrics"]
    for key in sorted(set(base_metrics) | set(cur_metrics)):
        if key not in cur_metrics:
            failures.append(f"metric disappeared: {key}")
            continue
        if key not in base_metrics:
            warnings.append(f"new metric (no baseline): {key}")
            continue
        base, cur = base_metrics[key], cur_metrics[key]
        if not isinstance(base, (int, float)) or \
                not isinstance(cur, (int, float)):
            # The reports render degenerate ratios (0/0) as null rather
            # than corrupt the JSON; a null where the baseline has a
            # number is structural breakage, not noise.
            failures.append(f"metric {key} is not numeric "
                            f"(baseline {base!r}, current {cur!r})")
            continue
        delta = rel_delta(base, cur)
        if is_timing(key):
            if not timing_comparable:
                continue
            if abs(delta) > timing_tolerance:
                msg = (f"timing {key}: {base:.4f} -> {cur:.4f} "
                       f"({delta:+.1%}, tolerance {timing_tolerance:.0%})")
                (failures if fail_on_timing else warnings).append(msg)
        else:
            if abs(delta) > tolerance:
                failures.append(
                    f"structural {key}: {base:.4f} -> {cur:.4f} "
                    f"({delta:+.1%}, tolerance {tolerance:.2%})")

    for msg in warnings:
        print(f"bench_diff: WARN {msg}", file=out)
    for msg in failures:
        print(f"bench_diff: FAIL {msg}", file=out)
    if not failures and not warnings:
        print(f"bench_diff: OK {current['bench']}: "
              f"{len(cur_metrics)} metrics within tolerance", file=out)
    return failures, warnings


def compare_shape(baseline, current, out=sys.stdout):
    """Key-set-only comparison. Returns failure messages: non-empty iff
    the metric key sets differ, i.e. the committed baseline's shape is
    stale and must be regenerated."""
    failures = []
    if baseline["bench"] != current["bench"]:
        raise SystemExit(
            f"bench_diff: bench mismatch: baseline is "
            f"{baseline['bench']!r}, current is {current['bench']!r}")
    base_keys = set(baseline["metrics"])
    cur_keys = set(current["metrics"])
    for key in sorted(cur_keys - base_keys):
        failures.append(f"shape: new metric {key} has no baseline entry")
    for key in sorted(base_keys - cur_keys):
        failures.append(f"shape: baseline metric {key} no longer reported")
    for msg in failures:
        print(f"bench_diff: FAIL {msg}", file=out)
    if failures:
        print(f"bench_diff: report shape changed — regenerate the "
              f"committed baseline under tools/baselines/ "
              f"({baseline['bench']}.quick.json) in this same PR",
              file=out)
    else:
        print(f"bench_diff: OK {current['bench']}: shape unchanged "
              f"({len(cur_keys)} metrics)", file=out)
    return failures


def check_trajectory(path, out=sys.stdout):
    """Structural sanity of the append-only trajectory log: every entry
    carries pr/host/benches, prs are non-decreasing, metric values are
    numbers. Returns failure messages."""
    try:
        with open(path) as f:
            traj = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        raise SystemExit(f"bench_diff: cannot read {path}: {e}")
    failures = []
    entries = traj.get("entries")
    if not isinstance(entries, list) or not entries:
        return [f"{path}: no entries array"]
    last_pr = None
    for i, entry in enumerate(entries):
        where = f"entries[{i}]"
        for key in ("pr", "host", "benches"):
            if key not in entry:
                failures.append(f"{where}: missing '{key}'")
        pr = entry.get("pr")
        if last_pr is not None and isinstance(pr, int) and pr < last_pr:
            failures.append(f"{where}: pr {pr} < preceding pr {last_pr} "
                            "(the log is append-only)")
        if isinstance(pr, int):
            last_pr = pr
        for bench, metrics in entry.get("benches", {}).items():
            if not isinstance(metrics, dict):
                failures.append(f"{where}: {bench} metrics not an object")
                continue
            for k, v in metrics.items():
                if not isinstance(v, (int, float)):
                    failures.append(f"{where}: {bench}.{k} is not numeric")
    for msg in failures:
        print(f"bench_diff: FAIL {msg}", file=out)
    if not failures:
        print(f"bench_diff: OK {path}: {len(entries)} entries", file=out)
    return failures


def selftest():
    """Fixture-based check of the comparison logic itself, run by ctest."""
    import io

    def report(**over):
        r = {
            "bench": "bench_fixture", "quick": True,
            "host": {"hardware_threads": 1, "compiler": "gcc",
                     "compiler_version": "x", "build_type": "RelWithDebInfo",
                     "os": "linux"},
            "metrics": {"batched_ms@4096": 1.0, "batched_speedup@4096": 6.4,
                        "minimization_ratio": 0.5714,
                        "stats_overhead_ratio": 1.01},
        }
        for k, v in over.items():
            if k in ("bench", "quick"):
                r[k] = v
            elif k == "host":
                r["host"] = {**r["host"], **v}
            else:
                r["metrics"] = {**r["metrics"], k: v}
        return r

    checks = 0

    def expect(cond, what):
        nonlocal checks
        checks += 1
        if not cond:
            raise SystemExit(f"bench_diff --selftest: FAILED: {what}")

    sink = io.StringIO()
    base = report()

    f, w = compare(base, report(), 0.001, 0.25, False, out=sink)
    expect(not f and not w, "identical reports must be clean")

    # Structural drift beyond tolerance hard-fails; timing drift warns.
    f, w = compare(base, report(minimization_ratio=0.9), 0.001, 0.25, False,
                   out=sink)
    expect(f, "structural drift must fail")
    f, w = compare(base, report(**{"batched_ms@4096": 2.0}), 0.001, 0.25,
                   False, out=sink)
    expect(not f and w, "timing drift must warn, not fail, by default")
    f, w = compare(base, report(**{"batched_ms@4096": 2.0}), 0.001, 0.25,
                   True, out=sink)
    expect(f, "--fail-on-timing must promote timing drift to failure")

    # Small timing wobble stays inside the default timing tolerance.
    f, w = compare(base, report(**{"batched_ms@4096": 1.1}), 0.001, 0.25,
                   False, out=sink)
    expect(not f and not w, "10% timing wobble must be clean")

    # Cross-config hosts: timing is skipped (warn), structural still bites.
    other_host = report(host={"compiler": "clang"},
                        **{"batched_ms@4096": 50.0})
    f, w = compare(base, other_host, 0.001, 0.25, False, out=sink)
    expect(not f and w, "cross-config timing must be skipped with a warning")
    other_host = report(host={"compiler": "clang"}, minimization_ratio=0.9)
    f, w = compare(base, other_host, 0.001, 0.25, False, out=sink)
    expect(f, "structural drift must fail even across configs")

    # A vanished metric is structural breakage.
    gone = report()
    del gone["metrics"]["minimization_ratio"]
    f, w = compare(base, gone, 0.001, 0.25, False, out=sink)
    expect(f, "a disappeared metric must fail")
    f, w = compare(base, report(new_metric=1.0), 0.001, 0.25, False, out=sink)
    expect(not f and w, "a new metric must warn only")

    # A null value where the baseline has a number is structural.
    f, w = compare(base, report(minimization_ratio=None), 0.001, 0.25,
                   False, out=sink)
    expect(f, "a null metric must fail")

    # Shape mode: values are ignored, key-set drift is the only failure.
    f = compare_shape(base, report(minimization_ratio=0.9), out=sink)
    expect(not f, "shape mode must ignore value drift")
    f = compare_shape(base, report(new_metric=1.0), out=sink)
    expect(f, "shape mode must fail on a new metric")
    gone = report()
    del gone["metrics"]["minimization_ratio"]
    f = compare_shape(base, gone, out=sink)
    expect(f, "shape mode must fail on a vanished metric")

    # Mismatched bench names / quick modes are unusable input (exit 2).
    for bad in (report(bench="bench_other"), report(quick=False)):
        try:
            compare(base, bad, 0.001, 0.25, False, out=sink)
            expect(False, "mismatched reports must be rejected")
        except SystemExit as e:
            expect(isinstance(e.code, str) and "mismatch" in e.code,
                   "mismatch must exit with a message")

    print(f"bench_diff --selftest: OK ({checks} checks)")
    return 0


def main(argv):
    parser = argparse.ArgumentParser(
        description="Compare bench --report=json output against a baseline.")
    parser.add_argument("reports", nargs="*",
                        help="baseline.json current.json")
    parser.add_argument("--tolerance", type=float, default=0.001,
                        help="relative tolerance for structural metrics "
                             "(default 0.1%%)")
    parser.add_argument("--timing-tolerance", type=float, default=0.25,
                        help="relative tolerance for timing metrics "
                             "(default 25%%)")
    parser.add_argument("--fail-on-timing", action="store_true",
                        help="treat timing drift beyond tolerance as "
                             "failure instead of warning")
    parser.add_argument("--shape", action="store_true",
                        help="compare metric key sets only — the gate "
                             "for regenerating tools/baselines/")
    parser.add_argument("--trajectory", metavar="FILE",
                        help="sanity-check a BENCH_trajectory.json log "
                             "instead of diffing two reports")
    parser.add_argument("--selftest", action="store_true",
                        help="run the built-in fixture selftest")
    args = parser.parse_args(argv)

    if args.selftest:
        return selftest()
    if args.trajectory:
        return 1 if check_trajectory(args.trajectory) else 0
    if len(args.reports) != 2:
        parser.error("expected exactly two reports: baseline.json "
                     "current.json")
    baseline = load_report(args.reports[0])
    current = load_report(args.reports[1])
    if args.shape:
        return 1 if compare_shape(baseline, current) else 0
    failures, _ = compare(baseline, current, args.tolerance,
                          args.timing_tolerance, args.fail_on_timing)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
