// Quickstart: nested words 101 — build the paper's Figure 1 words, inspect
// their structure, and run a first nested word automaton.
//
//   ./build/examples/quickstart
#include <cstdio>

#include "nw/nested_word.h"
#include "nw/ops.h"
#include "nw/text.h"
#include "nwa/families.h"
#include "nwa/nwa.h"
#include "trees/ordered_tree.h"

int main() {
  using namespace nw;

  // --- Nested words: the three samples of Figure 1. -----------------------
  Alphabet sigma;
  NestedWord n1 =
      ParseNestedWord("<a <b a a> <b a b> a> <a b a a>", &sigma).Take();
  NestedWord n2 = ParseNestedWord("a a> <b a a> <a <a", &sigma).Take();
  NestedWord n3 = ParseNestedWord("<a <a a> <b b> a>", &sigma).Take();

  auto describe = [&](const char* name, const NestedWord& n) {
    Matching m(n);
    std::printf("%s = %s\n", name, FormatNestedWord(n, sigma).c_str());
    std::printf("  length=%zu depth=%zu well-matched=%d rooted=%d "
                "pending-calls=%zu pending-returns=%zu\n",
                n.size(), n.Depth(), n.IsWellMatched(), n.IsRooted(),
                m.pending_calls(), m.pending_returns());
  };
  describe("n1", n1);
  describe("n2", n2);
  describe("n3", n3);

  // n3 is a tree word: decode it back to the ordered tree a(a(),b()).
  OrderedTree t = NestedWordToTree(n3).Take();
  std::printf("n3 decodes to the ordered tree: %s\n",
              FormatTree(t, sigma).c_str());

  // --- Word operations (§2.4). --------------------------------------------
  NestedWord pre = Prefix(n1, 3);
  NestedWord suf = Suffix(n1, 3);
  std::printf("prefix(n1,3) = %s   (note the pending call)\n",
              FormatNestedWord(pre, sigma).c_str());
  std::printf("suffix(n1,3) = %s   (note the pending return)\n",
              FormatNestedWord(suf, sigma).c_str());
  std::printf("concat(prefix,suffix) == n1: %d\n",
              Concat(pre, suf) == n1);
  std::printf("reverse(n3) = %s\n",
              FormatNestedWord(Reverse(n3), sigma).c_str());

  // --- A first automaton: Theorem 3's path-language acceptor. -------------
  // L = { path(w) : w ∈ {a,b}^4 }: O(s) NWA states where every word
  // automaton needs 2^s.
  Nwa acceptor = Thm3PathNwa(4);
  std::printf("\nThm3 NWA over {a,b}, s=4: %zu states, %zu transitions\n",
              acceptor.num_states(), acceptor.NumTransitions());
  NestedWord member = NestedWord::Path({0, 1, 1, 0});
  NestedWord not_member = NestedWord::Path({0, 1, 1});
  std::printf("accepts path(abba) = %d, accepts path(abb) = %d\n",
              acceptor.Accepts(member), acceptor.Accepts(not_member));

  // Streaming: feed symbol by symbol, watch the stack.
  NwaRunner runner(acceptor);
  for (const TaggedSymbol& ts : member.tagged()) runner.Feed(ts);
  std::printf("streamed run: accepting=%d, peak stack depth=%zu\n",
              runner.Accepting(), runner.MaxStackDepth());
  return 0;
}
