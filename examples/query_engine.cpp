// NWQuery end to end: parse a bank of path queries, compile each to a
// deterministic NWA, and evaluate all of them over one SAX stream in a
// single pass with the batched QueryEngine — the query layer on top of
// the paper's XML application (§1, §2.2, §3.2).
//
//   ./build/example_query_engine
#include <cstdio>
#include <string>
#include <vector>

#include "query/compile.h"
#include "query/engine.h"
#include "query/nwquery.h"
#include "xml/xml.h"

int main() {
  using namespace nw;

  const char* query_texts[] = {
      "/catalog/book",               // child step
      "//title",                     // descendant step
      "/catalog//price",             // mixed axes
      "/catalog/*/title",            // wildcard step
      "title then review",           // document order
      "depth >= 3",                  // depth guard
      "/catalog/book and not //dvd", // boolean combination
      "//review or //rating",
  };

  // Phase 1: parse (element names intern into the shared alphabet).
  Alphabet sigma;
  std::vector<Query> queries;
  for (const char* text : query_texts) {
    Result<Query> q = ParseQuery(text, &sigma);
    if (!q.ok()) {
      std::printf("parse error: %s\n", q.status().message().c_str());
      return 1;
    }
    queries.push_back(q.Take());
  }

  // Phase 2: close the symbol space and compile each query.
  sigma.Intern("#text");
  Symbol other = sigma.Intern("%other");
  std::vector<Nwa> compiled;
  for (const Query& q : queries) {
    compiled.push_back(CompileQuery(q, sigma.size()));
    std::printf("compiled %-30s -> %zu states, %zu transitions\n",
                FormatQuery(q, sigma).c_str(), compiled.back().num_states(),
                compiled.back().NumTransitions());
  }

  // Phase 3: one streaming pass evaluates the whole bank.
  QueryEngine engine(sigma.size());
  engine.set_other_symbol(other);
  for (const Nwa& a : compiled) engine.Add(&a);

  const std::string doc =
      "<catalog>"
      "  <book><title>Nested Words</title><price>30</price></book>"
      "  <book><title>Tree Automata</title></book>"
      "  <review>great</review>"
      "</catalog>";
  std::vector<bool> results = engine.RunAll(doc, &sigma);

  std::printf("\nresults (one traversal for %zu queries):\n",
              engine.num_queries());
  for (size_t i = 0; i < engine.num_queries(); ++i) {
    std::printf("  %-30s %s\n", query_texts[i],
                results[i] ? "MATCH" : "no match");
  }
  std::printf("traversals=%zu peak_stack_frames=%zu resident_states=%zu\n",
              engine.traversals(), engine.MaxStackDepth(),
              engine.ResidentStates());

  // Malformed input stays first-class: truncate the document mid-element.
  const std::string broken = doc.substr(0, doc.find("</book>"));
  std::vector<bool> r = engine.RunAll(broken, &sigma);
  std::printf("\ntruncated document: //title still %s\n",
              r[1] ? "MATCHES" : "does not match");
  return 0;
}
