// Annotated linguistic data as nested words — the paper's other headline
// domain (§1): a sentence is the linear word sequence; the parse into
// syntactic categories is the hierarchical structure. Nested words keep
// *both* orders first-class, so one can run word-level queries (linear
// patterns) and tree-level edits (Insert, subword extraction) on the same
// object.
//
//   ./build/examples/linguistics
#include <cstdio>

#include "nw/ops.h"
#include "nw/text.h"
#include "nwa/nwa.h"
#include "trees/ordered_tree.h"

int main() {
  using namespace nw;
  Alphabet sigma;

  // "the cat saw a dog" with an S(NP(det,n), VP(v, NP(det,n))) parse.
  // Word tokens are internal positions; category brackets are calls and
  // returns.
  NestedWord sent =
      ParseNestedWord(
          "<S <NP det n NP> <VP v <NP det n NP> VP> S>", &sigma)
          .Take();
  std::printf("sentence: %s\n", FormatNestedWord(sent, sigma).c_str());
  std::printf("length=%zu (tokens + brackets), parse depth=%zu\n",
              sent.size(), sent.Depth());

  // Linear query: some determiner is eventually followed by a verb —
  // a plain word-automaton query over the token sequence that a tree
  // model would have to thread through the hierarchy.
  Symbol det = sigma.Find("det");
  Symbol v = sigma.Find("v");
  Nwa q(sigma.size());
  StateId s0 = q.AddState(false);
  StateId s1 = q.AddState(false);
  StateId s2 = q.AddState(true);
  q.set_initial(s0);
  for (Symbol c = 0; c < sigma.size(); ++c) {
    q.SetInternal(s0, c, c == det ? s1 : s0);
    q.SetInternal(s1, c, c == v ? s2 : s1);
    q.SetInternal(s2, c, s2);
    // Brackets don't affect the token-order query: calls and returns are
    // state-preserving no-ops (a flat automaton).
    q.SetCall(s0, c, s0, s0);
    q.SetCall(s1, c, s1, s0);
    q.SetCall(s2, c, s2, s0);
    q.SetReturn(s0, s0, c, s0);
    q.SetReturn(s1, s0, c, s1);
    q.SetReturn(s2, s0, c, s2);
  }
  std::printf("query 'det ... v' over the token order: %d\n",
              q.Accepts(sent));

  // Tree operation via word operation: insert an adverb phrase after
  // every verb token (§2.4 Insert) — a tree edit done with splicing.
  NestedWord advp = ParseNestedWord("<AdvP adv AdvP>", &sigma).Take();
  NestedWord edited = Insert(sent, v, advp);
  std::printf("after Insert(., v, AdvP): %s\n",
              FormatNestedWord(edited, sigma).c_str());
  std::printf("edited parse is still well-matched: %d\n",
              edited.IsWellMatched());

  // Fragment extraction: the verb phrase as a *subword* — cut edges
  // become pending, which is precisely how a partial constituent looks.
  // Locate the VP call and its return by scanning.
  Matching m(sent);
  for (size_t i = 0; i < sent.size(); ++i) {
    if (sent.kind(i) == Kind::kCall && sent.symbol(i) == sigma.Find("VP")) {
      NestedWord vp = Subword(sent, i, static_cast<size_t>(m.partner(i)) + 1);
      std::printf("VP constituent: %s\n",
                  FormatNestedWord(vp, sigma).c_str());
      NestedWord cut = Subword(sent, i + 2, sent.size());
      std::printf("a mid-constituent suffix (pending returns appear): %s\n",
                  FormatNestedWord(cut, sigma).c_str());
      break;
    }
  }
  return 0;
}
