// XML querying with nested word automata — the paper's motivating
// application (§1): SAX streams are nested words "without preprocessing",
// and NWAs evaluate both linear-order and hierarchical queries in one
// streaming pass with memory bounded by document depth.
//
//   ./build/examples/xml_queries
#include <cstdio>
#include <string>

#include "nwa/nwa.h"
#include "xml/xml.h"

int main() {
  using namespace nw;

  const std::string doc =
      "<catalog>"
      "  <book><title>Nested Words</title><price>30</price></book>"
      "  <book><title>Tree Automata</title></book>"
      "  <review>great</review>"
      "</catalog>";

  Alphabet sigma;
  sigma.Intern("#text");
  NestedWord n = XmlToNestedWord(doc, &sigma);
  std::printf("document: %zu positions, depth %zu, well-formed: %d\n",
              n.size(), n.Depth(), n.IsWellMatched());

  // Query 1 (linear order, the introduction's Σ*p1Σ*...pnΣ*): a <title>
  // opens somewhere before a <review>.
  Nwa q1 = PatternOrderQuery({sigma.Find("title"), sigma.Find("review")},
                             sigma.size());
  std::printf("title ... review in document order: %d  (query: %zu states)\n",
              q1.Accepts(n), q1.num_states());

  // Query 2 (hierarchical): the document nests at least 3 levels deep.
  Nwa q2 = MinDepthQuery(3, sigma.size());
  std::printf("depth >= 3: %d\n", q2.Accepts(n));

  // Query 3: well-formedness itself — tag names must match.
  Nwa q3 = WellFormedChecker(sigma.size());
  std::printf("well-formed: %d\n", q3.Accepts(n));

  // Malformed input is still a nested word and still queryable — this is
  // the representational point the paper makes against tree models.
  const std::string broken = "<catalog><book><title>x</book></catalog>";
  Alphabet sigma2 = sigma;
  NestedWord bad = XmlToNestedWord(broken, &sigma2);
  std::printf("\nbroken document tokenizes to %zu positions, "
              "well-formed: %d, query-1 still evaluable: %d\n",
              bad.size(), q3.Accepts(bad), q1.Accepts(bad));

  // Streaming a synthetic 1MB-ish document: memory = depth, not length.
  Rng rng(1);
  std::string big = RandomXmlDocument(&rng, sigma, 100000, 12);
  Alphabet sigma3 = sigma;
  NestedWord bign = XmlToNestedWord(big, &sigma3);
  NwaRunner r(q3);
  r.Run(bign);
  std::printf("\nsynthetic doc: %zu positions; runner peak stack = %zu "
              "(document depth %zu)\n",
              bign.size(), r.MaxStackDepth(), bign.Depth());
  return 0;
}
