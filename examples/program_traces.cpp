// Verifying structured program traces — the application that motivated
// nested words in the first place (the paper's [4]): an execution is a
// linear event stream whose calls and returns impose the procedure
// nesting. NWAs check stack-sensitive properties in one pass; traces of
// crashed programs (pending calls) and log suffixes (pending returns)
// remain analyzable.
//
//   ./build/examples/program_traces
#include <cstdio>

#include "nw/text.h"
#include "nwa/nwa.h"

using namespace nw;

// Property: every `acquire` is matched by a `release` before the enclosing
// procedure returns (a lock discipline). Events: call/return positions are
// procedure frames; acquire/release are internal events.
Nwa LockDiscipline(Symbol acquire, Symbol release, size_t num_symbols) {
  // States: lock free / held; frames remember the state at call time so a
  // procedure cannot return while holding a lock it acquired.
  Nwa a(num_symbols);
  StateId free_q = a.AddState(true);
  StateId held = a.AddState(false);
  StateId h_free = a.AddState(false);
  StateId h_held = a.AddState(false);
  a.set_initial(free_q);
  for (Symbol s = 0; s < num_symbols; ++s) {
    if (s == acquire) {
      a.SetInternal(free_q, s, held);  // double-acquire: no transition
      continue;
    }
    if (s == release) {
      a.SetInternal(held, s, free_q);
      continue;
    }
    a.SetInternal(free_q, s, free_q);
    a.SetInternal(held, s, held);
    // Frames carry the lock state; the return requires the same state —
    // i.e., a frame must release what it acquired.
    a.SetCall(free_q, s, free_q, h_free);
    a.SetCall(held, s, held, h_held);
    a.SetReturn(free_q, h_free, s, free_q);
    a.SetReturn(held, h_held, s, held);
    // Pending returns (trace suffixes) read the hierarchical initial
    // (= free_q): judge them as if the unseen caller held no lock.
    a.SetReturn(free_q, free_q, s, free_q);
    a.SetReturn(held, free_q, s, held);
  }
  return a;
}

int main() {
  Alphabet sigma;
  Symbol acq = sigma.Intern("acquire");
  Symbol rel = sigma.Intern("release");
  sigma.Intern("main");
  sigma.Intern("f");
  sigma.Intern("g");
  sigma.Intern("work");

  Nwa lock = LockDiscipline(acq, rel, sigma.size());

  auto check = [&](const char* label, const char* trace) {
    auto n = ParseNestedWord(trace, &sigma);
    if (!n.ok()) {
      std::printf("%-12s parse error: %s\n", label, n.status().message().c_str());
      return;
    }
    std::printf("%-12s %-58s -> %s\n", label, trace,
                lock.Accepts(*n) ? "OK" : "VIOLATION");
  };

  // A clean run: f acquires and releases inside its own frame.
  check("clean", "<main <f acquire work release f> <g work g> main>");
  // Violation: f returns while holding the lock.
  check("leak", "<main <f acquire work f> release main>");
  // Violation: release without acquire.
  check("underflow", "<main release main>");
  // Crashed program: the trace ends mid-execution (pending calls). The
  // property is still checkable on the prefix.
  check("crashed", "<main <f acquire work release <g work");
  // Log suffix: we attached mid-run, so returns of unseen calls appear as
  // pending returns.
  check("suffix", "acquire work f> release main>");

  std::printf("\n(The 'suffix' line shows the modeling choice: pending"
              "\n returns read the automaton's initial state, so a suffix"
              "\n is judged as if the unseen prefix were lock-free.)\n");
  return 0;
}
