// E-OPT — the NWOpt optimizer subsystem's two headline claims:
//
//  1. State reduction: the PR-1 compiler round-trips boolean connectives
//     through Nnwa closure + determinization and blows `not`-heavy
//     queries up to hundreds of states; algebraic rewrites and congruence
//     minimization win back the succinctness (acceptance bar: ≥5× on the
//     `not`-heavy family after minimization, pinned by tests/opt_test.cc).
//  2. Shared-bank stepping: compiling the whole bank into one product
//     automaton lets the engine step ONE transition table per position
//     instead of K; the throughput table sweeps K ∈ {1, 16, 64} against
//     the struct-of-arrays path (acceptance bar: measurably faster at
//     K = 16).
#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>
#include <vector>

#include "obs/bench_report.h"
#include "opt/bank.h"
#include "opt/minimize.h"
#include "opt/pipeline.h"
#include "opt/rewrite.h"
#include "query/compile.h"
#include "query/engine.h"
#include "query/nwquery.h"
#include "support/rng.h"
#include "support/stopwatch.h"
#include "support/table.h"
#include "xml/xml.h"

namespace {

using namespace nw;

// The `not`-heavy family of the tests' regression, plus friends: every
// query pays the ComplementN → Determinize round trip at least once.
const char* kNotHeavyFamily[] = {
    "not //b",
    "not (a then b)",
    "not (/a/b or /a/c)",
    "not (//b or (a then b))",
    "not (//a and //b and //c)",
    "not (/a/b and not //c) and not //d",
};

/// States-before/after and per-stage compile time for each family member.
void MinimizationTable(const BenchConfig& cfg, BenchReport* report) {
  Table t("E-OPT: rewrite + minimization on the not-heavy family");
  t.Header({"query", "compiled", "rewritten", "minimized", "all", "ratio",
            "compile_ms", "opt_ms"});
  size_t total_before = 0, total_after = 0;
  for (const char* text : kNotHeavyFamily) {
    Alphabet sigma;
    for (const char* n : {"a", "b", "c", "d", "#text", "%other"}) {
      sigma.Intern(n);
    }
    Query q = ParseQuery(text, &sigma).Take();
    Stopwatch sw;
    Nwa compiled = CompileQuery(q, sigma.size());
    double compile_ms = sw.ElapsedMs();
    sw.Reset();
    Query rewritten = RewriteQuery(q);
    Nwa rewritten_nwa = CompileQuery(rewritten, sigma.size());
    MinimizeResult min_only = MinimizeNwa(compiled);
    MinimizeResult all = MinimizeNwa(rewritten_nwa);
    double opt_ms = sw.ElapsedMs();
    total_before += compiled.num_states();
    total_after += min_only.states_after;
    t.Row({text, Table::Num(compiled.num_states()),
           Table::Num(rewritten_nwa.num_states()),
           Table::Num(min_only.states_after), Table::Num(all.states_after),
           Table::Dbl(static_cast<double>(compiled.num_states()) /
                          static_cast<double>(min_only.states_after),
                      1),
           Table::Dbl(compile_ms, 1), Table::Dbl(opt_ms, 1)});
  }
  t.Row({"TOTAL", Table::Num(total_before), "-", Table::Num(total_after), "-",
         Table::Dbl(static_cast<double>(total_before) /
                        static_cast<double>(total_after),
                    1),
         "-", "-"});
  if (cfg.print()) t.Print();
  report->Metric("minimization_ratio",
                 static_cast<double>(total_before) /
                     static_cast<double>(total_after));
  // The state-count bar holds at any workload size (it is not a timing),
  // so quick mode asserts it too.
  NW_CHECK(total_before >= 5 * total_after);  // the acceptance bar
}

// ---------------------------------------------------------------------------
// Shared-bank throughput at K ∈ {1, 16, 64}
// ---------------------------------------------------------------------------

/// Query templates instantiated over rotating element names to build banks
/// of any size without inventing 64 artisanal queries.
std::vector<std::string> BankQueries(size_t k) {
  const char* names[] = {"a", "b", "c", "d", "e", "f", "g", "h"};
  constexpr size_t n = sizeof(names) / sizeof(names[0]);
  std::vector<std::string> out;
  for (size_t i = 0; out.size() < k; ++i) {
    const std::string x = names[i % n];
    const std::string y = names[(i + 1 + i / n) % n];
    switch (i % 8) {
      case 0: out.push_back("/" + x); break;
      case 1: out.push_back("//" + y); break;
      case 2: out.push_back("/" + x + "/" + y); break;
      case 3: out.push_back("/" + x + "//" + y); break;
      case 4: out.push_back(x + " then " + y); break;
      case 5: out.push_back("depth >= " + std::to_string(2 + i % 5)); break;
      case 6: out.push_back("//" + x + "/*/" + y); break;
      default: out.push_back("not //" + x); break;
    }
  }
  return out;
}

struct BankWorkload {
  Alphabet alphabet;
  Symbol other;
  std::vector<Query> queries;
  OptimizedBank optimized;  ///< rewrite+min automata, plus the product
  std::string doc;

  BankWorkload(size_t k, size_t positions) {
    for (const std::string& text : BankQueries(k)) {
      queries.push_back(ParseQuery(text, &alphabet).Take());
    }
    alphabet.Intern("#text");
    other = alphabet.Intern("%other");
    // rewrite+min only: the SAME automata feed both engines, and the
    // benchmarks that need a product build it themselves (the SoA
    // benchmark should not pay for an unused one).
    OptOptions opt = OptOptions::All();
    opt.bank = false;
    optimized = OptimizeBank(queries, alphabet.size(), opt);
    Alphabet gen;
    for (const char* n : {"a", "b", "c", "d", "e", "f", "g", "h"}) {
      gen.Intern(n);
    }
    Rng rng(7);
    doc = RandomXmlDocument(&rng, gen, positions, 24);
  }
};

size_t RunEngine(const BankWorkload& w, QueryEngine* engine) {
  Alphabet local = w.alphabet;
  std::vector<bool> results = engine->RunAll(w.doc, &local);
  size_t matched = 0;
  for (bool hit : results) matched += hit;
  return matched;
}

/// Headline: one product step per position vs K SoA steps per position.
void BankThroughputTable(const BenchConfig& cfg, BenchReport* report) {
  Table t("E-OPT: shared-bank product vs per-query SoA stepping "
          "(rewrite+min automata, one warmed pass each)");
  t.Header({"K", "positions", "soa_ms", "bank_ms", "speedup",
            "product_states", "soa_resident", "bank_resident"});
  const size_t positions = cfg.quick ? 1u << 12 : 1u << 15;
  std::vector<size_t> ks{1, 16, 64};
  if (cfg.quick) ks = {1, 16};
  for (size_t k : ks) {
    BankWorkload w(k, positions);
    QueryEngine soa(w.alphabet.size());
    soa.set_other_symbol(w.other);
    for (const OptimizedQuery& q : w.optimized.queries) soa.Add(&q.nwa);
    std::vector<const Nwa*> autos;
    for (const OptimizedQuery& q : w.optimized.queries) {
      autos.push_back(&q.nwa);
    }
    SharedBank product = CompileBank(autos);
    QueryEngine bank(w.alphabet.size());
    bank.set_other_symbol(w.other);
    bank.AddBank(&product);
    // One warm-up pass: correctness cross-check + memoization of the
    // product transitions a stream of this shape touches (steady state is
    // what a standing query bank serves traffic in).
    size_t m1 = RunEngine(w, &soa);
    size_t m2 = RunEngine(w, &bank);
    NW_CHECK(m1 == m2);
    const int kReps = cfg.quick ? 2 : 8;
    Stopwatch sw;
    for (int i = 0; i < kReps; ++i) {
      benchmark::DoNotOptimize(RunEngine(w, &soa));
    }
    double soa_ms = sw.ElapsedMs() / kReps;
    size_t soa_resident = soa.ResidentStates();
    sw.Reset();
    for (int i = 0; i < kReps; ++i) {
      benchmark::DoNotOptimize(RunEngine(w, &bank));
    }
    double bank_ms = sw.ElapsedMs() / kReps;
    t.Row({Table::Num(k), Table::Num(positions), Table::Dbl(soa_ms, 2),
           Table::Dbl(bank_ms, 2), Table::Dbl(soa_ms / bank_ms, 2),
           Table::Num(product.num_states()), Table::Num(soa_resident),
           Table::Num(bank.ResidentStates())});
    report->Metric("bank_speedup@k" + std::to_string(k), soa_ms / bank_ms);
    report->Metric("product_states@k" + std::to_string(k),
                   static_cast<double>(product.num_states()));
  }
  if (cfg.print()) t.Print();
}

void BM_SoAEngine(benchmark::State& state) {
  BankWorkload w(static_cast<size_t>(state.range(0)), 1u << 14);
  QueryEngine engine(w.alphabet.size());
  engine.set_other_symbol(w.other);
  for (const OptimizedQuery& q : w.optimized.queries) engine.Add(&q.nwa);
  for (auto _ : state) {
    benchmark::DoNotOptimize(RunEngine(w, &engine));
  }
  state.SetBytesProcessed(state.iterations() * w.doc.size());
}
BENCHMARK(BM_SoAEngine)->Arg(1)->Arg(16)->Arg(64);

void BM_BankEngine(benchmark::State& state) {
  BankWorkload w(static_cast<size_t>(state.range(0)), 1u << 14);
  std::vector<const Nwa*> autos;
  for (const OptimizedQuery& q : w.optimized.queries) autos.push_back(&q.nwa);
  SharedBank product = CompileBank(autos);
  QueryEngine engine(w.alphabet.size());
  engine.set_other_symbol(w.other);
  engine.AddBank(&product);
  RunEngine(w, &engine);  // warm the memoized product
  for (auto _ : state) {
    benchmark::DoNotOptimize(RunEngine(w, &engine));
  }
  state.SetBytesProcessed(state.iterations() * w.doc.size());
}
BENCHMARK(BM_BankEngine)->Arg(1)->Arg(16)->Arg(64);

}  // namespace

int main(int argc, char** argv) {
  BenchConfig cfg = ParseBenchConfig(&argc, argv);
  BenchReport report("bench_query_optimizer");
  MinimizationTable(cfg, &report);
  BankThroughputTable(cfg, &report);
  if (cfg.report_json) {
    std::printf("%s\n", report.ToJson(cfg.quick).c_str());
    return 0;
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
