// E-THM7 — Theorem 7: every nondeterministic NWA has a joinless
// equivalent with O(s²·|Σ|) states. Measures the construction.
#include <cstdio>

#include "nwa/families.h"
#include "nwa/joinless.h"
#include "support/stopwatch.h"
#include "support/table.h"

int main() {
  using namespace nw;
  Table t("E-THM7 (Theorem 7): joinless construction, bound O(s^2·|Σ|)");
  t.Header({"automaton", "s", "joinless_states", "s^2*|Sigma|+s+1", "ms"});
  auto row = [&](const char* name, const Nnwa& a) {
    Stopwatch sw;
    JoinlessNwa j = JoinlessNwa::FromNnwa(a);
    double ms = sw.ElapsedMs();
    size_t s = a.num_states();
    size_t bound = s * s * a.num_symbols() + s * s + s +
                   s * a.num_symbols() + 2;
    t.Row({name, Table::Num(s), Table::Num(j.num_states()),
           Table::Num(bound), Table::Dbl(ms, 1)});
  };
  row("thm3-s=2", Nnwa::FromNwa(Thm3PathNwa(2)));
  row("thm3-s=3", Nnwa::FromNwa(Thm3PathNwa(3)));
  row("thm3-s=4", Nnwa::FromNwa(Thm3PathNwa(4)));
  row("thm6", Nnwa::FromNwa(Thm6Nwa()));
  row("thm8-s=2", Nnwa::FromNwa(Thm8PathNwa(2)));
  t.Print();
  std::printf("shape check: joinless_states <= the quadratic bound; no "
              "exponential blow-up despite losing the return join.\n");
  return 0;
}
