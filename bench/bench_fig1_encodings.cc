// E-FIG1 — Figure 1 and §2.2–2.3: the encodings nw_w / w_nw and t_nw /
// nw_t are mutually inverse bijections; counting check (3^ℓ·|Σ|^ℓ words of
// length ℓ); encode/decode throughput.
#include <cstdio>

#include "nw/generate.h"
#include "nw/text.h"
#include "support/stopwatch.h"
#include "support/table.h"
#include "trees/ordered_tree.h"

int main() {
  using namespace nw;
  Alphabet sigma;
  Table t("E-FIG1: the three sample nested words of Figure 1");
  t.Header({"word", "length", "depth", "well_matched", "rooted",
            "tree_word"});
  for (const char* text : {"<a <b a a> <b a b> a> <a b a a>",
                           "a a> <b a a> <a <a", "<a <a a> <b b> a>"}) {
    NestedWord n = ParseNestedWord(text, &sigma).Take();
    t.Row({text, Table::Num(n.size()), Table::Num(n.Depth()),
           n.IsWellMatched() ? "yes" : "no", n.IsRooted() ? "yes" : "no",
           n.IsTreeWord() ? "yes" : "no"});
  }
  t.Print();

  // Counting: exactly 3^ℓ·|Σ|^ℓ nested words of length ℓ (§2.2).
  Table t2("E-FIG1: counting nested words (3^l · |Σ|^l over {a,b})");
  t2.Header({"length", "enumerated", "3^l*2^l"});
  for (size_t len = 0; len <= 6; ++len) {
    size_t expected = 1;
    for (size_t i = 0; i < len; ++i) expected *= 6;
    t2.Row({Table::Num(len), Table::Num(EnumerateNestedWords(2, len).size()),
            Table::Num(expected)});
  }
  t2.Print();

  // Round-trip throughput: text format and tree codec.
  Rng rng(1);
  NestedWord big = RandomWellMatched(&rng, 2, 1u << 18);
  Stopwatch sw;
  std::string text = FormatNestedWord(big, Alphabet::Ab());
  double fmt_ms = sw.ElapsedMs();
  sw.Reset();
  Alphabet sigma2 = Alphabet::Ab();
  NestedWord back = ParseNestedWord(text, &sigma2).Take();
  double parse_ms = sw.ElapsedMs();
  NestedWord treeword = RandomTreeWord(&rng, 2, 1u << 16);
  sw.Reset();
  OrderedTree tr = NestedWordToTree(treeword).Take();
  double dec_ms = sw.ElapsedMs();
  sw.Reset();
  NestedWord re = TreeToNestedWord(tr);
  double enc_ms = sw.ElapsedMs();

  Table t3("E-FIG1: codec throughput");
  t3.Header({"operation", "positions", "ms", "Mpos/s", "roundtrip_ok"});
  t3.Row({"format(nw->text)", Table::Num(big.size()), Table::Dbl(fmt_ms, 1),
          Table::Dbl(big.size() / fmt_ms / 1000.0, 1), "-"});
  t3.Row({"parse(text->nw)", Table::Num(big.size()), Table::Dbl(parse_ms, 1),
          Table::Dbl(big.size() / parse_ms / 1000.0, 1),
          back == big ? "yes" : "NO"});
  t3.Row({"nw_t(decode tree)", Table::Num(treeword.size()),
          Table::Dbl(dec_ms, 1),
          Table::Dbl(treeword.size() / dec_ms / 1000.0, 1), "-"});
  t3.Row({"t_nw(encode tree)", Table::Num(re.size()), Table::Dbl(enc_ms, 1),
          Table::Dbl(re.size() / enc_ms / 1000.0, 1),
          re == treeword ? "yes" : "NO"});
  t3.Print();
  return 0;
}
