// E-THM5 — Theorem 5: the flat NWA for the block family has O(s²) states,
// but every bottom-up NWA needs ≥ 2^s. We measure the flat automaton, the
// reachable function-space bottom-up form (Theorem 4 construction), and
// check the lower bound via the proof's fooling-set argument: the 2^(s-1)
// block words per m-class must reach pairwise distinct states.
#include <cstdio>
#include <set>

#include "nwa/families.h"
#include "nwa/transforms.h"
#include "support/stopwatch.h"
#include "support/table.h"

int main() {
  using namespace nw;
  Table t("E-THM5 (Theorem 5): flat NWA vs bottom-up NWA on the block "
          "family");
  t.Header({"s", "flat_states", "bottomup_reachable", "2^s", "build_ms"});
  for (int s = 2; s <= 4; ++s) {
    Nwa flat = Thm5FlatNwa(s);
    Stopwatch sw;
    Nwa bu = ToBottomUp(ToWeak(flat));
    double ms = sw.ElapsedMs();
    t.Row({Table::Num(s), Table::Num(flat.num_states()),
           Table::Num(bu.num_states()), Table::Num(1ull << s),
           Table::Dbl(ms, 1)});
  }
  t.Print();

  // Lower-bound witness (the proof of Theorem 5): after the common prefix
  // <a (<b b>)^m <a, the 2^(s-1) distinct inner block words must leave any
  // correct bottom-up automaton in pairwise distinct states.
  Table t2("E-THM5 lower bound: distinct bottom-up states reached by the "
           "inner block words");
  t2.Header({"s", "words", "distinct_states_reached"});
  for (int s = 2; s <= 4; ++s) {
    Nwa bu = ToBottomUp(ToWeak(Thm5FlatNwa(s)));
    std::set<StateId> reached;
    for (int m = 0; m < s; ++m) {
      for (const NestedWord& w : Thm5Words(s, m)) {
        // State after the inner block sequence, *before* the two closing
        // returns — the proof's distinguishing point.
        NwaRunner r(bu);
        r.Reset();
        for (size_t i = 0; i + 2 < w.size(); ++i) r.Feed(w[i]);
        if (!r.dead()) reached.insert(r.state());
      }
    }
    t2.Row({Table::Num(s), Table::Num(s * (1u << (s - 1))),
            Table::Num(reached.size())});
  }
  t2.Print();
  std::printf("shape check: bottomup_reachable >= 2^s while flat is "
              "~3s^2; the gap is exponential.\n");
  return 0;
}
