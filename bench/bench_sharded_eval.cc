// E-SERVE — the parallel serving layer's headline claim: a frozen,
// immutable shared-bank snapshot lets N threads stream N documents
// concurrently with zero synchronization on the hot path, so aggregate
// corpus throughput scales with cores (acceptance bar: ≥3× at 8 threads
// vs 1 on ≥64 documents with a K=16 bank — asserted only when the host
// actually has ≥8 hardware threads; the table reports the machine).
//
// The frozen-bank hit rate is reported per configuration: the bank is
// trained by streaming the corpus once single-threaded (the steady state
// a standing query bank serves traffic in), so hits are the norm and the
// mutex-guarded overflow path is the exception — the cold-bank row shows
// what serving looks like before any training.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "obs/bench_report.h"
#include "opt/bank.h"
#include "opt/pipeline.h"
#include "query/engine.h"
#include "query/nwquery.h"
#include "serve/frozen_bank.h"
#include "serve/sharded.h"
#include "support/rng.h"
#include "support/stopwatch.h"
#include "support/table.h"
#include "xml/xml.h"

namespace {

using namespace nw;

/// Query templates instantiated over rotating element names (same family
/// as bench_query_optimizer) to build a K-query bank.
std::vector<std::string> BankQueries(size_t k) {
  const char* names[] = {"a", "b", "c", "d", "e", "f", "g", "h"};
  constexpr size_t n = sizeof(names) / sizeof(names[0]);
  std::vector<std::string> out;
  for (size_t i = 0; out.size() < k; ++i) {
    const std::string x = names[i % n];
    const std::string y = names[(i + 1 + i / n) % n];
    switch (i % 8) {
      case 0: out.push_back("/" + x); break;
      case 1: out.push_back("//" + y); break;
      case 2: out.push_back("/" + x + "/" + y); break;
      case 3: out.push_back("/" + x + "//" + y); break;
      case 4: out.push_back(x + " then " + y); break;
      case 5: out.push_back("depth >= " + std::to_string(2 + i % 5)); break;
      case 6: out.push_back("//" + x + "/*/" + y); break;
      default: out.push_back("not //" + x); break;
    }
  }
  return out;
}

struct ServeWorkload {
  Alphabet alphabet;
  Symbol other = Alphabet::kNoSymbol;
  std::vector<Query> queries;
  OptimizedBank bank;  ///< rewrite+min automata plus the shared product
  std::vector<std::string> corpus;
  size_t corpus_bytes = 0;

  ServeWorkload(size_t k, size_t docs, size_t positions_per_doc) {
    for (const std::string& text : BankQueries(k)) {
      queries.push_back(ParseQuery(text, &alphabet).Take());
    }
    alphabet.Intern("#text");
    other = alphabet.Intern("%other");
    bank = OptimizeBank(queries, alphabet.size(), OptOptions::All());
    Alphabet gen;
    for (const char* n : {"a", "b", "c", "d", "e", "f", "g", "h"}) {
      gen.Intern(n);
    }
    Rng rng(11);
    for (size_t d = 0; d < docs; ++d) {
      corpus.push_back(
          RandomXmlDocument(&rng, gen, positions_per_doc, 16));
      corpus_bytes += corpus.back().size();
    }
  }

  /// Trains the shared product by streaming the corpus once (steady
  /// state: a standing bank has long since seen its traffic's shapes).
  void Train() {
    QueryEngine trainer(alphabet.size());
    trainer.set_other_symbol(other);
    trainer.AddBank(bank.shared.get());
    Alphabet local = alphabet;
    for (const std::string& doc : corpus) trainer.RunAll(doc, &local);
  }
};

/// One timed sharded pass; returns positions/ms and fills the stats.
double TimedPass(ServeWorkload* w, const FrozenBank* frozen, size_t threads,
                 ServeStats* stats_out, bool quick) {
  ShardedEvaluator evaluator(frozen, w->alphabet.size(), w->other, threads);
  const int kReps = quick ? 1 : 4;
  // One untimed rep first: workers and overflow banks are constructed
  // fresh inside every EvaluateCorpus call, so this warms only the
  // allocator and CPU caches — the timed reps pay the same per-call
  // setup the production path would.
  evaluator.EvaluateCorpus(w->corpus, w->alphabet, false);
  Stopwatch sw;
  for (int i = 0; i < kReps; ++i) {
    benchmark::DoNotOptimize(
        evaluator.EvaluateCorpus(w->corpus, w->alphabet, false));
  }
  double ms = sw.ElapsedMs() / kReps;
  *stats_out = evaluator.stats();
  return static_cast<double>(stats_out->positions) / ms;
}

/// Headline table: aggregate corpus throughput vs thread count.
void ScalingTable(const BenchConfig& cfg, BenchReport* report) {
  const size_t kQueries = 16;
  const size_t kDocs = cfg.quick ? 16 : 64;
  const size_t kPositions = cfg.quick ? 1u << 10 : 1u << 12;
  ServeWorkload w(kQueries, kDocs, kPositions);
  w.Train();
  FrozenBank frozen = FrozenBank::Freeze(*w.bank.shared);
  Table t("E-SERVE: sharded corpus throughput over a corpus-trained "
          "frozen bank (K=" + std::to_string(kQueries) + ", " +
          std::to_string(kDocs) + " docs, hw_threads=" +
          std::to_string(std::thread::hardware_concurrency()) + ")");
  t.Header({"threads", "corpus_ms", "kpos_per_s", "speedup", "hit_rate",
            "frozen_states"});
  double base_pos_per_ms = 0;
  double speedup_at_8 = 0;
  for (size_t threads : {1u, 2u, 4u, 8u}) {
    ServeStats stats;
    double pos_per_ms = TimedPass(&w, &frozen, threads, &stats, cfg.quick);
    if (threads == 1) base_pos_per_ms = pos_per_ms;
    double speedup = pos_per_ms / base_pos_per_ms;
    if (threads == 8) speedup_at_8 = speedup;
    t.Row({Table::Num(threads),
           Table::Dbl(static_cast<double>(stats.positions) / pos_per_ms, 1),
           Table::Dbl(pos_per_ms, 1), Table::Dbl(speedup, 2),
           Table::Dbl(stats.hit_rate(), 4),
           Table::Num(frozen.num_states())});
    report->Metric("speedup@t" + std::to_string(threads), speedup);
    report->Metric("hit_rate@t" + std::to_string(threads), stats.hit_rate());
  }
  if (cfg.print()) t.Print();
  // The acceptance bar is a statement about parallel hardware; on a
  // smaller host (or a quick run, whose workload is below the scaling
  // regime) the table above is still the honest report.
  if (!cfg.quick && std::thread::hardware_concurrency() >= 8) {
    NW_CHECK(speedup_at_8 >= 3.0);
  } else if (cfg.print()) {
    std::printf("(speedup bar not asserted: quick=%d, host has %u hardware "
                "threads)\n",
                cfg.quick ? 1 : 0, std::thread::hardware_concurrency());
  }
}

/// Cold vs trained: what the overflow path costs before training.
void ColdVsTrainedTable(const BenchConfig& cfg, BenchReport* report) {
  Table t("E-SERVE: frozen-bank coverage — cold (untrained) snapshot vs "
          "corpus-trained snapshot, 8 threads");
  t.Header({"snapshot", "kpos_per_s", "hit_rate", "overflow_steps"});
  const size_t kDocs = cfg.quick ? 16 : 64;
  const size_t kPositions = cfg.quick ? 1u << 10 : 1u << 12;
  {
    ServeWorkload cold(16, kDocs, kPositions);
    FrozenBank frozen = FrozenBank::Freeze(*cold.bank.shared);
    ServeStats stats;
    double pos_per_ms = TimedPass(&cold, &frozen, 8, &stats, cfg.quick);
    t.Row({"cold", Table::Dbl(pos_per_ms, 1),
           Table::Dbl(stats.hit_rate(), 4),
           Table::Num(stats.frozen_misses)});
    report->Metric("cold_hit_rate", stats.hit_rate());
  }
  {
    ServeWorkload trained(16, kDocs, kPositions);
    trained.Train();
    FrozenBank frozen = FrozenBank::Freeze(*trained.bank.shared);
    ServeStats stats;
    double pos_per_ms = TimedPass(&trained, &frozen, 8, &stats, cfg.quick);
    t.Row({"trained", Table::Dbl(pos_per_ms, 1),
           Table::Dbl(stats.hit_rate(), 4),
           Table::Num(stats.frozen_misses)});
    report->Metric("trained_hit_rate", stats.hit_rate());
  }
  if (cfg.print()) t.Print();
}

void BM_ShardedCorpus(benchmark::State& state) {
  static ServeWorkload* w = [] {
    auto* workload = new ServeWorkload(16, 64, 1u << 11);
    workload->Train();
    return workload;
  }();
  static FrozenBank frozen = FrozenBank::Freeze(*w->bank.shared);
  size_t threads = static_cast<size_t>(state.range(0));
  ShardedEvaluator evaluator(&frozen, w->alphabet.size(), w->other, threads);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        evaluator.EvaluateCorpus(w->corpus, w->alphabet, false));
  }
  state.SetBytesProcessed(state.iterations() * w->corpus_bytes);
}
BENCHMARK(BM_ShardedCorpus)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  BenchConfig cfg = ParseBenchConfig(&argc, argv);
  BenchReport report("bench_sharded_eval");
  ScalingTable(cfg, &report);
  ColdVsTrainedTable(cfg, &report);
  if (cfg.report_json) {
    std::printf("%s\n", report.ToJson(cfg.quick).c_str());
    return 0;
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
