// E-CLOS — §3.2 closure constructions: output sizes and timings for the
// boolean, concatenation, star and reversal constructions, with sampled
// semantic spot checks.
#include <cstdio>

#include "nw/generate.h"
#include "nwa/families.h"
#include "nwa/language_ops.h"
#include "support/rng.h"
#include "support/stopwatch.h"
#include "support/table.h"

int main() {
  using namespace nw;
  Nnwa a = Nnwa::FromNwa(Thm3PathNwa(3));
  Nnwa b = Nnwa::FromNwa(Thm6Nwa());

  Table t("E-CLOS (§3.2): closure construction sizes (operands: Thm3 s=3 "
          "NWA, Thm6 NWA)");
  t.Header({"operation", "out_states", "out_transitions", "ms"});
  auto row = [&](const char* name, auto&& f) {
    Stopwatch sw;
    Nnwa out = f();
    double ms = sw.ElapsedMs();
    t.Row({name, Table::Num(out.num_states()),
           Table::Num(out.NumTransitions()), Table::Dbl(ms, 2)});
    return out;
  };
  Nnwa u = row("union", [&] { return Union(a, b); });
  Nnwa i = row("intersect", [&] { return Intersect(a, b); });
  Nnwa c = row("complement(a)", [&] { return ComplementN(a); });
  Nnwa cat = row("concat(a,b)", [&] { return Concat(a, b); });
  Nnwa st = row("star(a)", [&] { return Star(a); });
  Nnwa rev = row("reverse(a)", [&] { return ReverseLang(a); });
  t.Print();

  // Sampled identities.
  Rng rng(6);
  size_t checked = 0, ok = 0;
  for (int iter = 0; iter < 400; ++iter) {
    NestedWord w = RandomNestedWord(&rng, 2, rng.Below(12));
    bool in_a = a.Accepts(w);
    bool in_b = b.Accepts(w);
    ++checked;
    ok += (u.Accepts(w) == (in_a || in_b)) &&
          (i.Accepts(w) == (in_a && in_b)) && (c.Accepts(w) == !in_a);
  }
  std::printf("sampled boolean identities: %zu/%zu OK\n", ok, checked);
  std::printf("star/concat/reverse semantics covered by ctest "
              "(language_ops_test); sizes above show the constructions "
              "stay polynomial except complement (determinization).\n");
  (void)cat;
  (void)st;
  (void)rev;
  return 0;
}
