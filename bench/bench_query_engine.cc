// E-QUERY — the batched query engine's scaling story: K compiled queries
// evaluated over one SAX stream in a single pass versus re-streaming the
// document once per query, plus the §3.2 depth-bounded-memory witness for
// the shared run state. The headline table reports the batched/sequential
// throughput ratio; the acceptance bar is ≥ 2× at K = 16.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "json/json.h"
#include "obs/bench_report.h"
#include "obs/prof.h"
#include "obs/pulse.h"
#include "obs/stats.h"
#include "query/compile.h"
#include "query/engine.h"
#include "query/nwquery.h"
#include "stream/token_stream.h"
#include "stream/tree_gen.h"
#include "support/stopwatch.h"
#include "support/table.h"
#include "trace/trace.h"
#include "xml/xml.h"

namespace {

using namespace nw;

// 16 query shapes covering every grammar production.
const char* kQueries[] = {
    "/a",
    "//b",
    "/a/b",
    "/a//b",
    "//a/*/b",
    "/*",
    "//c/d",
    "a then b",
    "a then b then c",
    "c then a",
    "depth >= 3",
    "depth >= 6",
    "/a and //b",
    "//a or //c",
    "not //b",
    "(/a or /c) and not depth >= 5",
};
constexpr size_t kNumQueries = sizeof(kQueries) / sizeof(kQueries[0]);

struct Workload {
  Alphabet alphabet;
  Symbol other;
  std::vector<Nwa> compiled;
  std::string doc;

  explicit Workload(size_t positions, size_t depth = 24) {
    std::vector<Query> queries;
    for (const char* text : kQueries) {
      queries.push_back(ParseQuery(text, &alphabet).Take());
    }
    alphabet.Intern("#text");
    other = alphabet.Intern("%other");
    for (const Query& q : queries) {
      compiled.push_back(CompileQuery(q, alphabet.size()));
    }
    Alphabet gen;
    gen.Intern("a");
    gen.Intern("b");
    gen.Intern("c");
    gen.Intern("d");
    Rng rng(7);
    doc = RandomXmlDocument(&rng, gen, positions, depth);
  }
};

/// Sequential baseline: each query re-streams (re-tokenizes + re-runs)
/// the document — K traversals, as a system without the batched engine
/// would evaluate a bank of standing queries.
size_t RunSequentially(const Workload& w, size_t num_queries) {
  size_t matched = 0;
  for (size_t i = 0; i < num_queries; ++i) {
    Alphabet local = w.alphabet;
    XmlTokenStream stream(w.doc, &local);
    NwaRunner r(w.compiled[i]);
    TaggedSymbol t;
    while (stream.Next(&t)) {
      if (t.symbol >= w.alphabet.size()) t.symbol = w.other;
      if (!r.Feed(t)) break;
    }
    matched += r.Accepting();
  }
  return matched;
}

/// Batched: one tokenizer pass drives all K queries.
size_t RunBatched(const Workload& w, QueryEngine* engine) {
  Alphabet local = w.alphabet;
  std::vector<bool> results = engine->RunAll(w.doc, &local);
  size_t matched = 0;
  for (bool hit : results) matched += hit;
  return matched;
}

void BM_RunEachQuerySeparately(benchmark::State& state) {
  Workload w(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(RunSequentially(w, kNumQueries));
  }
  state.SetBytesProcessed(state.iterations() * w.doc.size() * kNumQueries);
}
BENCHMARK(BM_RunEachQuerySeparately)->Range(1 << 12, 1 << 16);

void BM_BatchedEngine(benchmark::State& state) {
  Workload w(static_cast<size_t>(state.range(0)));
  QueryEngine engine(w.alphabet.size());
  engine.set_other_symbol(w.other);
  for (const Nwa& a : w.compiled) engine.Add(&a);
  for (auto _ : state) {
    benchmark::DoNotOptimize(RunBatched(w, &engine));
  }
  state.SetBytesProcessed(state.iterations() * w.doc.size());
}
BENCHMARK(BM_BatchedEngine)->Range(1 << 12, 1 << 16);

/// Headline comparison: K queries, one traversal vs. K traversals.
void SpeedupTable(const BenchConfig& cfg, BenchReport* report) {
  Table t("E-QUERY: batched single-pass vs per-query re-streaming (K = " +
          std::to_string(kNumQueries) + ")");
  t.Header({"positions", "sequential_ms", "batched_ms", "speedup",
            "traversals"});
  std::vector<size_t> sizes{1u << 12, 1u << 14, 1u << 16};
  if (cfg.quick) sizes = {1u << 12};
  for (size_t positions : sizes) {
    Workload w(positions);
    QueryEngine engine(w.alphabet.size());
    engine.set_other_symbol(w.other);
    for (const Nwa& a : w.compiled) engine.Add(&a);
    // Warm up, then time a few repetitions of each strategy.
    size_t m1 = RunSequentially(w, kNumQueries);
    size_t m2 = RunBatched(w, &engine);
    NW_CHECK(m1 == m2);
    const int kReps = cfg.quick ? 2 : 5;
    Stopwatch sw;
    for (int i = 0; i < kReps; ++i) {
      benchmark::DoNotOptimize(RunSequentially(w, kNumQueries));
    }
    double seq_ms = sw.ElapsedMs() / kReps;
    size_t traversals_before = engine.traversals();
    sw.Reset();
    for (int i = 0; i < kReps; ++i) {
      benchmark::DoNotOptimize(RunBatched(w, &engine));
    }
    double bat_ms = sw.ElapsedMs() / kReps;
    t.Row({Table::Num(positions), Table::Dbl(seq_ms), Table::Dbl(bat_ms),
           Table::Dbl(seq_ms / bat_ms, 2),
           Table::Num((engine.traversals() - traversals_before) / kReps)});
    report->Metric("batched_speedup@" + std::to_string(positions),
                   seq_ms / bat_ms);
    report->Metric("batched_ms@" + std::to_string(positions), bat_ms);
  }
  if (cfg.print()) t.Print();
}

/// NWStats acceptance bar: attaching a sink must cost < 3% throughput —
/// now with the NWProf attribution table attached too, so the bar covers
/// the full observability stack, not just the aggregate counters.
/// min-of-N timing on both sides — the minimum is the run least disturbed
/// by the machine, which is the honest estimate of intrinsic cost.
void StatsOverheadTable(const BenchConfig& cfg, BenchReport* report) {
  Table t("E-QUERY: NWStats overhead — batched engine, stats off vs on");
  t.Header({"positions", "off_ms", "on_ms", "overhead"});
  const size_t positions = cfg.quick ? 1u << 13 : 1u << 16;
  Workload w(positions);
  QueryEngine off(w.alphabet.size());
  off.set_other_symbol(w.other);
  for (const Nwa& a : w.compiled) off.Add(&a);
  QueryEngine on(w.alphabet.size());
  on.set_other_symbol(w.other);
  for (const Nwa& a : w.compiled) on.Add(&a);
  StatsSink sink;
  on.set_stats(&sink);
  QueryAttribution attr(kNumQueries);
  on.set_attribution(&attr);
  // Differential witness: stats on/off must not change any result.
  NW_CHECK(RunBatched(w, &off) == RunBatched(w, &on));
  const int kReps = cfg.quick ? 3 : 9;
  double off_ms = 1e300, on_ms = 1e300;
  for (int i = 0; i < kReps; ++i) {
    Stopwatch sw;
    benchmark::DoNotOptimize(RunBatched(w, &off));
    off_ms = std::min(off_ms, sw.ElapsedMs());
    sw.Reset();
    benchmark::DoNotOptimize(RunBatched(w, &on));
    on_ms = std::min(on_ms, sw.ElapsedMs());
  }
  double overhead = on_ms / off_ms;
  // Third pass: same instrumented engine, now with an NWPulse sampler
  // scraping the registry every few ms onto a temp file while the
  // documents stream — the writer-side cost of being watched (the
  // scraper's own thread is free; what the bar guards is cache-line
  // traffic on the sink the writer is hammering).
  StatsRegistry registry;
  registry.Register("main", &sink);
  registry.RegisterAttribution(&attr);
  std::FILE* pulse_tmp = std::tmpfile();
  double pulse_ms = 1e300;
  uint64_t pulse_ticks = 0;
  {
    PulseSampler::Options po;
    po.interval_ms = 2;
    po.jsonl = pulse_tmp;
    PulseSampler sampler(&registry, po);
    sampler.Start();
    for (int i = 0; i < kReps; ++i) {
      Stopwatch sw;
      benchmark::DoNotOptimize(RunBatched(w, &on));
      pulse_ms = std::min(pulse_ms, sw.ElapsedMs());
    }
    sampler.Stop();
    pulse_ticks = sampler.ticks();
  }
  if (pulse_tmp != nullptr) std::fclose(pulse_tmp);
  double pulse_overhead = pulse_ms / off_ms;
  t.Row({Table::Num(positions), Table::Dbl(off_ms, 3), Table::Dbl(on_ms, 3),
         Table::Dbl(overhead, 4)});
  if (cfg.print()) {
    t.Print();
    std::printf("NWPulse sampler-on: %.3f ms (ratio %.4f, %llu ticks)\n",
                pulse_ms, pulse_overhead,
                static_cast<unsigned long long>(pulse_ticks));
  }
  report->Metric("stats_overhead_ratio", overhead);
  report->Metric("pulse_overhead_ratio", pulse_overhead);
  // The sink really saw the traffic (oracle: one engine, all documents),
  // and the attribution table's totals are pinned to it.
  NW_CHECK(sink.engine_docs.value() >= 1);
  NW_CHECK(sink.engine_positions.value() > 0);
  NW_CHECK(attr.docs.value() == sink.engine_docs.value());
  NW_CHECK(attr.positions.value() == sink.engine_positions.value());
  NW_CHECK(pulse_ticks >= 1);  // the sampler really ran (>= the Stop tick)
  if (!cfg.quick) {
    NW_CHECK(overhead < 1.03);        // the NWStats tentpole bar (PR 6)
    NW_CHECK(pulse_overhead < 1.03);  // being scraped must stay inside it
  }
}

/// §3.2 witness: resident run state scales with document depth, not
/// document length (positions fixed, depth swept — and vice versa).
void MemoryTable(const BenchConfig& cfg, BenchReport* report) {
  Table t("E-QUERY: resident state = K*(depth+1) StateIds, length-free");
  t.Header({"positions", "max_depth", "stack_frames_hw", "resident_states"});
  std::vector<std::pair<size_t, size_t>> shapes{
      {1u << 13, 4}, {1u << 13, 64}, {1u << 17, 4}, {1u << 17, 64}};
  if (cfg.quick) shapes = {{1u << 13, 4}, {1u << 13, 64}};
  for (auto [positions, depth] : shapes) {
    Workload w(positions, depth);
    QueryEngine engine(w.alphabet.size());
    engine.set_other_symbol(w.other);
    for (const Nwa& a : w.compiled) engine.Add(&a);
    RunBatched(w, &engine);
    t.Row({Table::Num(positions), Table::Num(depth),
           Table::Num(engine.MaxStackDepth()),
           Table::Num(engine.ResidentStates())});
    report->Metric("resident_states@" + std::to_string(positions) + "x" +
                       std::to_string(depth),
                   static_cast<double>(engine.ResidentStates()));
  }
  if (cfg.print()) t.Print();
}

/// One tokenizer pass over a document, counting tokens. The local
/// alphabet copy mirrors what QueryEngine::RunAll does per document,
/// so the measured cost includes the interning traffic a real
/// ingestion pays.
template <typename Stream>
size_t CountTokens(const std::string& text, const Alphabet& base) {
  Alphabet local = base;
  Stream stream(text, &local);
  TaggedSymbol t;
  size_t n = 0;
  while (stream.Next(&t)) ++n;
  return n;
}

/// NWMulti front-end comparison: one random forest rendered as XML,
/// JSON, and a program trace, tokenized by each front end. The three
/// renderings produce byte-for-byte identical token streams (that is
/// the differential-test invariant), so the token counts must agree —
/// reported as format_token_parity, a structural metric the bench
/// watchdog hard-checks. The per-format timings are host-dependent
/// and ride along warn-only.
void IngestTable(const BenchConfig& cfg, BenchReport* report) {
  Table t("E-QUERY: ingestion throughput — one forest, three front ends");
  t.Header({"positions", "format", "bytes", "tokens", "ingest_ms", "MB/s"});
  std::vector<size_t> sizes{1u << 12, 1u << 16};
  if (cfg.quick) sizes = {1u << 12};
  Alphabet base;
  base.Intern("a");
  base.Intern("b");
  base.Intern("c");
  base.Intern("d");
  bool parity = true;
  for (size_t positions : sizes) {
    Rng rng(11);
    std::vector<TreeNode> forest =
        RandomForest(&rng, {"a", "b", "c", "d"}, positions, 24);
    struct Rendering {
      const char* label;
      std::string text;
      size_t (*count)(const std::string&, const Alphabet&);
    };
    const Rendering renderings[] = {
        {"xml", RenderXml(forest), &CountTokens<XmlTokenStream>},
        {"json", RenderJson(forest), &CountTokens<JsonTokenStream>},
        {"trace", RenderTrace(forest), &CountTokens<TraceTokenStream>},
    };
    const int kReps = cfg.quick ? 3 : 9;
    size_t xml_tokens = 0;
    double xml_ms = 0;
    for (const Rendering& r : renderings) {
      size_t tokens = r.count(r.text, base);
      double best_ms = 1e300;
      for (int i = 0; i < kReps; ++i) {
        Stopwatch sw;
        benchmark::DoNotOptimize(r.count(r.text, base));
        best_ms = std::min(best_ms, sw.ElapsedMs());
      }
      double mbs = best_ms > 0
                       ? r.text.size() / (best_ms * 1e3)  // bytes/us == MB/s
                       : 0.0;
      t.Row({Table::Num(positions), r.label, Table::Num(r.text.size()),
             Table::Num(tokens), Table::Dbl(best_ms, 3), Table::Dbl(mbs, 1)});
      std::string suffix = "@" + std::to_string(positions);
      report->Metric(std::string(r.label) + "_ingest_ms" + suffix, best_ms);
      if (r.label == renderings[0].label) {
        xml_tokens = tokens;
        xml_ms = best_ms;
      } else {
        parity = parity && tokens == xml_tokens;
        if (std::string(r.label) == "json") {
          report->Metric("json_vs_xml_ingest_speedup" + suffix,
                         best_ms > 0 ? xml_ms / best_ms : 0.0);
        }
      }
      // The forest is seeded, so the token count is a build-independent
      // structural metric: any front-end mapping change shows up here.
      if (r.label == renderings[0].label) {
        report->Metric("ingest_tokens" + suffix,
                       static_cast<double>(tokens));
      }
    }
  }
  NW_CHECK_MSG(parity, "front ends disagree on the shared forest");
  report->Metric("format_token_parity", parity ? 1.0 : 0.0);
  if (cfg.print()) t.Print();
}

}  // namespace

int main(int argc, char** argv) {
  BenchConfig cfg = ParseBenchConfig(&argc, argv);
  BenchReport report("bench_query_engine");
  SpeedupTable(cfg, &report);
  IngestTable(cfg, &report);
  MemoryTable(cfg, &report);
  StatsOverheadTable(cfg, &report);
  if (cfg.report_json) {
    // The tables' measurements ARE the report; the google-benchmark pass
    // would only slow CI down and write to stdout in its own format.
    std::printf("%s\n", report.ToJson(cfg.quick).c_str());
    return 0;
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
