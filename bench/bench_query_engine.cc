// E-QUERY — the batched query engine's scaling story: K compiled queries
// evaluated over one SAX stream in a single pass versus re-streaming the
// document once per query, plus the §3.2 depth-bounded-memory witness for
// the shared run state. The headline table reports the batched/sequential
// throughput ratio; the acceptance bar is ≥ 2× at K = 16.
#include <benchmark/benchmark.h>

#include "query/compile.h"
#include "query/engine.h"
#include "query/nwquery.h"
#include "support/stopwatch.h"
#include "support/table.h"
#include "xml/xml.h"

namespace {

using namespace nw;

// 16 query shapes covering every grammar production.
const char* kQueries[] = {
    "/a",
    "//b",
    "/a/b",
    "/a//b",
    "//a/*/b",
    "/*",
    "//c/d",
    "a then b",
    "a then b then c",
    "c then a",
    "depth >= 3",
    "depth >= 6",
    "/a and //b",
    "//a or //c",
    "not //b",
    "(/a or /c) and not depth >= 5",
};
constexpr size_t kNumQueries = sizeof(kQueries) / sizeof(kQueries[0]);

struct Workload {
  Alphabet alphabet;
  Symbol other;
  std::vector<Nwa> compiled;
  std::string doc;

  explicit Workload(size_t positions, size_t depth = 24) {
    std::vector<Query> queries;
    for (const char* text : kQueries) {
      queries.push_back(ParseQuery(text, &alphabet).Take());
    }
    alphabet.Intern("#text");
    other = alphabet.Intern("%other");
    for (const Query& q : queries) {
      compiled.push_back(CompileQuery(q, alphabet.size()));
    }
    Alphabet gen;
    gen.Intern("a");
    gen.Intern("b");
    gen.Intern("c");
    gen.Intern("d");
    Rng rng(7);
    doc = RandomXmlDocument(&rng, gen, positions, depth);
  }
};

/// Sequential baseline: each query re-streams (re-tokenizes + re-runs)
/// the document — K traversals, as a system without the batched engine
/// would evaluate a bank of standing queries.
size_t RunSequentially(const Workload& w, size_t num_queries) {
  size_t matched = 0;
  for (size_t i = 0; i < num_queries; ++i) {
    Alphabet local = w.alphabet;
    XmlTokenStream stream(w.doc, &local);
    NwaRunner r(w.compiled[i]);
    TaggedSymbol t;
    while (stream.Next(&t)) {
      if (t.symbol >= w.alphabet.size()) t.symbol = w.other;
      if (!r.Feed(t)) break;
    }
    matched += r.Accepting();
  }
  return matched;
}

/// Batched: one tokenizer pass drives all K queries.
size_t RunBatched(const Workload& w, QueryEngine* engine) {
  Alphabet local = w.alphabet;
  std::vector<bool> results = engine->RunAll(w.doc, &local);
  size_t matched = 0;
  for (bool hit : results) matched += hit;
  return matched;
}

void BM_RunEachQuerySeparately(benchmark::State& state) {
  Workload w(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(RunSequentially(w, kNumQueries));
  }
  state.SetBytesProcessed(state.iterations() * w.doc.size() * kNumQueries);
}
BENCHMARK(BM_RunEachQuerySeparately)->Range(1 << 12, 1 << 16);

void BM_BatchedEngine(benchmark::State& state) {
  Workload w(static_cast<size_t>(state.range(0)));
  QueryEngine engine(w.alphabet.size());
  engine.set_other_symbol(w.other);
  for (const Nwa& a : w.compiled) engine.Add(&a);
  for (auto _ : state) {
    benchmark::DoNotOptimize(RunBatched(w, &engine));
  }
  state.SetBytesProcessed(state.iterations() * w.doc.size());
}
BENCHMARK(BM_BatchedEngine)->Range(1 << 12, 1 << 16);

/// Headline comparison: K queries, one traversal vs. K traversals.
void SpeedupTable() {
  Table t("E-QUERY: batched single-pass vs per-query re-streaming (K = " +
          std::to_string(kNumQueries) + ")");
  t.Header({"positions", "sequential_ms", "batched_ms", "speedup",
            "traversals"});
  for (size_t positions : {1u << 12, 1u << 14, 1u << 16}) {
    Workload w(positions);
    QueryEngine engine(w.alphabet.size());
    engine.set_other_symbol(w.other);
    for (const Nwa& a : w.compiled) engine.Add(&a);
    // Warm up, then time a few repetitions of each strategy.
    size_t m1 = RunSequentially(w, kNumQueries);
    size_t m2 = RunBatched(w, &engine);
    NW_CHECK(m1 == m2);
    constexpr int kReps = 5;
    Stopwatch sw;
    for (int i = 0; i < kReps; ++i) {
      benchmark::DoNotOptimize(RunSequentially(w, kNumQueries));
    }
    double seq_ms = sw.ElapsedMs() / kReps;
    size_t traversals_before = engine.traversals();
    sw.Reset();
    for (int i = 0; i < kReps; ++i) {
      benchmark::DoNotOptimize(RunBatched(w, &engine));
    }
    double bat_ms = sw.ElapsedMs() / kReps;
    t.Row({Table::Num(positions), Table::Dbl(seq_ms), Table::Dbl(bat_ms),
           Table::Dbl(seq_ms / bat_ms, 2),
           Table::Num((engine.traversals() - traversals_before) / kReps)});
  }
  t.Print();
}

/// §3.2 witness: resident run state scales with document depth, not
/// document length (positions fixed, depth swept — and vice versa).
void MemoryTable() {
  Table t("E-QUERY: resident state = K*(depth+1) StateIds, length-free");
  t.Header({"positions", "max_depth", "stack_frames_hw", "resident_states"});
  for (auto [positions, depth] :
       {std::pair<size_t, size_t>{1u << 13, 4}, {1u << 13, 64},
        {1u << 17, 4}, {1u << 17, 64}}) {
    Workload w(positions, depth);
    QueryEngine engine(w.alphabet.size());
    engine.set_other_symbol(w.other);
    for (const Nwa& a : w.compiled) engine.Add(&a);
    RunBatched(w, &engine);
    t.Row({Table::Num(positions), Table::Num(depth),
           Table::Num(engine.MaxStackDepth()),
           Table::Num(engine.ResidentStates())});
  }
  t.Print();
}

}  // namespace

int main(int argc, char** argv) {
  SpeedupTable();
  MemoryTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
