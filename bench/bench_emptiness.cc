// E-EMPT — §3.2: NWA emptiness by summary saturation, "cubic time, like
// pushdown word automata or tree automata". Measures saturation time on
// random automata of growing size.
#include <cstdio>

#include "nwa/decision.h"
#include "support/rng.h"
#include "support/stopwatch.h"
#include "support/table.h"

int main() {
  using namespace nw;
  Table t("E-EMPT (§3.2): emptiness saturation time vs automaton size");
  t.Header({"states", "transitions", "empty", "time_ms",
            "ms/states^3 * 1e6"});
  Rng rng(9);
  for (size_t s : {8u, 16u, 32u, 64u, 128u}) {
    Nnwa a(2);
    for (size_t i = 0; i < s; ++i) a.AddState(rng.Chance(1, 16));
    a.AddInitial(0);
    a.AddHierInitial(static_cast<StateId>(rng.Below(s)));
    // Sparse random transitions, ~4 per state.
    for (size_t i = 0; i < 4 * s; ++i) {
      StateId q = static_cast<StateId>(rng.Below(s));
      Symbol c = static_cast<Symbol>(rng.Below(2));
      switch (rng.Below(3)) {
        case 0:
          a.AddInternal(q, c, static_cast<StateId>(rng.Below(s)));
          break;
        case 1:
          a.AddCall(q, c, static_cast<StateId>(rng.Below(s)),
                    static_cast<StateId>(rng.Below(s)));
          break;
        default:
          a.AddReturn(q, static_cast<StateId>(rng.Below(s)), c,
                      static_cast<StateId>(rng.Below(s)));
      }
    }
    Stopwatch sw;
    EmptinessResult r = CheckEmptiness(a);
    double ms = sw.ElapsedMs();
    double norm = ms / (double(s) * s * s) * 1e6;
    t.Row({Table::Num(s), Table::Num(a.NumTransitions()),
           r.empty ? "yes" : "no", Table::Dbl(ms, 2), Table::Dbl(norm, 3)});
  }
  t.Print();
  std::printf("shape check: the normalized column stays bounded — "
              "saturation is polynomial (cubic-ish), not exponential.\n");
  return 0;
}
