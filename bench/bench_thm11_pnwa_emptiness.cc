// E-THM11 — Theorem 11: PNWA emptiness is Exptime-complete, decided by
// saturating summaries R(q, U, q') with U ⊆ Qh. Measures summary counts
// and time as the automaton grows (the SAT-reduction automata give a
// natural scaling family with known emptiness answers).
#include <cstdio>

#include "pnwa/reduction.h"
#include "support/stopwatch.h"
#include "support/table.h"

int main() {
  using namespace nw;
  Table t("E-THM11 (Theorem 11): PNWA emptiness via R(q,U,q') saturation");
  t.Header({"instance", "states", "empty", "expected", "summaries", "ms"});
  // Satisfiable instances: nonempty automaton; contradictions: empty.
  // The saturation tracks U ⊆ Qh as a 64-bit mask, capping instance size.
  for (uint32_t v = 2; v <= 3; ++v) {
    // A forced-satisfiable chain (x1) (x2) ... and a contradiction pair.
    Cnf satf;
    satf.num_vars = v;
    for (uint32_t i = 0; i < v; ++i) satf.clauses.push_back({{i, true}});
    Cnf unsatf = satf;
    unsatf.clauses.push_back({{0, false}});

    std::vector<std::tuple<const char*, const Cnf&, bool>> cases;
    cases.push_back({"sat-chain", satf, false});
    if (v <= 2) cases.push_back({"contradiction", unsatf, true});
    for (const auto& [name, cnf, expected] : cases) {
      SatReduction red = ReduceSatToPnwaMembership(cnf);
      Stopwatch sw;
      bool empty = red.pnwa.IsEmpty();
      double ms = sw.ElapsedMs();
      t.Row({std::string(name) + "-v" + std::to_string(v),
             Table::Num(red.pnwa.num_states()), empty ? "yes" : "no",
             expected ? "yes" : "no", Table::Num(red.pnwa.last_summary_count()),
             Table::Dbl(ms, 2)});
    }
  }
  t.Print();
  std::printf("shape check: empty == expected on every row; summary "
              "counts grow quickly with |Qh| (the exponential mechanism "
              "is the U ⊆ Qh component).\n");
  return 0;
}
