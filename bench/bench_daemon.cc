// E-DAEMON — the resident daemon's serving economics: what online
// admission costs, what the cold epoch's overflow detour costs, and how
// completely the background refresh restores snapshot coverage.
//
//   * lifecycle — one ADMIT against a standing K-query bank: the cold
//     epoch serves immediately (hit rate 0 — every step takes the
//     overflow path, correct but slow), the refresh replays the recent
//     traffic reservoir and re-explores, and the refreshed epoch serves
//     the same corpus at hit rate 1.0. The cold/refreshed hit rates are
//     structural (bench_diff fails on drift); the phase walls are
//     timing.
//   * dispatch overhead — the same corpus through the daemon's
//     queue/promise submit path vs a direct ShardedEvaluator pass on
//     the same snapshot: the price of the resident front door.
//
// Acceptance bar (full runs): refreshed hit rate is exactly 1.0 — the
// replay reservoir covers the corpus, so the refresh must promote every
// tuple traffic needs.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>
#include <vector>

#include "daemon/daemon.h"
#include "obs/bench_report.h"
#include "obs/pulse.h"
#include "opt/pipeline.h"
#include "query/nwquery.h"
#include "serve/frozen_bank.h"
#include "serve/sharded.h"
#include "support/rng.h"
#include "support/stopwatch.h"
#include "support/table.h"
#include "xml/xml.h"

namespace {

using namespace nw;

/// Same query family as bench_sharded_eval's bank.
std::vector<std::string> BankQueries(size_t k) {
  const char* names[] = {"a", "b", "c", "d", "e", "f", "g", "h"};
  constexpr size_t n = sizeof(names) / sizeof(names[0]);
  std::vector<std::string> out;
  for (size_t i = 0; out.size() < k; ++i) {
    const std::string x = names[i % n];
    const std::string y = names[(i + 1 + i / n) % n];
    switch (i % 4) {
      case 0: out.push_back("/" + x); break;
      case 1: out.push_back("//" + y); break;
      case 2: out.push_back("/" + x + "/" + y); break;
      default: out.push_back("/" + x + "//" + y); break;
    }
  }
  return out;
}

std::vector<std::string> MakeCorpus(size_t docs, size_t positions) {
  Alphabet gen;
  for (const char* n : {"a", "b", "c", "d", "e", "f", "g", "h"}) {
    gen.Intern(n);
  }
  Rng rng(23);
  std::vector<std::string> corpus;
  for (size_t d = 0; d < docs; ++d) {
    corpus.push_back(RandomXmlDocument(&rng, gen, positions, 12));
  }
  return corpus;
}

struct HitDelta {
  uint64_t hits = 0;
  uint64_t misses = 0;
  double rate() const {
    uint64_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) / total;
  }
};

double SubmitCorpus(DaemonCore* core, const std::vector<std::string>& corpus) {
  Stopwatch sw;
  for (const std::string& doc : corpus) {
    (void)core->Submit(doc, InputFormat::kXml).Take();
  }
  return sw.ElapsedMs();
}

HitDelta FrozenDelta(const StatsSnapshot& a, const StatsSnapshot& b) {
  SinkSnapshot agg = SnapshotDelta(a, b).Aggregate();
  return {agg.counter("frozen_hits"), agg.counter("frozen_misses")};
}

/// Streams the corpus while the background refresher races: per-document
/// snapshot deltas are attributed to `cold` only when that document was
/// served by a still-unrefreshed epoch (the replay trainer writes no
/// frozen counters, so the delta is the document's own steps). Returns
/// how many documents landed cold — the refresher usually publishes
/// mid-corpus, and the whole point is to measure only the overflow-path
/// documents.
size_t ColdPass(DaemonCore* core, const std::vector<std::string>& corpus,
                HitDelta* cold, double* wall_ms) {
  size_t cold_docs = 0;
  Stopwatch sw;
  for (const std::string& doc : corpus) {
    StatsSnapshot before = CaptureSnapshot(core->registry());
    SubmitOutcome outcome = core->Submit(doc, InputFormat::kXml).Take();
    StatsSnapshot after = CaptureSnapshot(core->registry());
    if (!outcome.epoch->refreshed) {
      HitDelta d = FrozenDelta(before, after);
      cold->hits += d.hits;
      cold->misses += d.misses;
      ++cold_docs;
    }
  }
  *wall_ms = sw.ElapsedMs();
  return cold_docs;
}

void LifecycleTable(const BenchConfig& cfg, BenchReport* report) {
  const size_t kQueries = 8;
  const size_t kDocs = cfg.quick ? 16 : 32;  // <= replay_capacity
  const size_t kPositions = cfg.quick ? 1u << 10 : 1u << 12;
  const size_t kThreads = 4;

  DaemonOptions options;
  options.threads = kThreads;
  options.refresh_cap = cfg.quick ? 512 : 4096;
  Stopwatch startup_sw;
  DaemonCore core(BankQueries(kQueries), options);
  NW_CHECK(core.ok());
  core.Start();
  double startup_ms = startup_sw.ElapsedMs();

  std::vector<std::string> corpus = MakeCorpus(kDocs, kPositions);

  // Steady state: the standing bank serves its traffic (and fills the
  // replay reservoir the upcoming refresh will train on).
  double steady_ms = SubmitCorpus(&core, corpus);

  // Online admission (the compile-bound control op), then the corpus
  // against the cold epoch. The refresher publishes concurrently, so
  // ColdPass attributes per-document; if it publishes before even the
  // FIRST document (possible on an oversubscribed host), retire the
  // query and re-admit so `admitted_queries` stays deterministic.
  double admit_ms = 0;
  double cold_ms = 0;
  HitDelta cold;
  size_t cold_docs = 0;
  for (int attempt = 0; attempt < 5 && cold_docs == 0; ++attempt) {
    Stopwatch admit_sw;
    Result<uint64_t> qid = core.Admit("//g/admitted");
    NW_CHECK(qid.ok());
    admit_ms = admit_sw.ElapsedMs();
    cold = HitDelta();
    cold_docs = ColdPass(&core, corpus, &cold, &cold_ms);
    if (cold_docs == 0) {
      NW_CHECK(core.Retire(*qid).ok());
      core.AwaitRefresh();
    }
  }
  NW_CHECK_MSG(cold_docs > 0, "refresher beat every cold document 5 times");

  // Background refresh, then the same corpus against the new snapshot.
  Stopwatch refresh_sw;
  core.AwaitRefresh();
  double refresh_ms = refresh_sw.ElapsedMs();
  StatsSnapshot before = CaptureSnapshot(core.registry());
  double refreshed_ms = SubmitCorpus(&core, corpus);
  StatsSnapshot after = CaptureSnapshot(core.registry());
  HitDelta warm = FrozenDelta(before, after);

  EpochMetrics metrics = core.Metrics();
  core.DrainAndStop();

  Table t("E-DAEMON: admission lifecycle (K=" + std::to_string(kQueries) +
          "+1, " + std::to_string(kDocs) + " docs, threads=" +
          std::to_string(kThreads) + ")");
  t.Header({"phase", "wall_ms", "hit_rate"});
  t.Row({"startup (compile+warm freeze)", Table::Dbl(startup_ms, 1), "-"});
  t.Row({"steady serve", Table::Dbl(steady_ms, 1), "-"});
  t.Row({"admit (cold publish)", Table::Dbl(admit_ms, 1), "-"});
  t.Row({"cold serve (overflow path)", Table::Dbl(cold_ms, 1),
         Table::Dbl(cold.rate(), 4)});
  t.Row({"refresh (replay + explore)", Table::Dbl(refresh_ms, 1), "-"});
  t.Row({"refreshed serve", Table::Dbl(refreshed_ms, 1),
         Table::Dbl(warm.rate(), 4)});
  if (cfg.print()) t.Print();

  report->Metric("startup_ms", startup_ms);
  report->Metric("admit_ms", admit_ms);
  report->Metric("refresh_ms", refresh_ms);
  report->Metric("cold_serve_ms", cold_ms);
  report->Metric("refreshed_serve_ms", refreshed_ms);
  // Structural: the cold snapshot holds only the initial state (every
  // step overflows), the refresh must restore total coverage of the
  // replayed traffic.
  report->Metric("cold_hit_rate", cold.rate());
  report->Metric("refreshed_hit_rate", warm.rate());
  report->Metric("admitted_queries", static_cast<double>(metrics.queries));
  if (!cfg.quick) {
    NW_CHECK(warm.rate() == 1.0);
    NW_CHECK(cold.rate() == 0.0);
  }
}

void OverheadTable(const BenchConfig& cfg, BenchReport* report) {
  const size_t kQueries = 8;
  const size_t kDocs = cfg.quick ? 16 : 32;
  const size_t kPositions = cfg.quick ? 1u << 10 : 1u << 12;
  const size_t kThreads = 4;
  const int kReps = cfg.quick ? 2 : 4;

  DaemonOptions options;
  options.threads = kThreads;
  options.refresh_cap = cfg.quick ? 512 : 4096;
  DaemonCore core(BankQueries(kQueries), options);
  NW_CHECK(core.ok());
  core.Start();
  std::vector<std::string> corpus = MakeCorpus(kDocs, kPositions);

  // Warm the snapshot with the corpus, then refresh so both paths serve
  // a fully-covering snapshot and measure dispatch, not overflow.
  SubmitCorpus(&core, corpus);
  core.AwaitRefresh();

  double daemon_ms = 0;
  for (int r = 0; r < kReps; ++r) {
    daemon_ms += SubmitCorpus(&core, corpus);
  }
  daemon_ms /= kReps;

  // Direct pass over the SAME epoch snapshot — no queue, no promises.
  std::shared_ptr<const DaemonEpoch> epoch = core.current_epoch();
  ShardedEvaluator direct(epoch->frozen.get(), epoch->num_symbols,
                          epoch->alphabet.Find("%other"), kThreads);
  direct.EvaluateCorpus(corpus, epoch->alphabet, true);  // warm-up
  Stopwatch sw;
  for (int r = 0; r < kReps; ++r) {
    benchmark::DoNotOptimize(
        direct.EvaluateCorpus(corpus, epoch->alphabet, true));
  }
  double direct_ms = sw.ElapsedMs() / kReps;
  core.DrainAndStop();

  double overhead = daemon_ms / direct_ms;
  Table t("E-DAEMON: dispatch overhead — daemon submit path vs direct "
          "sharded pass over the same snapshot");
  t.Header({"path", "corpus_ms", "ratio"});
  t.Row({"direct ShardedEvaluator", Table::Dbl(direct_ms, 2),
         Table::Dbl(1.0, 2)});
  t.Row({"daemon submit (one-doc batches)", Table::Dbl(daemon_ms, 2),
         Table::Dbl(overhead, 2)});
  if (cfg.print()) t.Print();
  report->Metric("daemon_overhead", overhead);
}

void BM_DaemonSubmit(benchmark::State& state) {
  static DaemonCore* core = [] {
    DaemonOptions options;
    options.threads = 4;
    options.refresh_cap = 4096;
    auto* c = new DaemonCore(BankQueries(8), options);
    NW_CHECK(c->ok());
    c->Start();
    return c;
  }();
  static std::vector<std::string> corpus = [] {
    std::vector<std::string> docs = MakeCorpus(16, 1u << 11);
    for (const std::string& doc : docs) {
      (void)core->Submit(doc, InputFormat::kXml);
    }
    core->AwaitRefresh();
    return docs;
  }();
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core->Submit(corpus[i++ % corpus.size()], InputFormat::kXml));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DaemonSubmit)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  BenchConfig cfg = ParseBenchConfig(&argc, argv);
  BenchReport report("bench_daemon");
  LifecycleTable(cfg, &report);
  OverheadTable(cfg, &report);
  if (cfg.report_json) {
    std::printf("%s\n", report.ToJson(cfg.quick).c_str());
    return 0;
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
