// E-THM3 — Theorem 3: the NWA for Ls = { path(w) : w ∈ {a,b}^s } has O(s)
// states while every word automaton for nw_w(Ls) needs ≥ 2^s states.
// Regenerates the series: s, NWA states, minimal-DFA states, ratio.
#include <cstdio>

#include "nwa/families.h"
#include "support/stopwatch.h"
#include "support/table.h"

int main() {
  using namespace nw;
  Table t("E-THM3 (Theorem 3): NWA vs word automaton succinctness on "
          "Ls = path({a,b}^s)");
  t.Header({"s", "nwa_states", "min_dfa_states", "2^s", "dfa/nwa",
            "minimize_ms"});
  for (int s = 2; s <= 13; ++s) {
    Nwa nwa = Thm3PathNwa(s);
    Stopwatch sw;
    Dfa min = Thm3TrieDfa(s).Minimize();
    double ms = sw.ElapsedMs();
    t.Row({Table::Num(s), Table::Num(nwa.num_states()),
           Table::Num(min.num_states()), Table::Num(1ull << s),
           Table::Dbl(double(min.num_states()) / nwa.num_states(), 1),
           Table::Dbl(ms, 1)});
  }
  t.Print();
  std::printf("shape check: min_dfa_states >= 2^s for every s; nwa grows "
              "linearly (2s+1).\n");
  return 0;
}
