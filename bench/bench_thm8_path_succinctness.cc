// E-THM8 — Theorem 8: for the path language path(Σ^s a Σ* a Σ^s), an NWA
// needs O(s) states while deterministic top-down and bottom-up automata
// need 2^s. By Lemma 3 the top-down size equals the minimal DFA of Ls and
// the bottom-up size the minimal DFA of Ls reversed (Ls is its own
// reverse, so the two coincide).
#include <cstdio>

#include "nwa/families.h"
#include "support/stopwatch.h"
#include "support/table.h"

int main() {
  using namespace nw;
  Table t("E-THM8 (Theorem 8, Lemma 3): NWA vs deterministic top-down / "
          "bottom-up on path(Σ^s a Σ* a Σ^s)");
  t.Header({"s", "nwa_states", "min_dfa(L)=topdown", "min_dfa(L^R)=bottomup",
            "2^s", "ms"});
  for (int s = 2; s <= 9; ++s) {
    Nwa nwa = Thm8PathNwa(s);
    Stopwatch sw;
    Dfa fwd = Thm8WordNfa(s).Determinize().Minimize();
    Dfa bwd = Thm8WordNfa(s).Reversed().Determinize().Minimize();
    double ms = sw.ElapsedMs();
    t.Row({Table::Num(s), Table::Num(nwa.num_states()),
           Table::Num(fwd.num_states()), Table::Num(bwd.num_states()),
           Table::Num(1ull << s), Table::Dbl(ms, 1)});
  }
  t.Print();
  std::printf("shape check: both deterministic one-directional automata "
              "blow past 2^s; the NWA stays ~4s+7.\n");
  return 0;
}
