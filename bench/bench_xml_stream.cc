// E-XML — §1/§2.2: SAX streams are nested words without preprocessing;
// NWA query evaluation streams at memory proportional to document depth.
// google-benchmark timing series over document size and depth.
#include <benchmark/benchmark.h>

#include "support/table.h"
#include "xml/xml.h"

namespace {

using namespace nw;

Alphabet DocAlphabet() {
  Alphabet a;
  a.Intern("#text");
  a.Intern("x");
  a.Intern("y");
  a.Intern("z");
  return a;
}

void BM_Tokenize(benchmark::State& state) {
  Alphabet names = DocAlphabet();
  Rng rng(1);
  std::string doc =
      RandomXmlDocument(&rng, names, static_cast<size_t>(state.range(0)), 32);
  for (auto _ : state) {
    Alphabet local = names;
    benchmark::DoNotOptimize(XmlToNestedWord(doc, &local));
  }
  state.SetBytesProcessed(state.iterations() * doc.size());
}
BENCHMARK(BM_Tokenize)->Range(1 << 12, 1 << 16);

void BM_WellFormedQuery(benchmark::State& state) {
  Alphabet names = DocAlphabet();
  Rng rng(2);
  std::string doc =
      RandomXmlDocument(&rng, names, static_cast<size_t>(state.range(0)), 32);
  Alphabet local = names;
  NestedWord w = XmlToNestedWord(doc, &local);
  Nwa q = WellFormedChecker(names.size());
  for (auto _ : state) {
    benchmark::DoNotOptimize(q.Accepts(w));
  }
  state.SetItemsProcessed(state.iterations() * w.size());
}
BENCHMARK(BM_WellFormedQuery)->Range(1 << 12, 1 << 18);

void DepthTable() {
  Table t("E-XML: streaming memory = depth (positions fixed at 2^15)");
  t.Header({"depth", "peak_stack_states"});
  Alphabet names = DocAlphabet();
  Rng rng(3);
  Nwa q = WellFormedChecker(names.size());
  for (size_t depth : {4u, 16u, 256u, 2048u}) {
    std::string doc = RandomXmlDocument(&rng, names, 1u << 15, depth);
    Alphabet local = names;
    NestedWord w = XmlToNestedWord(doc, &local);
    NwaRunner r(q);
    r.Run(w);
    t.Row({Table::Num(depth), Table::Num(r.MaxStackDepth())});
  }
  t.Print();
}

}  // namespace

int main(int argc, char** argv) {
  DepthTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
