// E-DET — §3.2: determinization of nondeterministic NWAs via the
// subset-of-pairs construction, bounded by 2^{s²}. Measures reachable
// deterministic sizes on a guessing family (the k-th-call-from-the-end
// carries symbol a — forces pair tracking) and on random automata.
#include <cstdio>

#include "nwa/determinize.h"
#include "support/rng.h"
#include "support/stopwatch.h"
#include "support/table.h"

using namespace nw;

// Nondeterministic family: "some call whose matching return is the last
// position of the word carries symbol a" — guessing + hierarchical flow.
Nnwa GuessFamily(int k) {
  Nnwa n(2);
  StateId scan = n.AddState(false);
  StateId hp = n.AddState(false);
  n.AddInitial(scan);
  n.AddHierInitial(hp);
  std::vector<StateId> cnt(k + 1);
  for (int i = 0; i <= k; ++i) cnt[i] = n.AddState(i == k);
  for (Symbol c : {0u, 1u}) {
    n.AddInternal(scan, c, scan);
    n.AddCall(scan, c, scan, hp);
    n.AddReturn(scan, hp, c, scan);
  }
  // Guess: this a-call's return closes the word after exactly k more
  // returns... simplified: after the guessed a-call, count k returns.
  n.AddCall(scan, 0, cnt[0], hp);
  for (int i = 0; i < k; ++i) {
    for (Symbol c : {0u, 1u}) {
      n.AddInternal(cnt[i], c, cnt[i]);
      n.AddCall(cnt[i], c, cnt[i], hp);
      n.AddReturn(cnt[i], hp, c, cnt[i + 1]);
    }
  }
  return n;
}

int main() {
  Table t("E-DET (§3.2): determinization growth (bound 2^{s^2})");
  t.Header({"family", "nondet_states", "det_states", "det_linear",
            "det_hier", "ms"});
  for (int k = 1; k <= 5; ++k) {
    Nnwa n = GuessFamily(k);
    Stopwatch sw;
    DeterminizeResult res = Determinize(n);
    double ms = sw.ElapsedMs();
    t.Row({"guess-k=" + std::to_string(k), Table::Num(n.num_states()),
           Table::Num(res.nwa.num_states()), Table::Num(res.linear_states),
           Table::Num(res.hier_states), Table::Dbl(ms, 1)});
  }
  Rng rng(5);
  for (int trial = 0; trial < 3; ++trial) {
    size_t states = 4 + trial;
    Nnwa n(2);
    for (size_t i = 0; i < states; ++i) n.AddState(rng.Chance(1, 3));
    n.AddInitial(0);
    n.AddHierInitial(static_cast<StateId>(rng.Below(states)));
    for (size_t i = 0; i < 3 * states; ++i) {
      StateId q = static_cast<StateId>(rng.Below(states));
      Symbol c = static_cast<Symbol>(rng.Below(2));
      switch (rng.Below(3)) {
        case 0:
          n.AddInternal(q, c, static_cast<StateId>(rng.Below(states)));
          break;
        case 1:
          n.AddCall(q, c, static_cast<StateId>(rng.Below(states)),
                    static_cast<StateId>(rng.Below(states)));
          break;
        default:
          n.AddReturn(q, static_cast<StateId>(rng.Below(states)), c,
                      static_cast<StateId>(rng.Below(states)));
      }
    }
    Stopwatch sw;
    DeterminizeResult res = Determinize(n);
    double ms = sw.ElapsedMs();
    t.Row({"random-" + std::to_string(states), Table::Num(n.num_states()),
           Table::Num(res.nwa.num_states()), Table::Num(res.linear_states),
           Table::Num(res.hier_states), Table::Dbl(ms, 1)});
  }
  t.Print();
  std::printf("shape check: deterministic sizes grow super-linearly with "
              "the nondeterministic size but stay below 2^(s^2).\n");
  return 0;
}
