// E-INTRO — the introduction's motivating gap: the query "patterns
// p1,...,pn occur in the document in that order" compiles to a linear-size
// deterministic word automaton (and flat NWA), while a deterministic
// bottom-up tree automaton for it is exponential in n. We measure the flat
// automaton and the reachable bottom-up form (Theorem 4), plus streaming
// throughput on synthetic XML.
#include <cstdio>

#include "nwa/transforms.h"
#include "support/rng.h"
#include "support/stopwatch.h"
#include "support/table.h"
#include "xml/xml.h"

int main() {
  using namespace nw;
  Table t("E-INTRO: pattern-order query (n distinct patterns) — word/flat "
          "automaton vs bottom-up automaton");
  t.Header({"n_patterns", "flat_states", "bottomup_reachable", "~2^n", "ms"});
  for (size_t n = 1; n <= 5; ++n) {
    // n *distinct* element names — the exponential congruence needs them
    // (the right-congruence stays linear regardless: intro's asymmetry).
    std::vector<Symbol> pats;
    for (size_t i = 0; i < n; ++i) pats.push_back(1 + i);
    Nwa flat = PatternOrderQuery(pats, n + 1);
    Stopwatch sw;
    Nwa bu = ToBottomUp(ToWeak(flat));
    double ms = sw.ElapsedMs();
    t.Row({Table::Num(n), Table::Num(flat.num_states()),
           Table::Num(bu.num_states()), Table::Num(1ull << n),
           Table::Dbl(ms, 1)});
  }
  t.Print();

  Table t2("E-INTRO: streaming the query over synthetic XML");
  t2.Header({"doc_positions", "depth", "MB", "ms", "MB/s"});
  Alphabet names;
  names.Intern("#text");
  names.Intern("a");
  names.Intern("b");
  Rng rng(4);
  Nwa q = PatternOrderQuery({1, 2, 1}, 3);
  for (size_t positions : {1u << 14, 1u << 17}) {
    std::string doc = RandomXmlDocument(&rng, names, positions, 64);
    Alphabet local = names;
    NestedWord w = XmlToNestedWord(doc, &local);
    Stopwatch sw;
    bool acc = q.Accepts(w);
    double ms = sw.ElapsedMs();
    (void)acc;
    double mb = doc.size() / 1e6;
    t2.Row({Table::Num(w.size()), Table::Num(w.Depth()), Table::Dbl(mb, 2),
            Table::Dbl(ms, 2), Table::Dbl(mb / (ms / 1000.0), 1)});
  }
  t2.Print();
  std::printf("shape check: flat_states = n+1 (linear); the bottom-up "
              "form grows much faster — the congruence vs right-congruence "
              "gap the introduction describes.\n");
  return 0;
}
