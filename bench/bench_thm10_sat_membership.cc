// E-THM10 — Theorem 10: PNWA membership is NP-complete (reduction from
// CNF-SAT). Cross-checks the reduction against DPLL and measures the
// exponential growth of explored configurations with the variable count.
#include <cstdio>

#include "pnwa/reduction.h"
#include "support/stopwatch.h"
#include "support/table.h"

int main() {
  using namespace nw;
  Table t("E-THM10 (Theorem 10): SAT -> PNWA membership (word "
          "(<a a^v a>)^s, clause ratio ~4.3)");
  t.Header({"vars", "clauses", "sat(dpll)", "pnwa_accepts", "agree",
            "pnwa_ms", "dpll_ms", "configs"});
  Rng rng(42);
  for (uint32_t v = 4; v <= 12; v += 2) {
    uint32_t clauses = static_cast<uint32_t>(v * 4.3);
    Cnf cnf = Cnf::Random(&rng, v, clauses);
    Stopwatch sw;
    bool sat = DpllSolve(cnf);
    double dpll_ms = sw.ElapsedMs();
    SatReduction red = ReduceSatToPnwaMembership(cnf);
    PnwaRunStats stats;
    PnwaLimits limits;
    limits.max_configs = 1u << 22;
    sw.Reset();
    bool acc = red.pnwa.Accepts(red.word, limits, &stats);
    double pnwa_ms = sw.ElapsedMs();
    t.Row({Table::Num(v), Table::Num(clauses), sat ? "yes" : "no",
           acc ? "yes" : "no", acc == sat ? "yes" : "NO",
           Table::Dbl(pnwa_ms, 2), Table::Dbl(dpll_ms, 2),
           Table::Num(stats.configs_explored)});
  }
  t.Print();
  std::printf("shape check: agreement on every row; explored "
              "configurations grow exponentially in v (the NP-hardness "
              "mechanism: one stack copy per clause block).\n");
  return 0;
}
