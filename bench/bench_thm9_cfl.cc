// E-THM9 — Theorem 9: L = {equal number of a's and b's} is a pushdown
// nested-word language (even a pushdown *word* language, Lemma 4) but not
// a context-free *tree* language. We run the PNWA on the proof's Figure-2
// family (a stem of 2s a's and a full binary b-tree of depth s) and print
// the count series that drives the pumping argument: doubling the b-leaves
// while adding a fixed number of a's breaks any fixed tree automaton.
#include <cstdio>
#include <functional>

#include "pnwa/pnwa.h"
#include "support/stopwatch.h"
#include "support/table.h"
#include "trees/ordered_tree.h"

using namespace nw;

// Figure 2's tree: stem of `stem` a-nodes over a full binary b-tree of
// depth `depth`.
OrderedTree Fig2(int stem, int depth) {
  std::function<TreeNode(int)> full = [&](int d) {
    TreeNode n;
    n.label = 1;
    if (d > 0) {
      n.children.push_back(full(d - 1));
      n.children.push_back(full(d - 1));
    }
    return n;
  };
  TreeNode cur = full(depth);
  for (int i = 0; i < stem; ++i) {
    TreeNode a;
    a.label = 0;
    a.children.push_back(std::move(cur));
    cur = std::move(a);
  }
  return OrderedTree(std::move(cur));
}

int main() {
  PushdownNwa balanced = PushdownNwa::FromPda(Pda::EqualAsAndBs(), 2);
  Table t("E-THM9 (Theorem 9): #a = #b on the Figure-2 tree family "
          "(tree word has 2 positions per node)");
  t.Header({"stem(a-nodes)", "depth(b-tree)", "a_count", "b_count",
            "balanced?", "pnwa_accepts", "ms"});
  for (int depth = 1; depth <= 5; ++depth) {
    int b_nodes = (1 << (depth + 1)) - 1;
    // Choose the stem so the tree is exactly balanced, then pump by one.
    for (int stem : {b_nodes, b_nodes + 1}) {
      OrderedTree tree = Fig2(stem, depth);
      NestedWord w = TreeToNestedWord(tree);
      Stopwatch sw;
      bool acc = balanced.Accepts(w);
      double ms = sw.ElapsedMs();
      t.Row({Table::Num(stem), Table::Num(depth), Table::Num(stem),
             Table::Num(b_nodes), stem == b_nodes ? "yes" : "no",
             acc ? "yes" : "no", Table::Dbl(ms, 2)});
    }
  }
  t.Print();
  std::printf(
      "shape check: the PNWA tracks the global linear count exactly.\n"
      "The pumping series shows why no pushdown *tree* automaton can: "
      "duplicating\na stem segment multiplies the b-count (every leaf "
      "deepens) but only adds a\nconstant number of a's — the paper's "
      "Figure-2 argument.\n");
  return 0;
}
