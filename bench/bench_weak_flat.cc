// E-THM1/2 — Theorem 1 (weak normal form costs a factor |Σ|) and
// Theorem 2 (flat NWAs are word automata with the same state count).
#include <cstdio>

#include "nwa/families.h"
#include "nwa/transforms.h"
#include "support/stopwatch.h"
#include "support/table.h"

int main() {
  using namespace nw;
  Table t("E-THM1 (Theorem 1): weak-form construction, bound s·|Σ|+1");
  t.Header({"automaton", "states", "weak_states", "bound", "ms"});
  for (int s = 2; s <= 8; s += 2) {
    Nwa a = Thm3PathNwa(s);
    Stopwatch sw;
    Nwa w = ToWeak(a);
    double ms = sw.ElapsedMs();
    t.Row({"thm3-s=" + std::to_string(s), Table::Num(a.num_states()),
           Table::Num(w.num_states()),
           Table::Num(a.num_states() * a.num_symbols() + 1),
           Table::Dbl(ms, 1)});
  }
  {
    Nwa a = Thm6Nwa();
    Stopwatch sw;
    Nwa w = ToWeak(a);
    t.Row({"thm6", Table::Num(a.num_states()), Table::Num(w.num_states()),
           Table::Num(a.num_states() * a.num_symbols() + 1),
           Table::Dbl(sw.ElapsedMs(), 1)});
  }
  t.Print();

  Table t2("E-THM2 (Theorem 2): flat NWA <-> word automaton over the "
           "tagged alphabet, state counts preserved");
  t2.Header({"s", "flat_nwa_states", "dfa_states", "roundtrip_states",
             "min_dfa_states"});
  for (int s = 2; s <= 5; ++s) {
    Nwa flat = Thm5FlatNwa(s);
    Dfa d = DfaFromFlat(flat);
    Nwa back = FlatFromDfa(d, 2);
    Dfa min = d.Minimize();
    t2.Row({Table::Num(s), Table::Num(flat.num_states()),
            Table::Num(d.num_states()), Table::Num(back.num_states()),
            Table::Num(min.num_states())});
  }
  t2.Print();
  std::printf("shape check: flat == dfa == roundtrip; Thm 1 stays within "
              "s·|Σ|+1.\n");
  return 0;
}
