// E-MEM — §3.2 membership bounds: deterministic NWA membership is linear
// time with space proportional to input *depth*; nondeterministic
// membership runs the summary DP in O(|A|³·ℓ). Uses google-benchmark for
// the timing series plus a table for the space-vs-depth series.
#include <benchmark/benchmark.h>

#include "nw/generate.h"
#include "nwa/families.h"
#include "nwa/nnwa.h"
#include "support/table.h"
#include "xml/xml.h"

namespace {

using namespace nw;

// A random well-matched word whose return labels match their calls, so the
// well-formedness checker runs the full length (no early death).
NestedWord MatchedWorkload(uint64_t seed, size_t len, size_t depth) {
  Rng rng(seed);
  NestedWord w = RandomWithDepth(&rng, 2, len, depth);
  Matching m(w);
  for (size_t i = 0; i < w.size(); ++i) {
    if (w.kind(i) == Kind::kReturn && m.partner(i) >= 0) {
      (*w.mutable_tagged())[i].symbol =
          w.symbol(static_cast<size_t>(m.partner(i)));
    }
  }
  return w;
}

void BM_DetMembershipVsLength(benchmark::State& state) {
  size_t len = static_cast<size_t>(state.range(0));
  Nwa a = WellFormedChecker(2);
  NestedWord w = MatchedWorkload(1, len, 16);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.Accepts(w));
  }
  state.SetItemsProcessed(state.iterations() * len);
}
BENCHMARK(BM_DetMembershipVsLength)->Range(1 << 10, 1 << 18);

void BM_NondetMembershipVsLength(benchmark::State& state) {
  size_t len = static_cast<size_t>(state.range(0));
  Nnwa a = Nnwa::FromNwa(WellFormedChecker(2));
  NestedWord w = MatchedWorkload(2, len, 16);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.Accepts(w));
  }
  state.SetItemsProcessed(state.iterations() * len);
}
BENCHMARK(BM_NondetMembershipVsLength)->Range(1 << 8, 1 << 12);

void SpaceTable() {
  Table t("E-MEM (§3.2): streaming space = depth, independent of length");
  t.Header({"length", "depth", "peak_stack"});
  Nwa a = WellFormedChecker(2);
  Rng rng(3);
  for (size_t depth : {4u, 64u, 1024u}) {
    for (size_t len : {1u << 12, 1u << 16}) {
      NestedWord w = RandomWithDepth(&rng, 2, len, depth);
      NwaRunner r(a);
      r.Run(w);
      t.Row({Table::Num(len), Table::Num(depth),
             Table::Num(r.MaxStackDepth())});
    }
  }
  t.Print();
}

}  // namespace

int main(int argc, char** argv) {
  SpaceTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  std::printf("shape check: items_per_second is flat across lengths "
              "(linear time); peak_stack tracks depth, not length.\n");
  return 0;
}
