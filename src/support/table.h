// Console table printer used by the benchmark harnesses to reproduce the
// paper's per-theorem series as aligned rows (the repository's equivalent
// of the paper's tables/figures).
#ifndef NW_SUPPORT_TABLE_H_
#define NW_SUPPORT_TABLE_H_

#include <string>
#include <vector>

namespace nw {

/// Accumulates rows of string cells and prints them with aligned columns.
///
/// Usage:
///   Table t("E-THM3: succinctness vs word automata");
///   t.Header({"s", "nwa_states", "min_dfa_states"});
///   t.Row({"4", "6", "16"});
///   t.Print();
class Table {
 public:
  explicit Table(std::string title) : title_(std::move(title)) {}

  /// Sets the column headers. Call once, before any Row().
  void Header(std::vector<std::string> cells);
  /// Appends a data row; must have as many cells as the header.
  void Row(std::vector<std::string> cells);
  /// Writes the table to stdout.
  void Print() const;

  /// Formats helpers for numeric cells.
  static std::string Num(uint64_t v);
  static std::string Dbl(double v, int precision = 3);

 private:
  std::string title_;
  std::vector<std::vector<std::string>> rows_;  // rows_[0] is the header.
};

}  // namespace nw

#endif  // NW_SUPPORT_TABLE_H_
