// Minimal Status/Result vocabulary types (the library avoids exceptions,
// following the Google style guide and the idiom of Arrow/RocksDB).
#ifndef NW_SUPPORT_RESULT_H_
#define NW_SUPPORT_RESULT_H_

#include <optional>
#include <string>
#include <utility>

#include "support/check.h"

namespace nw {

/// Error-or-success carrier for operations that can fail on user input
/// (parsers, format validators). Cheap, non-template core.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  /// Constructs an error status with a human-readable message.
  static Status Error(std::string message) {
    Status s;
    s.message_ = std::move(message);
    s.ok_ = false;
    return s;
  }
  static Status Ok() { return Status(); }

  bool ok() const { return ok_; }
  /// Message of an error status; empty for OK.
  const std::string& message() const { return message_; }

 private:
  bool ok_ = true;
  std::string message_;
};

/// Value-or-error. Dereferencing a non-OK Result aborts.
template <typename T>
class Result {
 public:
  /// Implicit from a value: success.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit from an error status.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    NW_CHECK_MSG(!status_.ok(), "Result constructed from OK status");
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& operator*() const {
    NW_CHECK_MSG(ok(), "dereferencing failed Result: %s",
                 status_.message().c_str());
    return *value_;
  }
  T& operator*() {
    NW_CHECK_MSG(ok(), "dereferencing failed Result: %s",
                 status_.message().c_str());
    return *value_;
  }
  const T* operator->() const { return &**this; }
  T* operator->() { return &**this; }

  /// Moves the value out; Result must be OK.
  T Take() {
    NW_CHECK(ok());
    T v = std::move(*value_);
    value_.reset();
    return v;
  }

 private:
  std::optional<T> value_;
  Status status_;
};

}  // namespace nw

#endif  // NW_SUPPORT_RESULT_H_
