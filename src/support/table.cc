#include "support/table.h"

#include <cinttypes>
#include <cstdio>

#include "support/check.h"

namespace nw {

void Table::Header(std::vector<std::string> cells) {
  NW_CHECK_MSG(rows_.empty(), "Header() must be called before Row()");
  rows_.push_back(std::move(cells));
}

void Table::Row(std::vector<std::string> cells) {
  NW_CHECK_MSG(!rows_.empty(), "call Header() first");
  NW_CHECK_MSG(cells.size() == rows_[0].size(),
               "row has %zu cells, header has %zu", cells.size(),
               rows_[0].size());
  rows_.push_back(std::move(cells));
}

void Table::Print() const {
  std::printf("\n== %s ==\n", title_.c_str());
  if (rows_.empty()) return;
  std::vector<size_t> width(rows_[0].size(), 0);
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (row[c].size() > width[c]) width[c] = row[c].size();
    }
  }
  for (size_t r = 0; r < rows_.size(); ++r) {
    for (size_t c = 0; c < rows_[r].size(); ++c) {
      std::printf("%-*s  ", static_cast<int>(width[c]), rows_[r][c].c_str());
    }
    std::printf("\n");
    if (r == 0) {
      size_t total = 0;
      for (size_t w : width) total += w + 2;
      for (size_t i = 0; i < total; ++i) std::printf("-");
      std::printf("\n");
    }
  }
  std::fflush(stdout);
}

std::string Table::Num(uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  return buf;
}

std::string Table::Dbl(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

}  // namespace nw
