// Wall-clock stopwatch for the experiment harnesses.
#ifndef NW_SUPPORT_STOPWATCH_H_
#define NW_SUPPORT_STOPWATCH_H_

#include <chrono>

namespace nw {

/// Measures elapsed wall-clock time in microseconds.
class Stopwatch {
 public:
  Stopwatch() : start_(std::chrono::steady_clock::now()) {}
  void Reset() { start_ = std::chrono::steady_clock::now(); }
  double ElapsedUs() const {
    return std::chrono::duration<double, std::micro>(
               std::chrono::steady_clock::now() - start_)
        .count();
  }
  double ElapsedMs() const { return ElapsedUs() / 1000.0; }

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace nw

#endif  // NW_SUPPORT_STOPWATCH_H_
