// Lightweight runtime invariant checks in the spirit of the Google C++ style
// guide's recommendation against exceptions: programmer errors abort with a
// message, recoverable errors travel through Result<T> (see result.h).
#ifndef NW_SUPPORT_CHECK_H_
#define NW_SUPPORT_CHECK_H_

#include <cstdio>
#include <cstdlib>

/// Aborts with a diagnostic if `cond` is false. Enabled in all build modes:
/// the library's invariants are cheap relative to the automata algorithms.
#define NW_CHECK(cond)                                                        \
  do {                                                                        \
    if (!(cond)) {                                                            \
      std::fprintf(stderr, "NW_CHECK failed: %s at %s:%d\n", #cond, __FILE__, \
                   __LINE__);                                                 \
      std::abort();                                                           \
    }                                                                         \
  } while (0)

/// NW_CHECK with a printf-style explanation appended to the diagnostic.
#define NW_CHECK_MSG(cond, ...)                                          \
  do {                                                                   \
    if (!(cond)) {                                                       \
      std::fprintf(stderr, "NW_CHECK failed: %s at %s:%d: ", #cond,      \
                   __FILE__, __LINE__);                                  \
      std::fprintf(stderr, __VA_ARGS__);                                 \
      std::fprintf(stderr, "\n");                                        \
      std::abort();                                                      \
    }                                                                    \
  } while (0)

/// Debug-only check; compiled out in NDEBUG builds for hot loops.
#ifdef NDEBUG
#define NW_DCHECK(cond) ((void)0)
#else
#define NW_DCHECK(cond) NW_CHECK(cond)
#endif

#endif  // NW_SUPPORT_CHECK_H_
