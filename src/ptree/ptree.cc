#include "ptree/ptree.h"

#include <functional>
#include <map>
#include <set>
#include <unordered_set>

#include "support/check.h"

namespace nw {

StateId PushdownTreeAutomaton::AddState() {
  StateId id = static_cast<StateId>(num_states_++);
  leaf_.emplace_back();
  unary_.emplace_back();
  branch_.emplace_back();
  push_.emplace_back();
  pop_.emplace_back();
  return id;
}

void PushdownTreeAutomaton::AddLeaf(StateId q, Symbol a, StateId q2) {
  leaf_[q].push_back({a, q2});
}
void PushdownTreeAutomaton::AddUnary(StateId q, Symbol a, StateId child) {
  unary_[q].push_back({a, child});
}
void PushdownTreeAutomaton::AddBranch(StateId q, Symbol a, StateId left,
                                      StateId right) {
  branch_[q].push_back({a, left, right});
}
void PushdownTreeAutomaton::AddPush(StateId q, StateId q2, uint32_t gamma) {
  NW_CHECK_MSG(gamma != 0 && gamma < num_stack_symbols_, "⊥ is never pushed");
  push_[q].push_back({q2, gamma});
}
void PushdownTreeAutomaton::AddPop(StateId q, uint32_t gamma, StateId q2) {
  NW_DCHECK(gamma < num_stack_symbols_);
  pop_[q].push_back({gamma, q2});
}

namespace {
using Stack = std::vector<uint32_t>;
using Cfg = std::pair<StateId, Stack>;
}  // namespace

bool PushdownTreeAutomaton::AcceptsTree(const OrderedTree& t,
                                        size_t max_stack) const {
  if (t.IsEmpty()) return false;  // runs are defined on non-empty trees

  // ε-closure of a single configuration.
  auto closure = [&](const Cfg& c) {
    std::set<Cfg> out{c};
    std::vector<Cfg> work{c};
    while (!work.empty()) {
      Cfg cur = std::move(work.back());
      work.pop_back();
      for (const PushEdge& pe : push_[cur.first]) {
        if (cur.second.size() >= max_stack) continue;
        Cfg next{pe.target, cur.second};
        next.second.push_back(pe.gamma);
        if (out.insert(next).second) work.push_back(std::move(next));
      }
      if (!cur.second.empty()) {
        for (const PopEdge& po : pop_[cur.first]) {
          if (po.gamma != cur.second.back()) continue;
          Cfg next{po.target, cur.second};
          next.second.pop_back();
          if (out.insert(next).second) work.push_back(std::move(next));
        }
      }
    }
    return out;
  };

  // Memoized: can the subtree rooted at `node` be accepted from cfg?
  std::map<std::pair<const TreeNode*, Cfg>, bool> memo;
  std::function<bool(const TreeNode&, const Cfg&)> accept =
      [&](const TreeNode& node, const Cfg& cfg) -> bool {
    auto key = std::make_pair(&node, cfg);
    auto it = memo.find(key);
    if (it != memo.end()) return it->second;
    memo[key] = false;  // cut cycles through ε-loops
    bool ok = false;
    for (const Cfg& c : closure(cfg)) {
      if (ok) break;
      NW_CHECK_MSG(node.children.size() <= 2, "arity ≤ 2 supported");
      if (node.children.empty()) {
        for (const Leaf& l : leaf_[c.first]) {
          if (l.a != node.label) continue;
          // After consuming the leaf: ε-moves to an empty stack.
          for (const Cfg& e : closure({l.q2, c.second})) {
            if (e.second.empty()) {
              ok = true;
              break;
            }
          }
          if (ok) break;
        }
      } else if (node.children.size() == 1) {
        for (const Unary& u : unary_[c.first]) {
          if (u.a != node.label) continue;
          if (accept(node.children[0], {u.child, c.second})) {
            ok = true;
            break;
          }
        }
      } else {
        for (const Branch& b : branch_[c.first]) {
          if (b.a != node.label) continue;
          if (accept(node.children[0], {b.left, c.second}) &&
              accept(node.children[1], {b.right, c.second})) {
            ok = true;
            break;
          }
        }
      }
    }
    memo[key] = ok;
    return ok;
  };

  for (StateId q0 : initial_) {
    if (accept(t.root(), {q0, {0}})) return true;  // (q0, ⊥)
  }
  return false;
}

bool PushdownTreeAutomaton::IsEmpty() const {
  NW_CHECK_MSG(num_states_ <= 32, "emptiness supports at most 32 states");
  // R(q, U) as (q, bitmask): some tree runs from (q, ε) to leaves (u, ε),
  // u ∈ U. The relation is upward closed in U.
  std::unordered_set<uint64_t> seen;
  std::vector<std::pair<StateId, uint32_t>> all;
  std::vector<uint64_t> work;
  auto add = [&](StateId q, uint32_t u) {
    uint64_t key = (static_cast<uint64_t>(q) << 32) | u;
    if (!seen.insert(key).second) return;
    all.push_back({q, u});
    work.push_back(key);
  };
  for (StateId q = 0; q < num_states_; ++q) {
    for (const Leaf& l : leaf_[q]) add(q, 1u << l.q2);
  }
  while (!work.empty()) {
    uint64_t key = work.back();
    work.pop_back();
    StateId q = static_cast<StateId>(key >> 32);
    uint32_t u = static_cast<uint32_t>(key);
    // Unary extension.
    for (StateId p = 0; p < num_states_; ++p) {
      for (const Unary& un : unary_[p]) {
        if (un.child == q) add(p, u);
      }
    }
    // Branch: combine with every known co-branch.
    for (StateId p = 0; p < num_states_; ++p) {
      for (const Branch& b : branch_[p]) {
        if (b.left == q) {
          for (auto [q2, u2] : std::vector<std::pair<StateId, uint32_t>>(
                   all.begin(), all.end())) {
            if (q2 == b.right) add(p, u | u2);
          }
        }
        if (b.right == q) {
          for (auto [q2, u2] : std::vector<std::pair<StateId, uint32_t>>(
                   all.begin(), all.end())) {
            if (q2 == b.left) add(p, u | u2);
          }
        }
      }
    }
    // Push–pop wrap: push (p → q, γ); every leaf pops γ.
    for (StateId p = 0; p < num_states_; ++p) {
      for (const PushEdge& pe : push_[p]) {
        if (pe.target != q) continue;
        uint32_t u2 = 0;
        bool ok = true;
        for (StateId l = 0; l < num_states_; ++l) {
          if (((u >> l) & 1) == 0) continue;
          bool any = false;
          for (const PopEdge& po : pop_[l]) {
            if (po.gamma == pe.gamma) {
              u2 |= 1u << po.target;
              any = true;
            }
          }
          if (!any) {
            ok = false;
            break;
          }
        }
        if (ok) add(p, u2);
      }
    }
  }
  last_summary_count_ = all.size();
  // Nonempty iff R(q0, U) with every u ∈ U able to pop ⊥.
  for (auto [q, u] : all) {
    bool q0ok = false;
    for (StateId q0 : initial_) q0ok = q0ok || q0 == q;
    if (!q0ok) continue;
    bool final_ok = true;
    for (StateId l = 0; l < num_states_ && final_ok; ++l) {
      if (((u >> l) & 1) == 0) continue;
      bool any = false;
      for (const PopEdge& po : pop_[l]) any = any || po.gamma == 0;
      final_ok = any;
    }
    if (final_ok) return false;
  }
  return true;
}

}  // namespace nw
