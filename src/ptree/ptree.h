// Top-down pushdown tree automata (Guessarian [8]; paper §4.2, Lemma 5) —
// the context-free-tree baseline. A run starts at the root in (q0, ⊥);
// at a node the automaton forks into the children, *copying its stack* to
// each; stack updates are ε-moves; it accepts when every leaf's run ends
// with an empty stack. Nodes of arity 0 (leaf), 1 (stem) and 2 (branch)
// are supported — enough for the paper's Figure-2 family (a stem of a's
// topped by a full binary tree of b's).
#ifndef NW_PTREE_PTREE_H_
#define NW_PTREE_PTREE_H_

#include <vector>

#include "trees/ordered_tree.h"
#include "wordauto/dfa.h"

namespace nw {

/// Top-down pushdown tree automaton over trees of arity ≤ 2.
class PushdownTreeAutomaton {
 public:
  /// Stack symbol 0 is ⊥ (pre-loaded, never pushed).
  PushdownTreeAutomaton(size_t num_symbols, size_t num_stack_symbols)
      : num_symbols_(num_symbols), num_stack_symbols_(num_stack_symbols) {}

  StateId AddState();
  void AddInitial(StateId q) { initial_.push_back(q); }

  /// Leaf transition: consume an a-labeled leaf; the run then performs
  /// ε-moves and must reach an empty stack.
  void AddLeaf(StateId q, Symbol a, StateId q2);
  /// Unary (stem) transition.
  void AddUnary(StateId q, Symbol a, StateId child);
  /// Binary transition: fork into the two children with copied stacks.
  void AddBranch(StateId q, Symbol a, StateId left, StateId right);
  /// ε push (γ ≠ ⊥) / pop.
  void AddPush(StateId q, StateId q2, uint32_t gamma);
  void AddPop(StateId q, uint32_t gamma, StateId q2);

  size_t num_states() const { return num_states_; }

  /// Membership (NP-complete, like pushdown NWAs — the same stack-copying
  /// mechanism; §4.3). Bounded exhaustive search with memoization.
  bool AcceptsTree(const OrderedTree& t, size_t max_stack = 64) const;

  /// Emptiness via saturation of R(q, U) (§4.4): R(q, U) holds iff some
  /// tree has a run from (q, ε) whose leaves all end in (u, ε), u ∈ U.
  /// Exponential in |Q| (the paper's Exptime bound). Requires |Q| ≤ 32.
  bool IsEmpty() const;

  /// Summary count from the last IsEmpty() (experiment metric).
  size_t last_summary_count() const { return last_summary_count_; }

 private:
  struct PushEdge {
    StateId target;
    uint32_t gamma;
  };
  struct PopEdge {
    uint32_t gamma;
    StateId target;
  };
  struct Unary {
    Symbol a;
    StateId child;
  };
  struct Branch {
    Symbol a;
    StateId left, right;
  };
  struct Leaf {
    Symbol a;
    StateId q2;
  };

  size_t num_symbols_;
  size_t num_stack_symbols_;
  size_t num_states_ = 0;
  std::vector<StateId> initial_;
  std::vector<std::vector<Leaf>> leaf_;
  std::vector<std::vector<Unary>> unary_;
  std::vector<std::vector<Branch>> branch_;
  std::vector<std::vector<PushEdge>> push_;
  std::vector<std::vector<PopEdge>> pop_;
  mutable size_t last_summary_count_ = 0;
};

}  // namespace nw

#endif  // NW_PTREE_PTREE_H_
