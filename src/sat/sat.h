// CNF formulas and a small DPLL solver — the independent oracle for the
// Theorem 10 reduction (membership of pushdown NWAs is NP-complete via
// CNF-SAT).
#ifndef NW_SAT_SAT_H_
#define NW_SAT_SAT_H_

#include <cstdint>
#include <vector>

#include "support/rng.h"

namespace nw {

/// A literal: variable index (0-based) with sign.
struct Literal {
  uint32_t var;
  bool positive;
};

/// A CNF formula: conjunction of clauses, each a disjunction of literals.
struct Cnf {
  uint32_t num_vars = 0;
  std::vector<std::vector<Literal>> clauses;

  /// Evaluates under a full assignment (assignment[v] = truth of var v).
  bool Eval(const std::vector<bool>& assignment) const;

  /// Uniform random k-SAT instance.
  static Cnf Random(Rng* rng, uint32_t num_vars, uint32_t num_clauses,
                    uint32_t k = 3);
};

/// DPLL with unit propagation. Returns satisfiability; fills `model` (if
/// non-null) with a satisfying assignment on success.
bool DpllSolve(const Cnf& cnf, std::vector<bool>* model = nullptr);

}  // namespace nw

#endif  // NW_SAT_SAT_H_
