#include "sat/sat.h"

#include "support/check.h"

namespace nw {

bool Cnf::Eval(const std::vector<bool>& assignment) const {
  NW_CHECK(assignment.size() >= num_vars);
  for (const auto& clause : clauses) {
    bool sat = false;
    for (const Literal& lit : clause) {
      if (assignment[lit.var] == lit.positive) {
        sat = true;
        break;
      }
    }
    if (!sat) return false;
  }
  return true;
}

Cnf Cnf::Random(Rng* rng, uint32_t num_vars, uint32_t num_clauses,
                uint32_t k) {
  NW_CHECK(num_vars >= k);
  Cnf cnf;
  cnf.num_vars = num_vars;
  for (uint32_t c = 0; c < num_clauses; ++c) {
    std::vector<Literal> clause;
    std::vector<bool> used(num_vars, false);
    while (clause.size() < k) {
      uint32_t v = static_cast<uint32_t>(rng->Below(num_vars));
      if (used[v]) continue;
      used[v] = true;
      clause.push_back({v, rng->Chance(1, 2)});
    }
    cnf.clauses.push_back(std::move(clause));
  }
  return cnf;
}

namespace {

enum class Value : uint8_t { kUnset, kTrue, kFalse };

bool Dpll(const Cnf& cnf, std::vector<Value>* assign) {
  // Unit propagation to fixpoint.
  std::vector<std::pair<uint32_t, Value>> trail;
  bool changed = true;
  while (changed) {
    changed = false;
    for (const auto& clause : cnf.clauses) {
      int unset = 0;
      const Literal* unit = nullptr;
      bool sat = false;
      for (const Literal& lit : clause) {
        Value v = (*assign)[lit.var];
        if (v == Value::kUnset) {
          ++unset;
          unit = &lit;
        } else if ((v == Value::kTrue) == lit.positive) {
          sat = true;
          break;
        }
      }
      if (sat) continue;
      if (unset == 0) {
        // Conflict: undo trail.
        for (auto& [var, old] : trail) (*assign)[var] = old;
        return false;
      }
      if (unset == 1) {
        trail.push_back({unit->var, Value::kUnset});
        (*assign)[unit->var] = unit->positive ? Value::kTrue : Value::kFalse;
        changed = true;
      }
    }
  }
  // Pick a branching variable.
  uint32_t branch = cnf.num_vars;
  for (uint32_t v = 0; v < cnf.num_vars; ++v) {
    if ((*assign)[v] == Value::kUnset) {
      branch = v;
      break;
    }
  }
  if (branch == cnf.num_vars) return true;  // complete assignment, all sat
  for (Value choice : {Value::kTrue, Value::kFalse}) {
    (*assign)[branch] = choice;
    if (Dpll(cnf, assign)) return true;
  }
  (*assign)[branch] = Value::kUnset;
  for (auto& [var, old] : trail) (*assign)[var] = old;
  return false;
}

}  // namespace

bool DpllSolve(const Cnf& cnf, std::vector<bool>* model) {
  std::vector<Value> assign(cnf.num_vars, Value::kUnset);
  if (!Dpll(cnf, &assign)) return false;
  if (model != nullptr) {
    model->assign(cnf.num_vars, false);
    for (uint32_t v = 0; v < cnf.num_vars; ++v) {
      (*model)[v] = assign[v] == Value::kTrue;
    }
  }
  return true;
}

}  // namespace nw
