// Shared bank compilation (ROADMAP item 2): K deterministic query
// automata over one alphabet fuse into a single product automaton whose
// states are interned K-tuples of component states, with a per-state
// accept bitset recording which queries accept there. The engine then
// steps ONE transition table per stream position instead of K, and pushes
// ONE StateId per call frame instead of K — both the per-position work and
// the resident run state become independent of the bank size.
//
// The product is explored lazily and memoized: the first time a
// (state, symbol) or (state, frame, symbol) combination is stepped, the
// K component transitions run once and the resulting tuple is interned;
// every later visit is a single table lookup. Only the product states a
// real stream reaches are ever materialized, which is what makes the
// construction affordable — the full product is exponential in K, but
// document streams drive the component automata through strongly
// correlated trajectories (they all track the same ancestor chain), so
// the reachable product is small. A hard state cap turns pathological
// blow-ups into a loud failure instead of an OOM; callers can always fall
// back to the per-query SoA path.
#ifndef NW_OPT_BANK_H_
#define NW_OPT_BANK_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "nwa/nwa.h"

namespace nw {

// The NWStats sink (obs/stats.h) and the NWProf timeline (obs/prof.h)
// are held by pointer only, so the opt layer's header stays free of
// observability includes.
struct StatsSink;
class CompileTimeline;

class SharedBank {
 public:
  /// All automata must share one symbol space and have initial states set.
  /// The pointees must outlive the bank. At least one automaton.
  explicit SharedBank(std::vector<const Nwa*> autos);

  /// Number of component query automata K.
  size_t num_queries() const { return autos_.size(); }
  /// Size of the shared symbol space Σ.
  size_t num_symbols() const { return num_symbols_; }
  /// Interned tuple of the component initial states.
  StateId initial() const { return initial_; }
  /// Product states materialized so far (grows as streams explore).
  size_t num_states() const { return live_.size(); }

  /// Attaches an NWStats sink (obs/stats.h): the bank then counts interned
  /// product states and memo hits/misses per step. `sink` must outlive the
  /// bank and be single-writer — banks are already confined to one thread
  /// (they memoize while streaming), so the engine's own sink is the
  /// natural choice. Off (nullptr) by default: the disabled path is one
  /// branch on a pointer constant for the stream.
  void set_stats(StatsSink* sink) { stats_ = sink; }

  // -- Stepping. Mirrors the Nwa single-position step API, but states are
  // product-tuple ids and the methods memoize (hence non-const). A dead
  // component parks kNoState in its tuple slot; the all-dead tuple is a
  // regular absorbing state, so these never return kNoState.

  /// Internal position: memoized product δi.
  StateId StepInternal(StateId q, Symbol a);
  /// Writes the frame tuple to push to `*hier_out` (one StateId — the
  /// interned tuple of the K hierarchical-edge states).
  StateId StepCall(StateId q, Symbol a, StateId* hier_out);
  /// `hier` is the popped frame tuple, or kNoState for a pending return
  /// (each component then reads its own hier_initial).
  StateId StepReturn(StateId q, StateId hier, Symbol a);

  // -- Exploration + freeze API (serve/frozen_bank.h). The serving layer
  // pre-explores the product, snapshots it into an immutable FrozenBank,
  // and keeps per-shard SharedBanks as mutable overflow space. --

  /// Drives the lazy product to a fixed point over the whole alphabet:
  /// every (state, symbol) internal and call step, and every return step
  /// over (state, pushable frame, symbol) — where the pushable frames are
  /// exactly the call-hier targets plus the pending-return sentinel — is
  /// memoized. Afterwards a frozen snapshot cannot miss on any stream
  /// whose symbols are in range. Stops early and returns false if the
  /// closure would exceed `max_states` (the partial exploration is kept;
  /// a snapshot then serves what was reached and overflows the rest).
  /// With a timeline (obs/prof.h) the call records one "explore" phase:
  /// wall µs plus the product state count before and after.
  bool ExploreAll(size_t max_states, CompileTimeline* timeline = nullptr);

  /// Interns an externally supplied component tuple (one StateId per
  /// query, kNoState = dead run) and returns its product id. Used by the
  /// overflow path to transplant a frozen state into a fresh bank.
  StateId InternTuple(const std::vector<StateId>& tuple);

  /// The component automata, in query order (aliases, not owned).
  const std::vector<const Nwa*>& autos() const { return autos_; }

  /// Pointer to the K component states of tuple `q` (valid until the next
  /// interning mutation).
  const StateId* tuple(StateId q) const {
    return tuples_.data() + q * autos_.size();
  }

  // Non-mutating memo lookups, kNoState = that step was never taken.
  // These are what FrozenBank::Freeze snapshots.

  StateId PeekInternal(StateId q, Symbol a) const {
    return internal_[q * num_symbols_ + a];
  }
  StateId PeekCallLinear(StateId q, Symbol a) const {
    return call_lin_[q * num_symbols_ + a];
  }
  StateId PeekCallHier(StateId q, Symbol a) const {
    return call_hier_[q * num_symbols_ + a];
  }

  /// FNV-1a over a K-component span — the interning hash. Shared with
  /// FrozenBank::FindTuple so snapshot lookups agree with interning.
  static uint64_t TupleHash(const StateId* tuple, size_t k);

  /// Packs a product return lookup (24-bit states, 16-bit symbol); a
  /// pending frame (hier == kNoState) packs as the reserved all-ones
  /// hier value. Shared with FrozenBank's sorted return table so the
  /// snapshot and the live memo can never disagree on layout.
  static uint64_t PackReturnKey(StateId q, StateId hier, Symbol a);

  /// One memoized return transition (hier == kNoState for the pending-
  /// return row), unpacked for snapshotting.
  struct MemoReturn {
    StateId from;
    StateId hier;
    Symbol symbol;
    StateId target;
  };
  /// Every memoized return transition, in unspecified order.
  std::vector<MemoReturn> MemoizedReturns() const;

  // -- Per-state facts, computed once at interning time. --

  /// Accept bitset: bit (w*64+b) of word w = query (w*64+b) accepting.
  const uint64_t* accepts(StateId q) const {
    return accept_.data() + q * words_;
  }
  /// Words per accept bitset (= ceil(num_queries / 64)).
  size_t accept_words() const { return words_; }
  /// Is component query `id` accepting in product state `q`?
  bool accepting(StateId q, size_t id) const {
    return (accepts(q)[id / 64] >> (id % 64)) & 1;
  }
  /// Number of still-live component runs in state `q`.
  size_t live(StateId q) const { return live_[q]; }
  /// Component query `id`'s state in tuple `q` (kNoState = that run died).
  StateId component(StateId q, size_t id) const {
    return tuples_[q * autos_.size() + id];
  }

 private:
  /// Interned product ids must fit the 24-bit return-key packing, with the
  /// top value reserved for "pending" frames.
  static constexpr StateId kMaxStates = (1u << 24) - 1;

  StateId Intern(const std::vector<StateId>& tuple);
  /// ExploreAll's fixed-point loop, split out so the public entry can
  /// clock it as one NWProf phase.
  bool ExploreFixpoint(size_t max_states);

  std::vector<const Nwa*> autos_;
  size_t num_symbols_;
  size_t words_;
  StateId initial_;
  std::vector<StateId> tuples_;  ///< K components per state, state-major
  std::unordered_map<uint64_t, std::vector<StateId>> buckets_;
  std::vector<uint64_t> accept_;
  std::vector<uint32_t> live_;
  // Memoized transitions; kNoState = not computed yet (a computed result
  // is always a valid interned id, never kNoState).
  std::vector<StateId> internal_;   // [q*|Σ|+a]
  std::vector<StateId> call_lin_;   // [q*|Σ|+a]
  std::vector<StateId> call_hier_;  // [q*|Σ|+a]
  std::unordered_map<uint64_t, StateId> returns_;
  /// NWStats sink, or nullptr when observability is off (see set_stats).
  StatsSink* stats_ = nullptr;
};

/// Convenience spelling of the tentpole API: compiles the bank of
/// already-lowered query automata into one shared product automaton.
inline SharedBank CompileBank(std::vector<const Nwa*> autos) {
  return SharedBank(std::move(autos));
}

}  // namespace nw

#endif  // NW_OPT_BANK_H_
