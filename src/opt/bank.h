// Shared bank compilation (ROADMAP item 2): K deterministic query
// automata over one alphabet fuse into a single product automaton whose
// states are interned K-tuples of component states, with a per-state
// accept bitset recording which queries accept there. The engine then
// steps ONE transition table per stream position instead of K, and pushes
// ONE StateId per call frame instead of K — both the per-position work and
// the resident run state become independent of the bank size.
//
// The product is explored lazily and memoized: the first time a
// (state, symbol) or (state, frame, symbol) combination is stepped, the
// K component transitions run once and the resulting tuple is interned;
// every later visit is a single table lookup. Only the product states a
// real stream reaches are ever materialized, which is what makes the
// construction affordable — the full product is exponential in K, but
// document streams drive the component automata through strongly
// correlated trajectories (they all track the same ancestor chain), so
// the reachable product is small. A hard state cap turns pathological
// blow-ups into a loud failure instead of an OOM; callers can always fall
// back to the per-query SoA path.
#ifndef NW_OPT_BANK_H_
#define NW_OPT_BANK_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "nwa/nwa.h"

namespace nw {

class SharedBank {
 public:
  /// All automata must share one symbol space and have initial states set.
  /// The pointees must outlive the bank. At least one automaton.
  explicit SharedBank(std::vector<const Nwa*> autos);

  size_t num_queries() const { return autos_.size(); }
  size_t num_symbols() const { return num_symbols_; }
  /// Interned tuple of the component initial states.
  StateId initial() const { return initial_; }
  /// Product states materialized so far (grows as streams explore).
  size_t num_states() const { return live_.size(); }

  // -- Stepping. Mirrors the Nwa single-position step API, but states are
  // product-tuple ids and the methods memoize (hence non-const). A dead
  // component parks kNoState in its tuple slot; the all-dead tuple is a
  // regular absorbing state, so these never return kNoState.

  StateId StepInternal(StateId q, Symbol a);
  /// Writes the frame tuple to push to `*hier_out` (one StateId — the
  /// interned tuple of the K hierarchical-edge states).
  StateId StepCall(StateId q, Symbol a, StateId* hier_out);
  /// `hier` is the popped frame tuple, or kNoState for a pending return
  /// (each component then reads its own hier_initial).
  StateId StepReturn(StateId q, StateId hier, Symbol a);

  // -- Per-state facts, computed once at interning time. --

  /// Accept bitset: bit (w*64+b) of word w = query (w*64+b) accepting.
  const uint64_t* accepts(StateId q) const {
    return accept_.data() + q * words_;
  }
  size_t accept_words() const { return words_; }
  bool accepting(StateId q, size_t id) const {
    return (accepts(q)[id / 64] >> (id % 64)) & 1;
  }
  /// Number of still-live component runs in state `q`.
  size_t live(StateId q) const { return live_[q]; }
  /// Component query `id`'s state in tuple `q` (kNoState = that run died).
  StateId component(StateId q, size_t id) const {
    return tuples_[q * autos_.size() + id];
  }

 private:
  /// Interned product ids must fit the 24-bit return-key packing, with the
  /// top value reserved for "pending" frames.
  static constexpr StateId kMaxStates = (1u << 24) - 1;

  StateId Intern(const std::vector<StateId>& tuple);

  std::vector<const Nwa*> autos_;
  size_t num_symbols_;
  size_t words_;
  StateId initial_;
  std::vector<StateId> tuples_;  ///< K components per state, state-major
  std::unordered_map<uint64_t, std::vector<StateId>> buckets_;
  std::vector<uint64_t> accept_;
  std::vector<uint32_t> live_;
  // Memoized transitions; kNoState = not computed yet (a computed result
  // is always a valid interned id, never kNoState).
  std::vector<StateId> internal_;   // [q*|Σ|+a]
  std::vector<StateId> call_lin_;   // [q*|Σ|+a]
  std::vector<StateId> call_hier_;  // [q*|Σ|+a]
  std::unordered_map<uint64_t, StateId> returns_;
};

/// Convenience spelling of the tentpole API: compiles the bank of
/// already-lowered query automata into one shared product automaton.
inline SharedBank CompileBank(std::vector<const Nwa*> autos) {
  return SharedBank(std::move(autos));
}

}  // namespace nw

#endif  // NW_OPT_BANK_H_
