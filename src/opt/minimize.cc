#include "opt/minimize.h"

#include <algorithm>
#include <unordered_map>
#include <vector>

#include "support/check.h"

namespace nw {

namespace {

/// FNV-1a over a word vector, for hashing refinement signatures.
struct SigHash {
  size_t operator()(const std::vector<uint64_t>& v) const {
    uint64_t h = 1469598103934665603ULL;
    for (uint64_t w : v) {
      h ^= w;
      h *= 1099511628211ULL;
    }
    return static_cast<size_t>(h);
  }
};

/// One return rule with all coordinates remapped to dense reachable ids.
struct DenseRule {
  uint32_t partner;  ///< the other argument (hier for by-from, from for by-hier)
  Symbol symbol;
  uint32_t target;
};

}  // namespace

MinimizeResult MinimizeNwa(const Nwa& a) {
  NW_CHECK_MSG(a.initial() != kNoState, "MinimizeNwa needs an initial state");
  const size_t sigma = a.num_symbols();
  MinimizeResult out{Nwa(sigma), a.num_states(), 0, 0};

  // --- Reachable closure. Seeded by the initial and hierarchical-initial
  // states and closed under every lookup a run could make; return rules
  // fire once both their linear and hierarchical arguments are in. This
  // over-approximates true reachability (it does not track which frame can
  // be on top at a return), which is sound: extra states only make the
  // quotient finer, never wrong.
  const std::vector<NwaReturnRule> rules = a.ReturnRules();
  std::vector<char> in(a.num_states(), 0);
  std::vector<StateId> worklist;
  auto mark = [&](StateId q) {
    if (q != kNoState && !in[q]) {
      in[q] = 1;
      worklist.push_back(q);
    }
  };
  mark(a.initial());
  mark(a.hier_initial());
  bool rules_changed = true;
  while (!worklist.empty() || rules_changed) {
    while (!worklist.empty()) {
      StateId q = worklist.back();
      worklist.pop_back();
      for (Symbol s = 0; s < sigma; ++s) {
        mark(a.NextInternal(q, s));
        mark(a.NextCallLinear(q, s));
        mark(a.NextCallHier(q, s));
      }
    }
    rules_changed = false;
    for (const NwaReturnRule& r : rules) {
      if (in[r.from] && in[r.hier] && !in[r.target]) {
        mark(r.target);
        rules_changed = true;
      }
    }
  }

  // Dense ids for reachable states; index m is a virtual sink absorbing
  // every missing transition (and any explicit Totalize() sink merges into
  // its class during refinement).
  std::vector<uint32_t> dense(a.num_states(), UINT32_MAX);
  std::vector<StateId> orig;
  for (StateId q = 0; q < a.num_states(); ++q) {
    if (in[q]) {
      dense[q] = static_cast<uint32_t>(orig.size());
      orig.push_back(q);
    }
  }
  const uint32_t m = static_cast<uint32_t>(orig.size());
  auto to_dense = [&](StateId q) { return q == kNoState ? m : dense[q]; };

  // Return rules grouped by each role the state can play. Rules whose
  // hierarchical argument is unreachable can never fire and are dropped.
  std::vector<std::vector<DenseRule>> by_from(m), by_hier(m);
  for (const NwaReturnRule& r : rules) {
    if (!in[r.from] || !in[r.hier]) continue;
    uint32_t f = dense[r.from], h = dense[r.hier], t = dense[r.target];
    by_from[f].push_back({h, r.symbol, t});
    by_hier[h].push_back({f, r.symbol, t});
  }
  for (auto& v : by_from) {
    std::sort(v.begin(), v.end(), [](const DenseRule& x, const DenseRule& y) {
      return x.partner != y.partner ? x.partner < y.partner
                                    : x.symbol < y.symbol;
    });
  }
  for (auto& v : by_hier) {
    std::sort(v.begin(), v.end(), [](const DenseRule& x, const DenseRule& y) {
      return x.partner != y.partner ? x.partner < y.partner
                                    : x.symbol < y.symbol;
    });
  }

  // --- Moore refinement to a congruence. cls[i] for i < m is state
  // orig[i]'s class; cls[m] is the sink's. The signature of a state
  // packs, per symbol, the classes of its internal and call successors,
  // then its sparse return behavior in both roles. A return entry whose
  // target sits in the sink's class is normalized away — it is
  // indistinguishable from an undefined rule.
  //
  // Return partners are kept CONCRETE (dense state ids, not their
  // classes). Class-level partners would merge more — but they are
  // unsound for the two-argument δr: with q1,q2 in one block and h1,h2
  // in another, δr(q1,h1)=t, δr(q1,h2)=⊥, δr(q2,h1)=⊥, δr(q2,h2)=t gives
  // equal target-class SETS in both roles (stable partition), yet no
  // single quotient rule for (block,block) is right. Concrete partners
  // make the fixpoint pointwise: q1~q2 forces equal target classes for
  // EVERY h, and h1~h2 for every q, which is exactly what quotienting
  // needs.
  std::vector<uint32_t> cls(m + 1);
  for (uint32_t i = 0; i < m; ++i) cls[i] = a.is_final(orig[i]) ? 1 : 0;
  cls[m] = 0;
  size_t num_classes = 2;
  for (;;) {
    std::unordered_map<std::vector<uint64_t>, uint32_t, SigHash> sig_to_class;
    std::vector<uint32_t> next(m + 1);
    for (uint32_t i = 0; i <= m; ++i) {
      std::vector<uint64_t> sig;
      sig.push_back(cls[i]);
      if (i < m) {
        StateId q = orig[i];
        for (Symbol s = 0; s < sigma; ++s) {
          sig.push_back(cls[to_dense(a.NextInternal(q, s))]);
          sig.push_back(cls[to_dense(a.NextCallLinear(q, s))]);
          sig.push_back(cls[to_dense(a.NextCallHier(q, s))]);
        }
        for (const auto* role : {&by_from[i], &by_hier[i]}) {
          sig.push_back(0xFFFFFFFFFFFFFFFFULL);  // role separator
          for (const DenseRule& r : *role) {
            if (cls[r.target] == cls[m]) continue;  // ≡ undefined
            sig.push_back((static_cast<uint64_t>(r.partner) << 32) | r.symbol);
            sig.push_back(cls[r.target]);
          }
        }
      } else {
        // The sink: every lookup stays in its own class, no return rules.
        for (Symbol s = 0; s < 3 * sigma; ++s) sig.push_back(cls[m]);
        sig.push_back(0xFFFFFFFFFFFFFFFFULL);
        sig.push_back(0xFFFFFFFFFFFFFFFFULL);
      }
      next[i] = sig_to_class
                    .emplace(std::move(sig),
                             static_cast<uint32_t>(sig_to_class.size()))
                    .first->second;
    }
    bool stable = sig_to_class.size() == num_classes;
    num_classes = sig_to_class.size();
    cls = std::move(next);
    if (stable) break;
  }
  out.classes = num_classes;

  const uint32_t dead_class = cls[m];
  if (cls[dense[a.initial()]] == dead_class) {
    // The whole language is empty: one initial reject state suffices.
    out.nwa.set_initial(out.nwa.AddState(false));
    out.states_after = 1;
    return out;
  }

  // --- Quotient. One state per live class (representative = smallest
  // member; congruence makes any member's rows agree class-wise). The dead
  // class is materialized only when a surviving call pushes it or pending
  // returns read it: such a frame must exist so the run above it can keep
  // accepting, but it needs no transitions — popping it dies, which is
  // exactly the original's fate (every return reading a dead frame has a
  // dead target, or none).
  std::vector<uint32_t> rep(num_classes, UINT32_MAX);
  for (uint32_t i = 0; i < m; ++i) {
    if (rep[cls[i]] == UINT32_MAX) rep[cls[i]] = i;
  }
  bool need_dead = cls[dense[a.hier_initial()]] == dead_class;
  for (uint32_t c = 0; c < num_classes; ++c) {
    if (c == dead_class || rep[c] == UINT32_MAX) continue;
    StateId q = orig[rep[c]];
    for (Symbol s = 0; s < sigma; ++s) {
      StateId l = a.NextCallLinear(q, s), h = a.NextCallHier(q, s);
      if (l == kNoState || h == kNoState) continue;
      if (cls[dense[l]] != dead_class && cls[dense[h]] == dead_class) {
        need_dead = true;
      }
    }
  }

  std::vector<StateId> new_id(num_classes, kNoState);
  for (uint32_t i = 0; i < m; ++i) {
    uint32_t c = cls[i];
    if (c != dead_class && new_id[c] == kNoState) {
      new_id[c] = out.nwa.AddState(a.is_final(orig[i]));
    }
  }
  if (need_dead) new_id[dead_class] = out.nwa.AddState(false);
  out.nwa.set_initial(new_id[cls[dense[a.initial()]]]);
  // hier_initial is always materialized: a dead one set need_dead above.
  out.nwa.set_hier_initial(new_id[cls[dense[a.hier_initial()]]]);

  for (uint32_t c = 0; c < num_classes; ++c) {
    if (c == dead_class || new_id[c] == kNoState) continue;
    uint32_t i = rep[c];
    StateId q = orig[i];
    for (Symbol s = 0; s < sigma; ++s) {
      StateId t = a.NextInternal(q, s);
      if (t != kNoState && cls[dense[t]] != dead_class) {
        out.nwa.SetInternal(new_id[c], s, new_id[cls[dense[t]]]);
      }
      StateId l = a.NextCallLinear(q, s), h = a.NextCallHier(q, s);
      // A call whose linear target is dead-equivalent can never accept
      // again (dead states absorb under every continuation, frames
      // included), so the quotient lets the run die at the call itself.
      if (l == kNoState || h == kNoState || cls[dense[l]] == dead_class) {
        continue;
      }
      out.nwa.SetCall(new_id[c], s, new_id[cls[dense[l]]],
                      new_id[cls[dense[h]]]);
    }
    for (const DenseRule& r : by_from[i]) {
      if (cls[r.target] == dead_class) continue;
      // A live target implies a live frame class (a dead frame's
      // hierarchical-role signature is all-dead), so new_id[cls[partner]]
      // is always materialized here.
      out.nwa.SetReturn(new_id[c], new_id[cls[r.partner]], r.symbol,
                        new_id[cls[r.target]]);
    }
  }
  out.states_after = out.nwa.num_states();
  return out;
}

}  // namespace nw
