// Algebraic query rewrites — AST-level optimization ahead of automaton
// lowering (ROADMAP item 1). Three passes, applied in order:
//
//  1. Negation normal form: `not` is pushed inward through De Morgan
//     (not(x and y) → not x or not y, dually for or) and double negations
//     cancel, so the compiler's expensive ComplementN round trips happen
//     only at atoms, never above a boolean connective.
//  2. Flatten + dedup: chains of the same connective are flattened into
//     one child list and structurally equal children are dropped
//     (x and x → x). Single survivors replace their connective.
//  3. Path-atom fusion: sibling path atoms under an `or` merge into ONE
//     kPathSet atom. This is sound precisely for `or` — "some element's
//     root path matches p1 OR some element's matches p2" is "some
//     element's root path lies in L(p1) ∪ L(p2)" — and the union lowers
//     through a single regex → DFA → NWA (compile.h), so paths sharing a
//     step prefix share DFA states instead of multiplying through the
//     nondeterministic closure ops. (Under `and` the witnesses may be
//     different elements, so no such fusion exists.)
//
// Rewrites preserve the query language exactly; tests/opt_test.cc checks
// this differentially against the unrewritten compilation and the oracle.
#ifndef NW_OPT_REWRITE_H_
#define NW_OPT_REWRITE_H_

#include "query/nwquery.h"

namespace nw {

/// Applies all rewrite passes. Idempotent: RewriteQuery(RewriteQuery(q))
/// is structurally equal to RewriteQuery(q).
Query RewriteQuery(const Query& q);

}  // namespace nw

#endif  // NW_OPT_REWRITE_H_
