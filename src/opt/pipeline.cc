#include "opt/pipeline.h"

#include "opt/minimize.h"
#include "opt/rewrite.h"
#include "query/compile.h"

namespace nw {

bool ParseOptLevel(const std::string& level, OptOptions* out) {
  if (level == "none") {
    *out = OptOptions::None();
  } else if (level == "rewrite") {
    *out = {true, false, false};
  } else if (level == "min") {
    *out = {false, true, false};
  } else if (level == "bank") {
    *out = {false, false, true};
  } else if (level == "all") {
    *out = OptOptions::All();
  } else {
    return false;
  }
  return true;
}

OptimizedQuery CompileOptimized(const Query& q, size_t num_symbols,
                                const OptOptions& opt) {
  Query rewritten = opt.rewrite ? RewriteQuery(q) : q;
  Nwa compiled = CompileQuery(rewritten, num_symbols);
  size_t before = compiled.num_states();
  if (opt.minimize) {
    compiled = MinimizeNwa(compiled).nwa;
  }
  size_t after = compiled.num_states();
  return {std::move(rewritten), std::move(compiled), before, after};
}

void OptimizedBank::Register(QueryEngine* engine) {
  if (shared != nullptr) {
    engine->AddBank(shared.get());
    return;
  }
  for (const OptimizedQuery& q : queries) engine->Add(&q.nwa);
}

size_t OptimizedBank::states_compiled() const {
  size_t total = 0;
  for (const OptimizedQuery& q : queries) total += q.states_compiled;
  return total;
}

size_t OptimizedBank::states_final() const {
  size_t total = 0;
  for (const OptimizedQuery& q : queries) total += q.states_final;
  return total;
}

OptimizedBank OptimizeBank(const std::vector<Query>& queries,
                           size_t num_symbols, const OptOptions& opt) {
  OptimizedBank out;
  out.queries.reserve(queries.size());
  for (const Query& q : queries) {
    out.queries.push_back(CompileOptimized(q, num_symbols, opt));
  }
  if (opt.bank && !out.queries.empty()) {
    std::vector<const Nwa*> autos;
    autos.reserve(out.queries.size());
    for (const OptimizedQuery& q : out.queries) autos.push_back(&q.nwa);
    out.shared = std::make_unique<SharedBank>(std::move(autos));
  }
  return out;
}

}  // namespace nw
