#include "opt/pipeline.h"

#include "obs/prof.h"
#include "opt/minimize.h"
#include "opt/rewrite.h"
#include "query/compile.h"
#include "support/stopwatch.h"

namespace nw {

namespace {

/// Per-query µs accumulators for the bank-wide phase records (one phase
/// entry per PASS, not per query, so the timeline stays K-independent).
struct PhaseClock {
  double rewrite_us = 0;
  double lower_us = 0;
  double minimize_us = 0;
};

OptimizedQuery CompileOptimizedClocked(const Query& q, size_t num_symbols,
                                       const OptOptions& opt,
                                       PhaseClock* clock) {
  Stopwatch sw;
  Query rewritten = opt.rewrite ? RewriteQuery(q) : q;
  clock->rewrite_us += sw.ElapsedUs();
  sw.Reset();
  Nwa compiled = CompileQuery(rewritten, num_symbols);
  clock->lower_us += sw.ElapsedUs();
  size_t before = compiled.num_states();
  sw.Reset();
  if (opt.minimize) {
    compiled = MinimizeNwa(compiled).nwa;
  }
  clock->minimize_us += sw.ElapsedUs();
  size_t after = compiled.num_states();
  return {std::move(rewritten), std::move(compiled), before, after};
}

}  // namespace

bool ParseOptLevel(const std::string& level, OptOptions* out) {
  if (level == "none") {
    *out = OptOptions::None();
  } else if (level == "rewrite") {
    *out = {true, false, false};
  } else if (level == "min") {
    *out = {false, true, false};
  } else if (level == "bank") {
    *out = {false, false, true};
  } else if (level == "all") {
    *out = OptOptions::All();
  } else {
    return false;
  }
  return true;
}

OptimizedQuery CompileOptimized(const Query& q, size_t num_symbols,
                                const OptOptions& opt) {
  PhaseClock discard;
  return CompileOptimizedClocked(q, num_symbols, opt, &discard);
}

void OptimizedBank::Register(QueryEngine* engine) {
  if (shared != nullptr) {
    engine->AddBank(shared.get());
    return;
  }
  for (const OptimizedQuery& q : queries) engine->Add(&q.nwa);
}

size_t OptimizedBank::states_compiled() const {
  size_t total = 0;
  for (const OptimizedQuery& q : queries) total += q.states_compiled;
  return total;
}

size_t OptimizedBank::states_final() const {
  size_t total = 0;
  for (const OptimizedQuery& q : queries) total += q.states_final;
  return total;
}

OptimizedBank OptimizeBank(const std::vector<Query>& queries,
                           size_t num_symbols, const OptOptions& opt) {
  OptimizedBank out;
  out.queries.reserve(queries.size());
  PhaseClock clock;
  for (const Query& q : queries) {
    out.queries.push_back(
        CompileOptimizedClocked(q, num_symbols, opt, &clock));
  }
  if (opt.timeline != nullptr) {
    // One record per pass that ran, µs summed across the bank. The state
    // deltas are bank totals: lowering produces states_compiled out of an
    // AST (no meaningful "before"), minimization shrinks them to
    // states_final.
    const uint64_t compiled = out.states_compiled();
    const uint64_t final_states = out.states_final();
    if (opt.rewrite) {
      opt.timeline->Record("rewrite",
                           static_cast<uint64_t>(clock.rewrite_us), 0, 0);
    }
    opt.timeline->Record("lower", static_cast<uint64_t>(clock.lower_us), 0,
                         compiled);
    if (opt.minimize) {
      opt.timeline->Record("minimize",
                           static_cast<uint64_t>(clock.minimize_us),
                           compiled, final_states);
    }
  }
  if (opt.bank && !out.queries.empty()) {
    std::vector<const Nwa*> autos;
    autos.reserve(out.queries.size());
    for (const OptimizedQuery& q : out.queries) autos.push_back(&q.nwa);
    Stopwatch sw;
    out.shared = std::make_unique<SharedBank>(std::move(autos));
    if (opt.timeline != nullptr) {
      opt.timeline->Record("bank_build",
                           static_cast<uint64_t>(sw.ElapsedUs()), 0,
                           out.shared->num_states());
    }
  }
  return out;
}

}  // namespace nw
