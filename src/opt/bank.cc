#include "opt/bank.h"

#include <algorithm>

#include "support/check.h"

namespace nw {

namespace {

uint64_t TupleHash(const std::vector<StateId>& tuple) {
  uint64_t h = 1469598103934665603ULL;
  for (StateId s : tuple) {
    h ^= s;
    h *= 1099511628211ULL;
  }
  return h;
}

/// Packs a product return lookup like Nwa::ReturnKey; a pending frame
/// (kNoState) packs as the reserved all-ones 24-bit value.
uint64_t ProductReturnKey(StateId q, StateId hier, Symbol a) {
  uint64_t h = hier == kNoState ? ((1u << 24) - 1) : hier;
  return (static_cast<uint64_t>(q) << 40) | (h << 16) | a;
}

}  // namespace

SharedBank::SharedBank(std::vector<const Nwa*> autos)
    : autos_(std::move(autos)) {
  NW_CHECK_MSG(!autos_.empty(), "shared bank needs at least one automaton");
  num_symbols_ = autos_[0]->num_symbols();
  for (const Nwa* a : autos_) {
    NW_CHECK_MSG(a->num_symbols() == num_symbols_,
                 "bank automaton symbol space mismatch");
  }
  NW_CHECK_MSG(num_symbols_ <= (1u << 16),
               "symbol space exceeds the product return-key packing");
  words_ = (autos_.size() + 63) / 64;
  std::vector<StateId> init(autos_.size());
  for (size_t i = 0; i < autos_.size(); ++i) init[i] = autos_[i]->initial();
  initial_ = Intern(init);
}

StateId SharedBank::Intern(const std::vector<StateId>& tuple) {
  std::vector<StateId>& bucket = buckets_[TupleHash(tuple)];
  const size_t k = autos_.size();
  for (StateId id : bucket) {
    if (std::equal(tuple.begin(), tuple.end(), tuples_.begin() + id * k)) {
      return id;
    }
  }
  NW_CHECK_MSG(live_.size() < kMaxStates,
               "shared bank product exploded past %u states; use the "
               "per-query SoA engine path for this bank",
               kMaxStates);
  StateId id = static_cast<StateId>(live_.size());
  bucket.push_back(id);
  tuples_.insert(tuples_.end(), tuple.begin(), tuple.end());
  accept_.resize(accept_.size() + words_, 0);
  uint32_t live = 0;
  for (size_t i = 0; i < k; ++i) {
    live += tuple[i] != kNoState;
    if (tuple[i] != kNoState && autos_[i]->is_final(tuple[i])) {
      accept_[id * words_ + i / 64] |= uint64_t{1} << (i % 64);
    }
  }
  live_.push_back(live);
  internal_.resize(internal_.size() + num_symbols_, kNoState);
  call_lin_.resize(call_lin_.size() + num_symbols_, kNoState);
  call_hier_.resize(call_hier_.size() + num_symbols_, kNoState);
  return id;
}

StateId SharedBank::StepInternal(StateId q, Symbol a) {
  NW_DCHECK(q < num_states() && a < num_symbols_);
  StateId& memo = internal_[q * num_symbols_ + a];
  if (memo != kNoState) return memo;
  const size_t k = autos_.size();
  std::vector<StateId> next(k);
  for (size_t i = 0; i < k; ++i) {
    next[i] = autos_[i]->StepInternal(tuples_[q * k + i], a);
  }
  // Intern may grow internal_; recompute the slot instead of using `memo`.
  StateId id = Intern(next);
  internal_[q * num_symbols_ + a] = id;
  return id;
}

StateId SharedBank::StepCall(StateId q, Symbol a, StateId* hier_out) {
  NW_DCHECK(q < num_states() && a < num_symbols_);
  if (call_lin_[q * num_symbols_ + a] != kNoState) {
    *hier_out = call_hier_[q * num_symbols_ + a];
    return call_lin_[q * num_symbols_ + a];
  }
  const size_t k = autos_.size();
  std::vector<StateId> lin(k), hier(k);
  for (size_t i = 0; i < k; ++i) {
    lin[i] = autos_[i]->StepCall(tuples_[q * k + i], a, &hier[i]);
  }
  StateId lin_id = Intern(lin);
  StateId hier_id = Intern(hier);
  call_lin_[q * num_symbols_ + a] = lin_id;
  call_hier_[q * num_symbols_ + a] = hier_id;
  *hier_out = hier_id;
  return lin_id;
}

StateId SharedBank::StepReturn(StateId q, StateId hier, Symbol a) {
  NW_DCHECK(q < num_states() && a < num_symbols_);
  NW_DCHECK(hier == kNoState || hier < num_states());
  uint64_t key = ProductReturnKey(q, hier, a);
  auto it = returns_.find(key);
  if (it != returns_.end()) return it->second;
  const size_t k = autos_.size();
  std::vector<StateId> next(k);
  for (size_t i = 0; i < k; ++i) {
    // A pending return (no frame) lets each component read its own
    // hier_initial, matching the per-query engine path exactly.
    StateId h = hier == kNoState ? kNoState : tuples_[hier * k + i];
    next[i] = autos_[i]->StepReturn(tuples_[q * k + i], h, a);
  }
  StateId id = Intern(next);
  returns_.emplace(key, id);
  return id;
}

}  // namespace nw
