#include "opt/bank.h"

#include <algorithm>
#include <unordered_set>

#include "obs/prof.h"
#include "obs/stats.h"
#include "support/check.h"
#include "support/stopwatch.h"

namespace nw {

uint64_t SharedBank::TupleHash(const StateId* tuple, size_t k) {
  uint64_t h = 1469598103934665603ULL;
  for (size_t i = 0; i < k; ++i) {
    h ^= tuple[i];
    h *= 1099511628211ULL;
  }
  return h;
}

uint64_t SharedBank::PackReturnKey(StateId q, StateId hier, Symbol a) {
  uint64_t h = hier == kNoState ? ((1u << 24) - 1) : hier;
  return (static_cast<uint64_t>(q) << 40) | (h << 16) | a;
}

SharedBank::SharedBank(std::vector<const Nwa*> autos)
    : autos_(std::move(autos)) {
  NW_CHECK_MSG(!autos_.empty(), "shared bank needs at least one automaton");
  num_symbols_ = autos_[0]->num_symbols();
  for (const Nwa* a : autos_) {
    NW_CHECK_MSG(a->num_symbols() == num_symbols_,
                 "bank automaton symbol space mismatch");
  }
  NW_CHECK_MSG(num_symbols_ <= (1u << 16),
               "symbol space exceeds the product return-key packing");
  words_ = (autos_.size() + 63) / 64;
  std::vector<StateId> init(autos_.size());
  for (size_t i = 0; i < autos_.size(); ++i) init[i] = autos_[i]->initial();
  initial_ = Intern(init);
}

StateId SharedBank::Intern(const std::vector<StateId>& tuple) {
  std::vector<StateId>& bucket =
      buckets_[TupleHash(tuple.data(), tuple.size())];
  const size_t k = autos_.size();
  for (StateId id : bucket) {
    if (std::equal(tuple.begin(), tuple.end(), tuples_.begin() + id * k)) {
      return id;
    }
  }
  NW_CHECK_MSG(live_.size() < kMaxStates,
               "shared bank product exploded past %u states; use the "
               "per-query SoA engine path for this bank",
               kMaxStates);
  StateId id = static_cast<StateId>(live_.size());
  if (stats_ != nullptr) stats_->bank_states.Inc();
  bucket.push_back(id);
  tuples_.insert(tuples_.end(), tuple.begin(), tuple.end());
  accept_.resize(accept_.size() + words_, 0);
  uint32_t live = 0;
  for (size_t i = 0; i < k; ++i) {
    live += tuple[i] != kNoState;
    if (tuple[i] != kNoState && autos_[i]->is_final(tuple[i])) {
      accept_[id * words_ + i / 64] |= uint64_t{1} << (i % 64);
    }
  }
  live_.push_back(live);
  internal_.resize(internal_.size() + num_symbols_, kNoState);
  call_lin_.resize(call_lin_.size() + num_symbols_, kNoState);
  call_hier_.resize(call_hier_.size() + num_symbols_, kNoState);
  return id;
}

StateId SharedBank::InternTuple(const std::vector<StateId>& tuple) {
  NW_CHECK_MSG(tuple.size() == autos_.size(),
               "tuple arity %zu does not match the bank's %zu queries",
               tuple.size(), autos_.size());
  for (size_t i = 0; i < tuple.size(); ++i) {
    NW_CHECK_MSG(tuple[i] == kNoState || tuple[i] < autos_[i]->num_states(),
                 "tuple component %zu out of range", i);
  }
  return Intern(tuple);
}

bool SharedBank::ExploreAll(size_t max_states, CompileTimeline* timeline) {
  Stopwatch sw;
  const size_t states_before = num_states();
  bool complete = ExploreFixpoint(max_states);
  if (timeline != nullptr) {
    timeline->Record("explore", static_cast<uint64_t>(sw.ElapsedUs()),
                     states_before, num_states());
  }
  return complete;
}

bool SharedBank::ExploreFixpoint(size_t max_states) {
  // Incremental fixed point: every (state, symbol) internal/call step and
  // every (state, frame, symbol) return step — frames being the call-hier
  // targets plus the pending-return sentinel — is taken exactly once.
  // `done_lin` tracks states with closed internal/call rows; `done_ret[f]`
  // tracks how many states have closed return rows against frame f, so a
  // frame discovered late still gets the full state range and vice versa.
  // Beware the size: the return closure is |Q|·|frames|·|Σ| steps, which
  // is why exhaustive freezing suits small products only; past
  // `max_states` we stop and let the serving layer's overflow banks cover
  // the rest.
  std::vector<StateId> frames{kNoState};
  std::unordered_set<StateId> seen_frame;
  std::vector<StateId> done_ret{0};  ///< parallel to `frames`
  StateId done_lin = 0;
  for (;;) {
    bool progressed = false;
    while (done_lin < num_states()) {
      if (num_states() > max_states) return false;
      StateId q = done_lin++;
      progressed = true;
      for (Symbol a = 0; a < num_symbols_; ++a) {
        StepInternal(q, a);
        StateId h;
        StepCall(q, a, &h);
        if (seen_frame.insert(h).second) {
          frames.push_back(h);
          done_ret.push_back(0);
        }
      }
    }
    for (size_t f = 0; f < frames.size(); ++f) {
      while (done_ret[f] < num_states()) {
        if (num_states() > max_states) return false;
        StateId q = done_ret[f]++;
        progressed = true;
        for (Symbol a = 0; a < num_symbols_; ++a) {
          StepReturn(q, frames[f], a);
        }
      }
    }
    if (!progressed) return true;
  }
}

std::vector<SharedBank::MemoReturn> SharedBank::MemoizedReturns() const {
  std::vector<MemoReturn> out;
  out.reserve(returns_.size());
  for (const auto& [key, target] : returns_) {
    StateId q = static_cast<StateId>(key >> 40);
    StateId h = static_cast<StateId>((key >> 16) & ((1u << 24) - 1));
    if (h == (1u << 24) - 1) h = kNoState;  // the pending-frame packing
    Symbol a = static_cast<Symbol>(key & 0xFFFF);
    out.push_back({q, h, a, target});
  }
  return out;
}

StateId SharedBank::StepInternal(StateId q, Symbol a) {
  NW_DCHECK(q < num_states() && a < num_symbols_);
  StateId& memo = internal_[q * num_symbols_ + a];
  if (memo != kNoState) {
    if (stats_ != nullptr) stats_->bank_memo_hits.Inc();
    return memo;
  }
  if (stats_ != nullptr) stats_->bank_memo_misses.Inc();
  const size_t k = autos_.size();
  std::vector<StateId> next(k);
  for (size_t i = 0; i < k; ++i) {
    next[i] = autos_[i]->StepInternal(tuples_[q * k + i], a);
  }
  // Intern may grow internal_; recompute the slot instead of using `memo`.
  StateId id = Intern(next);
  internal_[q * num_symbols_ + a] = id;
  return id;
}

StateId SharedBank::StepCall(StateId q, Symbol a, StateId* hier_out) {
  NW_DCHECK(q < num_states() && a < num_symbols_);
  if (call_lin_[q * num_symbols_ + a] != kNoState) {
    if (stats_ != nullptr) stats_->bank_memo_hits.Inc();
    *hier_out = call_hier_[q * num_symbols_ + a];
    return call_lin_[q * num_symbols_ + a];
  }
  if (stats_ != nullptr) stats_->bank_memo_misses.Inc();
  const size_t k = autos_.size();
  std::vector<StateId> lin(k), hier(k);
  for (size_t i = 0; i < k; ++i) {
    lin[i] = autos_[i]->StepCall(tuples_[q * k + i], a, &hier[i]);
  }
  StateId lin_id = Intern(lin);
  StateId hier_id = Intern(hier);
  call_lin_[q * num_symbols_ + a] = lin_id;
  call_hier_[q * num_symbols_ + a] = hier_id;
  *hier_out = hier_id;
  return lin_id;
}

StateId SharedBank::StepReturn(StateId q, StateId hier, Symbol a) {
  NW_DCHECK(q < num_states() && a < num_symbols_);
  NW_DCHECK(hier == kNoState || hier < num_states());
  uint64_t key = PackReturnKey(q, hier, a);
  auto it = returns_.find(key);
  if (it != returns_.end()) {
    if (stats_ != nullptr) stats_->bank_memo_hits.Inc();
    return it->second;
  }
  if (stats_ != nullptr) stats_->bank_memo_misses.Inc();
  const size_t k = autos_.size();
  std::vector<StateId> next(k);
  for (size_t i = 0; i < k; ++i) {
    // A pending return (no frame) lets each component read its own
    // hier_initial, matching the per-query engine path exactly.
    StateId h = hier == kNoState ? kNoState : tuples_[hier * k + i];
    next[i] = autos_[i]->StepReturn(tuples_[q * k + i], h, a);
  }
  StateId id = Intern(next);
  returns_.emplace(key, id);
  return id;
}

}  // namespace nw
