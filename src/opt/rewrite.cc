#include "opt/rewrite.h"

#include <algorithm>
#include <vector>

#include "support/check.h"

namespace nw {

namespace {

/// Lexicographic order on steps, for canonical kPathSet member order.
bool StepLess(const PathStep& a, const PathStep& b) {
  if (a.axis != b.axis) return a.axis < b.axis;
  return a.name < b.name;
}

bool PathLess(const std::vector<PathStep>& a, const std::vector<PathStep>& b) {
  return std::lexicographical_compare(a.begin(), a.end(), b.begin(), b.end(),
                                      StepLess);
}

/// Negation normal form: `negate` tracks a pending outer `not`.
Query ToNnf(const Query& q, bool negate) {
  switch (q.op()) {
    case Query::Op::kNot:
      return ToNnf(q.left(), !negate);
    case Query::Op::kAnd:
      return negate ? Query::Or(ToNnf(q.left(), true), ToNnf(q.right(), true))
                    : Query::And(ToNnf(q.left(), false),
                                 ToNnf(q.right(), false));
    case Query::Op::kOr:
      return negate ? Query::And(ToNnf(q.left(), true),
                                 ToNnf(q.right(), true))
                    : Query::Or(ToNnf(q.left(), false),
                                ToNnf(q.right(), false));
    default:
      return negate ? Query::Not(q) : q;
  }
}

/// Collects the n-ary child list of a chain of `op` nodes, in order.
void Flatten(const Query& q, Query::Op op, std::vector<Query>* out) {
  if (q.op() == op) {
    Flatten(q.left(), op, out);
    Flatten(q.right(), op, out);
  } else {
    out->push_back(q);
  }
}

Query Normalize(const Query& q);

/// Flatten + dedup + (for `or`) path fusion, then rebuild left-associated.
Query NormalizeNary(const Query& q) {
  const Query::Op op = q.op();
  std::vector<Query> flat;
  Flatten(q, op, &flat);
  for (Query& child : flat) child = Normalize(child);

  std::vector<Query> children;
  for (const Query& child : flat) {
    bool seen = false;
    for (const Query& kept : children) seen = seen || kept == child;
    if (!seen) children.push_back(child);
  }

  if (op == Query::Op::kOr) {
    // Fuse every path-shaped child (kPath, or an already-fused kPathSet
    // from a nested rewrite) into one canonical kPathSet, placed where the
    // first of them stood.
    std::vector<std::vector<PathStep>> paths;
    size_t first = children.size();
    std::vector<Query> rest;
    for (size_t i = 0; i < children.size(); ++i) {
      const Query& child = children[i];
      if (child.op() == Query::Op::kPath) {
        paths.push_back(child.steps());
      } else if (child.op() == Query::Op::kPathSet) {
        for (const auto& steps : child.step_sets()) paths.push_back(steps);
      } else {
        rest.push_back(child);
        continue;
      }
      first = std::min(first, i);
    }
    if (paths.size() > 1) {
      std::sort(paths.begin(), paths.end(), PathLess);
      paths.erase(std::unique(paths.begin(), paths.end()), paths.end());
      Query fused = paths.size() == 1 ? Query::Path(std::move(paths[0]))
                                      : Query::PathSet(std::move(paths));
      rest.insert(rest.begin() + std::min(first, rest.size()),
                  std::move(fused));
      children = std::move(rest);
    }
  }

  Query out = children[0];
  for (size_t i = 1; i < children.size(); ++i) {
    out = op == Query::Op::kAnd ? Query::And(std::move(out), children[i])
                                : Query::Or(std::move(out), children[i]);
  }
  return out;
}

Query Normalize(const Query& q) {
  switch (q.op()) {
    case Query::Op::kAnd:
    case Query::Op::kOr:
      return NormalizeNary(q);
    case Query::Op::kNot:
      // After NNF, `not` wraps an atom only; nothing below to normalize.
      return q;
    default:
      return q;
  }
}

}  // namespace

Query RewriteQuery(const Query& q) { return Normalize(ToNnf(q, false)); }

}  // namespace nw
