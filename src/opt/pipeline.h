// NWOpt driver: the optimizer pipeline between query compilation and
// streaming evaluation —
//
//     rewrite (AST)  →  compile  →  minimize (NWA)  →  bank (product)
//
// Each pass is independently switchable so every level is observable from
// the nwquery CLI (--opt=none|rewrite|min|bank|all) and measurable in
// bench/bench_query_optimizer.cc.
#ifndef NW_OPT_PIPELINE_H_
#define NW_OPT_PIPELINE_H_

#include <memory>
#include <string>
#include <vector>

#include "nwa/nwa.h"
#include "opt/bank.h"
#include "query/engine.h"
#include "query/nwquery.h"

namespace nw {

class CompileTimeline;  // obs/prof.h (via query/engine.h → obs/stats.h)

/// Which optimizer passes run. Defaults to none (PR-1 behavior).
struct OptOptions {
  bool rewrite = false;   ///< AST rewrites (opt/rewrite.h) before lowering
  bool minimize = false;  ///< congruence minimization (opt/minimize.h)
  bool bank = false;      ///< shared product automaton (opt/bank.h)
  /// NWProf compile-phase timeline (obs/prof.h): when set, OptimizeBank
  /// records one phase per pass that ran — rewrite, lower, minimize,
  /// bank_build — with wall µs summed across the bank's queries and the
  /// total state counts before/after. Null (the default) records nothing.
  /// Note ParseOptLevel resets the whole struct: attach the timeline
  /// after parsing flags, not before.
  CompileTimeline* timeline = nullptr;

  static OptOptions None() { return {}; }
  static OptOptions All() { return {true, true, true}; }
};

/// Parses an --opt level: "none", "rewrite", "min", "bank", or "all"
/// (each of the single-pass levels enables exactly that pass). Returns
/// false on an unknown level, leaving *out untouched.
bool ParseOptLevel(const std::string& level, OptOptions* out);

/// One query's trip through the per-query passes, with the per-stage
/// state counts the CLI and the benches report.
struct OptimizedQuery {
  Query query;             ///< post-rewrite AST (the input when !rewrite)
  Nwa nwa;                 ///< compiled (and possibly minimized) automaton
  size_t states_compiled;  ///< state count straight out of CompileQuery
  size_t states_final;     ///< after minimization (== states_compiled
                           ///< when !minimize)
};

/// rewrite → compile → minimize for a single query.
OptimizedQuery CompileOptimized(const Query& q, size_t num_symbols,
                                const OptOptions& opt);

/// A whole query bank through the pipeline. `shared` is set iff opt.bank;
/// it points into `queries`, so the struct is movable but `queries` must
/// not be resized afterwards.
struct OptimizedBank {
  std::vector<OptimizedQuery> queries;
  std::unique_ptr<SharedBank> shared;

  /// Registers with `engine`: the shared product when present, the K
  /// individual automata otherwise. The bank must outlive the engine.
  void Register(QueryEngine* engine);

  size_t states_compiled() const;
  size_t states_final() const;
};

OptimizedBank OptimizeBank(const std::vector<Query>& queries,
                           size_t num_symbols, const OptOptions& opt);

}  // namespace nw

#endif  // NW_OPT_PIPELINE_H_
