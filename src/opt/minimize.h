// Minimization of deterministic nested word automata by partition
// refinement — the optimizer's answer to the compiler's determinization
// blow-up (ROADMAP item 1; paper §3.2's congruence view of deterministic
// NWAs).
//
// The pass computes a partition of the (reachable) state space that is a
// *congruence* for all three transition kinds: two states merge only if
// they agree on finality, their internal and call successors merge, and —
// because a state plays two roles, as the linear run state and as the
// frame riding a hierarchical edge — they are interchangeable both as the
// linear argument and as the hierarchical argument of δr. This is Moore/
// Hopcroft-style refinement extended to the split alphabet: the return
// signature is read straight out of the sparse 24/16-bit ReturnKey table
// (Nwa::ReturnRules) instead of a dense |Q|²·|Σ| cube.
//
// The computed congruence is the coarsest reachable by iterated splitting
// with CONCRETE return partners in the signatures; it is not always the
// absolute coarsest congruence, which can require merging two pairs
// simultaneously (mutually-swapped duplicate substructure that
// determinization likes to emit). Class-level partner signatures would
// find those merges but are unsound for a two-argument δr — see the
// counterexample in minimize.cc — so this pass trades a little coarseness
// for straightforward correctness.
//
// Partial automata are handled by refining against a virtual sink state
// that absorbs every missing transition; states indistinguishable from the
// sink (no accepting continuation under ANY future input, including any
// frame contents) collapse into it and are pruned from the quotient, with
// one exception: a sink-class state pushed by a surviving call must stay
// materialized, because the run it rides above can still accept before the
// matching return pops the doomed frame.
//
// Language preservation is checked differentially in tests/opt_test.cc
// (randomized queries × randomized well-formed and malformed documents).
#ifndef NW_OPT_MINIMIZE_H_
#define NW_OPT_MINIMIZE_H_

#include "nwa/nwa.h"

namespace nw {

/// Minimization outcome with the metrics the optimizer benches report.
struct MinimizeResult {
  Nwa nwa;               ///< language-equivalent reduced automaton
  size_t states_before;  ///< input state count
  size_t states_after;   ///< output state count (== nwa.num_states())
  size_t classes;        ///< congruence classes incl. the pruned sink class
};

/// Reduces `a` to its congruence quotient. `a` must have an initial state.
/// The result never has an explicit sink (missing transitions reject
/// implicitly), so Totalize()d inputs shed their sink on the way through.
MinimizeResult MinimizeNwa(const Nwa& a);

}  // namespace nw

#endif  // NW_OPT_MINIMIZE_H_
