// Format-agnostic random document trees. The cross-format differential
// tests (tests/json_test.cc), the ingestion benches, and the CLI's
// `--format=json|trace --random` path all need THE SAME logical tree
// rendered in every front end's concrete syntax; the renderers here are
// built so the three renderings tokenize to the identical nested word:
//
//   element with children   <a>…</a>     "a":{…}      <a … a>
//   element with text       <a>w</a>     "a":"w"      <a #text a>
//   empty element           <a></a>      "a":{}       <a a>
//
// (JSON wraps the forest in a top-level `{…}` envelope, which streams
// silently; the trace rendering spells text chunks as the literal token
// `#text`, which interns to the same pseudo-symbol the other tokenizers
// use.) Byte-identical query results across formats follow from token
// identity — the property the differential tests pin end to end.
#ifndef NW_STREAM_TREE_GEN_H_
#define NW_STREAM_TREE_GEN_H_

#include <string>
#include <vector>

#include "support/rng.h"

namespace nw {

/// One element of a document tree: a name plus EITHER children OR a text
/// chunk (or neither — an empty element). The either/or constraint is
/// what keeps the three renderings token-identical: JSON cannot put a
/// scalar next to members inside one object value.
struct TreeNode {
  std::string name;
  std::vector<TreeNode> children;
  /// Text content; empty = no text. Only meaningful on a leaf.
  std::string text;
};

/// Random forest of roughly `approx_positions` tagged positions with
/// nesting depth at most `max_depth` (>= 1). Element names draw from
/// `names` (non-empty; none may need JSON/XML escaping — alphanumerics,
/// '_', '-'). Deterministic in the Rng state.
std::vector<TreeNode> RandomForest(Rng* rng,
                                   const std::vector<std::string>& names,
                                   size_t approx_positions, size_t max_depth);

/// The forest as SAX-style XML: `<a>…</a>` per element.
std::string RenderXml(const std::vector<TreeNode>& forest);

/// The forest as JSON: one top-level object (streamed silently) whose
/// members are the roots; children render as nested objects, text as a
/// string scalar (or a bare number when the chunk is all digits), empty
/// elements as `{}`.
std::string RenderJson(const std::vector<TreeNode>& forest);

/// The forest in Figure-1 trace notation: `<a … a>` per element, text
/// chunks as the literal `#text` token.
std::string RenderTrace(const std::vector<TreeNode>& forest);

}  // namespace nw

#endif  // NW_STREAM_TREE_GEN_H_
