#include "stream/tree_gen.h"

#include <cctype>

#include "support/check.h"

namespace nw {

namespace {

/// Text chunks the generator draws from. "1984" exercises the JSON
/// renderer's bare-number path; every chunk is a single alphanumeric
/// word so no rendering needs escaping and the XML tokenizer yields
/// exactly one #text internal per chunk.
const char* const kWords[] = {"text", "lorem", "data", "1984"};

TreeNode GenNode(Rng* rng, const std::vector<std::string>& names,
                 size_t depth, size_t max_depth, size_t* budget) {
  TreeNode n;
  n.name = names[rng->Below(names.size())];
  *budget -= *budget >= 2 ? 2 : *budget;  // the element's call + return
  uint64_t pick = rng->Below(4);
  if (pick == 0 || depth + 1 >= max_depth || *budget == 0) {
    if (pick != 1) {  // pick==1: empty element
      n.text = kWords[rng->Below(4)];
      *budget -= *budget >= 1 ? 1 : 0;
    }
    return n;
  }
  size_t kids = 1 + rng->Below(3);
  for (size_t i = 0; i < kids && *budget > 0; ++i) {
    n.children.push_back(GenNode(rng, names, depth + 1, max_depth, budget));
  }
  return n;
}

void XmlNode(const TreeNode& n, std::string* out) {
  *out += "<" + n.name + ">";
  for (const TreeNode& c : n.children) XmlNode(c, out);
  *out += n.text;
  *out += "</" + n.name + ">";
}

bool AllDigits(const std::string& s) {
  if (s.empty()) return false;
  for (char c : s) {
    if (!std::isdigit(static_cast<unsigned char>(c))) return false;
  }
  return true;
}

void JsonNode(const TreeNode& n, std::string* out) {
  *out += "\"" + n.name + "\":";
  if (!n.children.empty()) {
    *out += "{";
    for (size_t i = 0; i < n.children.size(); ++i) {
      if (i > 0) *out += ",";
      JsonNode(n.children[i], out);
    }
    *out += "}";
  } else if (!n.text.empty()) {
    // A digit chunk renders as a bare number: scalar kinds differ, the
    // token stream (call, #text, return) does not.
    *out += AllDigits(n.text) ? n.text : "\"" + n.text + "\"";
  } else {
    *out += "{}";
  }
}

void TraceNode(const TreeNode& n, std::string* out) {
  *out += "<" + n.name;
  for (const TreeNode& c : n.children) {
    *out += " ";
    TraceNode(c, out);
  }
  if (!n.text.empty()) *out += " #text";
  *out += " " + n.name + ">";
}

}  // namespace

std::vector<TreeNode> RandomForest(Rng* rng,
                                   const std::vector<std::string>& names,
                                   size_t approx_positions, size_t max_depth) {
  NW_CHECK_MSG(!names.empty(), "tree generator needs element names");
  NW_CHECK_MSG(max_depth >= 1, "trees need room for a root");
  std::vector<TreeNode> forest;
  size_t budget = approx_positions;
  while (budget > 0) {
    forest.push_back(GenNode(rng, names, 0, max_depth, &budget));
  }
  return forest;
}

std::string RenderXml(const std::vector<TreeNode>& forest) {
  std::string out;
  for (const TreeNode& n : forest) XmlNode(n, &out);
  return out;
}

std::string RenderJson(const std::vector<TreeNode>& forest) {
  std::string out = "{";
  for (size_t i = 0; i < forest.size(); ++i) {
    if (i > 0) out += ",";
    JsonNode(forest[i], &out);
  }
  out += "}";
  return out;
}

std::string RenderTrace(const std::vector<TreeNode>& forest) {
  std::string out;
  for (const TreeNode& n : forest) {
    if (!out.empty()) out += " ";
    TraceNode(n, &out);
  }
  return out;
}

}  // namespace nw
