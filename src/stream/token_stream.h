// The multi-format ingestion seam (paper §1: nested words model ANY
// hierarchical stream — XML, JSON, and program traces alike). Every front
// end (xml/xml.h, json/json.h, trace/trace.h) is a pull tokenizer with
// the same shape — the implicit TokenStream concept:
//
//   Stream(const std::string& text, Alphabet* alphabet);
//   void set_stats(StatsSink* stats);
//   bool Next(TaggedSymbol* out);   // false at end of input
//   size_t pos() const;            // bytes consumed by yielded tokens
//
// Consumers (QueryEngine::RunAll, SplitTopLevel) are templated over the
// concept and select the instantiation from an InputFormat value, so the
// engine, optimizer, bank/freeze, sharding, stats, and attribution layers
// run unchanged for every format — two formats in, zero engine forks.
#ifndef NW_STREAM_TOKEN_STREAM_H_
#define NW_STREAM_TOKEN_STREAM_H_

#include <cstddef>
#include <cstdint>
#include <string>

namespace nw {

struct StatsSink;

/// Ingestion front ends the stack can stream. The value is plumbed from
/// the CLI (`nwquery --format=...`) through QueryEngine::RunAll and
/// ShardedEvaluator down to the tokenizer instantiation — nothing above
/// the tokenizer branches on it per token.
enum class InputFormat : uint8_t {
  kXml,    ///< SAX-style XML (xml/xml.h)
  kJson,   ///< JSON objects/arrays as call/return (json/json.h)
  kTrace,  ///< Figure-1 call/return event logs (trace/trace.h)
};

/// "xml" | "json" | "trace" → format; false on anything else.
bool ParseInputFormat(const std::string& name, InputFormat* out);

/// Canonical lowercase name — the `--format` spelling and the stats
/// `stream.format` label.
const char* InputFormatName(InputFormat format);

/// Tokenizer-stats tallies shared by every front end. Counts are PLAIN
/// LOCAL COUNTERS — zero atomic traffic per token — flushed into the
/// attached sink exactly once, when the stream ends or is destroyed
/// mid-document after an early stop. The `flushed_` latch makes the
/// end-of-input flush and the destructor flush idempotent as a pair:
/// a stream that reaches the end and is then destroyed reports once,
/// never twice (each front end used to hand-roll this; one shared latch
/// means none of them can regress it independently).
class StreamTally {
 public:
  explicit StreamTally(InputFormat format) : format_(format) {}

  void set_stats(StatsSink* stats) { stats_ = stats; }
  /// Callers gate the per-token tallies on this so the disabled path
  /// costs one branch on a pointer that is constant for the stream.
  bool enabled() const { return stats_ != nullptr; }

  void OnCall() {
    ++calls_;
    if (++depth_ > depth_hwm_) depth_hwm_ = depth_;
  }
  void OnReturn() {
    ++returns_;
    if (depth_ > 0) --depth_;
  }
  void OnInternal() { ++internals_; }

  /// One-shot flush of the tallies into the sink (idempotent): byte and
  /// token counts, the depth high-water mark, and one tick of the
  /// per-format document counter (rendered as the stats `stream.format`
  /// object). `bytes` is the stream's pos() — the consumed prefix, so an
  /// early-stopped stream still reports the work it did.
  void Flush(size_t bytes);

 private:
  InputFormat format_;
  StatsSink* stats_ = nullptr;
  bool flushed_ = false;
  size_t calls_ = 0, returns_ = 0, internals_ = 0;
  size_t depth_ = 0, depth_hwm_ = 0;
};

}  // namespace nw

#endif  // NW_STREAM_TOKEN_STREAM_H_
