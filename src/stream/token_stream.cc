#include "stream/token_stream.h"

#include "obs/stats.h"

namespace nw {

bool ParseInputFormat(const std::string& name, InputFormat* out) {
  if (name == "xml") {
    *out = InputFormat::kXml;
  } else if (name == "json") {
    *out = InputFormat::kJson;
  } else if (name == "trace") {
    *out = InputFormat::kTrace;
  } else {
    return false;
  }
  return true;
}

const char* InputFormatName(InputFormat format) {
  switch (format) {
    case InputFormat::kXml:
      return "xml";
    case InputFormat::kJson:
      return "json";
    case InputFormat::kTrace:
      return "trace";
  }
  return "xml";
}

void StreamTally::Flush(size_t bytes) {
  if (flushed_ || stats_ == nullptr) return;
  flushed_ = true;
  stats_->stream_bytes.Add(bytes);
  stats_->stream_tokens.Add(calls_ + returns_ + internals_);
  stats_->stream_calls.Add(calls_);
  stats_->stream_returns.Add(returns_);
  stats_->stream_internals.Add(internals_);
  stats_->stream_depth_hwm.SetMax(depth_hwm_);
  switch (format_) {
    case InputFormat::kXml:
      stats_->stream_docs_xml.Inc();
      break;
    case InputFormat::kJson:
      stats_->stream_docs_json.Inc();
      break;
    case InputFormat::kTrace:
      stats_->stream_docs_trace.Inc();
      break;
  }
}

}  // namespace nw
