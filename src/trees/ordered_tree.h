// Ordered (unranked) trees and their nested-word encodings (paper §2.3).
//
// OT(Σ) is defined inductively: ε is the empty tree, and a(t1,...,tn) is a
// tree for a ∈ Σ and nonempty trees ti. The codecs below implement the
// paper's transformations:
//   t_w  : OT(Σ) → Σ̂*   — traversal printing <a ... a> around each node,
//   t_nw : OT(Σ) → NW(Σ) — t_w composed with w_nw,
//   nw_t : TW(Σ) → OT(Σ) — inverse of t_nw on tree words.
#ifndef NW_TREES_ORDERED_TREE_H_
#define NW_TREES_ORDERED_TREE_H_

#include <optional>
#include <string>
#include <vector>

#include "nw/nested_word.h"
#include "support/result.h"

namespace nw {

/// A non-empty ordered tree node: label plus an ordered child list.
struct TreeNode {
  Symbol label = 0;
  std::vector<TreeNode> children;

  friend bool operator==(const TreeNode&, const TreeNode&) = default;
};

/// An ordered tree, possibly the empty tree ε.
class OrderedTree {
 public:
  /// The empty tree ε.
  OrderedTree() = default;
  /// A tree with the given root node.
  explicit OrderedTree(TreeNode root) : root_(std::move(root)) {}

  /// Leaf a() — the paper abbreviates its encoding as <a>.
  static OrderedTree Leaf(Symbol a) { return OrderedTree(TreeNode{a, {}}); }
  /// Node a(children...); children must be non-empty trees.
  static OrderedTree Node(Symbol a, std::vector<OrderedTree> children);

  bool IsEmpty() const { return !root_.has_value(); }
  const TreeNode& root() const { return *root_; }

  /// Number of nodes.
  size_t NodeCount() const;
  /// Height: 0 for ε, 1 for a leaf.
  size_t Height() const;

  friend bool operator==(const OrderedTree&, const OrderedTree&) = default;

 private:
  std::optional<TreeNode> root_;
};

/// t_nw (§2.3): encodes a tree as a tree word — rooted, no internals,
/// matching labels. Each node is visited twice (call + return).
NestedWord TreeToNestedWord(const OrderedTree& t);

/// nw_t (§2.3): decodes a tree word back to the tree. Errors unless
/// n.IsTreeWord() (or n is empty, which decodes to ε). Note ε's image is
/// the empty nested word; single-rooted inputs decode to one-root trees.
Result<OrderedTree> NestedWordToTree(const NestedWord& n);

/// Parses the paper's term notation "a(a(),b())"; bare leaves "a" are
/// accepted as sugar for "a()". Whitespace is ignored. Empty input is ε.
Result<OrderedTree> ParseTree(const std::string& text, Alphabet* alphabet);

/// Prints in term notation; leaves print without parentheses.
std::string FormatTree(const OrderedTree& t, const Alphabet& alphabet);

}  // namespace nw

#endif  // NW_TREES_ORDERED_TREE_H_
