#include "trees/ordered_tree.h"

#include <algorithm>
#include <cctype>

namespace nw {
namespace {

void Encode(const TreeNode& node, std::vector<TaggedSymbol>* out) {
  out->push_back(Call(node.label));
  for (const TreeNode& c : node.children) Encode(c, out);
  out->push_back(Return(node.label));
}

size_t CountNodes(const TreeNode& n) {
  size_t total = 1;
  for (const TreeNode& c : n.children) total += CountNodes(c);
  return total;
}

size_t NodeHeight(const TreeNode& n) {
  size_t h = 0;
  for (const TreeNode& c : n.children) h = std::max(h, NodeHeight(c));
  return h + 1;
}

// Recursive-descent decoder over a tree word; `pos` points at a call.
TreeNode Decode(const NestedWord& n, size_t* pos) {
  NW_DCHECK(n.kind(*pos) == Kind::kCall);
  TreeNode node;
  node.label = n.symbol(*pos);
  ++*pos;
  while (n.kind(*pos) == Kind::kCall) {
    node.children.push_back(Decode(n, pos));
  }
  NW_DCHECK(n.kind(*pos) == Kind::kReturn);
  ++*pos;
  return node;
}

struct Parser {
  const std::string& text;
  size_t pos = 0;
  Alphabet* alphabet;

  void SkipWs() {
    while (pos < text.size() &&
           std::isspace(static_cast<unsigned char>(text[pos]))) {
      ++pos;
    }
  }

  Result<TreeNode> Node() {
    SkipWs();
    size_t start = pos;
    while (pos < text.size() &&
           (std::isalnum(static_cast<unsigned char>(text[pos])) ||
            text[pos] == '_')) {
      ++pos;
    }
    if (pos == start) {
      return Status::Error("expected symbol name at offset " +
                           std::to_string(start));
    }
    TreeNode node;
    node.label = alphabet->Intern(text.substr(start, pos - start));
    SkipWs();
    if (pos < text.size() && text[pos] == '(') {
      ++pos;
      SkipWs();
      while (pos < text.size() && text[pos] != ')') {
        Result<TreeNode> child = Node();
        if (!child.ok()) return child;
        node.children.push_back(child.Take());
        SkipWs();
        if (pos < text.size() && text[pos] == ',') {
          ++pos;
          SkipWs();
        }
      }
      if (pos >= text.size()) return Status::Error("unterminated '('");
      ++pos;  // consume ')'
    }
    return node;
  }
};

void Format(const TreeNode& n, const Alphabet& alphabet, std::string* out) {
  *out += alphabet.Name(n.label);
  if (!n.children.empty()) {
    *out += '(';
    for (size_t i = 0; i < n.children.size(); ++i) {
      if (i > 0) *out += ',';
      Format(n.children[i], alphabet, out);
    }
    *out += ')';
  }
}

}  // namespace

OrderedTree OrderedTree::Node(Symbol a, std::vector<OrderedTree> children) {
  TreeNode node;
  node.label = a;
  for (OrderedTree& c : children) {
    NW_CHECK_MSG(!c.IsEmpty(), "children of a(t1..tn) must be non-empty");
    node.children.push_back(std::move(*c.root_));
  }
  return OrderedTree(std::move(node));
}

size_t OrderedTree::NodeCount() const {
  return IsEmpty() ? 0 : CountNodes(*root_);
}

size_t OrderedTree::Height() const {
  return IsEmpty() ? 0 : NodeHeight(*root_);
}

NestedWord TreeToNestedWord(const OrderedTree& t) {
  std::vector<TaggedSymbol> seq;
  if (!t.IsEmpty()) {
    seq.reserve(2 * t.NodeCount());
    Encode(t.root(), &seq);
  }
  return NestedWord(std::move(seq));
}

Result<OrderedTree> NestedWordToTree(const NestedWord& n) {
  if (n.empty()) return OrderedTree();
  if (!n.IsTreeWord()) {
    return Status::Error("nested word is not a tree word (see §2.3)");
  }
  size_t pos = 0;
  TreeNode root = Decode(n, &pos);
  if (pos != n.size()) {
    return Status::Error("trailing positions after root subtree");
  }
  return OrderedTree(std::move(root));
}

Result<OrderedTree> ParseTree(const std::string& text, Alphabet* alphabet) {
  Parser p{text, 0, alphabet};
  p.SkipWs();
  if (p.pos == text.size()) return OrderedTree();  // ε
  Result<TreeNode> root = p.Node();
  if (!root.ok()) return root.status();
  p.SkipWs();
  if (p.pos != text.size()) {
    return Status::Error("trailing input after tree term");
  }
  return OrderedTree(root.Take());
}

std::string FormatTree(const OrderedTree& t, const Alphabet& alphabet) {
  if (t.IsEmpty()) return "";
  std::string out;
  Format(t.root(), alphabet, &out);
  return out;
}

}  // namespace nw
