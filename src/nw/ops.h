// Operations on nested words (paper §2.4).
//
// All operations act on the tagged-word encoding; because w_nw is a
// bijection (§2.2), splicing tagged sequences implements exactly the
// paper's definitions — e.g. concatenation implicitly re-matches pending
// calls of the first operand with pending returns of the second.
#ifndef NW_NW_OPS_H_
#define NW_NW_OPS_H_

#include "nw/nested_word.h"

namespace nw {

/// Concatenation n · n′ (§2.4). Pending calls of `a` may become matched by
/// pending returns of `b` in the result.
NestedWord Concat(const NestedWord& a, const NestedWord& b);

/// Subword n[i, j) in 0-based half-open convention; the paper's n[i, j]
/// (1-based, inclusive) is Subword(n, i-1, j). Out-of-range or empty ranges
/// yield the empty nested word, mirroring the paper. Hierarchical edges
/// crossing the boundary become pending in the subword.
NestedWord Subword(const NestedWord& n, size_t begin, size_t end);

/// Prefix n[0, k) — the paper's n[1, k].
NestedWord Prefix(const NestedWord& n, size_t k);

/// Suffix n[k, ℓ) — the paper's n[k+1, ℓ]. Concat(Prefix(n,k), Suffix(n,k))
/// always gives back n (§2.4).
NestedWord Suffix(const NestedWord& n, size_t k);

/// Reverse (§2.4): reverses the linear order and flips every hierarchical
/// edge, i.e. calls become returns and vice versa.
NestedWord Reverse(const NestedWord& n);

/// Insert(n, a, n′) (§2.4): inserts the well-matched word n′ after every
/// a-labeled position of n. Checks that n′ is well-matched.
NestedWord Insert(const NestedWord& n, Symbol a, const NestedWord& np);

}  // namespace nw

#endif  // NW_NW_OPS_H_
