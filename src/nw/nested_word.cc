#include "nw/nested_word.h"

#include <vector>

namespace nw {

Matching::Matching(const NestedWord& word) {
  const size_t n = word.size();
  partner_.assign(n, kNone);
  call_parent_.assign(n, kTopLevel);

  // Stack of open call positions. Calls that remain at the end are pending.
  std::vector<size_t> stack;
  size_t matched_depth = 0;  // number of eventually-matched opens — see below
  for (size_t i = 0; i < n; ++i) {
    if (i > 0) {
      // Call-parent recurrence (§2.1, shifted to 0-based): after a call the
      // parent is that call; internals keep the parent; after a return the
      // parent pops to the return's call-predecessor's parent.
      switch (word.kind(i - 1)) {
        case Kind::kCall:
          call_parent_[i] = static_cast<int64_t>(i - 1);
          break;
        case Kind::kInternal:
          call_parent_[i] = call_parent_[i - 1];
          break;
        case Kind::kReturn: {
          int64_t pred = partner_[i - 1];
          call_parent_[i] =
              pred >= 0 ? call_parent_[static_cast<size_t>(pred)] : kTopLevel;
          break;
        }
      }
    }
    switch (word.kind(i)) {
      case Kind::kInternal:
        break;
      case Kind::kCall:
        stack.push_back(i);
        break;
      case Kind::kReturn:
        if (stack.empty()) {
          partner_[i] = kPendingNegInf;
          ++pending_returns_;
        } else {
          size_t c = stack.back();
          stack.pop_back();
          partner_[c] = static_cast<int64_t>(i);
          partner_[i] = static_cast<int64_t>(c);
        }
        break;
    }
  }
  for (size_t c : stack) {
    partner_[c] = kPendingInf;
    ++pending_calls_;
  }

  // Depth: one more pass now that matched pairs are known. Only matched
  // calls contribute to the nesting chain of §2.1.
  for (size_t i = 0; i < n; ++i) {
    if (word.kind(i) == Kind::kCall && partner_[i] >= 0) {
      ++matched_depth;
      if (matched_depth > depth_) depth_ = matched_depth;
    } else if (word.kind(i) == Kind::kReturn && partner_[i] >= 0) {
      --matched_depth;
    }
  }
}

bool NestedWord::IsWellMatched() const {
  // Single scan without building full Matching: a word is well-matched iff
  // no return fires on an empty stack and the stack ends empty.
  int64_t open = 0;
  for (const TaggedSymbol& t : seq_) {
    if (t.kind == Kind::kCall) ++open;
    if (t.kind == Kind::kReturn) {
      if (open == 0) return false;
      --open;
    }
  }
  return open == 0;
}

bool NestedWord::IsRooted() const {
  if (seq_.size() < 2) return false;
  if (seq_.front().kind != Kind::kCall || seq_.back().kind != Kind::kReturn)
    return false;
  // Position 0 matches the last position iff the open-count stays positive
  // strictly inside the word and the word is well-matched.
  int64_t open = 0;
  for (size_t i = 0; i < seq_.size(); ++i) {
    if (seq_[i].kind == Kind::kCall) ++open;
    if (seq_[i].kind == Kind::kReturn) --open;
    if (open < 0) return false;
    if (open == 0 && i + 1 != seq_.size()) return false;
  }
  return open == 0;
}

bool NestedWord::IsTreeWord() const {
  if (!IsRooted()) return false;
  Matching m(*this);
  for (size_t i = 0; i < seq_.size(); ++i) {
    if (seq_[i].kind == Kind::kInternal) return false;
    if (seq_[i].kind == Kind::kCall) {
      int64_t j = m.partner(i);
      NW_DCHECK(j >= 0);  // rooted words are well-matched
      if (seq_[static_cast<size_t>(j)].symbol != seq_[i].symbol) return false;
    }
  }
  return true;
}

size_t NestedWord::Depth() const { return Matching(*this).depth(); }

}  // namespace nw
