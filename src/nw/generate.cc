#include "nw/generate.h"

#include <vector>

namespace nw {
namespace {

Symbol RandSym(Rng* rng, size_t num_symbols) {
  return static_cast<Symbol>(rng->Below(num_symbols));
}

// Emits a random well-matched block of exactly `len` positions into *out.
// Grammar: W ::= ε | i W | <a W a> W, chosen to consume the budget exactly.
void EmitWellMatched(Rng* rng, size_t num_symbols, size_t len,
                     int internal_percent, std::vector<TaggedSymbol>* out) {
  while (len > 0) {
    bool internal = len == 1 || rng->Chance(internal_percent, 100);
    if (internal) {
      out->push_back(Internal(RandSym(rng, num_symbols)));
      --len;
      continue;
    }
    // Call-wrapped block: choose the inside size within the remaining
    // budget, leave the rest for the continuation of the loop.
    size_t inside = rng->Below(len - 1);  // in [0, len-2]
    Symbol s = RandSym(rng, num_symbols);
    out->push_back(Call(s));
    EmitWellMatched(rng, num_symbols, inside, internal_percent, out);
    out->push_back(Return(RandSym(rng, num_symbols)));
    len -= inside + 2;
  }
}

// Emits a random tree with `nodes` nodes as a tree word.
void EmitTree(Rng* rng, size_t num_symbols, size_t nodes,
              std::vector<TaggedSymbol>* out) {
  if (nodes == 0) return;
  Symbol s = RandSym(rng, num_symbols);
  out->push_back(Call(s));
  size_t budget = nodes - 1;  // nodes available for children subtrees
  while (budget > 0) {
    size_t child = 1 + rng->Below(budget);
    EmitTree(rng, num_symbols, child, out);
    budget -= child;
  }
  out->push_back(Return(s));
}

}  // namespace

NestedWord RandomNestedWord(Rng* rng, size_t num_symbols, size_t length) {
  std::vector<TaggedSymbol> seq;
  seq.reserve(length);
  for (size_t i = 0; i < length; ++i) {
    Kind k = static_cast<Kind>(rng->Below(3));
    seq.push_back({k, RandSym(rng, num_symbols)});
  }
  return NestedWord(std::move(seq));
}

NestedWord RandomWellMatched(Rng* rng, size_t num_symbols, size_t length,
                             int internal_percent) {
  std::vector<TaggedSymbol> seq;
  seq.reserve(length);
  EmitWellMatched(rng, num_symbols, length, internal_percent, &seq);
  return NestedWord(std::move(seq));
}

NestedWord RandomTreeWord(Rng* rng, size_t num_symbols, size_t num_nodes) {
  std::vector<TaggedSymbol> seq;
  seq.reserve(2 * num_nodes);
  EmitTree(rng, num_symbols, num_nodes, &seq);
  return NestedWord(std::move(seq));
}

std::vector<NestedWord> EnumerateNestedWords(size_t num_symbols,
                                             size_t length) {
  const size_t letters = 3 * num_symbols;
  size_t total = 1;
  for (size_t i = 0; i < length; ++i) total *= letters;
  std::vector<NestedWord> out;
  out.reserve(total);
  for (size_t code = 0; code < total; ++code) {
    size_t c = code;
    std::vector<TaggedSymbol> seq(length);
    for (size_t i = 0; i < length; ++i) {
      size_t letter = c % letters;
      c /= letters;
      seq[i] = {static_cast<Kind>(letter / num_symbols),
                static_cast<Symbol>(letter % num_symbols)};
    }
    out.push_back(NestedWord(std::move(seq)));
  }
  return out;
}

NestedWord RandomWithDepth(Rng* rng, size_t num_symbols, size_t length,
                           size_t depth) {
  std::vector<TaggedSymbol> seq;
  seq.reserve(length);
  size_t open = 0;
  while (seq.size() < length) {
    size_t remaining = length - seq.size();
    if (remaining <= open) {
      // Must close everything now.
      seq.push_back(Return(RandSym(rng, num_symbols)));
      --open;
      continue;
    }
    uint64_t pick = rng->Below(3);
    if (pick == 0 && open + 1 < depth + 1 && remaining > open + 1) {
      seq.push_back(Call(RandSym(rng, num_symbols)));
      ++open;
    } else if (pick == 1 && open > 0) {
      seq.push_back(Return(RandSym(rng, num_symbols)));
      --open;
    } else {
      seq.push_back(Internal(RandSym(rng, num_symbols)));
    }
  }
  return NestedWord(std::move(seq));
}

}  // namespace nw
