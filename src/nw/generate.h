// Workload generators: random nested words of controllable shape. Used by
// property tests (random cross-validation of automata constructions) and by
// the benchmark harnesses as synthetic data (the paper's linguistic/XML
// workloads are not redistributable; these generators exercise the same
// code paths — see DESIGN.md §1).
#ifndef NW_NW_GENERATE_H_
#define NW_NW_GENERATE_H_

#include "nw/nested_word.h"
#include "support/rng.h"

namespace nw {

/// A uniformly random tagged word: each position independently gets one of
/// the 3·|Σ| tagged letters. Exercises pending calls and returns.
NestedWord RandomNestedWord(Rng* rng, size_t num_symbols, size_t length);

/// A random *well-matched* nested word of exactly `length` positions
/// (length counts calls, returns and internals). `internal_percent`
/// controls the fraction of internal positions.
NestedWord RandomWellMatched(Rng* rng, size_t num_symbols, size_t length,
                             int internal_percent = 34);

/// A random tree word (§2.3): rooted, no internals, matching labels; the
/// image of a random ordered tree with `num_nodes` nodes.
NestedWord RandomTreeWord(Rng* rng, size_t num_symbols, size_t num_nodes);

/// A random word with controlled nesting depth: repeated ramps of `depth`
/// calls and returns with internal filler; useful for the streaming-memory
/// experiments (E-MEM, E-XML).
NestedWord RandomWithDepth(Rng* rng, size_t num_symbols, size_t length,
                           size_t depth);

/// All 3^ℓ·|Σ|^ℓ nested words of length exactly `length` — exhaustive
/// cross-validation input for small lengths (§2.2's counting argument).
std::vector<NestedWord> EnumerateNestedWords(size_t num_symbols,
                                             size_t length);

}  // namespace nw

#endif  // NW_NW_GENERATE_H_
