// Textual format for nested words, matching the paper's Figure 1 notation:
// whitespace-separated tokens `<a` (call), `a` (internal), `a>` (return).
#ifndef NW_NW_TEXT_H_
#define NW_NW_TEXT_H_

#include <string>

#include "nw/nested_word.h"
#include "support/result.h"

namespace nw {

/// Parses the Figure-1 notation. New symbol names are interned into
/// `*alphabet`. Example: "<a <b a a> <b a b> a> <a b a a>" is the prefix of
/// the paper's n1.
Result<NestedWord> ParseNestedWord(const std::string& text,
                                   Alphabet* alphabet);

/// Formats in the same notation.
std::string FormatNestedWord(const NestedWord& n, const Alphabet& alphabet);

}  // namespace nw

#endif  // NW_NW_TEXT_H_
