// Nested words (paper §2.1–§2.2).
//
// A nested word over Σ is a linear sequence of Σ-labeled positions together
// with a matching relation connecting calls to returns. Because position
// types (call / internal / return) determine the matching relation uniquely
// (the bijection nw_w of §2.2), the library represents a nested word as its
// *tagged word*: a sequence of (kind, symbol) pairs. Every tagged sequence
// is a valid nested word — including ones with pending calls and returns —
// which is exactly the paper's point about representing data that "may not
// parse correctly".
//
// Positions are 0-based in this library (the paper is 1-based).
#ifndef NW_NW_NESTED_WORD_H_
#define NW_NW_NESTED_WORD_H_

#include <cstdint>
#include <initializer_list>
#include <vector>

#include "nw/alphabet.h"
#include "support/check.h"

namespace nw {

/// Position type within a nested word.
enum class Kind : uint8_t {
  kInternal = 0,  ///< plain linear position
  kCall = 1,      ///< opens a hierarchical edge (paper: <a)
  kReturn = 2,    ///< closes a hierarchical edge (paper: a>)
};

/// One position of a nested word: its type and its Σ-label.
/// Corresponds to one letter of the tagged alphabet Σ̂ = {<a, a, a>}.
struct TaggedSymbol {
  Kind kind;
  Symbol symbol;

  friend bool operator==(const TaggedSymbol&, const TaggedSymbol&) = default;
};

/// Convenience constructors for tagged symbols.
inline TaggedSymbol Call(Symbol s) { return {Kind::kCall, s}; }
inline TaggedSymbol Internal(Symbol s) { return {Kind::kInternal, s}; }
inline TaggedSymbol Return(Symbol s) { return {Kind::kReturn, s}; }

class Matching;

/// A nested word: value type wrapping the tagged-word encoding.
///
/// The matching relation, nesting depth, call-parents etc. are derived
/// views; compute them with the Matching class. All of §2.4's operations
/// (concatenation, subwords, reverse, insertion) live in nw/ops.h.
class NestedWord {
 public:
  /// The empty nested word.
  NestedWord() = default;

  /// From an explicit tagged sequence.
  explicit NestedWord(std::vector<TaggedSymbol> seq) : seq_(std::move(seq)) {}
  NestedWord(std::initializer_list<TaggedSymbol> seq) : seq_(seq) {}

  /// w_nw of §2.2 restricted to plain words: every position internal.
  static NestedWord FromWord(const std::vector<Symbol>& word) {
    std::vector<TaggedSymbol> seq;
    seq.reserve(word.size());
    for (Symbol s : word) seq.push_back(Internal(s));
    return NestedWord(std::move(seq));
  }

  /// path(w) of §2.2: <a1 ... <aℓ aℓ> ... a1>; rooted, depth |w|.
  static NestedWord Path(const std::vector<Symbol>& word) {
    std::vector<TaggedSymbol> seq;
    seq.reserve(2 * word.size());
    for (Symbol s : word) seq.push_back(Call(s));
    for (auto it = word.rbegin(); it != word.rend(); ++it)
      seq.push_back(Return(*it));
    return NestedWord(std::move(seq));
  }

  /// Number of positions (the paper's length ℓ).
  size_t size() const { return seq_.size(); }
  bool empty() const { return seq_.empty(); }

  const TaggedSymbol& operator[](size_t i) const { return seq_[i]; }
  Kind kind(size_t i) const { return seq_[i].kind; }
  Symbol symbol(size_t i) const { return seq_[i].symbol; }

  const std::vector<TaggedSymbol>& tagged() const { return seq_; }
  std::vector<TaggedSymbol>* mutable_tagged() { return &seq_; }

  /// Appends one position (builder-style use).
  void Push(TaggedSymbol t) { seq_.push_back(t); }

  friend bool operator==(const NestedWord&, const NestedWord&) = default;

  // -- Derived structure (each is O(ℓ); use Matching to batch queries). --

  /// True iff every call has a return-successor and vice versa (§2.1).
  bool IsWellMatched() const;
  /// True iff position 0 is a call matched by the last position (§2.1).
  /// Rooted words are necessarily well-matched.
  bool IsRooted() const;
  /// Tree words (§2.3): rooted, no internals, and matching positions carry
  /// equal labels. These are exactly the images of ordered trees.
  bool IsTreeWord() const;
  /// Nesting depth (§2.1): the maximum d such that d *matched* call/return
  /// pairs are properly nested inside one another. Pending edges do not
  /// contribute (they cannot appear in the paper's i1<...<id<jd<...<j1
  /// chain, which requires both endpoints).
  size_t Depth() const;

 private:
  std::vector<TaggedSymbol> seq_;
};

/// Matching relation and call-parent structure of a nested word (§2.1),
/// computed in one O(ℓ) scan.
class Matching {
 public:
  /// Partner index of a pending call (paper: i ⇝ +∞).
  static constexpr int64_t kPendingInf = -2;
  /// Partner index of a pending return (paper: −∞ ⇝ j).
  static constexpr int64_t kPendingNegInf = -3;
  /// Partner of an internal position.
  static constexpr int64_t kNone = -1;
  /// call_parent() value for top-level positions (paper's call-parent 0).
  static constexpr int64_t kTopLevel = -1;

  explicit Matching(const NestedWord& word);

  /// For a call: index of its return-successor or kPendingInf.
  /// For a return: index of its call-predecessor or kPendingNegInf.
  /// For an internal: kNone.
  int64_t partner(size_t i) const { return partner_[i]; }

  /// Innermost call position strictly enclosing position i, or kTopLevel.
  /// Mirrors the paper's call-parent (shifted to 0-based positions: the
  /// paper's "call-parent of i+1" is `call_parent(i)` here, with the
  /// paper's 0 represented as kTopLevel).
  int64_t call_parent(size_t i) const { return call_parent_[i]; }

  size_t depth() const { return depth_; }
  bool well_matched() const {
    return pending_calls_ == 0 && pending_returns_ == 0;
  }
  size_t pending_calls() const { return pending_calls_; }
  size_t pending_returns() const { return pending_returns_; }

 private:
  std::vector<int64_t> partner_;
  std::vector<int64_t> call_parent_;
  size_t depth_ = 0;
  size_t pending_calls_ = 0;
  size_t pending_returns_ = 0;
};

}  // namespace nw

#endif  // NW_NW_NESTED_WORD_H_
