#include "nw/ops.h"

#include <algorithm>

namespace nw {

NestedWord Concat(const NestedWord& a, const NestedWord& b) {
  std::vector<TaggedSymbol> seq;
  seq.reserve(a.size() + b.size());
  seq.insert(seq.end(), a.tagged().begin(), a.tagged().end());
  seq.insert(seq.end(), b.tagged().begin(), b.tagged().end());
  return NestedWord(std::move(seq));
}

NestedWord Subword(const NestedWord& n, size_t begin, size_t end) {
  if (begin >= end || begin >= n.size()) return NestedWord();
  end = std::min(end, n.size());
  std::vector<TaggedSymbol> seq(n.tagged().begin() + begin,
                                n.tagged().begin() + end);
  return NestedWord(std::move(seq));
}

NestedWord Prefix(const NestedWord& n, size_t k) { return Subword(n, 0, k); }

NestedWord Suffix(const NestedWord& n, size_t k) {
  return Subword(n, k, n.size());
}

NestedWord Reverse(const NestedWord& n) {
  std::vector<TaggedSymbol> seq;
  seq.reserve(n.size());
  for (auto it = n.tagged().rbegin(); it != n.tagged().rend(); ++it) {
    TaggedSymbol t = *it;
    if (t.kind == Kind::kCall) {
      t.kind = Kind::kReturn;
    } else if (t.kind == Kind::kReturn) {
      t.kind = Kind::kCall;
    }
    seq.push_back(t);
  }
  return NestedWord(std::move(seq));
}

NestedWord Insert(const NestedWord& n, Symbol a, const NestedWord& np) {
  NW_CHECK_MSG(np.IsWellMatched(),
               "Insert requires a well-matched word to insert (paper §2.4)");
  std::vector<TaggedSymbol> seq;
  seq.reserve(n.size());
  for (const TaggedSymbol& t : n.tagged()) {
    seq.push_back(t);
    if (t.symbol == a) {
      seq.insert(seq.end(), np.tagged().begin(), np.tagged().end());
    }
  }
  return NestedWord(std::move(seq));
}

}  // namespace nw
