#include "nw/text.h"

#include <cctype>
#include <sstream>

namespace nw {

Result<NestedWord> ParseNestedWord(const std::string& text,
                                   Alphabet* alphabet) {
  std::vector<TaggedSymbol> seq;
  std::istringstream in(text);
  std::string tok;
  while (in >> tok) {
    Kind kind = Kind::kInternal;
    std::string name = tok;
    if (!name.empty() && name.front() == '<') {
      kind = Kind::kCall;
      name = name.substr(1);
    }
    if (!name.empty() && name.back() == '>') {
      if (kind == Kind::kCall) {
        return Status::Error("token is both call and return: " + tok);
      }
      kind = Kind::kReturn;
      name = name.substr(0, name.size() - 1);
    }
    if (name.empty()) {
      return Status::Error("empty symbol name in token: " + tok);
    }
    for (char c : name) {
      if (!std::isalnum(static_cast<unsigned char>(c)) && c != '_') {
        return Status::Error("invalid character in symbol name: " + tok);
      }
    }
    seq.push_back({kind, alphabet->Intern(name)});
  }
  return NestedWord(std::move(seq));
}

std::string FormatNestedWord(const NestedWord& n, const Alphabet& alphabet) {
  std::string out;
  for (size_t i = 0; i < n.size(); ++i) {
    if (i > 0) out += ' ';
    switch (n.kind(i)) {
      case Kind::kCall:
        out += '<';
        out += alphabet.Name(n.symbol(i));
        break;
      case Kind::kInternal:
        out += alphabet.Name(n.symbol(i));
        break;
      case Kind::kReturn:
        out += alphabet.Name(n.symbol(i));
        out += '>';
        break;
    }
  }
  return out;
}

}  // namespace nw
