// Symbol interning. All automata in the library operate on dense integer
// symbol ids; Alphabet maps them to human-readable names for parsing,
// printing, and diagnostics.
#ifndef NW_NW_ALPHABET_H_
#define NW_NW_ALPHABET_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace nw {

/// Dense id of a symbol in an Alphabet. Ids are assigned 0,1,2,... in
/// interning order.
using Symbol = uint32_t;

/// A finite alphabet Σ with named symbols.
///
/// The paper's constructions are parameterized by |Σ|; most examples use
/// Σ = {a, b}. Alphabets are value types and cheap to copy for the small
/// sizes used throughout.
class Alphabet {
 public:
  Alphabet() = default;

  /// Builds an alphabet from a list of distinct names.
  explicit Alphabet(const std::vector<std::string>& names) {
    for (const auto& n : names) Intern(n);
  }

  /// Returns the id for `name`, interning it if new.
  Symbol Intern(const std::string& name) {
    auto it = ids_.find(name);
    if (it != ids_.end()) return it->second;
    Symbol id = static_cast<Symbol>(names_.size());
    names_.push_back(name);
    ids_.emplace(name, id);
    return id;
  }

  /// Returns the id for `name` or `kNoSymbol` when absent.
  Symbol Find(const std::string& name) const {
    auto it = ids_.find(name);
    return it == ids_.end() ? kNoSymbol : it->second;
  }

  /// Name of symbol `s`; `s` must be interned.
  const std::string& Name(Symbol s) const { return names_.at(s); }

  /// Number of symbols.
  size_t size() const { return names_.size(); }

  /// Sentinel for "no such symbol".
  static constexpr Symbol kNoSymbol = UINT32_MAX;

  /// Convenience: alphabet {"a","b"} used by most of the paper's examples.
  static Alphabet Ab() { return Alphabet({"a", "b"}); }

  /// Convenience: the first `n` lowercase letters (n <= 26).
  static Alphabet Letters(int n);

 private:
  std::vector<std::string> names_;
  std::unordered_map<std::string, Symbol> ids_;
};

inline Alphabet Alphabet::Letters(int n) {
  Alphabet a;
  for (int i = 0; i < n; ++i) a.Intern(std::string(1, 'a' + i));
  return a;
}

}  // namespace nw

#endif  // NW_NW_ALPHABET_H_
