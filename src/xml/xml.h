// SAX-style XML bridging (paper §1–§2.2): "since the SAX representation of
// XML documents already contains tags that specify the position type, they
// can be interpreted as nested words without any preprocessing."
//
// The tokenizer maps open-tags to calls, close-tags to returns, and text
// chunks to internal positions — including documents that do not parse
// (mismatched or unclosed tags), which is exactly the representational
// advantage the paper argues for.
#ifndef NW_XML_XML_H_
#define NW_XML_XML_H_

#include <string>

#include "nw/nested_word.h"
#include "nwa/nwa.h"
#include "stream/token_stream.h"
#include "support/rng.h"

namespace nw {

/// Incremental pull tokenizer over SAX-style XML text. Yields one tagged
/// position at a time so consumers (NwaRunner, the query engine) can
/// stream a document with memory bounded by its depth instead of its
/// length. Element names are interned into `*alphabet`; text chunks intern
/// the pseudo-symbol "#text" lazily — a document with no text chunks never
/// allocates it. Attributes are skipped; self-closing tags (`<a/>`) emit a
/// call immediately followed by a return; malformed input never fails —
/// stray close tags become pending returns, unclosed opens pending calls.
///
/// One instantiation of the TokenStream concept (stream/token_stream.h);
/// json/json.h and trace/trace.h are the others.
class XmlTokenStream {
 public:
  /// `text` and `alphabet` must outlive the stream.
  XmlTokenStream(const std::string& text, Alphabet* alphabet)
      : text_(text), alphabet_(alphabet) {}
  /// The stream reads `text` incrementally; a temporary would dangle.
  XmlTokenStream(std::string&& text, Alphabet* alphabet) = delete;
  /// Flushes tallies to the stats sink if one is attached (see Flush).
  ~XmlTokenStream();

  /// Attaches an NWStats sink (obs/stats.h): the stream then tallies
  /// bytes consumed, tokens by kind, and the call/return depth
  /// high-water mark through the shared flush-once StreamTally
  /// (stream/token_stream.h), so the enabled hot path costs a handful of
  /// register increments and the disabled path one branch on a pointer
  /// constant for the stream.
  void set_stats(StatsSink* stats) { tally_.set_stats(stats); }

  /// Produces the next position into `*out`; false at end of input.
  bool Next(TaggedSymbol* out);

  /// Byte offset of the scan: everything before it has been consumed by
  /// the positions yielded so far (including skipped comments/doctype/PI
  /// and, after a self-closing tag's call, the tag whose return is still
  /// queued). Lets consumers cut the text at token boundaries — the
  /// serving layer's SplitTopLevel is built on this instead of a second
  /// tag classifier.
  size_t pos() const { return pos_; }

 private:
  const std::string& text_;
  Alphabet* alphabet_;
  size_t pos_ = 0;
  /// "#text" symbol, interned on first use (lazy) and cached.
  Symbol text_sym_ = Alphabet::kNoSymbol;
  /// Return emitted right after a self-closing tag's call; kNoSymbol when
  /// none is queued.
  Symbol queued_return_ = Alphabet::kNoSymbol;
  /// NWStats tallies, flushed once (see set_stats).
  StreamTally tally_{InputFormat::kXml};
};

/// Tokenizes `text` into a materialized nested word (XmlTokenStream run to
/// completion). Same conventions as the streaming form.
NestedWord XmlToNestedWord(const std::string& text, Alphabet* alphabet);

/// Renders a nested word back to XML-ish text (internal positions render
/// as "."), for debugging and the examples.
std::string NestedWordToXml(const NestedWord& n, const Alphabet& alphabet);

/// Deterministic NWA accepting exactly the well-formed documents over the
/// given alphabet: every open tag is closed by a matching name and nothing
/// is pending. Uses hierarchical edges to carry the open tag's name —
/// the canonical "word automata cannot, NWAs can" query.
Nwa WellFormedChecker(size_t num_symbols);

/// Deterministic flat NWA for the introduction's pattern-order query:
/// element names p1, ..., pn occur (as open tags) in document order.
/// Linear size in the number of patterns (the intro's claim).
Nwa PatternOrderQuery(const std::vector<Symbol>& patterns,
                      size_t num_symbols);

/// Deterministic NWA accepting documents whose nesting depth reaches at
/// least `k` (k+2 states; a word automaton cannot express this at all).
Nwa MinDepthQuery(size_t k, size_t num_symbols);

/// Synthetic XML document generator: a random tree document with the
/// given approximate size (in positions) and maximum depth.
std::string RandomXmlDocument(Rng* rng, const Alphabet& alphabet,
                              size_t approx_positions, size_t max_depth);

}  // namespace nw

#endif  // NW_XML_XML_H_
