// SAX-style XML bridging (paper §1–§2.2): "since the SAX representation of
// XML documents already contains tags that specify the position type, they
// can be interpreted as nested words without any preprocessing."
//
// The tokenizer maps open-tags to calls, close-tags to returns, and text
// chunks to internal positions — including documents that do not parse
// (mismatched or unclosed tags), which is exactly the representational
// advantage the paper argues for.
#ifndef NW_XML_XML_H_
#define NW_XML_XML_H_

#include <string>

#include "nw/nested_word.h"
#include "nwa/nwa.h"
#include "support/rng.h"

namespace nw {

/// Tokenizes `text` into a nested word. Element names are interned into
/// `*alphabet`; all text chunks intern as the pseudo-symbol "#text".
/// Attributes are skipped; malformed input never fails — stray close tags
/// become pending returns, unclosed opens pending calls.
NestedWord XmlToNestedWord(const std::string& text, Alphabet* alphabet);

/// Renders a nested word back to XML-ish text (internal positions render
/// as "."), for debugging and the examples.
std::string NestedWordToXml(const NestedWord& n, const Alphabet& alphabet);

/// Deterministic NWA accepting exactly the well-formed documents over the
/// given alphabet: every open tag is closed by a matching name and nothing
/// is pending. Uses hierarchical edges to carry the open tag's name —
/// the canonical "word automata cannot, NWAs can" query.
Nwa WellFormedChecker(size_t num_symbols);

/// Deterministic flat NWA for the introduction's pattern-order query:
/// element names p1, ..., pn occur (as open tags) in document order.
/// Linear size in the number of patterns (the intro's claim).
Nwa PatternOrderQuery(const std::vector<Symbol>& patterns,
                      size_t num_symbols);

/// Deterministic NWA accepting documents whose nesting depth reaches at
/// least `k` (k+2 states; a word automaton cannot express this at all).
Nwa MinDepthQuery(size_t k, size_t num_symbols);

/// Synthetic XML document generator: a random tree document with the
/// given approximate size (in positions) and maximum depth.
std::string RandomXmlDocument(Rng* rng, const Alphabet& alphabet,
                              size_t approx_positions, size_t max_depth);

}  // namespace nw

#endif  // NW_XML_XML_H_
