#include "xml/xml.h"

#include <cctype>

#include "obs/stats.h"
#include "support/check.h"

namespace nw {

XmlTokenStream::~XmlTokenStream() {
  // A consumer may stop early (every query dead); the tallies of the
  // consumed prefix still flush so byte counts reflect work done.
  tally_.Flush(pos_);
}

bool XmlTokenStream::Next(TaggedSymbol* out) {
  if (queued_return_ != Alphabet::kNoSymbol) {
    *out = Return(queued_return_);
    queued_return_ = Alphabet::kNoSymbol;
    if (tally_.enabled()) tally_.OnReturn();
    return true;
  }
  const std::string& text = text_;
  auto read_name = [&](size_t* pos) {
    size_t start = *pos;
    while (*pos < text.size() &&
           (std::isalnum(static_cast<unsigned char>(text[*pos])) ||
            text[*pos] == '_' || text[*pos] == '-')) {
      ++*pos;
    }
    return text.substr(start, *pos - start);
  };
  while (pos_ < text.size()) {
    if (text[pos_] == '<') {
      // Comments, doctype declarations, and processing instructions are
      // not elements: skip them wholesale so a '/' or '>' inside (URLs,
      // "a > b") cannot fabricate calls or returns.
      if (pos_ + 1 < text.size() &&
          (text[pos_ + 1] == '!' || text[pos_ + 1] == '?')) {
        if (text.compare(pos_, 4, "<!--") == 0) {
          size_t end = text.find("-->", pos_ + 4);
          pos_ = end == std::string::npos ? text.size() : end + 3;
        } else if (text.compare(pos_, 9, "<![CDATA[") == 0) {
          // CDATA is character data (SAX semantics): a non-empty body is
          // a text chunk, never markup.
          size_t body = pos_ + 9;
          size_t end = text.find("]]>", body);
          size_t body_end = end == std::string::npos ? text.size() : end;
          pos_ = end == std::string::npos ? text.size() : end + 3;
          if (body_end > body) {
            if (text_sym_ == Alphabet::kNoSymbol) {
              text_sym_ = alphabet_->Intern("#text");
            }
            if (tally_.enabled()) tally_.OnInternal();
            *out = Internal(text_sym_);
            return true;
          }
        } else {
          // Doctype / PI: end at '>' — but a DOCTYPE internal subset
          // ([...]) may itself contain markup, so only a '>' outside the
          // brackets terminates the construct.
          size_t j = pos_ + 2;
          int brackets = 0;
          while (j < text.size() &&
                 (text[j] != '>' || brackets > 0)) {
            brackets += text[j] == '[';
            brackets -= text[j] == ']';
            ++j;
          }
          pos_ = j < text.size() ? j + 1 : text.size();
        }
        continue;
      }
      if (pos_ + 1 < text.size() && text[pos_ + 1] == '/') {
        size_t j = pos_ + 2;
        std::string name = read_name(&j);
        while (j < text.size() && text[j] != '>') ++j;
        if (j < text.size()) ++j;
        pos_ = j;
        if (tally_.enabled()) tally_.OnReturn();
        *out = Return(alphabet_->Intern(name));
        return true;
      }
      size_t j = pos_ + 1;
      std::string name = read_name(&j);
      // Self-closing only when the '/' immediately precedes '>' — a '/'
      // inside an attribute value (<a href="x/y">) does not count.
      bool self_closing = false;
      while (j < text.size() && text[j] != '>') {
        self_closing = text[j] == '/';
        ++j;
      }
      if (j < text.size()) ++j;
      pos_ = j;
      Symbol s = alphabet_->Intern(name);
      if (self_closing) queued_return_ = s;
      if (tally_.enabled()) tally_.OnCall();
      *out = Call(s);
      return true;
    }
    size_t j = pos_;
    bool nonspace = false;
    while (j < text.size() && text[j] != '<') {
      nonspace =
          nonspace || !std::isspace(static_cast<unsigned char>(text[j]));
      ++j;
    }
    pos_ = j;
    if (nonspace) {
      if (text_sym_ == Alphabet::kNoSymbol) {
        text_sym_ = alphabet_->Intern("#text");
      }
      if (tally_.enabled()) tally_.OnInternal();
      *out = Internal(text_sym_);
      return true;
    }
  }
  tally_.Flush(pos_);  // end of input: tallies become visible to the sink
  return false;
}

NestedWord XmlToNestedWord(const std::string& text, Alphabet* alphabet) {
  NestedWord out;
  XmlTokenStream stream(text, alphabet);
  TaggedSymbol t;
  while (stream.Next(&t)) out.Push(t);
  return out;
}

std::string NestedWordToXml(const NestedWord& n, const Alphabet& alphabet) {
  std::string out;
  for (size_t i = 0; i < n.size(); ++i) {
    switch (n.kind(i)) {
      case Kind::kCall:
        out += "<" + alphabet.Name(n.symbol(i)) + ">";
        break;
      case Kind::kReturn:
        out += "</" + alphabet.Name(n.symbol(i)) + ">";
        break;
      case Kind::kInternal:
        out += ".";
        break;
    }
  }
  return out;
}

Nwa WellFormedChecker(size_t num_symbols) {
  // Hierarchical carriers hold the open tag's name (mismatched close tags
  // find no transition); a bottom marker makes pending returns reject; and
  // since NWA acceptance cannot see the stack, "no pending opens" is
  // carried through the run by the empty/open state split with per-origin
  // frames (the Theorem 6 pattern).
  Nwa b(num_symbols);
  StateId empty = b.AddState(true);
  StateId open = b.AddState(false);
  StateId bot = b.AddState(false);
  b.set_initial(empty);
  b.set_hier_initial(bot);
  std::vector<StateId> from_empty(num_symbols), from_open(num_symbols);
  for (Symbol s = 0; s < num_symbols; ++s) {
    from_empty[s] = b.AddState(false);
    from_open[s] = b.AddState(false);
  }
  for (Symbol s = 0; s < num_symbols; ++s) {
    b.SetInternal(empty, s, empty);
    b.SetInternal(open, s, open);
    b.SetCall(empty, s, open, from_empty[s]);
    b.SetCall(open, s, open, from_open[s]);
    b.SetReturn(open, from_empty[s], s, empty);
    b.SetReturn(open, from_open[s], s, open);
  }
  return b;
}

Nwa PatternOrderQuery(const std::vector<Symbol>& patterns,
                      size_t num_symbols) {
  // Flat automaton: progress counter 0..n; advance when the next wanted
  // name opens. Linear in the number of patterns.
  Nwa a(num_symbols);
  const size_t n = patterns.size();
  std::vector<StateId> st(n + 1);
  for (size_t i = 0; i <= n; ++i) st[i] = a.AddState(i == n);
  a.set_initial(st[0]);
  for (size_t i = 0; i <= n; ++i) {
    for (Symbol s = 0; s < num_symbols; ++s) {
      StateId next = (i < n && s == patterns[i]) ? st[i + 1] : st[i];
      a.SetInternal(st[i], s, st[i]);
      a.SetCall(st[i], s, next, st[0]);  // flat: push q0
      a.SetReturn(st[i], st[0], s, st[i]);
    }
  }
  return a;
}

Nwa MinDepthQuery(size_t k, size_t num_symbols) {
  // Count current depth up to k; once k is reached, latch acceptance.
  Nwa a(num_symbols);
  std::vector<StateId> up(k + 1);
  for (size_t d = 0; d <= k; ++d) up[d] = a.AddState(d == k);
  StateId latched = up[k];
  a.set_initial(up[0]);
  // Hierarchical edges carry the depth at the call, restoring it at the
  // return; the latch state ignores structure.
  for (size_t d = 0; d < k; ++d) {
    for (Symbol s = 0; s < num_symbols; ++s) {
      a.SetInternal(up[d], s, up[d]);
      a.SetCall(up[d], s, d + 1 == k ? latched : up[d + 1], up[d]);
      if (d >= 1) {
        // Matched return: restore the caller's depth.
        a.SetReturn(up[d], up[d - 1], s, up[d - 1]);
      } else {
        // Pending return at top level (frame is the hierarchical initial).
        a.SetReturn(up[0], up[0], s, up[0]);
      }
    }
  }
  for (Symbol s = 0; s < num_symbols; ++s) {
    a.SetInternal(latched, s, latched);
    a.SetCall(latched, s, latched, latched);
    for (size_t d = 0; d <= k; ++d) {
      a.SetReturn(latched, up[d], s, latched);
    }
  }
  return a;
}

std::string RandomXmlDocument(Rng* rng, const Alphabet& alphabet,
                              size_t approx_positions, size_t max_depth) {
  std::string out;
  std::vector<Symbol> stack;
  size_t emitted = 0;
  // Skip the "#text" pseudo-symbol when choosing element names.
  auto name = [&](Symbol s) { return alphabet.Name(s); };
  std::vector<Symbol> elems;
  for (Symbol s = 0; s < alphabet.size(); ++s) {
    if (alphabet.Name(s) != "#text") elems.push_back(s);
  }
  NW_CHECK(!elems.empty());
  while (emitted < approx_positions || !stack.empty()) {
    uint64_t pick = rng->Below(4);
    bool must_close = emitted >= approx_positions ||
                      stack.size() >= max_depth;
    if (!must_close && (pick == 0 || stack.empty())) {
      Symbol s = elems[rng->Below(elems.size())];
      out += "<" + name(s) + ">";
      stack.push_back(s);
      ++emitted;
    } else if (pick == 1 && !stack.empty() && !must_close) {
      out += "text";
      ++emitted;
    } else if (!stack.empty()) {
      out += "</" + name(stack.back()) + ">";
      stack.pop_back();
      ++emitted;
    }
  }
  return out;
}

}  // namespace nw
