#include "pda/pda.h"

#include <unordered_set>

#include "support/check.h"

namespace nw {

StateId Pda::AddState() {
  StateId id = static_cast<StateId>(num_states_++);
  input_.resize(num_states_ * num_symbols_);
  push_.emplace_back();
  pop_.emplace_back();
  return id;
}

void Pda::AddInput(StateId q, Symbol a, StateId q2) {
  NW_DCHECK(q < num_states_ && a < num_symbols_ && q2 < num_states_);
  input_[q * num_symbols_ + a].push_back(q2);
}

void Pda::AddPush(StateId q, StateId q2, uint32_t gamma) {
  NW_DCHECK(q < num_states_ && q2 < num_states_);
  NW_CHECK_MSG(gamma != 0 && gamma < num_stack_symbols_,
               "⊥ is never pushed (§4.1)");
  push_[q].push_back({q2, gamma});
}

void Pda::AddPop(StateId q, uint32_t gamma, StateId q2) {
  NW_DCHECK(q < num_states_ && gamma < num_stack_symbols_ &&
            q2 < num_states_);
  pop_[q].push_back({gamma, q2});
}

namespace {
// Packs a summary (i, q, j, q2) for membership DP. Positions ≤ 2^16,
// states ≤ 2^16.
uint64_t Key(size_t i, StateId q, size_t j, StateId q2) {
  return (static_cast<uint64_t>(i) << 48) | (static_cast<uint64_t>(q) << 32) |
         (static_cast<uint64_t>(j) << 16) | q2;
}
}  // namespace

bool Pda::Accepts(const std::vector<Symbol>& word) const {
  const size_t len = word.size();
  NW_CHECK(len < (1u << 16) && num_states_ < (1u << 16));
  // S(i,q,j,q2): from (q, ε) at position i the automaton can reach (q2, ε)
  // at position j, never popping below its floor.
  std::unordered_set<uint64_t> s;
  std::vector<uint64_t> work;
  // by_end[j * n + q2] lists (i, q); by_start[i * n + q] lists (j, q2).
  std::vector<std::vector<std::pair<size_t, StateId>>> by_end(
      (len + 1) * num_states_);
  std::vector<std::vector<std::pair<size_t, StateId>>> by_start(
      (len + 1) * num_states_);
  auto add = [&](size_t i, StateId q, size_t j, StateId q2) {
    uint64_t key = Key(i, q, j, q2);
    if (!s.insert(key).second) return;
    by_end[j * num_states_ + q2].push_back({i, q});
    by_start[i * num_states_ + q].push_back({j, q2});
    work.push_back(key);
  };
  for (size_t i = 0; i <= len; ++i) {
    for (StateId q = 0; q < num_states_; ++q) add(i, q, i, q);
  }
  while (!work.empty()) {
    uint64_t key = work.back();
    work.pop_back();
    size_t i = key >> 48;
    StateId q = static_cast<StateId>((key >> 32) & 0xffff);
    size_t j = (key >> 16) & 0xffff;
    StateId q2 = static_cast<StateId>(key & 0xffff);
    // Extend by one input symbol.
    if (j < len) {
      for (StateId t : InputTargets(q2, word[j])) add(i, q, j + 1, t);
    }
    // Wrap: for every push (p → q, γ) and pop (q2, γ, r): S(i,p,j,r).
    for (StateId p = 0; p < num_states_; ++p) {
      for (const PushEdge& pe : Pushes(p)) {
        if (pe.target != q) continue;
        for (const PopEdge& po : Pops(q2)) {
          if (po.gamma == pe.gamma) add(i, p, j, po.target);
        }
      }
    }
    // Concatenate: S(i,q,j,q2) ∘ S(j,q2,k,q3) and S(h,q0,i,q) ∘ this.
    {
      auto nexts = by_start[j * num_states_ + q2];
      for (auto [k, q3] : nexts) add(i, q, k, q3);
      auto prevs = by_end[i * num_states_ + q];
      for (auto [h, q0] : prevs) add(h, q0, j, q2);
    }
  }
  // Accept-by-empty-stack: pop ⊥ after a summary from an initial state,
  // then keep running on the (now empty) stack.
  std::vector<std::vector<bool>> t(len + 1,
                                   std::vector<bool>(num_states_, false));
  std::vector<std::pair<size_t, StateId>> twork;
  auto tadd = [&](size_t j, StateId q) {
    if (t[j][q]) return;
    t[j][q] = true;
    twork.push_back({j, q});
  };
  for (StateId q0 : initial_) {
    for (auto [j, q] : by_start[0 * num_states_ + q0]) {
      for (const PopEdge& po : Pops(q)) {
        if (po.gamma == 0) tadd(j, po.target);
      }
    }
  }
  while (!twork.empty()) {
    auto [j, q] = twork.back();
    twork.pop_back();
    if (j == len) return true;
    for (auto [k, q2] : by_start[j * num_states_ + q]) {
      // From an empty stack the same floor-respecting summaries apply.
      tadd(k, q2);
    }
  }
  for (StateId q = 0; q < num_states_; ++q) {
    if (t[len][q]) return true;
  }
  return false;
}

bool Pda::AcceptsTagged(const NestedWord& n) const {
  const size_t sigma = num_symbols_ / 3;
  std::vector<Symbol> word;
  word.reserve(n.size());
  for (const TaggedSymbol& ts : n.tagged()) {
    word.push_back(TaggedIndex(ts, sigma));
  }
  return Accepts(word);
}

bool Pda::IsEmpty() const {
  // Saturate R(q, q′): runs from (q, ε) to (q′, ε) over some word.
  std::unordered_set<uint64_t> r;
  std::vector<std::pair<StateId, StateId>> work;
  std::vector<std::vector<StateId>> from(num_states_), to(num_states_);
  auto add = [&](StateId q, StateId q2) {
    uint64_t key = (static_cast<uint64_t>(q) << 32) | q2;
    if (!r.insert(key).second) return;
    from[q].push_back(q2);
    to[q2].push_back(q);
    work.push_back({q, q2});
  };
  for (StateId q = 0; q < num_states_; ++q) add(q, q);
  while (!work.empty()) {
    auto [q, q2] = work.back();
    work.pop_back();
    for (Symbol a = 0; a < num_symbols_; ++a) {
      for (StateId t : InputTargets(q2, a)) add(q, t);
    }
    for (StateId p = 0; p < num_states_; ++p) {
      for (const PushEdge& pe : Pushes(p)) {
        if (pe.target != q) continue;
        for (const PopEdge& po : Pops(q2)) {
          if (po.gamma == pe.gamma) add(p, po.target);
        }
      }
    }
    std::vector<StateId> nexts = from[q2];
    for (StateId q3 : nexts) add(q, q3);
    std::vector<StateId> prevs = to[q];
    for (StateId q0 : prevs) add(q0, q2);
  }
  // Nonempty iff some initial state reaches a ⊥-popping state.
  for (StateId q0 : initial_) {
    for (StateId q : from[q0]) {
      for (const PopEdge& po : Pops(q)) {
        if (po.gamma == 0) return false;
      }
    }
  }
  return true;
}

Pda Pda::EqualAsAndBs() {
  // Counter automaton: stack symbol 1 = surplus of a's, 2 = surplus of b's.
  // On an a-position: pop a b-surplus or push an a-surplus; symmetrically
  // for b. Accept when balanced: pop ⊥.
  const size_t sigma = 2;
  Pda p(TaggedAlphabetSize(sigma), 3);
  StateId run = p.AddState();
  StateId seen_a = p.AddState();  // must account one a
  StateId seen_b = p.AddState();
  StateId done = p.AddState();
  p.AddInitial(run);
  for (Kind k : {Kind::kInternal, Kind::kCall, Kind::kReturn}) {
    p.AddInput(run, TaggedIndex({k, 0}, sigma), seen_a);
    p.AddInput(run, TaggedIndex({k, 1}, sigma), seen_b);
  }
  p.AddPush(seen_a, run, 1);
  p.AddPop(seen_a, 2, run);
  p.AddPush(seen_b, run, 2);
  p.AddPop(seen_b, 1, run);
  p.AddPop(run, 0, done);
  return p;
}

}  // namespace nw
