// Nondeterministic pushdown word automata accepting by empty stack — the
// context-free-word baseline of Lemma 4 and §4.4's warm-up ("stackless
// summaries" R(q,q')). Stack updates ride on ε-moves, mirroring the
// pushdown-NWA formalization of §4.1.
#ifndef NW_PDA_PDA_H_
#define NW_PDA_PDA_H_

#include <vector>

#include "nw/nested_word.h"
#include "wordauto/dfa.h"

namespace nw {

/// A pushdown word automaton. Stack symbol 0 is the bottom symbol ⊥,
/// pre-loaded in the initial configuration (q0, ⊥) and never pushed.
/// Acceptance: input consumed and stack empty (⊥ popped).
class Pda {
 public:
  Pda(size_t num_symbols, size_t num_stack_symbols)
      : num_symbols_(num_symbols), num_stack_symbols_(num_stack_symbols) {}

  StateId AddState();
  void AddInitial(StateId q) { initial_.push_back(q); }

  /// Input transition (q, a, q2): consumes a, stack untouched.
  void AddInput(StateId q, Symbol a, StateId q2);
  /// ε push: (q → q2, push γ); γ must not be ⊥.
  void AddPush(StateId q, StateId q2, uint32_t gamma);
  /// ε pop: (q, γ → q2).
  void AddPop(StateId q, uint32_t gamma, StateId q2);

  size_t num_states() const { return num_states_; }
  size_t num_symbols() const { return num_symbols_; }
  size_t num_stack_symbols() const { return num_stack_symbols_; }
  const std::vector<StateId>& initial() const { return initial_; }

  const std::vector<StateId>& InputTargets(StateId q, Symbol a) const {
    return input_[q * num_symbols_ + a];
  }
  struct PushEdge {
    StateId target;
    uint32_t gamma;
  };
  struct PopEdge {
    uint32_t gamma;
    StateId target;
  };
  const std::vector<PushEdge>& Pushes(StateId q) const { return push_[q]; }
  const std::vector<PopEdge>& Pops(StateId q) const { return pop_[q]; }

  /// Membership by the summary dynamic program (cubic in |w|).
  bool Accepts(const std::vector<Symbol>& word) const;

  /// Membership over the tagged encoding of a nested word; the automaton's
  /// alphabet must be Σ̂ (num_symbols == 3·|Σ|).
  bool AcceptsTagged(const NestedWord& n) const;

  /// Emptiness by saturating stackless summaries R(q, q′) (§4.4).
  bool IsEmpty() const;

  /// The paper's running example: a PDA over the tagged alphabet of
  /// Σ = {a, b} accepting words with equally many a- and b-labeled
  /// positions (any kind) — a context-free word language that is not a
  /// context-free tree language (Theorem 9).
  static Pda EqualAsAndBs();

 private:
  size_t num_symbols_;
  size_t num_stack_symbols_;
  size_t num_states_ = 0;
  std::vector<StateId> initial_;
  std::vector<std::vector<StateId>> input_;
  std::vector<std::vector<PushEdge>> push_;
  std::vector<std::vector<PopEdge>> pop_;
};

}  // namespace nw

#endif  // NW_PDA_PDA_H_
