#include "trace/trace.h"

#include <cctype>

#include "obs/stats.h"
#include "support/check.h"

namespace nw {

bool TraceTokenStream::Next(TaggedSymbol* out) {
  if (queued_return_ != Alphabet::kNoSymbol) {
    *out = Return(queued_return_);
    queued_return_ = Alphabet::kNoSymbol;
    if (tally_.enabled()) tally_.OnReturn();
    return true;
  }
  const std::string& text = text_;
  while (pos_ < text.size() &&
         std::isspace(static_cast<unsigned char>(text[pos_]))) {
    ++pos_;
  }
  if (pos_ >= text.size()) {
    tally_.Flush(pos_);  // end of input: tallies become visible to the sink
    return false;
  }
  size_t start = pos_;
  while (pos_ < text.size() &&
         !std::isspace(static_cast<unsigned char>(text[pos_]))) {
    ++pos_;
  }
  size_t len = pos_ - start;
  bool call = text[start] == '<';
  bool ret = text[pos_ - 1] == '>';
  if (call && ret && len > 2) {
    // `<f>`: a self-contained frame — call now, return queued (the XML
    // self-closing-tag analog).
    Symbol s = alphabet_->Intern(text.substr(start + 1, len - 2));
    queued_return_ = s;
    if (tally_.enabled()) tally_.OnCall();
    *out = Call(s);
    return true;
  }
  if (call && len > 1) {
    Symbol s = alphabet_->Intern(text.substr(start + 1, len - 1));
    if (tally_.enabled()) tally_.OnCall();
    *out = Call(s);
    return true;
  }
  if (ret && len > 1) {
    Symbol s = alphabet_->Intern(text.substr(start, len - 1));
    if (tally_.enabled()) tally_.OnReturn();
    *out = Return(s);
    return true;
  }
  if (call || ret) {
    // A lone `<` or `>` names nothing: a garbage internal, not a frame.
    if (text_sym_ == Alphabet::kNoSymbol) {
      text_sym_ = alphabet_->Intern("#text");
    }
    if (tally_.enabled()) tally_.OnInternal();
    *out = Internal(text_sym_);
    return true;
  }
  // An internal event carries its own symbol — that is what event-level
  // atoms (`balanced acquire release`) step on.
  Symbol s = alphabet_->Intern(text.substr(start, len));
  if (tally_.enabled()) tally_.OnInternal();
  *out = Internal(s);
  return true;
}

NestedWord TraceToNestedWord(const std::string& text, Alphabet* alphabet) {
  NestedWord out;
  TraceTokenStream stream(text, alphabet);
  TaggedSymbol t;
  while (stream.Next(&t)) out.Push(t);
  return out;
}

Nwa BalancedFrameQuery(Symbol a, Symbol b, size_t num_symbols) {
  NW_CHECK_MSG(a < num_symbols && b < num_symbols,
               "balanced atom symbols outside the compiled space");
  // The LockDiscipline automaton of examples/program_traces.cpp,
  // generalized over (a, b): states free (accepting) and held; frames
  // carry the state at call time on the hierarchical edge, so a frame
  // must release what it acquired before returning. Missing transitions
  // are deliberate — a double `a`, a `b` while free, a frame returning
  // in the wrong state, or `a`/`b` used as a frame name kill the run
  // (the engine treats a dead run as a settled reject).
  Nwa q(num_symbols);
  StateId free_q = q.AddState(true);
  StateId held = q.AddState(false);
  StateId h_free = q.AddState(false);
  StateId h_held = q.AddState(false);
  q.set_initial(free_q);
  q.set_hier_initial(free_q);
  for (Symbol s = 0; s < num_symbols; ++s) {
    if (s == a) {
      q.SetInternal(free_q, s, held);  // double-acquire: no transition
      continue;
    }
    if (s == b) {
      q.SetInternal(held, s, free_q);  // release while free: no transition
      continue;
    }
    q.SetInternal(free_q, s, free_q);
    q.SetInternal(held, s, held);
    q.SetCall(free_q, s, free_q, h_free);
    q.SetCall(held, s, held, h_held);
    q.SetReturn(free_q, h_free, s, free_q);
    q.SetReturn(held, h_held, s, held);
    // Pending returns (log suffixes) read the hierarchical initial
    // (= free_q): the unseen caller is judged to have held nothing.
    q.SetReturn(free_q, free_q, s, free_q);
    q.SetReturn(held, free_q, s, held);
  }
  return q;
}

}  // namespace nw
