// Program traces as nested words — the application that motivated nested
// words in the first place (the paper's [4], examples/program_traces.cpp):
// an execution is a linear event stream whose calls and returns impose the
// procedure nesting, so stack-sensitive safety properties check in one
// streaming pass, including traces of crashed programs (pending calls)
// and log suffixes (pending returns).
//
// The log syntax is the paper's Figure-1 notation (nw/text.h):
// whitespace-separated tokens `<f` (call into f), `ev` (internal event
// ev), `f>` (return from f). Unlike the XML and JSON front ends, internal
// events carry their OWN symbol — `acquire` streams as internal(acquire),
// not internal(#text) — which is what makes event-level query atoms like
// `balanced acquire release` expressible. `<f>` is a self-contained
// frame (call immediately followed by its return — the XML self-closing
// analog). Malformed logs never fail: a lone `<` or `>` is a #text
// internal, pending calls and returns are first-class.
#ifndef NW_TRACE_TRACE_H_
#define NW_TRACE_TRACE_H_

#include <string>

#include "nw/nested_word.h"
#include "nwa/nwa.h"
#include "stream/token_stream.h"

namespace nw {

/// Incremental pull tokenizer over call/return event logs — one
/// instantiation of the TokenStream concept (stream/token_stream.h).
/// Event names are interned into `*alphabet`.
class TraceTokenStream {
 public:
  /// `text` and `alphabet` must outlive the stream.
  TraceTokenStream(const std::string& text, Alphabet* alphabet)
      : text_(text), alphabet_(alphabet) {}
  /// The stream reads `text` incrementally; a temporary would dangle.
  TraceTokenStream(std::string&& text, Alphabet* alphabet) = delete;
  /// Flushes tallies to the stats sink if one is attached.
  ~TraceTokenStream() { tally_.Flush(pos_); }

  /// Attaches an NWStats sink (obs/stats.h); same flush-once tally
  /// discipline as every front end (stream/token_stream.h).
  void set_stats(StatsSink* stats) { tally_.set_stats(stats); }

  /// Produces the next position into `*out`; false at end of input.
  bool Next(TaggedSymbol* out);

  /// Byte offset of the scan: everything before it has been consumed by
  /// the positions yielded so far (after a `<f>` token's call, the frame
  /// whose return is still queued). SplitTopLevel cuts at these offsets.
  size_t pos() const { return pos_; }

 private:
  const std::string& text_;
  Alphabet* alphabet_;
  size_t pos_ = 0;
  /// "#text" symbol for degenerate tokens, interned lazily.
  Symbol text_sym_ = Alphabet::kNoSymbol;
  /// Return queued behind a self-contained `<f>` frame's call.
  Symbol queued_return_ = Alphabet::kNoSymbol;
  /// NWStats tallies, flushed once (see set_stats).
  StreamTally tally_{InputFormat::kTrace};
};

/// Tokenizes `text` into a materialized nested word (TraceTokenStream run
/// to completion). Same conventions as the streaming form.
NestedWord TraceToNestedWord(const std::string& text, Alphabet* alphabet);

/// The `balanced a b` query atom: deterministic NWA accepting traces that
/// keep the a/b discipline — every internal event `a` is matched by an
/// internal event `b` before the enclosing frame returns, never two `a`s
/// without a `b` between, never a `b` without an open `a`, and the trace
/// does not end (or any frame return) with an `a` still open. The
/// generalization of examples/program_traces.cpp's LockDiscipline: frames
/// carry the held/free state on the hierarchical edge, so a frame cannot
/// return while holding what it acquired; pending returns (log suffixes)
/// read the hierarchical initial and are judged as if the unseen caller
/// held nothing. `a` and `b` as call/return symbols have no transition
/// (the discipline speaks about events, not frames named like them).
Nwa BalancedFrameQuery(Symbol a, Symbol b, size_t num_symbols);

}  // namespace nw

#endif  // NW_TRACE_TRACE_H_
