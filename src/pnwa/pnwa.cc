#include "pnwa/pnwa.h"

#include <algorithm>
#include <map>
#include <unordered_set>

#include "support/check.h"

namespace nw {

StateId PushdownNwa::AddState(bool hierarchical) {
  StateId id = static_cast<StateId>(hier_.size());
  hier_.push_back(hierarchical);
  internal_.resize(hier_.size() * num_symbols_);
  call_.resize(hier_.size() * num_symbols_);
  linear_ret_.resize(hier_.size() * num_symbols_);
  hier_ret_.resize(hier_.size() * num_symbols_);
  push_.emplace_back();
  pop_.emplace_back();
  return id;
}

void PushdownNwa::AddInternal(StateId q, Symbol a, StateId q2) {
  NW_CHECK_MSG(!hier_[q] || hier_[q2], "Qh internal must stay in Qh (§4.1)");
  internal_[q * num_symbols_ + a].push_back(q2);
}

void PushdownNwa::AddCall(StateId q, Symbol a, StateId linear, StateId hier) {
  NW_CHECK_MSG(!hier_[q] || (hier_[linear] && hier_[hier]),
               "Qh call forks into Qh × Qh (§4.1)");
  call_[q * num_symbols_ + a].push_back({linear, hier});
}

void PushdownNwa::AddLinearReturn(StateId q, Symbol a, StateId q2) {
  NW_CHECK_MSG(!hier_[q], "linear return source must be in Ql (§4.1)");
  linear_ret_[q * num_symbols_ + a].push_back(q2);
}

void PushdownNwa::AddHierReturn(StateId h, Symbol a, StateId q2) {
  NW_CHECK_MSG(hier_[h] && hier_[q2], "hier return maps Qh to Qh (§4.1)");
  hier_ret_[h * num_symbols_ + a].push_back(q2);
}

void PushdownNwa::AddPush(StateId q, StateId q2, uint32_t gamma) {
  NW_CHECK_MSG(gamma != 0 && gamma < num_stack_symbols_,
               "⊥ is never pushed (§4.1)");
  push_[q].push_back({q2, gamma});
}

void PushdownNwa::AddPop(StateId q, uint32_t gamma, StateId q2) {
  NW_DCHECK(gamma < num_stack_symbols_);
  pop_[q].push_back({gamma, q2});
}

namespace {

/// A configuration: state plus explicit stack (bottom first).
struct Config {
  StateId q;
  std::vector<uint32_t> stack;

  friend bool operator<(const Config& x, const Config& y) {
    if (x.q != y.q) return x.q < y.q;
    return x.stack < y.stack;
  }
  friend bool operator==(const Config&, const Config&) = default;
};

using ConfigSet = std::vector<Config>;  // kept sorted + unique

void Insert(ConfigSet* set, Config c) {
  auto it = std::lower_bound(set->begin(), set->end(), c);
  if (it == set->end() || !(*it == c)) set->insert(it, std::move(c));
}

}  // namespace

/// Interpreter implementing the run definition of §4.1 literally, with
/// memoization over (segment start, entry configuration).
class PnwaInterp {
 public:
  PnwaInterp(const PushdownNwa& a, const NestedWord& n,
             const PnwaLimits& limits, PnwaRunStats* stats)
      : a_(a), n_(n), m_(n), limits_(limits), stats_(stats) {}

  bool Run() {
    bool q0_hier_exists = false;
    for (StateId q0 : a_.initial_) q0_hier_exists |= a_.hier_[q0];
    (void)q0_hier_exists;
    ConfigSet result;
    for (StateId q0 : a_.initial_) {
      Config init{q0, {0}};  // (q0, ⊥)
      ConfigSet out = Segment(0, n_.size(), init);
      for (Config& c : Closure(std::move(out))) {
        if (c.stack.empty()) return true;
        (void)result;
      }
    }
    return false;
  }

 private:
  void Count() {
    if (stats_ == nullptr) return;
    if (++stats_->configs_explored > limits_.max_configs) {
      stats_->hit_limit = true;
    }
  }

  // ε-closure under push/pop moves, bounded by the stack limit and the
  // global configuration budget (membership is NP-hard; the limits keep
  // adversarial inputs from hanging — see PnwaLimits).
  ConfigSet Closure(ConfigSet in) {
    ConfigSet out;
    std::vector<Config> work(in.begin(), in.end());
    for (Config& c : work) Insert(&out, c);
    while (!work.empty() && out.size() <= limits_.max_configs) {
      Config c = std::move(work.back());
      work.pop_back();
      Count();
      for (const auto& pe : a_.push_[c.q]) {
        if (c.stack.size() >= limits_.max_stack) continue;
        Config next{pe.target, c.stack};
        next.stack.push_back(pe.gamma);
        if (std::binary_search(out.begin(), out.end(), next)) continue;
        Insert(&out, next);
        work.push_back(std::move(next));
      }
      if (!c.stack.empty()) {
        for (const auto& po : a_.pop_[c.q]) {
          if (po.gamma != c.stack.back()) continue;
          Config next{po.target, c.stack};
          next.stack.pop_back();
          if (std::binary_search(out.begin(), out.end(), next)) continue;
          Insert(&out, next);
          work.push_back(std::move(next));
        }
      }
    }
    return out;
  }

  // Processes positions [i, j) from entry configuration `c` (ε-closure is
  // applied before every position). Memoized.
  ConfigSet Segment(size_t i, size_t j, const Config& c) {
    auto key = std::make_pair(i, c);
    auto it = memo_.find(key);
    if (it != memo_.end()) return it->second;
    // Reserve the memo slot to cut ε-free infinite recursion (none is
    // possible structurally, but the entry keeps the recursion finite).
    memo_[key] = {};

    ConfigSet frontier{c};
    size_t pos = i;
    while (pos < j && !frontier.empty()) {
      frontier = Closure(std::move(frontier));
      Symbol sym = n_.symbol(pos);
      ConfigSet next;
      switch (n_.kind(pos)) {
        case Kind::kInternal: {
          for (const Config& cf : frontier) {
            for (StateId t : a_.internal_[cf.q * a_.num_symbols_ + sym]) {
              Insert(&next, {t, cf.stack});
            }
          }
          ++pos;
          break;
        }
        case Kind::kCall: {
          int64_t partner = m_.partner(pos);
          if (partner < 0) {
            // Pending call: linear edge continues; the hierarchical edge's
            // configuration is never consumed.
            for (const Config& cf : frontier) {
              for (const CallEdge& e : a_.call_[cf.q * a_.num_symbols_ + sym]) {
                Insert(&next, {e.linear, cf.stack});
              }
            }
            ++pos;
            break;
          }
          size_t r = static_cast<size_t>(partner);
          Symbol rsym = n_.symbol(r);
          for (const Config& cf : frontier) {
            for (const CallEdge& e : a_.call_[cf.q * a_.num_symbols_ + sym]) {
              ConfigSet inside =
                  Closure(Segment(pos + 1, r, {e.linear, cf.stack}));
              for (const Config& end : inside) {
                if (!a_.hier_[end.q]) {
                  // Rule (a): previous state linear; hierarchical edge
                  // state must be initial; the previous stack flows on.
                  if (!IsInitial(e.hier)) continue;
                  for (StateId t :
                       a_.linear_ret_[end.q * a_.num_symbols_ + rsym]) {
                    Insert(&next, {t, end.stack});
                  }
                } else {
                  // Rule (b): leaf configuration — must be empty (the
                  // acceptance condition; non-empty leaves cannot be part
                  // of an accepting run, so prune). Steps on the edge.
                  if (!end.stack.empty()) continue;
                  for (StateId t :
                       a_.hier_ret_[e.hier * a_.num_symbols_ + rsym]) {
                    Insert(&next, {t, cf.stack});
                  }
                }
              }
            }
          }
          pos = r + 1;
          break;
        }
        case Kind::kReturn: {
          // Only pending returns are seen here: matched ones are consumed
          // by their calls above.
          NW_DCHECK(m_.partner(pos) == Matching::kPendingNegInf);
          for (const Config& cf : frontier) {
            if (!a_.hier_[cf.q]) {
              // Rule (a): the pending edge's state is an initial state by
              // definition; step on the current configuration.
              for (StateId t : a_.linear_ret_[cf.q * a_.num_symbols_ + sym]) {
                Insert(&next, {t, cf.stack});
              }
            } else {
              // Rule (b): the current configuration is a leaf (empty
              // stack); the edge carries (q0, ⊥) for some initial q0 in
              // Qh; the next configuration inherits the edge's stack.
              if (!cf.stack.empty()) continue;
              for (StateId q0 : a_.initial_) {
                if (!a_.hier_[q0]) continue;
                for (StateId t : a_.hier_ret_[q0 * a_.num_symbols_ + sym]) {
                  Insert(&next, {t, {0}});
                }
              }
            }
          }
          ++pos;
          break;
        }
      }
      frontier = std::move(next);
    }
    memo_[key] = frontier;
    return frontier;
  }

  bool IsInitial(StateId q) const {
    for (StateId q0 : a_.initial_) {
      if (q0 == q) return true;
    }
    return false;
  }

  const PushdownNwa& a_;
  const NestedWord& n_;
  Matching m_;
  PnwaLimits limits_;
  PnwaRunStats* stats_;
  std::map<std::pair<size_t, Config>, ConfigSet> memo_;
};

bool PushdownNwa::Accepts(const NestedWord& n, const PnwaLimits& limits,
                          PnwaRunStats* stats) const {
  PnwaInterp interp(*this, n, limits, stats);
  return interp.Run();
}

namespace {

struct Summary {
  StateId q;
  uint64_t u;
  StateId q2;

  friend bool operator==(const Summary&, const Summary&) = default;
};

struct SummaryHash {
  size_t operator()(const Summary& s) const {
    uint64_t x = (static_cast<uint64_t>(s.q) << 32) ^ s.q2;
    x ^= s.u * 0x9e3779b97f4a7c15ULL;
    x ^= x >> 29;
    return static_cast<size_t>(x * 0xbf58476d1ce4e5b9ULL);
  }
};

}  // namespace

bool PushdownNwa::IsEmpty() const {
  const size_t k = num_symbols_;
  const size_t n = num_states();
  // Bit index per hierarchical state.
  std::vector<int> hbit(n, -1);
  int hcount = 0;
  for (StateId q = 0; q < n; ++q) {
    if (hier_[q]) hbit[q] = hcount++;
  }
  NW_CHECK_MSG(hcount <= 64, "emptiness supports at most 64 Qh states");

  std::unordered_set<Summary, SummaryHash> seen;
  std::vector<Summary> all;
  std::vector<std::vector<size_t>> from(n), end_at(n), containing(n);
  std::vector<size_t> work;

  auto add = [&](StateId q, uint64_t u, StateId q2) {
    Summary s{q, u, q2};
    if (!seen.insert(s).second) return;
    size_t idx = all.size();
    all.push_back(s);
    from[q].push_back(idx);
    end_at[q2].push_back(idx);
    for (StateId h = 0; h < n; ++h) {
      if (hbit[h] >= 0 && (u >> hbit[h]) & 1) containing[h].push_back(idx);
    }
    work.push_back(idx);
  };

  // Base and the paper's standalone rules.
  for (StateId q = 0; q < n; ++q) {
    add(q, 0, q);
    for (Symbol a = 0; a < k; ++a) {
      for (StateId t : internal_[q * k + a]) add(q, 0, t);
      if (!hier_[q]) {
        for (StateId t : linear_ret_[q * k + a]) add(q, 0, t);
      }
      for (const CallEdge& e : call_[q * k + a]) {
        if (!hier_[q] && !hier_[e.hier]) {
          // Linear call whose frame can satisfy the q0-check at a matched
          // linear return.
          for (StateId q0 : initial_) {
            if (q0 == e.hier) add(q, 0, e.linear);
          }
        }
        if (hier_[e.linear] && hier_[e.hier]) {
          // Hierarchical call-return: spawn the inside as a leaf thread.
          for (Symbol b = 0; b < k; ++b) {
            for (StateId t : hier_ret_[e.hier * k + b]) {
              add(q, 1ull << hbit[e.linear], t);
            }
          }
        }
      }
    }
  }

  auto combine_linear = [&](const Summary& x, const Summary& y) {
    // x then y.
    if (x.q2 == y.q) add(x.q, x.u | y.u, y.q2);
  };
  auto combine_hier = [&](const Summary& x, const Summary& y) {
    // Extend x's suspended thread y.q by y.
    if (hbit[y.q] < 0) return;
    uint64_t bit = 1ull << hbit[y.q];
    if ((x.u & bit) == 0) return;
    uint64_t u = (x.u & ~bit) | y.u;
    if (hbit[y.q2] >= 0) u |= 1ull << hbit[y.q2];
    add(x.q, u, x.q2);
  };

  while (!work.empty()) {
    size_t idx = work.back();
    work.pop_back();
    Summary s = all[idx];
    // Push–pop wrap: for pushes (p → s.q, γ) and pops (s.q2, γ, r), with
    // every suspended thread popping γ as well.
    for (StateId p = 0; p < n; ++p) {
      for (const PushEdge& pe : push_[p]) {
        if (pe.target != s.q) continue;
        for (const PopEdge& po : pop_[s.q2]) {
          if (po.gamma != pe.gamma || po.gamma == 0) continue;
          uint64_t u2 = 0;
          bool ok = true;
          for (StateId h = 0; h < n; ++h) {
            if (hbit[h] < 0 || ((s.u >> hbit[h]) & 1) == 0) continue;
            bool any = false;
            for (const PopEdge& hp : pop_[h]) {
              if (hp.gamma == pe.gamma && hbit[hp.target] >= 0) {
                u2 |= 1ull << hbit[hp.target];
                any = true;
              }
            }
            if (!any) {
              ok = false;
              break;
            }
          }
          if (ok) add(p, u2, po.target);
        }
      }
    }
    // Linear concatenation, both directions.
    {
      std::vector<size_t> nexts = from[s.q2];
      for (size_t j : nexts) combine_linear(s, all[j]);
      std::vector<size_t> prevs = end_at[s.q];
      for (size_t j : prevs) combine_linear(all[j], s);
    }
    // Hierarchical concatenation, both roles.
    for (StateId h = 0; h < n; ++h) {
      if (hbit[h] < 0 || ((s.u >> hbit[h]) & 1) == 0) continue;
      std::vector<size_t> exts = from[h];
      for (size_t j : exts) combine_hier(s, all[j]);
    }
    {
      std::vector<size_t> hosts = containing[s.q];
      for (size_t j : hosts) combine_hier(all[j], s);
    }
  }
  last_summary_count_ = all.size();

  // Top-level closure: pending returns (phase 0) precede pending calls
  // (phase 1); `bot` tracks whether the main thread's ⊥ is still present.
  struct Node {
    StateId q;
    uint64_t u;
    uint8_t bot;
    uint8_t phase;

    bool operator==(const Node& o) const {
      return q == o.q && u == o.u && bot == o.bot && phase == o.phase;
    }
  };
  struct NodeHash {
    size_t operator()(const Node& x) const {
      return SummaryHash()({x.q, x.u, static_cast<StateId>(
                                          (x.bot << 1) | x.phase)});
    }
  };
  std::unordered_set<Node, NodeHash> visited;
  std::vector<Node> nwork;
  auto nadd = [&](Node x) {
    if (!visited.insert(x).second) return;
    nwork.push_back(x);
  };
  for (StateId q0 : initial_) nadd({q0, 0, 1, 0});

  auto all_pop_bottom = [&](uint64_t u) {
    for (StateId h = 0; h < n; ++h) {
      if (hbit[h] < 0 || ((u >> hbit[h]) & 1) == 0) continue;
      bool any = false;
      for (const PopEdge& po : pop_[h]) any = any || po.gamma == 0;
      if (!any) return false;
    }
    return true;
  };

  while (!nwork.empty()) {
    Node x = nwork.back();
    nwork.pop_back();
    if (x.bot == 0 && x.u == 0) return false;  // empty stack reachable
    // Summary step.
    for (size_t j : from[x.q]) {
      const Summary& s = all[j];
      // With ⊥ popped the floor is empty: new leaf threads are complete.
      uint64_t u = x.bot ? (x.u | s.u) : x.u;
      nadd({s.q2, u, x.bot, x.phase});
    }
    // Explicit ⊥ pop (main thread and every suspended thread).
    if (x.bot == 1 && all_pop_bottom(x.u)) {
      for (const PopEdge& po : pop_[x.q]) {
        if (po.gamma == 0) nadd({po.target, 0, 0, x.phase});
      }
    }
    for (Symbol a = 0; a < k; ++a) {
      // Pending returns (phase 0 only).
      if (x.phase == 0) {
        if (!hier_[x.q]) {
          for (StateId t : linear_ret_[x.q * k + a]) {
            nadd({t, x.u, x.bot, 0});
          }
        } else if (x.bot == 0 && x.u == 0) {
          for (StateId q0 : initial_) {
            if (!hier_[q0]) continue;
            for (StateId t : hier_ret_[q0 * k + a]) nadd({t, 0, 1, 0});
          }
        }
      }
      // Pending calls.
      for (const CallEdge& e : call_[x.q * k + a]) {
        nadd({e.linear, x.u, x.bot, 1});
      }
    }
  }
  return true;
}

PushdownNwa PushdownNwa::FromPda(const Pda& pda, size_t sigma_size) {
  NW_CHECK(pda.num_symbols() == TaggedAlphabetSize(sigma_size));
  PushdownNwa out(sigma_size, pda.num_stack_symbols());
  for (StateId q = 0; q < pda.num_states(); ++q) {
    out.AddState(/*hierarchical=*/false);
  }
  for (StateId q0 : pda.initial()) out.AddInitial(q0);
  StateId anchor = pda.initial().empty() ? 0 : pda.initial()[0];
  for (StateId q = 0; q < pda.num_states(); ++q) {
    for (Symbol s = 0; s < sigma_size; ++s) {
      for (StateId t : pda.InputTargets(q, TaggedIndex(Internal(s), sigma_size))) {
        out.AddInternal(q, s, t);
      }
      for (StateId t : pda.InputTargets(q, TaggedIndex(Call(s), sigma_size))) {
        // The frame's state must be initial so matched linear returns pass
        // the q0-check (the PDA ignores nesting entirely).
        out.AddCall(q, s, t, anchor);
      }
      for (StateId t : pda.InputTargets(q, TaggedIndex(Return(s), sigma_size))) {
        out.AddLinearReturn(q, s, t);
      }
    }
    for (const Pda::PushEdge& pe : pda.Pushes(q)) {
      out.AddPush(q, pe.target, pe.gamma);
    }
    for (const Pda::PopEdge& po : pda.Pops(q)) {
      out.AddPop(q, po.gamma, po.target);
    }
  }
  return out;
}

}  // namespace nw
