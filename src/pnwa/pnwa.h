// Pushdown nested word automata (paper §4).
//
// A PNWA adds a stack to the finite-state control of a nondeterministic
// *joinless* automaton: at a call the entire stack is copied to both the
// linear and the hierarchical edge; stack updates ride on ε push/pop
// moves; acceptance is by empty stack — the end configuration and every
// *leaf* configuration (the configuration just before a hierarchically
// processed return) must have an empty stack.
//
// Pushdown word automata are the special case with all states linear
// (Lemma 4); top-down pushdown tree automata the one with all states
// hierarchical (Lemma 5). The class strictly contains both (Theorem 9);
// membership is NP-complete (Theorem 10) and emptiness Exptime-complete
// (Theorem 11).
#ifndef NW_PNWA_PNWA_H_
#define NW_PNWA_PNWA_H_

#include <vector>

#include "nw/nested_word.h"
#include "nwa/nnwa.h"
#include "pda/pda.h"

namespace nw {

/// Resource limits for the (NP-hard) membership interpreter.
struct PnwaLimits {
  size_t max_stack = 64;          ///< stack height bound per configuration
  size_t max_configs = 1 << 18;   ///< explored configuration bound
};

/// Statistics from a membership run (experiment instrumentation, E-THM10).
struct PnwaRunStats {
  size_t configs_explored = 0;
  bool hit_limit = false;
};

/// Pushdown nested word automaton.
class PushdownNwa {
 public:
  /// Stack symbol 0 is ⊥ (pre-loaded, never pushed).
  PushdownNwa(size_t num_symbols, size_t num_stack_symbols)
      : num_symbols_(num_symbols), num_stack_symbols_(num_stack_symbols) {}

  /// Adds a state in the given mode (linear or hierarchical).
  StateId AddState(bool hierarchical);
  void AddInitial(StateId q) { initial_.push_back(q); }

  bool is_hier(StateId q) const { return hier_[q]; }
  size_t num_states() const { return hier_.size(); }
  size_t num_symbols() const { return num_symbols_; }
  size_t num_stack_symbols() const { return num_stack_symbols_; }
  const std::vector<StateId>& initial() const { return initial_; }

  /// δi: internal transition; a hierarchical source stays in Qh.
  void AddInternal(StateId q, Symbol a, StateId q2);
  /// δc: call; a hierarchical source forks into Qh × Qh. Both edges
  /// receive a copy of the current stack.
  void AddCall(StateId q, Symbol a, StateId linear, StateId hier);
  /// δr, linear rule: fires at a return when the previous state is linear
  /// and the hierarchical edge carries an initial state; steps on the
  /// previous configuration (stack flows through).
  void AddLinearReturn(StateId q, Symbol a, StateId q2);
  /// δr, hierarchical rule: keyed on the hierarchical-edge state h; fires
  /// when the previous configuration is a leaf (state in Qh, empty stack);
  /// the next configuration takes the *edge's* stack.
  void AddHierReturn(StateId h, Symbol a, StateId q2);
  /// ε push (γ ≠ ⊥) and ε pop.
  void AddPush(StateId q, StateId q2, uint32_t gamma);
  void AddPop(StateId q, uint32_t gamma, StateId q2);

  /// Membership (Theorem 10: NP-complete). Exhaustive search over runs,
  /// memoized on (position, configuration); limits guard pathological
  /// ε-loops. `stats` is optional instrumentation.
  bool Accepts(const NestedWord& n, const PnwaLimits& limits = {},
               PnwaRunStats* stats = nullptr) const;

  /// Emptiness (Theorem 11: Exptime-complete) via saturation of the
  /// summaries R(q, U, q′) of §4.4 — U ⊆ Qh is the set of suspended leaf
  /// threads that must keep consuming the outer stack — followed by a
  /// top-level closure over pending returns and calls. Requires
  /// |Qh| ≤ 64.
  bool IsEmpty() const;

  /// Number of saturated summary triples in the last IsEmpty() call
  /// (experiment metric for E-THM11).
  size_t last_summary_count() const { return last_summary_count_; }

  /// Lemma 4: embeds a pushdown word automaton over the tagged alphabet
  /// Σ̂ (all states linear; nesting ignored).
  static PushdownNwa FromPda(const Pda& pda, size_t sigma_size);

  /// Regular case: embeds a nondeterministic NWA (via its joinless form
  /// would match the paper; we embed the already-joinless shape produced
  /// by JoinlessNwa::FromNnwa through its Nnwa view at the caller's
  /// choice). Here: a *finite* joinless-shaped automaton given by the same
  /// transition vocabulary, with an always-poppable ⊥.
  /// (See pnwa_test.cc for usage.)

 private:
  struct PushEdge {
    StateId target;
    uint32_t gamma;
  };
  struct PopEdge {
    uint32_t gamma;
    StateId target;
  };

  friend class PnwaInterp;

  size_t num_symbols_;
  size_t num_stack_symbols_;
  std::vector<bool> hier_;
  std::vector<StateId> initial_;
  std::vector<std::vector<StateId>> internal_;      // [q*|Σ|+a]
  std::vector<std::vector<CallEdge>> call_;         // [q*|Σ|+a]
  std::vector<std::vector<StateId>> linear_ret_;    // [q*|Σ|+a]
  std::vector<std::vector<StateId>> hier_ret_;      // [h*|Σ|+a]
  std::vector<std::vector<PushEdge>> push_;
  std::vector<std::vector<PopEdge>> pop_;
  mutable size_t last_summary_count_ = 0;
};

}  // namespace nw

#endif  // NW_PNWA_PNWA_H_
