#include "pnwa/reduction.h"

#include <array>

#include "support/check.h"

namespace nw {

SatReduction ReduceSatToPnwaMembership(const Cnf& cnf) {
  const uint32_t v = cnf.num_vars;
  const size_t s = cnf.clauses.size();
  // Stack symbols: ⊥ = 0, TRUE = 1, FALSE = 2.
  PushdownNwa a(/*num_symbols=*/1, /*num_stack_symbols=*/3);

  // Guess phase: g[j] after j bits pushed (variable j−1 on top ... no:
  // variable 0 is pushed first, so the stack from bottom is var 0 .. v−1
  // and pops reveal variables in reverse order).
  std::vector<StateId> g(v + 1);
  for (uint32_t j = 0; j <= v; ++j) g[j] = a.AddState(/*hier=*/true);
  a.AddInitial(g[0]);
  for (uint32_t j = 0; j < v; ++j) {
    a.AddPush(g[j], g[j + 1], 1);  // var j := true
    a.AddPush(g[j], g[j + 1], 2);  // var j := false
  }

  // Block chain: blk[i] reads clause i's block; cont[i] carries the
  // continuation over the hierarchical edge.
  std::vector<StateId> blk(s + 1);
  blk[0] = g[v];
  for (size_t i = 1; i <= s; ++i) blk[i] = a.AddState(/*hier=*/true);
  StateId drain = a.AddState(/*hier=*/true);

  for (size_t i = 0; i < s; ++i) {
    // Inside: in[j][f] = j variables popped-and-read, f = clause satisfied.
    // Between input symbols, one ε-pop reveals variable v−1−j.
    std::vector<std::array<StateId, 2>> in(v + 1), mid(v);
    for (uint32_t j = 0; j <= v; ++j) {
      in[j] = {a.AddState(true), a.AddState(true)};
    }
    for (uint32_t j = 0; j < v; ++j) {
      mid[j] = {a.AddState(true), a.AddState(true)};
    }
    for (uint32_t j = 0; j < v; ++j) {
      uint32_t var = v - 1 - j;
      bool pos_sat = false, neg_sat = false;
      for (const Literal& lit : cnf.clauses[i]) {
        if (lit.var == var && lit.positive) pos_sat = true;
        if (lit.var == var && !lit.positive) neg_sat = true;
      }
      for (int f = 0; f < 2; ++f) {
        // Pop TRUE: satisfied if the clause has +var; pop FALSE: −var.
        a.AddPop(in[j][f], 1, mid[j][(f || pos_sat) ? 1 : 0]);
        a.AddPop(in[j][f], 2, mid[j][(f || neg_sat) ? 1 : 0]);
        a.AddInternal(mid[j][f], 0, in[j + 1][f]);
      }
    }
    // Satisfied insides drain their ⊥ copy: leaf condition met.
    StateId leaf_done = a.AddState(/*hier=*/true);
    a.AddPop(in[v][1], 0, leaf_done);
    // The block: call forks (inside, continuation); the return resumes the
    // chain from the hierarchical edge with the assignment stack intact.
    StateId cont = a.AddState(/*hier=*/true);
    a.AddCall(blk[i], 0, in[0][0], cont);
    a.AddHierReturn(cont, 0, blk[i + 1]);
  }
  // After the last block the main thread still carries the assignment and
  // ⊥: drain to the empty stack (acceptance).
  a.AddPop(blk[s], 1, drain);
  a.AddPop(blk[s], 2, drain);
  a.AddPop(blk[s], 0, drain);
  a.AddPop(drain, 1, drain);
  a.AddPop(drain, 2, drain);
  a.AddPop(drain, 0, drain);

  // The word (<a a^v a>)^s over the unary alphabet.
  NestedWord word;
  for (size_t i = 0; i < s; ++i) {
    word.Push(Call(0));
    for (uint32_t j = 0; j < v; ++j) word.Push(Internal(0));
    word.Push(Return(0));
  }
  return {std::move(a), std::move(word)};
}

}  // namespace nw
