// Theorem 10: membership for pushdown nested word automata is NP-complete,
// by reduction from CNF-SAT. Given φ with v variables and s clauses, the
// automaton guesses an assignment with v ε-pushes; the input word
// (<a a^v a>)^s copies the assignment stack into each clause block, whose
// inside pops the v bits, checks the clause, and drains to the empty stack
// (the leaf condition). φ is satisfiable iff the word is accepted.
#ifndef NW_PNWA_REDUCTION_H_
#define NW_PNWA_REDUCTION_H_

#include "pnwa/pnwa.h"
#include "sat/sat.h"

namespace nw {

/// The reduction artifact: automaton + input word.
struct SatReduction {
  PushdownNwa pnwa;
  NestedWord word;
};

/// Builds the Theorem 10 instance for φ. The unary alphabet {a} is used,
/// exactly as in the paper's hardness proof.
SatReduction ReduceSatToPnwaMembership(const Cnf& cnf);

}  // namespace nw

#endif  // NW_PNWA_REDUCTION_H_
