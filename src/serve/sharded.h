// Parallel sharded streaming evaluation (ROADMAP: parallel sharded
// streams). One immutable FrozenBank backs N worker threads; each worker
// owns a private QueryEngine (run state is per-stream), a private copy of
// the alphabet (interning mutates it), and a private mutex-guarded
// OverflowBank for snapshot misses. Documents are pulled off a shared
// atomic cursor, so shards load-balance dynamically, and every result is
// written to the document's own slot — the merged output is a pure
// function of the corpus, independent of thread count and scheduling
// (the differential tests in tests/serve_test.cc pin byte-identity
// against the single-stream AddBank path at N ∈ {1, 2, 8}).
#ifndef NW_SERVE_SHARDED_H_
#define NW_SERVE_SHARDED_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "nw/alphabet.h"
#include "obs/pulse.h"
#include "serve/frozen_bank.h"
#include "stream/token_stream.h"

namespace nw {

class QueryAttribution;
class StatsRegistry;
class Tracer;

/// One document's evaluation, in corpus order.
struct DocResult {
  /// Per-query acceptance of the whole document.
  std::vector<bool> accept;
  /// Per-query first-accept position (−1 = never), present only when
  /// match tracking was requested.
  std::vector<int64_t> first_match;
  /// Tagged positions the document streamed to.
  size_t positions = 0;
};

/// Aggregate counters of one EvaluateCorpus call, summed over shards.
struct ServeStats {
  size_t documents = 0;
  size_t positions = 0;
  /// Steps answered lock-free by the frozen snapshot.
  size_t frozen_hits = 0;
  /// Steps that took a shard's overflow mutex.
  size_t frozen_misses = 0;
  /// Worker threads the corpus was sharded across.
  size_t threads = 0;

  /// True once any step has been classified hit-or-miss. hit_rate() is
  /// only meaningful then; renderers print n/a (or JSON null) otherwise.
  bool has_traffic() const { return frozen_hits + frozen_misses > 0; }

  /// Fraction of steps served lock-free (1.0 on a fully-explored bank,
  /// and — by convention, so ratio tables stay finite — on zero traffic;
  /// gate on has_traffic() where the distinction matters).
  double hit_rate() const {
    size_t total = frozen_hits + frozen_misses;
    return total == 0 ? 1.0 : static_cast<double>(frozen_hits) / total;
  }
};

/// Worker-threaded corpus evaluation over one frozen bank. Each
/// EvaluateCorpus call spawns up to `threads` fresh workers and joins
/// them before returning (no persistent pool — worker state is rebuilt
/// per call).
///
/// Invariants: the FrozenBank is never written after construction, so
/// workers read it without synchronization; all mutable run state
/// (engine, overflow bank, alphabet copy) is shard-private. The
/// evaluator itself is NOT re-entrant — call EvaluateCorpus from one
/// thread at a time.
class ShardedEvaluator {
 public:
  /// `frozen` must outlive the evaluator. `num_symbols` and
  /// `other_symbol` configure each worker engine exactly like the
  /// single-stream CLI path (out-of-space stream symbols remap to the
  /// catch-all). `threads` >= 1. `format` selects the tokenizer front
  /// end each worker streams documents through (stream/token_stream.h) —
  /// the ONLY thing that varies by format; sharding, stepping, stats,
  /// and attribution are format-blind.
  ShardedEvaluator(const FrozenBank* frozen, size_t num_symbols,
                   Symbol other_symbol, size_t threads,
                   InputFormat format = InputFormat::kXml);

  /// Streams every document of `corpus` through the whole query bank,
  /// sharded across the worker threads, and returns per-document results
  /// in corpus order. `alphabet` is copied per worker (streaming interns
  /// new element names); the caller's instance is not touched. With
  /// `track_matches`, per-query first-accept positions are recorded
  /// (costs an accept-bitset diff per position).
  std::vector<DocResult> EvaluateCorpus(const std::vector<std::string>& corpus,
                                        const Alphabet& alphabet,
                                        bool track_matches);

  /// Epoch swap API (NWDaemon): re-points the evaluator at a new frozen
  /// snapshot between EvaluateCorpus calls. The evaluator keeps the
  /// handle alive, so the previous epoch's snapshot may be released by
  /// its publisher the moment the swap returns — workers are rebuilt per
  /// EvaluateCorpus call and never hold the old pointer across calls.
  /// `num_symbols` may grow across epochs (online admission interns new
  /// element names); the catch-all symbol id is fixed at construction
  /// and must stay in range. NOT safe concurrently with EvaluateCorpus
  /// (the evaluator is single-dispatcher by contract); per-shard stats
  /// sinks persist across swaps so per-epoch metrics fall out of NWPulse
  /// snapshot deltas. If attribution tables were attached, the new bank
  /// must keep the same query count (tables are sized to K and the
  /// registry holds them by pointer) — attach with `with_attribution =
  /// false` when serving a bank that admits or retires queries online.
  void Rebind(std::shared_ptr<const FrozenBank> frozen, size_t num_symbols);

  /// Selects the tokenizer front end for subsequent EvaluateCorpus calls
  /// (a daemon batch is one format; mixed traffic is dispatched as one
  /// call per format). Same non-concurrency contract as Rebind.
  void set_format(InputFormat format) { format_ = format; }

  /// Counters of the most recent EvaluateCorpus call.
  const ServeStats& stats() const { return stats_; }

  /// Attaches NWStats: the evaluator creates one private StatsSink per
  /// worker shard, registers each with `registry` as "shard/N", and from
  /// then on every EvaluateCorpus wires each worker's engine, tokenizer,
  /// and overflow bank to its shard's sink and additionally records the
  /// shard-loop metrics (documents and bytes pulled, busy vs. queue-wait
  /// time). Also creates one NWProf QueryAttribution table per shard and
  /// registers each with the registry, so per-query match/accept/
  /// escalation costs are attributed on the frozen path too (the
  /// registry's render merges the shard tables). Sinks and tables are
  /// cumulative across calls and owned by the evaluator, which must
  /// therefore outlive any registry render. Call once, before the first
  /// EvaluateCorpus. `with_attribution = false` skips the per-query
  /// tables — required when the evaluator will be Rebind()-ed across
  /// banks of different sizes (online admission changes K; the sinks
  /// are K-free and carry over, the tables are not).
  void AttachStats(StatsRegistry* registry, bool with_attribution = true);

  /// Live in-flight progress of the current EvaluateCorpus call (corpus
  /// cursor, documents/bytes completed), readable mid-run by an NWPulse
  /// sampler while the shards write. Re-armed at the start of each call;
  /// `active` drops to false when the call returns.
  const PulseProgress& progress() const { return progress_; }

  /// Attaches an opt-in span tracer (obs/trace.h): each document then
  /// writes one "doc" span (shard, corpus index, positions, bytes).
  /// nullptr (the default) disables tracing. `tracer` must outlive the
  /// evaluator's EvaluateCorpus calls.
  void set_tracer(Tracer* tracer) { tracer_ = tracer; }

 private:
  const FrozenBank* frozen_;
  /// Keeps a Rebind()-ed epoch's snapshot alive; null when the evaluator
  /// serves a caller-owned FrozenBank (the one-shot CLI path).
  std::shared_ptr<const FrozenBank> frozen_handle_;
  size_t num_symbols_;
  Symbol other_;
  size_t threads_;
  InputFormat format_;
  ServeStats stats_;
  /// One sink per shard (see AttachStats); empty when stats are off.
  std::vector<std::unique_ptr<StatsSink>> sinks_;
  /// One NWProf attribution table per shard, parallel to sinks_.
  std::vector<std::unique_ptr<QueryAttribution>> attrs_;
  /// Multi-writer progress cells (shards fetch_add per document) — the
  /// one place the serve loop deviates from the single-writer metric
  /// discipline, because a cursor is shared by construction.
  PulseProgress progress_;
  Tracer* tracer_ = nullptr;
};

/// Splits an XML document at top-level element boundaries: each returned
/// chunk is one complete top-level element (with any immediately
/// preceding top-level text/stray markup). Concatenating the chunks
/// yields the input. Intended for sharding one huge record-stream
/// document (e.g. a <feed> of entries with the envelope stripped) as if
/// each record were its own document — note the semantics change:
/// queries then match per record, not across records (an `a then b`
/// spanning two records no longer matches). Unclosed opens spill into
/// the trailing chunk; a document with no top-level structure comes back
/// as a single chunk.
std::vector<std::string> SplitTopLevel(const std::string& xml);

/// NWStats-reporting overload: additionally records the chunk count, the
/// largest chunk, and the chunk-size distribution into `*stats` — the
/// shard-skew early warning (one giant record caps parallel speedup).
/// `stats` must not be null; the plain overload is the disabled path.
std::vector<std::string> SplitTopLevel(const std::string& xml,
                                       StatsSink* stats);

/// Format-selecting overloads: identical cut rule (a return leaving the
/// stream at depth 0 ends a chunk) driven by the chosen front end's
/// tokenizer, so for JSON a top-level record array's elements become the
/// chunks (the anonymous envelope streams silently — see json/json.h)
/// and for traces each top-level frame does. Concatenating the chunks
/// yields the input for every format; re-tokenizing a chunk that sliced
/// a JSON envelope open can differ from the whole-document stream (the
/// record that lost its envelope gains a `#obj`/`#arr` wrapper) — the
/// same per-record semantics change the XML overload documents.
std::vector<std::string> SplitTopLevel(const std::string& text,
                                       InputFormat format);
std::vector<std::string> SplitTopLevel(const std::string& text,
                                       InputFormat format, StatsSink* stats);

}  // namespace nw

#endif  // NW_SERVE_SHARDED_H_
