// Frozen shared banks for parallel serving (ROADMAP: parallel sharded
// streams; the "eager/frozen bank" follow-on of the NWOpt bank).
//
// A SharedBank (opt/bank.h) is mutated while streaming — its product
// transitions memoize on first use — so it cannot back more than one
// concurrent stream. The serving layer splits that one object into two
// roles:
//
//  * FrozenBank — an immutable snapshot of everything a SharedBank has
//    explored (after training on a corpus or an exhaustive ExploreAll),
//    re-laid-out for concurrent readers: dense flat internal/call tables,
//    a sorted sparse return table probed by binary search, accept bitsets
//    and live counts per state. After Freeze() nothing is ever written,
//    so any number of threads may step it lock-free.
//  * OverflowBank — a per-shard, mutex-guarded escape hatch for steps the
//    snapshot never saw. A miss transplants the frozen state's component
//    tuple into a shard-local SharedBank, steps it there, and maps the
//    result BACK into frozen space whenever the resulting tuple is one
//    the snapshot knows — so a transient excursion (one unusual symbol)
//    costs a few locked steps, not a permanently degraded shard.
//    Correctness therefore never depends on training coverage.
//
// Id spaces: frozen ids are the SharedBank ids at snapshot time (dense,
// < num_states()). Overflow ids are shard-local SharedBank ids tagged
// with kOverflowBit so the two spaces cannot collide; kNoState keeps its
// usual meaning ("miss" from frozen lookups, "pending frame" in returns).
#ifndef NW_SERVE_FROZEN_BANK_H_
#define NW_SERVE_FROZEN_BANK_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "opt/bank.h"

namespace nw {

class QueryAttribution;  // obs/prof.h, held by pointer only

/// Immutable, cache-friendly snapshot of an explored SharedBank.
///
/// Invariant: every member is written once inside Freeze() and never
/// again — concurrent readers need no synchronization. Lookups return
/// kNoState for steps the snapshot does not cover (route those to an
/// OverflowBank); covered steps always return a valid frozen id.
class FrozenBank {
 public:
  /// Snapshots `bank` as explored so far. Train first: either stream a
  /// corpus through a QueryEngine::AddBank engine, or call
  /// bank.ExploreAll() for a coverage-complete snapshot. With a timeline
  /// (obs/prof.h) the call records one "freeze" phase: the snapshot's
  /// re-layout wall µs over the bank's state count.
  static FrozenBank Freeze(const SharedBank& bank,
                           CompileTimeline* timeline = nullptr);

  /// Epoch-handle spelling of Freeze for long-lived serving (NWDaemon):
  /// the returned shared_ptr is the RCU unit — a publisher swaps it while
  /// readers finish their stream over the old snapshot, and the old epoch
  /// is reclaimed when its last holder drops the handle. Same snapshot,
  /// same immutability contract, just heap-owned.
  static std::shared_ptr<const FrozenBank> FreezeShared(
      const SharedBank& bank, CompileTimeline* timeline = nullptr);

  size_t num_queries() const { return autos_.size(); }
  size_t num_symbols() const { return num_symbols_; }
  /// Product states in the snapshot (frozen ids are < this).
  size_t num_states() const { return num_states_; }
  /// Frozen id of the interned tuple of component initial states.
  StateId initial() const { return initial_; }
  /// Words per accept bitset (= ceil(num_queries / 64)).
  size_t accept_words() const { return words_; }

  // -- Lock-free lookups (kNoState = not in the snapshot). --

  /// δi on the frozen product.
  StateId Internal(StateId q, Symbol a) const {
    return internal_[q * num_symbols_ + a];
  }
  /// Linear half of δc; a covered call always has both halves.
  StateId CallLinear(StateId q, Symbol a) const {
    return call_lin_[q * num_symbols_ + a];
  }
  /// Hierarchical half of δc (the frame tuple to push).
  StateId CallHier(StateId q, Symbol a) const {
    return call_hier_[q * num_symbols_ + a];
  }
  /// δr; `hier` is a frozen frame id or kNoState for a pending return.
  StateId Return(StateId q, StateId hier, Symbol a) const;

  // -- Per-state facts, snapshot copies of the SharedBank's. --

  /// Accept bitset of state `q` (bit i = query i accepting).
  const uint64_t* accepts(StateId q) const {
    return accept_.data() + q * words_;
  }
  bool accepting(StateId q, size_t id) const {
    return (accepts(q)[id / 64] >> (id % 64)) & 1;
  }
  /// Still-live component runs in state `q`.
  size_t live(StateId q) const { return live_[q]; }
  /// Component query `id`'s state in tuple `q` (kNoState = dead run).
  StateId component(StateId q, size_t id) const {
    return tuples_[q * autos_.size() + id];
  }
  /// Pointer to the K component states of tuple `q`.
  const StateId* tuple(StateId q) const {
    return tuples_.data() + q * autos_.size();
  }

  /// Frozen id of the state with exactly this component tuple, or
  /// kNoState when the snapshot never interned it. This is the overflow
  /// path's way back into lock-free territory.
  StateId FindTuple(const StateId* tuple) const;

  /// The component automata (aliases into the optimizer's bank; they must
  /// outlive the FrozenBank and every OverflowBank built from it).
  const std::vector<const Nwa*>& autos() const { return autos_; }

 private:
  FrozenBank() = default;

  std::vector<const Nwa*> autos_;
  size_t num_symbols_ = 0;
  size_t num_states_ = 0;
  size_t words_ = 0;
  StateId initial_ = kNoState;
  std::vector<StateId> internal_;   ///< dense [q*|Σ|+a]
  std::vector<StateId> call_lin_;   ///< dense [q*|Σ|+a]
  std::vector<StateId> call_hier_;  ///< dense [q*|Σ|+a]
  std::vector<uint64_t> return_keys_;  ///< sorted packed (q, hier, a)
  std::vector<StateId> return_targets_;  ///< parallel to return_keys_
  std::vector<StateId> tuples_;          ///< K per state, state-major
  std::vector<uint64_t> accept_;
  std::vector<uint32_t> live_;
  std::unordered_map<uint64_t, std::vector<StateId>> buckets_;
};

/// Mutable escape hatch for steps a FrozenBank snapshot does not cover.
///
/// Locking discipline: every public method takes the single internal
/// mutex for its whole duration; no method calls another public method,
/// so the lock is never taken twice. The bank is therefore safe to share
/// between threads, but the intended deployment is ONE OverflowBank per
/// shard (see ShardedEvaluator) so the mutex is uncontended and the
/// frozen fast path never waits on a neighbor shard's miss.
///
/// Ids accepted and returned are mixed-space: frozen ids pass through
/// untagged, shard-local overflow states carry kOverflowBit. Stepping out
/// of a frozen state transplants its component tuple into the local
/// SharedBank; every produced state is mapped back to its frozen twin
/// when one exists.
class OverflowBank {
 public:
  /// Tag bit distinguishing overflow-space ids from frozen ids. Safe:
  /// SharedBank ids stay below 2^24 by construction.
  static constexpr StateId kOverflowBit = 1u << 30;
  /// True for ids living in this bank's local space. `q` must not be
  /// kNoState (which would trivially carry the bit).
  static bool IsOverflowId(StateId q) { return (q & kOverflowBit) != 0; }

  /// `frozen` must outlive the bank.
  explicit OverflowBank(const FrozenBank* frozen);

  /// Attaches an NWStats sink (obs/stats.h): every step then counts into
  /// overflow_steps, and its outcome into overflow_mapbacks (the result
  /// mapped back into frozen space — a transient excursion ended) or
  /// overflow_escalations (the result stayed overflow-tagged). All
  /// increments happen under the bank's own mutex, which also makes the
  /// sink single-writer as long as it is the shard's private one — the
  /// intended deployment. Off (nullptr) by default.
  void set_stats(StatsSink* sink);

  /// Attaches an NWProf attribution table (obs/prof.h): every escalation
  /// (a step whose result stays in overflow space) then increments the
  /// escalations counter of each query whose run is still live in the
  /// escalated state — those queries are what keeps the shard off the
  /// lock-free path. Same single-writer/one-per-shard deployment as the
  /// sink; increments happen under the bank's mutex. Off by default.
  void set_attribution(QueryAttribution* attr);

  // -- Steps, mirroring the engine-facing SharedBank API. `q` (and `hier`)
  // may be frozen or overflow ids; results are frozen ids whenever the
  // target tuple exists in the snapshot. --

  StateId StepInternal(StateId q, Symbol a);
  StateId StepCall(StateId q, Symbol a, StateId* hier_out);
  /// `hier` is a mixed-space frame id or kNoState for a pending return.
  StateId StepReturn(StateId q, StateId hier, Symbol a);

  // -- Per-state facts for OVERFLOW-space ids (frozen ids answer these
  // lock-free from the FrozenBank itself). --

  /// Copies state `q`'s accept bitset into `out[0..accept_words)`.
  void CopyAccepts(StateId q, uint64_t* out);
  bool accepting(StateId q, size_t id);
  size_t live(StateId q);
  StateId component(StateId q, size_t id);

  /// The snapshot this bank overflows for.
  const FrozenBank* frozen() const { return frozen_; }
  /// Steps serviced by this bank (= the shard's frozen misses).
  size_t steps() const { return steps_; }
  /// Local product states materialized by misses so far.
  size_t num_states();

 private:
  /// Resolves a mixed-space id to a local SharedBank id, transplanting a
  /// frozen tuple on first sight. Caller holds mu_.
  StateId ToLocal(StateId q);
  /// Maps a local step result back to its frozen twin when the snapshot
  /// has one, else tags it. Caller holds mu_.
  StateId FromLocal(StateId local);
  /// NWStats tally for one step whose linear result is `result`. Caller
  /// holds mu_; no-op without a sink.
  void CountStep(StateId result);

  const FrozenBank* frozen_;
  std::mutex mu_;
  SharedBank local_;
  size_t steps_ = 0;
  /// NWStats sink, or nullptr when observability is off (see set_stats).
  StatsSink* stats_ = nullptr;
  /// NWProf attribution table, or nullptr (see set_attribution).
  QueryAttribution* attr_ = nullptr;
  std::unordered_map<StateId, StateId> frozen_to_local_;
  /// Lazy local→frozen cache; kNoState entries mean "not probed yet",
  /// probed twins are either a frozen id or kOverflowBit|local.
  std::vector<StateId> local_twin_;
};

}  // namespace nw

#endif  // NW_SERVE_FROZEN_BANK_H_
