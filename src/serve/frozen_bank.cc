#include "serve/frozen_bank.h"

#include <algorithm>
#include <numeric>

#include "obs/prof.h"
#include "obs/stats.h"
#include "support/check.h"
#include "support/stopwatch.h"

namespace nw {

FrozenBank FrozenBank::Freeze(const SharedBank& bank,
                              CompileTimeline* timeline) {
  Stopwatch sw;
  FrozenBank f;
  f.autos_ = bank.autos();
  f.num_symbols_ = bank.num_symbols();
  f.num_states_ = bank.num_states();
  f.words_ = bank.accept_words();
  f.initial_ = bank.initial();
  const size_t k = f.autos_.size();
  const size_t sigma = f.num_symbols_;
  f.internal_.resize(f.num_states_ * sigma);
  f.call_lin_.resize(f.num_states_ * sigma);
  f.call_hier_.resize(f.num_states_ * sigma);
  f.tuples_.resize(f.num_states_ * k);
  f.accept_.resize(f.num_states_ * f.words_);
  f.live_.resize(f.num_states_);
  for (StateId q = 0; q < f.num_states_; ++q) {
    for (Symbol a = 0; a < sigma; ++a) {
      f.internal_[q * sigma + a] = bank.PeekInternal(q, a);
      f.call_lin_[q * sigma + a] = bank.PeekCallLinear(q, a);
      f.call_hier_[q * sigma + a] = bank.PeekCallHier(q, a);
    }
    std::copy(bank.tuple(q), bank.tuple(q) + k, f.tuples_.begin() + q * k);
    std::copy(bank.accepts(q), bank.accepts(q) + f.words_,
              f.accept_.begin() + q * f.words_);
    f.live_[q] = static_cast<uint32_t>(bank.live(q));
    f.buckets_[SharedBank::TupleHash(f.tuple(q), k)].push_back(q);
  }
  // Sparse return table: pack, then sort keys and targets together so
  // lookups are one binary search over a contiguous key array.
  std::vector<SharedBank::MemoReturn> rules = bank.MemoizedReturns();
  std::vector<size_t> order(rules.size());
  std::iota(order.begin(), order.end(), size_t{0});
  std::vector<uint64_t> keys(rules.size());
  for (size_t i = 0; i < rules.size(); ++i) {
    keys[i] = SharedBank::PackReturnKey(rules[i].from, rules[i].hier,
                                       rules[i].symbol);
  }
  std::sort(order.begin(), order.end(),
            [&](size_t a, size_t b) { return keys[a] < keys[b]; });
  f.return_keys_.reserve(rules.size());
  f.return_targets_.reserve(rules.size());
  for (size_t i : order) {
    f.return_keys_.push_back(keys[i]);
    f.return_targets_.push_back(rules[i].target);
  }
  if (timeline != nullptr) {
    // Freezing re-lays-out, never explores: the state count is flat.
    timeline->Record("freeze", static_cast<uint64_t>(sw.ElapsedUs()),
                     f.num_states_, f.num_states_);
  }
  return f;
}

std::shared_ptr<const FrozenBank> FrozenBank::FreezeShared(
    const SharedBank& bank, CompileTimeline* timeline) {
  return std::make_shared<const FrozenBank>(Freeze(bank, timeline));
}

StateId FrozenBank::Return(StateId q, StateId hier, Symbol a) const {
  uint64_t key = SharedBank::PackReturnKey(q, hier, a);
  auto it = std::lower_bound(return_keys_.begin(), return_keys_.end(), key);
  if (it == return_keys_.end() || *it != key) return kNoState;
  return return_targets_[it - return_keys_.begin()];
}

StateId FrozenBank::FindTuple(const StateId* tuple) const {
  const size_t k = autos_.size();
  auto it = buckets_.find(SharedBank::TupleHash(tuple, k));
  if (it == buckets_.end()) return kNoState;
  for (StateId q : it->second) {
    if (std::equal(tuple, tuple + k, tuples_.begin() + q * k)) return q;
  }
  return kNoState;
}

OverflowBank::OverflowBank(const FrozenBank* frozen)
    : frozen_(frozen), local_(frozen->autos()) {}

void OverflowBank::set_stats(StatsSink* sink) {
  std::lock_guard<std::mutex> lock(mu_);
  stats_ = sink;
}

void OverflowBank::set_attribution(QueryAttribution* attr) {
  std::lock_guard<std::mutex> lock(mu_);
  NW_CHECK_MSG(attr == nullptr ||
                   attr->num_queries() == frozen_->num_queries(),
               "attribution table sized for %zu queries attached to a "
               "%zu-query overflow bank",
               attr->num_queries(), frozen_->num_queries());
  attr_ = attr;
}

void OverflowBank::CountStep(StateId result) {
  if (stats_ != nullptr) {
    stats_->overflow_steps.Inc();
    if (IsOverflowId(result)) {
      stats_->overflow_escalations.Inc();
    } else {
      stats_->overflow_mapbacks.Inc();
    }
  }
  if (attr_ != nullptr && IsOverflowId(result)) {
    // NWProf: charge the escalation to every query whose run is still
    // live in the escalated state — a dead component cannot be the
    // reason the tuple is missing from the snapshot.
    const StateId* tuple = local_.tuple(result & ~kOverflowBit);
    const size_t k = frozen_->num_queries();
    for (size_t i = 0; i < k; ++i) {
      if (tuple[i] != kNoState) attr_->query(i).escalations.Inc();
    }
  }
}

StateId OverflowBank::ToLocal(StateId q) {
  if (IsOverflowId(q)) return q & ~kOverflowBit;
  auto it = frozen_to_local_.find(q);
  if (it != frozen_to_local_.end()) return it->second;
  std::vector<StateId> tuple(frozen_->tuple(q),
                             frozen_->tuple(q) + frozen_->num_queries());
  StateId local = local_.InternTuple(tuple);
  frozen_to_local_.emplace(q, local);
  return local;
}

StateId OverflowBank::FromLocal(StateId local) {
  if (local_twin_.size() < local_.num_states()) {
    local_twin_.resize(local_.num_states(), kNoState);
  }
  if (local_twin_[local] != kNoState) return local_twin_[local];
  StateId twin = frozen_->FindTuple(local_.tuple(local));
  if (twin == kNoState) twin = kOverflowBit | local;
  local_twin_[local] = twin;
  return twin;
}

StateId OverflowBank::StepInternal(StateId q, Symbol a) {
  std::lock_guard<std::mutex> lock(mu_);
  ++steps_;
  StateId out = FromLocal(local_.StepInternal(ToLocal(q), a));
  CountStep(out);
  return out;
}

StateId OverflowBank::StepCall(StateId q, Symbol a, StateId* hier_out) {
  std::lock_guard<std::mutex> lock(mu_);
  ++steps_;
  StateId h;
  StateId lin = local_.StepCall(ToLocal(q), a, &h);
  *hier_out = FromLocal(h);
  StateId out = FromLocal(lin);
  CountStep(out);
  return out;
}

StateId OverflowBank::StepReturn(StateId q, StateId hier, Symbol a) {
  std::lock_guard<std::mutex> lock(mu_);
  ++steps_;
  StateId h = hier == kNoState ? kNoState : ToLocal(hier);
  StateId out = FromLocal(local_.StepReturn(ToLocal(q), h, a));
  CountStep(out);
  return out;
}

void OverflowBank::CopyAccepts(StateId q, uint64_t* out) {
  std::lock_guard<std::mutex> lock(mu_);
  NW_DCHECK(IsOverflowId(q));
  const uint64_t* acc = local_.accepts(q & ~kOverflowBit);
  std::copy(acc, acc + local_.accept_words(), out);
}

bool OverflowBank::accepting(StateId q, size_t id) {
  std::lock_guard<std::mutex> lock(mu_);
  NW_DCHECK(IsOverflowId(q));
  return local_.accepting(q & ~kOverflowBit, id);
}

size_t OverflowBank::live(StateId q) {
  std::lock_guard<std::mutex> lock(mu_);
  NW_DCHECK(IsOverflowId(q));
  return local_.live(q & ~kOverflowBit);
}

StateId OverflowBank::component(StateId q, size_t id) {
  std::lock_guard<std::mutex> lock(mu_);
  NW_DCHECK(IsOverflowId(q));
  return local_.component(q & ~kOverflowBit, id);
}

size_t OverflowBank::num_states() {
  std::lock_guard<std::mutex> lock(mu_);
  return local_.num_states();
}

}  // namespace nw
