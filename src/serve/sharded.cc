#include "serve/sharded.h"

#include <atomic>
#include <thread>

#include "query/engine.h"
#include "support/check.h"
#include "xml/xml.h"

namespace nw {

ShardedEvaluator::ShardedEvaluator(const FrozenBank* frozen,
                                   size_t num_symbols, Symbol other_symbol,
                                   size_t threads)
    : frozen_(frozen),
      num_symbols_(num_symbols),
      other_(other_symbol),
      threads_(threads) {
  NW_CHECK_MSG(threads >= 1, "sharded evaluation needs at least one thread");
  NW_CHECK_MSG(frozen->num_symbols() == num_symbols,
               "frozen bank symbol space mismatch");
}

std::vector<DocResult> ShardedEvaluator::EvaluateCorpus(
    const std::vector<std::string>& corpus, const Alphabet& alphabet,
    bool track_matches) {
  std::vector<DocResult> results(corpus.size());
  std::atomic<size_t> cursor{0};
  std::atomic<size_t> hits{0}, misses{0}, total_positions{0};
  // Each worker owns every piece of mutable state it touches: the engine
  // (run state), the overflow bank (snapshot-miss escape hatch), and an
  // alphabet copy (streaming interns names first seen in documents — the
  // copies may diverge, but every post-freeze symbol remaps to the
  // catch-all before stepping, so results cannot depend on the ids).
  // Only the FrozenBank is shared, and it is read-only by construction.
  auto worker = [&]() {
    Alphabet local_alphabet = alphabet;
    OverflowBank overflow(frozen_);
    QueryEngine engine(num_symbols_);
    if (other_ != Alphabet::kNoSymbol) engine.set_other_symbol(other_);
    engine.set_track_matches(track_matches);
    engine.AddFrozen(frozen_, &overflow);
    for (;;) {
      size_t i = cursor.fetch_add(1, std::memory_order_relaxed);
      if (i >= corpus.size()) break;
      size_t before = engine.positions();
      DocResult& r = results[i];
      r.accept = engine.RunAll(corpus[i], &local_alphabet);
      r.positions = engine.positions() - before;
      if (track_matches) {
        r.first_match.resize(engine.num_queries());
        for (size_t q = 0; q < r.first_match.size(); ++q) {
          r.first_match[q] = engine.first_match(q);
        }
      }
    }
    hits.fetch_add(engine.frozen_hits(), std::memory_order_relaxed);
    misses.fetch_add(engine.frozen_misses(), std::memory_order_relaxed);
    total_positions.fetch_add(engine.positions(),
                              std::memory_order_relaxed);
  };
  // No point spawning more workers than documents; one worker still runs
  // for an empty corpus so stats come back well-defined.
  size_t n = threads_;
  if (corpus.size() < n) n = corpus.size() > 0 ? corpus.size() : 1;
  std::vector<std::thread> pool;
  pool.reserve(n);
  for (size_t w = 0; w < n; ++w) pool.emplace_back(worker);
  for (std::thread& t : pool) t.join();
  stats_ = ServeStats{};
  stats_.documents = corpus.size();
  stats_.positions = total_positions.load();
  stats_.frozen_hits = hits.load();
  stats_.frozen_misses = misses.load();
  stats_.threads = n;
  return results;
}

std::vector<std::string> SplitTopLevel(const std::string& xml) {
  // Driven by the real tokenizer (XmlTokenStream::pos() exposes token
  // byte boundaries), so a chunk boundary can never fall inside a
  // construct the tokenizer treats as one token and the two can never
  // drift. Depth is tracked from the token kinds exactly as an engine
  // would: calls push, returns pop (clamped — a stray close at top level
  // becomes its own chunk). A boundary is cut whenever a return leaves
  // the stream at depth 0; top-level text attaches to the FOLLOWING
  // element's chunk.
  std::vector<std::string> out;
  Alphabet scratch;
  XmlTokenStream stream(xml, &scratch);
  TaggedSymbol t;
  size_t chunk_start = 0;
  size_t depth = 0;
  while (stream.Next(&t)) {
    switch (t.kind) {
      case Kind::kCall:
        ++depth;
        break;
      case Kind::kReturn:
        if (depth > 0) --depth;
        if (depth == 0) {
          out.push_back(xml.substr(chunk_start, stream.pos() - chunk_start));
          chunk_start = stream.pos();
        }
        break;
      case Kind::kInternal:
        break;
    }
  }
  // Trailing top-level text and unclosed opens spill into a final chunk.
  if (chunk_start < xml.size()) out.push_back(xml.substr(chunk_start));
  if (out.empty()) out.push_back(xml);
  return out;
}

}  // namespace nw
