#include "serve/sharded.h"

#include <atomic>
#include <thread>

#include "json/json.h"
#include "obs/prof.h"
#include "obs/stats.h"
#include "obs/trace.h"
#include "query/engine.h"
#include "support/check.h"
#include "support/stopwatch.h"
#include "trace/trace.h"
#include "xml/xml.h"

namespace nw {

ShardedEvaluator::ShardedEvaluator(const FrozenBank* frozen,
                                   size_t num_symbols, Symbol other_symbol,
                                   size_t threads, InputFormat format)
    : frozen_(frozen),
      num_symbols_(num_symbols),
      other_(other_symbol),
      threads_(threads),
      format_(format) {
  NW_CHECK_MSG(threads >= 1, "sharded evaluation needs at least one thread");
  NW_CHECK_MSG(frozen->num_symbols() == num_symbols,
               "frozen bank symbol space mismatch");
}

void ShardedEvaluator::Rebind(std::shared_ptr<const FrozenBank> frozen,
                              size_t num_symbols) {
  NW_CHECK_MSG(frozen != nullptr, "Rebind() needs a live epoch snapshot");
  NW_CHECK_MSG(frozen->num_symbols() == num_symbols,
               "frozen bank symbol space mismatch");
  NW_CHECK_MSG(other_ == Alphabet::kNoSymbol || other_ < num_symbols,
               "catch-all symbol %u out of range for a %zu-symbol epoch",
               other_, num_symbols);
  NW_CHECK_MSG(attrs_.empty() ||
                   attrs_[0]->num_queries() == frozen->num_queries(),
               "attribution tables sized for %zu queries cannot follow a "
               "rebind to a %zu-query bank; attach with with_attribution = "
               "false for online admission",
               attrs_[0]->num_queries(), frozen->num_queries());
  frozen_handle_ = std::move(frozen);
  frozen_ = frozen_handle_.get();
  num_symbols_ = num_symbols;
}

void ShardedEvaluator::AttachStats(StatsRegistry* registry,
                                   bool with_attribution) {
  NW_CHECK_MSG(sinks_.empty(), "AttachStats() may be called once");
  sinks_.reserve(threads_);
  if (with_attribution) attrs_.reserve(threads_);
  for (size_t w = 0; w < threads_; ++w) {
    sinks_.push_back(std::make_unique<StatsSink>());
    registry->Register("shard/" + std::to_string(w), sinks_[w].get());
    if (!with_attribution) continue;
    attrs_.push_back(
        std::make_unique<QueryAttribution>(frozen_->num_queries()));
    registry->RegisterAttribution(attrs_[w].get());
  }
}

std::vector<DocResult> ShardedEvaluator::EvaluateCorpus(
    const std::vector<std::string>& corpus, const Alphabet& alphabet,
    bool track_matches) {
  std::vector<DocResult> results(corpus.size());
  // The shared cursor doubles as the NWPulse progress hook: a sampler
  // thread reads it (and docs/bytes done) mid-run via progress().
  progress_.Reset(corpus.size());
  std::atomic<uint64_t>& cursor = progress_.cursor;
  std::atomic<size_t> hits{0}, misses{0}, total_positions{0};
  // Each worker owns every piece of mutable state it touches: the engine
  // (run state), the overflow bank (snapshot-miss escape hatch), the
  // alphabet copy (streaming interns names first seen in documents — the
  // copies may diverge, but every post-freeze symbol remaps to the
  // catch-all before stepping, so results cannot depend on the ids), and
  // its NWStats shard sink (single-writer by construction: shard indexes
  // are unique, so each sink has exactly one writing thread while the
  // registry's readers merge relaxed-atomic snapshots). Only the
  // FrozenBank is shared, and it is read-only by construction.
  auto worker = [&](size_t shard) {
    StatsSink* sink = sinks_.empty() ? nullptr : sinks_[shard].get();
    Stopwatch wall;
    uint64_t busy_us = 0;
    // Sinks are cumulative across EvaluateCorpus calls; ServeStats is
    // per-call, so the frozen hit/miss contribution is a delta.
    const size_t hits0 = sink == nullptr ? 0 : sink->frozen_hits.value();
    const size_t miss0 = sink == nullptr ? 0 : sink->frozen_misses.value();
    Alphabet local_alphabet = alphabet;
    OverflowBank overflow(frozen_);
    QueryEngine engine(num_symbols_);
    if (other_ != Alphabet::kNoSymbol) engine.set_other_symbol(other_);
    engine.set_track_matches(track_matches);
    engine.AddFrozen(frozen_, &overflow);
    if (sink != nullptr) {
      engine.set_stats(sink);
      overflow.set_stats(sink);
    }
    if (!attrs_.empty()) {
      // Shard w writes only table w, so each attribution table keeps the
      // sinks' single-writer discipline; renders merge across shards.
      engine.set_attribution(attrs_[shard].get());
      overflow.set_attribution(attrs_[shard].get());
    }
    for (;;) {
      size_t i = cursor.fetch_add(1, std::memory_order_relaxed);
      if (i >= corpus.size()) break;
      Stopwatch doc_sw;
      TraceSpan span(tracer_, "doc", "corpus/" + std::to_string(i));
      size_t before = engine.positions();
      DocResult& r = results[i];
      r.accept = engine.RunAll(corpus[i], &local_alphabet, format_);
      r.positions = engine.positions() - before;
      if (track_matches) {
        r.first_match.resize(engine.num_queries());
        for (size_t q = 0; q < r.first_match.size(); ++q) {
          r.first_match[q] = engine.first_match(q);
        }
      }
      uint64_t doc_us = static_cast<uint64_t>(doc_sw.ElapsedUs());
      busy_us += doc_us;
      if (sink != nullptr) {
        sink->shard_docs.Inc();
        sink->shard_bytes.Add(corpus[i].size());
        sink->shard_positions.Add(r.positions);
        // Published per document (not at join) so a sampler's interval
        // busy delta is live utilization, not an end-of-run step.
        sink->shard_busy_us.Add(doc_us);
      }
      progress_.docs_done.fetch_add(1, std::memory_order_relaxed);
      progress_.bytes_done.fetch_add(corpus[i].size(),
                                     std::memory_order_relaxed);
      span.Note("shard", shard);
      span.Note("positions", r.positions);
      span.Note("bytes", corpus[i].size());
      if (tracer_ != nullptr && sink != nullptr) {
        tracer_->WriteCounters(shard, *sink);
      }
    }
    hits.fetch_add(engine.frozen_hits() - hits0, std::memory_order_relaxed);
    misses.fetch_add(engine.frozen_misses() - miss0,
                     std::memory_order_relaxed);
    total_positions.fetch_add(engine.positions(),
                              std::memory_order_relaxed);
    if (sink != nullptr) {
      // busy_us went in per document above; only the wait residue lands
      // at join time.
      uint64_t wall_us = static_cast<uint64_t>(wall.ElapsedUs());
      sink->shard_wait_us.Add(wall_us > busy_us ? wall_us - busy_us : 0);
    }
  };
  // No point spawning more workers than documents; one worker still runs
  // for an empty corpus so stats come back well-defined.
  size_t n = threads_;
  if (corpus.size() < n) n = corpus.size() > 0 ? corpus.size() : 1;
  std::vector<std::thread> pool;
  pool.reserve(n);
  for (size_t w = 0; w < n; ++w) pool.emplace_back(worker, w);
  for (std::thread& t : pool) t.join();
  progress_.active.store(false, std::memory_order_relaxed);
  stats_ = ServeStats{};
  stats_.documents = corpus.size();
  stats_.positions = total_positions.load();
  stats_.frozen_hits = hits.load();
  stats_.frozen_misses = misses.load();
  stats_.threads = n;
  return results;
}

namespace {

// Driven by the real tokenizer (the TokenStream's pos() exposes token
// byte boundaries), so a chunk boundary can never fall inside a
// construct the tokenizer treats as one token and the two can never
// drift. Depth is tracked from the token kinds exactly as an engine
// would: calls push, returns pop (clamped — a stray close at top level
// becomes its own chunk). A boundary is cut whenever a return leaves
// the stream at depth 0; top-level text attaches to the FOLLOWING
// element's chunk.
template <typename Stream>
std::vector<std::string> SplitWithStream(const std::string& text) {
  std::vector<std::string> out;
  Alphabet scratch;
  Stream stream(text, &scratch);
  TaggedSymbol t;
  size_t chunk_start = 0;
  size_t depth = 0;
  while (stream.Next(&t)) {
    switch (t.kind) {
      case Kind::kCall:
        ++depth;
        break;
      case Kind::kReturn:
        if (depth > 0) --depth;
        if (depth == 0) {
          out.push_back(text.substr(chunk_start, stream.pos() - chunk_start));
          chunk_start = stream.pos();
        }
        break;
      case Kind::kInternal:
        break;
    }
  }
  // Trailing top-level text and unclosed opens spill into a final chunk.
  if (chunk_start < text.size()) out.push_back(text.substr(chunk_start));
  if (out.empty()) out.push_back(text);
  return out;
}

}  // namespace

std::vector<std::string> SplitTopLevel(const std::string& xml) {
  return SplitWithStream<XmlTokenStream>(xml);
}

std::vector<std::string> SplitTopLevel(const std::string& text,
                                       InputFormat format) {
  switch (format) {
    case InputFormat::kXml:
      return SplitWithStream<XmlTokenStream>(text);
    case InputFormat::kJson:
      return SplitWithStream<JsonTokenStream>(text);
    case InputFormat::kTrace:
      return SplitWithStream<TraceTokenStream>(text);
  }
  NW_CHECK_MSG(false, "unreachable: unknown input format");
  return {};
}

std::vector<std::string> SplitTopLevel(const std::string& xml,
                                       StatsSink* stats) {
  return SplitTopLevel(xml, InputFormat::kXml, stats);
}

std::vector<std::string> SplitTopLevel(const std::string& text,
                                       InputFormat format, StatsSink* stats) {
  NW_CHECK_MSG(stats != nullptr,
               "the reporting SplitTopLevel overload needs a sink; call "
               "the plain overload when stats are off");
  std::vector<std::string> out = SplitTopLevel(text, format);
  stats->split_chunks.Add(out.size());
  for (const std::string& chunk : out) {
    stats->split_max_chunk_bytes.SetMax(chunk.size());
    stats->split_chunk_bytes.Record(chunk.size());
  }
  return out;
}

}  // namespace nw
