// Stepwise bottom-up tree automata (Brüggemann-Klein–Murata–Wood [5],
// Martens–Niehren [15]; paper §3.4, Lemma 1) and classical top-down tree
// automata over binary trees (paper §3.5, Lemma 2).
//
// A stepwise automaton is exactly a weak bottom-up NWA on tree words whose
// return function ignores the symbol (the symbol was already consumed at
// the call). Lemma 1: the NWA view has the *same* number of states.
#ifndef NW_TREEAUTO_STEPWISE_H_
#define NW_TREEAUTO_STEPWISE_H_

#include "nwa/nwa.h"
#include "trees/ordered_tree.h"

namespace nw {

/// Deterministic stepwise bottom-up tree automaton over unranked trees.
class StepwiseTreeAutomaton {
 public:
  explicit StepwiseTreeAutomaton(size_t num_symbols)
      : num_symbols_(num_symbols) {}

  StateId AddState(bool is_final = false);
  void set_final(StateId q, bool f = true) { final_[q] = f; }

  /// State entered when an a-labeled node is opened (before children).
  void SetSymbolState(Symbol a, StateId q) { symbol_state_[a] = q; }
  /// Combines a node state `q` with a completed-child state `child`.
  void SetCombine(StateId q, StateId child, StateId q2);

  size_t num_states() const { return final_.size(); }
  size_t num_symbols() const { return num_symbols_; }

  /// Direct bottom-up evaluation on a tree. The root's resulting state
  /// must be final.
  bool AcceptsTree(const OrderedTree& t) const;

  /// Lemma 1: the same automaton as a weak bottom-up NWA with the same
  /// state count, accepting exactly the tree-word encodings.
  Nwa ToBottomUpNwa() const;

 private:
  StateId Eval(const TreeNode& n) const;

  size_t num_symbols_;
  std::vector<bool> final_;
  std::vector<StateId> symbol_state_;             // [a]
  std::vector<std::vector<StateId>> combine_;     // [q][child]
};

/// Classical deterministic top-down tree automaton over binary trees with
/// leaf acceptance (paper §3.5, Lemma 2 and Lemma 3).
class TopDownTreeAutomaton {
 public:
  explicit TopDownTreeAutomaton(size_t num_symbols)
      : num_symbols_(num_symbols) {}

  StateId AddState();
  void set_initial(StateId q) { initial_ = q; }

  /// δ(q, a) = (left, right) for a binary a-labeled node.
  void SetBranch(StateId q, Symbol a, StateId left, StateId right);
  /// Accepting leaf pairs (q, a).
  void SetLeafAccept(StateId q, Symbol a, bool accept = true);

  size_t num_states() const { return num_states_; }

  /// Top-down evaluation on a binary tree.
  bool AcceptsTree(const OrderedTree& t) const;

 private:
  bool Eval(const TreeNode& n, StateId q) const;

  size_t num_symbols_;
  size_t num_states_ = 0;
  StateId initial_ = kNoState;
  std::vector<std::pair<StateId, StateId>> branch_;  // [q*|Σ|+a]
  std::vector<bool> leaf_accept_;                    // [q*|Σ|+a]
};

}  // namespace nw

#endif  // NW_TREEAUTO_STEPWISE_H_
