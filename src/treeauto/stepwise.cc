#include "treeauto/stepwise.h"

#include "support/check.h"

namespace nw {

StateId StepwiseTreeAutomaton::AddState(bool is_final) {
  StateId id = static_cast<StateId>(final_.size());
  final_.push_back(is_final);
  if (symbol_state_.empty()) symbol_state_.assign(num_symbols_, kNoState);
  for (auto& row : combine_) row.push_back(kNoState);
  combine_.emplace_back(final_.size(), kNoState);
  return id;
}

void StepwiseTreeAutomaton::SetCombine(StateId q, StateId child, StateId q2) {
  NW_DCHECK(q < num_states() && child < num_states() && q2 < num_states());
  combine_[q][child] = q2;
}

StateId StepwiseTreeAutomaton::Eval(const TreeNode& n) const {
  StateId q = symbol_state_[n.label];
  for (const TreeNode& c : n.children) {
    if (q == kNoState) return kNoState;
    StateId child = Eval(c);
    if (child == kNoState) return kNoState;
    q = combine_[q][child];
  }
  return q;
}

bool StepwiseTreeAutomaton::AcceptsTree(const OrderedTree& t) const {
  if (t.IsEmpty()) return false;
  StateId q = Eval(t.root());
  return q != kNoState && final_[q];
}

Nwa StepwiseTreeAutomaton::ToBottomUpNwa() const {
  // Lemma 1: same states. A call enters the symbol's state pushing the
  // current state (weak); a return combines the popped state with the
  // completed subtree's state — the NWA's return may depend on the symbol,
  // but the stepwise restriction simply ignores it.
  Nwa out(num_symbols_);
  for (StateId q = 0; q < num_states(); ++q) out.AddState(final_[q]);
  // A dedicated initial is needed for the first call at top level; reuse
  // state 0 as initial if present (tree words never consult δi/δr at it
  // before a call). To keep the state count equal (Lemma 1), state 0
  // doubles as the start.
  NW_CHECK(num_states() > 0);
  out.set_initial(0);
  for (StateId q = 0; q < num_states(); ++q) {
    for (Symbol a = 0; a < num_symbols_; ++a) {
      if (symbol_state_[a] != kNoState) {
        out.SetCall(q, a, symbol_state_[a], q);  // bottom-up: target is
                                                 // source-independent; weak
      }
    }
    for (StateId h = 0; h < num_states(); ++h) {
      StateId t = combine_[h][q];
      if (t == kNoState) continue;
      for (Symbol a = 0; a < num_symbols_; ++a) {
        out.SetReturn(q, h, a, t);  // symbol ignored (stepwise)
      }
    }
  }
  return out;
}

StateId TopDownTreeAutomaton::AddState() {
  StateId id = static_cast<StateId>(num_states_++);
  branch_.resize(num_states_ * num_symbols_, {kNoState, kNoState});
  leaf_accept_.resize(num_states_ * num_symbols_, false);
  return id;
}

void TopDownTreeAutomaton::SetBranch(StateId q, Symbol a, StateId left,
                                     StateId right) {
  branch_[q * num_symbols_ + a] = {left, right};
}

void TopDownTreeAutomaton::SetLeafAccept(StateId q, Symbol a, bool accept) {
  leaf_accept_[q * num_symbols_ + a] = accept;
}

bool TopDownTreeAutomaton::Eval(const TreeNode& n, StateId q) const {
  if (n.children.empty()) {
    return leaf_accept_[q * num_symbols_ + n.label];
  }
  NW_CHECK_MSG(n.children.size() == 2, "top-down automata: binary trees");
  auto [l, r] = branch_[q * num_symbols_ + n.label];
  if (l == kNoState) return false;
  return Eval(n.children[0], l) && Eval(n.children[1], r);
}

bool TopDownTreeAutomaton::AcceptsTree(const OrderedTree& t) const {
  if (t.IsEmpty() || initial_ == kNoState) return false;
  return Eval(t.root(), initial_);
}

}  // namespace nw
