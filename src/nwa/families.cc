#include "nwa/families.h"

#include <array>

#include "support/check.h"

namespace nw {

namespace {
constexpr Symbol kA = 0;
constexpr Symbol kB = 1;
}  // namespace

// ---------------------------------------------------------------------------
// Theorem 3: Ls = { path(w) | w ∈ {a,b}^s }.
// ---------------------------------------------------------------------------

Nwa Thm3PathNwa(int s) {
  NW_CHECK(s >= 1);
  Nwa a(2);
  // Descent states D_0..D_s, ascent states U_{s-1}..U_0. The hierarchical
  // edge of the call taken from D_i carries D_i for symbol a and U_i for
  // symbol b; the matching return checks the pair (level, symbol).
  std::vector<StateId> d(s + 1), u(s);
  for (int i = 0; i <= s; ++i) d[i] = a.AddState(false);
  for (int i = 0; i < s; ++i) u[i] = a.AddState(false);
  a.set_initial(d[0]);
  a.set_final(u[0]);

  for (int i = 0; i < s; ++i) {
    a.SetCall(d[i], kA, d[i + 1], d[i]);
    a.SetCall(d[i], kB, d[i + 1], u[i]);
  }
  // First return fires from D_s; subsequent returns from U_{i+1}.
  a.SetReturn(d[s], d[s - 1], kA, u[s - 1]);
  a.SetReturn(d[s], u[s - 1], kB, u[s - 1]);
  for (int i = s - 2; i >= 0; --i) {
    a.SetReturn(u[i + 1], d[i], kA, u[i]);
    a.SetReturn(u[i + 1], u[i], kB, u[i]);
  }
  return a;
}

bool Thm3Member(const NestedWord& n, int s) {
  if (n.size() != 2 * static_cast<size_t>(s)) return false;
  for (int i = 0; i < s; ++i) {
    if (n.kind(i) != Kind::kCall) return false;
    if (n.kind(2 * s - 1 - i) != Kind::kReturn) return false;
    if (n.symbol(i) != n.symbol(2 * s - 1 - i)) return false;
    if (n.symbol(i) > 1) return false;
  }
  return true;
}

Dfa Thm3TrieDfa(int s) {
  NW_CHECK(s >= 1 && s <= 20);
  const size_t sigma = 2;
  Dfa d(TaggedAlphabetSize(sigma));
  StateId root = d.AddState(false);
  d.set_initial(root);
  // Insert the tagged encoding of path(w) for every w ∈ {a,b}^s.
  const uint64_t count = 1ull << s;
  for (uint64_t bits = 0; bits < count; ++bits) {
    NestedWord n = NestedWord::Path([&] {
      std::vector<Symbol> w(s);
      for (int i = 0; i < s; ++i) w[i] = (bits >> i) & 1;
      return w;
    }());
    StateId cur = root;
    for (const TaggedSymbol& t : n.tagged()) {
      Symbol letter = TaggedIndex(t, sigma);
      StateId next = d.Next(cur, letter);
      if (next == kNoState) {
        next = d.AddState(false);
        d.SetTransition(cur, letter, next);
      }
      cur = next;
    }
    d.set_final(cur);
  }
  return d;
}

// ---------------------------------------------------------------------------
// Theorem 5: <a (<b b>)^m <a B1..Bs a> a>, block #(m mod s) forced to <a>.
// ---------------------------------------------------------------------------

Nwa Thm5FlatNwa(int s) {
  NW_CHECK(s >= 1);
  Nwa a(2);
  StateId start = a.AddState(false);
  a.set_initial(start);
  StateId q0 = start;  // flat: every call propagates q0

  // Counting states M_k (#<b> blocks mod s) and their insides.
  std::vector<StateId> m(s), mb(s);
  for (int k = 0; k < s; ++k) m[k] = a.AddState(false);
  for (int k = 0; k < s; ++k) mb[k] = a.AddState(false);
  // Block states blk[i][j]: forced index i, current block j; and insides.
  std::vector<std::vector<StateId>> blk(s, std::vector<StateId>(s + 1));
  std::vector<std::vector<StateId>> blk_in_a(s, std::vector<StateId>(s));
  std::vector<std::vector<StateId>> blk_in_b(s, std::vector<StateId>(s));
  for (int i = 0; i < s; ++i) {
    for (int j = 0; j <= s; ++j) blk[i][j] = a.AddState(false);
    for (int j = 0; j < s; ++j) blk_in_a[i][j] = a.AddState(false);
    for (int j = 0; j < s; ++j) blk_in_b[i][j] = a.AddState(false);
  }
  StateId close1 = a.AddState(false);
  StateId acc = a.AddState(true);

  a.SetCall(start, kA, m[0], q0);
  for (int k = 0; k < s; ++k) {
    a.SetCall(m[k], kB, mb[k], q0);
    a.SetReturn(mb[k], q0, kB, m[(k + 1) % s]);
    a.SetCall(m[k], kA, blk[k][0], q0);
  }
  for (int i = 0; i < s; ++i) {
    for (int j = 0; j < s; ++j) {
      // Block j (0-based); the forced <a> block is j == i.
      a.SetCall(blk[i][j], kA, blk_in_a[i][j], q0);
      a.SetReturn(blk_in_a[i][j], q0, kA, blk[i][j + 1]);
      if (j != i) {
        a.SetCall(blk[i][j], kB, blk_in_b[i][j], q0);
        a.SetReturn(blk_in_b[i][j], q0, kB, blk[i][j + 1]);
      }
    }
    a.SetReturn(blk[i][s], q0, kA, close1);
  }
  a.SetReturn(close1, q0, kA, acc);
  return a;
}

bool Thm5Member(const NestedWord& n, int s) {
  size_t pos = 0;
  auto at = [&](Kind k, Symbol sym) {
    if (pos >= n.size() || n.kind(pos) != k || n.symbol(pos) != sym)
      return false;
    ++pos;
    return true;
  };
  if (!at(Kind::kCall, kA)) return false;
  int m = 0;
  while (pos + 1 < n.size() && n.kind(pos) == Kind::kCall &&
         n.symbol(pos) == kB) {
    if (!at(Kind::kCall, kB) || !at(Kind::kReturn, kB)) return false;
    ++m;
  }
  if (!at(Kind::kCall, kA)) return false;
  int forced = m % s;  // 0-based forced block index
  for (int j = 0; j < s; ++j) {
    if (pos >= n.size() || n.kind(pos) != Kind::kCall) return false;
    Symbol c = n.symbol(pos);
    if (j == forced && c != kA) return false;
    if (c != kA && c != kB) return false;
    ++pos;
    if (!at(Kind::kReturn, c)) return false;
  }
  if (!at(Kind::kReturn, kA)) return false;
  if (!at(Kind::kReturn, kA)) return false;
  return pos == n.size();
}

std::vector<NestedWord> Thm5Words(int s, int m) {
  std::vector<NestedWord> out;
  const int forced = m % s;
  const uint64_t free_blocks = s - 1;
  for (uint64_t bits = 0; bits < (1ull << free_blocks); ++bits) {
    NestedWord n;
    n.Push(Call(kA));
    for (int k = 0; k < m; ++k) {
      n.Push(Call(kB));
      n.Push(Return(kB));
    }
    n.Push(Call(kA));
    uint64_t b = bits;
    for (int j = 0; j < s; ++j) {
      Symbol c;
      if (j == forced) {
        c = kA;
      } else {
        c = (b & 1) ? kB : kA;
        b >>= 1;
      }
      n.Push(Call(c));
      n.Push(Return(c));
    }
    n.Push(Return(kA));
    n.Push(Return(kA));
    out.push_back(std::move(n));
  }
  return out;
}

// ---------------------------------------------------------------------------
// Theorem 6: (<a)^k <b <c c> b> <c c> (a>)^k with equal c's.
// ---------------------------------------------------------------------------

Nwa Thm6Nwa() {
  Nwa a(2);
  // NWA acceptance cannot observe the stack, so "all prefix calls are
  // closed" must flow through hierarchical markers: the *first* <a pushes
  // h_first, later ones push h_pref, and only popping h_first accepts.
  // The core is duplicated for k = 0 (no prefix, accept right away) and
  // k ≥ 1 (accept only after the suffix drains to h_first).
  StateId p0 = a.AddState(false);   // nothing read yet
  StateId p1 = a.AddState(false);   // inside the (<a)^k prefix
  StateId h_first = a.AddState(false);
  StateId h_pref = a.AddState(false);
  StateId h_b = a.AddState(false);
  StateId h_c1 = a.AddState(false);
  StateId h_c2 = a.AddState(false);
  StateId acc_suffix = a.AddState(true);  // after popping h_first
  a.set_initial(p0);

  a.SetCall(p0, kA, p1, h_first);
  a.SetCall(p1, kA, p1, h_pref);

  // Core builder for one variant; returns the state reached after the core.
  auto build_core = [&](StateId entry, bool final_exit) {
    StateId q1 = a.AddState(false);
    StateId q6 = a.AddState(final_exit);
    a.SetCall(entry, kB, q1, h_b);
    for (Symbol c : {kA, kB}) {
      StateId q2 = a.AddState(false);
      StateId q3 = a.AddState(false);
      StateId q4 = a.AddState(false);
      StateId q5 = a.AddState(false);
      a.SetCall(q1, c, q2, h_c1);
      a.SetReturn(q2, h_c1, c, q3);
      a.SetReturn(q3, h_b, kB, q4);
      a.SetCall(q4, c, q5, h_c2);
      a.SetReturn(q5, h_c2, c, q6);
    }
    return q6;
  };

  build_core(p0, /*final_exit=*/true);           // k = 0
  StateId q6 = build_core(p1, /*final_exit=*/false);  // k ≥ 1
  a.SetReturn(q6, h_pref, kA, q6);
  a.SetReturn(q6, h_first, kA, acc_suffix);
  return a;
}

bool Thm6Member(const NestedWord& n) {
  // The core starts with <b, so every leading <a belongs to the prefix.
  size_t k = 0;
  while (k < n.size() && n.kind(k) == Kind::kCall && n.symbol(k) == kA) ++k;
  size_t pos = k;
  auto at = [&](Kind kk, Symbol sym) {
    if (pos >= n.size() || n.kind(pos) != kk || n.symbol(pos) != sym)
      return false;
    ++pos;
    return true;
  };
  if (!at(Kind::kCall, kB)) return false;
  if (pos >= n.size() || n.kind(pos) != Kind::kCall) return false;
  Symbol c = n.symbol(pos);
  ++pos;
  if (!at(Kind::kReturn, c)) return false;
  if (!at(Kind::kReturn, kB)) return false;
  if (!at(Kind::kCall, c)) return false;
  if (!at(Kind::kReturn, c)) return false;
  for (size_t i = 0; i < k; ++i) {
    if (!at(Kind::kReturn, kA)) return false;
  }
  return pos == n.size();
}

// ---------------------------------------------------------------------------
// Theorem 8: path(Σ^s a Σ* a Σ^s).
// ---------------------------------------------------------------------------

Nwa Thm8PathNwa(int s) {
  NW_CHECK(s >= 1);
  Nwa a(2);
  std::vector<StateId> d(s + 1);
  for (int i = 0; i <= s; ++i) d[i] = a.AddState(false);
  StateId mid = a.AddState(false);
  std::vector<StateId> u(s + 1);  // u[1..s]: ascent return counter
  for (int j = 1; j <= s; ++j) u[j] = a.AddState(false);
  StateId post = a.AddState(false);
  StateId acc = a.AddState(true);
  // Hierarchical carriers: hd[i][c] for descent level i < s, hd_s_a for the
  // checked call at level s, hm[c] for middle calls.
  std::vector<std::array<StateId, 2>> hd(s);
  for (int i = 0; i < s; ++i) hd[i] = {a.AddState(false), a.AddState(false)};
  StateId hd_s_a = a.AddState(false);
  StateId hm[2] = {a.AddState(false), a.AddState(false)};
  a.set_initial(d[0]);

  for (int i = 0; i < s; ++i) {
    a.SetCall(d[i], kA, d[i + 1], hd[i][kA]);
    a.SetCall(d[i], kB, d[i + 1], hd[i][kB]);
  }
  a.SetCall(d[s], kA, mid, hd_s_a);  // (s+1)-th symbol of w must be a
  a.SetCall(mid, kA, mid, hm[kA]);
  a.SetCall(mid, kB, mid, hm[kB]);

  // Ascent: returns #1..#s must pop middle tags (enforces |w| ≥ 2s+2).
  for (Symbol c : {kA, kB}) a.SetReturn(mid, hm[c], c, u[1]);
  for (int j = 1; j < s; ++j) {
    for (Symbol c : {kA, kB}) a.SetReturn(u[j], hm[c], c, u[j + 1]);
  }
  // Return #(s+1): the (s+1)-th symbol of w from the end must be `a` and
  // still in the middle zone.
  a.SetReturn(u[s], hm[kA], kA, post);
  // Remainder: symbol-match each return against its call's tag.
  for (Symbol c : {kA, kB}) a.SetReturn(post, hm[c], c, post);
  a.SetReturn(post, hd_s_a, kA, post);
  for (int i = 1; i < s; ++i) {
    for (Symbol c : {kA, kB}) a.SetReturn(post, hd[i][c], c, post);
  }
  for (Symbol c : {kA, kB}) a.SetReturn(post, hd[0][c], c, acc);
  return a;
}

bool Thm8Member(const NestedWord& n, int s) {
  if (n.size() % 2 != 0) return false;
  size_t half = n.size() / 2;
  if (half < 2 * static_cast<size_t>(s) + 2) return false;
  for (size_t i = 0; i < half; ++i) {
    if (n.kind(i) != Kind::kCall) return false;
    if (n.kind(n.size() - 1 - i) != Kind::kReturn) return false;
    if (n.symbol(i) != n.symbol(n.size() - 1 - i)) return false;
  }
  return n.symbol(s) == kA && n.symbol(half - s - 1) == kA;
}

Nfa Thm8WordNfa(int s) {
  Nfa n(2);
  std::vector<StateId> pre(s + 1);
  for (int i = 0; i <= s; ++i) pre[i] = n.AddState(false);
  StateId mid = n.AddState(false);
  std::vector<StateId> suf(s + 1);
  for (int i = 0; i <= s; ++i) suf[i] = n.AddState(i == s);
  n.AddInitial(pre[0]);
  for (int i = 0; i < s; ++i) {
    n.AddTransition(pre[i], kA, pre[i + 1]);
    n.AddTransition(pre[i], kB, pre[i + 1]);
  }
  n.AddTransition(pre[s], kA, mid);
  n.AddTransition(mid, kA, mid);
  n.AddTransition(mid, kB, mid);
  n.AddTransition(mid, kA, suf[0]);
  for (int i = 0; i < s; ++i) {
    n.AddTransition(suf[i], kA, suf[i + 1]);
    n.AddTransition(suf[i], kB, suf[i + 1]);
  }
  return n;
}

}  // namespace nw
