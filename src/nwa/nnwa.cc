#include "nwa/nnwa.h"

#include <algorithm>

#include "nwa/nwa.h"
#include "support/check.h"

namespace nw {
namespace {

uint64_t Pack(StateId anchor, StateId cur) {
  return (static_cast<uint64_t>(anchor) << 32) | cur;
}
StateId Anchor(uint64_t p) { return static_cast<StateId>(p >> 32); }
StateId Cur(uint64_t p) { return static_cast<StateId>(p & 0xffffffffu); }

void SortUnique(std::vector<uint64_t>* v) {
  std::sort(v->begin(), v->end());
  v->erase(std::unique(v->begin(), v->end()), v->end());
}

}  // namespace

StateId Nnwa::AddState(bool is_final) {
  StateId id = static_cast<StateId>(final_.size());
  final_.push_back(is_final);
  internal_.resize(internal_.size() + num_symbols_);
  call_.resize(call_.size() + num_symbols_);
  return_.resize(return_.size() + num_symbols_);
  return id;
}

void Nnwa::AddInternal(StateId q, Symbol a, StateId q2) {
  NW_DCHECK(q < num_states() && a < num_symbols_ && q2 < num_states());
  internal_[q * num_symbols_ + a].push_back(q2);
  ++num_transitions_;
}

void Nnwa::AddCall(StateId q, Symbol a, StateId linear, StateId hier) {
  NW_DCHECK(q < num_states() && a < num_symbols_);
  NW_DCHECK(linear < num_states() && hier < num_states());
  call_[q * num_symbols_ + a].push_back({linear, hier});
  ++num_transitions_;
}

void Nnwa::AddReturn(StateId q, StateId hier, Symbol a, StateId q2) {
  NW_DCHECK(q < num_states() && hier < num_states() && a < num_symbols_);
  NW_DCHECK(q2 < num_states());
  return_[q * num_symbols_ + a].push_back({hier, q2});
  ++num_transitions_;
}

std::vector<StateId> Nnwa::ReturnTargets(StateId q, StateId hier,
                                         Symbol a) const {
  std::vector<StateId> out;
  for (const ReturnEdge& e : ReturnEdges(q, a)) {
    if (e.hier == hier) out.push_back(e.target);
  }
  return out;
}

bool Nnwa::Accepts(const NestedWord& n) const {
  NnwaRunner r(*this);
  return r.Run(n);
}

Nnwa Nnwa::FromNwa(const Nwa& a) {
  Nnwa out(a.num_symbols());
  for (StateId q = 0; q < a.num_states(); ++q) out.AddState(a.is_final(q));
  if (a.initial() != kNoState) out.AddInitial(a.initial());
  if (a.hier_initial() != kNoState) out.AddHierInitial(a.hier_initial());
  for (StateId q = 0; q < a.num_states(); ++q) {
    for (Symbol s = 0; s < a.num_symbols(); ++s) {
      StateId t = a.NextInternal(q, s);
      if (t != kNoState) out.AddInternal(q, s, t);
      StateId l = a.NextCallLinear(q, s);
      StateId h = a.NextCallHier(q, s);
      if (l != kNoState && h != kNoState) out.AddCall(q, s, l, h);
      // Return transitions: enumerate via every possible hier state. The
      // deterministic class stores them sparsely, so go through the map by
      // probing — acceptable because constructions that lift to Nnwa are
      // small; hot paths never take this route.
      for (StateId h2 = 0; h2 < a.num_states(); ++h2) {
        StateId t2 = a.NextReturn(q, h2, s);
        if (t2 != kNoState) out.AddReturn(q, h2, s, t2);
      }
    }
  }
  return out;
}

void NnwaRunner::Reset() {
  pairs_.clear();
  stack_.clear();
  for (StateId q : a_.initial()) pairs_.push_back(Pack(q, q));
  SortUnique(&pairs_);
}

bool NnwaRunner::Feed(TaggedSymbol t) {
  if (pairs_.empty()) return false;
  std::vector<uint64_t> next;
  switch (t.kind) {
    case Kind::kInternal: {
      for (uint64_t p : pairs_) {
        for (StateId q2 : a_.InternalTargets(Cur(p), t.symbol)) {
          next.push_back(Pack(Anchor(p), q2));
        }
      }
      break;
    }
    case Kind::kCall: {
      // Push the *source* pair set; restart pairs at the linear targets.
      for (uint64_t p : pairs_) {
        for (const CallEdge& e : a_.CallTargets(Cur(p), t.symbol)) {
          next.push_back(Pack(e.linear, e.linear));
        }
      }
      stack_.push_back({std::move(pairs_), t.symbol});
      break;
    }
    case Kind::kReturn: {
      if (stack_.empty()) {
        // Pending return: the hierarchical edge carries any state of P0.
        for (uint64_t p : pairs_) {
          for (const ReturnEdge& e : a_.ReturnEdges(Cur(p), t.symbol)) {
            for (StateId p0 : a_.hier_initial()) {
              if (e.hier == p0) next.push_back(Pack(Anchor(p), e.target));
            }
          }
        }
      } else {
        // Matched return: recombine through the pushed pair set. For each
        // pre-call pair (anchor0, q), call edge (q -a-> ql, qh) and current
        // pair (ql, q'), a return transition (q', qh, b, q'') resumes the
        // outer summary as (anchor0, q'').
        Frame frame = std::move(stack_.back());
        stack_.pop_back();
        // Index current pairs by their anchor (= linear call target).
        std::unordered_map<StateId, std::vector<StateId>> by_anchor;
        for (uint64_t p : pairs_) by_anchor[Anchor(p)].push_back(Cur(p));
        for (uint64_t pre : frame.pairs) {
          for (const CallEdge& e :
               a_.CallTargets(Cur(pre), frame.call_symbol)) {
            auto it = by_anchor.find(e.linear);
            if (it == by_anchor.end()) continue;
            for (StateId q1 : it->second) {
              for (const ReturnEdge& r : a_.ReturnEdges(q1, t.symbol)) {
                if (r.hier == e.hier) {
                  next.push_back(Pack(Anchor(pre), r.target));
                }
              }
            }
          }
        }
      }
      break;
    }
  }
  SortUnique(&next);
  pairs_ = std::move(next);
  return !pairs_.empty();
}

bool NnwaRunner::Run(const NestedWord& n) {
  Reset();
  for (const TaggedSymbol& t : n.tagged()) {
    if (!Feed(t)) return false;
  }
  return Accepting();
}

bool NnwaRunner::Accepting() const {
  for (uint64_t p : pairs_) {
    if (a_.is_final(Cur(p))) return true;
  }
  return false;
}

}  // namespace nw
