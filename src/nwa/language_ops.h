// Closure constructions for regular languages of nested words (§3.2):
// boolean operations, concatenation, Kleene-*, and reversal. Prefix/suffix
// closure and insertion live in closure_ext.h.
//
// Concatenation and star are the constructions where nested words differ
// most from plain words: a pending call of one factor may be matched by a
// pending return of a later factor, so the automaton must recognize, at a
// pop, whether the popped frame belongs to the current factor. Tagged
// hierarchical states (concat) and the floor bit (star) achieve this; see
// DESIGN.md §3.
#ifndef NW_NWA_LANGUAGE_OPS_H_
#define NW_NWA_LANGUAGE_OPS_H_

#include "nwa/nnwa.h"
#include "nwa/nwa.h"

namespace nw {

/// L(a) ∪ L(b): disjoint sum.
Nnwa Union(const Nnwa& a, const Nnwa& b);

/// L(a) ∩ L(b): synchronous product (hierarchical edges carry pairs).
Nnwa Intersect(const Nnwa& a, const Nnwa& b);

/// NW(Σ) \ L(a): determinize, totalize, flip finals. Deterministic result.
Nwa Complement(const Nnwa& a);

/// Complement lifted back to the nondeterministic representation, for
/// feeding into further constructions.
Nnwa ComplementN(const Nnwa& a);

/// L(a) · L(b): concatenation. Hierarchical frames pushed in the a-phase
/// read as pending (P0 of b) when popped in the b-phase.
Nnwa Concat(const Nnwa& a, const Nnwa& b);

/// L(a)*: Kleene star (includes ε). Hierarchical frames carry the floor
/// bit: "was the stack at the current factor's floor before this push" —
/// a pop at the floor belongs to an earlier factor and reads as pending.
Nnwa Star(const Nnwa& a);

/// { reverse(n) : n ∈ L(a) } — reversal swaps the roles of call and
/// return transitions (§2.4 reversal flips hierarchical edges).
Nnwa ReverseLang(const Nnwa& a);

}  // namespace nw

#endif  // NW_NWA_LANGUAGE_OPS_H_
