// Deterministic nested word automata (paper §3.1).
//
// An NWA reads a nested word left to right. At an internal position it
// steps like a DFA; at a call it forks a state along the linear edge and a
// state along the hierarchical edge; at a return the next state is a joint
// function of the states on the incoming linear and hierarchical edges.
//
// Implementation notes:
//  * Automata may be partial: a missing transition sends the run to an
//    implicit dead state (reject). Totalize() materializes an explicit
//    sink so complementation is a final-flip away.
//  * Hierarchical edges of pending returns (−∞ ⇝ j) carry hier_initial()
//    — the paper's q0; constructions that need a distinct hierarchical
//    start (determinization, reversal) set it explicitly.
//  * Return transitions are stored sparsely (hash map) since a total
//    return table is |Q|²·|Σ| — the succinctness experiments build
//    automata where that is deliberately huge.
#ifndef NW_NWA_NWA_H_
#define NW_NWA_NWA_H_

#include <unordered_map>
#include <vector>

#include "nw/nested_word.h"
#include "wordauto/dfa.h"

namespace nw {

/// One explicit return rule δr(from, hier, symbol) = target, unpacked from
/// the sparse ReturnKey map. Consumed by passes that must enumerate every
/// return transition (the optimizer's partition refinement, the shared-bank
/// compiler) rather than look rules up.
struct NwaReturnRule {
  StateId from;
  StateId hier;
  Symbol symbol;
  StateId target;
};

/// Deterministic nested word automaton A = (Q, q0, F, δc, δi, δr).
class Nwa {
 public:
  /// Creates an automaton with no states over a `num_symbols` alphabet Σ.
  explicit Nwa(size_t num_symbols) : num_symbols_(num_symbols) {}

  StateId AddState(bool is_final = false);

  /// Initial state q0. Also used as the hierarchical initial unless
  /// set_hier_initial overrides it.
  void set_initial(StateId q) {
    initial_ = q;
    if (hier_initial_ == kNoState) hier_initial_ = q;
  }
  StateId initial() const { return initial_; }

  /// State labeling hierarchical edges of pending returns (paper: q0).
  void set_hier_initial(StateId q) { hier_initial_ = q; }
  StateId hier_initial() const { return hier_initial_; }

  void set_final(StateId q, bool f = true) { final_[q] = f; }
  bool is_final(StateId q) const { return final_[q]; }

  size_t num_states() const { return final_.size(); }
  size_t num_symbols() const { return num_symbols_; }

  /// δi(q, a) = q2.
  void SetInternal(StateId q, Symbol a, StateId q2);
  /// δc(q, a) = (linear, hier).
  void SetCall(StateId q, Symbol a, StateId linear, StateId hier);
  /// δr(q, hier, a) = q2.
  void SetReturn(StateId q, StateId hier, Symbol a, StateId q2);

  /// Lookups; kNoState when undefined (unless the automaton has a sink,
  /// in which case the sink is returned).
  StateId NextInternal(StateId q, Symbol a) const;
  StateId NextCallLinear(StateId q, Symbol a) const;
  StateId NextCallHier(StateId q, Symbol a) const;
  StateId NextReturn(StateId q, StateId hier, Symbol a) const;

  /// True if every transition resolves (possibly via the sink).
  bool HasSink() const { return sink_ != kNoState; }

  // -- Single-position step API. --
  //
  // The caller owns the run state (current linear state) and the
  // hierarchical stack; each step consumes one tagged position and returns
  // the next linear state, or kNoState once the run is dead. NwaRunner is
  // a thin convenience wrapper over these; the batched query engine
  // (src/query/engine.h) drives many automata over one shared stack with
  // the same calls.

  /// Internal position: returns δi(q, a) (kNoState = dead).
  StateId StepInternal(StateId q, Symbol a) const {
    return q == kNoState ? kNoState : NextInternal(q, a);
  }
  /// Call position: returns the linear target and writes the state to push
  /// on the caller's stack to `*hier_out`. A call dies (returns kNoState,
  /// writes kNoState) unless *both* components of δc(q, a) are defined.
  StateId StepCall(StateId q, Symbol a, StateId* hier_out) const;
  /// Return position: `hier` is the frame popped from the caller's stack,
  /// or kNoState for a pending return (reads hier_initial(), the paper's
  /// q_{−∞j} = q0 convention). Returns δr(q, hier, a).
  StateId StepReturn(StateId q, StateId hier, Symbol a) const;

  /// Makes the automaton total by adding (or reusing) a non-final sink
  /// state that absorbs every missing transition. Idempotent.
  void Totalize();

  /// Runs the unique run of §3.1 and reports acceptance.
  bool Accepts(const NestedWord& n) const;

  /// Number of defined transitions (diagnostic / experiment metric).
  size_t NumTransitions() const;

  /// Every defined return rule, unpacked from the 24/16-bit ReturnKey
  /// packing. Order is unspecified (hash-map iteration order).
  std::vector<NwaReturnRule> ReturnRules() const;

  // -- Subclass predicates (§3.3–§3.5). --

  /// Weak (§3.2): δhc(q,a) = q for all q, a (defined calls only).
  bool IsWeak() const;
  /// Flat (§3.3): δhc(q,a) = q0 for all q, a — no information crosses
  /// hierarchical edges; equivalent to a classical word automaton.
  bool IsFlat() const;
  /// Bottom-up (§3.4): δlc(q,a) independent of q.
  bool IsBottomUp() const;

 private:
  friend class NwaRunner;

  static constexpr StateId kMaxPackedState = (1u << 24) - 1;
  static constexpr Symbol kMaxPackedSymbol = (1u << 16) - 1;

  static uint64_t ReturnKey(StateId q, StateId hier, Symbol a) {
    // 24 bits per state, 16 bits per symbol: ample for this library's
    // experiments and asserted on insertion (SetReturn).
    return (static_cast<uint64_t>(q) << 40) |
           (static_cast<uint64_t>(hier) << 16) | a;
  }

  size_t num_symbols_;
  StateId initial_ = kNoState;
  StateId hier_initial_ = kNoState;
  StateId sink_ = kNoState;
  std::vector<bool> final_;
  std::vector<StateId> internal_;     // [q*|Σ|+a]
  std::vector<StateId> call_linear_;  // [q*|Σ|+a]
  std::vector<StateId> call_hier_;    // [q*|Σ|+a]
  std::unordered_map<uint64_t, StateId> returns_;
};

/// Streaming runner: feeds one tagged symbol at a time, keeping only the
/// current state and the stack of hierarchical-edge states. This realizes
/// the §3.2 membership bound — linear time, space proportional to the
/// *depth* of the input prefix, independent of its length.
class NwaRunner {
 public:
  explicit NwaRunner(const Nwa& a) : a_(a) { Reset(); }

  /// Restarts at the initial state with an empty stack.
  void Reset();

  /// Consumes one position. Returns false once the run is dead.
  bool Feed(TaggedSymbol t);

  /// Feeds a whole word; returns acceptance.
  bool Run(const NestedWord& n);

  /// True if the run has hit a missing transition.
  bool dead() const { return dead_; }
  /// Current linear state (meaningless when dead).
  StateId state() const { return state_; }
  /// Would the word fed so far be accepted?
  bool Accepting() const { return !dead_ && a_.is_final(state_); }
  /// Current stack height (= number of currently-pending calls).
  size_t StackDepth() const { return stack_.size(); }
  /// High-water mark of the stack — the §3.2 space bound witness.
  size_t MaxStackDepth() const { return max_stack_; }

 private:
  const Nwa& a_;
  StateId state_ = kNoState;
  bool dead_ = false;
  std::vector<StateId> stack_;
  size_t max_stack_ = 0;
};

}  // namespace nw

#endif  // NW_NWA_NWA_H_
