// Joinless nested word automata (paper §3.5).
//
// A joinless automaton never joins linear and hierarchical information at
// a return. States are partitioned into linear (Ql) and hierarchical (Qh)
// modes. At a return position i with hierarchical edge state h:
//   (a) if the previous state q is linear: requires h to be an initial
//       state (true for pending edges and for calls that pushed one) and
//       steps on q:   q_i = δr(q, a);
//   (b) if the previous state q is hierarchical: requires q to be a
//       *discharging* state (the "inside run accepted" condition) and
//       steps on the edge state:   q_i = δr(h, a).
// Note h may be of either mode: a linear call can fork a hierarchical
// inside while parking its linear continuation on the hierarchical edge —
// this is what lets a run return to linear mode after a matched pair.
//
// Deviations from the paper, documented in DESIGN.md §3:
//  * pending-return edges carry a dedicated bottom marker rather than
//    "the run's q0" (the standard decoupling, cf. the P0 sets of Nnwa);
//  * the discharge set D defaults to Qh ∩ F (the paper's rule) but can be
//    set independently: with D ≡ Qh ∩ F the literal Theorem-7 construction
//    over-accepts words that end inside a speculated matched pair, because
//    inside-obligation states must then be word-end accepting too. The
//    separation restores L(B) = L(A) exactly (see joinless_test.cc for the
//    failing witness under the conflated reading).
//
// Flat automata are joinless with Ql = Q; top-down automata are joinless
// with Ql = ∅ (Lemma 2). Deterministic joinless automata are strictly
// weaker than NWAs (Theorem 6); nondeterministic ones are complete
// (Theorem 7, FromNnwa below, O(s²·|Σ|) states).
#ifndef NW_NWA_JOINLESS_H_
#define NW_NWA_JOINLESS_H_

#include <vector>

#include "nwa/nnwa.h"

namespace nw {

/// Nondeterministic joinless nested word automaton.
class JoinlessNwa {
 public:
  explicit JoinlessNwa(size_t num_symbols) : num_symbols_(num_symbols) {}

  /// Adds a state in the given mode.
  StateId AddState(bool hierarchical, bool is_final = false);

  void AddInitial(StateId q) { initial_.push_back(q); }
  void set_final(StateId q, bool f = true) { final_[q] = f; }

  /// Marks q (hierarchical) as discharging: rule (b) fires when the state
  /// before the return is discharging. Until the first call, the discharge
  /// set defaults to Qh ∩ F — the paper's formulation.
  void set_discharge(StateId q, bool d = true);

  bool is_hier(StateId q) const { return hier_[q]; }
  bool is_final(StateId q) const { return final_[q]; }
  bool is_discharge(StateId q) const {
    return custom_discharge_ ? discharge_[q] : (hier_[q] && final_[q]);
  }
  size_t num_states() const { return final_.size(); }
  size_t num_symbols() const { return num_symbols_; }
  const std::vector<StateId>& initial() const { return initial_; }

  /// δi: (q, a, q2). A hierarchical source must stay in Qh.
  void AddInternal(StateId q, Symbol a, StateId q2);
  /// δc: (q, a, linear, hier). A hierarchical source forks into Qh × Qh;
  /// a linear source may fork arbitrarily (in particular: hierarchical
  /// inside + linear continuation parked on the hierarchical edge).
  void AddCall(StateId q, Symbol a, StateId linear, StateId hier);
  /// δr: (q, a, q2) — used as rule (a) when q is linear (keyed on the
  /// previous state) and as rule (b) when popped (keyed on the edge state,
  /// which may be of either mode). A hierarchical q must map into Qh.
  void AddReturn(StateId q, Symbol a, StateId q2);

  /// True iff all states are hierarchical (a top-down automaton).
  bool IsTopDown() const;
  /// True iff at most one initial state and one choice per situation.
  bool IsDeterministic() const;

  /// Embeds into the general nondeterministic NWA model (adds a fresh
  /// bottom marker as the only hierarchical initial). Used for running,
  /// language ops, and the differential tests of Theorem 7.
  Nnwa ToNnwa() const;

  /// Membership via the embedding.
  bool Accepts(const NestedWord& n) const { return ToNnwa().Accepts(n); }

  /// Theorem 7: an equivalent nondeterministic joinless automaton with
  /// O(s²·|Σ|) states for any nondeterministic NWA.
  static JoinlessNwa FromNnwa(const Nnwa& a);

 private:
  struct Edge3 {
    StateId q;
    Symbol a;
    StateId q2;
  };
  struct Call4 {
    StateId q;
    Symbol a;
    StateId linear;
    StateId hier;
  };

  size_t num_symbols_;
  std::vector<StateId> initial_;
  std::vector<bool> final_;
  std::vector<bool> hier_;
  std::vector<bool> discharge_;
  bool custom_discharge_ = false;
  std::vector<Edge3> internal_;
  std::vector<Call4> call_;
  std::vector<Edge3> return_;
};

}  // namespace nw

#endif  // NW_NWA_JOINLESS_H_
