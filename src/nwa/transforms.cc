#include "nwa/transforms.h"

#include <map>
#include <utility>
#include <vector>

#include "support/check.h"

namespace nw {

Nwa ToWeak(const Nwa& a) {
  NW_CHECK(a.initial() != kNoState);
  const size_t k = a.num_symbols();
  Nwa out(k);
  // Fresh hierarchical-initial marker (avoids the pending/matched return
  // ambiguity when δhc(p0, ·) ≠ p0; see DESIGN.md §3).
  StateId marker = out.AddState(false);
  out.set_hier_initial(marker);

  // Lazy exploration of pairs (A-state, call-parent symbol). Symbol k
  // stands for the paper's arbitrary a0 (top level).
  const Symbol kTop = static_cast<Symbol>(k);
  std::map<std::pair<StateId, Symbol>, StateId> ids;
  std::vector<std::pair<StateId, Symbol>> order;
  auto intern = [&](StateId q, Symbol parent) {
    auto key = std::make_pair(q, parent);
    auto it = ids.find(key);
    if (it != ids.end()) return it->second;
    StateId id = out.AddState(a.is_final(q));
    ids.emplace(key, id);
    order.push_back(key);
    return id;
  };

  StateId start = intern(a.initial(), kTop);
  out.set_initial(start);
  out.set_hier_initial(marker);

  // Fixpoint: interning may discover new pairs at any time, and return
  // transitions relate *pairs of pairs*; repeat full passes until no new
  // pair appears (each pass covers all current combinations).
  size_t stable_at = 0;
  while (stable_at != order.size()) {
    stable_at = order.size();
    for (size_t i = 0; i < order.size(); ++i) {
      auto [q, parent] = order[i];
      StateId from = ids.at(order[i]);
      for (Symbol b = 0; b < k; ++b) {
        // Internal: label component untouched.
        StateId ti = a.NextInternal(q, b);
        if (ti != kNoState) out.SetInternal(from, b, intern(ti, parent));
        // Call: remember b as the new call-parent symbol; push self (weak).
        StateId tl = a.NextCallLinear(q, b);
        if (tl != kNoState && a.NextCallHier(q, b) != kNoState) {
          out.SetCall(from, b, intern(tl, b), from);
        }
      }
      // Pending returns: apply A's rule for its own hierarchical initial;
      // afterwards the position is at top level again.
      if (a.hier_initial() != kNoState) {
        for (Symbol c = 0; c < k; ++c) {
          StateId t = a.NextReturn(q, a.hier_initial(), c);
          if (t != kNoState) out.SetReturn(from, marker, c, intern(t, kTop));
        }
      }
      // Matched returns: the popped state (q2, parent2) is the state at
      // the call, so A pushed δhc(q2, parent) there (`parent` is the call's
      // symbol by the invariant of the pair encoding).
      if (parent == kTop) continue;  // matched return implies a parent
      for (size_t j = 0; j < order.size(); ++j) {
        auto [q2, parent2] = order[j];
        StateId hier = ids.at(order[j]);
        StateId pushed = a.NextCallHier(q2, parent);
        if (pushed == kNoState) continue;
        for (Symbol c = 0; c < k; ++c) {
          StateId t = a.NextReturn(q, pushed, c);
          if (t != kNoState) out.SetReturn(from, hier, c, intern(t, parent2));
        }
      }
    }
  }
  return out;
}

Nwa FlatFromDfa(const Dfa& d, size_t sigma_size) {
  NW_CHECK_MSG(d.num_symbols() == TaggedAlphabetSize(sigma_size),
               "DFA alphabet must be the tagged alphabet of Σ");
  NW_CHECK(d.initial() != kNoState);
  Nwa out(sigma_size);
  for (StateId q = 0; q < d.num_states(); ++q) out.AddState(d.is_final(q));
  out.set_initial(d.initial());
  for (StateId q = 0; q < d.num_states(); ++q) {
    for (Symbol a = 0; a < sigma_size; ++a) {
      StateId ti = d.Next(q, TaggedIndex(Internal(a), sigma_size));
      if (ti != kNoState) out.SetInternal(q, a, ti);
      StateId tc = d.Next(q, TaggedIndex(Call(a), sigma_size));
      if (tc != kNoState) out.SetCall(q, a, tc, d.initial());
      StateId tr = d.Next(q, TaggedIndex(Return(a), sigma_size));
      if (tr != kNoState) out.SetReturn(q, d.initial(), a, tr);
    }
  }
  return out;
}

Dfa DfaFromFlat(const Nwa& a) {
  NW_CHECK_MSG(a.IsFlat(), "DfaFromFlat requires a flat NWA (Thm 2)");
  const size_t sigma = a.num_symbols();
  Dfa out(TaggedAlphabetSize(sigma));
  for (StateId q = 0; q < a.num_states(); ++q) out.AddState(a.is_final(q));
  out.set_initial(a.initial());
  for (StateId q = 0; q < a.num_states(); ++q) {
    for (Symbol s = 0; s < sigma; ++s) {
      StateId ti = a.NextInternal(q, s);
      if (ti != kNoState) {
        out.SetTransition(q, TaggedIndex(Internal(s), sigma), ti);
      }
      StateId tc = a.NextCallLinear(q, s);
      if (tc != kNoState) {
        out.SetTransition(q, TaggedIndex(Call(s), sigma), tc);
      }
      StateId tr = a.NextReturn(q, a.hier_initial(), s);
      if (tr != kNoState) {
        out.SetTransition(q, TaggedIndex(Return(s), sigma), tr);
      }
    }
  }
  return out;
}

Nwa MinimizeFlat(const Nwa& a) {
  return FlatFromDfa(DfaFromFlat(a).Minimize(), a.num_symbols());
}

Nwa ToBottomUp(const Nwa& weak) {
  NW_CHECK_MSG(weak.IsWeak(), "ToBottomUp requires a weak NWA (Thm 4)");
  NW_CHECK(weak.initial() != kNoState);
  const size_t n = weak.num_states();
  const size_t k = weak.num_symbols();
  using Fn = std::vector<StateId>;  // Q -> Q ∪ {kNoState}

  Nwa out(k);
  std::map<Fn, StateId> ids;
  std::vector<Fn> order;
  auto is_final_fn = [&](const Fn& f) {
    StateId v = f[weak.initial()];
    return v != kNoState && weak.is_final(v);
  };
  auto intern = [&](Fn f) {
    auto it = ids.find(f);
    if (it != ids.end()) return it->second;
    StateId id = out.AddState(is_final_fn(f));
    ids.emplace(f, id);
    order.push_back(std::move(f));
    return id;
  };

  Fn identity(n);
  for (StateId q = 0; q < n; ++q) identity[q] = q;
  StateId start = intern(identity);
  out.set_initial(start);
  // No pending-return behaviour: bottom-up automata process only
  // well-matched words (§3.4); the hierarchical initial stays at `start`
  // with no return rules attached to it... except those the closure below
  // adds for `start` as a *matched* hierarchical value, which is exactly
  // Theorem 4's intent for the identity summary.

  // Per-symbol call-target function: f_a(q) = δlc(q, a).
  std::vector<StateId> call_target(k, kNoState);
  for (Symbol a = 0; a < k; ++a) {
    Fn fa(n, kNoState);
    bool any = false;
    for (StateId q = 0; q < n; ++q) {
      StateId l = weak.NextCallLinear(q, a);
      fa[q] = l;
      any = any || l != kNoState;
    }
    if (any) call_target[a] = intern(std::move(fa));
  }

  // Closure: internal/call rows per function, and return rows per ordered
  // pair of functions (f, g). Iterate to fixpoint as `order` grows.
  size_t done_lin = 0;
  std::vector<std::pair<size_t, size_t>> ret_done;  // processed (f,g) sizes
  size_t done_f = 0, done_g = 0;
  while (done_lin < order.size() || done_f < order.size() ||
         done_g < order.size()) {
    // Internal and call transitions for new functions.
    for (; done_lin < order.size(); ++done_lin) {
      Fn f = order[done_lin];
      StateId from = ids.at(f);
      for (Symbol a = 0; a < k; ++a) {
        // Internal: f'(q) = δi(f(q), a).
        Fn fi(n, kNoState);
        bool any = false;
        for (StateId q = 0; q < n; ++q) {
          if (f[q] == kNoState) continue;
          fi[q] = weak.NextInternal(f[q], a);
          any = any || fi[q] != kNoState;
        }
        if (any) out.SetInternal(from, a, intern(std::move(fi)));
        // Call: jump to the per-symbol function, push self (weak).
        if (call_target[a] != kNoState) {
          out.SetCall(from, a, call_target[a], from);
        }
      }
    }
    // Return transitions for all (f, g) pairs not processed yet.
    size_t total = order.size();
    for (size_t i = 0; i < total; ++i) {
      for (size_t j = 0; j < total; ++j) {
        if (i < done_f && j < done_g) continue;
        const Fn f = order[i];
        const Fn g = order[j];
        StateId from = ids.at(f);
        StateId hier = ids.at(g);
        for (Symbol a = 0; a < k; ++a) {
          // f'(q) = δr(f(g(q)), g(q), a).
          Fn fr(n, kNoState);
          bool any = false;
          for (StateId q = 0; q < n; ++q) {
            StateId gq = g[q];
            if (gq == kNoState || f[gq] == kNoState) continue;
            fr[q] = weak.NextReturn(f[gq], gq, a);
            any = any || fr[q] != kNoState;
          }
          if (any) out.SetReturn(from, hier, a, intern(std::move(fr)));
        }
      }
    }
    done_f = done_g = total;
  }
  return out;
}

}  // namespace nw
