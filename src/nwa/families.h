// The paper's witness language families, as constructive automata builders.
// Each Theorem's succinctness/expressiveness experiment (DESIGN.md §5)
// builds one side from here and derives the other side mechanically
// (minimization, subset construction, bottom-up transformation).
#ifndef NW_NWA_FAMILIES_H_
#define NW_NWA_FAMILIES_H_

#include <vector>

#include "nwa/nwa.h"
#include "wordauto/dfa.h"
#include "wordauto/nfa.h"

namespace nw {

/// Theorem 3 family: Ls = { path(w) | w ∈ {a,b}^s }.
///
/// Returns a deterministic NWA with O(s) states (2s+1 plus hierarchical
/// carriers; the paper's proof notes s+2 suffice with state sharing — the
/// experiment's claim, linear vs 2^s, is unaffected). At each call the
/// current symbol is passed along the hierarchical edge and checked at the
/// matching return.
Nwa Thm3PathNwa(int s);

/// Direct membership oracle for Thm 3's Ls (for differential tests).
bool Thm3Member(const NestedWord& n, int s);

/// Trie DFA over the tagged alphabet Σ̂ accepting nw_w(Ls) — the word-
/// automaton side of Theorem 3. Minimize() it to measure the 2^s bound.
Dfa Thm3TrieDfa(int s);

/// Theorem 5 family: tree words <a (<b>)^m <a B1...Bs a> a> with each
/// Bj ∈ {<a>, <b>} and block #(m mod s) forced to be <a>  (1-based; the
/// paper's i = m mod s with i ∈ {1..s}, realized as i = (m mod s) + 1).
///
/// Returns a deterministic *flat* NWA with O(s²) states.
Nwa Thm5FlatNwa(int s);

/// Direct membership oracle for Thm 5's language.
bool Thm5Member(const NestedWord& n, int s);

/// Enumerates the 2^s words of Thm 5's language with m = i (one block
/// pattern per choice vector), used by the bottom-up lower-bound check.
std::vector<NestedWord> Thm5Words(int s, int m);

/// Theorem 6 witness: the language of tree words
///   (<a)^k <b <c c> b> <c c> (a>)^k     for k ≥ 0, c ∈ {a,b},
/// where both <c> blocks carry the same symbol. Accepted by an NWA
/// (returned here); deterministic joinless automata provably cannot.
Nwa Thm6Nwa();

/// Direct membership oracle for Thm 6's language.
bool Thm6Member(const NestedWord& n);

/// Theorem 8 family: path(Ls) for Ls = Σ^s a Σ* a Σ^s over Σ = {a,b}.
/// Returns a deterministic NWA with O(s) states; deterministic top-down
/// and bottom-up automata need 2^s (measured via Lemma 3: the minimal DFA
/// of Ls, which equals its own reverse).
Nwa Thm8PathNwa(int s);

/// Direct membership oracle: n = path(w) with w ∈ Σ^s a Σ* a Σ^s.
bool Thm8Member(const NestedWord& n, int s);

/// NFA for the *word* language Ls = Σ^s a Σ* a Σ^s over {a,b} (2s+3
/// states); its determinization measures Lemma 3 / Theorem 8's 2^s bound.
Nfa Thm8WordNfa(int s);

}  // namespace nw

#endif  // NW_NWA_FAMILIES_H_
