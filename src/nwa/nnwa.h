// Nondeterministic nested word automata (paper §3.2).
//
// Semantics follow the journal formulation (Alur–Madhusudan, "Adding
// nesting structure to words", JACM 2009): a set Q0 of linear initial
// states and a set P0 of *hierarchical initial* states; the hierarchical
// edge of a pending return may carry any state of P0. The PODS'07
// presentation (pending returns read q0) is the special case P0 = Q0 =
// {q0}, which is what the deterministic class uses. This decoupling is
// what keeps the closure constructions (reverse, concatenation, star)
// finite-state; see DESIGN.md §2.
#ifndef NW_NWA_NNWA_H_
#define NW_NWA_NNWA_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "nw/nested_word.h"
#include "wordauto/dfa.h"

namespace nw {

/// Target pair of a nondeterministic call transition.
struct CallEdge {
  StateId linear;
  StateId hier;

  friend bool operator==(const CallEdge&, const CallEdge&) = default;
};

/// A (hier, target) pair of a return transition, grouped by (state, symbol).
struct ReturnEdge {
  StateId hier;
  StateId target;
};

/// Nondeterministic nested word automaton.
class Nnwa {
 public:
  explicit Nnwa(size_t num_symbols) : num_symbols_(num_symbols) {}

  StateId AddState(bool is_final = false);

  void AddInitial(StateId q) { initial_.push_back(q); }
  void AddHierInitial(StateId q) { hier_initial_.push_back(q); }
  void set_final(StateId q, bool f = true) { final_[q] = f; }
  bool is_final(StateId q) const { return final_[q]; }

  const std::vector<StateId>& initial() const { return initial_; }
  const std::vector<StateId>& hier_initial() const { return hier_initial_; }

  size_t num_states() const { return final_.size(); }
  size_t num_symbols() const { return num_symbols_; }

  /// Adds (q, a, q2) to δi.
  void AddInternal(StateId q, Symbol a, StateId q2);
  /// Adds (q, a, linear, hier) to δc.
  void AddCall(StateId q, Symbol a, StateId linear, StateId hier);
  /// Adds (q, hier, a, q2) to δr.
  void AddReturn(StateId q, StateId hier, Symbol a, StateId q2);

  const std::vector<StateId>& InternalTargets(StateId q, Symbol a) const {
    return internal_[q * num_symbols_ + a];
  }
  const std::vector<CallEdge>& CallTargets(StateId q, Symbol a) const {
    return call_[q * num_symbols_ + a];
  }
  /// All (hier, target) pairs of δr for (q, ·, a, ·).
  const std::vector<ReturnEdge>& ReturnEdges(StateId q, Symbol a) const {
    return return_[q * num_symbols_ + a];
  }
  /// Targets of δr(q, hier, a) specifically.
  std::vector<StateId> ReturnTargets(StateId q, StateId hier, Symbol a) const;

  size_t NumTransitions() const { return num_transitions_; }

  /// Membership by on-the-fly summary simulation (the §3.2 "dynamic
  /// programming" bound: O(|A|³·ℓ) time, depth-bounded space).
  bool Accepts(const NestedWord& n) const;

  /// Lifts a deterministic NWA (shares the semantics: P0 = {hier_initial}).
  static Nnwa FromNwa(const class Nwa& a);

 private:
  friend class NnwaRunner;

  size_t num_symbols_;
  std::vector<StateId> initial_;
  std::vector<StateId> hier_initial_;
  std::vector<bool> final_;
  std::vector<std::vector<StateId>> internal_;   // [q*|Σ|+a]
  std::vector<std::vector<CallEdge>> call_;      // [q*|Σ|+a]
  std::vector<std::vector<ReturnEdge>> return_;  // [q*|Σ|+a]
  size_t num_transitions_ = 0;
};

/// Streaming nondeterministic runner. The run state is a set of *summary
/// pairs* (anchor, current): `anchor` is the state right after the
/// innermost pending call (or a run start at top level) and `current` a
/// state reachable now. Calls push the pair set; matched returns recombine
/// through the pushed set. This is exactly the §3.2 determinization
/// construction executed lazily on one word.
class NnwaRunner {
 public:
  explicit NnwaRunner(const Nnwa& a) : a_(a) { Reset(); }

  void Reset();
  /// Consumes one position; returns false once the pair set is empty.
  bool Feed(TaggedSymbol t);
  bool Run(const NestedWord& n);

  bool dead() const { return pairs_.empty(); }
  bool Accepting() const;
  size_t StackDepth() const { return stack_.size(); }
  /// Current number of summary pairs (≤ |Q|²) — the DP frontier size.
  size_t FrontierSize() const { return pairs_.size(); }

 private:
  struct Frame {
    std::vector<uint64_t> pairs;
    Symbol call_symbol;
  };

  const Nnwa& a_;
  std::vector<uint64_t> pairs_;  // sorted packed (anchor<<32 | current)
  std::vector<Frame> stack_;
};

}  // namespace nw

#endif  // NW_NWA_NNWA_H_
