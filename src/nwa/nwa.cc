#include "nwa/nwa.h"

#include "support/check.h"

namespace nw {

StateId Nwa::AddState(bool is_final) {
  StateId id = static_cast<StateId>(final_.size());
  NW_CHECK_MSG(id < (1u << 24), "state id space exhausted");
  final_.push_back(is_final);
  internal_.resize(internal_.size() + num_symbols_, kNoState);
  call_linear_.resize(call_linear_.size() + num_symbols_, kNoState);
  call_hier_.resize(call_hier_.size() + num_symbols_, kNoState);
  return id;
}

void Nwa::SetInternal(StateId q, Symbol a, StateId q2) {
  NW_DCHECK(q < num_states() && a < num_symbols_ && q2 < num_states());
  internal_[q * num_symbols_ + a] = q2;
}

void Nwa::SetCall(StateId q, Symbol a, StateId linear, StateId hier) {
  NW_DCHECK(q < num_states() && a < num_symbols_);
  NW_DCHECK(linear < num_states() && hier < num_states());
  call_linear_[q * num_symbols_ + a] = linear;
  call_hier_[q * num_symbols_ + a] = hier;
}

void Nwa::SetReturn(StateId q, StateId hier, Symbol a, StateId q2) {
  // ReturnKey packs 24-bit states and a 16-bit symbol; an id outside these
  // ranges would silently collide with another key, so reject it loudly in
  // every build mode.
  NW_CHECK_MSG(q <= kMaxPackedState && hier <= kMaxPackedState,
               "state id %u/%u exceeds ReturnKey's 24-bit packing", q, hier);
  NW_CHECK_MSG(a <= kMaxPackedSymbol,
               "symbol id %u exceeds ReturnKey's 16-bit packing", a);
  NW_DCHECK(q < num_states() && hier < num_states() && a < num_symbols_);
  returns_[ReturnKey(q, hier, a)] = q2;
}

StateId Nwa::NextInternal(StateId q, Symbol a) const {
  StateId t = internal_[q * num_symbols_ + a];
  return t == kNoState ? sink_ : t;
}

StateId Nwa::NextCallLinear(StateId q, Symbol a) const {
  StateId t = call_linear_[q * num_symbols_ + a];
  return t == kNoState ? sink_ : t;
}

StateId Nwa::NextCallHier(StateId q, Symbol a) const {
  StateId t = call_hier_[q * num_symbols_ + a];
  return t == kNoState ? sink_ : t;
}

StateId Nwa::NextReturn(StateId q, StateId hier, Symbol a) const {
  auto it = returns_.find(ReturnKey(q, hier, a));
  return it == returns_.end() ? sink_ : it->second;
}

StateId Nwa::StepCall(StateId q, Symbol a, StateId* hier_out) const {
  if (q == kNoState) {
    *hier_out = kNoState;
    return kNoState;
  }
  StateId h = NextCallHier(q, a);
  StateId l = NextCallLinear(q, a);
  if (l == kNoState || h == kNoState) {
    *hier_out = kNoState;
    return kNoState;
  }
  *hier_out = h;
  return l;
}

StateId Nwa::StepReturn(StateId q, StateId hier, Symbol a) const {
  if (q == kNoState) return kNoState;
  if (hier == kNoState) hier = hier_initial_;
  return NextReturn(q, hier, a);
}

void Nwa::Totalize() {
  if (sink_ != kNoState) return;
  sink_ = AddState(false);
  // The sink absorbs: lookups fall through to sink_ automatically, and the
  // sink's own rows are left undefined on purpose — they resolve to sink_.
}

bool Nwa::Accepts(const NestedWord& n) const {
  NwaRunner r(*this);
  return r.Run(n);
}

std::vector<NwaReturnRule> Nwa::ReturnRules() const {
  std::vector<NwaReturnRule> rules;
  rules.reserve(returns_.size());
  for (const auto& [key, target] : returns_) {
    rules.push_back({static_cast<StateId>(key >> 40),
                     static_cast<StateId>((key >> 16) & kMaxPackedState),
                     static_cast<Symbol>(key & kMaxPackedSymbol), target});
  }
  return rules;
}

size_t Nwa::NumTransitions() const {
  size_t count = returns_.size();
  for (StateId t : internal_) count += t != kNoState;
  for (StateId t : call_linear_) count += t != kNoState;
  return count;
}

bool Nwa::IsWeak() const {
  for (StateId q = 0; q < num_states(); ++q) {
    for (Symbol a = 0; a < num_symbols_; ++a) {
      StateId h = call_hier_[q * num_symbols_ + a];
      if (h != kNoState && h != q) return false;
    }
  }
  return true;
}

bool Nwa::IsFlat() const {
  for (StateId q = 0; q < num_states(); ++q) {
    for (Symbol a = 0; a < num_symbols_; ++a) {
      StateId h = call_hier_[q * num_symbols_ + a];
      if (h != kNoState && h != hier_initial_) return false;
    }
  }
  return true;
}

bool Nwa::IsBottomUp() const {
  for (Symbol a = 0; a < num_symbols_; ++a) {
    StateId common = kNoState;
    bool first = true;
    for (StateId q = 0; q < num_states(); ++q) {
      StateId t = call_linear_[q * num_symbols_ + a];
      if (t == kNoState) continue;
      if (first) {
        common = t;
        first = false;
      } else if (t != common) {
        return false;
      }
    }
  }
  return true;
}

void NwaRunner::Reset() {
  state_ = a_.initial();
  dead_ = state_ == kNoState;
  stack_.clear();
  max_stack_ = 0;
}

bool NwaRunner::Feed(TaggedSymbol t) {
  if (dead_) return false;
  switch (t.kind) {
    case Kind::kInternal:
      state_ = a_.StepInternal(state_, t.symbol);
      break;
    case Kind::kCall: {
      StateId h;
      state_ = a_.StepCall(state_, t.symbol, &h);
      if (state_ == kNoState) break;
      stack_.push_back(h);
      if (stack_.size() > max_stack_) max_stack_ = stack_.size();
      break;
    }
    case Kind::kReturn: {
      StateId h = kNoState;  // pending return (paper: q_{−∞j} = q0)
      if (!stack_.empty()) {
        h = stack_.back();
        stack_.pop_back();
      }
      state_ = a_.StepReturn(state_, h, t.symbol);
      break;
    }
  }
  if (state_ == kNoState) dead_ = true;
  return !dead_;
}

bool NwaRunner::Run(const NestedWord& n) {
  Reset();
  for (const TaggedSymbol& t : n.tagged()) {
    if (!Feed(t)) return false;
  }
  return Accepting();
}

}  // namespace nw
