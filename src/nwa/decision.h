// Decision problems for nested word automata (§3.2): emptiness (cubic,
// via well-matched summaries — the same technique as for pushdown word
// automata), language inclusion and equivalence (via complementation and
// product, Exptime for nondeterministic inputs as the paper notes).
#ifndef NW_NWA_DECISION_H_
#define NW_NWA_DECISION_H_

#include <optional>

#include "nw/nested_word.h"
#include "nwa/nnwa.h"

namespace nw {

/// Emptiness result with an optional witness word.
struct EmptinessResult {
  bool empty;
  /// A member of the language when non-empty (shortest-ish derivation,
  /// not guaranteed minimal). Validated against the runner in tests.
  std::optional<NestedWord> witness;
};

/// Decides L(a) = ∅ by saturating well-matched summaries WM ⊆ Q×Q and
/// closing over pending returns then pending calls (in every nested word
/// all pending returns precede all pending calls).
EmptinessResult CheckEmptiness(const Nnwa& a);

/// Convenience wrapper.
inline bool IsEmpty(const Nnwa& a) { return CheckEmptiness(a).empty; }

/// L(a) ⊆ L(b)? Via a ∩ complement(b) = ∅. Exponential in |b| (the paper's
/// Exptime bound); returns a counterexample word when inclusion fails.
struct InclusionResult {
  bool included;
  std::optional<NestedWord> counterexample;
};
InclusionResult CheckInclusion(const Nnwa& a, const Nnwa& b);

/// L(a) = L(b)? Both inclusions; returns a separating word on failure.
struct EquivalenceResult {
  bool equivalent;
  std::optional<NestedWord> separator;
};
EquivalenceResult CheckEquivalence(const Nnwa& a, const Nnwa& b);

}  // namespace nw

#endif  // NW_NWA_DECISION_H_
