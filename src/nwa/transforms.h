// The paper's normal-form constructions between NWA subclasses:
//   Theorem 1 — every NWA has a *weak* equivalent with s·|Σ| states,
//   Theorem 2 — flat NWAs are exactly classical word automata over Σ̂,
//   Theorem 4 — every NWA has a weak *bottom-up* equivalent with s^s·|Σ|
//               states over well-matched words.
#ifndef NW_NWA_TRANSFORMS_H_
#define NW_NWA_TRANSFORMS_H_

#include "nwa/nwa.h"
#include "wordauto/dfa.h"

namespace nw {

/// Theorem 1: an equivalent weak NWA (hierarchical edges carry the current
/// state). States are reachable pairs (q, call-parent symbol) plus one
/// fresh hierarchical-initial marker; at most s·|Σ| + 1 states.
Nwa ToWeak(const Nwa& a);

/// Theorem 2 (one direction): interprets a word automaton over the tagged
/// alphabet Σ̂ (num_symbols = 3·|Σ|) as a flat NWA with the same states.
Nwa FlatFromDfa(const Dfa& d, size_t sigma_size);

/// Theorem 2 (other direction): a flat NWA as a word automaton over Σ̂.
/// Requires a.IsFlat().
Dfa DfaFromFlat(const Nwa& a);

/// Minimal flat NWA for a flat input (§3.3: "using the classical
/// algorithms for minimizing deterministic word automata").
Nwa MinimizeFlat(const Nwa& a);

/// Theorem 4: an equivalent weak bottom-up NWA over *well-matched* words
/// (the §3.4 caveat: bottom-up automata cannot see across pending calls,
/// so behaviour on non-well-matched input is unspecified — here: reject).
/// Input must be weak (apply ToWeak first); states are the reachable
/// functions f : Q → Q, at most s^s of them.
Nwa ToBottomUp(const Nwa& weak);

}  // namespace nw

#endif  // NW_NWA_TRANSFORMS_H_
