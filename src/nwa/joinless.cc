#include "nwa/joinless.h"

#include <map>
#include <set>
#include <tuple>

#include "support/check.h"

namespace nw {

StateId JoinlessNwa::AddState(bool hierarchical, bool is_final) {
  StateId id = static_cast<StateId>(final_.size());
  final_.push_back(is_final);
  hier_.push_back(hierarchical);
  discharge_.push_back(false);
  return id;
}

void JoinlessNwa::set_discharge(StateId q, bool d) {
  NW_CHECK_MSG(hier_[q], "only hierarchical states discharge (§3.5)");
  if (!custom_discharge_) {
    // Materialize the default (Qh ∩ F) before the first customization.
    for (StateId i = 0; i < num_states(); ++i) {
      discharge_[i] = hier_[i] && final_[i];
    }
    custom_discharge_ = true;
  }
  discharge_[q] = d;
}

void JoinlessNwa::AddInternal(StateId q, Symbol a, StateId q2) {
  NW_DCHECK(q < num_states() && q2 < num_states() && a < num_symbols_);
  NW_CHECK_MSG(!hier_[q] || hier_[q2],
               "hierarchical-mode internal must stay in Qh (§3.5)");
  internal_.push_back({q, a, q2});
}

void JoinlessNwa::AddCall(StateId q, Symbol a, StateId linear, StateId hier) {
  NW_DCHECK(q < num_states() && linear < num_states() &&
            hier < num_states() && a < num_symbols_);
  NW_CHECK_MSG(!hier_[q] || (hier_[linear] && hier_[hier]),
               "hierarchical-mode call must fork into Qh × Qh (§3.5)");
  call_.push_back({q, a, linear, hier});
}

void JoinlessNwa::AddReturn(StateId q, Symbol a, StateId q2) {
  NW_DCHECK(q < num_states() && q2 < num_states() && a < num_symbols_);
  NW_CHECK_MSG(!hier_[q] || hier_[q2],
               "a hierarchical return source must map into Qh (§3.5)");
  return_.push_back({q, a, q2});
}

bool JoinlessNwa::IsTopDown() const {
  for (bool h : hier_) {
    if (!h) return false;
  }
  return true;
}

bool JoinlessNwa::IsDeterministic() const {
  if (initial_.size() > 1) return false;
  std::set<std::pair<StateId, Symbol>> seen;
  for (const auto& t : internal_) {
    if (!seen.insert({t.q, t.a}).second) return false;
  }
  seen.clear();
  for (const auto& t : call_) {
    if (!seen.insert({t.q, t.a}).second) return false;
  }
  seen.clear();
  for (const auto& t : return_) {
    if (!seen.insert({t.q, t.a}).second) return false;
  }
  return true;
}

Nnwa JoinlessNwa::ToNnwa() const {
  Nnwa out(num_symbols_);
  for (StateId q = 0; q < num_states(); ++q) out.AddState(final_[q]);
  StateId bottom = out.AddState(false);  // pending-return marker
  for (StateId q : initial_) out.AddInitial(q);
  out.AddHierInitial(bottom);

  for (const auto& t : internal_) out.AddInternal(t.q, t.a, t.q2);
  for (const auto& t : call_) out.AddCall(t.q, t.a, t.linear, t.hier);

  // Rule (a): previous state linear, hierarchical edge carries an initial
  // state — pending edges (bottom marker) or a pushed member of Q0.
  std::set<StateId> anchors(initial_.begin(), initial_.end());
  anchors.insert(bottom);
  for (const auto& t : return_) {
    if (hier_[t.q]) continue;
    for (StateId h : anchors) out.AddReturn(t.q, h, t.a, t.q2);
  }
  // Rule (b): previous state discharging; step on the edge state t.q
  // (either mode). The transition exists for every discharging `prev`.
  for (const auto& t : return_) {
    for (StateId prev = 0; prev < num_states(); ++prev) {
      if (is_discharge(prev)) out.AddReturn(prev, t.q, t.a, t.q2);
    }
  }
  return out;
}

JoinlessNwa JoinlessNwa::FromNnwa(const Nnwa& a) {
  const size_t s = a.num_states();
  const size_t k = a.num_symbols();
  JoinlessNwa out(k);

  // Linear copies L(q): thread the top-level spine (internals, pending
  // returns, pending calls, and the borders of matched pairs).
  std::vector<StateId> lin(s);
  for (StateId q = 0; q < s; ++q) {
    lin[q] = out.AddState(/*hierarchical=*/false, a.is_final(q));
  }
  // Inside obligation pairs P(q, o): hierarchical, discharging iff q == o,
  // never word-end accepting (this is the discharge/final separation).
  std::vector<StateId> pin(s * s);
  for (StateId q = 0; q < s; ++q) {
    for (StateId o = 0; o < s; ++o) {
      pin[q * s + o] = out.AddState(/*hierarchical=*/true, false);
      if (q == o) out.set_discharge(pin[q * s + o]);
    }
  }
  // Junk marker pushed at pending-call guesses: enables no return rule, so
  // the guess is self-enforcing.
  StateId junk = out.AddState(/*hierarchical=*/true, false);
  // Continuation carriers parked on hierarchical edges of matched calls:
  // linear Y(q2, b) resumes the spine, hierarchical Yh(q2, o, b) resumes an
  // enclosing inside with obligation o. Interned on demand.
  std::map<std::pair<StateId, Symbol>, StateId> y_ids;
  std::map<std::tuple<StateId, StateId, Symbol>, StateId> yh_ids;
  auto y_lin = [&](StateId q2, Symbol b) {
    auto key = std::make_pair(q2, b);
    auto it = y_ids.find(key);
    if (it != y_ids.end()) return it->second;
    StateId id = out.AddState(/*hierarchical=*/false, false);
    out.AddReturn(id, b, lin[q2]);  // rule (b) steps on this edge state
    y_ids.emplace(key, id);
    return id;
  };
  auto y_hier = [&](StateId q2, StateId o, Symbol b) {
    auto key = std::make_tuple(q2, o, b);
    auto it = yh_ids.find(key);
    if (it != yh_ids.end()) return it->second;
    StateId id = out.AddState(/*hierarchical=*/true, false);
    out.AddReturn(id, b, pin[q2 * s + o]);
    yh_ids.emplace(key, id);
    return id;
  };

  for (StateId q0 : a.initial()) out.AddInitial(lin[q0]);

  for (StateId q = 0; q < s; ++q) {
    for (Symbol c = 0; c < k; ++c) {
      for (StateId q2 : a.InternalTargets(q, c)) {
        out.AddInternal(lin[q], c, lin[q2]);
        for (StateId o = 0; o < s; ++o) {
          out.AddInternal(pin[q * s + o], c, pin[q2 * s + o]);
        }
      }
      // Pending returns: only on the linear spine (a pending return can
      // never sit inside a matched pair — the edges would cross).
      for (const ReturnEdge& e : a.ReturnEdges(q, c)) {
        for (StateId p0 : a.hier_initial()) {
          if (e.hier == p0) {
            out.AddReturn(lin[q], c, lin[e.target]);
            break;
          }
        }
      }
      for (const CallEdge& ce : a.CallTargets(q, c)) {
        // Pending-call guess: stay on the linear spine, push junk.
        out.AddCall(lin[q], c, lin[ce.linear], junk);
        // A pending call inside a matched pair is impossible, so inside
        // states need no pending-call transitions.
        // Matched-call guess: pair the call edge with every A-return
        // (q1, qh, b, q2) sharing its hierarchical state qh. The inside
        // must run from ce.linear to q1; the continuation is parked on the
        // hierarchical edge and resumed by rule (b) at the return.
        for (StateId q1 = 0; q1 < s; ++q1) {
          for (Symbol b = 0; b < k; ++b) {
            for (const ReturnEdge& re : a.ReturnEdges(q1, b)) {
              if (re.hier != ce.hier) continue;
              StateId inside = pin[ce.linear * s + q1];
              out.AddCall(lin[q], c, inside, y_lin(re.target, b));
              for (StateId o = 0; o < s; ++o) {
                out.AddCall(pin[q * s + o], c, inside,
                            y_hier(re.target, o, b));
              }
            }
          }
        }
      }
    }
  }
  return out;
}

}  // namespace nw
