#include <algorithm>

#include "nwa/language_ops.h"

#include <vector>

#include "nwa/determinize.h"
#include "support/check.h"

namespace nw {

Nnwa Union(const Nnwa& a, const Nnwa& b) {
  NW_CHECK(a.num_symbols() == b.num_symbols());
  const size_t k = a.num_symbols();
  Nnwa out(k);
  auto add_copy = [&](const Nnwa& src, StateId offset) {
    for (StateId q = 0; q < src.num_states(); ++q) {
      StateId id = out.AddState(src.is_final(q));
      NW_CHECK(id == q + offset);
    }
    for (StateId q : src.initial()) out.AddInitial(q + offset);
    for (StateId p : src.hier_initial()) out.AddHierInitial(p + offset);
    for (StateId q = 0; q < src.num_states(); ++q) {
      for (Symbol c = 0; c < k; ++c) {
        for (StateId t : src.InternalTargets(q, c)) {
          out.AddInternal(q + offset, c, t + offset);
        }
        for (const CallEdge& e : src.CallTargets(q, c)) {
          out.AddCall(q + offset, c, e.linear + offset, e.hier + offset);
        }
        for (const ReturnEdge& e : src.ReturnEdges(q, c)) {
          out.AddReturn(q + offset, e.hier + offset, c, e.target + offset);
        }
      }
    }
  };
  add_copy(a, 0);
  add_copy(b, static_cast<StateId>(a.num_states()));
  return out;
}

Nnwa Intersect(const Nnwa& a, const Nnwa& b) {
  NW_CHECK(a.num_symbols() == b.num_symbols());
  const size_t k = a.num_symbols();
  const size_t nb = b.num_states();
  Nnwa out(k);
  auto id = [&](StateId p, StateId q) {
    return static_cast<StateId>(p * nb + q);
  };
  for (StateId p = 0; p < a.num_states(); ++p) {
    for (StateId q = 0; q < nb; ++q) {
      StateId s = out.AddState(a.is_final(p) && b.is_final(q));
      NW_CHECK(s == id(p, q));
    }
  }
  for (StateId p : a.initial()) {
    for (StateId q : b.initial()) out.AddInitial(id(p, q));
  }
  for (StateId p : a.hier_initial()) {
    for (StateId q : b.hier_initial()) out.AddHierInitial(id(p, q));
  }
  for (StateId p = 0; p < a.num_states(); ++p) {
    for (StateId q = 0; q < nb; ++q) {
      for (Symbol c = 0; c < k; ++c) {
        for (StateId tp : a.InternalTargets(p, c)) {
          for (StateId tq : b.InternalTargets(q, c)) {
            out.AddInternal(id(p, q), c, id(tp, tq));
          }
        }
        for (const CallEdge& ea : a.CallTargets(p, c)) {
          for (const CallEdge& eb : b.CallTargets(q, c)) {
            out.AddCall(id(p, q), c, id(ea.linear, eb.linear),
                        id(ea.hier, eb.hier));
          }
        }
        for (const ReturnEdge& ea : a.ReturnEdges(p, c)) {
          for (const ReturnEdge& eb : b.ReturnEdges(q, c)) {
            out.AddReturn(id(p, q), id(ea.hier, eb.hier), c,
                          id(ea.target, eb.target));
          }
        }
      }
    }
  }
  return out;
}

Nwa Complement(const Nnwa& a) {
  Nwa det = Determinize(a).nwa;
  det.Totalize();
  // Flipping every state's finality is sound: hierarchical carrier states
  // (including the pending marker) are never the linear state of a run.
  for (StateId q = 0; q < det.num_states(); ++q) {
    det.set_final(q, !det.is_final(q));
  }
  return det;
}

Nnwa ComplementN(const Nnwa& a) { return Nnwa::FromNwa(Complement(a)); }

Nnwa Concat(const Nnwa& a, const Nnwa& b) {
  NW_CHECK(a.num_symbols() == b.num_symbols());
  const size_t k = a.num_symbols();
  // Disjoint sum; phase-a states come first.
  Nnwa out = Union(a, b);
  const StateId off = static_cast<StateId>(a.num_states());

  // Fix initials and finals: the union added both sides' initials and
  // finals; concatenation starts only in a's initials (plus b's if
  // ε ∈ L(a)) and accepts only in b's finals (plus a's if ε ∈ L(b)).
  bool a_eps = false;
  for (StateId q : a.initial()) a_eps = a_eps || a.is_final(q);
  bool b_eps = false;
  for (StateId q : b.initial()) b_eps = b_eps || b.is_final(q);
  // Rebuild: Union's state layout is known, so construct fresh.
  Nnwa fresh(k);
  for (StateId q = 0; q < a.num_states(); ++q) {
    fresh.AddState(a.is_final(q) && b_eps);
  }
  for (StateId q = 0; q < b.num_states(); ++q) {
    fresh.AddState(b.is_final(q));
  }
  for (StateId q : a.initial()) fresh.AddInitial(q);
  if (a_eps) {
    for (StateId q : b.initial()) fresh.AddInitial(q + off);
  }
  for (StateId p : a.hier_initial()) fresh.AddHierInitial(p);
  for (StateId p : b.hier_initial()) fresh.AddHierInitial(p + off);

  // Phase-a transitions.
  for (StateId q = 0; q < a.num_states(); ++q) {
    for (Symbol c = 0; c < k; ++c) {
      for (StateId t : a.InternalTargets(q, c)) fresh.AddInternal(q, c, t);
      for (const CallEdge& e : a.CallTargets(q, c)) {
        fresh.AddCall(q, c, e.linear, e.hier);
      }
      for (const ReturnEdge& e : a.ReturnEdges(q, c)) {
        fresh.AddReturn(q, e.hier, c, e.target);
      }
    }
  }
  // Phase-b transitions, plus switch copies from every final of a, plus
  // the cross-boundary pending rule: popping any phase-a frame in phase b
  // reads as a pending return of b.
  std::vector<bool> b_p0(b.num_states(), false);
  for (StateId p : b.hier_initial()) b_p0[p] = true;
  for (StateId q = 0; q < b.num_states(); ++q) {
    for (Symbol c = 0; c < k; ++c) {
      for (StateId t : b.InternalTargets(q, c)) {
        fresh.AddInternal(q + off, c, t + off);
      }
      for (const CallEdge& e : b.CallTargets(q, c)) {
        fresh.AddCall(q + off, c, e.linear + off, e.hier + off);
      }
      for (const ReturnEdge& e : b.ReturnEdges(q, c)) {
        fresh.AddReturn(q + off, e.hier + off, c, e.target + off);
        if (b_p0[e.hier]) {
          // Cross-boundary: any value pushed by the a-phase is "pending"
          // from b's point of view.
          for (StateId ha = 0; ha < a.num_states(); ++ha) {
            fresh.AddReturn(q + off, ha, c, e.target + off);
          }
        }
      }
      // Switch: b's first transition may fire from any final state of a.
      const bool q_is_initial_b =
          std::find(b.initial().begin(), b.initial().end(), q) !=
          b.initial().end();
      if (!q_is_initial_b) continue;
      for (StateId f = 0; f < a.num_states(); ++f) {
        if (!a.is_final(f)) continue;
        for (StateId t : b.InternalTargets(q, c)) {
          fresh.AddInternal(f, c, t + off);
        }
        for (const CallEdge& e : b.CallTargets(q, c)) {
          fresh.AddCall(f, c, e.linear + off, e.hier + off);
        }
        for (const ReturnEdge& e : b.ReturnEdges(q, c)) {
          if (b_p0[e.hier]) {
            // The switch position is a return: it pops either a true
            // pending edge (some p0 of the combined automaton) or an
            // a-phase frame; both read as pending for b.
            for (StateId p : b.hier_initial()) {
              fresh.AddReturn(f, p + off, c, e.target + off);
            }
            for (StateId ha = 0; ha < a.num_states(); ++ha) {
              fresh.AddReturn(f, ha, c, e.target + off);
            }
          }
        }
      }
    }
  }
  (void)out;
  return fresh;
}

Nnwa Star(const Nnwa& a) {
  const size_t k = a.num_symbols();
  const size_t s = a.num_states();
  // States (q, bit): bit = 1 iff no currently-open call of this factor
  // (the stack is at the factor's floor). Frames store the bit to restore.
  Nnwa out(k);
  auto id = [&](StateId q, int bit) {
    return static_cast<StateId>(2 * q + bit);
  };
  for (StateId q = 0; q < s; ++q) {
    out.AddState(false);                 // (q, 0)
    out.AddState(a.is_final(q));         // (q, 1)
  }
  // Word-end acceptance: the last factor may end with open calls, so a
  // final state accepts at either bit.
  for (StateId q = 0; q < s; ++q) {
    if (a.is_final(q)) out.set_final(id(q, 0));
  }
  StateId eps = out.AddState(true);  // accepts the empty word
  StateId bottom = out.AddState(false);
  for (StateId q : a.initial()) out.AddInitial(id(q, 1));
  out.AddInitial(eps);
  out.AddHierInitial(bottom);

  // `sources` enumerates the in-factor source states for a transition of
  // A from state q: the plain copies of q, plus — when q is initial in A —
  // every final copy (factor switch: a new factor starts at this symbol).
  auto sources = [&](StateId q, int bit) {
    std::vector<std::pair<StateId, bool>> src;  // (state, resets_to_floor)
    src.push_back({id(q, bit), false});
    bool q_initial = std::find(a.initial().begin(), a.initial().end(), q) !=
                     a.initial().end();
    if (q_initial && bit == 1) {
      for (StateId f = 0; f < s; ++f) {
        if (!a.is_final(f)) continue;
        src.push_back({id(f, 0), true});
        src.push_back({id(f, 1), true});
      }
    }
    return src;
  };

  for (StateId q = 0; q < s; ++q) {
    for (Symbol c = 0; c < k; ++c) {
      for (StateId t : a.InternalTargets(q, c)) {
        // Internal keeps the bit; a switch restarts at the floor.
        for (auto [from, sw] : sources(q, 0)) {
          if (!sw) out.AddInternal(from, c, id(t, 0));
        }
        for (auto [from, sw] : sources(q, 1)) out.AddInternal(from, c, id(t, 1));
      }
      for (const CallEdge& e : a.CallTargets(q, c)) {
        // Push stores the pre-push bit; linear goes above the floor.
        for (auto [from, sw] : sources(q, 0)) {
          if (!sw) out.AddCall(from, c, id(e.linear, 0), id(e.hier, 0));
        }
        for (auto [from, sw] : sources(q, 1)) {
          out.AddCall(from, c, id(e.linear, 0), id(e.hier, 1));
        }
      }
      for (const ReturnEdge& e : a.ReturnEdges(q, c)) {
        // Above the floor: a genuine match within the current factor;
        // restore the stored bit.
        for (auto [from, sw] : sources(q, 0)) {
          if (sw) continue;
          out.AddReturn(from, id(e.hier, 0), c, id(e.target, 0));
          out.AddReturn(from, id(e.hier, 1), c, id(e.target, 1));
        }
        // At the floor: the pop reaches below the current factor — only
        // A's pending rules apply, against any popped frame or the true
        // bottom; the bit stays 1.
        bool pending_rule = false;
        for (StateId p0 : a.hier_initial()) pending_rule |= e.hier == p0;
        if (!pending_rule) continue;
        for (auto [from, sw] : sources(q, 1)) {
          out.AddReturn(from, bottom, c, id(e.target, 1));
          for (StateId h = 0; h < s; ++h) {
            out.AddReturn(from, id(h, 0), c, id(e.target, 1));
            out.AddReturn(from, id(h, 1), c, id(e.target, 1));
          }
        }
      }
    }
  }
  return out;
}

Nnwa ReverseLang(const Nnwa& a) {
  // Reversal swaps the roles of the four boundary sets: initials ↔ finals
  // and pending-return anchors (P0) ↔ pending-*call* constraints. The
  // target model has no pending-call acceptance set, so the construction
  // fuses in its normalization: state bit b = "the stack holds a frame
  // pushed by a matched-guess", which must be 0 at the end. A reversed
  // pending call derived from an original *pending* return transition
  // pushes the harmless π frame; one derived from a matched return pushes
  // a (hier, b) frame that must be popped (checked against the original
  // call transition) before acceptance.
  const size_t k = a.num_symbols();
  const size_t s = a.num_states();
  Nnwa out(k);
  auto id = [&](StateId q, int bit) {
    return static_cast<StateId>(2 * q + bit);
  };
  std::vector<bool> is_init(s, false);
  for (StateId q : a.initial()) is_init[q] = true;
  for (StateId q = 0; q < s; ++q) {
    out.AddState(is_init[q]);  // (q, 0): reversed-final iff initial in a
    out.AddState(false);       // (q, 1): never accepting (open frame)
  }
  StateId pending_marker = out.AddState(false);  // p̂: reversed P0
  StateId pi = out.AddState(false);              // π: pending-ok frame
  out.AddHierInitial(pending_marker);
  for (StateId q = 0; q < s; ++q) {
    if (a.is_final(q)) out.AddInitial(id(q, 0));
  }
  std::vector<bool> in_p0(s, false);
  for (StateId p : a.hier_initial()) in_p0[p] = true;

  for (StateId q = 0; q < s; ++q) {
    for (Symbol c = 0; c < k; ++c) {
      for (StateId t : a.InternalTargets(q, c)) {
        for (int b : {0, 1}) out.AddInternal(id(t, b), c, id(q, b));
      }
      for (const CallEdge& e : a.CallTargets(q, c)) {
        // Original call ⇒ reversed return. Matched: pop the (e.hier, b')
        // frame the reversed call pushed, restoring b'. Pending: the
        // original call's frame was never read, so any edge works — the
        // reversed pending return reads the marker.
        for (int b : {0, 1}) {
          out.AddReturn(id(e.linear, 1), id(e.hier, b), c, id(q, b));
        }
        for (int b : {0, 1}) {
          out.AddReturn(id(e.linear, b), pending_marker, c, id(q, b));
        }
      }
      for (const ReturnEdge& e : a.ReturnEdges(q, c)) {
        // Original return ⇒ reversed call.
        // Matched-guess: push the consumed hierarchical state tagged with
        // the current bit; the bit rises to 1 until the frame is popped.
        for (int b : {0, 1}) {
          out.AddCall(id(e.target, b), c, id(q, 1), id(e.hier, b));
        }
        // Pending-guess: only original *pending* return transitions can
        // stand for a reversed pending call; push π (never legally popped).
        if (in_p0[e.hier]) {
          for (int b : {0, 1}) {
            out.AddCall(id(e.target, b), c, id(q, b), pi);
          }
        }
      }
    }
  }
  return out;
}

}  // namespace nw
