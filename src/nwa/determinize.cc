#include "nwa/determinize.h"

#include <algorithm>
#include <map>
#include <unordered_map>
#include <utility>

#include "support/check.h"

namespace nw {
namespace {

uint64_t Pack(StateId anchor, StateId cur) {
  return (static_cast<uint64_t>(anchor) << 32) | cur;
}
StateId Anchor(uint64_t p) { return static_cast<StateId>(p >> 32); }
StateId Cur(uint64_t p) { return static_cast<StateId>(p & 0xffffffffu); }

void SortUnique(std::vector<uint64_t>* v) {
  std::sort(v->begin(), v->end());
  v->erase(std::unique(v->begin(), v->end()), v->end());
}

using PairSet = std::vector<uint64_t>;

struct Builder {
  const Nnwa& a;
  Nwa out;
  StateId p0_marker;

  // Interning tables. Linear states are keyed by their pair set; hier
  // states by (pair set, call symbol).
  std::map<PairSet, StateId> linear_ids;
  std::map<std::pair<PairSet, Symbol>, StateId> hier_ids;
  std::vector<const PairSet*> linear_sets;  // by dense linear index
  std::vector<StateId> linear_state_of;     // dense linear index -> state id
  std::vector<std::pair<const PairSet*, Symbol>> hier_sets;
  std::vector<StateId> hier_state_of;

  // (linear dense index, hier dense index or kMarker) pairs still to get
  // their return transitions.
  static constexpr uint32_t kMarker = UINT32_MAX;
  std::vector<std::pair<uint32_t, uint32_t>> ret_work;
  // Linear dense indices whose internal/call transitions are pending.
  std::vector<uint32_t> lin_work;

  explicit Builder(const Nnwa& nnwa) : a(nnwa), out(nnwa.num_symbols()) {
    p0_marker = out.AddState(false);
    out.set_hier_initial(p0_marker);
  }

  bool IsFinalSet(const PairSet& s) const {
    for (uint64_t p : s) {
      if (a.is_final(Cur(p))) return true;
    }
    return false;
  }

  StateId InternLinear(PairSet s) {
    auto it = linear_ids.find(s);
    if (it != linear_ids.end()) return it->second;
    StateId id = out.AddState(IsFinalSet(s));
    auto [pos, inserted] = linear_ids.emplace(std::move(s), id);
    NW_CHECK(inserted);
    uint32_t dense = static_cast<uint32_t>(linear_sets.size());
    linear_sets.push_back(&pos->first);
    linear_state_of.push_back(id);
    lin_work.push_back(dense);
    // Pair the new linear state with every known hierarchical source,
    // including the pending-return marker.
    ret_work.push_back({dense, kMarker});
    for (uint32_t h = 0; h < hier_sets.size(); ++h) {
      ret_work.push_back({dense, h});
    }
    return id;
  }

  StateId InternHier(const PairSet& s, Symbol call_sym) {
    auto key = std::make_pair(s, call_sym);
    auto it = hier_ids.find(key);
    if (it != hier_ids.end()) return it->second;
    StateId id = out.AddState(false);
    auto [pos, inserted] = hier_ids.emplace(std::move(key), id);
    NW_CHECK(inserted);
    uint32_t dense = static_cast<uint32_t>(hier_sets.size());
    hier_sets.push_back({&pos->first.first, call_sym});
    hier_state_of.push_back(id);
    for (uint32_t l = 0; l < linear_sets.size(); ++l) {
      ret_work.push_back({l, dense});
    }
    return id;
  }

  PairSet StepInternal(const PairSet& s, Symbol sym) const {
    PairSet next;
    for (uint64_t p : s) {
      for (StateId q2 : a.InternalTargets(Cur(p), sym)) {
        next.push_back(Pack(Anchor(p), q2));
      }
    }
    SortUnique(&next);
    return next;
  }

  PairSet StepCallLinear(const PairSet& s, Symbol sym) const {
    PairSet next;
    for (uint64_t p : s) {
      for (const CallEdge& e : a.CallTargets(Cur(p), sym)) {
        next.push_back(Pack(e.linear, e.linear));
      }
    }
    SortUnique(&next);
    return next;
  }

  PairSet StepPendingReturn(const PairSet& s, Symbol sym) const {
    PairSet next;
    for (uint64_t p : s) {
      for (const ReturnEdge& e : a.ReturnEdges(Cur(p), sym)) {
        for (StateId p0 : a.hier_initial()) {
          if (e.hier == p0) {
            next.push_back(Pack(Anchor(p), e.target));
            break;
          }
        }
      }
    }
    SortUnique(&next);
    return next;
  }

  PairSet StepMatchedReturn(const PairSet& inner, const PairSet& pre,
                            Symbol call_sym, Symbol ret_sym) const {
    std::unordered_map<StateId, std::vector<StateId>> by_anchor;
    for (uint64_t p : inner) by_anchor[Anchor(p)].push_back(Cur(p));
    PairSet next;
    for (uint64_t p : pre) {
      for (const CallEdge& e : a.CallTargets(Cur(p), call_sym)) {
        auto it = by_anchor.find(e.linear);
        if (it == by_anchor.end()) continue;
        for (StateId q1 : it->second) {
          for (const ReturnEdge& r : a.ReturnEdges(q1, ret_sym)) {
            if (r.hier == e.hier) next.push_back(Pack(Anchor(p), r.target));
          }
        }
      }
    }
    SortUnique(&next);
    return next;
  }

  DeterminizeResult Build() {
    PairSet init;
    for (StateId q : a.initial()) init.push_back(Pack(q, q));
    SortUnique(&init);
    StateId start = InternLinear(std::move(init));
    out.set_initial(start);
    out.set_hier_initial(p0_marker);

    while (!lin_work.empty() || !ret_work.empty()) {
      if (!lin_work.empty()) {
        uint32_t dense = lin_work.back();
        lin_work.pop_back();
        StateId from = linear_state_of[dense];
        for (Symbol sym = 0; sym < a.num_symbols(); ++sym) {
          // Copy: interning may invalidate the pointer vector's target —
          // it will not (std::map nodes are stable) but the set reference
          // may be invalidated by reallocation of linear_sets itself.
          PairSet cur = *linear_sets[dense];
          PairSet in = StepInternal(cur, sym);
          if (!in.empty()) {
            out.SetInternal(from, sym, InternLinear(std::move(in)));
          }
          PairSet cl = StepCallLinear(cur, sym);
          if (!cl.empty()) {
            StateId hier = InternHier(cur, sym);
            out.SetCall(from, sym, InternLinear(std::move(cl)), hier);
          }
        }
        continue;
      }
      auto [ldense, hdense] = ret_work.back();
      ret_work.pop_back();
      StateId from = linear_state_of[ldense];
      for (Symbol sym = 0; sym < a.num_symbols(); ++sym) {
        PairSet inner = *linear_sets[ldense];
        PairSet next;
        StateId hier_state;
        if (hdense == kMarker) {
          next = StepPendingReturn(inner, sym);
          hier_state = p0_marker;
        } else {
          next = StepMatchedReturn(inner, *hier_sets[hdense].first,
                                   hier_sets[hdense].second, sym);
          hier_state = hier_state_of[hdense];
        }
        if (!next.empty()) {
          out.SetReturn(from, hier_state, sym, InternLinear(std::move(next)));
        }
      }
    }

    DeterminizeResult res{std::move(out), linear_sets.size(),
                          hier_sets.size()};
    return res;
  }
};

}  // namespace

DeterminizeResult Determinize(const Nnwa& a) {
  Builder b(a);
  return b.Build();
}

}  // namespace nw
