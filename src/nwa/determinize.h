// Determinization of nested word automata (paper §3.2).
//
// A deterministic state is a set S ⊆ Q×Q of summary pairs (anchor, current):
// `anchor` is a state of the simulated automaton right after the innermost
// pending call (a run start at top level) and `current` a state it could be
// in now. A call pushes the pre-call set tagged with the call symbol along
// the hierarchical edge and restarts the linear set at {(ql, ql)}; the
// matched return recombines the inner set with the popped set; pending
// returns apply δr with hierarchical states drawn from P0. The paper's
// bound: 2^{s²} states (× |Σ| hierarchical tags in this explicit form).
#ifndef NW_NWA_DETERMINIZE_H_
#define NW_NWA_DETERMINIZE_H_

#include "nwa/nnwa.h"
#include "nwa/nwa.h"

namespace nw {

/// Result of determinization with the experiment metrics of E-DET.
struct DeterminizeResult {
  Nwa nwa;                 ///< language-equivalent deterministic automaton
  size_t linear_states;    ///< number of reachable pair-set states
  size_t hier_states;      ///< number of (pair-set, call symbol) tags
};

/// Builds the reachable part of the §3.2 subset-of-pairs automaton.
/// The result accepts exactly L(a) (validated by randomized differential
/// tests against the nondeterministic summary runner).
DeterminizeResult Determinize(const Nnwa& a);

}  // namespace nw

#endif  // NW_NWA_DETERMINIZE_H_
