#include "nwa/decision.h"

#include <unordered_map>
#include <vector>

#include "nwa/language_ops.h"
#include "support/check.h"

namespace nw {
namespace {

uint64_t Pack(StateId a, StateId b) {
  return (static_cast<uint64_t>(a) << 32) | b;
}

// Derivation record for a well-matched summary (q, q'), for witness
// reconstruction.
struct Deriv {
  enum Kind { kBase, kInternal, kWrap } kind;
  uint64_t prev = 0;   // summary this one extends
  uint64_t inner = 0;  // inner summary (kWrap)
  Symbol call_sym = 0;
  Symbol ret_sym = 0;  // also the internal symbol for kInternal
};

struct Summaries {
  std::unordered_map<uint64_t, Deriv> deriv;
  std::vector<std::vector<StateId>> by_first;   // q -> list of q'
  std::vector<std::vector<StateId>> by_second;  // q' -> list of q

  bool Has(StateId q, StateId q2) const {
    return deriv.count(Pack(q, q2)) != 0;
  }
};

// Appends the witness of summary `key` to *out.
void BuildSummaryWitness(const Summaries& s, uint64_t key,
                         std::vector<TaggedSymbol>* out) {
  const Deriv& d = s.deriv.at(key);
  switch (d.kind) {
    case Deriv::kBase:
      return;
    case Deriv::kInternal:
      BuildSummaryWitness(s, d.prev, out);
      out->push_back(Internal(d.ret_sym));
      return;
    case Deriv::kWrap:
      BuildSummaryWitness(s, d.prev, out);
      out->push_back(Call(d.call_sym));
      BuildSummaryWitness(s, d.inner, out);
      out->push_back(Return(d.ret_sym));
      return;
  }
}

// Saturates the well-matched summary relation WM ⊆ Q×Q:
//   (q,q) always; extend by internal transitions; wrap-and-extend by
//   matched call/return pairs around an inner summary.
Summaries SaturateSummaries(const Nnwa& a) {
  const size_t s = a.num_states();
  const size_t k = a.num_symbols();
  Summaries sum;
  sum.by_first.resize(s);
  sum.by_second.resize(s);

  // Calls indexed by their linear target, for the inner-of-wrap direction.
  struct CallBySrc {
    StateId src;
    Symbol sym;
    StateId hier;
  };
  std::vector<std::vector<CallBySrc>> calls_by_ltarget(s);
  for (StateId q = 0; q < s; ++q) {
    for (Symbol c = 0; c < k; ++c) {
      for (const CallEdge& e : a.CallTargets(q, c)) {
        calls_by_ltarget[e.linear].push_back({q, c, e.hier});
      }
    }
  }

  std::vector<uint64_t> work;
  auto add = [&](StateId q, StateId q2, Deriv d) {
    uint64_t key = Pack(q, q2);
    if (sum.deriv.count(key)) return;
    sum.deriv.emplace(key, d);
    sum.by_first[q].push_back(q2);
    sum.by_second[q2].push_back(q);
    work.push_back(key);
  };
  for (StateId q = 0; q < s; ++q) add(q, q, {Deriv::kBase, 0, 0, 0, 0});

  // Applies the wrap rule given left summary (q, q1), call transition
  // (q1, csym, ql, qh) and inner summary (ql, q2).
  auto wrap = [&](StateId q, StateId q1, Symbol csym, StateId qh, StateId ql,
                  StateId q2) {
    for (Symbol b = 0; b < k; ++b) {
      for (const ReturnEdge& re : a.ReturnEdges(q2, b)) {
        if (re.hier != qh) continue;
        add(q, re.target,
            {Deriv::kWrap, Pack(q, q1), Pack(ql, q2), csym, b});
      }
    }
  };

  while (!work.empty()) {
    uint64_t key = work.back();
    work.pop_back();
    StateId q = static_cast<StateId>(key >> 32);
    StateId q1 = static_cast<StateId>(key & 0xffffffffu);
    // Extend by an internal transition.
    for (Symbol c = 0; c < k; ++c) {
      for (StateId t : a.InternalTargets(q1, c)) {
        add(q, t, {Deriv::kInternal, key, 0, 0, c});
      }
    }
    // This pair as the *left* part of a wrap.
    for (Symbol c = 0; c < k; ++c) {
      for (const CallEdge& e : a.CallTargets(q1, c)) {
        // Inner summaries starting at e.linear. Copy: `add` mutates.
        std::vector<StateId> inners = sum.by_first[e.linear];
        for (StateId q2 : inners) wrap(q, q1, c, e.hier, e.linear, q2);
      }
    }
    // This pair as the *inner* part of a wrap: q plays ql, q1 plays q2.
    for (const CallBySrc& cb : calls_by_ltarget[q]) {
      std::vector<StateId> lefts = sum.by_second[cb.src];
      for (StateId q0 : lefts) wrap(q0, cb.src, cb.sym, cb.hier, q, q1);
    }
  }
  return sum;
}

}  // namespace

EmptinessResult CheckEmptiness(const Nnwa& a) {
  const size_t s = a.num_states();
  const size_t k = a.num_symbols();
  Summaries sum = SaturateSummaries(a);

  // Linear reachability in two phases: pending returns may only precede
  // pending calls. Parent edges record how each (state, phase) was
  // reached, for witness reconstruction.
  struct Parent {
    StateId prev;
    int prev_phase;
    enum Kind { kStart, kSummary, kPendingReturn, kPendingCall } kind;
    uint64_t summary = 0;
    Symbol sym = 0;
  };
  // reach[phase][state]
  std::vector<std::vector<std::optional<Parent>>> reach(
      2, std::vector<std::optional<Parent>>(s));
  std::vector<std::pair<int, StateId>> work;
  auto visit = [&](int phase, StateId q, Parent p) {
    if (reach[phase][q].has_value()) return;
    reach[phase][q] = p;
    work.push_back({phase, q});
  };
  for (StateId q0 : a.initial()) {
    visit(0, q0, {0, 0, Parent::kStart, 0, 0});
  }
  while (!work.empty()) {
    auto [phase, q] = work.back();
    work.pop_back();
    // Well-matched segment.
    for (StateId t : sum.by_first[q]) {
      visit(phase, t, {q, phase, Parent::kSummary, Pack(q, t), 0});
    }
    // Pending return (phase 0 only).
    if (phase == 0) {
      for (Symbol c = 0; c < k; ++c) {
        for (const ReturnEdge& e : a.ReturnEdges(q, c)) {
          for (StateId p0 : a.hier_initial()) {
            if (e.hier == p0) {
              visit(0, e.target, {q, 0, Parent::kPendingReturn, 0, c});
              break;
            }
          }
        }
      }
    }
    // Pending call: moves (and keeps) the run in phase 1.
    for (Symbol c = 0; c < k; ++c) {
      for (const CallEdge& e : a.CallTargets(q, c)) {
        visit(1, e.linear, {q, phase, Parent::kPendingCall, 0, c});
      }
    }
  }

  for (int phase = 0; phase < 2; ++phase) {
    for (StateId q = 0; q < s; ++q) {
      if (!reach[phase][q].has_value() || !a.is_final(q)) continue;
      // Reconstruct the witness by walking parents backwards.
      std::vector<Parent> chain;
      int ph = phase;
      StateId cur = q;
      while (true) {
        Parent p = *reach[ph][cur];
        chain.push_back(p);
        if (p.kind == Parent::kStart) break;
        cur = p.prev;
        ph = p.prev_phase;
      }
      std::vector<TaggedSymbol> word;
      for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
        switch (it->kind) {
          case Parent::kStart:
            break;
          case Parent::kSummary:
            BuildSummaryWitness(sum, it->summary, &word);
            break;
          case Parent::kPendingReturn:
            word.push_back(Return(it->sym));
            break;
          case Parent::kPendingCall:
            word.push_back(Call(it->sym));
            break;
        }
      }
      return {false, NestedWord(std::move(word))};
    }
  }
  return {true, std::nullopt};
}

InclusionResult CheckInclusion(const Nnwa& a, const Nnwa& b) {
  Nnwa not_b = ComplementN(b);
  EmptinessResult r = CheckEmptiness(Intersect(a, not_b));
  if (r.empty) return {true, std::nullopt};
  return {false, std::move(r.witness)};
}

EquivalenceResult CheckEquivalence(const Nnwa& a, const Nnwa& b) {
  InclusionResult ab = CheckInclusion(a, b);
  if (!ab.included) return {false, std::move(ab.counterexample)};
  InclusionResult ba = CheckInclusion(b, a);
  if (!ba.included) return {false, std::move(ba.counterexample)};
  return {true, std::nullopt};
}

}  // namespace nw
