// JSON as nested words (paper §1: the nesting of a hierarchical data
// format IS the call/return structure — XML is merely the instance the
// paper spells out). A keyed container opens a call on its key and closes
// the matching return, so `{"a":{"b":1}}` streams exactly like
// `<a><b>1</b></a>` and the whole query/opt/serve stack runs unchanged.
//
// Mapping (see docs/QUERY_LANGUAGE.md for the full table):
//   "k": { ... } / "k": [ ... ]   call(k) ... return(k)
//   "k": scalar                   call(k), internal(#text), return(k)
//   { / [ anonymous, nested       call(#obj) / call(#arr) ... matching
//                                 return (addressable only via `*`
//                                 wildcards — '#' cannot appear in a
//                                 query NAME)
//   { / [ anonymous, top level    SILENT — the document envelope streams
//                                 no tokens, so `{"a":1}` and a bare
//                                 `"a":1` yield the same nested word and
//                                 path queries address `/a` directly
//   bare scalar                   internal(#text)
//   , : whitespace                skipped
//
// Malformed input never fails, mirroring the documented XML semantics:
// a closer closes the innermost open container regardless of brace kind,
// a stray closer at top level is silent (the envelope's closer is), an
// unclosed container stays a pending call, an unterminated string runs to
// the end of input, and any garbage run becomes a #text internal.
#ifndef NW_JSON_JSON_H_
#define NW_JSON_JSON_H_

#include <string>
#include <vector>

#include "nw/nested_word.h"
#include "stream/token_stream.h"

namespace nw {

/// Incremental pull tokenizer over JSON text — one instantiation of the
/// TokenStream concept (stream/token_stream.h), allocation-light like
/// XmlTokenStream: per-token work is a scan plus at most one interning;
/// the only resident state is the container stack (bounded by nesting
/// depth) and a two-slot queue for a keyed scalar's internal+return.
/// Object keys are interned into `*alphabet` by their raw spelling; the
/// pseudo-symbols "#text", "#obj", and "#arr" intern lazily on first use.
class JsonTokenStream {
 public:
  /// `text` and `alphabet` must outlive the stream.
  JsonTokenStream(const std::string& text, Alphabet* alphabet)
      : text_(text), alphabet_(alphabet) {}
  /// The stream reads `text` incrementally; a temporary would dangle.
  JsonTokenStream(std::string&& text, Alphabet* alphabet) = delete;
  /// Flushes tallies to the stats sink if one is attached.
  ~JsonTokenStream() { tally_.Flush(pos_); }

  /// Attaches an NWStats sink (obs/stats.h); same flush-once tally
  /// discipline as every front end (stream/token_stream.h).
  void set_stats(StatsSink* stats) { tally_.set_stats(stats); }

  /// Produces the next position into `*out`; false at end of input.
  bool Next(TaggedSymbol* out);

  /// Byte offset of the scan: everything before it has been consumed by
  /// the positions yielded so far (after a keyed scalar's call, the
  /// scalar whose internal and return are still queued — the XML
  /// self-closing-tag precedent). SplitTopLevel cuts at these offsets.
  size_t pos() const { return pos_; }

 private:
  /// Lazily interned pseudo-symbols, cached after the first use.
  Symbol TextSym();
  Symbol ObjSym();
  Symbol ArrSym();
  /// Emits a scalar: a keyed one becomes the call/#text/return triple
  /// (two tokens queued), a bare one a single #text internal.
  bool EmitScalar(TaggedSymbol* out);

  const std::string& text_;
  Alphabet* alphabet_;
  size_t pos_ = 0;
  Symbol text_sym_ = Alphabet::kNoSymbol;
  Symbol obj_sym_ = Alphabet::kNoSymbol;
  Symbol arr_sym_ = Alphabet::kNoSymbol;
  /// Key awaiting its value (`"k" :` already consumed); kNoSymbol = none.
  Symbol pending_key_ = Alphabet::kNoSymbol;
  /// Open containers: the symbol their return will carry; kNoSymbol
  /// marks a silent container (the top-level envelope).
  std::vector<Symbol> stack_;
  /// Tokens queued behind the one Next() just returned (a keyed scalar
  /// yields three positions from one scan).
  TaggedSymbol queue_[2];
  size_t queue_len_ = 0, queue_pos_ = 0;
  /// NWStats tallies, flushed once (see set_stats).
  StreamTally tally_{InputFormat::kJson};
};

/// Tokenizes `text` into a materialized nested word (JsonTokenStream run
/// to completion). Same conventions as the streaming form.
NestedWord JsonToNestedWord(const std::string& text, Alphabet* alphabet);

}  // namespace nw

#endif  // NW_JSON_JSON_H_
