#include "json/json.h"

#include <cctype>

#include "obs/stats.h"

namespace nw {

namespace {

/// Characters with structural meaning to the scanner; everything else
/// groups into bare-token runs (numbers, true/false/null, garbage).
bool IsStructural(char c) {
  return c == '{' || c == '}' || c == '[' || c == ']' || c == ',' ||
         c == ':' || c == '"';
}

}  // namespace

Symbol JsonTokenStream::TextSym() {
  if (text_sym_ == Alphabet::kNoSymbol) text_sym_ = alphabet_->Intern("#text");
  return text_sym_;
}

Symbol JsonTokenStream::ObjSym() {
  if (obj_sym_ == Alphabet::kNoSymbol) obj_sym_ = alphabet_->Intern("#obj");
  return obj_sym_;
}

Symbol JsonTokenStream::ArrSym() {
  if (arr_sym_ == Alphabet::kNoSymbol) arr_sym_ = alphabet_->Intern("#arr");
  return arr_sym_;
}

bool JsonTokenStream::EmitScalar(TaggedSymbol* out) {
  if (pending_key_ != Alphabet::kNoSymbol) {
    // A keyed scalar is a leaf element: `"k":1` streams like `<k>1</k>`.
    Symbol k = pending_key_;
    pending_key_ = Alphabet::kNoSymbol;
    queue_[0] = Internal(TextSym());
    queue_[1] = Return(k);
    queue_len_ = 2;
    queue_pos_ = 0;
    if (tally_.enabled()) tally_.OnCall();
    *out = Call(k);
    return true;
  }
  if (tally_.enabled()) tally_.OnInternal();
  *out = Internal(TextSym());
  return true;
}

bool JsonTokenStream::Next(TaggedSymbol* out) {
  if (queue_pos_ < queue_len_) {
    *out = queue_[queue_pos_++];
    if (tally_.enabled()) {
      switch (out->kind) {
        case Kind::kCall:
          tally_.OnCall();
          break;
        case Kind::kReturn:
          tally_.OnReturn();
          break;
        case Kind::kInternal:
          tally_.OnInternal();
          break;
      }
    }
    return true;
  }
  const std::string& text = text_;
  while (pos_ < text.size()) {
    char c = text[pos_];
    if (std::isspace(static_cast<unsigned char>(c)) || c == ',' || c == ':') {
      // Separators carry no positions; a stray ':' outside a key is as
      // silent as the one the key scan consumes.
      ++pos_;
      continue;
    }
    if (c == '{' || c == '[') {
      ++pos_;
      Symbol s;
      if (pending_key_ != Alphabet::kNoSymbol) {
        s = pending_key_;
        pending_key_ = Alphabet::kNoSymbol;
      } else if (stack_.empty()) {
        // The document envelope: a top-level anonymous container streams
        // silently so `{"a":1}` equals a bare `"a":1` (and a top-level
        // record array's elements become the top-level structure).
        stack_.push_back(Alphabet::kNoSymbol);
        continue;
      } else {
        s = c == '{' ? ObjSym() : ArrSym();
      }
      stack_.push_back(s);
      if (tally_.enabled()) tally_.OnCall();
      *out = Call(s);
      return true;
    }
    if (c == '}' || c == ']') {
      ++pos_;
      // A dangling key (`{"a":}`) has no value to wrap; drop it.
      pending_key_ = Alphabet::kNoSymbol;
      // The innermost open container closes regardless of brace kind —
      // the XML "close tag closes the innermost element" semantics.
      if (stack_.empty()) continue;  // stray closer: the envelope's is silent
      Symbol s = stack_.back();
      stack_.pop_back();
      if (s == Alphabet::kNoSymbol) continue;  // envelope closer
      if (tally_.enabled()) tally_.OnReturn();
      *out = Return(s);
      return true;
    }
    if (c == '"') {
      // Scan the string; \" must not terminate it. Unterminated strings
      // run to end of input (truncated documents stay analyzable).
      size_t j = pos_ + 1;
      std::string contents;
      while (j < text.size() && text[j] != '"') {
        if (text[j] == '\\' && j + 1 < text.size()) {
          contents += text[j];
          ++j;
        }
        contents += text[j];
        ++j;
      }
      pos_ = j < text.size() ? j + 1 : text.size();
      // A string followed by ':' is a key (detected anywhere — leniency,
      // not grammar); it defers its tokens to the value it labels. A new
      // key displaces an unconsumed one (garbage like `"a":"b":1`).
      size_t k = pos_;
      while (k < text.size() &&
             std::isspace(static_cast<unsigned char>(text[k]))) {
        ++k;
      }
      if (k < text.size() && text[k] == ':') {
        pos_ = k + 1;
        pending_key_ = alphabet_->Intern(contents);
        continue;
      }
      return EmitScalar(out);
    }
    // Bare token run: a number, true/false/null, or garbage — one scalar.
    size_t j = pos_;
    while (j < text.size() && !IsStructural(text[j]) &&
           !std::isspace(static_cast<unsigned char>(text[j]))) {
      ++j;
    }
    pos_ = j;
    return EmitScalar(out);
  }
  tally_.Flush(pos_);  // end of input: tallies become visible to the sink
  return false;
}

NestedWord JsonToNestedWord(const std::string& text, Alphabet* alphabet) {
  NestedWord out;
  JsonTokenStream stream(text, alphabet);
  TaggedSymbol t;
  while (stream.Next(&t)) out.Push(t);
  return out;
}

}  // namespace nw
