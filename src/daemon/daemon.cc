#include "daemon/daemon.h"

#include "query/engine.h"
#include "support/check.h"
#include "support/stopwatch.h"

namespace nw {

DaemonCore::DaemonCore(const std::vector<std::string>& initial_queries,
                       const DaemonOptions& options)
    : options_(options) {
  NW_CHECK_MSG(!initial_queries.empty(),
               "a daemon needs at least one initial query (a shared bank "
               "cannot be empty)");
  NW_CHECK_MSG(options_.threads >= 1, "daemon needs at least one thread");
  // The serving path is frozen snapshots over the shared product; the
  // bank pass is not optional, and the compile timeline would race the
  // /metrics renders (admissions record while scrapes read), so it
  // stays off.
  options_.opt.bank = true;
  options_.opt.timeline = nullptr;

  for (const std::string& text : initial_queries) {
    Result<Query> q = ParseQuery(text, &alphabet_);
    if (!q.ok()) {
      init_error_ = Status::Error("query '" + text +
                                  "': " + q.status().message());
      return;
    }
    Query ast = q.Take();
    std::string normal = FormatQuery(ast, alphabet_);
    admitted_.push_back(Admitted{next_qid_++, std::move(normal),
                                 std::move(ast)});
  }
  // Fix the low symbol space exactly like the CLI: query names, the
  // text pseudo-symbol, then the catch-all. Admitted queries intern
  // AFTER these, so the catch-all id is stable across every epoch.
  alphabet_.Intern("#text");
  other_ = alphabet_.Intern("%other");

  // Registration completes here — RenderProm scrapes and the pulse
  // sampler iterate the sink list lock-free, so nothing registers
  // later. Meta is ctor-only for the same reason.
  registry_.SetMeta("mode", "daemon");
  registry_.SetMeta("format", InputFormatName(options_.default_format));
  registry_.SetMetaNum("threads", options_.threads);
  registry_.Register("daemon", &daemon_sink_);

  {
    std::lock_guard<std::mutex> lock(admit_mu_);
    RebuildBankLocked();
    // Epoch 0: cold, evaluator-construction scaffolding only.
    PublishEpochLocked(/*refreshed=*/false, /*explore=*/false);
  }
  std::shared_ptr<const DaemonEpoch> e = current_epoch();
  evaluator_ = std::make_unique<ShardedEvaluator>(
      e->frozen.get(), e->num_symbols, other_, options_.threads,
      options_.default_format);
  // No attribution tables: they are sized to the query count, which
  // admissions change per epoch (see ShardedEvaluator::Rebind).
  evaluator_->AttachStats(&registry_, /*with_attribution=*/false);
  evaluator_->Rebind(e->frozen, e->num_symbols);
  bound_epoch_ = e->id;
  {
    // Warm start: serve an explored snapshot from the first document.
    std::lock_guard<std::mutex> lock(admit_mu_);
    PublishEpochLocked(/*refreshed=*/true, /*explore=*/true);
  }
}

DaemonCore::~DaemonCore() { DrainAndStop(); }

void DaemonCore::Start() {
  NW_CHECK_MSG(ok(), "starting a DaemonCore whose construction failed");
  NW_CHECK_MSG(!started_, "Start() may be called once");
  started_ = true;
  dispatcher_ = std::thread(&DaemonCore::DispatcherLoop, this);
  refresher_ = std::thread(&DaemonCore::RefresherLoop, this);
}

void DaemonCore::DrainAndStop() {
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    stopping_ = true;
  }
  queue_cv_.notify_all();
  {
    std::lock_guard<std::mutex> lock(refresh_mu_);
    refresh_stop_ = true;
  }
  refresh_cv_.notify_all();
  if (dispatcher_.joinable()) dispatcher_.join();
  if (refresher_.joinable()) refresher_.join();
}

void DaemonCore::RebuildBankLocked() {
  std::vector<Query> asts;
  asts.reserve(admitted_.size());
  for (const Admitted& a : admitted_) asts.push_back(a.ast);
  bank_ = std::make_shared<OptimizedBank>(
      OptimizeBank(asts, alphabet_.size(), options_.opt));
}

void DaemonCore::PublishEpochLocked(bool refreshed, bool explore) {
  if (explore) {
    // Replay recent traffic through the live bank first: streaming IS
    // exploration (the memo table interns every tuple the documents
    // visit), so the tuples the overflow banks kept servicing are
    // promoted into the snapshot even when the capped ExploreAll below
    // cannot finish the full product.
    std::vector<ReplayDoc> replay;
    {
      std::lock_guard<std::mutex> lock(replay_mu_);
      replay.assign(replay_.begin(), replay_.end());
    }
    if (!replay.empty()) {
      Alphabet scratch = alphabet_;
      QueryEngine trainer(bank_->shared->num_symbols());
      trainer.set_other_symbol(other_);
      trainer.AddBank(bank_->shared.get());
      for (const ReplayDoc& d : replay) {
        trainer.RunAll(d.text, &scratch, d.format);
      }
    }
    bank_->shared->ExploreAll(options_.refresh_cap, nullptr);
  }
  auto epoch = std::make_shared<DaemonEpoch>();
  epoch->id = next_epoch_id_++;
  epoch->refreshed = refreshed;
  for (const Admitted& a : admitted_) {
    epoch->qids.push_back(a.qid);
    epoch->query_texts.push_back(a.text);
  }
  epoch->bank = bank_;
  epoch->frozen = FrozenBank::FreezeShared(*bank_->shared);
  epoch->alphabet = alphabet_;
  // The engine symbol space is the bank's, not the (possibly larger)
  // master alphabet's: names interned by documents or by a failed ADMIT
  // parse remap to the catch-all until the next rebuild widens the bank.
  epoch->num_symbols = epoch->frozen->num_symbols();
  epoch->baseline = CaptureSnapshot(registry_);
  uint64_t id = epoch->id;
  {
    std::lock_guard<std::mutex> lock(state_mu_);
    epoch_ = std::move(epoch);
  }
  // Caller holds admit_mu_, which serializes these daemon-sink writers.
  daemon_sink_.daemon_epoch.Set(id);
  if (refreshed) daemon_sink_.daemon_refreshes.Inc();
}

std::shared_ptr<const DaemonEpoch> DaemonCore::current_epoch() const {
  std::lock_guard<std::mutex> lock(state_mu_);
  return epoch_;
}

void DaemonCore::CountRequest() {
  std::lock_guard<std::mutex> lock(stats_mu_);
  daemon_sink_.daemon_requests.Inc();
}

void DaemonCore::RememberDoc(const std::string& text, InputFormat format) {
  if (options_.replay_capacity == 0) return;
  std::lock_guard<std::mutex> lock(replay_mu_);
  replay_.push_back(ReplayDoc{text, format});
  while (replay_.size() > options_.replay_capacity) replay_.pop_front();
}

Result<SubmitOutcome> DaemonCore::Submit(std::string doc,
                                         InputFormat format) {
  auto pending = std::make_unique<PendingDoc>();
  pending->text = std::move(doc);
  pending->format = format;
  pending->enqueue_us = PulseNowUs();
  std::future<SubmitOutcome> done = pending->done.get_future();
  RememberDoc(pending->text, format);
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    if (stopping_) {
      return Status::Error("daemon: shutting down, submit rejected");
    }
    queue_.push_back(std::move(pending));
  }
  queue_cv_.notify_one();
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    daemon_sink_.daemon_docs.Inc();
  }
  return done.get();
}

Result<uint64_t> DaemonCore::Admit(const std::string& query_text) {
  std::lock_guard<std::mutex> lock(admit_mu_);
  Stopwatch sw;
  Result<Query> q = ParseQuery(query_text, &alphabet_);
  if (!q.ok()) {
    return Status::Error("admit: " + q.status().message());
  }
  Query ast = q.Take();
  std::string normal = FormatQuery(ast, alphabet_);
  uint64_t qid = next_qid_++;
  admitted_.push_back(Admitted{qid, std::move(normal), std::move(ast)});
  RebuildBankLocked();
  // Cold publication: freezing the unexplored bank snapshots just the
  // initial state, so admission latency is compile-bound. Every step
  // misses to the overflow banks (correct, slower) until the refresh
  // nudged below publishes the explored snapshot.
  PublishEpochLocked(/*refreshed=*/false, /*explore=*/false);
  daemon_sink_.daemon_admissions.Inc();
  daemon_sink_.admission_latency_us.Record(
      static_cast<uint64_t>(sw.ElapsedUs()));
  {
    std::lock_guard<std::mutex> rlock(refresh_mu_);
    ++refresh_requested_;
  }
  refresh_cv_.notify_all();
  return qid;
}

Status DaemonCore::Retire(uint64_t qid) {
  std::lock_guard<std::mutex> lock(admit_mu_);
  size_t index = admitted_.size();
  for (size_t i = 0; i < admitted_.size(); ++i) {
    if (admitted_[i].qid == qid) {
      index = i;
      break;
    }
  }
  if (index == admitted_.size()) {
    return Status::Error("retire: no admitted query with qid " +
                         std::to_string(qid));
  }
  if (admitted_.size() == 1) {
    return Status::Error(
        "retire: cannot retire the last query (a shared bank cannot be "
        "empty); admit a replacement first or SHUTDOWN");
  }
  admitted_.erase(admitted_.begin() + static_cast<ptrdiff_t>(index));
  RebuildBankLocked();
  PublishEpochLocked(/*refreshed=*/false, /*explore=*/false);
  daemon_sink_.daemon_retirements.Inc();
  {
    std::lock_guard<std::mutex> rlock(refresh_mu_);
    ++refresh_requested_;
  }
  refresh_cv_.notify_all();
  return Status::Ok();
}

void DaemonCore::AwaitRefresh() {
  std::unique_lock<std::mutex> lock(refresh_mu_);
  uint64_t target = ++refresh_requested_;
  refresh_cv_.notify_all();
  refresh_cv_.wait(lock, [&] {
    return refresh_done_ >= target || refresh_stop_;
  });
}

void DaemonCore::DispatcherLoop() {
  for (;;) {
    std::vector<std::unique_ptr<PendingDoc>> batch;
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      queue_cv_.wait(lock, [&] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_, fully drained
      while (!queue_.empty()) {
        batch.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
    }
    // One epoch per batch: every document in it is served — and every
    // outcome oracle-checked — against the same published snapshot.
    std::shared_ptr<const DaemonEpoch> epoch = current_epoch();
    if (bound_epoch_ != epoch->id) {
      evaluator_->Rebind(epoch->frozen, epoch->num_symbols);
      bound_epoch_ = epoch->id;
    }
    // The evaluator streams one format per EvaluateCorpus call, so a
    // mixed batch dispatches as up to three calls, order preserved
    // within each format (results map back through `members`).
    const InputFormat kFormats[] = {InputFormat::kXml, InputFormat::kJson,
                                    InputFormat::kTrace};
    for (InputFormat format : kFormats) {
      std::vector<size_t> members;
      std::vector<std::string> corpus;
      for (size_t i = 0; i < batch.size(); ++i) {
        if (batch[i]->format == format) {
          members.push_back(i);
          corpus.push_back(batch[i]->text);
        }
      }
      if (corpus.empty()) continue;
      evaluator_->set_format(format);
      std::vector<DocResult> results =
          evaluator_->EvaluateCorpus(corpus, epoch->alphabet,
                                     /*track_matches=*/true);
      uint64_t now_us = PulseNowUs();
      for (size_t j = 0; j < members.size(); ++j) {
        PendingDoc& doc = *batch[members[j]];
        SubmitOutcome outcome;
        outcome.epoch = epoch;
        outcome.result = std::move(results[j]);
        outcome.latency_us =
            now_us > doc.enqueue_us ? now_us - doc.enqueue_us : 0;
        doc.done.set_value(std::move(outcome));
      }
    }
  }
}

void DaemonCore::RefresherLoop() {
  uint64_t handled = 0;
  for (;;) {
    uint64_t target;
    {
      std::unique_lock<std::mutex> lock(refresh_mu_);
      refresh_cv_.wait(lock, [&] {
        return refresh_stop_ || refresh_requested_ > handled;
      });
      // A stop with requests still pending runs one last refresh so an
      // AwaitRefresh caller racing shutdown is never stranded.
      if (refresh_requested_ <= handled) return;  // refresh_stop_
      target = refresh_requested_;
    }
    {
      std::lock_guard<std::mutex> lock(admit_mu_);
      PublishEpochLocked(/*refreshed=*/true, /*explore=*/true);
    }
    handled = target;
    {
      std::lock_guard<std::mutex> lock(refresh_mu_);
      refresh_done_ = target;
    }
    refresh_cv_.notify_all();
  }
}

EpochMetrics DaemonCore::Metrics() const {
  std::shared_ptr<const DaemonEpoch> epoch = current_epoch();
  StatsSnapshot now = CaptureSnapshot(registry_);
  StatsSnapshot delta = SnapshotDelta(epoch->baseline, now);
  SinkSnapshot interval = delta.Aggregate();
  SinkSnapshot lifetime = now.Aggregate();
  EpochMetrics m;
  m.epoch = epoch->id;
  m.refreshed = epoch->refreshed;
  m.queries = epoch->query_texts.size();
  m.frozen_states = epoch->frozen->num_states();
  m.num_symbols = epoch->num_symbols;
  m.documents = interval.counter("shard_docs");
  m.positions = interval.counter("shard_positions");
  m.frozen_hits = interval.counter("frozen_hits");
  m.frozen_misses = interval.counter("frozen_misses");
  uint64_t steps = m.frozen_hits + m.frozen_misses;
  m.has_traffic = steps > 0;
  m.hit_rate = steps == 0 ? 0.0
                          : static_cast<double>(m.frozen_hits) /
                                static_cast<double>(steps);
  const HistogramSnapshot& latency = interval.histogram("doc_latency_us");
  m.doc_p50_us = latency.Percentile(0.50);
  m.doc_p99_us = latency.Percentile(0.99);
  m.total_requests = lifetime.counter("daemon_requests");
  m.total_documents = lifetime.counter("daemon_docs");
  m.admissions = lifetime.counter("daemon_admissions");
  m.retirements = lifetime.counter("daemon_retirements");
  m.refreshes = lifetime.counter("daemon_refreshes");
  m.admit_p99_us =
      lifetime.histogram("admission_latency_us").Percentile(0.99);
  return m;
}

std::string DaemonCore::RenderStatsJson() const {
  std::shared_ptr<const DaemonEpoch> epoch = current_epoch();
  EpochMetrics m = Metrics();
  std::string out = "{\"epoch\":" + std::to_string(m.epoch);
  out += ",\"refreshed\":";
  out += m.refreshed ? "true" : "false";
  out += ",\"frozen_states\":" + std::to_string(m.frozen_states);
  out += ",\"num_symbols\":" + std::to_string(m.num_symbols);
  out += ",\"queries\":[";
  for (size_t i = 0; i < epoch->qids.size(); ++i) {
    if (i > 0) out.push_back(',');
    out += "{\"qid\":" + std::to_string(epoch->qids[i]) + ",\"text\":";
    AppendJsonString(&out, epoch->query_texts[i]);
    out.push_back('}');
  }
  out += "],\"interval\":{\"documents\":" + std::to_string(m.documents);
  out += ",\"positions\":" + std::to_string(m.positions);
  out += ",\"frozen_hits\":" + std::to_string(m.frozen_hits);
  out += ",\"frozen_misses\":" + std::to_string(m.frozen_misses);
  out += ",\"hit_rate\":";
  if (m.has_traffic) {
    AppendJsonDouble(&out, m.hit_rate);
  } else {
    out += "null";
  }
  out += ",\"doc_p50_us\":" + std::to_string(m.doc_p50_us);
  out += ",\"doc_p99_us\":" + std::to_string(m.doc_p99_us);
  out += "},\"lifetime\":{\"requests\":" + std::to_string(m.total_requests);
  out += ",\"documents\":" + std::to_string(m.total_documents);
  out += ",\"admissions\":" + std::to_string(m.admissions);
  out += ",\"retirements\":" + std::to_string(m.retirements);
  out += ",\"refreshes\":" + std::to_string(m.refreshes);
  out += ",\"admit_p99_us\":" + std::to_string(m.admit_p99_us);
  out += "}}";
  return out;
}

}  // namespace nw
