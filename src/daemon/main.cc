// nwqueryd — the resident NWDaemon serving front end (ROADMAP: NWDaemon).
//
//   nwqueryd --socket PATH --queries FILE [options]
//
// Loads an initial query bank (same file syntax as nwquery: one NWQuery
// per line, '#' comments), compiles and pre-explores it, then serves a
// newline-delimited JSON protocol (daemon/protocol.h, docs/DAEMON.md)
// over the Unix-domain control socket: SUBMIT documents in any of the
// three front-end formats, ADMIT/RETIRE queries online (the bank is
// re-optimized and the frozen snapshot refreshed epoch-style in the
// background, with no serving stalls), STATS, SHUTDOWN. tools/nwclient.py
// is the matching client.
//
// Options:
//   --socket PATH     control-socket path (required)
//   --queries FILE    initial query bank, >= 1 query (required)
//   --http PORT       serve GET /metrics (Prometheus text exposition)
//                     and /healthz on 127.0.0.1:PORT; 0 picks an
//                     ephemeral port, printed on the ready line
//   --threads N       shard workers per document batch (default 1)
//   --opt LEVEL       optimizer level: bank | all (default all; levels
//                     without the shared bank cannot serve frozen)
//   --format F        default format for SUBMITs without a tag:
//                     xml (default) | json | trace
//   --refresh-cap N   ExploreAll state cap for epoch refreshes
//                     (default 65536)
//   --stats-interval MS
//                     NWPulse: sample the daemon registry every MS ms
//   --pulse-file F    JSONL destination for --stats-interval (default
//                     stderr); the final tick lands after the drain, so
//                     the series telescopes to the shutdown totals
//
// SIGINT/SIGTERM (or a SHUTDOWN request) drain gracefully: stop
// accepting, answer every in-flight request, drain the dispatch queue,
// take the final pulse tick, exit 0.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "daemon/daemon.h"
#include "daemon/server.h"
#include "obs/pulse.h"
#include "opt/pipeline.h"
#include "stream/token_stream.h"

namespace {

using namespace nw;

struct Flags {
  std::string socket_path;
  std::string query_file;
  int http_port = -1;
  DaemonOptions daemon;
  std::string opt_level = "all";
  uint64_t stats_interval_ms = 0;
  std::string pulse_file;
};

int Usage() {
  std::fprintf(stderr,
               "usage: nwqueryd --socket PATH --queries FILE "
               "[--http PORT] [--threads N] [--opt bank|all] "
               "[--format xml|json|trace] [--refresh-cap N] "
               "[--stats-interval MS] [--pulse-file F]\n");
  return 2;
}

bool ParseUint(const char* s, uint64_t* out) {
  if (s == nullptr || *s == '\0') return false;
  uint64_t v = 0;
  for (; *s; ++s) {
    if (*s < '0' || *s > '9') return false;
    if (v > (UINT64_MAX - 9) / 10) return false;
    v = v * 10 + static_cast<uint64_t>(*s - '0');
  }
  *out = v;
  return true;
}

bool ParseFlags(int argc, char** argv, Flags* flags) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    // Every flag takes a value; --name=value and --name value both work.
    std::string name = arg;
    std::string value;
    bool has_value = false;
    size_t eq = arg.find('=');
    if (eq != std::string::npos) {
      name = arg.substr(0, eq);
      value = arg.substr(eq + 1);
      has_value = true;
    } else if (i + 1 < argc) {
      value = argv[i + 1];
    }
    auto take = [&]() {
      if (has_value) return true;
      if (i + 1 >= argc) {
        std::fprintf(stderr, "nwqueryd: %s needs a value\n", name.c_str());
        return false;
      }
      ++i;
      return true;
    };
    uint64_t v = 0;
    if (name == "--socket") {
      if (!take()) return false;
      flags->socket_path = value;
    } else if (name == "--queries") {
      if (!take()) return false;
      flags->query_file = value;
    } else if (name == "--http") {
      if (!take() || !ParseUint(value.c_str(), &v) || v > 65535) {
        std::fprintf(stderr, "nwqueryd: --http needs a port (0-65535)\n");
        return false;
      }
      flags->http_port = static_cast<int>(v);
    } else if (name == "--threads") {
      if (!take() || !ParseUint(value.c_str(), &v) || v == 0) {
        std::fprintf(stderr, "nwqueryd: --threads must be >= 1\n");
        return false;
      }
      flags->daemon.threads = v;
    } else if (name == "--opt") {
      if (!take()) return false;
      if (!ParseOptLevel(value, &flags->daemon.opt)) {
        std::fprintf(stderr,
                     "nwqueryd: unknown --opt level '%s' (want none, "
                     "rewrite, min, bank, or all)\n",
                     value.c_str());
        return false;
      }
      if (!flags->daemon.opt.bank) {
        std::fprintf(stderr,
                     "nwqueryd: --opt %s cannot serve frozen snapshots; "
                     "use bank or all\n",
                     value.c_str());
        return false;
      }
      flags->opt_level = value;
    } else if (name == "--format") {
      if (!take()) return false;
      if (!ParseInputFormat(value, &flags->daemon.default_format)) {
        std::fprintf(stderr,
                     "nwqueryd: unknown --format '%s' (want xml, json, "
                     "or trace)\n",
                     value.c_str());
        return false;
      }
    } else if (name == "--refresh-cap") {
      if (!take() || !ParseUint(value.c_str(), &v) || v == 0) {
        std::fprintf(stderr, "nwqueryd: --refresh-cap must be >= 1\n");
        return false;
      }
      flags->daemon.refresh_cap = v;
    } else if (name == "--stats-interval") {
      if (!take() || !ParseUint(value.c_str(), &v) || v == 0) {
        std::fprintf(stderr,
                     "nwqueryd: --stats-interval must be >= 1 ms\n");
        return false;
      }
      flags->stats_interval_ms = v;
    } else if (name == "--pulse-file") {
      if (!take() || value.empty()) {
        std::fprintf(stderr, "nwqueryd: --pulse-file needs a path\n");
        return false;
      }
      flags->pulse_file = value;
    } else {
      std::fprintf(stderr, "nwqueryd: unknown option %s\n", arg.c_str());
      return false;
    }
  }
  if (flags->pulse_file.empty() == false && flags->stats_interval_ms == 0) {
    flags->stats_interval_ms = 500;
  }
  return !flags->socket_path.empty() && !flags->query_file.empty();
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  if (!ParseFlags(argc, argv, &flags)) return Usage();

  std::ifstream qf(flags.query_file);
  if (!qf) {
    std::fprintf(stderr, "nwqueryd: cannot open %s\n",
                 flags.query_file.c_str());
    return 1;
  }
  std::vector<std::string> queries;
  std::string line;
  while (std::getline(qf, line)) {
    std::string stripped = line.substr(0, line.find('#'));
    if (stripped.find_first_not_of(" \t\r") == std::string::npos) continue;
    queries.push_back(stripped);
  }
  if (queries.empty()) {
    std::fprintf(stderr, "nwqueryd: %s holds no queries\n",
                 flags.query_file.c_str());
    return 1;
  }

  DaemonCore core(queries, flags.daemon);
  if (!core.ok()) {
    std::fprintf(stderr, "nwqueryd: %s\n",
                 core.init_error().message().c_str());
    return 1;
  }
  core.Start();

  ServerOptions server_opts;
  server_opts.socket_path = flags.socket_path;
  server_opts.http_port = flags.http_port;
  DaemonServer server(&core, server_opts);
  Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "nwqueryd: %s\n", started.message().c_str());
    return 1;
  }
  int wake_fd = InstallSignalWakeFd();
  if (wake_fd >= 0) server.set_wake_fd(wake_fd);

  // NWPulse over the daemon registry: the sampler's baseline lands
  // after all registration (done inside DaemonCore's constructor), its
  // final tick after the drain below — the series telescopes exactly
  // to the end-of-life totals, same contract as the CLI.
  std::FILE* pulse_out = nullptr;
  bool pulse_owned = false;
  std::unique_ptr<PulseSampler> sampler;
  if (flags.stats_interval_ms > 0) {
    pulse_out = stderr;
    if (!flags.pulse_file.empty() && flags.pulse_file != "-") {
      pulse_out = std::fopen(flags.pulse_file.c_str(), "w");
      if (pulse_out == nullptr) {
        std::fprintf(stderr, "nwqueryd: cannot open %s\n",
                     flags.pulse_file.c_str());
        return 1;
      }
      pulse_owned = true;
    }
    PulseSampler::Options po;
    po.interval_ms = flags.stats_interval_ms;
    po.jsonl = pulse_out;
    sampler = std::make_unique<PulseSampler>(&core.registry(), po);
    sampler->Start();
  }

  // Ready lines: CI and scripts parse these (the metrics line carries
  // the ephemeral port answer for --http 0).
  std::shared_ptr<const DaemonEpoch> epoch = core.current_epoch();
  std::printf("nwqueryd: serving %zu queries on %s (threads=%zu, "
              "format=%s, epoch=%llu, frozen_states=%zu)\n",
              epoch->query_texts.size(), flags.socket_path.c_str(),
              core.threads(), InputFormatName(core.default_format()),
              static_cast<unsigned long long>(epoch->id),
              epoch->frozen->num_states());
  if (server.http_port() >= 0) {
    std::printf("nwqueryd: metrics on http://127.0.0.1:%d/metrics\n",
                server.http_port());
  }
  std::fflush(stdout);

  server.Run();

  // Graceful drain: the server joined every connection; now finish the
  // dispatch queue, stop the background threads, take the final pulse
  // tick, and leave 0.
  core.DrainAndStop();
  if (sampler != nullptr) sampler->Stop();
  if (pulse_owned) std::fclose(pulse_out);
  std::printf("nwqueryd: shutdown complete (epoch=%llu, requests=%llu)\n",
              static_cast<unsigned long long>(core.current_epoch()->id),
              static_cast<unsigned long long>(
                  core.Metrics().total_requests));
  return 0;
}
