#include "daemon/protocol.h"

#include <cctype>

namespace nw {

const char* DaemonOpName(DaemonOp op) {
  switch (op) {
    case DaemonOp::kSubmit:
      return "SUBMIT";
    case DaemonOp::kAdmit:
      return "ADMIT";
    case DaemonOp::kRetire:
      return "RETIRE";
    case DaemonOp::kStats:
      return "STATS";
    case DaemonOp::kShutdown:
      return "SHUTDOWN";
  }
  return "?";
}

namespace {

/// Cursor over one request line. Every Fail() message names the byte
/// offset so a malformed client is debuggable from the error echo alone.
class Scanner {
 public:
  explicit Scanner(const std::string& text) : text_(text) {}

  Status Fail(const std::string& what) const {
    return Status::Error("protocol: " + what + " at byte " +
                         std::to_string(pos_));
  }

  void SkipWs() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool AtEnd() {
    SkipWs();
    return pos_ >= text_.size();
  }

  bool Eat(char c) {
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  char Peek() {
    SkipWs();
    return pos_ < text_.size() ? text_[pos_] : '\0';
  }

  /// JSON string body after the opening quote was consumed. Handles the
  /// standard escapes; \uXXXX decodes to UTF-8, pairing surrogates, so
  /// a document Python escaped with ensure_ascii round-trips exactly.
  Status ParseString(std::string* out) {
    out->clear();
    while (true) {
      if (pos_ >= text_.size()) return Fail("unterminated string");
      char c = text_[pos_++];
      if (c == '"') return Status::Ok();
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) return Fail("unterminated escape");
      char e = text_[pos_++];
      switch (e) {
        case '"':
        case '\\':
        case '/':
          out->push_back(e);
          break;
        case 'b':
          out->push_back('\b');
          break;
        case 'f':
          out->push_back('\f');
          break;
        case 'n':
          out->push_back('\n');
          break;
        case 'r':
          out->push_back('\r');
          break;
        case 't':
          out->push_back('\t');
          break;
        case 'u': {
          uint32_t cp = 0;
          Status s = ParseHex4(&cp);
          if (!s.ok()) return s;
          if (cp >= 0xD800 && cp <= 0xDBFF) {
            // High surrogate: the low half must follow as another \u.
            if (pos_ + 1 >= text_.size() || text_[pos_] != '\\' ||
                text_[pos_ + 1] != 'u') {
              return Fail("unpaired surrogate");
            }
            pos_ += 2;
            uint32_t low = 0;
            s = ParseHex4(&low);
            if (!s.ok()) return s;
            if (low < 0xDC00 || low > 0xDFFF) {
              return Fail("unpaired surrogate");
            }
            cp = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            return Fail("unpaired surrogate");
          }
          AppendUtf8(cp, out);
          break;
        }
        default:
          return Fail(std::string("unknown escape \\") + e);
      }
    }
  }

  Status ParseUint(uint64_t* out) {
    SkipWs();
    if (pos_ >= text_.size() || !std::isdigit(text_[pos_])) {
      return Fail("expected an unsigned integer");
    }
    uint64_t v = 0;
    while (pos_ < text_.size() && std::isdigit(text_[pos_])) {
      uint64_t d = static_cast<uint64_t>(text_[pos_] - '0');
      if (v > (UINT64_MAX - d) / 10) return Fail("integer overflow");
      v = v * 10 + d;
      ++pos_;
    }
    *out = v;
    return Status::Ok();
  }

  bool EatLiteral(const char* lit) {
    SkipWs();
    size_t n = 0;
    while (lit[n] != '\0') ++n;
    if (text_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }

 private:
  Status ParseHex4(uint32_t* out) {
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      if (pos_ >= text_.size()) return Fail("truncated \\u escape");
      char c = text_[pos_++];
      uint32_t d;
      if (c >= '0' && c <= '9') {
        d = static_cast<uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        d = static_cast<uint32_t>(c - 'a') + 10;
      } else if (c >= 'A' && c <= 'F') {
        d = static_cast<uint32_t>(c - 'A') + 10;
      } else {
        return Fail("bad \\u escape digit");
      }
      v = (v << 4) | d;
    }
    *out = v;
    return Status::Ok();
  }

  static void AppendUtf8(uint32_t cp, std::string* out) {
    if (cp < 0x80) {
      out->push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out->push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      out->push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out->push_back(static_cast<char>(0xF0 | (cp >> 18)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  const std::string& text_;
  size_t pos_ = 0;
};

Status ParseOp(const std::string& name, DaemonOp* out) {
  if (name == "SUBMIT") {
    *out = DaemonOp::kSubmit;
  } else if (name == "ADMIT") {
    *out = DaemonOp::kAdmit;
  } else if (name == "RETIRE") {
    *out = DaemonOp::kRetire;
  } else if (name == "STATS") {
    *out = DaemonOp::kStats;
  } else if (name == "SHUTDOWN") {
    *out = DaemonOp::kShutdown;
  } else {
    return Status::Error("protocol: unknown op '" + name +
                         "' (want SUBMIT, ADMIT, RETIRE, STATS, or "
                         "SHUTDOWN)");
  }
  return Status::Ok();
}

}  // namespace

Result<DaemonRequest> ParseDaemonRequest(const std::string& line) {
  Scanner sc(line);
  if (!sc.Eat('{')) return sc.Fail("expected '{'");
  DaemonRequest req;
  bool has_op = false;
  bool has_doc = false;
  bool has_query = false;
  if (!sc.Eat('}')) {
    do {
      if (!sc.Eat('"')) return sc.Fail("expected a key string");
      std::string key;
      Status s = sc.ParseString(&key);
      if (!s.ok()) return s;
      if (!sc.Eat(':')) return sc.Fail("expected ':'");
      if (key == "op") {
        if (!sc.Eat('"')) return sc.Fail("op must be a string");
        std::string name;
        s = sc.ParseString(&name);
        if (!s.ok()) return s;
        s = ParseOp(name, &req.op);
        if (!s.ok()) return s;
        has_op = true;
      } else if (key == "doc") {
        if (!sc.Eat('"')) return sc.Fail("doc must be a string");
        s = sc.ParseString(&req.doc);
        if (!s.ok()) return s;
        has_doc = true;
      } else if (key == "format") {
        if (!sc.Eat('"')) return sc.Fail("format must be a string");
        std::string name;
        s = sc.ParseString(&name);
        if (!s.ok()) return s;
        if (!ParseInputFormat(name, &req.format)) {
          return Status::Error("protocol: unknown format '" + name +
                               "' (want xml, json, or trace)");
        }
        req.has_format = true;
      } else if (key == "label") {
        if (!sc.Eat('"')) return sc.Fail("label must be a string");
        s = sc.ParseString(&req.label);
        if (!s.ok()) return s;
      } else if (key == "query") {
        if (!sc.Eat('"')) return sc.Fail("query must be a string");
        s = sc.ParseString(&req.query);
        if (!s.ok()) return s;
        has_query = true;
      } else if (key == "qid") {
        s = sc.ParseUint(&req.qid);
        if (!s.ok()) return s;
        req.has_qid = true;
      } else {
        return Status::Error("protocol: unknown key '" + key + "'");
      }
    } while (sc.Eat(','));
    if (!sc.Eat('}')) return sc.Fail("expected ',' or '}'");
  }
  if (!sc.AtEnd()) return sc.Fail("trailing bytes after request object");
  if (!has_op) return Status::Error("protocol: request needs an op");
  switch (req.op) {
    case DaemonOp::kSubmit:
      if (!has_doc) return Status::Error("protocol: SUBMIT needs a doc");
      break;
    case DaemonOp::kAdmit:
      if (!has_query) {
        return Status::Error("protocol: ADMIT needs a query");
      }
      break;
    case DaemonOp::kRetire:
      if (!req.has_qid) {
        return Status::Error("protocol: RETIRE needs a qid");
      }
      break;
    case DaemonOp::kStats:
    case DaemonOp::kShutdown:
      break;
  }
  return req;
}

}  // namespace nw
