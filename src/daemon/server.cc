#include "daemon/server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "daemon/daemon.h"
#include "daemon/protocol.h"
#include "obs/stats.h"

namespace nw {

namespace {

int g_wake_write_fd = -1;

void OnShutdownSignal(int /*signo*/) {
  // Async-signal-safe by construction: one write to a nonblocking pipe.
  char byte = 1;
  ssize_t ignored = ::write(g_wake_write_fd, &byte, 1);
  (void)ignored;
}

std::string RenderError(const std::string& message) {
  std::string out = "{\"ok\":false,\"error\":";
  AppendJsonString(&out, message);
  out += "}\n";
  return out;
}

/// Full send with SIGPIPE suppressed (a client that hung up mid-response
/// must not kill the daemon). False on any error.
bool SendAll(int fd, const std::string& data) {
  size_t sent = 0;
  while (sent < data.size()) {
    ssize_t n = ::send(fd, data.data() + sent, data.size() - sent,
                       MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<size_t>(n);
  }
  return true;
}

}  // namespace

int InstallSignalWakeFd() {
  int fds[2];
  if (::pipe(fds) != 0) return -1;
  // Nonblocking both ways: a signal burst fills the pipe harmlessly
  // instead of blocking inside the handler, and the server's drain
  // reads stop at EAGAIN instead of hanging.
  ::fcntl(fds[0], F_SETFL, O_NONBLOCK);
  ::fcntl(fds[1], F_SETFL, O_NONBLOCK);
  g_wake_write_fd = fds[1];
  struct sigaction sa;
  std::memset(&sa, 0, sizeof(sa));
  sa.sa_handler = OnShutdownSignal;
  ::sigemptyset(&sa.sa_mask);
  sa.sa_flags = SA_RESTART;
  ::sigaction(SIGINT, &sa, nullptr);
  ::sigaction(SIGTERM, &sa, nullptr);
  return fds[0];
}

DaemonServer::DaemonServer(DaemonCore* core, ServerOptions options)
    : core_(core), options_(std::move(options)) {}

DaemonServer::~DaemonServer() {
  Stop();
  if (http_thread_.joinable()) http_thread_.join();
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    for (std::thread& t : connections_) {
      if (t.joinable()) t.join();
    }
    connections_.clear();
  }
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (http_fd_ >= 0) ::close(http_fd_);
  if (!options_.socket_path.empty()) ::unlink(options_.socket_path.c_str());
}

Status DaemonServer::Start() {
  struct sockaddr_un addr;
  if (options_.socket_path.size() >= sizeof(addr.sun_path)) {
    return Status::Error("socket path too long: " + options_.socket_path);
  }
  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::Error("cannot create control socket: " +
                         std::string(std::strerror(errno)));
  }
  // A stale socket file from a crashed predecessor would fail the bind;
  // the daemon owns its path.
  ::unlink(options_.socket_path.c_str());
  std::memset(&addr, 0, sizeof(addr));
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, options_.socket_path.c_str(),
               sizeof(addr.sun_path) - 1);
  if (::bind(listen_fd_, reinterpret_cast<struct sockaddr*>(&addr),
             sizeof(addr)) != 0 ||
      ::listen(listen_fd_, 64) != 0) {
    return Status::Error("cannot bind " + options_.socket_path + ": " +
                         std::string(std::strerror(errno)));
  }
  if (options_.http_port >= 0) {
    http_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (http_fd_ < 0) {
      return Status::Error("cannot create HTTP socket: " +
                           std::string(std::strerror(errno)));
    }
    int one = 1;
    ::setsockopt(http_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    struct sockaddr_in http_addr;
    std::memset(&http_addr, 0, sizeof(http_addr));
    http_addr.sin_family = AF_INET;
    http_addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    http_addr.sin_port = htons(static_cast<uint16_t>(options_.http_port));
    if (::bind(http_fd_, reinterpret_cast<struct sockaddr*>(&http_addr),
               sizeof(http_addr)) != 0 ||
        ::listen(http_fd_, 16) != 0) {
      return Status::Error("cannot bind 127.0.0.1:" +
                           std::to_string(options_.http_port) + ": " +
                           std::string(std::strerror(errno)));
    }
    socklen_t len = sizeof(http_addr);
    ::getsockname(http_fd_, reinterpret_cast<struct sockaddr*>(&http_addr),
                  &len);
    http_port_ = static_cast<int>(ntohs(http_addr.sin_port));
  }
  return Status::Ok();
}

void DaemonServer::Stop() { stop_.store(true, std::memory_order_relaxed); }

void DaemonServer::Run() {
  if (http_fd_ >= 0) {
    http_thread_ = std::thread(&DaemonServer::HttpLoop, this);
  }
  while (!stop_.load(std::memory_order_relaxed)) {
    struct pollfd fds[2];
    fds[0].fd = listen_fd_;
    fds[0].events = POLLIN;
    nfds_t nfds = 1;
    if (wake_fd_ >= 0) {
      fds[1].fd = wake_fd_;
      fds[1].events = POLLIN;
      nfds = 2;
    }
    int ready = ::poll(fds, nfds, 200);
    if (ready <= 0) continue;  // timeout or EINTR: re-check stop_
    if (nfds == 2 && (fds[1].revents & POLLIN) != 0) {
      char drain[16];
      while (::read(wake_fd_, drain, sizeof(drain)) > 0) {
      }
      break;  // SIGINT/SIGTERM: graceful stop
    }
    if ((fds[0].revents & POLLIN) == 0) continue;
    int conn = ::accept(listen_fd_, nullptr, nullptr);
    if (conn < 0) continue;
    std::lock_guard<std::mutex> lock(conn_mu_);
    connections_.emplace_back(&DaemonServer::Serve, this, conn);
  }
  stop_.store(true, std::memory_order_relaxed);
  // In-flight requests complete: connection threads only exit between
  // requests (or on client hangup), and each joins here before Run()
  // returns — the first half of the graceful-drain contract.
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    for (std::thread& t : connections_) {
      if (t.joinable()) t.join();
    }
    connections_.clear();
  }
  if (http_thread_.joinable()) http_thread_.join();
  ::close(listen_fd_);
  listen_fd_ = -1;
  ::unlink(options_.socket_path.c_str());
}

void DaemonServer::Serve(int fd) {
  std::string buffer;
  char chunk[4096];
  bool open = true;
  while (open) {
    struct pollfd pfd;
    pfd.fd = fd;
    pfd.events = POLLIN;
    int ready = ::poll(&pfd, 1, 200);
    if (ready < 0 && errno != EINTR) break;
    if (ready <= 0) {
      // Idle: wind down once the server stops (a half-typed request
      // from a client that will never finish does not block shutdown).
      if (stop_.load(std::memory_order_relaxed)) break;
      continue;
    }
    ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) break;  // hangup or error
    buffer.append(chunk, static_cast<size_t>(n));
    size_t start = 0;
    size_t nl;
    while (open && (nl = buffer.find('\n', start)) != std::string::npos) {
      std::string line = buffer.substr(start, nl - start);
      start = nl + 1;
      if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
      std::string response;
      open = HandleLine(line, &response);
      if (!SendAll(fd, response)) open = false;
    }
    buffer.erase(0, start);
  }
  ::close(fd);
}

bool DaemonServer::HandleLine(const std::string& line, std::string* out) {
  Result<DaemonRequest> parsed = ParseDaemonRequest(line);
  if (!parsed.ok()) {
    *out += RenderError(parsed.status().message());
    return true;
  }
  core_->CountRequest();
  switch (parsed->op) {
    case DaemonOp::kSubmit: {
      InputFormat format = parsed->has_format ? parsed->format
                                              : core_->default_format();
      Result<SubmitOutcome> outcome =
          core_->Submit(std::move(parsed->doc), format);
      if (!outcome.ok()) {
        *out += RenderError(outcome.status().message());
        return true;
      }
      const SubmitOutcome& o = *outcome;
      std::string resp = "{\"ok\":true,\"op\":\"SUBMIT\",\"label\":";
      AppendJsonString(&resp, parsed->label);
      resp += ",\"epoch\":" + std::to_string(o.epoch->id);
      resp += ",\"positions\":" + std::to_string(o.result.positions);
      resp += ",\"latency_us\":" + std::to_string(o.latency_us);
      resp += ",\"results\":[";
      for (size_t i = 0; i < o.result.accept.size(); ++i) {
        if (i > 0) resp.push_back(',');
        resp += "{\"qid\":" + std::to_string(o.epoch->qids[i]);
        resp += ",\"query\":";
        AppendJsonString(&resp, o.epoch->query_texts[i]);
        resp += ",\"match\":";
        resp += o.result.accept[i] ? "true" : "false";
        if (o.result.accept[i]) {
          resp += ",\"pos\":" + std::to_string(o.result.first_match[i]);
        }
        resp.push_back('}');
      }
      resp += "]}\n";
      *out += resp;
      return true;
    }
    case DaemonOp::kAdmit: {
      Result<uint64_t> qid = core_->Admit(parsed->query);
      if (!qid.ok()) {
        *out += RenderError(qid.status().message());
        return true;
      }
      std::shared_ptr<const DaemonEpoch> epoch = core_->current_epoch();
      *out += "{\"ok\":true,\"op\":\"ADMIT\",\"qid\":" +
              std::to_string(*qid) +
              ",\"epoch\":" + std::to_string(epoch->id) +
              ",\"queries\":" + std::to_string(epoch->qids.size()) + "}\n";
      return true;
    }
    case DaemonOp::kRetire: {
      Status s = core_->Retire(parsed->qid);
      if (!s.ok()) {
        *out += RenderError(s.message());
        return true;
      }
      std::shared_ptr<const DaemonEpoch> epoch = core_->current_epoch();
      *out += "{\"ok\":true,\"op\":\"RETIRE\",\"qid\":" +
              std::to_string(parsed->qid) +
              ",\"epoch\":" + std::to_string(epoch->id) +
              ",\"queries\":" + std::to_string(epoch->qids.size()) + "}\n";
      return true;
    }
    case DaemonOp::kStats: {
      *out += "{\"ok\":true,\"op\":\"STATS\",\"stats\":" +
              core_->RenderStatsJson() + "}\n";
      return true;
    }
    case DaemonOp::kShutdown: {
      *out += "{\"ok\":true,\"op\":\"SHUTDOWN\"}\n";
      Stop();
      return false;
    }
  }
  *out += RenderError("unreachable op");
  return true;
}

void DaemonServer::HttpLoop() {
  while (!stop_.load(std::memory_order_relaxed)) {
    struct pollfd pfd;
    pfd.fd = http_fd_;
    pfd.events = POLLIN;
    int ready = ::poll(&pfd, 1, 200);
    if (ready <= 0 || (pfd.revents & POLLIN) == 0) continue;
    int conn = ::accept(http_fd_, nullptr, nullptr);
    if (conn < 0) continue;
    // One tiny request at a time: read the header block, answer, close.
    std::string request;
    char chunk[2048];
    for (int spins = 0; spins < 50; ++spins) {
      struct pollfd cpfd;
      cpfd.fd = conn;
      cpfd.events = POLLIN;
      if (::poll(&cpfd, 1, 100) <= 0) continue;
      ssize_t n = ::recv(conn, chunk, sizeof(chunk), 0);
      if (n <= 0) break;
      request.append(chunk, static_cast<size_t>(n));
      if (request.find("\r\n\r\n") != std::string::npos ||
          request.find("\n\n") != std::string::npos) {
        break;
      }
    }
    std::string path;
    size_t sp1 = request.find(' ');
    if (sp1 != std::string::npos) {
      size_t sp2 = request.find(' ', sp1 + 1);
      if (sp2 != std::string::npos) {
        path = request.substr(sp1 + 1, sp2 - sp1 - 1);
      }
    }
    std::string body;
    std::string status_line = "HTTP/1.1 200 OK";
    std::string content_type = "text/plain; version=0.0.4; charset=utf-8";
    if (path == "/metrics") {
      body = core_->registry().RenderProm();
    } else if (path == "/healthz") {
      body = "ok\n";
    } else {
      status_line = "HTTP/1.1 404 Not Found";
      body = "not found\n";
    }
    std::string response = status_line + "\r\nContent-Type: " +
                           content_type +
                           "\r\nContent-Length: " +
                           std::to_string(body.size()) +
                           "\r\nConnection: close\r\n\r\n" + body;
    SendAll(conn, response);
    ::close(conn);
  }
  ::close(http_fd_);
  http_fd_ = -1;
}

}  // namespace nw
