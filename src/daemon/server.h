// NWDaemon transport: the Unix-domain control socket (newline-delimited
// JSON requests, see daemon/protocol.h) and the minimal HTTP /metrics
// endpoint (Prometheus text exposition straight from the core registry's
// RenderProm). One thread per control connection; one thread for HTTP.
//
// Shutdown paths, all converging on the same graceful drain:
//   * a SHUTDOWN request — the connection gets its {"ok":true} response
//     first, then the server stops accepting and Run() returns;
//   * SIGINT/SIGTERM — InstallSignalWakeFd() routes the signal through a
//     self-pipe (the only async-signal-safe thing a handler can do is
//     write a byte) that the accept loop polls alongside the listener.
// Run() returning means: no new connections, every in-flight request
// answered, every connection thread joined. The caller then drains the
// core (DaemonCore::DrainAndStop) and takes the final pulse tick — the
// exit-0 contract tested by the death-free shutdown test.
#ifndef NW_DAEMON_SERVER_H_
#define NW_DAEMON_SERVER_H_

#include <atomic>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "support/result.h"

namespace nw {

class DaemonCore;

/// Installs SIGINT/SIGTERM handlers that write one byte to a self-pipe
/// and returns the pipe's read end (-1 on failure). Pass the fd to
/// DaemonServer::set_wake_fd so the accept loop wakes on the signal.
/// Call at most once per process; the handlers stay installed.
int InstallSignalWakeFd();

struct ServerOptions {
  /// Control-socket path; bound fresh (a stale file is unlinked first).
  std::string socket_path;
  /// HTTP /metrics port on 127.0.0.1: -1 disables, 0 binds an ephemeral
  /// port (read the chosen one back via http_port() after Start).
  int http_port = -1;
};

class DaemonServer {
 public:
  /// `core` must be started and must outlive the server.
  DaemonServer(DaemonCore* core, ServerOptions options);
  ~DaemonServer();

  DaemonServer(const DaemonServer&) = delete;
  DaemonServer& operator=(const DaemonServer&) = delete;

  /// Binds + listens on the control socket (and the HTTP port when
  /// enabled). Errors name the failing path/port.
  Status Start();

  /// The HTTP port actually bound (the ephemeral answer for port 0);
  /// -1 when HTTP is disabled. Valid after Start().
  int http_port() const { return http_port_; }

  /// Signal wake fd (see InstallSignalWakeFd); -1 (default) disables.
  /// Set before Run().
  void set_wake_fd(int fd) { wake_fd_ = fd; }

  /// Accept loop: serves until a SHUTDOWN request, a wake-fd byte, or
  /// Stop(). On return every connection thread is joined and the
  /// sockets are closed.
  void Run();

  /// Asks Run() to wind down (thread-safe; used by tests).
  void Stop();

 private:
  void HttpLoop();
  void Serve(int fd);
  /// Handles one request line; appends the response (newline included)
  /// to *out. Returns false when the connection should close (SHUTDOWN).
  bool HandleLine(const std::string& line, std::string* out);

  DaemonCore* core_;
  ServerOptions options_;
  int listen_fd_ = -1;
  int http_fd_ = -1;
  int http_port_ = -1;
  int wake_fd_ = -1;
  std::atomic<bool> stop_{false};
  std::thread http_thread_;
  std::mutex conn_mu_;
  std::vector<std::thread> connections_;
};

}  // namespace nw

#endif  // NW_DAEMON_SERVER_H_
