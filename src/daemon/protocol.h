// NWDaemon wire protocol: newline-delimited JSON over the control
// socket. Each request is ONE flat JSON object on ONE line; each
// response is one JSON object on one line. Five operations:
//
//   {"op":"SUBMIT","doc":"<a>..</a>","format":"xml","label":"doc-1"}
//   {"op":"ADMIT","query":"//b"}
//   {"op":"RETIRE","qid":3}
//   {"op":"STATS"}
//   {"op":"SHUTDOWN"}
//
// `format` (xml | json | trace, default xml) and `label` are optional
// on SUBMIT; everything else shown is required for its op. Unknown ops
// and unknown keys are errors — the daemon never silently drops part of
// a request (the same fail-fast contract the CLI's enum flags hold).
// Full grammar and the response shapes are documented in docs/DAEMON.md.
//
// The parser here is deliberately NOT a general JSON parser: requests
// are flat (no nested objects/arrays), values are strings, unsigned
// integers, or booleans, and strings support the standard escapes
// including \uXXXX with surrogate pairs (Python's json.dumps default
// ensure_ascii output must round-trip document bytes exactly).
#ifndef NW_DAEMON_PROTOCOL_H_
#define NW_DAEMON_PROTOCOL_H_

#include <cstdint>
#include <string>

#include "stream/token_stream.h"
#include "support/result.h"

namespace nw {

/// The five control-socket operations.
enum class DaemonOp : uint8_t {
  kSubmit,    ///< evaluate one document against the current epoch
  kAdmit,     ///< compile a new query into the live bank, online
  kRetire,    ///< drop an admitted query from the bank, online
  kStats,     ///< per-epoch serving metrics as a JSON object
  kShutdown,  ///< drain in-flight documents and exit the server loop
};

/// Canonical uppercase wire name ("SUBMIT", ...).
const char* DaemonOpName(DaemonOp op);

/// One decoded request. Fields beyond `op` are meaningful only for the
/// ops that carry them (see the header comment).
struct DaemonRequest {
  DaemonOp op = DaemonOp::kStats;
  std::string doc;                         ///< SUBMIT payload
  InputFormat format = InputFormat::kXml;  ///< SUBMIT front end
  bool has_format = false;                 ///< format key present?
  std::string label;                       ///< SUBMIT echo label
  std::string query;                       ///< ADMIT query text
  uint64_t qid = 0;                        ///< RETIRE target
  bool has_qid = false;                    ///< qid key present?
};

/// Decodes one request line. Errors carry a one-line human message the
/// server echoes back verbatim as {"ok":false,"error":...}; nothing is
/// ever half-applied — a request with any unknown op/key/value fails
/// whole.
Result<DaemonRequest> ParseDaemonRequest(const std::string& line);

}  // namespace nw

#endif  // NW_DAEMON_PROTOCOL_H_
