// NWDaemon core: the resident serving engine behind nwqueryd (ROADMAP:
// NWDaemon). The paper's one-pass/whole-bank guarantee only becomes a
// service when the compiled bank outlives any single document; this
// layer keeps one ShardedEvaluator hot across documents, admits and
// retires queries online, and refreshes the frozen snapshot epoch-style:
//
//   epoch — an immutable published serving state: the admitted queries,
//     their optimized bank, a FrozenBank snapshot, the alphabet at
//     publish time, and the NWPulse baseline capture per-epoch metrics
//     delta against. Published RCU-fashion as shared_ptr<const
//     DaemonEpoch>: readers (the dispatcher, STATS renders) copy the
//     handle and never block a publisher; a superseded epoch is
//     reclaimed when its last holder drops it.
//
//   admission — ADMIT parses the query against the master alphabet,
//     re-runs the optimizer pipeline over the whole bank, and publishes
//     a COLD epoch (frozen without exploration: the snapshot holds just
//     the initial state, so every step misses to the overflow banks —
//     correct immediately, slow until refreshed). Admission latency is
//     therefore compile-bound, not exploration-bound.
//
//   refresh — a background thread replays a bounded reservoir of recent
//     documents through the live SharedBank (promoting the tuples real
//     traffic needs, exactly the ones the overflow banks kept hitting),
//     completes with a capped ExploreAll, freezes, and publishes a
//     refreshed epoch sharing the same bank — so the frozen hit rate
//     climbs back toward 1.0 after every admission, with zero reader
//     stalls (serving threads keep streaming over the old snapshot
//     until their batch completes).
//
// Threading: SUBMITs enqueue to a single dispatcher thread (the
// ShardedEvaluator is not re-entrant — one EvaluateCorpus at a time by
// contract) which batches queued documents per format and fans each
// batch across the shard workers. ADMIT/RETIRE/refresh serialize under
// one admission mutex; epoch publication is a pointer swap under a
// second tiny mutex. All daemon-sink metric writes happen under the
// admission mutex or the dispatcher thread's stats mutex, keeping the
// relaxed-atomic cells single-writer-at-a-time.
#ifndef NW_DAEMON_DAEMON_H_
#define NW_DAEMON_DAEMON_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "nw/alphabet.h"
#include "obs/pulse.h"
#include "obs/stats.h"
#include "opt/pipeline.h"
#include "query/nwquery.h"
#include "serve/frozen_bank.h"
#include "serve/sharded.h"
#include "stream/token_stream.h"
#include "support/result.h"

namespace nw {

/// Construction-time knobs for DaemonCore.
struct DaemonOptions {
  /// Shard workers per EvaluateCorpus batch.
  size_t threads = 1;
  /// Front end assumed for SUBMITs that carry no format tag.
  InputFormat default_format = InputFormat::kXml;
  /// Optimizer passes for every (re)compile; bank is forced on — the
  /// daemon serves frozen snapshots, which need the shared product.
  OptOptions opt = OptOptions::All();
  /// ExploreAll state cap for the refresh pass (the nwquery freeze cap's
  /// daemon twin; a bank that trips it serves the partial snapshot).
  size_t refresh_cap = 1u << 16;
  /// Recent documents kept for refresh replay (0 disables replay; the
  /// refresh is then pure ExploreAll).
  size_t replay_capacity = 64;
};

/// One published serving state. Immutable after publication; the `bank`
/// is shared with later refreshed epochs of the same admission set and
/// is mutated ONLY under the core's admission mutex — never through
/// this struct.
struct DaemonEpoch {
  uint64_t id = 0;
  /// True when this epoch's snapshot came from a refresh (replay +
  /// ExploreAll) rather than a cold admission freeze.
  bool refreshed = false;
  /// Admission ids, in bank order (= query/result index order).
  std::vector<uint64_t> qids;
  /// Normal-form query texts, parallel to qids.
  std::vector<std::string> query_texts;
  /// Owns the compiled NWAs and the live SharedBank the frozen snapshot
  /// (and every overflow bank) aliases into.
  std::shared_ptr<OptimizedBank> bank;
  /// The immutable snapshot this epoch serves — the RCU unit.
  std::shared_ptr<const FrozenBank> frozen;
  /// Master-alphabet snapshot at publish (workers copy it per batch).
  Alphabet alphabet;
  size_t num_symbols = 0;
  /// Registry capture at publish: per-epoch metrics are
  /// SnapshotDelta(baseline, now).
  StatsSnapshot baseline;
};

/// One SUBMIT's outcome: the document's per-query results plus the
/// epoch that served it (so callers can render query texts and tests
/// can oracle-check against exactly that epoch's bank).
struct SubmitOutcome {
  std::shared_ptr<const DaemonEpoch> epoch;
  DocResult result;
  /// Submit-to-result wall time (queue wait + evaluation), µs.
  uint64_t latency_us = 0;
};

/// Per-epoch serving metrics (the STATS payload), derived from the
/// snapshot delta between the epoch's publish baseline and now.
struct EpochMetrics {
  uint64_t epoch = 0;
  bool refreshed = false;
  size_t queries = 0;
  size_t frozen_states = 0;
  size_t num_symbols = 0;
  // -- interval (since this epoch was published) --
  uint64_t documents = 0;
  uint64_t positions = 0;
  uint64_t frozen_hits = 0;
  uint64_t frozen_misses = 0;
  bool has_traffic = false;
  double hit_rate = 0.0;  ///< meaningful only when has_traffic
  uint64_t doc_p50_us = 0;
  uint64_t doc_p99_us = 0;
  // -- lifetime --
  uint64_t total_requests = 0;
  uint64_t total_documents = 0;
  uint64_t admissions = 0;
  uint64_t retirements = 0;
  uint64_t refreshes = 0;
  uint64_t admit_p99_us = 0;
};

/// The resident engine. Construct with at least one query (a SharedBank
/// product needs >= 1 automaton, so a daemon serving zero queries is
/// unrepresentable — RETIRE of the last query is rejected for the same
/// reason), then Start(); Submit/Admit/Retire are safe from any number
/// of connection threads. DrainAndStop() completes every accepted
/// SUBMIT before returning — the graceful-shutdown half of the protocol.
class DaemonCore {
 public:
  /// Parses and compiles `initial_queries` (normal nwquery grammar, one
  /// per entry), builds epoch 0 cold, then refreshes synchronously so
  /// startup serves a warm snapshot. Aborts (NW_CHECK) on an empty
  /// list; a query that fails to parse leaves the object unusable with
  /// the message in init_error() — check ok() before Start().
  DaemonCore(const std::vector<std::string>& initial_queries,
             const DaemonOptions& options);
  ~DaemonCore();

  DaemonCore(const DaemonCore&) = delete;
  DaemonCore& operator=(const DaemonCore&) = delete;

  /// False when an initial query failed to parse/compile; the error has
  /// the message. A !ok() core must not be started.
  bool ok() const { return init_error_.ok(); }
  const Status& init_error() const { return init_error_; }

  /// Launches the dispatcher and refresher threads. Call once.
  void Start();

  /// Stops accepting new work, completes every already-accepted SUBMIT,
  /// joins the background threads. Idempotent; the destructor calls it.
  void DrainAndStop();

  /// Evaluates one document against the current epoch. Blocks until the
  /// dispatcher's batch containing it completes. Thread-safe.
  Result<SubmitOutcome> Submit(std::string doc, InputFormat format);

  /// Tallies one accepted protocol request (any op) into the daemon
  /// sink. The server calls this once per parsed request; direct API
  /// users (tests) may skip it. Thread-safe.
  void CountRequest();

  /// Admits one query online: compile + optimize into a fresh bank,
  /// publish a cold epoch, nudge the background refresh. Returns the
  /// new query's admission id. Thread-safe; admissions serialize.
  Result<uint64_t> Admit(const std::string& query_text);

  /// Retires an admitted query by id. Rejects unknown ids and the last
  /// remaining query. Thread-safe.
  Status Retire(uint64_t qid);

  /// Blocks until a refresh published at or after this call completes —
  /// the deterministic spelling the tests and a drain use ("the hit
  /// rate has climbed" needs a refreshed epoch to exist).
  void AwaitRefresh();

  /// The currently-serving epoch (never null after construction).
  std::shared_ptr<const DaemonEpoch> current_epoch() const;

  /// Per-epoch metrics: delta between the current epoch's baseline and
  /// a capture taken now. Thread-safe.
  EpochMetrics Metrics() const;

  /// The STATS response payload: Metrics() as one stable JSON object.
  std::string RenderStatsJson() const;

  /// The registry behind /metrics (RenderProm) and the pulse sampler.
  /// Fully registered by the end of construction — safe to sample.
  const StatsRegistry& registry() const { return registry_; }

  size_t threads() const { return options_.threads; }
  InputFormat default_format() const { return options_.default_format; }

 private:
  struct PendingDoc {
    std::string text;
    InputFormat format;
    uint64_t enqueue_us;
    std::promise<SubmitOutcome> done;
  };

  /// Builds bank + frozen from `admitted_` and publishes a new epoch.
  /// `refreshed` tags the epoch; `explore` runs the replay + ExploreAll
  /// warmup before freezing (cold admissions skip it). Caller holds
  /// admit_mu_.
  void PublishEpochLocked(bool refreshed, bool explore);

  /// Rebuilds the OptimizedBank from the admitted ASTs. Caller holds
  /// admit_mu_.
  void RebuildBankLocked();

  void DispatcherLoop();
  void RefresherLoop();

  /// Remembers a document for refresh replay (bounded ring).
  void RememberDoc(const std::string& text, InputFormat format);

  DaemonOptions options_;
  Status init_error_;

  // -- admission state (admit_mu_): the master alphabet, the admitted
  // query list, and the bank under construction. --
  mutable std::mutex admit_mu_;
  Alphabet alphabet_;
  Symbol other_ = Alphabet::kNoSymbol;
  struct Admitted {
    uint64_t qid;
    std::string text;  ///< normal form (FormatQuery)
    Query ast;         ///< pre-rewrite AST, recompiled on every rebuild
  };
  std::vector<Admitted> admitted_;
  uint64_t next_qid_ = 0;
  std::shared_ptr<OptimizedBank> bank_;

  // -- epoch publication (state_mu_): the RCU pointer swap. --
  mutable std::mutex state_mu_;
  std::shared_ptr<const DaemonEpoch> epoch_;
  uint64_t next_epoch_id_ = 0;

  // -- dispatch queue (queue_mu_). --
  std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::deque<std::unique_ptr<PendingDoc>> queue_;
  bool stopping_ = false;

  // -- refresh signal (refresh_mu_). --
  std::mutex refresh_mu_;
  std::condition_variable refresh_cv_;
  uint64_t refresh_requested_ = 0;  ///< generation counter
  uint64_t refresh_done_ = 0;
  bool refresh_stop_ = false;

  // -- replay reservoir (replay_mu_): recent docs for refresh warmup. --
  std::mutex replay_mu_;
  struct ReplayDoc {
    std::string text;
    InputFormat format;
  };
  std::deque<ReplayDoc> replay_;

  // -- observability. Registration completes in the constructor (the
  // pulse scraper and RenderProm iterate the sink list lock-free). The
  // daemon sink's cells are written under admit_mu_ (control ops) or
  // stats_mu_ (dispatcher + connection-thread request tallies). --
  StatsRegistry registry_;
  StatsSink daemon_sink_;
  mutable std::mutex stats_mu_;

  // -- the evaluator pool: one ShardedEvaluator reused across epochs
  // via Rebind (only the dispatcher thread touches it after Start). --
  std::unique_ptr<ShardedEvaluator> evaluator_;
  uint64_t bound_epoch_ = 0;  ///< epoch id the evaluator last Rebind-ed

  std::thread dispatcher_;
  std::thread refresher_;
  bool started_ = false;
};

}  // namespace nw

#endif  // NW_DAEMON_DAEMON_H_
