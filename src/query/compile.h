// NWQuery → deterministic NWA compilation (paper §3.2): each query atom
// becomes a small deterministic automaton over the tagged stream, and the
// boolean connectives lower through the nondeterministic closure ops
// (language_ops.h) followed by determinization (determinize.h).
//
// Atom constructions:
//  * Path atoms (/a//b/*) compile the root-path language to a word regex
//    (child step = name, descendant step = Σ* name, wildcard = Σ), then a
//    DFA; the NWA advances the DFA along the current ancestor chain —
//    calls step it forward pushing the parent context on the hierarchical
//    edge, returns restore it — and latches an accept state the moment
//    some element's root path lands in the DFA's language. This is the
//    paper's point that word automata track linear order while NWAs track
//    the hierarchy with the same streaming interface.
//  * Order atoms (a then b) reuse PatternOrderQuery (flat NWA, §3.3).
//  * Depth guards (depth >= k) reuse MinDepthQuery.
#ifndef NW_QUERY_COMPILE_H_
#define NW_QUERY_COMPILE_H_

#include "nwa/nwa.h"
#include "query/nwquery.h"

namespace nw {

/// Compiles `q` to a deterministic NWA over symbols [0, num_symbols).
/// Every symbol interned in the query must be < num_symbols; documents
/// streamed against the result must remap out-of-range symbols (names
/// interned after compilation) to a fixed in-range catch-all — see
/// QueryEngine::set_other_symbol.
Nwa CompileQuery(const Query& q, size_t num_symbols);

/// The path-atom automaton exposed for tests: accepts exactly the streams
/// in which some element's chain of enclosing element names (root first,
/// the element itself last) matches `steps`.
Nwa CompilePathNwa(const std::vector<PathStep>& steps, size_t num_symbols);

/// Path-set atom (Query::Op::kPathSet): one deterministic automaton for
/// the UNION of the member path languages — the root-path regexes are
/// alternated before the regex → DFA → NWA lowering, so merged sibling
/// paths share DFA states along common prefixes instead of round-tripping
/// through Nnwa union + determinization.
Nwa CompilePathSetNwa(const std::vector<std::vector<PathStep>>& step_sets,
                      size_t num_symbols);

}  // namespace nw

#endif  // NW_QUERY_COMPILE_H_
