// nwquery — streaming NWQuery evaluation over XML documents.
//
//   nwquery [options] <query-file> [xml-file ...]
//
// The query file holds one NWQuery per line ('#' starts a comment). All
// queries are compiled to deterministic NWAs up front, run through the
// NWOpt optimizer pipeline (rewrite → minimize → shared bank, see
// opt/pipeline.h), then every document — files and/or generated random
// documents — is streamed exactly once through the batched QueryEngine.
// A matching query reports WHERE it matched: the number of stream
// positions consumed when its accept state first latched.
//
// Options:
//   --opt LEVEL     optimizer level: none | rewrite | min | bank | all
//                   (default all; --opt=LEVEL also accepted)
//   --random N      also evaluate over N generated random documents
//   --positions P   approximate positions per random document (default 2000)
//   --depth D       maximum depth of random documents (default 16)
//   --seed S        random document seed (default 42)
//   --stats         print compile-stage state counts and per-document
//                   traversal / memory statistics
//   --quiet         suppress per-query match lines
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "opt/pipeline.h"
#include "query/engine.h"
#include "query/nwquery.h"
#include "support/rng.h"
#include "xml/xml.h"

namespace {

using namespace nw;

struct Options {
  std::string query_file;
  std::vector<std::string> xml_files;
  OptOptions opt = OptOptions::All();
  std::string opt_level = "all";
  size_t random_docs = 0;
  size_t positions = 2000;
  size_t depth = 16;
  uint64_t seed = 42;
  bool stats = false;
  bool quiet = false;
};

int Usage() {
  std::fprintf(stderr,
               "usage: nwquery [--opt none|rewrite|min|bank|all] [--random N] "
               "[--positions P] [--depth D] [--seed S] [--stats] [--quiet] "
               "<query-file> [xml-file ...]\n");
  return 2;
}

/// Strict decimal parse; rejects empty, non-digit, and overflowing input
/// (std::stoul would throw — the CLI must not crash on a typo).
bool ParseUint(const char* s, uint64_t* out) {
  if (s == nullptr || *s == '\0') return false;
  uint64_t v = 0;
  for (; *s; ++s) {
    if (*s < '0' || *s > '9') return false;
    if (v > (UINT64_MAX - 9) / 10) return false;
    v = v * 10 + static_cast<uint64_t>(*s - '0');
  }
  *out = v;
  return true;
}

bool ParseArgs(int argc, char** argv, Options* opt) {
  std::vector<std::string> positional;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto value = [&](uint64_t* out) {
      const char* v = i + 1 < argc ? argv[++i] : nullptr;
      if (ParseUint(v, out)) return true;
      std::fprintf(stderr, "nwquery: %s needs a numeric value\n",
                   arg.c_str());
      return false;
    };
    uint64_t v = 0;
    if (arg == "--opt" || arg.rfind("--opt=", 0) == 0) {
      std::string level;
      if (arg == "--opt") {
        if (i + 1 >= argc) {
          std::fprintf(stderr, "nwquery: --opt needs a level\n");
          return false;
        }
        level = argv[++i];
      } else {
        level = arg.substr(std::strlen("--opt="));
      }
      if (!ParseOptLevel(level, &opt->opt)) {
        std::fprintf(stderr,
                     "nwquery: unknown --opt level '%s' (want none, rewrite, "
                     "min, bank, or all)\n",
                     level.c_str());
        return false;
      }
      opt->opt_level = level;
    } else if (arg == "--random") {
      if (!value(&v)) return false;
      opt->random_docs = v;
    } else if (arg == "--positions") {
      if (!value(&v)) return false;
      opt->positions = v;
    } else if (arg == "--depth") {
      if (!value(&v)) return false;
      opt->depth = v;
    } else if (arg == "--seed") {
      if (!value(&v)) return false;
      opt->seed = v;
    } else if (arg == "--stats") {
      opt->stats = true;
    } else if (arg == "--quiet") {
      opt->quiet = true;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "nwquery: unknown option %s\n", arg.c_str());
      return false;
    } else {
      positional.push_back(std::move(arg));
    }
  }
  if (opt->random_docs > 0 && opt->depth == 0) {
    std::fprintf(stderr,
                 "nwquery: --depth must be >= 1 (documents need a root)\n");
    return false;
  }
  if (positional.empty()) return false;
  opt->query_file = positional[0];
  opt->xml_files.assign(positional.begin() + 1, positional.end());
  return opt->random_docs > 0 || !opt->xml_files.empty();
}

/// Streams one document through the engine and reports results.
void EvaluateDocument(const std::string& label, const std::string& text,
                      const std::vector<std::string>& query_texts,
                      Alphabet* alphabet, QueryEngine* engine,
                      const Options& opt) {
  size_t positions_before = engine->positions();
  std::vector<bool> results = engine->RunAll(text, alphabet);
  size_t doc_positions = engine->positions() - positions_before;
  size_t matched = 0;
  for (size_t i = 0; i < results.size(); ++i) {
    matched += results[i];
    if (!opt.quiet) {
      // A match reports WHERE: the position at which the query's accept
      // state first latched (tagged positions consumed; 0 = before any
      // input). Non-monotone queries (e.g. `not //b`) may latch early and
      // stop accepting later, so the position is the FIRST observation.
      std::string verdict = "no-match";
      if (results[i]) {
        verdict = "MATCH@" + std::to_string(engine->first_match(i));
      }
      std::printf("%s\t%s\tquery[%zu]\t%s\n", label.c_str(), verdict.c_str(),
                  i, query_texts[i].c_str());
    }
  }
  if (opt.stats) {
    std::printf(
        "%s\tstats\tpositions=%zu matched=%zu/%zu max_depth=%zu "
        "resident_states=%zu traversals=%zu\n",
        label.c_str(), doc_positions, matched, engine->num_queries(),
        engine->MaxStackDepth(), engine->ResidentStates(),
        engine->traversals());
  }
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  if (!ParseArgs(argc, argv, &opt)) return Usage();

  std::ifstream qf(opt.query_file);
  if (!qf) {
    std::fprintf(stderr, "nwquery: cannot open %s\n", opt.query_file.c_str());
    return 1;
  }

  // Phase 1: parse every query, interning element names.
  Alphabet alphabet;
  std::vector<Query> queries;
  std::vector<std::string> query_texts;
  std::string line;
  size_t lineno = 0;
  while (std::getline(qf, line)) {
    ++lineno;
    std::string stripped = line.substr(0, line.find('#'));
    if (stripped.find_first_not_of(" \t\r") == std::string::npos) continue;
    Result<Query> q = ParseQuery(stripped, &alphabet);
    if (!q.ok()) {
      std::fprintf(stderr, "nwquery: %s:%zu: %s\n", opt.query_file.c_str(),
                   lineno, q.status().message().c_str());
      return 1;
    }
    queries.push_back(q.Take());
    query_texts.push_back(FormatQuery(queries.back(), alphabet));
  }
  if (queries.empty()) {
    std::fprintf(stderr, "nwquery: %s holds no queries\n",
                 opt.query_file.c_str());
    return 1;
  }

  // Phase 2: fix the symbol space — query names, the text pseudo-symbol,
  // and a catch-all for element names first seen inside documents — and
  // run every query through the optimizer pipeline over it.
  alphabet.Intern("#text");
  Symbol other = alphabet.Intern("%other");
  const size_t num_symbols = alphabet.size();
  OptimizedBank bank = OptimizeBank(queries, num_symbols, opt.opt);
  if (opt.stats) {
    std::printf("compile\tstats\topt=%s queries=%zu states_compiled=%zu "
                "states_final=%zu shared_bank=%s\n",
                opt.opt_level.c_str(), bank.queries.size(),
                bank.states_compiled(), bank.states_final(),
                bank.shared != nullptr ? "yes" : "no");
  }

  QueryEngine engine(num_symbols);
  engine.set_other_symbol(other);
  // first_match() feeds the per-query MATCH@pos lines; a --quiet run never
  // prints them, so it skips the per-position acceptance scan too.
  engine.set_track_matches(!opt.quiet);
  bank.Register(&engine);

  // Phase 3: stream every document once through the whole query bank.
  for (const std::string& path : opt.xml_files) {
    std::ifstream df(path);
    if (!df) {
      std::fprintf(stderr, "nwquery: cannot open %s\n", path.c_str());
      return 1;
    }
    std::ostringstream buf;
    buf << df.rdbuf();
    std::string text = buf.str();
    EvaluateDocument(path, text, query_texts, &alphabet, &engine, opt);
  }

  if (opt.random_docs > 0) {
    // Generator alphabet: the element names the queries mention (skipping
    // the pseudo-symbols) plus one name the queries do not know, so the
    // catch-all remapping path is exercised.
    Alphabet gen;
    for (Symbol s = 0; s < num_symbols; ++s) {
      const std::string& name = alphabet.Name(s);
      if (name != "#text" && name != "%other") gen.Intern(name);
    }
    gen.Intern("unlisted");
    Rng rng(opt.seed);
    for (size_t d = 0; d < opt.random_docs; ++d) {
      std::string text =
          RandomXmlDocument(&rng, gen, opt.positions, opt.depth);
      EvaluateDocument("random[" + std::to_string(d) + "]", text,
                       query_texts, &alphabet, &engine, opt);
    }
  }
  return 0;
}
