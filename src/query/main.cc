// nwquery — streaming NWQuery evaluation over XML, JSON, or program-trace
// documents.
//
//   nwquery [options] <query-file> [doc-file ...]
//
// The query file holds one NWQuery per line ('#' starts a comment). All
// queries are compiled to deterministic NWAs up front, run through the
// NWOpt optimizer pipeline (rewrite → minimize → shared bank, see
// opt/pipeline.h), then every document — files and/or generated random
// documents — is streamed exactly once through the batched QueryEngine.
// A matching query reports WHERE it matched: the number of stream
// positions consumed when its accept state first latched.
//
// Options:
//   --opt LEVEL     optimizer level: none | rewrite | min | bank | all
//                   (default all; --opt=LEVEL also accepted)
//   --format F      input front end: xml (default) | json | trace — the
//                   tokenizer is the ONLY thing the flag changes; query
//                   compilation, the optimizer, sharding, and stats are
//                   format-blind (stream/token_stream.h)
//   --threads N     shard the documents across N worker threads over a
//                   frozen bank (implies --freeze; requires an --opt level
//                   that builds the shared bank: bank or all)
//   --freeze[=F,..] pre-explore the shared bank and serve an immutable
//                   snapshot: with no value, exhaustively over the query
//                   alphabet; with a comma-separated list of XML files,
//                   by training on those documents (steps the training
//                   never saw fall back to a per-shard overflow bank)
//   --random N      also evaluate over N generated random documents
//   --positions P   approximate positions per random document (default 2000)
//   --depth D       maximum depth of random documents (default 16)
//   --seed S        random document seed (default 42)
//   --stats         print compile-stage state counts and per-document
//                   traversal / memory statistics (plus, when serving
//                   frozen, the aggregate serve stats with the frozen-
//                   bank hit rate), then the NWStats registry dump —
//                   per-layer counters, the per-document latency
//                   histogram, the per-shard skew view, and the NWProf
//                   views: per-query cost attribution (match docs,
//                   accept observations, overflow escalations) and the
//                   compile-phase timeline (parse → rewrite → lower →
//                   minimize → bank_build → explore → freeze)
//   --stats=json    same instrumentation, rendered as one stable JSON
//                   object on the last stdout line (match lines are
//                   unchanged; the per-document text stats are folded
//                   into the JSON instead of printed)
//   --stats=prom    same instrumentation, rendered as a Prometheus/
//                   OpenMetrics text exposition on stdout (the scrape a
//                   daemon would serve; name/label scheme in
//                   docs/OBSERVABILITY.md)
//   --stats-interval=MS
//                   NWPulse: sample the stats registry every MS
//                   milliseconds on a background thread while documents
//                   stream, appending one self-describing JSONL record
//                   per tick — interval deltas, rates, interval latency
//                   percentiles, per-shard utilization (implies --stats)
//   --pulse-file F  JSONL destination for --stats-interval ("-" or
//                   default: stderr; under --watch a file must be named
//                   explicitly — the live frame owns stderr)
//   --watch         live terminal view, re-rendered every interval on
//                   stderr: run progress, docs/s, MB/s, interval
//                   p50/p99, frozen hit rate, per-shard utilization
//                   (implies --stats-interval=500 unless set)
//   --quiet         suppress per-query match lines
//
// Setting the NWQUERY_TRACE environment variable to a file path ("-" for
// stderr) additionally writes one trace event per document streamed:
// JSON lines by default, or — with NWQUERY_TRACE_FORMAT=chrome — a
// Chrome Trace Event Format array loadable in Perfetto, with one track
// per shard and per-shard counter series (see obs/trace.h and
// docs/OBSERVABILITY.md).
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "obs/prof.h"
#include "obs/pulse.h"
#include "obs/stats.h"
#include "obs/trace.h"
#include "opt/pipeline.h"
#include "query/engine.h"
#include "query/nwquery.h"
#include "serve/frozen_bank.h"
#include "serve/sharded.h"
#include "stream/token_stream.h"
#include "stream/tree_gen.h"
#include "support/rng.h"
#include "support/stopwatch.h"
#include "xml/xml.h"

namespace {

using namespace nw;

struct Options {
  std::string query_file;
  std::vector<std::string> xml_files;
  OptOptions opt = OptOptions::All();
  std::string opt_level = "all";
  InputFormat format = InputFormat::kXml;
  size_t threads = 1;
  bool freeze = false;
  std::vector<std::string> freeze_files;
  size_t random_docs = 0;
  size_t positions = 2000;
  size_t depth = 16;
  uint64_t seed = 42;
  bool stats = false;
  bool stats_json = false;
  bool stats_prom = false;
  uint64_t stats_interval_ms = 0;  ///< 0 = no NWPulse sampler
  std::string pulse_file;
  bool watch = false;
  bool quiet = false;

  /// True when the per-document/serve text stat lines should print —
  /// the machine renderings (json, prom) fold them into the final dump.
  bool stats_text() const { return stats && !stats_json && !stats_prom; }
};

int Usage() {
  std::fprintf(stderr,
               "usage: nwquery [--opt none|rewrite|min|bank|all] "
               "[--format xml|json|trace] "
               "[--threads N] [--freeze[=train.xml,...]] [--random N] "
               "[--positions P] [--depth D] [--seed S] "
               "[--stats[=json|prom]] [--stats-interval MS] "
               "[--pulse-file F] [--watch] "
               "[--quiet] <query-file> [xml-file ...]\n");
  return 2;
}

/// Strict decimal parse; rejects empty, non-digit, and overflowing input
/// (std::stoul would throw — the CLI must not crash on a typo).
bool ParseUint(const char* s, uint64_t* out) {
  if (s == nullptr || *s == '\0') return false;
  uint64_t v = 0;
  for (; *s; ++s) {
    if (*s < '0' || *s > '9') return false;
    if (v > (UINT64_MAX - 9) / 10) return false;
    v = v * 10 + static_cast<uint64_t>(*s - '0');
  }
  *out = v;
  return true;
}

bool ParseArgs(int argc, char** argv, Options* opt) {
  std::vector<std::string> positional;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto value = [&](uint64_t* out) {
      const char* v = i + 1 < argc ? argv[++i] : nullptr;
      if (ParseUint(v, out)) return true;
      std::fprintf(stderr, "nwquery: %s needs a numeric value\n",
                   arg.c_str());
      return false;
    };
    uint64_t v = 0;
    if (arg == "--opt" || arg.rfind("--opt=", 0) == 0) {
      std::string level;
      if (arg == "--opt") {
        if (i + 1 >= argc) {
          std::fprintf(stderr, "nwquery: --opt needs a level\n");
          return false;
        }
        level = argv[++i];
      } else {
        level = arg.substr(std::strlen("--opt="));
      }
      if (!ParseOptLevel(level, &opt->opt)) {
        std::fprintf(stderr,
                     "nwquery: unknown --opt level '%s' (want none, rewrite, "
                     "min, bank, or all)\n",
                     level.c_str());
        return false;
      }
      opt->opt_level = level;
    } else if (arg == "--format" || arg.rfind("--format=", 0) == 0) {
      std::string name;
      if (arg == "--format") {
        if (i + 1 >= argc) {
          std::fprintf(stderr, "nwquery: --format needs a value\n");
          return false;
        }
        name = argv[++i];
      } else {
        name = arg.substr(std::strlen("--format="));
      }
      if (!ParseInputFormat(name, &opt->format)) {
        std::fprintf(stderr,
                     "nwquery: unknown --format '%s' (want xml, json, or "
                     "trace)\n",
                     name.c_str());
        return false;
      }
    } else if (arg == "--threads") {
      if (!value(&v)) return false;
      if (v == 0) {
        std::fprintf(stderr, "nwquery: --threads must be >= 1\n");
        return false;
      }
      opt->threads = v;
    } else if (arg == "--freeze") {
      opt->freeze = true;
    } else if (arg.rfind("--freeze=", 0) == 0) {
      opt->freeze = true;
      std::string list = arg.substr(std::strlen("--freeze="));
      size_t start = 0;
      while (start <= list.size()) {
        size_t comma = list.find(',', start);
        if (comma == std::string::npos) comma = list.size();
        if (comma > start) {
          opt->freeze_files.push_back(list.substr(start, comma - start));
        }
        start = comma + 1;
      }
      if (opt->freeze_files.empty()) {
        std::fprintf(stderr, "nwquery: --freeze= needs at least one file\n");
        return false;
      }
    } else if (arg == "--random") {
      if (!value(&v)) return false;
      opt->random_docs = v;
    } else if (arg == "--positions") {
      if (!value(&v)) return false;
      opt->positions = v;
    } else if (arg == "--depth") {
      if (!value(&v)) return false;
      opt->depth = v;
    } else if (arg == "--seed") {
      if (!value(&v)) return false;
      opt->seed = v;
    } else if (arg == "--stats" || arg == "--stats=text") {
      opt->stats = true;
    } else if (arg == "--stats=json") {
      opt->stats = true;
      opt->stats_json = true;
    } else if (arg == "--stats=prom") {
      opt->stats = true;
      opt->stats_prom = true;
    } else if (arg.rfind("--stats=", 0) == 0) {
      // Catch the enum typo here, not in the generic unknown-option
      // branch: "--stats=promm" should say what the valid modes are, not
      // pretend the whole flag doesn't exist.
      std::fprintf(stderr,
                   "nwquery: unknown --stats mode '%s' (want text, json, "
                   "or prom)\n",
                   arg.c_str() + std::strlen("--stats="));
      return false;
    } else if (arg == "--stats-interval" ||
               arg.rfind("--stats-interval=", 0) == 0) {
      if (arg == "--stats-interval") {
        if (!value(&v)) return false;
      } else if (!ParseUint(arg.c_str() + std::strlen("--stats-interval="),
                            &v)) {
        std::fprintf(stderr,
                     "nwquery: --stats-interval needs a numeric value\n");
        return false;
      }
      if (v == 0) {
        std::fprintf(stderr, "nwquery: --stats-interval must be >= 1 ms\n");
        return false;
      }
      opt->stats_interval_ms = v;
      opt->stats = true;
    } else if (arg == "--pulse-file" || arg.rfind("--pulse-file=", 0) == 0) {
      if (arg == "--pulse-file") {
        if (i + 1 >= argc) {
          std::fprintf(stderr, "nwquery: --pulse-file needs a path\n");
          return false;
        }
        opt->pulse_file = argv[++i];
      } else {
        opt->pulse_file = arg.substr(std::strlen("--pulse-file="));
      }
      if (opt->pulse_file.empty()) {
        std::fprintf(stderr, "nwquery: --pulse-file needs a path\n");
        return false;
      }
    } else if (arg == "--watch") {
      opt->watch = true;
      opt->stats = true;
    } else if (arg == "--quiet") {
      opt->quiet = true;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "nwquery: unknown option %s\n", arg.c_str());
      return false;
    } else {
      positional.push_back(std::move(arg));
    }
  }
  // --watch and --pulse-file are sampler consumers: arm the sampler at
  // its default cadence when no interval was given explicitly.
  if ((opt->watch || !opt->pulse_file.empty()) &&
      opt->stats_interval_ms == 0) {
    opt->stats_interval_ms = 500;
  }
  // Sharding needs the immutable snapshot (a lazily-memoized SharedBank
  // mutates while streaming and cannot back concurrent engines).
  if (opt->threads > 1) opt->freeze = true;
  if (opt->freeze && !opt->opt.bank) {
    std::fprintf(stderr,
                 "nwquery: --freeze/--threads need the shared bank; use "
                 "--opt bank or --opt all\n");
    return false;
  }
  if (opt->random_docs > 0 && opt->depth == 0) {
    std::fprintf(stderr,
                 "nwquery: --depth must be >= 1 (documents need a root)\n");
    return false;
  }
  if (positional.empty()) return false;
  opt->query_file = positional[0];
  opt->xml_files.assign(positional.begin() + 1, positional.end());
  return opt->random_docs > 0 || !opt->xml_files.empty();
}

/// Reads a whole file; false (with a message) when it cannot be opened.
bool ReadFile(const std::string& path, std::string* out) {
  std::ifstream f(path);
  if (!f) {
    std::fprintf(stderr, "nwquery: cannot open %s\n", path.c_str());
    return false;
  }
  std::ostringstream buf;
  buf << f.rdbuf();
  *out = buf.str();
  return true;
}

/// The NWPulse JSONL destination, closed on scope exit when owned (an
/// explicit --pulse-file; "-" and the default map to stderr, not owned).
struct PulseOutput {
  std::FILE* f = nullptr;
  bool owned = false;
  ~PulseOutput() {
    if (owned && f != nullptr) std::fclose(f);
  }
};

bool OpenPulseOutput(const Options& opt, PulseOutput* out) {
  if (!opt.pulse_file.empty() && opt.pulse_file != "-") {
    out->f = std::fopen(opt.pulse_file.c_str(), "w");
    if (out->f == nullptr) {
      std::fprintf(stderr, "nwquery: cannot open %s\n",
                   opt.pulse_file.c_str());
      return false;
    }
    out->owned = true;
    return true;
  }
  // Default destination is stderr — except under --watch, whose live
  // frame owns the terminal; there JSONL needs an explicit file.
  if (!opt.pulse_file.empty() || !opt.watch) out->f = stderr;
  return true;
}

/// Arms the NWPulse background sampler when --stats-interval is set. The
/// registry must be fully registered (sinks and attribution tables) —
/// registration mutates the lists the scraper iterates.
std::unique_ptr<PulseSampler> StartSampler(const Options& opt,
                                           const StatsRegistry& registry,
                                           PulseOutput* pulse_out,
                                           const PulseProgress* progress) {
  if (opt.stats_interval_ms == 0) return nullptr;
  PulseSampler::Options po;
  po.interval_ms = opt.stats_interval_ms;
  po.jsonl = pulse_out->f;
  po.watch = opt.watch;
  po.progress = progress;
  auto sampler = std::make_unique<PulseSampler>(&registry, po);
  sampler->Start();
  return sampler;
}

/// Builds the random-document generator alphabet: the element names the
/// queries mention (skipping the pseudo-symbols) plus one name the
/// queries do not know, so the catch-all remapping path is exercised.
Alphabet GeneratorAlphabet(const Alphabet& alphabet, size_t num_symbols) {
  Alphabet gen;
  for (Symbol s = 0; s < num_symbols; ++s) {
    const std::string& name = alphabet.Name(s);
    if (name != "#text" && name != "%other") gen.Intern(name);
  }
  gen.Intern("unlisted");
  return gen;
}

/// One random document in the chosen front end's concrete syntax. XML
/// keeps the established RandomXmlDocument generator (its byte stream is
/// pinned by baselines); JSON and traces render a random format-agnostic
/// tree (stream/tree_gen.h).
std::string RandomDocument(Rng* rng, const Alphabet& gen, const Options& opt) {
  if (opt.format == InputFormat::kXml) {
    return RandomXmlDocument(rng, gen, opt.positions, opt.depth);
  }
  std::vector<std::string> names;
  for (Symbol s = 0; s < gen.size(); ++s) names.push_back(gen.Name(s));
  std::vector<TreeNode> forest =
      RandomForest(rng, names, opt.positions, opt.depth);
  return opt.format == InputFormat::kJson ? RenderJson(forest)
                                          : RenderTrace(forest);
}

/// Per-query match lines for one document (shared by the single-stream
/// and sharded paths so their outputs stay byte-identical).
void PrintMatchLines(const std::string& label, const std::vector<bool>& hits,
                     const std::vector<int64_t>& first_match,
                     const std::vector<std::string>& query_texts) {
  for (size_t i = 0; i < hits.size(); ++i) {
    // A match reports WHERE: the position at which the query's accept
    // state first latched (tagged positions consumed; 0 = accepting
    // before any input). Non-monotone queries (e.g. `not //b`) may latch
    // early and stop accepting later, so the position is the FIRST
    // observation.
    std::string verdict = "no-match";
    if (hits[i]) verdict = "MATCH@" + std::to_string(first_match[i]);
    std::printf("%s\t%s\tquery[%zu]\t%s\n", label.c_str(), verdict.c_str(),
                i, query_texts[i].c_str());
  }
}

/// Streams one document through the engine and reports results.
void EvaluateDocument(const std::string& label, const std::string& text,
                      const std::vector<std::string>& query_texts,
                      Alphabet* alphabet, QueryEngine* engine,
                      const Options& opt, Tracer* tracer) {
  TraceSpan span(tracer, "doc", label);
  size_t positions_before = engine->positions();
  std::vector<bool> results = engine->RunAll(text, alphabet, opt.format);
  size_t doc_positions = engine->positions() - positions_before;
  size_t matched = 0;
  for (bool hit : results) matched += hit;
  span.Note("positions", doc_positions);
  span.Note("bytes", text.size());
  span.Note("matched", matched);
  if (!opt.quiet) {
    std::vector<int64_t> first_match(results.size());
    for (size_t i = 0; i < results.size(); ++i) {
      first_match[i] = engine->first_match(i);
    }
    PrintMatchLines(label, results, first_match, query_texts);
  }
  if (opt.stats_text()) {
    std::printf(
        "%s\tstats\tpositions=%zu matched=%zu/%zu max_depth=%zu "
        "resident_states=%zu traversals=%zu\n",
        label.c_str(), doc_positions, matched, engine->num_queries(),
        engine->MaxStackDepth(), engine->ResidentStates(),
        engine->traversals());
  }
}

/// Final NWStats dump: one stable JSON object (--stats=json), the
/// Prometheus text exposition (--stats=prom), or the aligned text
/// rendering appended after the per-document lines.
void RenderStats(const StatsRegistry& registry, const Options& opt) {
  if (!opt.stats) return;
  if (opt.stats_json) {
    std::printf("%s\n", registry.RenderJson().c_str());
  } else if (opt.stats_prom) {
    std::fputs(registry.RenderProm().c_str(), stdout);
  } else {
    std::fputs(registry.RenderText().c_str(), stdout);
  }
}

/// The --freeze/--threads path: pre-explore the shared bank, snapshot it
/// into an immutable FrozenBank, and shard the whole corpus across worker
/// threads. Output (match lines, per-document order) is byte-identical to
/// the single-stream path at any thread count.
int ServeFrozen(const Options& opt, OptimizedBank* bank, Alphabet* alphabet,
                size_t num_symbols, Symbol other,
                const std::vector<std::string>& query_texts,
                StatsRegistry* registry, Tracer* tracer,
                CompileTimeline* timeline) {
  /// Exhaustive-exploration guard. The full product is exponential in the
  /// bank size and its return closure is |Q|·|frames|·|Σ| steps, so
  /// exhaustive freezing is for small banks; a bank that trips the cap is
  /// served from the partial snapshot (or should be trained with
  /// --freeze=corpus instead).
  constexpr size_t kFreezeStateCap = 1u << 16;
  SharedBank* shared = bank->shared.get();
  // The exploration/training sink: product states interned and memo
  // traffic while building the snapshot land under the "main" label; the
  // serving traffic lands in the per-shard sinks below.
  StatsSink main_sink;
  if (opt.stats) {
    registry->Register("main", &main_sink);
    shared->set_stats(&main_sink);
  }
  if (!opt.freeze_files.empty()) {
    // Train: stream the training corpus through a single-stream engine
    // over the shared bank; its memoization IS the exploration.
    Stopwatch explore_sw;
    const size_t states_before = shared->num_states();
    QueryEngine trainer(num_symbols);
    trainer.set_other_symbol(other);
    trainer.AddBank(shared);
    for (const std::string& path : opt.freeze_files) {
      std::string text;
      if (!ReadFile(path, &text)) return 1;
      trainer.RunAll(text, alphabet, opt.format);
    }
    if (timeline != nullptr) {
      timeline->Record("explore",
                       static_cast<uint64_t>(explore_sw.ElapsedUs()),
                       states_before, shared->num_states());
    }
  } else if (!shared->ExploreAll(kFreezeStateCap, timeline)) {
    std::fprintf(stderr,
                 "nwquery: exhaustive exploration stopped at %zu product "
                 "states; serving the partial snapshot (misses fall back "
                 "to the overflow banks)\n",
                 shared->num_states());
  }
  FrozenBank frozen = FrozenBank::Freeze(*shared, timeline);

  // Materialize the corpus — same documents, same labels, same order as
  // the single-stream path.
  std::vector<std::string> labels;
  std::vector<std::string> corpus;
  for (const std::string& path : opt.xml_files) {
    std::string text;
    if (!ReadFile(path, &text)) return 1;
    labels.push_back(path);
    corpus.push_back(std::move(text));
  }
  if (opt.random_docs > 0) {
    Alphabet gen = GeneratorAlphabet(*alphabet, num_symbols);
    Rng rng(opt.seed);
    for (size_t d = 0; d < opt.random_docs; ++d) {
      labels.push_back("random[" + std::to_string(d) + "]");
      corpus.push_back(RandomDocument(&rng, gen, opt));
    }
  }

  ShardedEvaluator evaluator(&frozen, num_symbols, other, opt.threads,
                             opt.format);
  if (opt.stats) evaluator.AttachStats(registry);
  evaluator.set_tracer(tracer);
  // NWPulse: sample while the corpus streams. Registration (main sink,
  // shard sinks, attribution tables) is complete at this point; the
  // evaluator's progress cells feed the live --watch view.
  PulseOutput pulse_out;
  if (opt.stats_interval_ms > 0 && !OpenPulseOutput(opt, &pulse_out)) {
    return 1;
  }
  std::unique_ptr<PulseSampler> sampler =
      StartSampler(opt, *registry, &pulse_out, &evaluator.progress());
  std::vector<DocResult> results =
      evaluator.EvaluateCorpus(corpus, *alphabet, !opt.quiet);
  if (sampler != nullptr) sampler->Stop();
  for (size_t d = 0; d < results.size(); ++d) {
    size_t matched = 0;
    for (bool hit : results[d].accept) matched += hit;
    if (!opt.quiet) {
      PrintMatchLines(labels[d], results[d].accept, results[d].first_match,
                      query_texts);
    }
    if (opt.stats_text()) {
      std::printf("%s\tstats\tpositions=%zu matched=%zu/%zu\n",
                  labels[d].c_str(), results[d].positions, matched,
                  results[d].accept.size());
    }
  }
  if (opt.stats) {
    const ServeStats& s = evaluator.stats();
    registry->SetMetaNum("frozen_states", frozen.num_states());
    if (opt.stats_text()) {
      // A corpus that never stepped the bank (e.g. zero documents) has
      // no meaningful hit rate; print n/a instead of a vacuous 1.0.
      char rate[32];
      if (s.has_traffic()) {
        std::snprintf(rate, sizeof(rate), "%.4f", s.hit_rate());
      } else {
        std::snprintf(rate, sizeof(rate), "n/a");
      }
      std::printf(
          "serve\tstats\tthreads=%zu docs=%zu positions=%zu "
          "frozen_states=%zu frozen_hits=%zu frozen_misses=%zu "
          "hit_rate=%s\n",
          s.threads, s.documents, s.positions, frozen.num_states(),
          s.frozen_hits, s.frozen_misses, rate);
    }
  }
  RenderStats(*registry, opt);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  if (!ParseArgs(argc, argv, &opt)) return Usage();

  std::ifstream qf(opt.query_file);
  if (!qf) {
    std::fprintf(stderr, "nwquery: cannot open %s\n", opt.query_file.c_str());
    return 1;
  }

  // NWProf compile timeline: phases record into it from parse through
  // freeze; rendered as the stats "compile" section. Cheap enough to
  // fill unconditionally for the parse phase, attached to the optimizer
  // only under --stats (ParseOptLevel resets OptOptions wholesale, so
  // the pointer must be set after flag parsing — which ParseArgs above
  // has already finished).
  CompileTimeline timeline;
  Stopwatch parse_sw;

  // Phase 1: parse every query, interning element names.
  Alphabet alphabet;
  std::vector<Query> queries;
  std::vector<std::string> query_texts;
  std::string line;
  size_t lineno = 0;
  while (std::getline(qf, line)) {
    ++lineno;
    std::string stripped = line.substr(0, line.find('#'));
    if (stripped.find_first_not_of(" \t\r") == std::string::npos) continue;
    Result<Query> q = ParseQuery(stripped, &alphabet);
    if (!q.ok()) {
      std::fprintf(stderr, "nwquery: %s:%zu: %s\n", opt.query_file.c_str(),
                   lineno, q.status().message().c_str());
      return 1;
    }
    queries.push_back(q.Take());
    query_texts.push_back(FormatQuery(queries.back(), alphabet));
  }
  if (queries.empty()) {
    std::fprintf(stderr, "nwquery: %s holds no queries\n",
                 opt.query_file.c_str());
    return 1;
  }
  timeline.Record("parse", static_cast<uint64_t>(parse_sw.ElapsedUs()), 0, 0);
  if (opt.stats) opt.opt.timeline = &timeline;

  // Phase 2: fix the symbol space — query names, the text pseudo-symbol,
  // and a catch-all for element names first seen inside documents — and
  // run every query through the optimizer pipeline over it.
  alphabet.Intern("#text");
  Symbol other = alphabet.Intern("%other");
  const size_t num_symbols = alphabet.size();
  OptimizedBank bank = OptimizeBank(queries, num_symbols, opt.opt);
  if (opt.stats_text()) {
    std::printf("compile\tstats\topt=%s queries=%zu states_compiled=%zu "
                "states_final=%zu shared_bank=%s\n",
                opt.opt_level.c_str(), bank.queries.size(),
                bank.states_compiled(), bank.states_final(),
                bank.shared != nullptr ? "yes" : "no");
  }

  // NWStats: the registry outlives every sink render; the tracer is
  // enabled only by the environment (NWQUERY_TRACE=file).
  StatsRegistry registry;
  std::unique_ptr<Tracer> tracer = Tracer::FromEnv();
  // NWProf per-query attribution: the CLI's own table carries the
  // per-query compile-size gauges; runtime counters land here on the
  // single-stream path and in the evaluator's per-shard tables on the
  // frozen path (the registry render merges all registered tables).
  QueryAttribution attribution(queries.size());
  if (opt.stats) {
    registry.SetMeta("mode", opt.freeze ? "frozen" : "single");
    registry.SetMeta("opt", opt.opt_level);
    registry.SetMeta("format", InputFormatName(opt.format));
    registry.SetMetaNum("queries", bank.queries.size());
    registry.SetMetaNum("threads", opt.threads);
    registry.SetMetaNum("states_compiled", bank.states_compiled());
    registry.SetMetaNum("states_final", bank.states_final());
    for (size_t i = 0; i < bank.queries.size(); ++i) {
      attribution.query(i).states_compiled.Set(
          bank.queries[i].states_compiled);
      attribution.query(i).states_final.Set(bank.queries[i].states_final);
    }
    registry.RegisterAttribution(&attribution);
    registry.SetQueryLabels(query_texts);
    registry.SetTimeline(&timeline);
  }

  // Phase 3a: frozen serving — pre-explore, snapshot, shard.
  if (opt.freeze) {
    return ServeFrozen(opt, &bank, &alphabet, num_symbols, other,
                       query_texts, &registry, tracer.get(),
                       opt.stats ? &timeline : nullptr);
  }

  // Phase 3b: single stream — every document once through the whole bank.
  QueryEngine engine(num_symbols);
  engine.set_other_symbol(other);
  // first_match() feeds the per-query MATCH@pos lines; a --quiet run never
  // prints them, so it skips the per-position acceptance scan too.
  engine.set_track_matches(!opt.quiet);
  bank.Register(&engine);
  StatsSink main_sink;
  if (opt.stats) {
    registry.Register("main", &main_sink);
    engine.set_stats(&main_sink);
    engine.set_attribution(&attribution);
    if (bank.shared != nullptr) bank.shared->set_stats(&main_sink);
  }
  // NWPulse on the single-stream path: no corpus cursor to report, but
  // the same per-interval counter/latency series (progress = null).
  PulseOutput pulse_out;
  if (opt.stats_interval_ms > 0 && !OpenPulseOutput(opt, &pulse_out)) {
    return 1;
  }
  std::unique_ptr<PulseSampler> sampler =
      StartSampler(opt, registry, &pulse_out, nullptr);

  for (const std::string& path : opt.xml_files) {
    std::string text;
    if (!ReadFile(path, &text)) return 1;
    EvaluateDocument(path, text, query_texts, &alphabet, &engine, opt,
                     tracer.get());
  }

  if (opt.random_docs > 0) {
    Alphabet gen = GeneratorAlphabet(alphabet, num_symbols);
    Rng rng(opt.seed);
    for (size_t d = 0; d < opt.random_docs; ++d) {
      std::string text = RandomDocument(&rng, gen, opt);
      EvaluateDocument("random[" + std::to_string(d) + "]", text,
                       query_texts, &alphabet, &engine, opt, tracer.get());
    }
  }
  if (sampler != nullptr) sampler->Stop();
  RenderStats(registry, opt);
  return 0;
}
