// NWQuery — a small hierarchical path-query language over XML-as-nested-
// words (paper §1, §2.2): the queries the introduction builds by hand
// (pattern order, minimum depth, structural paths) become a language that
// compiles to deterministic NWAs (compile.h) and evaluates in one
// streaming pass (engine.h).
//
// Grammar (recursive descent, see ParseQuery):
//
//   query  := or
//   or     := and ("or" and)*
//   and    := unary ("and" unary)*
//   unary  := "not" unary | "(" query ")" | atom
//   atom   := path | order | guard | balanced
//   path   := ("/" | "//") step (("/" | "//") step)*
//   step   := NAME | "*"
//   order  := NAME "then" NAME ("then" NAME)*
//   guard  := "depth" ">=" INT
//   balanced := "balanced" NAME NAME
//
// Semantics over a tagged stream (open tag = call, close tag = return,
// text = internal):
//   /a/b     some root element `a` has a child element `b`
//   //b      some element `b` occurs at any depth
//   /a//b/*  structural mix: child, descendant, and wildcard steps
//   a then b an open tag `a` precedes an open tag `b` in document order
//   depth>=k the nesting depth of open elements reaches k
//   balanced a b
//            every internal event `a` is matched by an internal `b`
//            within its enclosing call frame (trace/trace.h) — a
//            stack-sensitive safety property aimed at the trace front
//            end, where internal events carry their own symbols
// Boolean operators combine sub-queries; `not` binds tightest, then
// `and`, then `or`. Malformed documents are first-class: a close tag
// always closes the innermost open element (regardless of name), and a
// stray close at top level leaves the context at the root.
//
// NAME tokens are interned into the caller's Alphabet; the keywords
// (and, or, not, then, depth, balanced) are reserved and cannot name
// elements.
#ifndef NW_QUERY_NWQUERY_H_
#define NW_QUERY_NWQUERY_H_

#include <memory>
#include <string>
#include <vector>

#include "nw/alphabet.h"
#include "support/result.h"

namespace nw {

/// Axis of one path step: `/x` steps to a child, `//x` to a descendant.
enum class Axis : uint8_t {
  kChild,
  kDescendant,
};

/// One step of a path query. `name == Alphabet::kNoSymbol` is the
/// wildcard `*`.
struct PathStep {
  Axis axis;
  Symbol name;

  friend bool operator==(const PathStep&, const PathStep&) = default;
};

/// An immutable NWQuery expression tree. Build with the static
/// constructors or ParseQuery; share freely (nodes are refcounted),
/// mirroring the Regex combinator idiom.
class Query {
 public:
  enum class Op : uint8_t {
    kPath,      ///< /a//b/* — structural path from the root
    kOrder,     ///< a then b then c — open tags in document order
    kMinDepth,  ///< depth >= k
    kBalanced,  ///< balanced a b — frame-local a/b event discipline
    kAnd,
    kOr,
    kNot,
    /// Disjunction of path atoms fused into ONE atom: some element's root
    /// path matches ANY of the step vectors. Never produced by the parser;
    /// the optimizer's rewrite pass (opt/rewrite.h) merges `or`-sibling
    /// path atoms into this so the compiler lowers them through a single
    /// regex → DFA → NWA instead of per-path automata unioned via the
    /// nondeterministic closure ops.
    kPathSet,
  };

  /// Path atom; `steps` must be non-empty.
  static Query Path(std::vector<PathStep> steps);
  /// Path-set atom; each member must be non-empty, and there must be at
  /// least one member.
  static Query PathSet(std::vector<std::vector<PathStep>> step_sets);
  /// Order atom; `names` must have at least two entries.
  static Query Order(std::vector<Symbol> names);
  /// Depth guard `depth >= k`.
  static Query MinDepth(size_t k);
  /// Balanced atom `balanced a b` (names = {a, b}; trace/trace.h has the
  /// full automaton semantics).
  static Query Balanced(Symbol a, Symbol b);
  static Query And(Query l, Query r);
  static Query Or(Query l, Query r);
  static Query Not(Query q);

  Op op() const { return node_->op; }
  /// Steps of a kPath node.
  const std::vector<PathStep>& steps() const { return node_->steps; }
  /// Member paths of a kPathSet node.
  const std::vector<std::vector<PathStep>>& step_sets() const {
    return node_->step_sets;
  }
  /// Names of a kOrder node.
  const std::vector<Symbol>& names() const { return node_->names; }
  /// Threshold of a kMinDepth node.
  size_t min_depth() const { return node_->depth; }
  /// Left operand (kAnd/kOr) or sole operand (kNot).
  Query left() const {
    NW_CHECK_MSG(node_->left != nullptr, "node has no left operand");
    return Query(node_->left);
  }
  /// Right operand (kAnd/kOr).
  Query right() const {
    NW_CHECK_MSG(node_->right != nullptr, "node has no right operand");
    return Query(node_->right);
  }

  bool is_atom() const {
    return node_->op == Op::kPath || node_->op == Op::kOrder ||
           node_->op == Op::kMinDepth || node_->op == Op::kPathSet ||
           node_->op == Op::kBalanced;
  }

  /// Structural equality (same tree shape and payloads).
  friend bool operator==(const Query& a, const Query& b) {
    return Equal(*a.node_, *b.node_);
  }

 private:
  struct Node {
    Op op;
    std::vector<PathStep> steps;
    std::vector<std::vector<PathStep>> step_sets;
    std::vector<Symbol> names;
    size_t depth = 0;
    std::shared_ptr<const Node> left, right;
  };

  explicit Query(std::shared_ptr<const Node> n) : node_(std::move(n)) {}
  static bool Equal(const Node& a, const Node& b);

  std::shared_ptr<const Node> node_;
};

/// Parses one NWQuery expression. NAMEs are interned into `*alphabet`;
/// errors carry a position and a description.
Result<Query> ParseQuery(const std::string& text, Alphabet* alphabet);

/// Formats a query in the concrete syntax with minimal parentheses.
/// FormatQuery ∘ ParseQuery is a normal form: re-parsing the output
/// yields a structurally equal query.
std::string FormatQuery(const Query& q, const Alphabet& alphabet);

}  // namespace nw

#endif  // NW_QUERY_NWQUERY_H_
