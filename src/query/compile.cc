#include "query/compile.h"

#include "nwa/determinize.h"
#include "nwa/language_ops.h"
#include "support/check.h"
#include "trace/trace.h"
#include "wordauto/dfa.h"
#include "wordauto/regex.h"
#include "xml/xml.h"

namespace nw {

namespace {

/// Word regex over element names whose language is the set of root paths
/// matched by `steps`: child steps append their name, descendant steps
/// append Σ* first, wildcards append Σ.
Regex PathRegex(const std::vector<PathStep>& steps, size_t num_symbols) {
  Regex r = Regex::Eps();
  for (const PathStep& s : steps) {
    if (s.axis == Axis::kDescendant) {
      r = Regex::Cat(std::move(r), Regex::Star(Regex::Any(num_symbols)));
    }
    r = Regex::Cat(std::move(r), s.name == Alphabet::kNoSymbol
                                     ? Regex::Any(num_symbols)
                                     : Regex::Sym(s.name));
  }
  return r;
}

/// Checks every named step is inside the compiled symbol space.
void CheckSteps(const std::vector<PathStep>& steps, size_t num_symbols) {
  NW_CHECK(!steps.empty());
  for (const PathStep& s : steps) {
    NW_CHECK(s.name == Alphabet::kNoSymbol || s.name < num_symbols);
  }
}

/// Shared tail of the path constructions: the NWA advances `d` (the DFA of
/// the wanted root-path language) along the current ancestor chain — calls
/// step it forward pushing the parent context on the hierarchical edge,
/// returns restore it — and latches an accept state the moment some
/// element's root path lands in the DFA's language.
Nwa PathLanguageNwa(const Dfa& d, size_t num_symbols) {
  // NWA state i mirrors DFA state i (the DFA state of the current
  // ancestor-name chain); one extra latch state records "some element
  // already matched".
  Nwa a(num_symbols);
  for (StateId q = 0; q < d.num_states(); ++q) a.AddState(false);
  StateId latch = a.AddState(true);
  a.set_initial(d.initial());
  // A pending return resets the context to the root: hierarchical edges
  // of pending returns read the DFA's initial state.
  a.set_hier_initial(d.initial());
  for (StateId q = 0; q < d.num_states(); ++q) {
    for (Symbol s = 0; s < num_symbols; ++s) {
      // Text and other internal positions do not change the element path.
      a.SetInternal(q, s, q);
      // Opening <s> extends the path; the parent context q rides the
      // hierarchical edge and is restored at the matching close tag.
      StateId t = d.Next(q, s);
      a.SetCall(q, s, d.is_final(t) ? latch : t, q);
      for (StateId h = 0; h < d.num_states(); ++h) {
        a.SetReturn(q, h, s, h);
      }
      // A frame pushed by the latch can only be observed by the latch
      // itself (all latch successors stay latched), so (q, latch) pairs
      // need no rule.
    }
  }
  for (Symbol s = 0; s < num_symbols; ++s) {
    a.SetInternal(latch, s, latch);
    a.SetCall(latch, s, latch, latch);
    for (StateId h = 0; h <= latch; ++h) a.SetReturn(latch, h, s, latch);
  }
  return a;
}

/// Lowers a query atom to its deterministic automaton.
Nwa CompileAtom(const Query& q, size_t num_symbols) {
  switch (q.op()) {
    case Query::Op::kPath:
      return CompilePathNwa(q.steps(), num_symbols);
    case Query::Op::kPathSet:
      return CompilePathSetNwa(q.step_sets(), num_symbols);
    case Query::Op::kOrder:
      for (Symbol s : q.names()) NW_CHECK(s < num_symbols);
      return PatternOrderQuery(q.names(), num_symbols);
    case Query::Op::kMinDepth:
      return MinDepthQuery(q.min_depth(), num_symbols);
    case Query::Op::kBalanced:
      for (Symbol s : q.names()) NW_CHECK(s < num_symbols);
      return BalancedFrameQuery(q.names()[0], q.names()[1], num_symbols);
    default:
      NW_CHECK_MSG(false, "not an atom");
      __builtin_unreachable();
  }
}

/// Recursive lowering to the nondeterministic representation the closure
/// ops compose.
Nnwa ToNnwa(const Query& q, size_t num_symbols) {
  switch (q.op()) {
    case Query::Op::kAnd:
      return Intersect(ToNnwa(q.left(), num_symbols),
                       ToNnwa(q.right(), num_symbols));
    case Query::Op::kOr:
      return Union(ToNnwa(q.left(), num_symbols),
                   ToNnwa(q.right(), num_symbols));
    case Query::Op::kNot:
      return ComplementN(ToNnwa(q.left(), num_symbols));
    default:
      return Nnwa::FromNwa(CompileAtom(q, num_symbols));
  }
}

}  // namespace

Nwa CompilePathNwa(const std::vector<PathStep>& steps, size_t num_symbols) {
  CheckSteps(steps, num_symbols);
  Dfa d = PathRegex(steps, num_symbols)
              .Compile(num_symbols)
              .Determinize()
              .Totalize();
  return PathLanguageNwa(d, num_symbols);
}

Nwa CompilePathSetNwa(const std::vector<std::vector<PathStep>>& step_sets,
                      size_t num_symbols) {
  NW_CHECK(!step_sets.empty());
  Regex r = Regex::Empty();
  for (const auto& steps : step_sets) {
    CheckSteps(steps, num_symbols);
    r = Regex::Alt(std::move(r), PathRegex(steps, num_symbols));
  }
  Dfa d = r.Compile(num_symbols).Determinize().Totalize();
  return PathLanguageNwa(d, num_symbols);
}

Nwa CompileQuery(const Query& q, size_t num_symbols) {
  // Atoms are already deterministic; only boolean combinations pay for
  // the closure-op round trip and determinization.
  if (q.is_atom()) return CompileAtom(q, num_symbols);
  return Determinize(ToNnwa(q, num_symbols)).nwa;
}

}  // namespace nw
