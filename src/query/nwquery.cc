#include "query/nwquery.h"

#include <cctype>

#include "support/check.h"

namespace nw {

namespace {

bool IsNameChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '-';
}

bool IsKeyword(const std::string& s) {
  return s == "and" || s == "or" || s == "not" || s == "then" ||
         s == "depth" || s == "balanced";
}

/// Token stream over the concrete syntax. Token kinds are distinguished
/// by `text`: "/", "//", "*", "(", ")", ">=", names, and digit strings;
/// the empty string is end-of-input.
struct Lexer {
  const std::string& in;
  size_t pos = 0;
  std::string tok;
  size_t tok_pos = 0;

  explicit Lexer(const std::string& text) : in(text) { Advance(); }

  Status ErrorAt(const std::string& what) const {
    return Status::Error("query parse error at offset " +
                         std::to_string(tok_pos) + ": " + what);
  }

  void Advance() {
    while (pos < in.size() &&
           std::isspace(static_cast<unsigned char>(in[pos]))) {
      ++pos;
    }
    tok_pos = pos;
    tok.clear();
    if (pos >= in.size()) return;
    char c = in[pos];
    if (c == '/') {
      tok = (pos + 1 < in.size() && in[pos + 1] == '/') ? "//" : "/";
      pos += tok.size();
    } else if (c == '*' || c == '(' || c == ')') {
      tok = std::string(1, c);
      ++pos;
    } else if (c == '>' && pos + 1 < in.size() && in[pos + 1] == '=') {
      tok = ">=";
      pos += 2;
    } else if (IsNameChar(c)) {
      while (pos < in.size() && IsNameChar(in[pos])) tok += in[pos++];
    } else {
      tok = std::string(1, c);  // unknown char: surfaced by the parser
      ++pos;
    }
  }

  bool AtEnd() const { return tok.empty(); }
  bool Is(const std::string& t) const { return tok == t; }
  bool Eat(const std::string& t) {
    if (!Is(t)) return false;
    Advance();
    return true;
  }
  bool IsName() const {
    return !tok.empty() && IsNameChar(tok[0]) &&
           !std::isdigit(static_cast<unsigned char>(tok[0])) &&
           !IsKeyword(tok);
  }
  bool IsInt() const {
    if (tok.empty()) return false;
    for (char c : tok) {
      if (!std::isdigit(static_cast<unsigned char>(c))) return false;
    }
    return true;
  }
};

struct Parser {
  /// Cap on `not`/paren nesting: recursion in ParseUnary is bounded so a
  /// pathological query line returns a parse error instead of
  /// overflowing the C++ stack.
  static constexpr int kMaxNesting = 256;

  Lexer lex;
  Alphabet* alphabet;
  int nesting = 0;

  Parser(const std::string& text, Alphabet* a) : lex(text), alphabet(a) {}

  Result<Query> ParseOr() {
    Result<Query> l = ParseAnd();
    if (!l.ok()) return l;
    Query q = l.Take();
    while (lex.Eat("or")) {
      Result<Query> r = ParseAnd();
      if (!r.ok()) return r;
      q = Query::Or(std::move(q), r.Take());
    }
    return q;
  }

  Result<Query> ParseAnd() {
    Result<Query> l = ParseUnary();
    if (!l.ok()) return l;
    Query q = l.Take();
    while (lex.Eat("and")) {
      Result<Query> r = ParseUnary();
      if (!r.ok()) return r;
      q = Query::And(std::move(q), r.Take());
    }
    return q;
  }

  Result<Query> ParseUnary() {
    if (++nesting > kMaxNesting) {
      --nesting;
      return lex.ErrorAt("query nested too deeply");
    }
    Result<Query> out = ParseUnaryInner();
    --nesting;
    return out;
  }

  Result<Query> ParseUnaryInner() {
    if (lex.Eat("not")) {
      Result<Query> r = ParseUnary();
      if (!r.ok()) return r;
      return Query::Not(r.Take());
    }
    if (lex.Eat("(")) {
      Result<Query> r = ParseOr();
      if (!r.ok()) return r;
      if (!lex.Eat(")")) return lex.ErrorAt("expected ')'");
      return r;
    }
    return ParseAtom();
  }

  Result<Query> ParseAtom() {
    if (lex.Is("/") || lex.Is("//")) return ParsePath();
    if (lex.Eat("depth")) {
      if (!lex.Eat(">=")) return lex.ErrorAt("expected '>=' after 'depth'");
      if (!lex.IsInt()) return lex.ErrorAt("expected integer depth bound");
      size_t k = 0;
      for (char c : lex.tok) {
        k = k * 10 + static_cast<size_t>(c - '0');
        // MinDepthQuery allocates k+1 states; Nwa caps states at 2^24.
        if (k >= (1u << 24)) return lex.ErrorAt("depth bound too large");
      }
      lex.Advance();
      return Query::MinDepth(k);
    }
    if (lex.Eat("balanced")) {
      if (!lex.IsName()) {
        return lex.ErrorAt("expected event name after 'balanced'");
      }
      Symbol a = alphabet->Intern(lex.tok);
      lex.Advance();
      if (!lex.IsName()) {
        return lex.ErrorAt("expected second event name after 'balanced'");
      }
      Symbol b = alphabet->Intern(lex.tok);
      lex.Advance();
      return Query::Balanced(a, b);
    }
    if (lex.IsName()) return ParseOrder();
    if (lex.AtEnd()) return lex.ErrorAt("unexpected end of query");
    return lex.ErrorAt("unexpected token '" + lex.tok + "'");
  }

  Result<Query> ParsePath() {
    std::vector<PathStep> steps;
    while (lex.Is("/") || lex.Is("//")) {
      Axis axis = lex.Is("//") ? Axis::kDescendant : Axis::kChild;
      lex.Advance();
      if (lex.Eat("*")) {
        steps.push_back({axis, Alphabet::kNoSymbol});
      } else if (lex.IsName()) {
        steps.push_back({axis, alphabet->Intern(lex.tok)});
        lex.Advance();
      } else {
        return lex.ErrorAt("expected element name or '*' after axis");
      }
    }
    return Query::Path(std::move(steps));
  }

  Result<Query> ParseOrder() {
    std::vector<Symbol> names;
    names.push_back(alphabet->Intern(lex.tok));
    lex.Advance();
    if (!lex.Is("then")) {
      return lex.ErrorAt("expected 'then' after element name");
    }
    while (lex.Eat("then")) {
      if (!lex.IsName()) {
        return lex.ErrorAt("expected element name after 'then'");
      }
      names.push_back(alphabet->Intern(lex.tok));
      lex.Advance();
    }
    return Query::Order(std::move(names));
  }
};

/// Precedence levels for minimal-paren printing.
int Prec(Query::Op op) {
  switch (op) {
    case Query::Op::kOr:
    case Query::Op::kPathSet:  // prints as an `or` chain of its paths
      return 1;
    case Query::Op::kAnd:
      return 2;
    case Query::Op::kNot:
      return 3;
    default:
      return 4;  // atoms never need parens
  }
}

void FormatSteps(const std::vector<PathStep>& steps, const Alphabet& alphabet,
                 std::string* out) {
  for (const PathStep& s : steps) {
    *out += s.axis == Axis::kDescendant ? "//" : "/";
    *out += s.name == Alphabet::kNoSymbol ? "*" : alphabet.Name(s.name);
  }
}

void Format(const Query& q, const Alphabet& alphabet, int parent_prec,
            std::string* out) {
  int prec = Prec(q.op());
  bool parens = prec < parent_prec;
  if (parens) *out += "(";
  switch (q.op()) {
    case Query::Op::kPath:
      FormatSteps(q.steps(), alphabet, out);
      break;
    case Query::Op::kPathSet: {
      // Re-parses to the equivalent `or` chain of path atoms.
      bool first = true;
      for (const auto& steps : q.step_sets()) {
        if (!first) *out += " or ";
        first = false;
        FormatSteps(steps, alphabet, out);
      }
      break;
    }
    case Query::Op::kOrder: {
      bool first = true;
      for (Symbol s : q.names()) {
        if (!first) *out += " then ";
        first = false;
        *out += alphabet.Name(s);
      }
      break;
    }
    case Query::Op::kMinDepth:
      *out += "depth >= " + std::to_string(q.min_depth());
      break;
    case Query::Op::kBalanced:
      *out += "balanced " + alphabet.Name(q.names()[0]) + " " +
              alphabet.Name(q.names()[1]);
      break;
    case Query::Op::kAnd:
      Format(q.left(), alphabet, prec, out);
      *out += " and ";
      // Right operand at prec+1: `a and (b and c)` keeps its parens so
      // the printed form re-parses to the same (left-associated) tree.
      Format(q.right(), alphabet, prec + 1, out);
      break;
    case Query::Op::kOr:
      Format(q.left(), alphabet, prec, out);
      *out += " or ";
      Format(q.right(), alphabet, prec + 1, out);
      break;
    case Query::Op::kNot:
      *out += "not ";
      Format(q.left(), alphabet, prec, out);
      break;
  }
  if (parens) *out += ")";
}

}  // namespace

Query Query::Path(std::vector<PathStep> steps) {
  NW_CHECK_MSG(!steps.empty(), "path query needs at least one step");
  auto n = std::make_shared<Node>();
  n->op = Op::kPath;
  n->steps = std::move(steps);
  return Query(std::move(n));
}

Query Query::PathSet(std::vector<std::vector<PathStep>> step_sets) {
  NW_CHECK_MSG(!step_sets.empty(), "path set needs at least one path");
  for (const auto& steps : step_sets) {
    NW_CHECK_MSG(!steps.empty(), "path set member needs at least one step");
  }
  auto n = std::make_shared<Node>();
  n->op = Op::kPathSet;
  n->step_sets = std::move(step_sets);
  return Query(std::move(n));
}

Query Query::Order(std::vector<Symbol> names) {
  NW_CHECK_MSG(names.size() >= 2, "order query needs at least two names");
  auto n = std::make_shared<Node>();
  n->op = Op::kOrder;
  n->names = std::move(names);
  return Query(std::move(n));
}

Query Query::MinDepth(size_t k) {
  auto n = std::make_shared<Node>();
  n->op = Op::kMinDepth;
  n->depth = k;
  return Query(std::move(n));
}

Query Query::Balanced(Symbol a, Symbol b) {
  NW_CHECK_MSG(a != Alphabet::kNoSymbol && b != Alphabet::kNoSymbol,
               "balanced query needs two real event symbols");
  auto n = std::make_shared<Node>();
  n->op = Op::kBalanced;
  n->names = {a, b};
  return Query(std::move(n));
}

Query Query::And(Query l, Query r) {
  auto n = std::make_shared<Node>();
  n->op = Op::kAnd;
  n->left = std::move(l.node_);
  n->right = std::move(r.node_);
  return Query(std::move(n));
}

Query Query::Or(Query l, Query r) {
  auto n = std::make_shared<Node>();
  n->op = Op::kOr;
  n->left = std::move(l.node_);
  n->right = std::move(r.node_);
  return Query(std::move(n));
}

Query Query::Not(Query q) {
  auto n = std::make_shared<Node>();
  n->op = Op::kNot;
  n->left = std::move(q.node_);
  return Query(std::move(n));
}

bool Query::Equal(const Node& a, const Node& b) {
  if (a.op != b.op || a.steps != b.steps || a.step_sets != b.step_sets ||
      a.names != b.names || a.depth != b.depth) {
    return false;
  }
  if ((a.left == nullptr) != (b.left == nullptr)) return false;
  if (a.left && !Equal(*a.left, *b.left)) return false;
  if ((a.right == nullptr) != (b.right == nullptr)) return false;
  if (a.right && !Equal(*a.right, *b.right)) return false;
  return true;
}

Result<Query> ParseQuery(const std::string& text, Alphabet* alphabet) {
  Parser p(text, alphabet);
  Result<Query> q = p.ParseOr();
  if (!q.ok()) return q;
  if (!p.lex.AtEnd()) {
    return p.lex.ErrorAt("trailing input '" + p.lex.tok + "'");
  }
  return q;
}

std::string FormatQuery(const Query& q, const Alphabet& alphabet) {
  std::string out;
  Format(q, alphabet, 0, &out);
  return out;
}

}  // namespace nw
