#include "query/engine.h"

#include "support/check.h"

namespace nw {

size_t QueryEngine::Add(const Nwa* a) {
  NW_CHECK_MSG(a->num_symbols() == num_symbols_,
               "query automaton symbol space mismatch");
  // Discard frames a previous stream left pending (unclosed opens are
  // legal input): frames hold one slot per query, so they cannot survive
  // a bank-size change. Any in-progress stream is invalidated.
  stack_.clear();
  autos_.push_back(a);
  state_.push_back(a->initial());
  live_ += a->initial() != kNoState;
  return autos_.size() - 1;
}

void QueryEngine::set_other_symbol(Symbol s) {
  NW_CHECK_MSG(s < num_symbols_, "catch-all symbol out of range");
  other_ = s;
}

void QueryEngine::BeginStream() {
  live_ = 0;
  for (size_t i = 0; i < autos_.size(); ++i) {
    state_[i] = autos_[i]->initial();
    live_ += state_[i] != kNoState;
  }
  stack_.clear();
  max_frames_ = 0;
  ++traversals_;
}

size_t QueryEngine::Feed(TaggedSymbol t) {
  ++positions_;
  const size_t k = autos_.size();
  if (k == 0) return 0;
  Symbol s = t.symbol;
  if (s >= num_symbols_) {
    NW_CHECK_MSG(other_ != Alphabet::kNoSymbol,
                 "stream symbol %u outside the compiled space and no "
                 "catch-all configured",
                 s);
    s = other_;
  }
  // Liveness is tracked incrementally (dead runs stay dead, so a query
  // leaves the live count exactly once) — no extra O(K) scan per position.
  switch (t.kind) {
    case Kind::kInternal:
      for (size_t i = 0; i < k; ++i) {
        StateId next = autos_[i]->StepInternal(state_[i], s);
        live_ -= state_[i] != kNoState && next == kNoState;
        state_[i] = next;
      }
      break;
    case Kind::kCall: {
      // One shared frame per call position: K hierarchical states,
      // contiguous. Dead queries park kNoState in their slot.
      size_t base = stack_.size();
      stack_.resize(base + k);
      for (size_t i = 0; i < k; ++i) {
        StateId next = autos_[i]->StepCall(state_[i], s, &stack_[base + i]);
        live_ -= state_[i] != kNoState && next == kNoState;
        state_[i] = next;
      }
      size_t frames = stack_.size() / k;
      if (frames > max_frames_) max_frames_ = frames;
      break;
    }
    case Kind::kReturn: {
      size_t base = stack_.empty() ? 0 : stack_.size() - k;
      for (size_t i = 0; i < k; ++i) {
        // Pending return (empty stack): every query reads hier_initial.
        StateId h = stack_.empty() ? kNoState : stack_[base + i];
        StateId next = autos_[i]->StepReturn(state_[i], h, s);
        live_ -= state_[i] != kNoState && next == kNoState;
        state_[i] = next;
      }
      if (!stack_.empty()) stack_.resize(base);
      break;
    }
  }
  return live_;
}

std::vector<bool> QueryEngine::RunAll(const NestedWord& n) {
  BeginStream();
  for (const TaggedSymbol& t : n.tagged()) {
    if (Feed(t) == 0) break;  // every run dead: acceptance is settled
  }
  return Results();
}

std::vector<bool> QueryEngine::RunAll(const std::string& xml_text,
                                      Alphabet* alphabet) {
  BeginStream();
  XmlTokenStream stream(xml_text, alphabet);
  TaggedSymbol t;
  while (stream.Next(&t)) {
    if (Feed(t) == 0) break;  // every run dead: acceptance is settled
  }
  return Results();
}

std::vector<bool> QueryEngine::Results() const {
  std::vector<bool> out(autos_.size());
  for (size_t i = 0; i < autos_.size(); ++i) out[i] = Accepting(i);
  return out;
}

}  // namespace nw
