#include "query/engine.h"

#include "json/json.h"
#include "opt/bank.h"
#include "serve/frozen_bank.h"
#include "support/check.h"
#include "support/stopwatch.h"
#include "trace/trace.h"

namespace nw {

void QueryEngine::set_stats(StatsSink* sink) {
  NW_CHECK_MSG(sink != nullptr, "set_stats() needs a sink; stats are off "
               "by default — simply never attach one");
  // Carry over counts accrued in the internal sink so the frozen hit/miss
  // accessors never go backwards across a late attach.
  if (stats_ == &own_stats_ && sink != &own_stats_) {
    sink->MergeFrom(own_stats_);
  }
  stats_ = sink;
  stats_enabled_ = true;
}

void QueryEngine::set_attribution(QueryAttribution* attr) {
  NW_CHECK_MSG(attr != nullptr, "set_attribution() needs a table; "
               "attribution is off by default — simply never attach one");
  NW_CHECK_MSG(attr->num_queries() == num_queries(),
               "attribution table sized for %zu queries attached to a "
               "%zu-query engine; attach after registering the bank",
               attr->num_queries(), num_queries());
  attr_ = attr;
}

void QueryEngine::RecordDocStats(uint64_t latency_us, size_t doc_positions,
                                 const std::vector<bool>& results) {
  if (stats_enabled_) {
    stats_->engine_docs.Inc();
    stats_->engine_positions.Add(doc_positions);
    stats_->doc_latency_us.Record(latency_us);
    if (frozen_ != nullptr) {
      stats_->engine_docs_frozen.Inc();
    } else if (bank_ != nullptr) {
      stats_->engine_docs_bank.Inc();
    } else {
      stats_->engine_docs_soa.Inc();
    }
  }
  if (attr_ != nullptr) {
    // The table totals mirror engine_docs/engine_positions exactly, so
    // the rendered `queries` section can never drift from `engine`.
    attr_->docs.Inc();
    attr_->positions.Add(doc_positions);
    for (size_t i = 0; i < results.size(); ++i) {
      if (results[i]) attr_->query(i).match_docs.Inc();
    }
  }
}

size_t QueryEngine::num_queries() const {
  if (frozen_ != nullptr) return frozen_->num_queries();
  return bank_ != nullptr ? bank_->num_queries() : autos_.size();
}

bool QueryEngine::Accepting(size_t id) const {
  if (frozen_ != nullptr) {
    if (OverflowBank::IsOverflowId(bank_state_)) {
      return overflow_->accepting(bank_state_, id);
    }
    return frozen_->accepting(bank_state_, id);
  }
  if (bank_ != nullptr) return bank_->accepting(bank_state_, id);
  return state_[id] != kNoState && autos_[id]->is_final(state_[id]);
}

bool QueryEngine::dead(size_t id) const {
  if (frozen_ != nullptr) {
    if (OverflowBank::IsOverflowId(bank_state_)) {
      return overflow_->component(bank_state_, id) == kNoState;
    }
    return frozen_->component(bank_state_, id) == kNoState;
  }
  if (bank_ != nullptr) return bank_->component(bank_state_, id) == kNoState;
  return state_[id] == kNoState;
}

size_t QueryEngine::Add(const Nwa* a) {
  NW_CHECK_MSG(bank_ == nullptr && frozen_ == nullptr,
               "Add(), AddBank(), and AddFrozen() are mutually exclusive: "
               "the engine steps K automata, one shared product, or one "
               "frozen snapshot");
  NW_CHECK_MSG(a->num_symbols() == num_symbols_,
               "query automaton symbol space mismatch");
  // Discard frames a previous stream left pending (unclosed opens are
  // legal input): frames hold one slot per query, so they cannot survive
  // a bank-size change. Any in-progress stream is invalidated.
  stack_.clear();
  autos_.push_back(a);
  state_.push_back(a->initial());
  live_ += a->initial() != kNoState;
  return autos_.size() - 1;
}

void QueryEngine::AddBank(SharedBank* bank) {
  NW_CHECK_MSG(autos_.empty() && bank_ == nullptr && frozen_ == nullptr,
               "AddBank() needs a fresh engine: no Add()ed automata and "
               "no previous bank or frozen snapshot");
  NW_CHECK_MSG(bank->num_symbols() == num_symbols_,
               "shared bank symbol space mismatch");
  stack_.clear();
  bank_ = bank;
  bank_state_ = bank_->initial();
  live_ = bank_->live(bank_state_);
}

void QueryEngine::AddFrozen(const FrozenBank* frozen,
                            OverflowBank* overflow) {
  NW_CHECK_MSG(autos_.empty() && bank_ == nullptr && frozen_ == nullptr,
               "AddFrozen() needs a fresh engine: no Add()ed automata and "
               "no previous bank or frozen snapshot");
  NW_CHECK_MSG(frozen->num_symbols() == num_symbols_,
               "frozen bank symbol space mismatch");
  NW_CHECK_MSG(overflow != nullptr && overflow->frozen() == frozen,
               "the overflow bank must be built over the same frozen "
               "snapshot the engine steps");
  stack_.clear();
  frozen_ = frozen;
  overflow_ = overflow;
  bank_state_ = frozen_->initial();
  live_ = frozen_->live(bank_state_);
}

void QueryEngine::set_other_symbol(Symbol s) {
  NW_CHECK_MSG(s < num_symbols_,
               "catch-all symbol %u out of range: engine compiled over %zu "
               "symbols",
               s, num_symbols_);
  other_ = s;
}

void QueryEngine::BeginStream() {
  if (frozen_ != nullptr) {
    bank_state_ = frozen_->initial();
    live_ = frozen_->live(bank_state_);
  } else if (bank_ != nullptr) {
    bank_state_ = bank_->initial();
    live_ = bank_->live(bank_state_);
  } else {
    live_ = 0;
    for (size_t i = 0; i < autos_.size(); ++i) {
      state_[i] = autos_[i]->initial();
      live_ += state_[i] != kNoState;
    }
  }
  stack_.clear();
  max_frames_ = 0;
  stream_pos_ = 0;
  ++traversals_;
  if (track_matches_) {
    first_match_.assign(num_queries(), -1);
    if (bank_ != nullptr) seen_accepts_.assign(bank_->accept_words(), 0);
    if (frozen_ != nullptr) {
      seen_accepts_.assign(frozen_->accept_words(), 0);
      scratch_accepts_.assign(frozen_->accept_words(), 0);
    }
    LatchMatches();  // a query may accept the empty prefix (position 0)
  }
}

size_t QueryEngine::Feed(TaggedSymbol t) {
  ++positions_;
  ++stream_pos_;
  const size_t k = autos_.size();
  if (bank_ == nullptr && frozen_ == nullptr && k == 0) return 0;
  Symbol s = t.symbol;
  if (s >= num_symbols_) {
    NW_CHECK_MSG(other_ != Alphabet::kNoSymbol,
                 "stream symbol %u outside the compiled space and no "
                 "catch-all configured",
                 s);
    s = other_;
  }
  if (frozen_ != nullptr) return FeedFrozen(t.kind, s);
  if (bank_ != nullptr) {
    // Shared-bank path: ONE step and (per call) ONE pushed StateId for
    // the whole bank, regardless of K.
    switch (t.kind) {
      case Kind::kInternal:
        bank_state_ = bank_->StepInternal(bank_state_, s);
        break;
      case Kind::kCall: {
        StateId h;
        bank_state_ = bank_->StepCall(bank_state_, s, &h);
        stack_.push_back(h);
        if (stack_.size() > max_frames_) max_frames_ = stack_.size();
        break;
      }
      case Kind::kReturn: {
        StateId h = kNoState;  // pending return: components read P0
        if (!stack_.empty()) {
          h = stack_.back();
          stack_.pop_back();
        }
        bank_state_ = bank_->StepReturn(bank_state_, h, s);
        break;
      }
    }
    live_ = bank_->live(bank_state_);
    if (track_matches_) LatchMatches();
    return live_;
  }
  // SoA path. Liveness is tracked incrementally (dead runs stay dead, so
  // a query leaves the live count exactly once) — no extra O(K) scan per
  // position.
  switch (t.kind) {
    case Kind::kInternal:
      for (size_t i = 0; i < k; ++i) {
        StateId next = autos_[i]->StepInternal(state_[i], s);
        live_ -= state_[i] != kNoState && next == kNoState;
        state_[i] = next;
      }
      break;
    case Kind::kCall: {
      // One shared frame per call position: K hierarchical states,
      // contiguous. Dead queries park kNoState in their slot.
      size_t base = stack_.size();
      stack_.resize(base + k);
      for (size_t i = 0; i < k; ++i) {
        StateId next = autos_[i]->StepCall(state_[i], s, &stack_[base + i]);
        live_ -= state_[i] != kNoState && next == kNoState;
        state_[i] = next;
      }
      size_t frames = stack_.size() / k;
      if (frames > max_frames_) max_frames_ = frames;
      break;
    }
    case Kind::kReturn: {
      size_t base = stack_.empty() ? 0 : stack_.size() - k;
      for (size_t i = 0; i < k; ++i) {
        // Pending return (empty stack): every query reads hier_initial.
        StateId h = stack_.empty() ? kNoState : stack_[base + i];
        StateId next = autos_[i]->StepReturn(state_[i], h, s);
        live_ -= state_[i] != kNoState && next == kNoState;
        state_[i] = next;
      }
      if (!stack_.empty()) stack_.resize(base);
      break;
    }
  }
  if (track_matches_) LatchMatches();
  return live_;
}

size_t QueryEngine::FeedFrozen(Kind kind, Symbol s) {
  // Fast path: the current state is frozen and the snapshot covers the
  // step — a lock-free table read. Any other case (state already in
  // overflow space, or a snapshot miss) routes through the mutex-guarded
  // overflow bank, which maps back into frozen space when it can.
  const bool from_frozen = !OverflowBank::IsOverflowId(bank_state_);
  switch (kind) {
    case Kind::kInternal: {
      StateId next = from_frozen ? frozen_->Internal(bank_state_, s)
                                 : kNoState;
      if (next != kNoState) {
        stats_->frozen_hits.Inc();
      } else {
        stats_->frozen_misses.Inc();
        next = overflow_->StepInternal(bank_state_, s);
      }
      bank_state_ = next;
      break;
    }
    case Kind::kCall: {
      StateId lin = kNoState, h = kNoState;
      if (from_frozen) {
        lin = frozen_->CallLinear(bank_state_, s);
        h = frozen_->CallHier(bank_state_, s);
      }
      if (lin != kNoState) {
        stats_->frozen_hits.Inc();
      } else {
        stats_->frozen_misses.Inc();
        lin = overflow_->StepCall(bank_state_, s, &h);
      }
      stack_.push_back(h);
      if (stack_.size() > max_frames_) max_frames_ = stack_.size();
      bank_state_ = lin;
      break;
    }
    case Kind::kReturn: {
      StateId h = kNoState;  // pending return: components read P0
      if (!stack_.empty()) {
        h = stack_.back();
        stack_.pop_back();
      }
      StateId next = kNoState;
      if (from_frozen && (h == kNoState || !OverflowBank::IsOverflowId(h))) {
        next = frozen_->Return(bank_state_, h, s);
      }
      if (next != kNoState) {
        stats_->frozen_hits.Inc();
      } else {
        stats_->frozen_misses.Inc();
        next = overflow_->StepReturn(bank_state_, h, s);
      }
      bank_state_ = next;
      break;
    }
  }
  live_ = OverflowBank::IsOverflowId(bank_state_)
              ? overflow_->live(bank_state_)
              : frozen_->live(bank_state_);
  if (track_matches_) LatchMatches();
  return live_;
}

void QueryEngine::LatchFromWords(const uint64_t* acc, size_t words) {
  for (size_t w = 0; w < words; ++w) {
    if (attr_ != nullptr) {
      // NWProf accept tally: every set bit is one "query observed
      // accepting at this position" event (the word-parallel twin of the
      // SoA path's per-query Accepting scan below).
      uint64_t bits = acc[w];
      while (bits != 0) {
        size_t bit = static_cast<size_t>(__builtin_ctzll(bits));
        bits &= bits - 1;
        attr_->query(w * 64 + bit).accept_positions.Inc();
      }
    }
    uint64_t fresh = acc[w] & ~seen_accepts_[w];
    seen_accepts_[w] |= acc[w];
    while (fresh != 0) {
      size_t bit = static_cast<size_t>(__builtin_ctzll(fresh));
      fresh &= fresh - 1;
      first_match_[w * 64 + bit] = static_cast<int64_t>(stream_pos_);
    }
  }
}

void QueryEngine::LatchMatches() {
  if (frozen_ != nullptr) {
    const uint64_t* acc;
    if (OverflowBank::IsOverflowId(bank_state_)) {
      overflow_->CopyAccepts(bank_state_, scratch_accepts_.data());
      acc = scratch_accepts_.data();
    } else {
      acc = frozen_->accepts(bank_state_);
    }
    LatchFromWords(acc, frozen_->accept_words());
    return;
  }
  if (bank_ != nullptr) {
    LatchFromWords(bank_->accepts(bank_state_), bank_->accept_words());
    return;
  }
  for (size_t i = 0; i < autos_.size(); ++i) {
    // The latch alone only needs Accepting() for unlatched queries; the
    // NWProf tally observes every accepting query every position, so the
    // short-circuit order flips when a table is attached.
    if (attr_ != nullptr) {
      if (!Accepting(i)) continue;
      attr_->query(i).accept_positions.Inc();
      if (first_match_[i] < 0) {
        first_match_[i] = static_cast<int64_t>(stream_pos_);
      }
    } else if (first_match_[i] < 0 && Accepting(i)) {
      first_match_[i] = static_cast<int64_t>(stream_pos_);
    }
  }
}

std::vector<bool> QueryEngine::RunAll(const NestedWord& n) {
  Stopwatch sw;
  const size_t before = positions_;
  BeginStream();
  for (const TaggedSymbol& t : n.tagged()) {
    if (Feed(t) == 0) break;  // every run dead: acceptance is settled
  }
  std::vector<bool> results = Results();
  if (stats_enabled_ || attr_ != nullptr) {
    RecordDocStats(static_cast<uint64_t>(sw.ElapsedUs()),
                   positions_ - before, results);
  }
  return results;
}

template <typename Stream>
std::vector<bool> QueryEngine::RunStream(const std::string& text,
                                         Alphabet* alphabet) {
  Stopwatch sw;
  const size_t before = positions_;
  BeginStream();
  Stream stream(text, alphabet);
  if (stats_enabled_) stream.set_stats(stats_);
  TaggedSymbol t;
  while (stream.Next(&t)) {
    if (Feed(t) == 0) break;  // every run dead: acceptance is settled
  }
  std::vector<bool> results = Results();
  if (stats_enabled_ || attr_ != nullptr) {
    RecordDocStats(static_cast<uint64_t>(sw.ElapsedUs()),
                   positions_ - before, results);
  }
  return results;
}

std::vector<bool> QueryEngine::RunAll(const std::string& xml_text,
                                      Alphabet* alphabet) {
  return RunStream<XmlTokenStream>(xml_text, alphabet);
}

std::vector<bool> QueryEngine::RunAll(const std::string& text,
                                      Alphabet* alphabet,
                                      InputFormat format) {
  switch (format) {
    case InputFormat::kXml:
      return RunStream<XmlTokenStream>(text, alphabet);
    case InputFormat::kJson:
      return RunStream<JsonTokenStream>(text, alphabet);
    case InputFormat::kTrace:
      return RunStream<TraceTokenStream>(text, alphabet);
  }
  NW_CHECK_MSG(false, "unreachable: unknown input format");
  return {};
}

std::vector<bool> QueryEngine::Results() const {
  std::vector<bool> out(num_queries());
  for (size_t i = 0; i < out.size(); ++i) out[i] = Accepting(i);
  return out;
}

}  // namespace nw
