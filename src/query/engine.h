// Batched streaming query evaluation. A QueryEngine registers K compiled
// deterministic NWAs and runs all of them over ONE tagged stream in a
// single pass: per position it advances K linear states stored in a
// struct-of-arrays bank, and per call position it pushes ONE shared stack
// frame holding the K hierarchical-edge states contiguously. K queries
// therefore cost one stream traversal instead of K, and the resident run
// state is K·(depth+1) StateIds — the paper's §3.2 depth-bounded-memory
// guarantee, amortized across the whole query bank.
#ifndef NW_QUERY_ENGINE_H_
#define NW_QUERY_ENGINE_H_

#include <string>
#include <vector>

#include "nw/nested_word.h"
#include "nwa/nwa.h"
#include "xml/xml.h"

namespace nw {

class QueryEngine {
 public:
  /// All registered automata must be over the same [0, num_symbols)
  /// symbol space.
  explicit QueryEngine(size_t num_symbols) : num_symbols_(num_symbols) {}

  /// Registers a compiled query; returns its dense id. `a` must outlive
  /// the engine. Registration invalidates any in-progress stream (shared
  /// frames are sized to the bank): call BeginStream() before feeding
  /// more. Results of a completed stream stay readable.
  size_t Add(const Nwa* a);

  /// Stream symbols >= num_symbols() (element names interned after the
  /// queries were compiled) are remapped to this in-range catch-all
  /// before stepping. Without one, out-of-range symbols abort.
  void set_other_symbol(Symbol s);

  size_t num_queries() const { return autos_.size(); }
  size_t num_symbols() const { return num_symbols_; }

  /// Starts a new traversal: resets every query's run state to its
  /// initial state and bumps the traversal counter.
  void BeginStream();

  /// Consumes one position for every query at once. Returns the number
  /// of still-live runs (0 = every query is dead; the caller may stop
  /// early, acceptance can no longer change).
  size_t Feed(TaggedSymbol t);

  /// Would query `id` accept the stream fed so far?
  bool Accepting(size_t id) const {
    return state_[id] != kNoState && autos_[id]->is_final(state_[id]);
  }
  bool dead(size_t id) const { return state_[id] == kNoState; }

  /// Convenience: one traversal of `n`; element [id] of the result is
  /// query id's acceptance.
  std::vector<bool> RunAll(const NestedWord& n);

  /// Streaming form: tokenizes `xml_text` position by position straight
  /// into the bank — no materialized NestedWord, so total memory really
  /// is the O(K·depth) run state. New element names intern into
  /// `*alphabet` (remapped via set_other_symbol when out of range).
  std::vector<bool> RunAll(const std::string& xml_text, Alphabet* alphabet);

  /// Number of BeginStream() calls — the "K queries, one traversal"
  /// witness asserted by tests and reported by the benchmarks.
  size_t traversals() const { return traversals_; }
  /// Total positions consumed across all traversals.
  size_t positions() const { return positions_; }

  /// Shared stack frames currently held (= pending calls of the stream).
  size_t StackDepth() const { return stack_.size() / AtLeastOne(); }
  /// High-water mark of StackDepth() within the current stream (reset by
  /// BeginStream), so per-document statistics stay per-document.
  size_t MaxStackDepth() const { return max_frames_; }
  /// Peak resident run-state footprint of the current stream, in
  /// StateIds: K linear states plus K per shared stack frame at the
  /// stack's high-water mark — O(K·depth), independent of stream length.
  size_t ResidentStates() const {
    return state_.size() + autos_.size() * max_frames_;
  }

 private:
  size_t AtLeastOne() const { return autos_.empty() ? 1 : autos_.size(); }
  /// Per-query acceptance of the stream fed so far.
  std::vector<bool> Results() const;

  size_t num_symbols_;
  Symbol other_ = Alphabet::kNoSymbol;
  std::vector<const Nwa*> autos_;
  /// Linear state per query; kNoState = that query's run is dead.
  std::vector<StateId> state_;
  /// Shared hierarchical stack, frame-major: the frame pushed by the
  /// f-th pending call occupies [f*K, (f+1)*K).
  std::vector<StateId> stack_;
  size_t max_frames_ = 0;
  size_t traversals_ = 0;
  size_t positions_ = 0;
  /// Runs not yet dead — maintained incrementally by Feed.
  size_t live_ = 0;
};

}  // namespace nw

#endif  // NW_QUERY_ENGINE_H_
