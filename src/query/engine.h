// Batched streaming query evaluation. A QueryEngine registers K compiled
// deterministic NWAs and runs all of them over ONE tagged stream in a
// single pass. Two execution paths share the streaming interface:
//
//  * SoA path (Add): per position the engine advances K linear states
//    stored in a struct-of-arrays bank, and per call position pushes ONE
//    shared stack frame holding the K hierarchical-edge states
//    contiguously. K queries cost one stream traversal instead of K, and
//    the resident run state is K·(depth+1) StateIds — the paper's §3.2
//    depth-bounded-memory guarantee, amortized across the query bank.
//  * Shared-bank path (AddBank): the optimizer's product automaton
//    (opt/bank.h) collapses the whole bank into ONE state machine, so per
//    position the engine steps a single transition table and pushes a
//    single StateId per call frame — per-position work and resident state
//    become independent of K. Per-query acceptance reads the product
//    state's accept bitset.
//  * Frozen path (AddFrozen): the serving layer's immutable snapshot of a
//    pre-explored shared bank (serve/frozen_bank.h). Steps covered by the
//    snapshot are lock-free table reads safe under any number of threads
//    (each with its own engine); a miss routes to the engine's mutex-
//    guarded OverflowBank so coverage gaps degrade throughput, never
//    correctness. hit/miss counters feed the serving stats.
//
// An optional match-position tap records, per query, the number of stream
// positions consumed when the query was first observed accepting — the
// "where did it match" answer the nwquery CLI reports (ROADMAP item 4).
#ifndef NW_QUERY_ENGINE_H_
#define NW_QUERY_ENGINE_H_

#include <string>
#include <vector>

#include "nw/nested_word.h"
#include "nwa/nwa.h"
#include "obs/stats.h"
#include "stream/token_stream.h"
#include "xml/xml.h"

namespace nw {

// The shared-bank product (opt/bank.h) and the serving layer's frozen
// snapshot (serve/frozen_bank.h) live layers above; the engine only holds
// pointers to them, so the base query layer's headers stay free of upward
// includes.
class SharedBank;
class FrozenBank;
class OverflowBank;

class QueryEngine {
 public:
  /// All registered automata must be over the same [0, num_symbols)
  /// symbol space.
  explicit QueryEngine(size_t num_symbols) : num_symbols_(num_symbols) {}

  /// Registers a compiled query; returns its dense id. `a` must outlive
  /// the engine. Registration invalidates any in-progress stream (shared
  /// frames are sized to the bank): call BeginStream() before feeding
  /// more. Results of a completed stream stay readable. Mutually
  /// exclusive with AddBank().
  size_t Add(const Nwa* a);

  /// Registers a shared-bank product automaton compiled from the whole
  /// query bank (opt/bank.h); the engine then takes the shared-step path.
  /// `bank` must outlive the engine and is mutated while streaming (its
  /// transitions memoize on first use). Mutually exclusive with Add(),
  /// and at most one bank.
  void AddBank(SharedBank* bank);

  /// Registers a frozen snapshot of a pre-explored shared bank plus the
  /// overflow bank to route snapshot misses to (serve/frozen_bank.h).
  /// `frozen` is immutable and may back any number of engines
  /// concurrently; `overflow` must have been built over the same
  /// `frozen`, is mutated while streaming, and should be private to this
  /// engine's shard (its mutex makes sharing safe, merely slow). Both
  /// must outlive the engine. Mutually exclusive with Add()/AddBank().
  void AddFrozen(const FrozenBank* frozen, OverflowBank* overflow);

  /// Stream symbols >= num_symbols() (element names interned after the
  /// queries were compiled) are remapped to this in-range catch-all
  /// before stepping. Without one, out-of-range symbols abort.
  void set_other_symbol(Symbol s);

  /// Enables the match-position tap: per position per query, acceptance
  /// is checked so first_match() can answer. Off by default — the check
  /// costs O(K) per position on the SoA path (a bitset diff on the bank
  /// path), which throughput-sensitive callers should not pay unasked.
  void set_track_matches(bool on) { track_matches_ = on; }

  /// Attaches an NWStats sink (obs/stats.h): every completed RunAll then
  /// records the document's latency, positions, and execution path into
  /// it, and the streaming RunAll threads the sink through to the
  /// tokenizer. `sink` must outlive the engine and be this engine's
  /// private instance (single-writer; the serving layer hands each shard
  /// its own). Without a sink only the always-on frozen hit/miss
  /// counters accrue (into an engine-internal sink), so the disabled
  /// path is one branch on a flag that is constant for the stream —
  /// query results are byte-identical either way.
  void set_stats(StatsSink* sink);

  /// Attaches an NWProf per-query attribution table (obs/prof.h): every
  /// completed RunAll then increments the table's doc/position totals
  /// (pinned to the sink's engine_docs/engine_positions) and each
  /// accepted query's match_docs; with set_track_matches(true) the
  /// match-latch pass additionally tallies per-query accept-set
  /// observations (one per position the query was seen accepting, plus
  /// the pre-input check) — identical across the SoA, bank, and frozen
  /// paths. The table must be sized to this engine's bank (attach after
  /// registering queries), outlive the engine, and be this engine's
  /// private single-writer instance, exactly like the stats sink.
  void set_attribution(QueryAttribution* attr);

  size_t num_queries() const;
  size_t num_symbols() const { return num_symbols_; }

  /// Starts a new traversal: resets every query's run state to its
  /// initial state and bumps the traversal counter.
  void BeginStream();

  /// Consumes one position for every query at once. Returns the number
  /// of still-live runs (0 = every query is dead; the caller may stop
  /// early, acceptance can no longer change).
  size_t Feed(TaggedSymbol t);

  /// Would query `id` accept the stream fed so far?
  bool Accepting(size_t id) const;
  bool dead(size_t id) const;

  /// Number of positions consumed in the current stream when query `id`
  /// was first observed accepting (0 = accepting before any input), or
  /// -1 if it has not accepted yet. Requires set_track_matches(true).
  int64_t first_match(size_t id) const { return first_match_[id]; }

  /// Convenience: one traversal of `n`; element [id] of the result is
  /// query id's acceptance.
  std::vector<bool> RunAll(const NestedWord& n);

  /// Streaming form: tokenizes `xml_text` position by position straight
  /// into the bank — no materialized NestedWord, so total memory really
  /// is the O(K·depth) run state. New element names intern into
  /// `*alphabet` (remapped via set_other_symbol when out of range).
  std::vector<bool> RunAll(const std::string& xml_text, Alphabet* alphabet);

  /// Same, selecting the front end by format (stream/token_stream.h).
  /// Tokenization is the ONLY thing that varies: past the TokenStream
  /// every format takes the identical SoA/bank/frozen stepping code.
  std::vector<bool> RunAll(const std::string& text, Alphabet* alphabet,
                           InputFormat format);

  /// Frozen-path steps answered by the immutable snapshot (lock-free).
  /// Lives in the attached stats sink (the engine-internal one when none
  /// was attached), so the serving layer reads one source of truth.
  size_t frozen_hits() const { return stats_->frozen_hits.value(); }
  /// Frozen-path steps that missed the snapshot and took the overflow
  /// bank's mutex. hits + misses = positions fed on the frozen path.
  size_t frozen_misses() const { return stats_->frozen_misses.value(); }

  /// Number of BeginStream() calls — the "K queries, one traversal"
  /// witness asserted by tests and reported by the benchmarks.
  size_t traversals() const { return traversals_; }
  /// Total positions consumed across all traversals.
  size_t positions() const { return positions_; }

  /// Shared stack frames currently held (= pending calls of the stream).
  size_t StackDepth() const { return stack_.size() / FrameWidth(); }
  /// High-water mark of StackDepth() within the current stream (reset by
  /// BeginStream), so per-document statistics stay per-document.
  size_t MaxStackDepth() const { return max_frames_; }
  /// Peak resident run-state footprint of the current stream, in
  /// StateIds: K linear states plus K per shared stack frame at the
  /// stack's high-water mark — O(K·depth) on the SoA path, O(depth) on
  /// the shared-bank path (one product state per frame), independent of
  /// stream length either way.
  size_t ResidentStates() const {
    if (bank_ != nullptr || frozen_ != nullptr) return 1 + max_frames_;
    return state_.size() + autos_.size() * max_frames_;
  }

 private:
  size_t AtLeastOne() const { return autos_.empty() ? 1 : autos_.size(); }
  /// StateIds per shared stack frame: K on the SoA path, 1 on the bank
  /// and frozen paths (a frame is one interned product tuple).
  size_t FrameWidth() const {
    return bank_ != nullptr || frozen_ != nullptr ? 1 : AtLeastOne();
  }
  /// Records first-accept positions for queries newly observed accepting.
  void LatchMatches();
  /// NWStats/NWProf per-document record shared by the RunAll overloads:
  /// latency histogram, position/document counters, the path-taken
  /// counter, and (with an attribution table) the per-query match tally
  /// over `results`.
  void RecordDocStats(uint64_t latency_us, size_t doc_positions,
                      const std::vector<bool>& results);
  /// Word-parallel accept diffing shared by the bank and frozen paths.
  void LatchFromWords(const uint64_t* acc, size_t words);
  /// One stream position on the frozen path (split out of Feed).
  size_t FeedFrozen(Kind kind, Symbol s);
  /// The streaming RunAll body, templated over the TokenStream concept
  /// (stream/token_stream.h) — the seam that keeps the engine free of
  /// per-format forks.
  template <typename Stream>
  std::vector<bool> RunStream(const std::string& text, Alphabet* alphabet);
  /// Per-query acceptance of the stream fed so far.
  std::vector<bool> Results() const;

  size_t num_symbols_;
  Symbol other_ = Alphabet::kNoSymbol;
  std::vector<const Nwa*> autos_;
  SharedBank* bank_ = nullptr;
  const FrozenBank* frozen_ = nullptr;
  OverflowBank* overflow_ = nullptr;
  /// Current product state on the shared-bank path; on the frozen path a
  /// mixed-space id (frozen, or overflow-tagged after a snapshot miss).
  StateId bank_state_ = kNoState;
  /// Linear state per query; kNoState = that query's run is dead.
  std::vector<StateId> state_;
  /// Shared hierarchical stack, frame-major: the frame pushed by the
  /// f-th pending call occupies [f*W, (f+1)*W) for W = FrameWidth().
  std::vector<StateId> stack_;
  size_t max_frames_ = 0;
  size_t traversals_ = 0;
  size_t positions_ = 0;
  /// Positions consumed in the current stream (reset by BeginStream).
  size_t stream_pos_ = 0;
  /// Runs not yet dead — maintained incrementally by Feed.
  size_t live_ = 0;
  bool track_matches_ = false;
  std::vector<int64_t> first_match_;
  /// Bank/frozen paths: accept bits already latched (word-parallel diff).
  std::vector<uint64_t> seen_accepts_;
  /// Frozen path: scratch for an overflow state's accept bitset copy.
  std::vector<uint64_t> scratch_accepts_;
  /// NWStats: `stats_` points at the attached sink, or at `own_stats_`
  /// (which keeps the frozen hit/miss accessors live) when none is.
  /// `stats_enabled_` gates everything beyond those counters — document
  /// latency clocks, path counters, tokenizer tallies.
  StatsSink own_stats_;
  StatsSink* stats_ = &own_stats_;
  bool stats_enabled_ = false;
  /// NWProf per-query attribution, or nullptr when off (the default) —
  /// the same branch-on-a-constant-pointer discipline as the sink.
  QueryAttribution* attr_ = nullptr;
};

}  // namespace nw

#endif  // NW_QUERY_ENGINE_H_
