#include "obs/pulse.h"

#include <chrono>
#include <cinttypes>
#include <cstring>
#include <initializer_list>
#include <utility>

#include "obs/prof.h"
#include "support/check.h"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#include <unistd.h>
#define NW_HAVE_RUSAGE 1
#endif

namespace nw {

// ---------------------------------------------------------------------------
// Process sample
// ---------------------------------------------------------------------------

uint64_t PulseNowUs() {
  // First call fixes t=0; the CLI touches the clock at startup, so in
  // practice this is microseconds since process start.
  static const std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - epoch)
          .count());
}

ProcessSample SampleProcess() {
  ProcessSample s;
  s.wall_us = PulseNowUs();
#ifdef NW_HAVE_RUSAGE
  struct rusage ru;
  if (getrusage(RUSAGE_SELF, &ru) == 0) {
    // ru_maxrss is KiB on Linux, bytes on Darwin.
#if defined(__APPLE__)
    s.rss_peak_kb = static_cast<uint64_t>(ru.ru_maxrss) / 1024;
#else
    s.rss_peak_kb = static_cast<uint64_t>(ru.ru_maxrss);
#endif
    s.cpu_user_us = static_cast<uint64_t>(ru.ru_utime.tv_sec) * 1000000 +
                    static_cast<uint64_t>(ru.ru_utime.tv_usec);
    s.cpu_sys_us = static_cast<uint64_t>(ru.ru_stime.tv_sec) * 1000000 +
                   static_cast<uint64_t>(ru.ru_stime.tv_usec);
  }
#endif
  return s;
}

namespace {

void AppendNum(std::string* out, uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  *out += buf;
}

void Field(std::string* out, bool* first, const char* key, uint64_t v) {
  if (!*first) out->push_back(',');
  *first = false;
  AppendJsonString(out, key);
  out->push_back(':');
  AppendNum(out, v);
}

void FieldDbl(std::string* out, bool* first, const char* key, double v) {
  if (!*first) out->push_back(',');
  *first = false;
  AppendJsonString(out, key);
  out->push_back(':');
  AppendJsonDouble(out, v);
}

uint64_t ClampedSub(uint64_t cur, uint64_t prev) {
  return cur >= prev ? cur - prev : 0;
}

}  // namespace

std::string ProcessSample::ToJsonFields() const {
  std::string out;
  bool first = true;
  Field(&out, &first, "rss_peak_kb", rss_peak_kb);
  Field(&out, &first, "cpu_user_us", cpu_user_us);
  Field(&out, &first, "cpu_sys_us", cpu_sys_us);
  Field(&out, &first, "wall_us", wall_us);
  return out;
}

// ---------------------------------------------------------------------------
// Snapshot capture
// ---------------------------------------------------------------------------

HistogramSnapshot HistogramSnapshot::Capture(const Histogram& h) {
  HistogramSnapshot s;
  s.buckets.resize(Histogram::kBuckets);
  for (uint32_t i = 0; i < Histogram::kBuckets; ++i) {
    s.buckets[i] = h.bucket(i);
  }
  s.count = h.count();
  s.sum = h.sum();
  s.max = h.max();
  return s;
}

uint64_t HistogramSnapshot::Percentile(double q) const {
  if (count == 0) return 0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  uint64_t rank = static_cast<uint64_t>(q * static_cast<double>(count));
  if (static_cast<double>(rank) < q * static_cast<double>(count)) ++rank;
  if (rank == 0) rank = 1;
  if (rank > count) rank = count;
  uint64_t seen = 0;
  for (uint32_t i = 0; i < buckets.size(); ++i) {
    seen += buckets[i];
    if (seen >= rank) return Histogram::BucketLowerBound(i);
  }
  return max;  // only if count disagrees with the buckets (torn capture)
}

void HistogramSnapshot::MergeFrom(const HistogramSnapshot& other) {
  if (buckets.size() < other.buckets.size()) {
    buckets.resize(other.buckets.size());
  }
  for (uint32_t i = 0; i < other.buckets.size(); ++i) {
    buckets[i] += other.buckets[i];
  }
  count += other.count;
  sum += other.sum;
  if (other.max > max) max = other.max;
}

SinkSnapshot SinkSnapshot::Capture(const StatsSink& sink) {
  SinkSnapshot s;
  s.counters.reserve(SinkCounterFields().size());
  for (const SinkCounterField& f : SinkCounterFields()) {
    s.counters.push_back((sink.*f.member).value());
  }
  s.gauges.reserve(SinkGaugeFields().size());
  for (const SinkGaugeField& f : SinkGaugeFields()) {
    s.gauges.push_back((sink.*f.member).value());
  }
  s.histograms.reserve(SinkHistogramFields().size());
  for (const SinkHistogramField& f : SinkHistogramFields()) {
    s.histograms.push_back(HistogramSnapshot::Capture(sink.*f.member));
  }
  return s;
}

uint64_t SinkSnapshot::counter(const char* name) const {
  const std::vector<SinkCounterField>& fields = SinkCounterFields();
  for (size_t i = 0; i < fields.size(); ++i) {
    if (std::strcmp(fields[i].name, name) == 0) return counters[i];
  }
  NW_CHECK_MSG(false, "unknown counter '%s'", name);
  return 0;
}

uint64_t SinkSnapshot::gauge(const char* name) const {
  const std::vector<SinkGaugeField>& fields = SinkGaugeFields();
  for (size_t i = 0; i < fields.size(); ++i) {
    if (std::strcmp(fields[i].name, name) == 0) return gauges[i];
  }
  NW_CHECK_MSG(false, "unknown gauge '%s'", name);
  return 0;
}

const HistogramSnapshot& SinkSnapshot::histogram(const char* name) const {
  const std::vector<SinkHistogramField>& fields = SinkHistogramFields();
  for (size_t i = 0; i < fields.size(); ++i) {
    if (std::strcmp(fields[i].name, name) == 0) return histograms[i];
  }
  NW_CHECK_MSG(false, "unknown histogram '%s'", name);
  return histograms[0];
}

void SinkSnapshot::MergeFrom(const SinkSnapshot& other) {
  if (counters.empty()) counters.resize(other.counters.size());
  if (gauges.empty()) gauges.resize(other.gauges.size());
  if (histograms.empty()) histograms.resize(other.histograms.size());
  for (size_t i = 0; i < other.counters.size(); ++i) {
    counters[i] += other.counters[i];
  }
  for (size_t i = 0; i < other.gauges.size(); ++i) {
    if (other.gauges[i] > gauges[i]) gauges[i] = other.gauges[i];
  }
  for (size_t i = 0; i < other.histograms.size(); ++i) {
    histograms[i].MergeFrom(other.histograms[i]);
  }
}

SinkSnapshot StatsSnapshot::Aggregate() const {
  SinkSnapshot agg;
  agg.counters.resize(SinkCounterFields().size());
  agg.gauges.resize(SinkGaugeFields().size());
  agg.histograms.resize(SinkHistogramFields().size());
  for (const SinkSnapshot& s : sinks) agg.MergeFrom(s);
  return agg;
}

StatsSnapshot CaptureSnapshot(const StatsRegistry& registry) {
  StatsSnapshot snap;
  snap.t_us = PulseNowUs();
  snap.labels.reserve(registry.num_sinks());
  snap.sinks.reserve(registry.num_sinks());
  for (const auto& [label, sink] : registry.sinks()) {
    snap.labels.push_back(label);
    snap.sinks.push_back(SinkSnapshot::Capture(*sink));
  }
  const std::vector<const QueryAttribution*>& attrs = registry.attributions();
  if (!attrs.empty()) {
    const size_t k = attrs.front()->num_queries();
    snap.queries.resize(k);
    for (const QueryAttribution* a : attrs) {
      snap.attr_docs += a->docs.value();
      snap.attr_positions += a->positions.value();
      for (size_t i = 0; i < k; ++i) {
        const QueryProfile& q = a->query(i);
        QuerySnapshot& out = snap.queries[i];
        out.match_docs += q.match_docs.value();
        out.accept_positions += q.accept_positions.value();
        out.escalations += q.escalations.value();
        if (q.states_compiled.value() > out.states_compiled) {
          out.states_compiled = q.states_compiled.value();
        }
        if (q.states_final.value() > out.states_final) {
          out.states_final = q.states_final.value();
        }
      }
    }
  }
  snap.process = SampleProcess();
  return snap;
}

// ---------------------------------------------------------------------------
// Delta
// ---------------------------------------------------------------------------

namespace {

SinkSnapshot SinkDelta(const SinkSnapshot* prev, const SinkSnapshot& cur) {
  if (prev == nullptr) return cur;  // new sink: everything is interval
  SinkSnapshot d = cur;             // gauges (and hist max) carry over
  for (size_t i = 0; i < d.counters.size(); ++i) {
    d.counters[i] = ClampedSub(cur.counters[i], prev->counters[i]);
  }
  for (size_t i = 0; i < d.histograms.size(); ++i) {
    HistogramSnapshot& h = d.histograms[i];
    const HistogramSnapshot& p = prev->histograms[i];
    for (size_t b = 0; b < h.buckets.size(); ++b) {
      h.buckets[b] = ClampedSub(h.buckets[b], p.buckets[b]);
    }
    h.count = ClampedSub(h.count, p.count);
    h.sum = ClampedSub(h.sum, p.sum);
  }
  return d;
}

}  // namespace

StatsSnapshot SnapshotDelta(const StatsSnapshot& prev,
                            const StatsSnapshot& cur) {
  StatsSnapshot d;
  d.t_us = ClampedSub(cur.t_us, prev.t_us);
  d.labels = cur.labels;
  d.sinks.reserve(cur.sinks.size());
  for (size_t i = 0; i < cur.sinks.size(); ++i) {
    // Labels are appended in registration order, so the common case is a
    // positional match; fall back to a scan for sinks registered between
    // the two captures.
    const SinkSnapshot* p = nullptr;
    if (i < prev.labels.size() && prev.labels[i] == cur.labels[i]) {
      p = &prev.sinks[i];
    } else {
      for (size_t j = 0; j < prev.labels.size(); ++j) {
        if (prev.labels[j] == cur.labels[i]) {
          p = &prev.sinks[j];
          break;
        }
      }
    }
    d.sinks.push_back(SinkDelta(p, cur.sinks[i]));
  }
  d.queries = cur.queries;
  for (size_t i = 0; i < d.queries.size(); ++i) {
    if (i < prev.queries.size()) {
      d.queries[i].match_docs =
          ClampedSub(cur.queries[i].match_docs, prev.queries[i].match_docs);
      d.queries[i].accept_positions = ClampedSub(
          cur.queries[i].accept_positions, prev.queries[i].accept_positions);
      d.queries[i].escalations =
          ClampedSub(cur.queries[i].escalations, prev.queries[i].escalations);
    }
  }
  d.attr_docs = ClampedSub(cur.attr_docs, prev.attr_docs);
  d.attr_positions = ClampedSub(cur.attr_positions, prev.attr_positions);
  d.process.rss_peak_kb = cur.process.rss_peak_kb;
  d.process.cpu_user_us =
      ClampedSub(cur.process.cpu_user_us, prev.process.cpu_user_us);
  d.process.cpu_sys_us =
      ClampedSub(cur.process.cpu_sys_us, prev.process.cpu_sys_us);
  d.process.wall_us = ClampedSub(cur.process.wall_us, prev.process.wall_us);
  return d;
}

// ---------------------------------------------------------------------------
// JSONL records
// ---------------------------------------------------------------------------

namespace {

/// `"key":{...all schema counters of agg...}`.
void AppendCounterObject(std::string* out, const char* key,
                         const SinkSnapshot& agg) {
  AppendJsonString(out, key);
  *out += ":{";
  bool first = true;
  const std::vector<SinkCounterField>& fields = SinkCounterFields();
  for (size_t i = 0; i < fields.size(); ++i) {
    Field(out, &first, fields[i].name, agg.counters[i]);
  }
  out->push_back('}');
}

double PerSecond(uint64_t delta, uint64_t interval_us) {
  // interval 0 divides to NaN/Inf; AppendJsonDouble renders that null.
  return static_cast<double>(delta) * 1e6 /
         static_cast<double>(interval_us);
}

}  // namespace

std::string RenderPulseStart(const StatsSnapshot& baseline,
                             uint64_t interval_ms) {
  std::string out = "{\"type\":\"pulse_start\",\"version\":1";
  bool first = false;
  Field(&out, &first, "interval_ms", interval_ms);
  Field(&out, &first, "t_us", baseline.t_us);
  out += ",\"labels\":[";
  for (size_t i = 0; i < baseline.labels.size(); ++i) {
    if (i > 0) out.push_back(',');
    AppendJsonString(&out, baseline.labels[i]);
  }
  out += "],";
  AppendCounterObject(&out, "totals", baseline.Aggregate());
  out += ",\"process\":{" + baseline.process.ToJsonFields() + "}}";
  return out;
}

std::string RenderPulseRecord(const StatsSnapshot& cur,
                              const StatsSnapshot& delta, uint64_t seq,
                              const PulseProgress* progress) {
  const SinkSnapshot cur_agg = cur.Aggregate();
  const SinkSnapshot d_agg = delta.Aggregate();
  const uint64_t interval = delta.t_us;
  std::string out = "{\"type\":\"pulse\"";
  bool first = false;
  Field(&out, &first, "seq", seq);
  Field(&out, &first, "t_us", cur.t_us);
  Field(&out, &first, "interval_us", interval);
  out.push_back(',');
  AppendCounterObject(&out, "totals", cur_agg);
  out.push_back(',');
  AppendCounterObject(&out, "delta", d_agg);
  // Derived per-second rates over the interval.
  out += ",\"rate\":{";
  bool rf = true;
  FieldDbl(&out, &rf, "docs_per_s",
           PerSecond(d_agg.counter("engine_docs"), interval));
  FieldDbl(&out, &rf, "positions_per_s",
           PerSecond(d_agg.counter("engine_positions"), interval));
  FieldDbl(&out, &rf, "bytes_per_s",
           PerSecond(d_agg.counter("stream_bytes"), interval));
  out.push_back('}');
  // Interval latency: percentiles of the bucket-subtracted histogram.
  const HistogramSnapshot& lat = d_agg.histogram("doc_latency_us");
  out += ",\"latency_us\":{";
  bool lf = true;
  Field(&out, &lf, "count", lat.count);
  FieldDbl(&out, &lf, "mean", lat.mean());
  Field(&out, &lf, "p50", lat.Percentile(0.50));
  Field(&out, &lf, "p90", lat.Percentile(0.90));
  Field(&out, &lf, "p99", lat.Percentile(0.99));
  out.push_back('}');
  // Interval frozen hit rate (null via the guard when no traffic).
  {
    uint64_t hits = d_agg.counter("frozen_hits");
    uint64_t total = hits + d_agg.counter("frozen_misses");
    bool hf = false;
    FieldDbl(&out, &hf, "frozen_hit_rate",
             static_cast<double>(hits) / static_cast<double>(total));
  }
  // Per-sink interval rows: the live skew view.
  out += ",\"shards\":[";
  for (size_t i = 0; i < delta.sinks.size(); ++i) {
    if (i > 0) out.push_back(',');
    const SinkSnapshot& s = delta.sinks[i];
    out += "{\"label\":";
    AppendJsonString(&out, delta.labels[i]);
    bool sf = false;
    Field(&out, &sf, "docs", s.counter("shard_docs"));
    Field(&out, &sf, "bytes", s.counter("shard_bytes"));
    Field(&out, &sf, "positions", s.counter("shard_positions"));
    Field(&out, &sf, "busy_us", s.counter("shard_busy_us"));
    // Interval busy time over the interval: a shard's live utilization.
    // (Busy is recorded when a document completes, so a document longer
    // than the interval can push one tick above 1.0 and starve the
    // next; the time series is still exact in aggregate.)
    FieldDbl(&out, &sf, "utilization",
             static_cast<double>(s.counter("shard_busy_us")) /
                 static_cast<double>(interval));
    out.push_back('}');
  }
  out.push_back(']');
  if (progress != nullptr) {
    out += ",\"progress\":{";
    bool pf = true;
    Field(&out, &pf, "total_docs",
          progress->total_docs.load(std::memory_order_relaxed));
    Field(&out, &pf, "cursor",
          progress->cursor.load(std::memory_order_relaxed));
    Field(&out, &pf, "docs_done",
          progress->docs_done.load(std::memory_order_relaxed));
    Field(&out, &pf, "bytes_done",
          progress->bytes_done.load(std::memory_order_relaxed));
    out += ",\"active\":";
    out += progress->active.load(std::memory_order_relaxed) ? "true"
                                                            : "false";
    out.push_back('}');
  }
  out += ",\"process\":{" + cur.process.ToJsonFields() + "}}";
  return out;
}

// ---------------------------------------------------------------------------
// Watch frame
// ---------------------------------------------------------------------------

std::string RenderWatchFrame(const StatsSnapshot& cur,
                             const StatsSnapshot& delta,
                             const PulseProgress* progress) {
  const SinkSnapshot cur_agg = cur.Aggregate();
  const SinkSnapshot d_agg = delta.Aggregate();
  const double interval_s = static_cast<double>(delta.t_us) / 1e6;
  std::string out;
  char buf[256];
  std::snprintf(buf, sizeof(buf), "NWPulse  t=%.1fs  docs=%" PRIu64,
                static_cast<double>(cur.t_us) / 1e6,
                cur_agg.counter("engine_docs"));
  out += buf;
  if (progress != nullptr) {
    uint64_t total = progress->total_docs.load(std::memory_order_relaxed);
    uint64_t done = progress->docs_done.load(std::memory_order_relaxed);
    std::snprintf(buf, sizeof(buf), "  run %" PRIu64 "/%" PRIu64 " (%.1f%%)",
                  done, total,
                  total == 0 ? 100.0
                             : 100.0 * static_cast<double>(done) /
                                   static_cast<double>(total));
    out += buf;
  }
  out.push_back('\n');
  if (interval_s > 0) {
    std::snprintf(buf, sizeof(buf),
                  "rate     %.1f docs/s  %.2f MB/s  %.2f Mpos/s\n",
                  static_cast<double>(d_agg.counter("engine_docs")) /
                      interval_s,
                  static_cast<double>(d_agg.counter("stream_bytes")) /
                      interval_s / 1e6,
                  static_cast<double>(d_agg.counter("engine_positions")) /
                      interval_s / 1e6);
    out += buf;
  } else {
    out += "rate     (first interval)\n";
  }
  const HistogramSnapshot& lat = d_agg.histogram("doc_latency_us");
  uint64_t fh = d_agg.counter("frozen_hits");
  uint64_t ft = fh + d_agg.counter("frozen_misses");
  char rate[16] = "n/a";
  if (ft > 0) {
    std::snprintf(rate, sizeof(rate), "%.4f",
                  static_cast<double>(fh) / static_cast<double>(ft));
  }
  std::snprintf(buf, sizeof(buf),
                "latency  n=%" PRIu64 " p50=%" PRIu64 "us p99=%" PRIu64
                "us  frozen hit_rate=%s\n",
                lat.count, lat.Percentile(0.50), lat.Percentile(0.99), rate);
  out += buf;
  for (size_t i = 0; i < delta.sinks.size(); ++i) {
    const SinkSnapshot& s = delta.sinks[i];
    // Shard rows only — the "main" sink has no shard loop to watch.
    if (cur.sinks[i].counter("shard_docs") == 0 &&
        s.counter("shard_docs") == 0) {
      continue;
    }
    double util = delta.t_us == 0
                      ? 0.0
                      : static_cast<double>(s.counter("shard_busy_us")) /
                            static_cast<double>(delta.t_us);
    std::snprintf(buf, sizeof(buf),
                  "%-8s +%" PRIu64 " docs  +%" PRIu64 " pos  busy %.1f%%\n",
                  delta.labels[i].c_str(), s.counter("shard_docs"),
                  s.counter("shard_positions"), 100.0 * util);
    out += buf;
  }
  return out;
}

// ---------------------------------------------------------------------------
// Sampler
// ---------------------------------------------------------------------------

PulseSampler::PulseSampler(const StatsRegistry* registry, Options opts)
    : registry_(registry), opts_(opts) {
  NW_CHECK_MSG(registry != nullptr, "PulseSampler needs a registry");
  NW_CHECK_MSG(opts_.interval_ms > 0, "--stats-interval must be >= 1 ms");
  if (opts_.watch && opts_.watch_out == nullptr) opts_.watch_out = stderr;
#if defined(NW_HAVE_RUSAGE)
  watch_tty_ = opts_.watch && isatty(fileno(opts_.watch_out)) == 1;
#endif
}

PulseSampler::~PulseSampler() { Stop(); }

void PulseSampler::Start() {
  NW_CHECK_MSG(!started_, "PulseSampler::Start() may be called once");
  started_ = true;
  prev_ = CaptureSnapshot(*registry_);
  if (opts_.jsonl != nullptr) {
    std::string header = RenderPulseStart(prev_, opts_.interval_ms);
    header.push_back('\n');
    std::fputs(header.c_str(), opts_.jsonl);
    std::fflush(opts_.jsonl);
  }
  thread_ = std::thread([this] { Loop(); });
}

void PulseSampler::Loop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    cv_.wait_for(lock, std::chrono::milliseconds(opts_.interval_ms),
                 [this] { return stop_; });
    if (stop_) return;
    // Tick without the lock: tick state (prev_, seq_) is only touched by
    // this thread until after the join in Stop().
    lock.unlock();
    Tick();
    lock.lock();
  }
}

void PulseSampler::Tick() {
  StatsSnapshot cur = CaptureSnapshot(*registry_);
  StatsSnapshot delta = SnapshotDelta(prev_, cur);
  if (opts_.jsonl != nullptr) {
    std::string line = RenderPulseRecord(cur, delta, seq_, opts_.progress);
    line.push_back('\n');
    std::fputs(line.c_str(), opts_.jsonl);
    std::fflush(opts_.jsonl);
  }
  if (opts_.watch) {
    std::string frame = RenderWatchFrame(cur, delta, opts_.progress);
    size_t lines = 0;
    for (char c : frame) lines += c == '\n';
    std::string draw;
    if (watch_tty_ && watch_lines_ > 0) {
      // Rewind over the previous frame and clear each line as we redraw.
      char up[16];
      std::snprintf(up, sizeof(up), "\x1b[%zuA", watch_lines_);
      draw += up;
      std::string cleared;
      for (char c : frame) {
        if (cleared.empty() || cleared.back() == '\n') cleared += "\x1b[2K";
        cleared.push_back(c);
      }
      draw += cleared;
    } else {
      draw = frame;
    }
    std::fputs(draw.c_str(), opts_.watch_out);
    std::fflush(opts_.watch_out);
    watch_lines_ = lines;
  }
  prev_ = std::move(cur);
  ++seq_;
  ticks_.fetch_add(1, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// Prometheus / OpenMetrics exposition
// ---------------------------------------------------------------------------

namespace {

/// Escapes a Prometheus label value: backslash, double quote, newline.
void AppendPromLabelValue(std::string* out, const std::string& v) {
  for (char c : v) {
    switch (c) {
      case '\\': *out += "\\\\"; break;
      case '"': *out += "\\\""; break;
      case '\n': *out += "\\n"; break;
      default: out->push_back(c);
    }
  }
}

void PromHeader(std::string* out, const std::string& name, const char* help,
                const char* type) {
  *out += "# HELP " + name + " ";
  *out += help;
  *out += "\n# TYPE " + name + " ";
  *out += type;
  out->push_back('\n');
}

/// One series line: `name{label="value",...} <uint value>`.
void PromLine(std::string* out, const std::string& name,
              std::initializer_list<std::pair<const char*, std::string>>
                  labels,
              uint64_t value) {
  *out += name;
  if (labels.size() > 0) {
    out->push_back('{');
    bool first = true;
    for (const auto& [k, v] : labels) {
      if (!first) out->push_back(',');
      first = false;
      *out += k;
      *out += "=\"";
      AppendPromLabelValue(out, v);
      out->push_back('"');
    }
    out->push_back('}');
  }
  out->push_back(' ');
  AppendNum(out, value);
  out->push_back('\n');
}

void PromLineDbl(std::string* out, const std::string& name, double value) {
  *out += name;
  char buf[48];
  std::snprintf(buf, sizeof(buf), " %.6f\n", value);
  *out += buf;
}

}  // namespace

std::string StatsRegistry::RenderProm() const {
  const StatsSnapshot snap = CaptureSnapshot(*this);
  std::string out;
  // Counter families: nw_<name>_total, one series per sink.
  const std::vector<SinkCounterField>& counters = SinkCounterFields();
  for (size_t f = 0; f < counters.size(); ++f) {
    std::string name = std::string("nw_") + counters[f].name + "_total";
    PromHeader(&out, name, counters[f].help, "counter");
    for (size_t i = 0; i < snap.sinks.size(); ++i) {
      PromLine(&out, name, {{"sink", snap.labels[i]}},
               snap.sinks[i].counters[f]);
    }
  }
  // Gauge families: nw_<name>.
  const std::vector<SinkGaugeField>& gauges = SinkGaugeFields();
  for (size_t f = 0; f < gauges.size(); ++f) {
    std::string name = std::string("nw_") + gauges[f].name;
    PromHeader(&out, name, gauges[f].help, "gauge");
    for (size_t i = 0; i < snap.sinks.size(); ++i) {
      PromLine(&out, name, {{"sink", snap.labels[i]}},
               snap.sinks[i].gauges[f]);
    }
  }
  // Histogram families: cumulative _bucket over the BucketLowerBound
  // boundaries (le = the NEXT bucket's lower bound — every sample in
  // bucket i is < BucketLowerBound(i+1)). Only buckets with samples are
  // emitted (976 mostly-empty series per histogram would drown the
  // exposition); `le` stays monotone because BucketLowerBound is.
  const std::vector<SinkHistogramField>& hists = SinkHistogramFields();
  for (size_t f = 0; f < hists.size(); ++f) {
    std::string name = std::string("nw_") + hists[f].name;
    PromHeader(&out, name, hists[f].help, "histogram");
    for (size_t i = 0; i < snap.sinks.size(); ++i) {
      const HistogramSnapshot& h = snap.sinks[i].histograms[f];
      uint64_t cum = 0;
      for (uint32_t b = 0; b < h.buckets.size(); ++b) {
        if (h.buckets[b] == 0) continue;
        cum += h.buckets[b];
        if (b + 1 >= Histogram::kBuckets) continue;  // folded into +Inf
        PromLine(
            &out, name + "_bucket",
            {{"sink", snap.labels[i]},
             {"le", std::to_string(Histogram::BucketLowerBound(b + 1))}},
            cum);
      }
      PromLine(&out, name + "_bucket",
               {{"sink", snap.labels[i]}, {"le", "+Inf"}}, h.count);
      PromLine(&out, name + "_sum", {{"sink", snap.labels[i]}}, h.sum);
      PromLine(&out, name + "_count", {{"sink", snap.labels[i]}}, h.count);
    }
  }
  // Per-query attribution series.
  PromHeader(&out, "nw_query_match_docs_total",
             "documents whose final accept set contains the query",
             "counter");
  for (size_t q = 0; q < snap.queries.size(); ++q) {
    PromLine(&out, "nw_query_match_docs_total",
             {{"query", std::to_string(q)}}, snap.queries[q].match_docs);
  }
  PromHeader(&out, "nw_query_accept_positions_total",
             "positions at which the query was observed accepting",
             "counter");
  for (size_t q = 0; q < snap.queries.size(); ++q) {
    PromLine(&out, "nw_query_accept_positions_total",
             {{"query", std::to_string(q)}},
             snap.queries[q].accept_positions);
  }
  PromHeader(&out, "nw_query_escalations_total",
             "overflow escalations attributed to the query", "counter");
  for (size_t q = 0; q < snap.queries.size(); ++q) {
    PromLine(&out, "nw_query_escalations_total",
             {{"query", std::to_string(q)}}, snap.queries[q].escalations);
  }
  PromHeader(&out, "nw_query_states_compiled",
             "automaton states out of lowering, before minimization",
             "gauge");
  for (size_t q = 0; q < snap.queries.size(); ++q) {
    PromLine(&out, "nw_query_states_compiled",
             {{"query", std::to_string(q)}}, snap.queries[q].states_compiled);
  }
  PromHeader(&out, "nw_query_states_final",
             "automaton states after minimization", "gauge");
  for (size_t q = 0; q < snap.queries.size(); ++q) {
    PromLine(&out, "nw_query_states_final", {{"query", std::to_string(q)}},
             snap.queries[q].states_final);
  }
  // Metadata: string entries as labels of one nw_info series, numeric
  // entries as nw_meta{key="..."} values.
  PromHeader(&out, "nw_info", "run metadata as labels", "gauge");
  {
    out += "nw_info{";
    bool first = true;
    for (const Meta& m : meta_) {
      if (m.is_num) continue;
      if (!first) out.push_back(',');
      first = false;
      out += m.key;
      out += "=\"";
      AppendPromLabelValue(&out, m.str);
      out.push_back('"');
    }
    out += "} 1\n";
  }
  PromHeader(&out, "nw_meta", "numeric run metadata by key", "gauge");
  for (const Meta& m : meta_) {
    if (!m.is_num) continue;
    PromLine(&out, "nw_meta", {{"key", m.key}}, m.num);
  }
  // Process-level machine context.
  PromHeader(&out, "nw_process_peak_rss_bytes",
             "peak resident set size from getrusage", "gauge");
  PromLine(&out, "nw_process_peak_rss_bytes", {},
           snap.process.rss_peak_kb * 1024);
  PromHeader(&out, "nw_process_cpu_user_seconds_total",
             "user CPU time from getrusage", "counter");
  PromLineDbl(&out, "nw_process_cpu_user_seconds_total",
              static_cast<double>(snap.process.cpu_user_us) / 1e6);
  PromHeader(&out, "nw_process_cpu_system_seconds_total",
             "system CPU time from getrusage", "counter");
  PromLineDbl(&out, "nw_process_cpu_system_seconds_total",
              static_cast<double>(snap.process.cpu_sys_us) / 1e6);
  PromHeader(&out, "nw_process_wall_seconds",
             "wall-clock time since process epoch", "gauge");
  PromLineDbl(&out, "nw_process_wall_seconds",
              static_cast<double>(snap.process.wall_us) / 1e6);
  return out;
}

void PulseSampler::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!started_ || stop_) return;
    stop_ = true;
  }
  cv_.notify_all();
  thread_.join();
  // One closing tick after the writers are done: the trailing partial
  // interval lands in the series, so the deltas sum to the final totals.
  Tick();
}

}  // namespace nw
