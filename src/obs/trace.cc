#include "obs/trace.h"

#include <cinttypes>
#include <cstdlib>
#include <cstring>

#include "obs/stats.h"

namespace nw {

Tracer::Tracer(const std::string& path, TraceFormat format)
    : format_(format), epoch_(std::chrono::steady_clock::now()) {
  if (path == "-") {
    file_ = stderr;
  } else {
    // A chrome trace is one JSON array, so the file cannot be shared
    // with a previous run's output the way appended JSONL can.
    file_ = std::fopen(path.c_str(),
                       format_ == TraceFormat::kChrome ? "w" : "a");
    owns_file_ = file_ != nullptr;
  }
  if (file_ != nullptr && format_ == TraceFormat::kChrome) {
    std::fputs("[", file_);
  }
}

Tracer::~Tracer() {
  if (file_ != nullptr && format_ == TraceFormat::kChrome) {
    std::fputs("\n]\n", file_);
  }
  if (owns_file_) std::fclose(file_);
}

std::unique_ptr<Tracer> Tracer::FromEnv(const char* var,
                                        const char* format_var) {
  const char* path = std::getenv(var);
  if (path == nullptr || *path == '\0') return nullptr;
  const char* fmt = std::getenv(format_var);
  TraceFormat format = fmt != nullptr && std::strcmp(fmt, "chrome") == 0
                           ? TraceFormat::kChrome
                           : TraceFormat::kJsonl;
  auto tracer = std::make_unique<Tracer>(path, format);
  if (!tracer->ok()) {
    std::fprintf(stderr, "trace: cannot open %s=%s; tracing disabled\n", var,
                 path);
    return nullptr;
  }
  return tracer;
}

uint64_t Tracer::NowUs() const {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count());
}

void Tracer::Emit(const std::string& event) {
  std::lock_guard<std::mutex> lock(mu_);
  if (format_ == TraceFormat::kChrome) {
    // Comma-separate array elements; a leading newline per event keeps
    // the file diffable without breaking the array.
    if (!first_event_) std::fputs(",", file_);
    first_event_ = false;
    std::fputs("\n", file_);
  }
  std::fwrite(event.data(), 1, event.size(), file_);
  if (format_ == TraceFormat::kJsonl) std::fputs("\n", file_);
}

void Tracer::WriteSpan(
    const std::string& name, const std::string& label, uint64_t start_us,
    uint64_t dur_us,
    const std::vector<std::pair<std::string, uint64_t>>& fields) {
  if (file_ == nullptr) return;
  char buf[64];
  std::string line;
  if (format_ == TraceFormat::kChrome) {
    // Complete ("X") event: ts/dur in µs, pid fixed, tid = the span's
    // shard so Perfetto lays shards out as tracks. Everything else —
    // the label and the numeric fields — goes under args.
    uint64_t tid = 0;
    for (const auto& [key, value] : fields) {
      if (key == "shard") tid = value;
    }
    line.push_back('{');
    AppendJsonString(&line, "name");
    line.push_back(':');
    AppendJsonString(&line, name);
    std::snprintf(buf, sizeof(buf),
                  ",\"cat\":\"nwquery\",\"ph\":\"X\",\"ts\":%" PRIu64
                  ",\"dur\":%" PRIu64 ",\"pid\":1,\"tid\":%" PRIu64,
                  start_us, dur_us, tid);
    line += buf;
    line += ",\"args\":{";
    AppendJsonString(&line, "label");
    line.push_back(':');
    AppendJsonString(&line, label);
    for (const auto& [key, value] : fields) {
      line.push_back(',');
      AppendJsonString(&line, key);
      std::snprintf(buf, sizeof(buf), ":%" PRIu64, value);
      line += buf;
    }
    line += "}}";
    Emit(line);
    return;
  }
  line.push_back('{');
  AppendJsonString(&line, "name");
  line.push_back(':');
  AppendJsonString(&line, name);
  line.push_back(',');
  AppendJsonString(&line, "label");
  line.push_back(':');
  AppendJsonString(&line, label);
  std::snprintf(buf, sizeof(buf), ",\"start_us\":%" PRIu64
                ",\"dur_us\":%" PRIu64, start_us, dur_us);
  line += buf;
  for (const auto& [key, value] : fields) {
    line.push_back(',');
    AppendJsonString(&line, key);
    std::snprintf(buf, sizeof(buf), ":%" PRIu64, value);
    line += buf;
  }
  line.push_back('}');
  Emit(line);
}

void Tracer::WriteCounters(uint64_t shard, const StatsSink& sink) {
  if (file_ == nullptr) return;
  const uint64_t docs = sink.engine_docs.value();
  const uint64_t positions = sink.engine_positions.value();
  const uint64_t hits = sink.frozen_hits.value();
  const uint64_t misses = sink.frozen_misses.value();
  char buf[256];
  std::string line;
  if (format_ == TraceFormat::kChrome) {
    // Counter ("C") event: one per shard; Perfetto plots each args key
    // as a series under the counter track named after the shard.
    std::snprintf(buf, sizeof(buf),
                  "{\"name\":\"shard/%" PRIu64
                  "\",\"cat\":\"nwquery\",\"ph\":\"C\",\"ts\":%" PRIu64
                  ",\"pid\":1,\"tid\":%" PRIu64
                  ",\"args\":{\"docs\":%" PRIu64 ",\"positions\":%" PRIu64
                  ",\"frozen_hits\":%" PRIu64 ",\"frozen_misses\":%" PRIu64
                  "}}",
                  shard, NowUs(), shard, docs, positions, hits, misses);
    line = buf;
    Emit(line);
    return;
  }
  std::snprintf(buf, sizeof(buf),
                "{\"name\":\"counters\",\"shard\":%" PRIu64
                ",\"ts_us\":%" PRIu64 ",\"docs\":%" PRIu64
                ",\"positions\":%" PRIu64 ",\"frozen_hits\":%" PRIu64
                ",\"frozen_misses\":%" PRIu64 "}",
                shard, NowUs(), docs, positions, hits, misses);
  line = buf;
  Emit(line);
}

}  // namespace nw
