#include "obs/trace.h"

#include <cinttypes>
#include <cstdlib>

#include "obs/stats.h"

namespace nw {

Tracer::Tracer(const std::string& path)
    : epoch_(std::chrono::steady_clock::now()) {
  if (path == "-") {
    file_ = stderr;
  } else {
    file_ = std::fopen(path.c_str(), "a");
    owns_file_ = file_ != nullptr;
  }
}

Tracer::~Tracer() {
  if (owns_file_) std::fclose(file_);
}

std::unique_ptr<Tracer> Tracer::FromEnv(const char* var) {
  const char* path = std::getenv(var);
  if (path == nullptr || *path == '\0') return nullptr;
  auto tracer = std::make_unique<Tracer>(path);
  if (!tracer->ok()) {
    std::fprintf(stderr, "trace: cannot open %s=%s; tracing disabled\n", var,
                 path);
    return nullptr;
  }
  return tracer;
}

uint64_t Tracer::NowUs() const {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count());
}

void Tracer::WriteSpan(
    const std::string& name, const std::string& label, uint64_t start_us,
    uint64_t dur_us,
    const std::vector<std::pair<std::string, uint64_t>>& fields) {
  if (file_ == nullptr) return;
  std::string line;
  line.push_back('{');
  AppendJsonString(&line, "name");
  line.push_back(':');
  AppendJsonString(&line, name);
  line.push_back(',');
  AppendJsonString(&line, "label");
  line.push_back(':');
  AppendJsonString(&line, label);
  char buf[64];
  std::snprintf(buf, sizeof(buf), ",\"start_us\":%" PRIu64
                ",\"dur_us\":%" PRIu64, start_us, dur_us);
  line += buf;
  for (const auto& [key, value] : fields) {
    line.push_back(',');
    AppendJsonString(&line, key);
    std::snprintf(buf, sizeof(buf), ":%" PRIu64, value);
    line += buf;
  }
  line += "}\n";
  std::lock_guard<std::mutex> lock(mu_);
  std::fwrite(line.data(), 1, line.size(), file_);
}

}  // namespace nw
