#include "obs/bench_report.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>

#include "obs/pulse.h"
#include "obs/stats.h"

namespace nw {

BenchConfig ParseBenchConfig(int* argc, char** argv) {
  BenchConfig cfg;
  int kept = 1;
  for (int i = 1; i < *argc; ++i) {
    if (std::strcmp(argv[i], "--report=json") == 0) {
      cfg.report_json = true;
    } else if (std::strncmp(argv[i], "--report", 8) == 0 &&
               (argv[i][8] == '\0' || argv[i][8] == '=')) {
      // Fail fast on "--report=csv" and friends instead of forwarding
      // them to benchmark::Initialize, which used to swallow the typo
      // and run the bench in table mode — CI then archived no report.
      std::fprintf(stderr,
                   "%s: unknown --report value '%s' (want --report=json)\n",
                   argv[0], argv[i][8] == '=' ? argv[i] + 9 : "");
      std::exit(2);
    } else if (std::strcmp(argv[i], "--quick") == 0) {
      cfg.quick = true;
    } else {
      argv[kept++] = argv[i];
    }
  }
  *argc = kept;
  return cfg;
}

BenchReport::BenchReport(std::string bench_name)
    : name_(std::move(bench_name)) {}

void BenchReport::Metric(const std::string& key, double value) {
  metrics_.emplace_back(key, value);
}

namespace {

/// Build-environment fingerprint for the host object, so bench_diff can
/// refuse apples-to-oranges comparisons (a clang-Release number means
/// nothing against a gcc-Debug baseline). All compile-time facts.
const char* CompilerId() {
#if defined(__clang__)
  return "clang";
#elif defined(__GNUC__)
  return "gcc";
#else
  return "unknown";
#endif
}

const char* OsId() {
#if defined(__linux__)
  return "linux";
#elif defined(__APPLE__)
  return "darwin";
#elif defined(_WIN32)
  return "windows";
#else
  return "unknown";
#endif
}

const char* BuildType() {
#ifdef NW_BUILD_TYPE
  return NW_BUILD_TYPE;
#else
  return "unknown";
#endif
}

}  // namespace

std::string BenchReport::ToJson(bool quick) const {
  std::string out;
  out.push_back('{');
  AppendJsonString(&out, "bench");
  out.push_back(':');
  AppendJsonString(&out, name_);
  out += quick ? ",\"quick\":true," : ",\"quick\":false,";
  char buf[256];
  std::snprintf(buf, sizeof(buf), "\"host\":{\"hardware_threads\":%u,",
                std::thread::hardware_concurrency());
  out += buf;
  AppendJsonString(&out, "compiler");
  out.push_back(':');
  AppendJsonString(&out, CompilerId());
  out.push_back(',');
  AppendJsonString(&out, "compiler_version");
  out.push_back(':');
#ifdef __VERSION__
  AppendJsonString(&out, __VERSION__);
#else
  AppendJsonString(&out, "unknown");
#endif
  out.push_back(',');
  AppendJsonString(&out, "build_type");
  out.push_back(':');
  AppendJsonString(&out, BuildType());
  out.push_back(',');
  AppendJsonString(&out, "os");
  out.push_back(':');
  AppendJsonString(&out, OsId());
  out += "},";
  // Machine context of the benchmarking process itself (peak RSS, CPU,
  // wall time) — context, not a metric: bench_diff compares "metrics"
  // only, so run-to-run rusage noise never fails a diff.
  out += "\"process\":{" + SampleProcess().ToJsonFields() + "},";
  AppendJsonString(&out, "metrics");
  out += ":{";
  for (size_t i = 0; i < metrics_.size(); ++i) {
    if (i > 0) out.push_back(',');
    AppendJsonString(&out, metrics_[i].first);
    out.push_back(':');
    // NaN/Inf render null — a degenerate ratio must not corrupt the
    // report (tools/bench_diff.py treats null as missing).
    AppendJsonDouble(&out, metrics_[i].second);
  }
  out += "}}";
  return out;
}

}  // namespace nw
