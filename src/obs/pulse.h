// NWPulse: time-resolved observability on top of the NWStats registry.
// NWStats/NWProf render once, post mortem; this layer turns the same
// single-writer relaxed-atomic cells (obs/metrics.h) into a time series
// a long sharded run can be watched through — the per-epoch metrics
// surface the ROADMAP's NWDaemon item depends on.
//
// Three pieces:
//
//  1. Snapshot/delta engine — StatsSnapshot is an immutable capture of
//     everything a StatsRegistry can see (every schema counter/gauge,
//     full histogram bucket vectors, merged attribution tables, process
//     rusage), taken while shards write: the reader-side view the
//     relaxed-atomic cells were designed to permit. SnapshotDelta
//     subtracts two captures — interval counts, and *interval* (not
//     lifetime) latency percentiles via bucket-wise histogram
//     subtraction.
//  2. PulseSampler — a background thread that scrapes every N ms,
//     appending one self-describing JSONL record per tick and/or
//     re-rendering a live terminal view (--watch) from the PulseProgress
//     cells the serving loop publishes mid-run.
//  3. Prometheus exposition — StatsRegistry::RenderProm() (declared in
//     obs/stats.h, implemented here) maps the schema onto OpenMetrics
//     text: counters as nw_<name>_total, histograms as cumulative
//     _bucket{le=...}/_sum/_count over BucketLowerBound boundaries,
//     per-shard sink= and per-query query= labels.
//
// Threading: capture reads relaxed atomics concurrently with shard
// writers (torn multi-field views are possible mid-run, exact after the
// writers join — same contract as StatsRegistry::Aggregate). The
// registry's *registration* phase is not concurrent-safe: finish all
// Register/RegisterAttribution calls before the first capture or
// Start(). tests/pulse_test.cc holds the TSan witness.
#ifndef NW_OBS_PULSE_H_
#define NW_OBS_PULSE_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "obs/stats.h"

namespace nw {

/// Process-level machine context: peak RSS and user/sys CPU from
/// getrusage(RUSAGE_SELF), wall time since the process epoch (first use
/// of this library's clock). Zeros on platforms without rusage.
struct ProcessSample {
  uint64_t rss_peak_kb = 0;
  uint64_t cpu_user_us = 0;
  uint64_t cpu_sys_us = 0;
  uint64_t wall_us = 0;

  /// JSON object body (no braces): the shared fragment the pulse
  /// records, the stats registry, and the bench reports embed.
  std::string ToJsonFields() const;
};
ProcessSample SampleProcess();

/// Microseconds since the process epoch — the pulse records' shared
/// clock (first call wins as t=0; call order makes it ~process start).
uint64_t PulseNowUs();

/// Immutable capture of one Histogram: the full bucket vector plus the
/// count/sum/max summary, supporting the same Percentile contract — and,
/// unlike the live cell, supporting subtraction.
struct HistogramSnapshot {
  uint64_t count = 0;
  uint64_t sum = 0;
  uint64_t max = 0;
  std::vector<uint64_t> buckets;  ///< Histogram::kBuckets entries

  static HistogramSnapshot Capture(const Histogram& h);

  double mean() const {
    return count == 0 ? 0.0
                      : static_cast<double>(sum) / static_cast<double>(count);
  }
  /// Same contract as Histogram::Percentile: the lower bound of the
  /// bucket holding rank ceil(q*count); 0 when empty.
  uint64_t Percentile(double q) const;
  /// Bucket-wise this += other (aggregation across sinks).
  void MergeFrom(const HistogramSnapshot& other);
};

/// One sink's capture: values parallel to the stats schema tables
/// (SinkCounterFields / SinkGaugeFields / SinkHistogramFields).
struct SinkSnapshot {
  std::vector<uint64_t> counters;
  std::vector<uint64_t> gauges;
  std::vector<HistogramSnapshot> histograms;

  static SinkSnapshot Capture(const StatsSink& sink);

  /// Schema-name lookups (NW_CHECK on an unknown name; tests and
  /// renderers address fields by wire name, never by index).
  uint64_t counter(const char* name) const;
  uint64_t gauge(const char* name) const;
  const HistogramSnapshot& histogram(const char* name) const;

  /// Aggregation: counters sum, gauges max, histograms merge.
  void MergeFrom(const SinkSnapshot& other);
};

/// Per-query attribution capture (one row per bank entry, merged across
/// the registry's tables exactly like the JSON render).
struct QuerySnapshot {
  uint64_t match_docs = 0;
  uint64_t accept_positions = 0;
  uint64_t escalations = 0;
  uint64_t states_compiled = 0;  ///< gauge: kept, not subtracted
  uint64_t states_final = 0;     ///< gauge: kept, not subtracted
};

/// Everything one scrape sees. A StatsSnapshot is either a capture
/// (cumulative values at time t_us) or a delta (interval values over
/// t_us microseconds) — same shape, so interval percentiles fall out of
/// the same HistogramSnapshot::Percentile.
struct StatsSnapshot {
  uint64_t t_us = 0;  ///< capture time; the interval length in a delta
  std::vector<std::string> labels;  ///< registration order
  std::vector<SinkSnapshot> sinks;  ///< parallel to labels
  std::vector<QuerySnapshot> queries;
  uint64_t attr_docs = 0;
  uint64_t attr_positions = 0;
  ProcessSample process;

  /// Cross-sink aggregate (counters sum, gauges max, histograms merge).
  SinkSnapshot Aggregate() const;
};

/// Captures the registry (all sinks, merged attribution, process
/// context) at PulseNowUs(). Safe while the sinks' writers run;
/// registration must be complete.
StatsSnapshot CaptureSnapshot(const StatsRegistry& registry);

/// Interval view between two captures of the same registry: counters
/// and histogram buckets/count/sum subtract (clamped at 0 — a
/// single-writer counter cannot regress, the clamp is defense against a
/// misused pair), gauges and histogram max carry the current value
/// (interval maxima are not recoverable from cumulative cells), process
/// CPU/wall subtract, peak RSS carries. Sinks are matched by label; a
/// label absent from `prev` (registered between captures) deltas against
/// zero.
StatsSnapshot SnapshotDelta(const StatsSnapshot& prev,
                            const StatsSnapshot& cur);

/// In-flight progress cells a serving loop publishes per *document* (not
/// per position — contention stays negligible) so a sampler can read
/// corpus progress mid-run. Multi-writer: shards fetch_add, readers load.
struct PulseProgress {
  std::atomic<uint64_t> total_docs{0};
  std::atomic<uint64_t> cursor{0};  ///< next corpus index to be claimed
  std::atomic<uint64_t> docs_done{0};
  std::atomic<uint64_t> bytes_done{0};
  std::atomic<bool> active{false};

  /// Re-arms for a run over `total` documents (each EvaluateCorpus call
  /// is one run; cumulative totals live in the sinks, not here).
  void Reset(uint64_t total) {
    total_docs.store(total, std::memory_order_relaxed);
    cursor.store(0, std::memory_order_relaxed);
    docs_done.store(0, std::memory_order_relaxed);
    bytes_done.store(0, std::memory_order_relaxed);
    active.store(true, std::memory_order_relaxed);
  }
};

/// One self-describing JSONL time-series record (`{"type":"pulse",...}`):
/// cumulative totals, interval deltas for every schema counter, derived
/// per-second rates, the interval latency histogram's percentiles, the
/// per-sink interval rows, and the process sample. `progress` may be
/// null. Schema documented in docs/OBSERVABILITY.md and validated by
/// tools/check_pulse.py.
std::string RenderPulseRecord(const StatsSnapshot& cur,
                              const StatsSnapshot& delta, uint64_t seq,
                              const PulseProgress* progress);

/// The `{"type":"pulse_start",...}` header record: schema version,
/// interval, and the baseline totals every later delta accumulates onto
/// (sum of deltas + baseline == final totals, exactly).
std::string RenderPulseStart(const StatsSnapshot& baseline,
                             uint64_t interval_ms);

/// Multi-line live terminal frame (--watch): run progress, docs/s and
/// MB/s over the last interval, interval p50/p99, frozen hit rate, one
/// utilization line per shard sink.
std::string RenderWatchFrame(const StatsSnapshot& cur,
                             const StatsSnapshot& delta,
                             const PulseProgress* progress);

/// Background scraper: one thread, one tick every interval_ms, each tick
/// one capture → delta → JSONL append and/or watch re-render. Start()
/// captures the baseline; Stop() (and the destructor) takes one final
/// tick after signalling the thread down, so the last partial interval
/// is never lost and the deltas sum exactly to the end-of-run totals.
class PulseSampler {
 public:
  struct Options {
    uint64_t interval_ms = 500;
    /// JSONL destination (not owned; may be null for watch-only use).
    std::FILE* jsonl = nullptr;
    /// Re-render a live frame each tick (ANSI in-place when the
    /// destination is a terminal, plain appended frames otherwise).
    bool watch = false;
    std::FILE* watch_out = nullptr;  ///< defaults to stderr under watch
    const PulseProgress* progress = nullptr;  ///< optional live hook
  };

  /// `registry` must outlive the sampler and be fully registered before
  /// Start() — registration mutates the sink list the scraper iterates.
  PulseSampler(const StatsRegistry* registry, Options opts);
  ~PulseSampler();

  PulseSampler(const PulseSampler&) = delete;
  PulseSampler& operator=(const PulseSampler&) = delete;

  void Start();
  /// Final tick + join; idempotent. Call after the instrumented work
  /// finishes (e.g. after EvaluateCorpus returns) so the closing delta
  /// is exact.
  void Stop();

  /// Ticks emitted so far (including the final Stop() tick). Read after
  /// Stop() for an exact value.
  uint64_t ticks() const { return ticks_.load(std::memory_order_relaxed); }

 private:
  void Loop();
  void Tick();

  const StatsRegistry* registry_;
  Options opts_;
  StatsSnapshot prev_;
  uint64_t seq_ = 0;
  size_t watch_lines_ = 0;  ///< lines of the previous frame to rewind
  bool watch_tty_ = false;
  std::atomic<uint64_t> ticks_{0};
  std::thread thread_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  bool started_ = false;
};

}  // namespace nw

#endif  // NW_OBS_PULSE_H_
