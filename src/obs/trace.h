// NWStats scoped-span tracer: opt-in per-document span recording as JSON
// lines (one object per line, the `jq`-able "JSONL" shape). Off by
// default everywhere; the nwquery CLI enables it when the NWQUERY_TRACE
// environment variable names a writable file. A null Tracer* makes every
// TraceSpan a no-op behind a branch on a constant pointer, so tracing
// costs nothing unless asked for — the same discipline as the stats
// sinks (obs/stats.h).
//
// Line format (stable field order; documented in docs/OBSERVABILITY.md):
//   {"name":"doc","label":"corpus/a.xml","shard":0,"start_us":12,
//    "dur_us":345,"positions":678,"matched":2}
// `start_us` is relative to the tracer's construction, so spans from all
// shards share one clock and a trace is self-contained.
#ifndef NW_OBS_TRACE_H_
#define NW_OBS_TRACE_H_

#include <cstdint>
#include <cstdio>
#include <chrono>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace nw {

class Tracer {
 public:
  /// Opens `path` for append ("-" means stderr). ok() reports whether
  /// the sink is usable; a failed open leaves a null-object tracer.
  explicit Tracer(const std::string& path);
  ~Tracer();

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Builds a tracer from the environment (default NWQUERY_TRACE), or
  /// null when the variable is unset/empty — the common case, letting
  /// callers hold a plain `Tracer*` that is nullptr when disabled.
  static std::unique_ptr<Tracer> FromEnv(const char* var = "NWQUERY_TRACE");

  bool ok() const { return file_ != nullptr; }

  /// Microseconds since tracer construction (the spans' shared clock).
  uint64_t NowUs() const;

  /// Writes one span line; thread-safe (one mutex-guarded fwrite so
  /// lines from concurrent shards never interleave).
  void WriteSpan(const std::string& name, const std::string& label,
                 uint64_t start_us, uint64_t dur_us,
                 const std::vector<std::pair<std::string, uint64_t>>& fields);

 private:
  std::FILE* file_ = nullptr;
  bool owns_file_ = false;
  std::mutex mu_;
  std::chrono::steady_clock::time_point epoch_;
};

/// RAII span: records the start time at construction and writes the line
/// at destruction. With a null tracer every method is a no-op.
class TraceSpan {
 public:
  TraceSpan(Tracer* tracer, std::string name, std::string label)
      : tracer_(tracer), name_(std::move(name)), label_(std::move(label)) {
    if (tracer_ != nullptr) start_us_ = tracer_->NowUs();
  }
  ~TraceSpan() {
    if (tracer_ != nullptr) {
      tracer_->WriteSpan(name_, label_, start_us_,
                         tracer_->NowUs() - start_us_, fields_);
    }
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  /// Attaches a numeric field to the span line (e.g. positions, shard).
  void Note(const std::string& key, uint64_t value) {
    if (tracer_ != nullptr) fields_.emplace_back(key, value);
  }

 private:
  Tracer* tracer_;
  std::string name_;
  std::string label_;
  uint64_t start_us_ = 0;
  std::vector<std::pair<std::string, uint64_t>> fields_;
};

}  // namespace nw

#endif  // NW_OBS_TRACE_H_
