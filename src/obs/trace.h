// NWStats scoped-span tracer: opt-in per-document span recording. Off by
// default everywhere; the nwquery CLI enables it when the NWQUERY_TRACE
// environment variable names a writable file. A null Tracer* makes every
// TraceSpan a no-op behind a branch on a constant pointer, so tracing
// costs nothing unless asked for — the same discipline as the stats
// sinks (obs/stats.h).
//
// Two wire formats, selected at construction (NWQUERY_TRACE_FORMAT for
// the CLI; see docs/OBSERVABILITY.md):
//
//  * kJsonl (default) — one object per line, the `jq`-able shape:
//      {"name":"doc","label":"corpus/a.xml","shard":0,"start_us":12,
//       "dur_us":345,"positions":678,"matched":2}
//  * kChrome — a single JSON array of Trace Event Format events,
//    loadable in Perfetto / chrome://tracing. Spans become complete
//    ("ph":"X") events with pid 1 and tid = the span's "shard" field
//    (0 when absent), remaining numeric fields under "args"; counter
//    snapshots (WriteCounters) become "ph":"C" events so shard
//    hit/miss/doc totals plot as time series.
//
// `start_us` / "ts" are relative to the tracer's construction, so spans
// from all shards share one clock and a trace is self-contained.
#ifndef NW_OBS_TRACE_H_
#define NW_OBS_TRACE_H_

#include <cstdint>
#include <cstdio>
#include <chrono>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace nw {

struct StatsSink;  // obs/stats.h

/// Wire format of a Tracer's output file.
enum class TraceFormat {
  kJsonl,   ///< one JSON object per line (grep/jq-friendly)
  kChrome,  ///< Chrome Trace Event Format JSON array (Perfetto-loadable)
};

class Tracer {
 public:
  /// Opens `path` ("-" means stderr; jsonl appends, chrome truncates —
  /// an event array must own the whole file). ok() reports whether the
  /// sink is usable; a failed open leaves a null-object tracer.
  explicit Tracer(const std::string& path,
                  TraceFormat format = TraceFormat::kJsonl);
  /// Chrome mode closes the event array; both modes flush and close.
  ~Tracer();

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Builds a tracer from the environment (default NWQUERY_TRACE), or
  /// null when the variable is unset/empty — the common case, letting
  /// callers hold a plain `Tracer*` that is nullptr when disabled.
  /// `format_var` (default NWQUERY_TRACE_FORMAT) selects the wire
  /// format: "chrome" for kChrome, anything else (or unset) for kJsonl.
  static std::unique_ptr<Tracer> FromEnv(
      const char* var = "NWQUERY_TRACE",
      const char* format_var = "NWQUERY_TRACE_FORMAT");

  bool ok() const { return file_ != nullptr; }
  TraceFormat format() const { return format_; }

  /// Microseconds since tracer construction (the spans' shared clock).
  uint64_t NowUs() const;

  /// Writes one span; thread-safe (one mutex-guarded fwrite so events
  /// from concurrent shards never interleave). Chrome mode renders an
  /// "X" event on tid = the value of the "shard" field when present.
  void WriteSpan(const std::string& name, const std::string& label,
                 uint64_t start_us, uint64_t dur_us,
                 const std::vector<std::pair<std::string, uint64_t>>& fields);

  /// Snapshots a shard's headline counters (docs, positions, frozen
  /// hits/misses) as one counter event — a "C" event on tid `shard` in
  /// chrome mode, a {"name":"counters",...} line in jsonl. Thread-safe;
  /// call it from the shard that owns `sink` (single-writer sinks are
  /// only safely readable from their writer thread while serving).
  void WriteCounters(uint64_t shard, const StatsSink& sink);

 private:
  /// Appends one rendered event under mu_, handling the chrome-mode
  /// comma separator between array elements. Caller holds no lock.
  void Emit(const std::string& event);

  std::FILE* file_ = nullptr;
  bool owns_file_ = false;
  TraceFormat format_ = TraceFormat::kJsonl;
  bool first_event_ = true;  ///< chrome-mode comma tracking; under mu_
  std::mutex mu_;
  std::chrono::steady_clock::time_point epoch_;
};

/// RAII span: records the start time at construction and writes the line
/// at destruction. With a null tracer every method is a no-op.
class TraceSpan {
 public:
  TraceSpan(Tracer* tracer, std::string name, std::string label)
      : tracer_(tracer), name_(std::move(name)), label_(std::move(label)) {
    if (tracer_ != nullptr) start_us_ = tracer_->NowUs();
  }
  ~TraceSpan() {
    if (tracer_ != nullptr) {
      tracer_->WriteSpan(name_, label_, start_us_,
                         tracer_->NowUs() - start_us_, fields_);
    }
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  /// Attaches a numeric field to the span line (e.g. positions, shard).
  void Note(const std::string& key, uint64_t value) {
    if (tracer_ != nullptr) fields_.emplace_back(key, value);
  }

 private:
  Tracer* tracer_;
  std::string name_;
  std::string label_;
  uint64_t start_us_ = 0;
  std::vector<std::pair<std::string, uint64_t>> fields_;
};

}  // namespace nw

#endif  // NW_OBS_TRACE_H_
