#include "obs/stats.h"

#include <cinttypes>
#include <cmath>
#include <cstdio>

#include "support/check.h"

namespace nw {

const std::vector<SinkCounterField>& SinkCounterFields() {
  static const std::vector<SinkCounterField> kFields = {
      {"stream_bytes", "document bytes consumed by tokenization",
       &StatsSink::stream_bytes},
      {"stream_tokens", "tagged positions yielded by the tokenizer",
       &StatsSink::stream_tokens},
      {"stream_calls", "call positions (open tags / containers)",
       &StatsSink::stream_calls},
      {"stream_returns", "return positions (close tags / containers)",
       &StatsSink::stream_returns},
      {"stream_internals", "internal positions (text chunks / events)",
       &StatsSink::stream_internals},
      {"stream_docs_xml", "streams tokenized by the XML front end",
       &StatsSink::stream_docs_xml},
      {"stream_docs_json", "streams tokenized by the JSON front end",
       &StatsSink::stream_docs_json},
      {"stream_docs_trace", "streams tokenized by the trace front end",
       &StatsSink::stream_docs_trace},
      {"engine_docs", "documents streamed to completion",
       &StatsSink::engine_docs},
      {"engine_positions", "positions stepped across all documents",
       &StatsSink::engine_positions},
      {"engine_docs_soa", "documents taken on the per-query SoA path",
       &StatsSink::engine_docs_soa},
      {"engine_docs_bank", "documents taken on the shared-bank path",
       &StatsSink::engine_docs_bank},
      {"engine_docs_frozen", "documents taken on the frozen path",
       &StatsSink::engine_docs_frozen},
      {"bank_states", "product states interned (explored)",
       &StatsSink::bank_states},
      {"bank_memo_hits", "steps answered by the memo table",
       &StatsSink::bank_memo_hits},
      {"bank_memo_misses", "steps that ran the K component automata",
       &StatsSink::bank_memo_misses},
      {"frozen_hits", "steps answered lock-free by the snapshot",
       &StatsSink::frozen_hits},
      {"frozen_misses", "steps that took the overflow mutex",
       &StatsSink::frozen_misses},
      {"overflow_steps", "steps serviced by the overflow bank",
       &StatsSink::overflow_steps},
      {"overflow_escalations", "overflow steps stuck in overflow space",
       &StatsSink::overflow_escalations},
      {"overflow_mapbacks", "overflow steps mapped back to frozen",
       &StatsSink::overflow_mapbacks},
      {"shard_docs", "documents this shard pulled off the cursor",
       &StatsSink::shard_docs},
      {"shard_bytes", "bytes of the documents this shard streamed",
       &StatsSink::shard_bytes},
      {"shard_positions", "positions this shard stepped",
       &StatsSink::shard_positions},
      {"shard_busy_us", "time spent streaming documents (us)",
       &StatsSink::shard_busy_us},
      {"shard_wait_us", "worker wall time minus busy time (us)",
       &StatsSink::shard_wait_us},
      {"split_chunks", "chunks SplitTopLevel produced",
       &StatsSink::split_chunks},
      {"daemon_requests", "protocol requests accepted (all ops)",
       &StatsSink::daemon_requests},
      {"daemon_docs", "documents submitted for evaluation",
       &StatsSink::daemon_docs},
      {"daemon_admissions", "queries admitted online",
       &StatsSink::daemon_admissions},
      {"daemon_retirements", "queries retired online",
       &StatsSink::daemon_retirements},
      {"daemon_refreshes", "background epoch re-freezes published",
       &StatsSink::daemon_refreshes},
  };
  return kFields;
}

const std::vector<SinkGaugeField>& SinkGaugeFields() {
  static const std::vector<SinkGaugeField> kFields = {
      {"stream_depth_hwm", "call/return depth high-water mark",
       &StatsSink::stream_depth_hwm},
      {"split_max_chunk_bytes", "largest SplitTopLevel chunk (skew witness)",
       &StatsSink::split_max_chunk_bytes},
      {"daemon_epoch", "current serving epoch id",
       &StatsSink::daemon_epoch},
  };
  return kFields;
}

const std::vector<SinkHistogramField>& SinkHistogramFields() {
  static const std::vector<SinkHistogramField> kFields = {
      {"doc_latency_us", "per-document end-to-end latency (us)",
       &StatsSink::doc_latency_us},
      {"split_chunk_bytes", "SplitTopLevel chunk size distribution",
       &StatsSink::split_chunk_bytes},
      {"admission_latency_us", "ADMIT wall time, parse to epoch live (us)",
       &StatsSink::admission_latency_us},
  };
  return kFields;
}

void StatsSink::MergeFrom(const StatsSink& other) {
  for (const SinkCounterField& f : SinkCounterFields()) {
    (this->*f.member).MergeFrom(other.*f.member);
  }
  for (const SinkGaugeField& f : SinkGaugeFields()) {
    (this->*f.member).MergeMaxFrom(other.*f.member);
  }
  for (const SinkHistogramField& f : SinkHistogramFields()) {
    (this->*f.member).MergeFrom(other.*f.member);
  }
}

void StatsRegistry::Register(std::string label, const StatsSink* sink) {
  sinks_.emplace_back(std::move(label), sink);
}

void StatsRegistry::SetMeta(const std::string& key, std::string value) {
  for (Meta& m : meta_) {
    if (m.key == key) {
      m.str = std::move(value);
      m.is_num = false;
      return;
    }
  }
  meta_.push_back({key, std::move(value), 0, false});
}

void StatsRegistry::SetMetaNum(const std::string& key, uint64_t value) {
  for (Meta& m : meta_) {
    if (m.key == key) {
      m.num = value;
      m.is_num = true;
      return;
    }
  }
  meta_.push_back({key, {}, value, true});
}

void StatsRegistry::RegisterAttribution(const QueryAttribution* attr) {
  NW_CHECK_MSG(attr != nullptr, "RegisterAttribution() needs a table");
  NW_CHECK_MSG(attrs_.empty() ||
                   attrs_.front()->num_queries() == attr->num_queries(),
               "attribution tables disagree on the bank size (%zu vs %zu)",
               attrs_.front()->num_queries(), attr->num_queries());
  attrs_.push_back(attr);
}

void StatsRegistry::SetQueryLabels(std::vector<std::string> labels) {
  query_labels_ = std::move(labels);
}

void StatsRegistry::SetTimeline(const CompileTimeline* timeline) {
  timeline_ = timeline;
}

void StatsRegistry::Aggregate(StatsSink* out) const {
  for (const auto& [label, sink] : sinks_) out->MergeFrom(*sink);
}

void AppendJsonString(std::string* out, const std::string& s) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\t':
        *out += "\\t";
        break;
      case '\r':
        *out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

void AppendJsonDouble(std::string* out, double v) {
  if (!std::isfinite(v)) {
    *out += "null";
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.4f", v);
  *out += buf;
}

namespace {

void AppendNum(std::string* out, uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  *out += buf;
}

/// `"key":value` with a leading comma when not first in its object.
void Field(std::string* out, bool* first, const char* key, uint64_t v) {
  if (!*first) out->push_back(',');
  *first = false;
  AppendJsonString(out, key);
  out->push_back(':');
  AppendNum(out, v);
}

/// Ratio keys (`utilization`, `hit_rate`, `mean`, the pulse `rate` keys)
/// all land here; the shared guard in AppendJsonDouble renders `null`
/// for NaN/Inf so a division can never poison the JSON.
void FieldDbl(std::string* out, bool* first, const char* key, double v) {
  if (!*first) out->push_back(',');
  *first = false;
  AppendJsonString(out, key);
  out->push_back(':');
  AppendJsonDouble(out, v);
}

void AppendHistogram(std::string* out, const Histogram& h) {
  bool first = true;
  out->push_back('{');
  Field(out, &first, "count", h.count());
  Field(out, &first, "sum", h.sum());
  Field(out, &first, "max", h.max());
  FieldDbl(out, &first, "mean", h.mean());
  Field(out, &first, "p50", h.Percentile(0.50));
  Field(out, &first, "p90", h.Percentile(0.90));
  Field(out, &first, "p99", h.Percentile(0.99));
  out->push_back('}');
}

double Ratio(uint64_t num, uint64_t den) {
  return den == 0 ? 0.0 : static_cast<double>(num) / static_cast<double>(den);
}

/// Did any step take the frozen path at all? With zero traffic there is
/// no hit rate to report — the render says null/n-a instead of a
/// misleading 1.0 (a run that never served frozen is not "100% hits").
bool HasFrozenTraffic(const StatsSink& s) {
  return s.frozen_hits.value() + s.frozen_misses.value() > 0;
}

/// Fraction of frozen-path steps served lock-free. Only meaningful when
/// HasFrozenTraffic; callers gate on that.
double HitRate(const StatsSink& s) {
  return Ratio(s.frozen_hits.value(),
               s.frozen_hits.value() + s.frozen_misses.value());
}

/// busy / (busy + wait): the shard utilization the skew view reports.
double Utilization(const StatsSink& s) {
  uint64_t total = s.shard_busy_us.value() + s.shard_wait_us.value();
  return total == 0 ? 0.0 : Ratio(s.shard_busy_us.value(), total);
}

}  // namespace

std::string StatsRegistry::RenderJson() const {
  StatsSink agg;
  Aggregate(&agg);
  std::string out;
  out.push_back('{');
  // meta
  AppendJsonString(&out, "meta");
  out += ":{";
  bool first = true;
  for (const Meta& m : meta_) {
    if (!first) out.push_back(',');
    first = false;
    AppendJsonString(&out, m.key);
    out.push_back(':');
    if (m.is_num) {
      AppendNum(&out, m.num);
    } else {
      AppendJsonString(&out, m.str);
    }
  }
  out += "},";
  // stream
  AppendJsonString(&out, "stream");
  out += ":{";
  first = true;
  Field(&out, &first, "bytes", agg.stream_bytes.value());
  Field(&out, &first, "tokens", agg.stream_tokens.value());
  Field(&out, &first, "calls", agg.stream_calls.value());
  Field(&out, &first, "returns", agg.stream_returns.value());
  Field(&out, &first, "internals", agg.stream_internals.value());
  Field(&out, &first, "depth_hwm", agg.stream_depth_hwm.value());
  out += ",\"format\":{";
  bool ff = true;
  Field(&out, &ff, "xml", agg.stream_docs_xml.value());
  Field(&out, &ff, "json", agg.stream_docs_json.value());
  Field(&out, &ff, "trace", agg.stream_docs_trace.value());
  out += "}},";
  // engine
  AppendJsonString(&out, "engine");
  out += ":{";
  first = true;
  Field(&out, &first, "documents", agg.engine_docs.value());
  Field(&out, &first, "positions", agg.engine_positions.value());
  Field(&out, &first, "docs_soa", agg.engine_docs_soa.value());
  Field(&out, &first, "docs_bank", agg.engine_docs_bank.value());
  Field(&out, &first, "docs_frozen", agg.engine_docs_frozen.value());
  if (!first) out.push_back(',');
  AppendJsonString(&out, "doc_latency_us");
  out.push_back(':');
  AppendHistogram(&out, agg.doc_latency_us);
  out += "},";
  // queries (NWProf per-query attribution; empty table when none was
  // attached, so the key set is stable)
  const size_t k = attrs_.empty() ? 0 : attrs_.front()->num_queries();
  QueryAttribution attr_agg(k);
  for (const QueryAttribution* a : attrs_) attr_agg.MergeFrom(*a);
  AppendJsonString(&out, "queries");
  out += ":{";
  first = true;
  Field(&out, &first, "docs", attr_agg.docs.value());
  Field(&out, &first, "positions", attr_agg.positions.value());
  out += ",\"per_query\":[";
  for (size_t i = 0; i < k; ++i) {
    if (i > 0) out.push_back(',');
    const QueryProfile& q = attr_agg.query(i);
    out.push_back('{');
    bool f = true;
    Field(&out, &f, "id", i);
    if (i < query_labels_.size()) {
      out += ",\"text\":";
      AppendJsonString(&out, query_labels_[i]);
    }
    Field(&out, &f, "states_compiled", q.states_compiled.value());
    Field(&out, &f, "states_final", q.states_final.value());
    Field(&out, &f, "match_docs", q.match_docs.value());
    Field(&out, &f, "accept_positions", q.accept_positions.value());
    Field(&out, &f, "escalations", q.escalations.value());
    out.push_back('}');
  }
  out += "]},";
  // compile (NWProf phase timeline; empty when none was attached)
  AppendJsonString(&out, "compile");
  out += ":{";
  first = true;
  Field(&out, &first, "total_us",
        timeline_ == nullptr ? 0 : timeline_->total_us());
  out += ",\"phases\":[";
  if (timeline_ != nullptr) {
    const std::vector<CompilePhase>& phases = timeline_->phases();
    for (size_t i = 0; i < phases.size(); ++i) {
      if (i > 0) out.push_back(',');
      out += "{\"name\":";
      AppendJsonString(&out, phases[i].name);
      bool f = false;
      Field(&out, &f, "us", phases[i].us);
      Field(&out, &f, "states_before", phases[i].states_before);
      Field(&out, &f, "states_after", phases[i].states_after);
      out.push_back('}');
    }
  }
  out += "]},";
  // bank
  AppendJsonString(&out, "bank");
  out += ":{";
  first = true;
  Field(&out, &first, "states_interned", agg.bank_states.value());
  Field(&out, &first, "memo_hits", agg.bank_memo_hits.value());
  Field(&out, &first, "memo_misses", agg.bank_memo_misses.value());
  out += "},";
  // frozen
  AppendJsonString(&out, "frozen");
  out += ":{";
  first = true;
  Field(&out, &first, "hits", agg.frozen_hits.value());
  Field(&out, &first, "misses", agg.frozen_misses.value());
  if (HasFrozenTraffic(agg)) {
    FieldDbl(&out, &first, "hit_rate", HitRate(agg));
  } else {
    out += ",\"hit_rate\":null";
  }
  Field(&out, &first, "overflow_steps", agg.overflow_steps.value());
  Field(&out, &first, "overflow_escalations",
        agg.overflow_escalations.value());
  Field(&out, &first, "overflow_mapbacks", agg.overflow_mapbacks.value());
  out += "},";
  // daemon (all-zero outside nwqueryd, so the key set is stable)
  AppendJsonString(&out, "daemon");
  out += ":{";
  first = true;
  Field(&out, &first, "requests", agg.daemon_requests.value());
  Field(&out, &first, "documents", agg.daemon_docs.value());
  Field(&out, &first, "admissions", agg.daemon_admissions.value());
  Field(&out, &first, "retirements", agg.daemon_retirements.value());
  Field(&out, &first, "refreshes", agg.daemon_refreshes.value());
  Field(&out, &first, "epoch", agg.daemon_epoch.value());
  if (!first) out.push_back(',');
  AppendJsonString(&out, "admission_latency_us");
  out.push_back(':');
  AppendHistogram(&out, agg.admission_latency_us);
  out += "},";
  // serve
  AppendJsonString(&out, "serve");
  out += ":{";
  first = true;
  Field(&out, &first, "split_chunks", agg.split_chunks.value());
  Field(&out, &first, "split_max_chunk_bytes",
        agg.split_max_chunk_bytes.value());
  if (!first) out.push_back(',');
  AppendJsonString(&out, "split_chunk_bytes");
  out.push_back(':');
  AppendHistogram(&out, agg.split_chunk_bytes);
  out += ",";
  AppendJsonString(&out, "shards");
  out += ":[";
  for (size_t i = 0; i < sinks_.size(); ++i) {
    if (i > 0) out.push_back(',');
    const auto& [label, sink] = sinks_[i];
    out.push_back('{');
    AppendJsonString(&out, "label");
    out.push_back(':');
    AppendJsonString(&out, label);
    bool f = false;  // label was the first field
    Field(&out, &f, "docs", sink->shard_docs.value());
    Field(&out, &f, "bytes", sink->shard_bytes.value());
    Field(&out, &f, "positions", sink->shard_positions.value());
    Field(&out, &f, "busy_us", sink->shard_busy_us.value());
    Field(&out, &f, "wait_us", sink->shard_wait_us.value());
    FieldDbl(&out, &f, "utilization", Utilization(*sink));
    Field(&out, &f, "frozen_hits", sink->frozen_hits.value());
    Field(&out, &f, "frozen_misses", sink->frozen_misses.value());
    Field(&out, &f, "depth_hwm", sink->stream_depth_hwm.value());
    out.push_back('}');
  }
  out += "]}}";
  return out;
}

std::string StatsRegistry::RenderText() const {
  StatsSink agg;
  Aggregate(&agg);
  std::string out;
  char buf[512];
  for (const Meta& m : meta_) {
    if (m.is_num) {
      std::snprintf(buf, sizeof(buf), "meta     %s=%" PRIu64 "\n",
                    m.key.c_str(), m.num);
    } else {
      std::snprintf(buf, sizeof(buf), "meta     %s=%s\n", m.key.c_str(),
                    m.str.c_str());
    }
    out += buf;
  }
  std::snprintf(buf, sizeof(buf),
                "stream   bytes=%" PRIu64 " tokens=%" PRIu64 " calls=%" PRIu64
                " returns=%" PRIu64 " internals=%" PRIu64
                " depth_hwm=%" PRIu64 " docs_xml=%" PRIu64
                " docs_json=%" PRIu64 " docs_trace=%" PRIu64 "\n",
                agg.stream_bytes.value(), agg.stream_tokens.value(),
                agg.stream_calls.value(), agg.stream_returns.value(),
                agg.stream_internals.value(), agg.stream_depth_hwm.value(),
                agg.stream_docs_xml.value(), agg.stream_docs_json.value(),
                agg.stream_docs_trace.value());
  out += buf;
  std::snprintf(buf, sizeof(buf),
                "engine   documents=%" PRIu64 " positions=%" PRIu64
                " docs_soa=%" PRIu64 " docs_bank=%" PRIu64
                " docs_frozen=%" PRIu64 "\n",
                agg.engine_docs.value(), agg.engine_positions.value(),
                agg.engine_docs_soa.value(), agg.engine_docs_bank.value(),
                agg.engine_docs_frozen.value());
  out += buf;
  const Histogram& h = agg.doc_latency_us;
  std::snprintf(buf, sizeof(buf),
                "latency  count=%" PRIu64 " mean_us=%.1f p50_us=%" PRIu64
                " p90_us=%" PRIu64 " p99_us=%" PRIu64 " max_us=%" PRIu64 "\n",
                h.count(), h.mean(), h.Percentile(0.50), h.Percentile(0.90),
                h.Percentile(0.99), h.max());
  out += buf;
  std::snprintf(buf, sizeof(buf),
                "bank     states_interned=%" PRIu64 " memo_hits=%" PRIu64
                " memo_misses=%" PRIu64 "\n",
                agg.bank_states.value(), agg.bank_memo_hits.value(),
                agg.bank_memo_misses.value());
  out += buf;
  char rate[16] = "n/a";
  if (HasFrozenTraffic(agg)) {
    std::snprintf(rate, sizeof(rate), "%.4f", HitRate(agg));
  }
  std::snprintf(buf, sizeof(buf),
                "frozen   hits=%" PRIu64 " misses=%" PRIu64
                " hit_rate=%s overflow_steps=%" PRIu64
                " escalations=%" PRIu64 " mapbacks=%" PRIu64 "\n",
                agg.frozen_hits.value(), agg.frozen_misses.value(), rate,
                agg.overflow_steps.value(),
                agg.overflow_escalations.value(),
                agg.overflow_mapbacks.value());
  out += buf;
  if (agg.daemon_requests.value() > 0) {
    std::snprintf(buf, sizeof(buf),
                  "daemon   requests=%" PRIu64 " documents=%" PRIu64
                  " admissions=%" PRIu64 " retirements=%" PRIu64
                  " refreshes=%" PRIu64 " epoch=%" PRIu64
                  " admit_p99_us=%" PRIu64 "\n",
                  agg.daemon_requests.value(), agg.daemon_docs.value(),
                  agg.daemon_admissions.value(),
                  agg.daemon_retirements.value(),
                  agg.daemon_refreshes.value(), agg.daemon_epoch.value(),
                  agg.admission_latency_us.Percentile(0.99));
    out += buf;
  }
  if (!attrs_.empty()) {
    const size_t k = attrs_.front()->num_queries();
    QueryAttribution attr_agg(k);
    for (const QueryAttribution* a : attrs_) attr_agg.MergeFrom(*a);
    for (size_t i = 0; i < k; ++i) {
      const QueryProfile& q = attr_agg.query(i);
      std::snprintf(buf, sizeof(buf),
                    "query    id=%zu states=%" PRIu64 "->%" PRIu64
                    " match_docs=%" PRIu64 " accept_positions=%" PRIu64
                    " escalations=%" PRIu64 "%s%s\n",
                    i, q.states_compiled.value(), q.states_final.value(),
                    q.match_docs.value(), q.accept_positions.value(),
                    q.escalations.value(),
                    i < query_labels_.size() ? " text=" : "",
                    i < query_labels_.size() ? query_labels_[i].c_str() : "");
      out += buf;
    }
  }
  if (timeline_ != nullptr) {
    for (const CompilePhase& p : timeline_->phases()) {
      std::snprintf(buf, sizeof(buf),
                    "compile  phase=%s us=%" PRIu64 " states=%" PRIu64
                    "->%" PRIu64 "\n",
                    p.name.c_str(), p.us, p.states_before, p.states_after);
      out += buf;
    }
  }
  if (agg.split_chunks.value() > 0) {
    std::snprintf(buf, sizeof(buf),
                  "split    chunks=%" PRIu64 " max_chunk_bytes=%" PRIu64
                  " p50_bytes=%" PRIu64 " p99_bytes=%" PRIu64 "\n",
                  agg.split_chunks.value(), agg.split_max_chunk_bytes.value(),
                  agg.split_chunk_bytes.Percentile(0.50),
                  agg.split_chunk_bytes.Percentile(0.99));
    out += buf;
  }
  for (const auto& [label, sink] : sinks_) {
    std::snprintf(buf, sizeof(buf),
                  "%-8s docs=%" PRIu64 " bytes=%" PRIu64 " positions=%" PRIu64
                  " busy_us=%" PRIu64 " wait_us=%" PRIu64
                  " utilization=%.4f\n",
                  label.c_str(), sink->shard_docs.value(),
                  sink->shard_bytes.value(), sink->shard_positions.value(),
                  sink->shard_busy_us.value(), sink->shard_wait_us.value(),
                  Utilization(*sink));
    out += buf;
  }
  return out;
}

}  // namespace nw
