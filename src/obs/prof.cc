#include "obs/prof.h"

#include "support/check.h"

namespace nw {

void QueryAttribution::MergeFrom(const QueryAttribution& other) {
  NW_CHECK_MSG(other.k_ == k_,
               "cannot merge a %zu-query attribution table into a "
               "%zu-query one; all shards must profile the same bank",
               other.k_, k_);
  docs.MergeFrom(other.docs);
  positions.MergeFrom(other.positions);
  for (size_t i = 0; i < k_; ++i) {
    cells_[i].match_docs.MergeFrom(other.cells_[i].match_docs);
    cells_[i].accept_positions.MergeFrom(other.cells_[i].accept_positions);
    cells_[i].escalations.MergeFrom(other.cells_[i].escalations);
    cells_[i].states_compiled.MergeMaxFrom(other.cells_[i].states_compiled);
    cells_[i].states_final.MergeMaxFrom(other.cells_[i].states_final);
  }
}

}  // namespace nw
