// NWProf: per-query cost attribution and compile-phase timelines on top
// of the NWStats substrate (obs/metrics.h, obs/stats.h).
//
// NWStats (PR 6) observes the AGGREGATE pass — the engine spent N µs over
// M positions — but the paper's pitch is that ONE pass answers K queries
// at once, so the natural follow-up questions are per-query: which of the
// K queries matched how often, how big is each query's automaton before
// and after the optimizer, which queries keep escalating into overflow
// space? And per-phase: where did compile time go (parse → rewrite →
// lower → minimize → bank-build → explore → freeze)? This header holds
// the two answer tables.
//
// Threading model mirrors StatsSink: a QueryAttribution is SINGLE WRITER
// (one per shard / single-stream engine; all increments are relaxed
// single-writer adds) and the registry merges tables from all shards at
// render time on the reader's thread. A CompileTimeline is plain
// non-atomic data — compilation is single-threaded and the timeline is
// only read after the pipeline returns.
#ifndef NW_OBS_PROF_H_
#define NW_OBS_PROF_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "obs/metrics.h"

namespace nw {

/// Everything attributed to ONE query of the bank. Counters follow the
/// single-writer discipline of obs/metrics.h; the gauges hold the
/// optimizer's per-query state counts (written once at compile time).
struct QueryProfile {
  /// Documents whose final accept set contains this query — the
  /// per-query share of engine.documents.
  Counter match_docs;
  /// Accept-set membership observations: one per stream position at
  /// which the query was observed accepting, plus the pre-input check
  /// (a query may accept the empty prefix). Identical across the SoA,
  /// shared-bank, and frozen execution paths — the differential tests
  /// pin this. Requires the engine's match tracking; 0 otherwise.
  Counter accept_positions;
  /// Overflow escalations (steps whose result stayed in overflow space)
  /// attributed to this query: the query's run was still live in the
  /// escalated state, so IT is among the queries keeping the shard off
  /// the lock-free path.
  Counter escalations;
  /// Automaton states straight out of lowering (before minimization).
  Gauge states_compiled;
  /// Automaton states after minimization (== states_compiled when the
  /// minimizer did not run).
  Gauge states_final;
};

/// The per-query attribution table one writer (shard or single-stream
/// engine) fills: K QueryProfile cells plus table-level totals that are
/// pinned to the engine's aggregate counters (attribution.docs ==
/// engine_docs of the same sink, ditto positions), so the `queries`
/// section of the stats render can never drift from the `engine` section.
/// Cells live in a fixed-size array (metrics are atomics, hence neither
/// copyable nor movable) sized at construction to the bank's K.
class QueryAttribution {
 public:
  explicit QueryAttribution(size_t num_queries)
      : k_(num_queries), cells_(new QueryProfile[num_queries]()) {}

  size_t num_queries() const { return k_; }
  QueryProfile& query(size_t i) { return cells_[i]; }
  const QueryProfile& query(size_t i) const { return cells_[i]; }

  /// Table totals, incremented alongside the engine's document/position
  /// counters (see QueryEngine::set_attribution).
  Counter docs;
  Counter positions;

  /// Reader-side aggregation across shards: counters sum, gauges max
  /// (every shard compiles the same bank, so the maxima agree). Tables
  /// must be the same size.
  void MergeFrom(const QueryAttribution& other);

 private:
  size_t k_;
  std::unique_ptr<QueryProfile[]> cells_;
};

/// One compile-pipeline phase: its wall time and the product/automaton
/// state count it started from and ended at (0/0 for phases without a
/// natural state count, e.g. parse).
struct CompilePhase {
  std::string name;
  uint64_t us = 0;
  uint64_t states_before = 0;
  uint64_t states_after = 0;
};

/// Ordered record of the compile pipeline's phases: parse → rewrite →
/// lower → minimize → bank_build → explore → freeze (each present only
/// when its pass ran). Filled single-threaded by the CLI and the
/// optimizer pipeline; rendered by the stats registry as the `compile`
/// section so "is minimization dominating compile time?" is a one-flag
/// question (--stats).
class CompileTimeline {
 public:
  void Record(std::string name, uint64_t us, uint64_t states_before,
              uint64_t states_after) {
    phases_.push_back(
        {std::move(name), us, states_before, states_after});
  }

  const std::vector<CompilePhase>& phases() const { return phases_; }

  /// Sum of the recorded phases' µs (the pipeline's phases are disjoint,
  /// so this is total attributed compile time).
  uint64_t total_us() const {
    uint64_t total = 0;
    for (const CompilePhase& p : phases_) total += p.us;
    return total;
  }

 private:
  std::vector<CompilePhase> phases_;
};

}  // namespace nw

#endif  // NW_OBS_PROF_H_
