// NWStats: the per-shard stats sink and the registry that renders it —
// the observability substrate under the four-layer stack (nw/nwa → query
// → opt → serve). Every instrumented layer takes an optional StatsSink*
// and reports through it; nullptr (the default everywhere) disables the
// instrumentation behind a branch on a pointer that is constant for the
// whole stream, so the disabled path costs one predicted-not-taken branch
// and the differential tests can pin byte-identical query output with
// stats on and off.
//
// Deployment shape: ONE StatsSink per shard (or per single-stream
// engine). All hot-path increments are single-writer plain adds
// (obs/metrics.h); the StatsRegistry aggregates across sinks at render
// time on the reader's thread. Rendering is stable: fixed key order in
// both the human text and the JSON, so snapshots diff cleanly across
// runs and the CI smoke test can validate required keys.
#ifndef NW_OBS_STATS_H_
#define NW_OBS_STATS_H_

#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.h"
#include "obs/prof.h"

namespace nw {

/// Every metric one shard (or one single-stream engine) reports, across
/// all four layers. Fields are grouped by the layer that writes them; a
/// layer never touches another layer's group, so one sink can be handed
/// to the tokenizer, the engine, the banks, and the shard loop at once.
struct StatsSink {
  // -- stream layer: the TokenStream front ends (XmlTokenStream,
  // JsonTokenStream, TraceTokenStream), flushed once per stream by the
  // shared StreamTally (stream/token_stream.h). --
  Counter stream_bytes;      ///< document bytes consumed by tokenization
  Counter stream_tokens;     ///< tagged positions yielded
  Counter stream_calls;      ///< call positions (open tags / containers)
  Counter stream_returns;    ///< return positions (close tags / containers)
  Counter stream_internals;  ///< internal positions (text chunks / events)
  Gauge stream_depth_hwm;    ///< call/return depth high-water mark
  Counter stream_docs_xml;   ///< streams tokenized by the XML front end
  Counter stream_docs_json;  ///< streams tokenized by the JSON front end
  Counter stream_docs_trace; ///< streams tokenized by the trace front end

  // -- query layer: QueryEngine, per completed RunAll document. --
  Counter engine_docs;         ///< documents streamed to completion
  Counter engine_positions;    ///< positions stepped across all documents
  Counter engine_docs_soa;     ///< documents taken on the per-query SoA path
  Counter engine_docs_bank;    ///< documents taken on the shared-bank path
  Counter engine_docs_frozen;  ///< documents taken on the frozen path
  Histogram doc_latency_us;    ///< per-document end-to-end latency (µs)

  // -- opt layer: SharedBank product exploration. --
  Counter bank_states;       ///< product states interned (explored)
  Counter bank_memo_hits;    ///< steps answered by the memo table
  Counter bank_memo_misses;  ///< steps that ran the K component automata

  // -- serve layer: frozen-path engines, OverflowBank, ShardedEvaluator.
  Counter frozen_hits;    ///< steps answered lock-free by the snapshot
  Counter frozen_misses;  ///< steps that took the overflow mutex
  Counter overflow_steps;          ///< steps serviced by the overflow bank
  Counter overflow_escalations;    ///< overflow steps stuck in overflow space
  Counter overflow_mapbacks;       ///< overflow steps mapped back to frozen
  Counter shard_docs;       ///< documents this shard pulled off the cursor
  Counter shard_bytes;      ///< bytes of those documents (skew witness)
  Counter shard_positions;  ///< positions this shard stepped
  Counter shard_busy_us;    ///< time spent streaming documents (µs)
  Counter shard_wait_us;    ///< worker wall time minus busy time (µs)
  Counter split_chunks;           ///< chunks SplitTopLevel produced
  Gauge split_max_chunk_bytes;    ///< largest chunk (a giant record = skew)
  Histogram split_chunk_bytes;    ///< chunk size distribution

  // -- daemon layer: NWDaemon control-plane (src/daemon/daemon.h), one
  // sink for the whole process (control ops serialize under the daemon's
  // admission mutex, which keeps the writes single-writer). --
  Counter daemon_requests;     ///< protocol requests accepted (all ops)
  Counter daemon_docs;         ///< documents submitted for evaluation
  Counter daemon_admissions;   ///< queries admitted online
  Counter daemon_retirements;  ///< queries retired online
  Counter daemon_refreshes;    ///< background epoch re-freezes published
  Gauge daemon_epoch;          ///< current serving epoch id
  Histogram admission_latency_us;  ///< ADMIT wall time, parse → epoch live

  /// Reader-side aggregation: counters sum, gauges max, histograms merge.
  void MergeFrom(const StatsSink& other);
};

/// Field schema over StatsSink: one entry per metric, with the stable
/// wire name (the JSON/Prometheus identity) and a one-line help string.
/// MergeFrom, the NWPulse snapshot engine (obs/pulse.h), and the
/// Prometheus renderer all iterate these tables, so adding a field to
/// StatsSink means adding exactly one schema row — the three consumers
/// cannot drift from the struct or from each other.
struct SinkCounterField {
  const char* name;
  const char* help;
  Counter StatsSink::*member;
};
struct SinkGaugeField {
  const char* name;
  const char* help;
  Gauge StatsSink::*member;
};
struct SinkHistogramField {
  const char* name;
  const char* help;
  Histogram StatsSink::*member;
};
const std::vector<SinkCounterField>& SinkCounterFields();
const std::vector<SinkGaugeField>& SinkGaugeFields();
const std::vector<SinkHistogramField>& SinkHistogramFields();

/// Labelled collection of sinks plus free-form metadata, rendered as
/// aligned human text or one stable JSON object. The registry does not
/// own the sinks; they must outlive it (in practice: sinks live in the
/// evaluator/CLI frame, the registry renders at exit).
class StatsRegistry {
 public:
  /// Registers a sink under `label` (e.g. "main", "shard/3"). Render
  /// order is registration order.
  void Register(std::string label, const StatsSink* sink);

  /// Metadata rendered under the "meta" key, in insertion order
  /// (strings and numbers kept distinct so the JSON types are right).
  void SetMeta(const std::string& key, std::string value);
  void SetMetaNum(const std::string& key, uint64_t value);

  /// Registers an NWProf per-query attribution table (obs/prof.h); the
  /// render merges all registered tables (one per shard) into the
  /// `queries` section. Like sinks, tables are held by pointer and must
  /// outlive the registry's renders; all tables must profile the same
  /// bank (same K).
  void RegisterAttribution(const QueryAttribution* attr);

  /// Human-readable query texts, in query-id order; rendered as the
  /// per-query `text` field when set (ids alone otherwise).
  void SetQueryLabels(std::vector<std::string> labels);

  /// Attaches the compile-phase timeline (obs/prof.h), rendered as the
  /// `compile` section. Must outlive the registry's renders.
  void SetTimeline(const CompileTimeline* timeline);

  const std::vector<const QueryAttribution*>& attributions() const {
    return attrs_;
  }

  size_t num_sinks() const { return sinks_.size(); }
  const std::vector<std::pair<std::string, const StatsSink*>>& sinks() const {
    return sinks_;
  }

  /// Sums every registered sink into `*out` (which the caller provides
  /// zeroed; a default-constructed StatsSink is).
  void Aggregate(StatsSink* out) const;

  /// Human-readable multi-line dump: aggregate per layer, then one line
  /// per sink for the shard-skew view.
  std::string RenderText() const;

  /// One JSON object with fixed key order:
  ///   {"meta":{...},"stream":{...},"engine":{...},"queries":{...},
  ///    "compile":{...},"bank":{...},"frozen":{...},"daemon":{...},
  ///    "serve":{...,"shards":[...]}}
  /// documented key-by-key in docs/OBSERVABILITY.md. The queries and
  /// compile sections render empty ({"docs":0,...,"per_query":[]} /
  /// {"total_us":0,"phases":[]}) when no attribution tables or timeline
  /// were attached, so the key set is stable either way.
  std::string RenderJson() const;

  /// Prometheus/OpenMetrics text exposition: every schema metric as one
  /// family (# HELP / # TYPE, then one series per registered sink with a
  /// sink="label" label), histograms as cumulative _bucket{le=...}/_sum/
  /// _count over the BucketLowerBound boundaries, attribution tables as
  /// per-query series (query="id"), plus nw_info/nw_meta for the metadata
  /// and nw_process_* machine context. Implemented by the NWPulse layer
  /// (obs/pulse.cc); name/label scheme in docs/OBSERVABILITY.md.
  std::string RenderProm() const;

 private:
  struct Meta {
    std::string key;
    std::string str;
    uint64_t num = 0;
    bool is_num = false;
  };
  std::vector<std::pair<std::string, const StatsSink*>> sinks_;
  std::vector<Meta> meta_;
  std::vector<const QueryAttribution*> attrs_;
  std::vector<std::string> query_labels_;
  const CompileTimeline* timeline_ = nullptr;
};

/// Appends `s` to `*out` as a JSON string literal (quotes + escapes).
void AppendJsonString(std::string* out, const std::string& s);

/// Appends `v` with 4 decimals — or `null` when `v` is NaN or ±Inf,
/// which are not JSON and must never reach a rendered report. Every
/// double the stats/pulse renderers emit goes through this.
void AppendJsonDouble(std::string* out, double v);

}  // namespace nw

#endif  // NW_OBS_STATS_H_
