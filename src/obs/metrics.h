// NWStats metric primitives: the monotonic counters, gauges, and
// log-linear-bucket latency histograms every layer of the stack reports
// through (obs/stats.h holds the per-layer sink struct and the registry
// that renders them).
//
// Threading model — SINGLE WRITER, any readers. Each metric instance is
// owned by exactly one writer thread (the serving layer keeps one
// StatsSink per shard precisely so this holds); increments are relaxed
// atomic load+store pairs, which compile to the same plain add a bare
// uint64_t would cost — no lock prefix, no fence — while staying
// TSan-clean under a concurrent reader (a daemon scraping stats while
// the shard serves). Cross-shard totals are computed by the READER at
// render time via the Merge methods; after a thread join they are exact,
// during a run they are a consistent-enough snapshot. Two writers on one
// instance would lose increments — that is a deployment bug, not a data
// race, and the per-shard sink design exists to rule it out.
#ifndef NW_OBS_METRICS_H_
#define NW_OBS_METRICS_H_

#include <atomic>
#include <cstdint>

namespace nw {

/// Monotonically increasing event counter.
class Counter {
 public:
  /// Single-writer increment (plain add; relaxed, never a RMW).
  void Inc(uint64_t n = 1) {
    v_.store(v_.load(std::memory_order_relaxed) + n,
             std::memory_order_relaxed);
  }
  void Add(uint64_t n) { Inc(n); }
  uint64_t value() const { return v_.load(std::memory_order_relaxed); }
  /// Reader-side aggregation: this += other.
  void MergeFrom(const Counter& other) { Inc(other.value()); }

 private:
  std::atomic<uint64_t> v_{0};
};

/// Last-value / high-water-mark gauge. Cross-shard aggregation takes the
/// max (the natural meaning for the depth and size high-water marks this
/// library gauges; a sum would double-count).
class Gauge {
 public:
  void Set(uint64_t v) { v_.store(v, std::memory_order_relaxed); }
  /// Raises the gauge to `v` if above the current value (single writer,
  /// so load-compare-store cannot lose a concurrent raise).
  void SetMax(uint64_t v) {
    if (v > value()) Set(v);
  }
  uint64_t value() const { return v_.load(std::memory_order_relaxed); }
  void MergeMaxFrom(const Gauge& other) { SetMax(other.value()); }

 private:
  std::atomic<uint64_t> v_{0};
};

/// Log-linear-bucket histogram over uint64 samples (latencies in
/// microseconds, sizes in bytes): each power-of-two octave is split into
/// kSub linear sub-buckets, so any recorded value lands in a bucket whose
/// lower bound is within 1/kSub (6.25%) of it — HDR-style fixed relative
/// error with a fixed 7.6 KiB footprint and O(1) Record. Percentile
/// extraction returns the lower bound of the bucket holding the requested
/// rank, so p50/p90/p99 carry the same relative-error bound (the oracle
/// tests in tests/obs_test.cc pin this against a sorted vector).
class Histogram {
 public:
  /// Linear sub-buckets per octave = 2^kSubBits.
  static constexpr uint32_t kSubBits = 4;
  static constexpr uint32_t kSub = 1u << kSubBits;
  /// Values < kSub get exact unit buckets; above, one block of kSub
  /// sub-buckets per octave up to 2^63.
  static constexpr uint32_t kBuckets = (64 - kSubBits + 1) * kSub;

  /// Bucket of value `v`: identity below kSub, then
  /// (octave, top-kSubBits-after-the-leading-1) above. Monotone in v.
  static uint32_t BucketIndex(uint64_t v) {
    if (v < kSub) return static_cast<uint32_t>(v);
    uint32_t exp = 63 - static_cast<uint32_t>(__builtin_clzll(v));
    uint32_t sub =
        static_cast<uint32_t>((v >> (exp - kSubBits)) & (kSub - 1));
    return (exp - kSubBits + 1) * kSub + sub;
  }

  /// Smallest value mapping to bucket `i` (inverse of BucketIndex on
  /// bucket lower bounds; the value Percentile reports).
  static uint64_t BucketLowerBound(uint32_t i) {
    if (i < kSub) return i;
    uint32_t block = i / kSub;
    uint32_t sub = i % kSub;
    return static_cast<uint64_t>(kSub + sub) << (block - 1);
  }

  void Record(uint64_t v) {
    IncSlot(&buckets_[BucketIndex(v)], 1);
    IncSlot(&count_, 1);
    IncSlot(&sum_, v);
    if (v > max()) max_.store(v, std::memory_order_relaxed);
  }

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  uint64_t max() const { return max_.load(std::memory_order_relaxed); }
  /// Raw count of bucket `i` — the reader-side view the NWPulse snapshot
  /// engine captures (obs/pulse.h); bucket-wise subtraction of two
  /// captures yields an interval histogram.
  uint64_t bucket(uint32_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  double mean() const {
    uint64_t n = count();
    return n == 0 ? 0.0 : static_cast<double>(sum()) / static_cast<double>(n);
  }

  /// Quantile `q` in [0, 1]: the lower bound of the bucket holding the
  /// ceil(q * count)-th smallest sample (rank clamped to [1, count]);
  /// 0 when the histogram is empty.
  uint64_t Percentile(double q) const {
    uint64_t n = count();
    if (n == 0) return 0;
    if (q < 0.0) q = 0.0;
    if (q > 1.0) q = 1.0;
    uint64_t rank = static_cast<uint64_t>(q * static_cast<double>(n));
    if (static_cast<double>(rank) < q * static_cast<double>(n)) ++rank;
    if (rank == 0) rank = 1;
    if (rank > n) rank = n;
    uint64_t seen = 0;
    for (uint32_t i = 0; i < kBuckets; ++i) {
      seen += buckets_[i].load(std::memory_order_relaxed);
      if (seen >= rank) return BucketLowerBound(i);
    }
    return max();  // unreachable unless a racing reader saw a torn count
  }

  /// Reader-side aggregation: bucket-wise this += other.
  void MergeFrom(const Histogram& other) {
    for (uint32_t i = 0; i < kBuckets; ++i) {
      IncSlot(&buckets_[i], other.buckets_[i].load(std::memory_order_relaxed));
    }
    IncSlot(&count_, other.count());
    IncSlot(&sum_, other.sum());
    if (other.max() > max()) max_.store(other.max(), std::memory_order_relaxed);
  }

 private:
  /// Single-writer add on one slot (same codegen as a plain uint64 add).
  static void IncSlot(std::atomic<uint64_t>* slot, uint64_t n) {
    slot->store(slot->load(std::memory_order_relaxed) + n,
                std::memory_order_relaxed);
  }

  std::atomic<uint64_t> buckets_[kBuckets]{};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> max_{0};
};

}  // namespace nw

#endif  // NW_OBS_METRICS_H_
