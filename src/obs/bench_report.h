// Machine-readable bench reporting: every bench harness that feeds the
// repo's perf trajectory (bench_query_engine, bench_query_optimizer,
// bench_sharded_eval) accepts `--report=json [--quick]` and emits one
// JSON object instead of its human tables, so CI can archive the numbers
// and BENCH_trajectory.json can track the curve across re-anchors.
//
//   {"bench":"bench_query_engine","quick":false,
//    "host":{"hardware_threads":16,"compiler":"clang",
//            "compiler_version":"...","build_type":"RelWithDebInfo",
//            "os":"linux"},
//    "metrics":{"batched_speedup@65536":6.5,...}}
//
// The host object fingerprints the build environment; the bench_diff
// watchdog (tools/bench_diff.py) compares it before comparing metrics
// and refuses timing comparisons across differing configurations.
//
// Metrics keep insertion order, so reports diff cleanly run to run.
#ifndef NW_OBS_BENCH_REPORT_H_
#define NW_OBS_BENCH_REPORT_H_

#include <string>
#include <utility>
#include <vector>

namespace nw {

/// Flags shared by the bench mains. `--report=json` switches the harness
/// from human tables to one JSON object on stdout (and skips the
/// google-benchmark pass — the tables' measurements are the report);
/// `--quick` shrinks workloads for CI smoke runs and disables the
/// acceptance-bar asserts (quick sizes are below the bars' regimes).
struct BenchConfig {
  bool report_json = false;
  bool quick = false;
  /// Print the human tables? (false exactly in report mode.)
  bool print() const { return !report_json; }
};

/// Strips the flags above out of argv (so benchmark::Initialize never
/// sees them) and returns the parsed config.
BenchConfig ParseBenchConfig(int* argc, char** argv);

/// Accumulates named numeric results and renders the report object.
class BenchReport {
 public:
  explicit BenchReport(std::string bench_name);

  /// Records one metric; doubles are rendered with 4 decimals.
  void Metric(const std::string& key, double value);

  std::string ToJson(bool quick) const;

 private:
  std::string name_;
  std::vector<std::pair<std::string, double>> metrics_;
};

}  // namespace nw

#endif  // NW_OBS_BENCH_REPORT_H_
